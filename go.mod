module deferstm

go 1.24
