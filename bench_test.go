// Benchmarks regenerating the paper's figures (see DESIGN.md §4 for the
// experiment index, and cmd/iobench / cmd/dedupbench for the full-size
// sweeps with table output). Each figure panel is a benchmark with
// sub-benchmarks per series and thread count; the metric of interest is
// ns/op for a fixed batch of work, which is proportional to the paper's
// "execution time" axis.
//
// Run: go test -bench=. -benchmem
package deferstm_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"deferstm/internal/chunker"
	"deferstm/internal/core"
	"deferstm/internal/dedup"
	"deferstm/internal/iobench"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/txlock"
)

// benchLatency is the harness I/O profile: every operation above the
// time.Sleep floor so the fsync/write/open ratios hold (see
// simio.SlowDiskLatency).
func benchLatency() simio.Latency { return simio.SlowDiskLatency() }

// dedupOutputLatency keeps the sequential output stage off the critical
// path (cheap-ish writes and fsyncs) so the worker-stage differences the
// paper measures are visible; see cmd/dedupbench.
func dedupOutputLatency() simio.Latency {
	l := simio.SlowDiskLatency()
	l.Fsync = 2 * time.Millisecond
	return l
}

func fig2(b *testing.B, files int, keepOpen bool, withFGL bool) {
	const ops = 200
	modes := []iobench.Mode{iobench.CGL, iobench.Irrevoc, iobench.Defer}
	if withFGL {
		modes = append(modes, iobench.FGL)
	}
	for _, mode := range modes {
		for _, threads := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", mode, threads), func(b *testing.B) {
				cfg := iobench.Config{
					Mode: mode, Files: files, Threads: threads, Ops: ops,
					KeepOpen: keepOpen, Latency: benchLatency(),
				}
				for i := 0; i < b.N; i++ {
					if _, _, err := iobench.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig2a — I/O microbenchmark, 1 file (no concurrency available):
// defer pays instrumentation overhead, irrevoc ≈ CGL.
func BenchmarkFig2a(b *testing.B) { fig2(b, 1, false, false) }

// BenchmarkFig2b — 2 files, +FGL: defer tracks FGL up to 2 threads.
func BenchmarkFig2b(b *testing.B) { fig2(b, 2, false, true) }

// BenchmarkFig2c — 4 files: defer scales with available concurrency.
func BenchmarkFig2c(b *testing.B) { fig2(b, 4, false, true) }

// BenchmarkFig2d — 4 files kept open (short critical sections): irrevoc
// degrades below CGL; FGL flat; defer competitive with FGL.
func BenchmarkFig2d(b *testing.B) { fig2(b, 4, true, true) }

func fig3(b *testing.B, backends map[string]dedup.Backend, order []string, threadCounts []int, inputBytes int) {
	input := dedup.GenInput(inputBytes, 0.5, 42)
	for _, name := range order {
		backend := backends[name]
		for _, threads := range threadCounts {
			b.Run(fmt.Sprintf("%s/threads=%d", name, threads), func(b *testing.B) {
				cfg := dedup.Config{
					Backend: backend, Threads: threads,
					InputRead:      20 * time.Millisecond,
					CompressEffort: 128,
					Chunk:          chunker.Config{AvgBits: 16},
				}
				b.SetBytes(int64(len(input)))
				for i := 0; i < b.N; i++ {
					fs := simio.NewFS(dedupOutputLatency())
					if _, err := dedup.Run(cfg, input, fs, "out"); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig3a — PARSEC dedup, the seven series of Figure 3(a).
func BenchmarkFig3a(b *testing.B) {
	fig3(b,
		map[string]dedup.Backend{
			"STM": dedup.STM, "HTM": dedup.HTM,
			"STM+DeferIO": dedup.STMDeferIO, "HTM+DeferIO": dedup.HTMDeferIO,
			"STM+DeferAll": dedup.STMDeferAll, "HTM+DeferAll": dedup.HTMDeferAll,
			"Pthread": dedup.Pthread,
		},
		[]string{"STM", "HTM", "STM+DeferIO", "HTM+DeferIO", "STM+DeferAll", "HTM+DeferAll", "Pthread"},
		[]int{1, 2, 4, 8},
		2<<20,
	)
}

// BenchmarkFig3b — dedup at higher thread counts: baselines vs "Best"
// (=+DeferAll) vs Pthread.
func BenchmarkFig3b(b *testing.B) {
	fig3(b,
		map[string]dedup.Backend{
			"STM": dedup.STM, "STM-Best": dedup.STMDeferAll,
			"HTM-Best": dedup.HTMDeferAll, "Pthread": dedup.Pthread,
		},
		[]string{"STM", "STM-Best", "HTM-Best", "Pthread"},
		[]int{4, 8, 16, 32},
		2<<20,
	)
}

// BenchmarkFig1Quiesce — the motivation figure: how long an unrelated
// transaction (T3) stalls in quiescence while another thread (T1) runs a
// long operation inside its transaction vs atomically deferred.
func BenchmarkFig1Quiesce(b *testing.B) {
	longWork := func() {
		deadline := time.Now().Add(200 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
	}
	for _, mode := range []string{"longop-in-tx", "longop-deferred"} {
		b.Run(mode, func(b *testing.B) {
			rt := stm.NewDefault()
			type obj struct {
				core.Deferrable
				c stm.Var[int]
			}
			o := &obj{}
			d := stm.NewVar(0) // T3's unrelated var
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // T1: long operation on o.c
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = rt.Atomic(func(tx *stm.Tx) error {
						o.Subscribe(tx)
						o.c.Set(tx, o.c.Get(tx)+1)
						if mode == "longop-in-tx" {
							longWork()
						} else {
							core.AtomicDefer(tx, func(ctx *core.OpCtx) { longWork() }, o)
						}
						return nil
					})
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// T3: writer on unrelated data; its commit quiesces and
				// must wait out T1's in-transaction long op (but not the
				// deferred one).
				_ = rt.Atomic(func(tx *stm.Tx) error {
					d.Set(tx, d.Get(tx)+1)
					return nil
				})
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkAblationSerializeAfter — A1: the GCC serialization threshold
// (§2) on a conflict-heavy counter workload.
func BenchmarkAblationSerializeAfter(b *testing.B) {
	for _, after := range []int{1, 2, 10, 100} {
		b.Run(fmt.Sprintf("after=%d", after), func(b *testing.B) {
			rt := stm.New(stm.Config{SerializeAfter: after})
			v := stm.NewVar(0)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					_ = rt.Atomic(func(tx *stm.Tx) error {
						v.Set(tx, v.Get(tx)+1)
						return nil
					})
				}
			})
		})
	}
}

// BenchmarkAblationTxLock — A2: transaction-friendly lock vs sync.Mutex
// as a plain mutual-exclusion lock.
func BenchmarkAblationTxLock(b *testing.B) {
	b.Run("txlock", func(b *testing.B) {
		rt := stm.NewDefault()
		l := txlock.NewLock()
		b.RunParallel(func(pb *testing.PB) {
			me := rt.NewOwner()
			for pb.Next() {
				l.AcquireOutside(rt, me)
				if err := l.ReleaseOutside(rt, me); err != nil {
					b.Error(err)
				}
			}
		})
	})
	b.Run("sync.Mutex", func(b *testing.B) {
		var mu sync.Mutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				mu.Lock()
				mu.Unlock() //nolint:staticcheck
			}
		})
	})
}

// BenchmarkAblationRetry — A3: blocking retry vs the paper's spinning
// retry on a producer/consumer ping-pong.
func BenchmarkAblationRetry(b *testing.B) {
	for _, spin := range []bool{false, true} {
		name := "blocking"
		if spin {
			name = "spin"
		}
		b.Run(name, func(b *testing.B) {
			rt := stm.New(stm.Config{SpinRetry: spin})
			box := stm.NewVar(0) // 0 = empty, else value
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // consumer
				defer wg.Done()
				for i := 0; i < b.N; i++ {
					_ = rt.Atomic(func(tx *stm.Tx) error {
						if box.Get(tx) == 0 {
							tx.Retry()
						}
						box.Set(tx, 0)
						return nil
					})
				}
			}()
			for i := 0; i < b.N; i++ { // producer
				_ = rt.Atomic(func(tx *stm.Tx) error {
					if box.Get(tx) != 0 {
						tx.Retry()
					}
					box.Set(tx, i+1)
					return nil
				})
			}
			wg.Wait()
		})
	}
}

// BenchmarkAblationHTMCapacity — A4: a fixed in-transaction buffer
// footprint against varying simulated HTM capacities: once the footprint
// exceeds capacity every transaction serializes; deferring the touch
// avoids it at any capacity.
func BenchmarkAblationHTMCapacity(b *testing.B) {
	const footprint = 48 * 1024 // bytes touched by the "pure function"
	for _, lines := range []int{256, 512, 1024, 2048} {
		for _, deferred := range []bool{false, true} {
			name := fmt.Sprintf("capacity=%d/deferred=%v", lines, deferred)
			b.Run(name, func(b *testing.B) {
				rt := stm.New(stm.Config{Mode: stm.ModeHTM, HTMWriteLines: lines, HTMReadLines: 4 * lines})
				type obj struct {
					core.Deferrable
					c stm.Var[int]
				}
				o := &obj{}
				for i := 0; i < b.N; i++ {
					_ = rt.Atomic(func(tx *stm.Tx) error {
						o.Subscribe(tx)
						o.c.Set(tx, o.c.Get(tx)+1)
						if deferred {
							core.AtomicDefer(tx, func(ctx *core.OpCtx) {
								// touch happens outside the hardware
								// transaction
							}, o)
						} else {
							tx.HTMTouch(footprint, footprint)
						}
						return nil
					})
				}
				b.ReportMetric(float64(rt.Snapshot().SerialRuns)/float64(b.N), "serial/op")
			})
		}
	}
}

// BenchmarkSTMReadOnly — runtime micro: read-only transaction cost per
// read-set size.
func BenchmarkSTMReadOnly(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("reads=%d", n), func(b *testing.B) {
			rt := stm.NewDefault()
			vars := make([]*stm.Var[int], n)
			for i := range vars {
				vars[i] = stm.NewVar(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = rt.Atomic(func(tx *stm.Tx) error {
					s := 0
					for _, v := range vars {
						s += v.Get(tx)
					}
					return nil
				})
			}
		})
	}
}

// BenchmarkSTMCounterContended — runtime micro: contended read-modify-
// write throughput.
func BenchmarkSTMCounterContended(b *testing.B) {
	rt := stm.NewDefault()
	v := stm.NewVar(0)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = rt.Atomic(func(tx *stm.Tx) error {
				v.Set(tx, v.Get(tx)+1)
				return nil
			})
		}
	})
}

// BenchmarkDeferOverhead — the constant per-transaction cost of an
// atomic_defer (lock acquire + hook + release) vs a bare transaction,
// the overhead visible at 1 thread in Figure 2.
func BenchmarkDeferOverhead(b *testing.B) {
	type obj struct {
		core.Deferrable
		c stm.Var[int]
	}
	b.Run("bare", func(b *testing.B) {
		rt := stm.NewDefault()
		o := &obj{}
		for i := 0; i < b.N; i++ {
			_ = rt.Atomic(func(tx *stm.Tx) error {
				o.c.Set(tx, i)
				return nil
			})
		}
	})
	b.Run("with-defer", func(b *testing.B) {
		rt := stm.NewDefault()
		o := &obj{}
		for i := 0; i < b.N; i++ {
			_ = rt.Atomic(func(tx *stm.Tx) error {
				o.c.Set(tx, i)
				core.AtomicDefer(tx, func(ctx *core.OpCtx) {}, o)
				return nil
			})
		}
	})
}
