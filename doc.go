// Package deferstm is a Go reproduction of "Extending Transactional
// Memory with Atomic Deferral" (Zhou, Luchangco, Spear; SPAA 2017 brief
// announcement, full version at OPODIS 2017).
//
// The implementation lives in internal packages:
//
//   - internal/stm      — TL2-style STM runtime with retry,
//     irrevocability, quiescence, contention management, and a simulated
//     best-effort HTM mode
//   - internal/txlock   — transaction-friendly reentrant locks
//   - internal/core     — atomic deferral (the paper's contribution)
//   - internal/mempool  — deferred memory reclamation
//   - internal/simio    — simulated filesystem with latency and fault
//     injection, plus deferrable I/O wrappers
//   - internal/chunker, internal/compress, internal/dedup — the PARSEC
//     dedup kernel reproduction
//   - internal/ds       — transactional list / hash map / red-black tree
//   - internal/iobench, internal/bench — benchmark workloads and harness
//
// The benchmarks in bench_test.go regenerate the paper's figures; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for results.
package deferstm
