// Command kvreplica runs a read replica: it tails a kvserver's WAL
// lanes over the replication stream (internal/repl), replays them into
// its own in-memory store, and serves read-only GET/Scan on the same
// binary protocol and HTTP fallback as the primary. Cross-shard batches
// are applied atomically — a reader never sees half of one — and reads
// ride the snapshot path, so they are abort-free and ordered at the
// applied (LastDurable-consistent) cut.
//
// Usage:
//
//	kvreplica -primary 127.0.0.1:7070 -addr 127.0.0.1:7071
//
// The listener comes up only after initial catch-up (every lane applied
// to a received durable watermark), so the -addrfile appearing means
// the replica is serving current data. If the primary goes away the
// replica keeps serving its last applied state and reconnects with
// exponential backoff; the applied cursors survive the outage, so the
// re-handshake resumes exactly where replication left off.
//
// -statusfile periodically writes the replication Status JSON
// (atomically, via rename). The ci.sh replica smoke reads it back with
//
//	kvreplica -verify -statusfile S -ackfile F [-json out.json]
//
// which checks the applied cursors against the loadgen's record of
// durably-acked LSNs (check.AckedPrefixLanes: nothing acked on the
// primary may be missing from a caught-up replica), insists the
// snapshot read path never fell back to validation, and optionally
// emits the replication-lag percentiles as a bench document.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"deferstm/internal/bench"
	"deferstm/internal/check"
	"deferstm/internal/obs"
	"deferstm/internal/repl"
	"deferstm/internal/server"
	"deferstm/internal/stm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kvreplica", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		primary    = fs.String("primary", "", "kvserver address to replicate from (required)")
		addr       = fs.String("addr", "127.0.0.1:0", "TCP listen address for read-only serving")
		addrfile   = fs.String("addrfile", "", "write the bound address to this file once serving")
		metrics    = fs.String("metrics", "", "serve /metrics, /debug/pprof and the /kv/* JSON API on this address")
		statusfile = fs.String("statusfile", "", "periodically write replication Status JSON to this file")
		window     = fs.Int("window", 128, "per-connection in-flight response window")
		verify     = fs.Bool("verify", false, "read -statusfile back and verify it instead of serving")
		ackfile    = fs.String("ackfile", "", "with -verify: loadgen ack record to check the applied cursors against")
		jsonOut    = fs.String("json", "", "with -verify: write replication-lag percentiles as a bench JSON document")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *verify {
		return runVerify(stdout, stderr, *statusfile, *ackfile, *jsonOut)
	}
	if *primary == "" {
		fmt.Fprintln(stderr, "kvreplica: -primary is required")
		return 2
	}

	logger := log.New(stderr, "kvreplica: ", log.LstdFlags)
	reg := obs.NewRegistry()
	reg.SetBuildInfo("commit", bench.GitCommit(), "go", runtime.Version(), "binary", "kvreplica")
	rt := stm.NewDefault()
	rt.SetMetrics(stm.NewMetrics(reg))
	r := repl.New(rt, repl.Options{
		Primary:  *primary,
		Registry: reg,
		Logf:     func(format string, a ...any) { logger.Printf(format, a...) },
	})

	// The stream owns ctx; signals cancel it, which ends Run.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		if err := r.Run(ctx); err != nil && ctx.Err() == nil {
			logger.Printf("stream: %v", err)
		}
	}()

	if *statusfile != "" {
		go statusWriter(ctx, r, *statusfile, logger)
	}

	logger.Printf("replicating from %s", *primary)
	if err := r.WaitCaughtUp(ctx); err != nil {
		// Interrupted before ever catching up: nothing is serving yet,
		// so there is nothing to drain.
		<-runDone
		writeStatus(r, *statusfile, logger)
		return 0
	}
	store := r.Store()
	stm.RegisterStats(reg, rt.Snapshot)
	store.RegisterMetrics(reg)
	st := r.Status()
	logger.Printf("caught up: %d lanes, applied %v", st.Lanes, st.Applied)

	srv := server.New(store, server.Options{
		Window:   *window,
		Registry: reg,
		Logf:     func(format string, a ...any) { logger.Printf(format, a...) },
		ReadOnly: true,
	})
	if *metrics != "" {
		mux := reg.Mux()
		srv.RegisterHTTP(mux)
		maddr, stop, err := obs.ServeMux(*metrics, mux)
		if err != nil {
			fmt.Fprintf(stderr, "kvreplica: -metrics: %v\n", err)
			return 1
		}
		defer stop()
		logger.Printf("metrics: http://%s/metrics", maddr)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "kvreplica: listen: %v\n", err)
		return 1
	}
	bound := obs.DialableAddr(ln.Addr())
	logger.Printf("serving read-only on %s", bound)
	if *addrfile != "" {
		if err := os.WriteFile(*addrfile, []byte(bound.String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "kvreplica: -addrfile: %v\n", err)
			return 1
		}
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		logger.Printf("draining")
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			logger.Printf("drain cut short: %v", err)
		}
		scancel()
		<-serveDone
	case err := <-serveDone:
		if err != nil {
			fmt.Fprintf(stderr, "kvreplica: serve: %v\n", err)
			return 1
		}
	}
	cancel()
	<-runDone
	// One last status write so -verify sees the final cursors, not the
	// last tick's.
	writeStatus(r, *statusfile, logger)
	return 0
}

// statusWriter publishes r.Status() to path every 200ms. Writes go
// through a temp file + rename so a reader never sees a torn JSON.
func statusWriter(ctx context.Context, r *repl.Replica, path string, logger *log.Logger) {
	t := time.NewTicker(200 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			writeStatus(r, path, logger)
		}
	}
}

func writeStatus(r *repl.Replica, path string, logger *log.Logger) {
	if path == "" {
		return
	}
	b, err := json.Marshal(r.Status())
	if err != nil {
		logger.Printf("statusfile: %v", err)
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		logger.Printf("statusfile: %v", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		logger.Printf("statusfile: %v", err)
	}
}

// runVerify reads a statusfile back and checks the replica's applied
// state against the loadgen's ack record: every LSN a client was
// durably acked on the primary must be covered by the replica's applied
// cursor on that lane (check.AckedPrefixLanes), and the read path must
// never have fallen back from the snapshot fast path to validation —
// replica reads are supposed to be abort-free by construction.
func runVerify(stdout, stderr io.Writer, statusfile, ackfile, jsonOut string) int {
	if statusfile == "" {
		fmt.Fprintln(stderr, "kvreplica: -verify needs -statusfile")
		return 2
	}
	b, err := os.ReadFile(statusfile)
	if err != nil {
		fmt.Fprintf(stderr, "kvreplica: -statusfile: %v\n", err)
		return 1
	}
	var st repl.Status
	if err := json.Unmarshal(b, &st); err != nil {
		fmt.Fprintf(stderr, "kvreplica: -statusfile %s: %v\n", statusfile, err)
		return 1
	}
	if st.Lanes == 0 || len(st.Applied) != st.Lanes {
		fmt.Fprintf(stderr, "kvreplica: status reports %d lanes with %d cursors\n",
			st.Lanes, len(st.Applied))
		return 1
	}

	ok := true
	if ackfile != "" {
		ab, err := os.ReadFile(ackfile)
		if err != nil {
			fmt.Fprintf(stderr, "kvreplica: -ackfile: %v\n", err)
			return 1
		}
		acked, err := check.ParseAckfile(string(ab), st.Lanes)
		if err != nil {
			fmt.Fprintf(stderr, "kvreplica: -ackfile %s: %v\n", ackfile, err)
			return 1
		}
		violations := check.AckedPrefixLanes(acked, st.Applied)
		for _, v := range violations {
			fmt.Fprintf(stderr, "kvreplica: verify: %s\n", v.Msg)
			ok = false
		}
		if ok {
			for lane := 0; lane < st.Lanes; lane++ {
				fmt.Fprintf(stdout, "replica verify ok: lane %d applied LSN %d covers acked LSN %d\n",
					lane, st.Applied[lane], acked[lane])
			}
		}
	}
	if st.SnapshotFallbacks != 0 {
		fmt.Fprintf(stderr, "kvreplica: verify: %d snapshot reads fell back to validation (want 0)\n",
			st.SnapshotFallbacks)
		ok = false
	}
	if !ok {
		return 1
	}
	fmt.Fprintf(stdout,
		"replica verify ok: %d lanes, %d records (%d batches), lag p50 %.3fms p99 %.3fms over %d samples, %d snapshot reads, 0 fallbacks\n",
		st.Lanes, st.AppliedRecords, st.AppliedBatches,
		st.LagP50Ns/1e6, st.LagP99Ns/1e6, st.LagSamples, st.SnapshotReads)

	if jsonOut != "" {
		if st.LagSamples == 0 || st.AppliedRecords == 0 {
			fmt.Fprintln(stderr, "kvreplica: -json: no lag samples recorded")
			return 1
		}
		doc := bench.NewStmDoc("kvreplica", bench.GitCommit(), false, []bench.StmResult{{
			Name:    "replica-lag",
			Threads: 1,
			N:       st.LagSamples,
			NsPerOp: st.LagP50Ns,
			Commits: st.AppliedRecords,
			TxP50Ns: st.LagP50Ns,
			TxP99Ns: st.LagP99Ns,
		}})
		if err := bench.ValidateStmDoc(doc); err != nil {
			fmt.Fprintf(stderr, "kvreplica: -json: %v\n", err)
			return 1
		}
		if err := os.MkdirAll(filepath.Dir(jsonOut), 0o755); err != nil && filepath.Dir(jsonOut) != "." {
			fmt.Fprintf(stderr, "kvreplica: -json: %v\n", err)
			return 1
		}
		if err := bench.WriteJSON(jsonOut, doc); err != nil {
			fmt.Fprintf(stderr, "kvreplica: -json: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonOut)
	}
	return 0
}
