// Command kvloadgen drives a running kvserver with pipelined load and
// measures what the wire actually delivers: durable commits/s,
// fsyncs/commit (from the server's WAL counters), and client-observed
// ack latency percentiles.
//
// It runs a ladder of connection counts, each rung opening N pipelined
// connections that keep -window requests in flight with a configurable
// read/write mix:
//
//	kvloadgen -addr 127.0.0.1:7070 -conns 1,2,4,8 -ops 2000 -reads 50
//
// The ladder is the networked version of kvbench's thread ladder — the
// paper's group-commit claim restated over TCP: as connections grow,
// commits/s should scale while fsyncs/commit falls, because concurrent
// connections' records share flushes. With -check, the run fails unless
// the final group-mode rung with >= 8 connections observed
// fsyncs/commit < 1.
//
// -json writes a bench.StmDoc (schema deferstm/bench/v1), so
// scripts/benchdiff.go compares kvloadgen runs exactly like stmbench
// runs. -ackfile records the highest durably-acked LSN per WAL lane for
// the crash-recovery smoke (a bare decimal for a single-lane server,
// "lane lsn" lines for a sharded one — the formats kvserver -verify
// accepts); -tolerate-disconnect makes a mid-run connection
// loss (the smoke's kill -9) a clean exit instead of a failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deferstm/internal/bench"
	"deferstm/internal/kv"
	"deferstm/internal/obs"
	"deferstm/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type rung struct {
	conns    int
	ops      uint64 // responses received (commits for writes, reads for gets)
	writes   uint64
	elapsed  time.Duration
	maxLSN   uint64
	records  uint64 // WAL records appended during the rung (all lanes)
	flushes  uint64 // WAL flushes during the rung (all lanes)
	fsyncs   uint64 // WAL fsyncs during the rung (all lanes)
	p50, p99 time.Duration
	mode     string
}

// ackTracker records, per WAL lane, the highest LSN the server durably
// acked to us. Write responses carry lane-tagged tokens
// (kv.PackToken); a legacy single-lane server's tokens decode as lane
// 0, so the unsharded path falls out of the same code.
type ackTracker struct {
	lanes [kv.MaxShards]atomic.Uint64
}

func (a *ackTracker) observe(token uint64) {
	lane := kv.TokenLane(token)
	if lane < 0 || lane >= kv.MaxShards {
		return
	}
	lsn := kv.TokenLSN(token)
	for {
		cur := a.lanes[lane].Load()
		if lsn <= cur || a.lanes[lane].CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// render emits the ackfile: the legacy bare decimal when only lane 0
// ever acked (so single-lane smoke artifacts keep their old shape), or
// one "lane lsn" line per acked lane for a sharded server.
func (a *ackTracker) render() string {
	maxLane := 0
	for lane := kv.MaxShards - 1; lane > 0; lane-- {
		if a.lanes[lane].Load() > 0 {
			maxLane = lane
			break
		}
	}
	if maxLane == 0 {
		return strconv.FormatUint(a.lanes[0].Load(), 10) + "\n"
	}
	var sb strings.Builder
	for lane := 0; lane <= maxLane; lane++ {
		fmt.Fprintf(&sb, "%d %d\n", lane, a.lanes[lane].Load())
	}
	return sb.String()
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kvloadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7070", "kvserver address")
		conns    = fs.String("conns", "1,2,4,8", "comma-separated connection-count ladder")
		ops      = fs.Int("ops", 2000, "requests per connection per rung")
		keys     = fs.Int("keys", 256, "distinct keys")
		value    = fs.Int("value", 64, "value bytes")
		reads    = fs.Int("reads", 0, "percentage of requests that are GETs (0 = all writes)")
		window   = fs.Int("window", 64, "requests kept in flight per connection")
		seed     = fs.Int64("seed", 1, "workload RNG seed")
		jsonPath = fs.String("json", "", "write a bench.StmDoc to this file")
		label    = fs.String("label", "", "label recorded in the JSON doc")
		ackfile  = fs.String("ackfile", "", "write the highest durably-acked LSN to this file (crash smoke)")
		tolerate = fs.Bool("tolerate-disconnect", false, "treat a mid-run connection loss as a clean early exit")
		checkFC  = fs.Bool("check", false, "fail unless a group-mode rung with >= 8 conns and writes saw fsyncs/commit < 1")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	connCounts, err := parseInts(*conns)
	if err != nil {
		fmt.Fprintf(stderr, "kvloadgen: %v\n", err)
		return 2
	}
	if *reads < 0 || *reads > 100 {
		fmt.Fprintln(stderr, "kvloadgen: -reads must be 0..100")
		return 2
	}

	var acks ackTracker
	writeAck := func() {
		if *ackfile == "" {
			return
		}
		if err := os.WriteFile(*ackfile, []byte(acks.render()), 0o644); err != nil {
			fmt.Fprintf(stderr, "kvloadgen: -ackfile: %v\n", err)
		}
	}
	defer writeAck()

	var rungs []rung
	disconnected := false
	for _, n := range connCounts {
		r, err := runRung(*addr, n, *ops, *keys, *value, *reads, *window, *seed, &acks)
		if err != nil {
			if *tolerate {
				fmt.Fprintf(stderr, "kvloadgen: disconnected at %d conns (tolerated): %v\n", n, err)
				disconnected = true
				break
			}
			fmt.Fprintf(stderr, "kvloadgen: %d conns: %v\n", n, err)
			return 1
		}
		rungs = append(rungs, r)
		fmt.Fprintf(stderr, ".")
	}
	fmt.Fprintln(stderr)
	// The acked watermark must be on disk (the file, not the WAL) before
	// the smoke kills the server; write it eagerly, not just on exit.
	writeAck()

	fmt.Fprintf(stdout, "kvloadgen: %s, %d ops/conn, %d keys, %d-byte values, %d%% reads, window %d\n\n",
		*addr, *ops, *keys, *value, *reads, *window)
	fmt.Fprintf(stdout, "%-6s %8s %10s %12s %10s %14s %12s %12s\n",
		"mode", "conns", "ops", "commits/s", "records", "fsyncs/commit", "ack-p50", "ack-p99")
	for _, r := range rungs {
		fpc := 0.0
		if r.records > 0 {
			fpc = float64(r.fsyncs) / float64(r.records)
		}
		fmt.Fprintf(stdout, "%-6s %8d %10d %12.0f %10d %14.3f %12s %12s\n",
			r.mode, r.conns, r.ops,
			float64(r.ops)/r.elapsed.Seconds(),
			r.records, fpc, r.p50, r.p99)
	}

	if *jsonPath != "" && len(rungs) > 0 {
		var results []bench.StmResult
		for _, r := range rungs {
			results = append(results, bench.StmResult{
				Name:          "kvload/" + r.mode,
				Threads:       r.conns,
				N:             r.ops,
				NsPerOp:       float64(r.elapsed.Nanoseconds()) / float64(r.ops),
				CommitsPerSec: float64(r.ops) / r.elapsed.Seconds(),
				Commits:       r.ops,
				WALRecords:    r.records,
				WALFlushes:    r.flushes,
				WALFsyncs:     r.fsyncs,
				TxP50Ns:       float64(r.p50.Nanoseconds()),
				TxP99Ns:       float64(r.p99.Nanoseconds()),
			})
		}
		doc := bench.NewStmDoc(*label, bench.GitCommit(), false, results)
		if err := bench.ValidateStmDoc(doc); err != nil {
			fmt.Fprintf(stderr, "kvloadgen: self-check: %v\n", err)
			return 1
		}
		if err := bench.WriteJSON(*jsonPath, doc); err != nil {
			fmt.Fprintf(stderr, "kvloadgen: -json: %v\n", err)
			return 1
		}
	}

	if *checkFC && !disconnected {
		ok := false
		for _, r := range rungs {
			if r.mode == "group" && r.conns >= 8 && r.writes > 0 && r.records > 0 &&
				float64(r.fsyncs)/float64(r.records) < 1 {
				ok = true
			}
		}
		if !ok {
			fmt.Fprintln(stderr, "kvloadgen: -check: no group-mode rung with >= 8 conns achieved fsyncs/commit < 1")
			return 1
		}
	}
	return 0
}

// runRung opens n pipelined connections and pushes ops requests through
// each, keeping up to window in flight per connection.
func runRung(addr string, n, ops, keys, valueLen, readPct, window int, seed int64, acks *ackTracker) (rung, error) {
	r := rung{conns: n}
	clients := make([]*server.Client, n)
	for i := range clients {
		c, err := server.Dial(addr)
		if err != nil {
			return r, err
		}
		defer c.Close()
		clients[i] = c
	}

	before, err := clients[0].Stats()
	if err != nil {
		return r, err
	}
	r.mode = before.Mode

	hist := obs.NewHistogram("kvloadgen_ack_seconds", "")
	value := strings.Repeat("x", valueLen)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	var totalOps, totalWrites atomic.Uint64
	start := time.Now()
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *server.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(ci)))
			type inflight struct {
				ch   <-chan server.Response
				sent time.Time
			}
			pending := make([]inflight, 0, window)
			drainOne := func() error {
				in := pending[0]
				pending = pending[1:]
				resp, err := c.Recv(in.ch)
				if err != nil {
					return err
				}
				hist.Observe(time.Since(in.sent))
				totalOps.Add(1)
				if resp.LSN > 0 {
					totalWrites.Add(1)
					// The server acked at its lane's durable watermark,
					// so this token is a crash-survival promise: the
					// lane must recover through this LSN.
					acks.observe(resp.LSN)
				}
				return nil
			}
			for i := 0; i < ops; i++ {
				req := server.Request{Op: server.OpPut,
					Key: "k" + strconv.Itoa(rng.Intn(keys)), Val: value}
				if rng.Intn(100) < readPct {
					req = server.Request{Op: server.OpGet, Key: req.Key}
				}
				ch, err := c.Send(req)
				if err != nil {
					errs <- err
					return
				}
				pending = append(pending, inflight{ch: ch, sent: time.Now()})
				if len(pending) >= window {
					if err := drainOne(); err != nil {
						errs <- err
						return
					}
				}
			}
			for len(pending) > 0 {
				if err := drainOne(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(ci, c)
	}
	wg.Wait()
	r.elapsed = time.Since(start)
	for range clients {
		if err := <-errs; err != nil {
			return r, err
		}
	}

	after, err := clients[0].Stats()
	if err != nil {
		return r, err
	}
	r.ops = totalOps.Load()
	r.writes = totalWrites.Load()
	r.maxLSN = after.Durable
	r.records = after.WALRecords - before.WALRecords
	r.flushes = after.WALFlushes - before.WALFlushes
	r.fsyncs = after.WALFsyncs - before.WALFsyncs
	snap := hist.Snapshot()
	r.p50 = time.Duration(snap.Quantile(0.50))
	r.p99 = time.Duration(snap.Quantile(0.99))
	return r, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no counts in %q", s)
	}
	return out, nil
}
