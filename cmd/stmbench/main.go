// Command stmbench runs the STM benchmark suites and emits a JSON
// document that future PRs diff against — the committed BENCH_*.json
// trajectory files. Three suites exist: "hot" (read-only, small-write,
// contended-counter, kv-group-commit — per-transaction constant
// factors), "scaling" (map-read, map-write, resize-storm across a
// 1..NumCPU thread ladder — throughput vs. thread count), and
// "reactive" (blocked-reader wakeup-latency ladder, watcher-vs-spin
// churn ablation, bounded-queue handoff — the watcher-based retry
// path), and "mixed" (TPC-B-style writer ladder against one long
// scanner, validating vs. snapshot mode — the MVCC snapshot-read
// story; see internal/bench/mixed.go).
//
// Usage:
//
//	stmbench                         run the hot suite, print a table
//	stmbench -suite scaling          run the thread-scaling suite
//	stmbench -suite mixed            writers-vs-scanner ladder
//	stmbench -scanner snapshot       mixed-suite scan variant
//	                                 (validate|snapshot|both)
//	stmbench -suite all              both suites in one document
//	stmbench -maxthreads 2           cap the scaling thread ladder (CI)
//	stmbench -json out.json          also write the JSON document
//	stmbench -baseline old.json      diff against a saved run and emit
//	                                 a trajectory {baseline, after}
//	stmbench -baseline old.json -allocgate
//	                                 additionally fail (exit 1) if the
//	                                 read-only or small-write rows
//	                                 regressed in allocs/op
//	stmbench -validate f.json        only check a document is well formed
//	stmbench -quick                  CI smoke: milliseconds, no thresholds
//	stmbench -metrics 127.0.0.1:9190 serve /metrics + /debug/pprof while running
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"deferstm/internal/bench"
	"deferstm/internal/obs"
	"deferstm/internal/stm"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("stmbench", flag.ExitOnError)
	var (
		jsonOut    = fs.String("json", "", "write the result document to this path")
		baseline   = fs.String("baseline", "", "saved run to diff against; output becomes a {baseline, after} trajectory")
		validate   = fs.String("validate", "", "validate an existing document and exit (no benchmarks run)")
		quick      = fs.Bool("quick", false, "CI smoke mode: tiny target times")
		label      = fs.String("label", "", "label recorded in the document (e.g. pr3-after)")
		benchtime  = fs.Duration("benchtime", 0, "target wall time per workload (default 1s, 25ms with -quick)")
		suite      = fs.String("suite", "hot", "which suite to run: hot|scaling|reactive|mixed|all")
		maxthreads = fs.Int("maxthreads", 0, "cap the scaling suite's thread ladder (0 = up to NumCPU)")
		maxreaders = fs.Int("maxreaders", 0, "cap the reactive suite's blocked-reader ladder (0 = full ladder)")
		maxwriters = fs.Int("maxwriters", 0, "cap the mixed suite's writer ladder (0 = full ladder)")
		scanner    = fs.String("scanner", "both", "mixed-suite scan variant: validate|snapshot|both")
		allocgate  = fs.Bool("allocgate", false, "with -baseline: fail if read-only/small-write allocs/op regressed")
		metrics    = fs.String("metrics", "", "serve /metrics + /debug/pprof on this address while the suite runs (e.g. 127.0.0.1:9190)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *validate != "" {
		doc, err := bench.LoadStmDoc(*validate)
		if err == nil {
			err = bench.ValidateStmDoc(doc)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: %s: invalid: %v\n", *validate, err)
			return 1
		}
		label := doc.Label
		if label == "" {
			label = "unlabeled"
		}
		fmt.Printf("%s: ok (%d results, %s, commit %s)\n", *validate, len(doc.Results), label, doc.Commit)
		return 0
	}

	commit := bench.GitCommit()
	stmOpts := bench.StmOptions{
		Quick:  *quick,
		Target: *benchtime,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.SetBuildInfo("commit", commit, "go", runtime.Version(), "binary", "stmbench")
		stmOpts.Metrics = stm.NewMetrics(reg)
		addr, stop, err := reg.Serve(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: -metrics: %v\n", err)
			return 1
		}
		defer stop()
		fmt.Printf("metrics: http://%s/metrics\n", addr)
	}
	var results []bench.StmResult
	switch *suite {
	case "hot":
		results = bench.RunStmSuite(stmOpts)
	case "scaling":
		results = bench.RunScalingSuite(bench.ScalingOptions{StmOptions: stmOpts, MaxThreads: *maxthreads})
	case "reactive":
		results = bench.RunReactiveSuite(bench.ReactiveOptions{StmOptions: stmOpts, MaxReaders: *maxreaders})
	case "mixed":
		results = bench.RunMixedSuite(bench.MixedOptions{StmOptions: stmOpts, MaxWriters: *maxwriters, Scanner: *scanner})
	case "all":
		results = bench.RunStmSuite(stmOpts)
		results = append(results, bench.RunScalingSuite(bench.ScalingOptions{StmOptions: stmOpts, MaxThreads: *maxthreads})...)
		results = append(results, bench.RunReactiveSuite(bench.ReactiveOptions{StmOptions: stmOpts, MaxReaders: *maxreaders})...)
		results = append(results, bench.RunMixedSuite(bench.MixedOptions{StmOptions: stmOpts, MaxWriters: *maxwriters, Scanner: *scanner})...)
	default:
		fmt.Fprintf(os.Stderr, "stmbench: unknown suite %q (want hot|scaling|reactive|mixed|all)\n", *suite)
		return 2
	}
	doc := bench.NewStmDoc(*label, commit, *quick, results)
	if err := bench.ValidateStmDoc(doc); err != nil {
		fmt.Fprintf(os.Stderr, "stmbench: produced an invalid document: %v\n", err)
		return 1
	}

	var out any = doc
	gateFailed := false
	if *baseline != "" {
		old, err := bench.LoadStmDoc(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: %v\n", err)
			return 1
		}
		fmt.Println()
		bench.DiffStmDocs(os.Stdout, old, doc)
		out = &bench.StmTrajectory{Schema: bench.TrajectorySchema, Baseline: old, After: doc}
		if *allocgate {
			if err := bench.AllocGate(old, doc); err != nil {
				fmt.Fprintf(os.Stderr, "stmbench: allocgate: %v\n", err)
				gateFailed = true
			} else {
				fmt.Println("allocgate: ok")
			}
		}
	} else if *allocgate {
		fmt.Fprintln(os.Stderr, "stmbench: -allocgate requires -baseline")
		return 2
	}
	if *jsonOut != "" {
		if err := bench.WriteJSON(*jsonOut, out); err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if gateFailed {
		return 1
	}
	return 0
}
