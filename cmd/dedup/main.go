// Command dedup is a usable file deduplicator/compressor built on the
// pipeline reproduction: it encodes a real file into the dedup record
// stream (content-defined chunking + SHA-256 dedup + LZ77 compression)
// using any of the synchronization backends, and decodes such streams
// back.
//
//	dedup -encode -in archive.tar -out archive.dd -backend stm+deferall -threads 4
//	dedup -decode -in archive.dd  -out archive.tar
package main

import (
	"flag"
	"fmt"
	"os"

	"deferstm/internal/dedup"
	"deferstm/internal/simio"
)

func main() {
	var (
		encode  = flag.Bool("encode", false, "encode -in to -out")
		decode  = flag.Bool("decode", false, "decode -in to -out")
		inPath  = flag.String("in", "", "input file")
		outPath = flag.String("out", "", "output file")
		backend = flag.String("backend", "stm+deferall", "sync backend (see -list)")
		threads = flag.Int("threads", 4, "worker threads")
		effort  = flag.Int("effort", 32, "compression effort")
		list    = flag.Bool("list", false, "list backends and exit")
		quiet   = flag.Bool("q", false, "suppress statistics")
	)
	flag.Parse()

	if *list {
		for _, b := range dedup.Backends() {
			fmt.Println(b)
		}
		return
	}
	if *encode == *decode {
		fail("exactly one of -encode / -decode is required")
	}
	if *inPath == "" || *outPath == "" {
		fail("-in and -out are required")
	}
	data, err := os.ReadFile(*inPath)
	if err != nil {
		fail("%v", err)
	}

	if *decode {
		plain, err := dedup.Decode(data)
		if err != nil {
			fail("decode: %v", err)
		}
		if err := os.WriteFile(*outPath, plain, 0o644); err != nil {
			fail("%v", err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "decoded %d -> %d bytes\n", len(data), len(plain))
		}
		return
	}

	b, err := dedup.ParseBackend(*backend)
	if err != nil {
		fail("%v (use -list)", err)
	}
	fs := simio.NewFS(simio.Latency{}) // no simulated latency for the tool
	res, err := dedup.Run(dedup.Config{
		Backend:        b,
		Threads:        *threads,
		CompressEffort: *effort,
		NoFsync:        true,
	}, data, fs, "out")
	if err != nil {
		fail("encode: %v", err)
	}
	stream, err := fs.ReadAll("out")
	if err != nil {
		fail("%v", err)
	}
	if err := os.WriteFile(*outPath, stream, 0o644); err != nil {
		fail("%v", err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"encoded %d -> %d bytes (%.2fx) in %.2fs: %d chunks, %d unique, %d duplicate [%v, %d threads]\n",
			res.BytesIn, res.BytesOut, res.DedupFactor(), res.Elapsed.Seconds(),
			res.Packets, res.Uniques, res.Dups, b, *threads)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dedup: "+format+"\n", args...)
	os.Exit(2)
}
