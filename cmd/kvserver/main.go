// Command kvserver serves the durable transactional KV store
// (internal/kv) over TCP (internal/server's binary protocol), backed by
// a real on-disk WAL. It is the networked face of the paper's atomic
// deferral: every connection's commits flow into the WAL group commit,
// the fsync runs deferred outside the store's locks, and a client's
// response is held until the durable watermark covers its record.
//
// Usage:
//
//	kvserver -addr 127.0.0.1:7070 -dir /var/lib/deferstm -mode group
//
// Pass -addr :0 for an ephemeral port; the bound (dialable) address is
// printed to stderr and, with -addrfile, written to a file so scripts
// can pick it up. -metrics serves /metrics, /debug/pprof and the
// /kv/* JSON fallback on a second port.
//
// The crash-recovery smoke in scripts/ci.sh uses two extra modes:
//
//	kvserver -dir D -verify            recover the store, print a JSON
//	                                   RecoveryInfo summary, exit
//	kvserver -dir D -verify -ackfile F additionally check the recovered
//	                                   LSN against the loadgen's record
//	                                   of acked LSNs via
//	                                   check.RecoveredPrefix
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"deferstm/internal/bench"
	"deferstm/internal/check"
	"deferstm/internal/kv"
	"deferstm/internal/obs"
	"deferstm/internal/server"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kvserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7070", "TCP listen address (\":0\" for an ephemeral port)")
		addrfile = fs.String("addrfile", "", "write the bound address to this file once listening")
		dir      = fs.String("dir", "", "WAL directory (required unless -mode none)")
		mode     = fs.String("mode", "group", "durability mode: group|sync|none")
		shards   = fs.Int("shards", 0, "key-space shards = parallel WAL lanes (power of two; 0 adopts the store's manifest)")
		window   = fs.Int("window", 128, "per-connection in-flight response window")
		metrics  = fs.String("metrics", "", "serve /metrics, /debug/pprof and the /kv/* JSON API on this address")
		verify   = fs.Bool("verify", false, "recover the store, print a recovery summary, and exit")
		ackfile  = fs.String("ackfile", "", "with -verify: file holding the max durably-acked LSN to check against")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var kvMode kv.Mode
	switch *mode {
	case "group":
		kvMode = kv.ModeGroup
	case "sync":
		kvMode = kv.ModeSync
	case "none":
		kvMode = kv.ModeNone
	default:
		fmt.Fprintf(stderr, "kvserver: unknown mode %q\n", *mode)
		return 2
	}
	var backend wal.Backend
	if kvMode != kv.ModeNone {
		if *dir == "" {
			fmt.Fprintln(stderr, "kvserver: -dir is required unless -mode none")
			return 2
		}
		b, err := wal.NewOSBackend(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "kvserver: %v\n", err)
			return 1
		}
		backend = b
	}

	reg := obs.NewRegistry()
	reg.SetBuildInfo("commit", bench.GitCommit(), "go", runtime.Version(), "binary", "kvserver")
	rt := stm.NewDefault()
	rt.SetMetrics(stm.NewMetrics(reg))
	store, info, err := kv.Open(rt, backend, kv.Options{Mode: kvMode, Shards: *shards})
	if err != nil {
		fmt.Fprintf(stderr, "kvserver: open: %v\n", err)
		return 1
	}
	defer store.Close()
	stm.RegisterStats(reg, rt.Snapshot)
	store.RegisterMetrics(reg)

	if *verify {
		return runVerify(stdout, stderr, info, *ackfile)
	}

	logger := log.New(stderr, "kvserver: ", log.LstdFlags)
	srv := server.New(store, server.Options{
		Window:   *window,
		Registry: reg,
		Logf:     func(format string, a ...any) { logger.Printf(format, a...) },
	})

	if *metrics != "" {
		mux := reg.Mux()
		srv.RegisterHTTP(mux)
		maddr, stop, err := obs.ServeMux(*metrics, mux)
		if err != nil {
			fmt.Fprintf(stderr, "kvserver: -metrics: %v\n", err)
			return 1
		}
		defer stop()
		logger.Printf("metrics: http://%s/metrics", maddr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "kvserver: listen: %v\n", err)
		return 1
	}
	bound := obs.DialableAddr(ln.Addr())
	logger.Printf("serving %s store (%d keys recovered, last LSN %d) on %s",
		kvMode, info.Keys, info.LastLSN, bound)
	if *addrfile != "" {
		if err := os.WriteFile(*addrfile, []byte(bound.String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "kvserver: -addrfile: %v\n", err)
			return 1
		}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	select {
	case sig := <-sigs:
		// Graceful drain: kick the readers, let every already-decoded
		// request wait out its durability and send its ack, then tear
		// down. A second signal (or the timeout) hard-closes.
		logger.Printf("%v: draining", sig)
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		go func() {
			<-sigs
			scancel()
		}()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Printf("drain cut short: %v", err)
		}
		scancel()
		<-serveDone
	case err := <-serveDone:
		if err != nil {
			fmt.Fprintf(stderr, "kvserver: serve: %v\n", err)
			return 1
		}
	}
	if err := store.Close(); err != nil {
		fmt.Fprintf(stderr, "kvserver: close: %v\n", err)
		return 1
	}
	return 0
}

// runVerify prints what recovery found and, given an ackfile, checks
// the recovered state against the durability acks handed out before the
// crash. The loadgen records, per WAL lane, the highest LSN whose
// response it actually received; the server acks only at the durable
// watermark; so recovery must cover those LSNs —
// check.RecoveredPrefixLanes states this as "nothing acked is lost,
// nothing unappended is invented", lane by lane.
//
// Ackfile formats: one bare decimal (the unsharded legacy format,
// meaning lane 0), or one "lane lsn" pair per line for a sharded run.
func runVerify(stdout, stderr io.Writer, info *kv.RecoveryInfo, ackfile string) int {
	summary, _ := json.Marshal(info)
	fmt.Fprintf(stdout, "%s\n", summary)
	if ackfile == "" {
		return 0
	}
	b, err := os.ReadFile(ackfile)
	if err != nil {
		fmt.Fprintf(stderr, "kvserver: -ackfile: %v\n", err)
		return 1
	}
	acked, err := check.ParseAckfile(string(b), info.Shards)
	if err != nil {
		fmt.Fprintf(stderr, "kvserver: -ackfile %s: %v\n", ackfile, err)
		return 1
	}
	// check.AckedPrefixLanes synthesizes the minimal per-lane history
	// both sides can attest to (appends through max(acked, recovered),
	// watermark through acked) and runs the lane-prefix axioms over it.
	recovered := make([]uint64, info.Shards)
	for lane := 0; lane < info.Shards && lane < len(info.Lanes); lane++ {
		recovered[lane] = info.Lanes[lane].LastLSN // zero in -mode none (no lanes)
	}
	violations := check.AckedPrefixLanes(acked, recovered)
	for _, v := range violations {
		fmt.Fprintf(stderr, "kvserver: verify: %s\n", v.Msg)
	}
	if len(violations) > 0 {
		return 1
	}
	for lane := 0; lane < info.Shards; lane++ {
		fmt.Fprintf(stdout, "verify ok: lane %d recovered LSN %d covers acked LSN %d\n",
			lane, recovered[lane], acked[lane])
	}
	fmt.Fprintf(stdout, "verify ok: %d lanes, %d keys\n", info.Shards, info.Keys)
	return 0
}
