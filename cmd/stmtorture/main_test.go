package main

import (
	"bytes"
	"strings"
	"testing"
)

// Every workload, in both execution modes, must hold its invariants and
// produce a history the offline checker accepts, under fault injection.
func TestRunWorkloadsClean(t *testing.T) {
	for _, mode := range []string{"stm", "htm"} {
		for _, wl := range []string{"bank", "tree", "defer", "locks"} {
			t.Run(mode+"/"+wl, func(t *testing.T) {
				t.Parallel()
				var out, errb bytes.Buffer
				code := run([]string{
					"-duration", "150ms", "-threads", "4",
					"-workload", wl, "-mode", mode,
					"-check", "-inject", "-seed", "11",
					"-maxops", "500",
				}, &out, &errb)
				if code != 0 {
					t.Fatalf("exit code %d, want 0\nstdout:\n%s\nstderr:\n%s",
						code, out.String(), errb.String())
				}
				if !strings.Contains(out.String(), "all properties hold") {
					t.Fatalf("checker verdict missing from output:\n%s", out.String())
				}
				if !strings.Contains(out.String(), "all invariants held") {
					t.Fatalf("success line missing:\n%s", out.String())
				}
			})
		}
	}
}

// failf must propagate to a nonzero exit code: the selfcheck workload
// deliberately reports one failure.
func TestFailurePathSetsExitCode(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-duration", "10ms", "-workload", "selfcheck"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "deliberate failure") {
		t.Fatalf("failf output missing:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "1 invariant violations") {
		t.Fatalf("violation summary missing:\n%s", errb.String())
	}
}

// Usage errors (bad flags, unknown mode or workload) exit with 2, not 0
// and not a crash.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-mode", "tsx"},
		{"-workload", "nonsense", "-duration", "10ms"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// The selfcheck workload must stay out of "all" so normal full runs
// cannot be poisoned by the deliberate failure.
func TestSelfcheckExcludedFromAll(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-duration", "20ms", "-threads", "2", "-maxops", "50"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstderr:\n%s", code, errb.String())
	}
	if strings.Contains(out.String(), "selfcheck") || strings.Contains(errb.String(), "selfcheck") {
		t.Fatal("selfcheck ran as part of the default workload set")
	}
}
