// Command stmtorture stress-tests the STM runtime, transaction-friendly
// locks, and atomic deferral under sustained concurrency, checking
// invariants continuously:
//
//   - bank: transfers among accounts; total must be conserved, and
//     transactional audits must never observe a partial transfer;
//   - tree: random red-black tree mutations; structural invariants are
//     validated periodically;
//   - defer: transactions update a deferrable pair (a transactionally,
//     b in the deferred operation); subscribing readers must never
//     observe a != b;
//   - locks: opposite-order multi-lock acquisition through transactions
//     (deadlock-freedom check).
//
// Example:
//
//	stmtorture -duration 10s -threads 8 -workload all -mode stm
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"deferstm/internal/core"
	"deferstm/internal/ds"
	"deferstm/internal/stm"
	"deferstm/internal/txlock"
)

var failures atomic.Int64

func failf(format string, args ...any) {
	failures.Add(1)
	fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
}

func main() {
	var (
		duration = flag.Duration("duration", 5*time.Second, "run time per workload")
		threads  = flag.Int("threads", 8, "concurrent worker goroutines")
		workload = flag.String("workload", "all", "bank|tree|defer|locks|all")
		mode     = flag.String("mode", "stm", "stm|htm")
	)
	flag.Parse()

	cfg := stm.Config{}
	if *mode == "htm" {
		cfg.Mode = stm.ModeHTM
	} else if *mode != "stm" {
		fmt.Fprintf(os.Stderr, "stmtorture: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	workloads := map[string]func(*stm.Runtime, int, time.Duration){
		"bank":  tortureBank,
		"tree":  tortureTree,
		"defer": tortureDefer,
		"locks": tortureLocks,
	}
	order := []string{"bank", "tree", "defer", "locks"}

	ran := 0
	for _, name := range order {
		if *workload != "all" && *workload != name {
			continue
		}
		ran++
		rt := stm.New(cfg)
		start := time.Now()
		workloads[name](rt, *threads, *duration)
		snap := rt.Snapshot()
		fmt.Printf("%-6s %8.2fs  %s\n", name, time.Since(start).Seconds(), snap.String())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "stmtorture: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if n := failures.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "stmtorture: %d invariant violations\n", n)
		os.Exit(1)
	}
	fmt.Println("all invariants held")
}

func runFor(threads int, d time.Duration, body func(tid int, rng func(int) int64)) {
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			state := uint64(tid)*2654435761 + 1
			rng := func(n int) int64 {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return int64(state % uint64(n))
			}
			for time.Now().Before(stop) {
				body(tid, rng)
			}
		}(t)
	}
	wg.Wait()
}

func tortureBank(rt *stm.Runtime, threads int, d time.Duration) {
	const nAcct = 32
	const initial = 1000
	accounts := make([]*stm.Var[int], nAcct)
	for i := range accounts {
		accounts[i] = stm.NewVar(initial)
	}
	runFor(threads, d, func(tid int, rng func(int) int64) {
		if rng(10) == 0 { // audit
			sum := 0
			_ = rt.Atomic(func(tx *stm.Tx) error {
				sum = 0
				for _, a := range accounts {
					sum += a.Get(tx)
				}
				return nil
			})
			if sum != nAcct*initial {
				failf("bank: audit saw %d, want %d", sum, nAcct*initial)
			}
			return
		}
		from, to := rng(nAcct), rng(nAcct)
		if from == to {
			return
		}
		amt := int(rng(100)) + 1
		_ = rt.Atomic(func(tx *stm.Tx) error {
			f := accounts[from].Get(tx)
			if f < amt {
				return nil
			}
			accounts[from].Set(tx, f-amt)
			accounts[to].Set(tx, accounts[to].Get(tx)+amt)
			return nil
		})
	})
	total := 0
	for _, a := range accounts {
		total += a.Load()
	}
	if total != nAcct*initial {
		failf("bank: final total %d, want %d", total, nAcct*initial)
	}
}

func tortureTree(rt *stm.Runtime, threads int, d time.Duration) {
	tree := ds.NewRBTree[int]()
	var ops atomic.Int64
	done := make(chan struct{})
	go func() { // periodic validator
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if err := tree.Validate(); err != nil {
					failf("tree: %v", err)
				}
			}
		}
	}()
	runFor(threads, d, func(tid int, rng func(int) int64) {
		ops.Add(1)
		k := rng(1000)
		switch rng(3) {
		case 0, 1:
			_ = rt.Atomic(func(tx *stm.Tx) error { tree.Insert(tx, k, tid); return nil })
		default:
			_ = rt.Atomic(func(tx *stm.Tx) error { tree.Delete(tx, k); return nil })
		}
	})
	close(done)
	if err := tree.Validate(); err != nil {
		failf("tree final: %v", err)
	}
	var n int
	var keys []int64
	_ = rt.Atomic(func(tx *stm.Tx) error { n = tree.Len(tx); keys = tree.Keys(tx); return nil })
	if n != len(keys) {
		failf("tree: size %d != key count %d", n, len(keys))
	}
}

type torturePair struct {
	core.Deferrable
	a, b stm.Var[int]
}

func tortureDefer(rt *stm.Runtime, threads int, d time.Duration) {
	pairs := make([]*torturePair, 8)
	for i := range pairs {
		pairs[i] = &torturePair{}
	}
	runFor(threads, d, func(tid int, rng func(int) int64) {
		p := pairs[rng(len(pairs))]
		if rng(4) == 0 { // writer: a transactionally, b deferred
			_ = rt.Atomic(func(tx *stm.Tx) error {
				p.Subscribe(tx)
				v := p.a.Get(tx) + 1
				p.a.Set(tx, v)
				core.AtomicDefer(tx, func(ctx *core.OpCtx) {
					core.Store(ctx, &p.b, v)
				}, p)
				return nil
			})
			return
		}
		var a, b int
		_ = rt.Atomic(func(tx *stm.Tx) error {
			p.Subscribe(tx)
			a = p.a.Get(tx)
			b = p.b.Get(tx)
			return nil
		})
		if a != b {
			failf("defer: observed a=%d b=%d", a, b)
		}
	})
	for i, p := range pairs {
		if p.Locked() {
			failf("defer: pair %d lock leaked", i)
		}
		if p.a.Load() != p.b.Load() {
			failf("defer: final pair %d a=%d b=%d", i, p.a.Load(), p.b.Load())
		}
	}
}

func tortureLocks(rt *stm.Runtime, threads int, d time.Duration) {
	locks := make([]*txlock.Lock, 4)
	for i := range locks {
		locks[i] = txlock.NewLock()
	}
	shared := make([]int, len(locks)) // each protected by locks[i]
	var mu sync.Mutex                 // protects expected counts
	expected := make([]int, len(locks))
	runFor(threads, d, func(tid int, rng func(int) int64) {
		i, j := rng(len(locks)), rng(len(locks))
		if i == j {
			j = (j + 1) % int64(len(locks))
		}
		me := rt.NewOwner()
		// Acquire both locks in one transaction (arbitrary order —
		// deadlock-free by construction), mutate, release.
		_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
			locks[i].Acquire(tx)
			locks[j].Acquire(tx)
			return nil
		})
		shared[i]++
		shared[j]++
		mu.Lock()
		expected[i]++
		expected[j]++
		mu.Unlock()
		_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
			if err := locks[i].Release(tx); err != nil {
				return err
			}
			return locks[j].Release(tx)
		})
	})
	for i := range locks {
		if locks[i].OwnerSnapshot() != 0 {
			failf("locks: lock %d leaked", i)
		}
		if shared[i] != expected[i] {
			failf("locks: slot %d = %d, want %d (mutual exclusion violated)", i, shared[i], expected[i])
		}
	}
}
