// Command stmtorture stress-tests the STM runtime, transaction-friendly
// locks, and atomic deferral under sustained concurrency, checking
// invariants continuously:
//
//   - bank: transfers among accounts; total must be conserved, and
//     transactional audits must never observe a partial transfer;
//   - tree: random red-black tree mutations; structural invariants are
//     validated periodically;
//   - defer: transactions update a deferrable pair (a transactionally,
//     b in the deferred operation); subscribing readers must never
//     observe a != b;
//   - locks: opposite-order multi-lock acquisition through transactions
//     (deadlock-freedom check);
//   - kvstore: concurrent counters in the durable KV store (WAL group
//     commit, checkpoints, durability waits); the live view must match
//     per-thread tallies and a post-close recovery must reproduce it;
//   - watcher: producers and consumers blocking on a bounded queue via
//     watcher-based Retry (park on full/empty, wake on commit); every
//     produced value must be consumed exactly once and in per-producer
//     order, and no consumer may sleep through a wakeup;
//   - scanner: transfer writers hammer a conserved keyspace while
//     snapshot transactions (stm.AtomicSnapshot) sum it end to end;
//     every scan must observe one consistent cut (the conserved total),
//     whether it was served from version chains or fell back to the
//     validating path, and the snapshot machinery must actually have
//     run (snapshot commits + fallbacks == scans);
//   - selfcheck: deliberately reports one failure, so the harness's
//     nonzero-exit path can itself be tested (not part of "all").
//
// With -check, every event of the run is recorded (internal/history)
// and verified offline by internal/check against serializability,
// opacity, deferral atomicity, two-phase locking and the WAL
// durability axioms. With -inject,
// seeded fault injection (-seed) drives the runtime onto adversarial
// schedules: forced conflict and capacity aborts, delayed write-back,
// stalls inside quiescence and the commit→λ window, and — for the
// watcher workload — stalls in the register→park and publish→wake
// windows of the retry protocol (the lost-wakeup races).
//
// Example:
//
//	stmtorture -duration 10s -threads 8 -workload all -mode stm
//	stmtorture -duration 2s -check -inject -seed 7
//	stmtorture -duration 1s -workload defer -trace trace.json
//	stmtorture -duration 10s -metrics 127.0.0.1:9192
//
// With -metrics, the run serves live Prometheus-text /metrics and
// /debug/pprof on the given address for its duration. With -trace, the
// full event stream is exported as Chrome trace-event JSON (load in
// Perfetto or chrome://tracing); -trace composes with -check, which
// then verifies the same stream the trace was drawn from.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"deferstm/internal/bench"
	"deferstm/internal/check"
	"deferstm/internal/core"
	"deferstm/internal/ds"
	"deferstm/internal/history"
	"deferstm/internal/kv"
	"deferstm/internal/obs"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/txlock"
	"deferstm/internal/wal"
)

// torture carries the per-run harness state: failure accounting, the
// base seed for worker RNGs, and the per-thread operation cap used to
// bound recorded histories.
type torture struct {
	failures atomic.Int64
	stderr   io.Writer
	seed     uint64
	maxOps   int64
}

func (h *torture) failf(format string, args ...any) {
	h.failures.Add(1)
	fmt.Fprintf(h.stderr, "FAIL: "+format+"\n", args...)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the torture harness and returns the process exit code:
// 0 on success, 1 on invariant or history-check violations, 2 on usage
// errors. It is separated from main so the package test can assert the
// nonzero-exit paths.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stmtorture", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		duration  = fs.Duration("duration", 5*time.Second, "run time per workload")
		threads   = fs.Int("threads", 8, "concurrent worker goroutines")
		workload  = fs.String("workload", "all", "bank|tree|defer|locks|kvstore|watcher|scanner|replica|selfcheck|all")
		mode      = fs.String("mode", "stm", "stm|htm")
		seed      = fs.Uint64("seed", 1, "base seed for worker RNGs and fault injection")
		checkHist = fs.Bool("check", false, "record the full event history and verify serializability, opacity, deferral atomicity and 2PL")
		inject    = fs.Bool("inject", false, "enable seeded fault injection (forced aborts, delayed write-back, quiescence and commit→λ stalls)")
		maxOps    = fs.Int64("maxops", 0, "per-thread operation cap (0 = unlimited; defaults to 4000 under -check to bound the recorded history)")
		metrics   = fs.String("metrics", "", "serve /metrics + /debug/pprof on this address while the run lasts (e.g. 127.0.0.1:9192)")
		trace     = fs.String("trace", "", "write the run's event stream as Chrome trace-event JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := stm.Config{}
	switch *mode {
	case "stm":
	case "htm":
		cfg.Mode = stm.ModeHTM
	default:
		fmt.Fprintf(stderr, "stmtorture: unknown mode %q\n", *mode)
		return 2
	}
	if *inject {
		cfg.Inject = &stm.Inject{
			Seed:                  *seed,
			ConflictPct:           15,
			CapacityPct:           2,
			WriteBackDelayPct:     5,
			QuiesceStallPct:       5,
			PreHookStallPct:       15,
			RetryRegisterStallPct: 20,
			WakeDelayPct:          20,
			StallSpins:            512,
		}
	}
	ops := *maxOps
	if (*checkHist || *trace != "") && ops == 0 {
		ops = 4000 // bound the recorded history/trace
	}

	// Workloads each build a fresh runtime, so shared instruments plus an
	// atomic runtime pointer keep the exported series stable across them
	// (same scheme as kvbench).
	var met *stm.Metrics
	var curRT atomic.Pointer[stm.Runtime]
	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.SetBuildInfo("commit", bench.GitCommit(), "go", runtime.Version(), "binary", "stmtorture")
		met = stm.NewMetrics(reg)
		stm.RegisterStats(reg, func() stm.StatsSnapshot {
			if rt := curRT.Load(); rt != nil {
				return rt.Snapshot()
			}
			return stm.StatsSnapshot{}
		})
		addr, stop, err := reg.Serve(*metrics)
		if err != nil {
			fmt.Fprintf(stderr, "stmtorture: -metrics: %v\n", err)
			return 2
		}
		defer stop()
		fmt.Fprintf(stderr, "metrics: http://%s/metrics\n", addr)
	}
	var tw *history.TraceWriter
	if *trace != "" {
		tw = history.NewTraceWriter()
	}

	workloads := map[string]func(*torture, *stm.Runtime, int, time.Duration){
		"bank":      tortureBank,
		"tree":      tortureTree,
		"defer":     tortureDefer,
		"locks":     tortureLocks,
		"kvstore":   tortureKVStore,
		"watcher":   tortureWatcher,
		"scanner":   tortureScanner,
		"replica":   tortureReplica,
		"selfcheck": tortureSelfcheck,
	}
	order := []string{"bank", "tree", "defer", "locks", "kvstore", "watcher", "scanner"} // replica (own sockets/goroutine budget) and selfcheck are opt-in

	var total int64
	ran := 0
	for _, name := range order {
		if *workload != "all" && *workload != name {
			continue
		}
		ran++
		total += runWorkload(name, workloads[name], cfg, *threads, *duration, *seed, ops, *checkHist, met, &curRT, tw, stdout, stderr)
	}
	if ran == 0 {
		fn, ok := workloads[*workload]
		if !ok {
			fmt.Fprintf(stderr, "stmtorture: unknown workload %q\n", *workload)
			return 2
		}
		total += runWorkload(*workload, fn, cfg, *threads, *duration, *seed, ops, *checkHist, met, &curRT, tw, stdout, stderr)
	}
	if tw != nil {
		f, err := os.Create(*trace)
		if err == nil {
			err = tw.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "stmtorture: -trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d events)\n", *trace, tw.Len())
	}
	if total > 0 {
		fmt.Fprintf(stderr, "stmtorture: %d invariant violations\n", total)
		return 1
	}
	fmt.Fprintln(stdout, "all invariants held")
	return 0
}

// runWorkload runs one named workload on a fresh runtime, optionally
// recording and checking its history, and returns the failure count.
func runWorkload(name string, fn func(*torture, *stm.Runtime, int, time.Duration),
	cfg stm.Config, threads int, d time.Duration, seed uint64, maxOps int64,
	checkHist bool, met *stm.Metrics, curRT *atomic.Pointer[stm.Runtime],
	tw *history.TraceWriter, stdout, stderr io.Writer) int64 {

	var log *history.Log
	if checkHist {
		log = history.New()
		cfg.Recorder = log
	}
	if tw != nil {
		// The trace captures everything; under -check it tees into the
		// fresh per-workload log so the same stream is also verified.
		if log != nil {
			tw.Tee(log)
		}
		cfg.Recorder = tw
	}
	h := &torture{stderr: stderr, seed: seed, maxOps: maxOps}
	rt := stm.New(cfg)
	if met != nil {
		rt.SetMetrics(met)
		curRT.Store(rt)
	}
	before := rt.Snapshot()
	start := time.Now()
	fn(h, rt, threads, d)
	snap := rt.Snapshot().Delta(before)
	fmt.Fprintf(stdout, "%-9s %7.2fs  %s\n", name, time.Since(start).Seconds(), snap.String())
	if checkHist {
		rep := check.History(log.Events())
		if !rep.OK() {
			h.failf("%s: history check failed (seed %d):\n%s", name, seed, rep)
		} else {
			fmt.Fprintf(stdout, "%-9s          %s\n", "", rep.String())
		}
	}
	return h.failures.Load()
}

// runFor drives threads workers for at most d (and, if h.maxOps > 0, at
// most that many operations per worker). Worker RNGs are derived from
// h.seed so runs are reproducible up to goroutine interleaving.
func (h *torture) runFor(threads int, d time.Duration, body func(tid int, rng func(int) int64)) {
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			state := (h.seed+uint64(tid))*2654435761 + 1
			rng := func(n int) int64 {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return int64(state % uint64(n))
			}
			for i := int64(0); time.Now().Before(stop) && (h.maxOps == 0 || i < h.maxOps); i++ {
				body(tid, rng)
			}
		}(t)
	}
	wg.Wait()
}

func tortureBank(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	const nAcct = 32
	const initial = 1000
	accounts := make([]*stm.Var[int], nAcct)
	for i := range accounts {
		accounts[i] = stm.NewVar(initial)
	}
	h.runFor(threads, d, func(tid int, rng func(int) int64) {
		if rng(10) == 0 { // audit
			sum := 0
			_ = rt.Atomic(func(tx *stm.Tx) error {
				sum = 0
				for _, a := range accounts {
					sum += a.Get(tx)
				}
				return nil
			})
			if sum != nAcct*initial {
				h.failf("bank: audit saw %d, want %d", sum, nAcct*initial)
			}
			return
		}
		from, to := rng(nAcct), rng(nAcct)
		if from == to {
			return
		}
		amt := int(rng(100)) + 1
		_ = rt.Atomic(func(tx *stm.Tx) error {
			f := accounts[from].Get(tx)
			if f < amt {
				return nil
			}
			accounts[from].Set(tx, f-amt)
			accounts[to].Set(tx, accounts[to].Get(tx)+amt)
			return nil
		})
	})
	total := 0
	for _, a := range accounts {
		total += a.Load()
	}
	if total != nAcct*initial {
		h.failf("bank: final total %d, want %d", total, nAcct*initial)
	}
}

func tortureTree(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	tree := ds.NewRBTree[int]()
	done := make(chan struct{})
	go func() { // periodic validator
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if err := tree.Validate(); err != nil {
					h.failf("tree: %v", err)
				}
			}
		}
	}()
	h.runFor(threads, d, func(tid int, rng func(int) int64) {
		k := rng(1000)
		switch rng(3) {
		case 0, 1:
			_ = rt.Atomic(func(tx *stm.Tx) error { tree.Insert(tx, k, tid); return nil })
		default:
			_ = rt.Atomic(func(tx *stm.Tx) error { tree.Delete(tx, k); return nil })
		}
	})
	close(done)
	if err := tree.Validate(); err != nil {
		h.failf("tree final: %v", err)
	}
	var n int
	var keys []int64
	_ = rt.Atomic(func(tx *stm.Tx) error { n = tree.Len(tx); keys = tree.Keys(tx); return nil })
	if n != len(keys) {
		h.failf("tree: size %d != key count %d", n, len(keys))
	}
}

type torturePair struct {
	core.Deferrable
	a, b stm.Var[int]
}

func tortureDefer(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	pairs := make([]*torturePair, 8)
	for i := range pairs {
		pairs[i] = &torturePair{}
	}
	h.runFor(threads, d, func(tid int, rng func(int) int64) {
		p := pairs[rng(len(pairs))]
		if rng(4) == 0 { // writer: a transactionally, b deferred
			_ = rt.Atomic(func(tx *stm.Tx) error {
				p.Subscribe(tx)
				v := p.a.Get(tx) + 1
				p.a.Set(tx, v)
				core.AtomicDefer(tx, func(ctx *core.OpCtx) {
					core.Store(ctx, &p.b, v)
				}, p)
				return nil
			})
			return
		}
		var a, b int
		_ = rt.Atomic(func(tx *stm.Tx) error {
			p.Subscribe(tx)
			a = p.a.Get(tx)
			b = p.b.Get(tx)
			return nil
		})
		if a != b {
			h.failf("defer: observed a=%d b=%d", a, b)
		}
	})
	for i, p := range pairs {
		if p.Locked() {
			h.failf("defer: pair %d lock leaked", i)
		}
		if p.a.Load() != p.b.Load() {
			h.failf("defer: final pair %d a=%d b=%d", i, p.a.Load(), p.b.Load())
		}
	}
}

func tortureLocks(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	locks := make([]*txlock.Lock, 4)
	for i := range locks {
		locks[i] = txlock.NewLock()
	}
	shared := make([]int, len(locks)) // each protected by locks[i]
	var mu sync.Mutex                 // protects expected counts
	expected := make([]int, len(locks))
	h.runFor(threads, d, func(tid int, rng func(int) int64) {
		i, j := rng(len(locks)), rng(len(locks))
		if i == j {
			j = (j + 1) % int64(len(locks))
		}
		me := rt.NewOwner()
		// Acquire both locks in one transaction (arbitrary order —
		// deadlock-free by construction), mutate, release.
		_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
			locks[i].Acquire(tx)
			locks[j].Acquire(tx)
			return nil
		})
		shared[i]++
		shared[j]++
		mu.Lock()
		expected[i]++
		expected[j]++
		mu.Unlock()
		_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
			if err := locks[i].Release(tx); err != nil {
				return err
			}
			return locks[j].Release(tx)
		})
	})
	for i := range locks {
		if locks[i].OwnerSnapshot() != 0 {
			h.failf("locks: lock %d leaked", i)
		}
		if shared[i] != expected[i] {
			h.failf("locks: slot %d = %d, want %d (mutual exclusion violated)", i, shared[i], expected[i])
		}
	}
}

// tortureKVStore hammers the durable KV store (WAL group commit via
// atomic deferral) with per-thread counters on a simulated disk, taking
// occasional checkpoints, then closes the store and recovers it on a
// fresh runtime: the recovered contents must equal the live contents at
// close. Each thread increments only its own keys, so every counter's
// final value must equal the thread's local count — a lost or duplicated
// WAL replay shows up as a counter mismatch. Under -check the recorded
// history additionally passes through the durability axioms
// (internal/check's EvWALAppend/EvWALDurable rules).
func tortureKVStore(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	const slots = 8
	fs := simio.NewFS(simio.Latency{})
	s, _, err := kv.Open(rt, wal.NewSimBackend(fs), kv.Options{WAL: wal.Options{SegmentBytes: 1 << 16}})
	if err != nil {
		h.failf("kvstore: open: %v", err)
		return
	}
	counts := make([][slots]int, threads)
	var ckptMu sync.Mutex
	h.runFor(threads, d, func(tid int, rng func(int) int64) {
		slot := rng(slots)
		key := fmt.Sprintf("t%d-c%d", tid, slot)
		lsn, err := s.Update(func(tx *stm.Tx, b *kv.Batch) error {
			cur, _ := b.Get(key)
			n, _ := strconv.Atoi(cur)
			b.Put(key, strconv.Itoa(n+1))
			return nil
		})
		if err != nil {
			h.failf("kvstore: update: %v", err)
			return
		}
		counts[tid][slot]++
		if rng(64) == 0 {
			s.WaitDurable(lsn)
		}
		if rng(400) == 0 && ckptMu.TryLock() {
			if _, err := s.Checkpoint(); err != nil {
				h.failf("kvstore: checkpoint: %v", err)
			}
			ckptMu.Unlock()
		}
	})

	live := map[string]string{}
	if err := s.View(func(tx *stm.Tx) error {
		clear(live)
		s.Range(tx, func(k, v string) bool { live[k] = v; return true })
		return nil
	}); err != nil {
		h.failf("kvstore: view: %v", err)
	}
	for tid := range counts {
		for slot, want := range counts[tid] {
			if want == 0 {
				continue
			}
			key := fmt.Sprintf("t%d-c%d", tid, slot)
			if got, _ := strconv.Atoi(live[key]); got != want {
				h.failf("kvstore: %s = %d, want %d (lost or duplicated update)", key, got, want)
			}
		}
	}
	if err := s.Close(); err != nil {
		h.failf("kvstore: close: %v", err)
		return
	}

	// Recover on a fresh runtime from the simulated disk and compare.
	s2, _, err := kv.Open(stm.NewDefault(), wal.NewSimBackend(fs), kv.Options{})
	if err != nil {
		h.failf("kvstore: recovery: %v", err)
		return
	}
	recovered := map[string]string{}
	if err := s2.View(func(tx *stm.Tx) error {
		clear(recovered)
		s2.Range(tx, func(k, v string) bool { recovered[k] = v; return true })
		return nil
	}); err != nil {
		h.failf("kvstore: recovered view: %v", err)
	}
	if len(recovered) != len(live) {
		h.failf("kvstore: recovered %d keys, want %d", len(recovered), len(live))
	}
	for k, v := range live {
		if recovered[k] != v {
			h.failf("kvstore: recovered %s = %q, want %q", k, recovered[k], v)
		}
	}
	if err := s2.Close(); err != nil {
		h.failf("kvstore: recovered close: %v", err)
	}
}

// tortureWatcher hammers the watcher-based Retry path: half the threads
// produce into a deliberately tiny bounded queue (parking on full), half
// consume from it (parking on empty), so every operation crosses the
// register→validate→park→wake protocol. Values encode producer<<32|seq.
// When producers finish they raise a transactional closed flag; consumers
// drain the backlog and exit on closed+empty. Invariants: every produced
// value is consumed exactly once (conservation), and each consumer sees
// any one producer's values in strictly increasing seq order (the queue
// is FIFO and each value is taken once). A lost wakeup shows up as the
// run hanging until -duration expires with values still in the queue —
// caught by the conservation check; under -check the recorded
// EvWatchRegister/EvWake history is additionally verified against the
// retry-wakeup rule.
func tortureWatcher(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	producers := threads / 2
	if producers == 0 {
		producers = 1
	}
	consumers := threads - producers
	if consumers == 0 {
		consumers = 1
	}
	q := ds.NewBoundedQueue[uint64](4) // tiny: force parking on both ends
	closed := stm.NewVar(false)
	stop := time.Now().Add(d)

	produced := make([]uint64, producers) // values emitted by each producer
	type consumed struct {
		count   int64
		sum     uint64
		lastSeq []int64 // per-producer last seq this consumer took
	}
	got := make([]consumed, consumers)

	var prodWG, consWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(pid int) {
			defer prodWG.Done()
			for seq := int64(0); time.Now().Before(stop) && (h.maxOps == 0 || seq < h.maxOps); seq++ {
				v := uint64(pid)<<32 | uint64(seq)
				_ = rt.Atomic(func(tx *stm.Tx) error {
					q.Put(tx, v) // parks via Retry when full
					return nil
				})
				produced[pid]++
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func(cid int) {
			defer consWG.Done()
			got[cid].lastSeq = make([]int64, producers)
			for i := range got[cid].lastSeq {
				got[cid].lastSeq[i] = -1
			}
			for {
				var v uint64
				done := false
				_ = rt.Atomic(func(tx *stm.Tx) error {
					var ok bool
					if v, ok = q.TryTake(tx); ok {
						done = false
						return nil
					}
					if closed.Get(tx) {
						done = true
						return nil
					}
					tx.Retry() // parks until a Put or Close commits
					return nil
				})
				if done {
					return
				}
				pid, seq := int(v>>32), int64(v&0xffffffff)
				if pid >= producers {
					h.failf("watcher: consumed value from impossible producer %d", pid)
					return
				}
				if seq <= got[cid].lastSeq[pid] {
					h.failf("watcher: consumer %d saw producer %d seq %d after %d (FIFO order violated)",
						cid, pid, seq, got[cid].lastSeq[pid])
				}
				got[cid].lastSeq[pid] = seq
				got[cid].count++
				got[cid].sum += v
			}
		}(c)
	}

	prodWG.Wait()
	// Raising the flag is itself a commit, so it wakes consumers parked
	// on an empty queue; they drain any backlog and exit.
	_ = rt.Atomic(func(tx *stm.Tx) error {
		closed.Set(tx, true)
		return nil
	})
	consWG.Wait()

	var wantCount, wantSum uint64
	for pid, n := range produced {
		wantCount += n
		for seq := uint64(0); seq < n; seq++ {
			wantSum += uint64(pid)<<32 | seq
		}
	}
	var gotCount, gotSum uint64
	for _, c := range got {
		gotCount += uint64(c.count)
		gotSum += c.sum
	}
	if gotCount != wantCount || gotSum != wantSum {
		h.failf("watcher: consumed %d values (sum %d), want %d (sum %d) — lost or duplicated handoff",
			gotCount, gotSum, wantCount, wantSum)
	}
}

// tortureScanner hammers snapshot reads: most threads run transfer
// writers over a conserved keyspace (plus occasional StoreDirect
// publishes to a side var, which chain versions outside any
// transaction), while the rest repeatedly sum the whole keyspace in
// snapshot mode. Every scan must see one consistent cut — the conserved
// total — no matter how many writers commit mid-scan; a torn scan
// (partial transfer, or values from two different instants) shows up as
// a wrong sum. Scans that outrun the default chain depth fall back to
// the validating path, which must be just as consistent; the workload
// asserts the snapshot machinery really ran by reconciling snapshot
// commits + fallbacks against the scan count. Under -check the recorded
// history additionally passes the snapshot-consistency axioms (pinned
// cut, truncation-never-ahead-of-a-reader).
func tortureScanner(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	const nKeys = 48
	const initial = 1000
	keys := make([]*stm.Var[int], nKeys)
	for i := range keys {
		keys[i] = stm.NewVar(initial)
	}
	side := stm.NewVar(0)
	scanners := threads / 4
	if scanners == 0 {
		scanners = 1
	}
	before := rt.Snapshot()
	var scans atomic.Int64
	h.runFor(threads, d, func(tid int, rng func(int) int64) {
		if tid < scanners {
			sum := 0
			if err := rt.AtomicSnapshot(func(tx *stm.Tx) error {
				sum = 0
				for _, k := range keys {
					sum += k.Get(tx)
				}
				_ = side.Get(tx)
				return nil
			}); err != nil {
				h.failf("scanner: snapshot scan: %v", err)
				return
			}
			if sum != nKeys*initial {
				h.failf("scanner: scan saw %d, want %d (torn cut)", sum, nKeys*initial)
			}
			scans.Add(1)
			return
		}
		from, to := rng(nKeys), rng(nKeys)
		if from == to {
			return
		}
		amt := int(rng(50)) + 1
		_ = rt.Atomic(func(tx *stm.Tx) error {
			f := keys[from].Get(tx)
			if f < amt {
				return nil
			}
			keys[from].Set(tx, f-amt)
			keys[to].Set(tx, keys[to].Get(tx)+amt)
			return nil
		})
		if rng(32) == 0 {
			side.StoreDirect(rt, int(rng(1<<20)))
		}
	})
	total := 0
	for _, k := range keys {
		total += k.Load()
	}
	if total != nKeys*initial {
		h.failf("scanner: final total %d, want %d", total, nKeys*initial)
	}
	delta := rt.Snapshot().Delta(before)
	if got := int64(delta.Snapshots + delta.SnapshotFallbacks); got != scans.Load() {
		h.failf("scanner: %d snapshot commits + fallbacks, want %d scans", got, scans.Load())
	}
	if rt.ActiveSnapshots() != 0 {
		h.failf("scanner: %d snapshots still registered after the run", rt.ActiveSnapshots())
	}
}

// tortureSelfcheck deliberately reports one failure so the nonzero-exit
// path of the harness can be asserted by the package test.
func tortureSelfcheck(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	h.failf("selfcheck: deliberate failure (harness exit-code test)")
}
