// Command stmtorture stress-tests the STM runtime, transaction-friendly
// locks, and atomic deferral under sustained concurrency, checking
// invariants continuously:
//
//   - bank: transfers among accounts; total must be conserved, and
//     transactional audits must never observe a partial transfer;
//   - tree: random red-black tree mutations; structural invariants are
//     validated periodically;
//   - defer: transactions update a deferrable pair (a transactionally,
//     b in the deferred operation); subscribing readers must never
//     observe a != b;
//   - locks: opposite-order multi-lock acquisition through transactions
//     (deadlock-freedom check);
//   - selfcheck: deliberately reports one failure, so the harness's
//     nonzero-exit path can itself be tested (not part of "all").
//
// With -check, every event of the run is recorded (internal/history)
// and verified offline by internal/check against serializability,
// opacity, deferral atomicity and two-phase locking. With -inject,
// seeded fault injection (-seed) drives the runtime onto adversarial
// schedules: forced conflict and capacity aborts, delayed write-back,
// and stalls inside quiescence and the commit→λ window.
//
// Example:
//
//	stmtorture -duration 10s -threads 8 -workload all -mode stm
//	stmtorture -duration 2s -check -inject -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"deferstm/internal/check"
	"deferstm/internal/core"
	"deferstm/internal/ds"
	"deferstm/internal/history"
	"deferstm/internal/stm"
	"deferstm/internal/txlock"
)

// torture carries the per-run harness state: failure accounting, the
// base seed for worker RNGs, and the per-thread operation cap used to
// bound recorded histories.
type torture struct {
	failures atomic.Int64
	stderr   io.Writer
	seed     uint64
	maxOps   int64
}

func (h *torture) failf(format string, args ...any) {
	h.failures.Add(1)
	fmt.Fprintf(h.stderr, "FAIL: "+format+"\n", args...)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the torture harness and returns the process exit code:
// 0 on success, 1 on invariant or history-check violations, 2 on usage
// errors. It is separated from main so the package test can assert the
// nonzero-exit paths.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stmtorture", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		duration  = fs.Duration("duration", 5*time.Second, "run time per workload")
		threads   = fs.Int("threads", 8, "concurrent worker goroutines")
		workload  = fs.String("workload", "all", "bank|tree|defer|locks|selfcheck|all")
		mode      = fs.String("mode", "stm", "stm|htm")
		seed      = fs.Uint64("seed", 1, "base seed for worker RNGs and fault injection")
		checkHist = fs.Bool("check", false, "record the full event history and verify serializability, opacity, deferral atomicity and 2PL")
		inject    = fs.Bool("inject", false, "enable seeded fault injection (forced aborts, delayed write-back, quiescence and commit→λ stalls)")
		maxOps    = fs.Int64("maxops", 0, "per-thread operation cap (0 = unlimited; defaults to 4000 under -check to bound the recorded history)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := stm.Config{}
	switch *mode {
	case "stm":
	case "htm":
		cfg.Mode = stm.ModeHTM
	default:
		fmt.Fprintf(stderr, "stmtorture: unknown mode %q\n", *mode)
		return 2
	}
	if *inject {
		cfg.Inject = &stm.Inject{
			Seed:              *seed,
			ConflictPct:       15,
			CapacityPct:       2,
			WriteBackDelayPct: 5,
			QuiesceStallPct:   5,
			PreHookStallPct:   15,
			StallSpins:        512,
		}
	}
	ops := *maxOps
	if *checkHist && ops == 0 {
		ops = 4000
	}

	workloads := map[string]func(*torture, *stm.Runtime, int, time.Duration){
		"bank":      tortureBank,
		"tree":      tortureTree,
		"defer":     tortureDefer,
		"locks":     tortureLocks,
		"selfcheck": tortureSelfcheck,
	}
	order := []string{"bank", "tree", "defer", "locks"} // selfcheck is opt-in

	var total int64
	ran := 0
	for _, name := range order {
		if *workload != "all" && *workload != name {
			continue
		}
		ran++
		total += runWorkload(name, workloads[name], cfg, *threads, *duration, *seed, ops, *checkHist, stdout, stderr)
	}
	if ran == 0 {
		fn, ok := workloads[*workload]
		if !ok {
			fmt.Fprintf(stderr, "stmtorture: unknown workload %q\n", *workload)
			return 2
		}
		total += runWorkload(*workload, fn, cfg, *threads, *duration, *seed, ops, *checkHist, stdout, stderr)
	}
	if total > 0 {
		fmt.Fprintf(stderr, "stmtorture: %d invariant violations\n", total)
		return 1
	}
	fmt.Fprintln(stdout, "all invariants held")
	return 0
}

// runWorkload runs one named workload on a fresh runtime, optionally
// recording and checking its history, and returns the failure count.
func runWorkload(name string, fn func(*torture, *stm.Runtime, int, time.Duration),
	cfg stm.Config, threads int, d time.Duration, seed uint64, maxOps int64,
	checkHist bool, stdout, stderr io.Writer) int64 {

	var log *history.Log
	if checkHist {
		log = history.New()
		cfg.Recorder = log
	}
	h := &torture{stderr: stderr, seed: seed, maxOps: maxOps}
	rt := stm.New(cfg)
	start := time.Now()
	fn(h, rt, threads, d)
	snap := rt.Snapshot()
	fmt.Fprintf(stdout, "%-9s %7.2fs  %s\n", name, time.Since(start).Seconds(), snap.String())
	if checkHist {
		rep := check.History(log.Events())
		if !rep.OK() {
			h.failf("%s: history check failed (seed %d):\n%s", name, seed, rep)
		} else {
			fmt.Fprintf(stdout, "%-9s          %s\n", "", rep.String())
		}
	}
	return h.failures.Load()
}

// runFor drives threads workers for at most d (and, if h.maxOps > 0, at
// most that many operations per worker). Worker RNGs are derived from
// h.seed so runs are reproducible up to goroutine interleaving.
func (h *torture) runFor(threads int, d time.Duration, body func(tid int, rng func(int) int64)) {
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			state := (h.seed+uint64(tid))*2654435761 + 1
			rng := func(n int) int64 {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return int64(state % uint64(n))
			}
			for i := int64(0); time.Now().Before(stop) && (h.maxOps == 0 || i < h.maxOps); i++ {
				body(tid, rng)
			}
		}(t)
	}
	wg.Wait()
}

func tortureBank(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	const nAcct = 32
	const initial = 1000
	accounts := make([]*stm.Var[int], nAcct)
	for i := range accounts {
		accounts[i] = stm.NewVar(initial)
	}
	h.runFor(threads, d, func(tid int, rng func(int) int64) {
		if rng(10) == 0 { // audit
			sum := 0
			_ = rt.Atomic(func(tx *stm.Tx) error {
				sum = 0
				for _, a := range accounts {
					sum += a.Get(tx)
				}
				return nil
			})
			if sum != nAcct*initial {
				h.failf("bank: audit saw %d, want %d", sum, nAcct*initial)
			}
			return
		}
		from, to := rng(nAcct), rng(nAcct)
		if from == to {
			return
		}
		amt := int(rng(100)) + 1
		_ = rt.Atomic(func(tx *stm.Tx) error {
			f := accounts[from].Get(tx)
			if f < amt {
				return nil
			}
			accounts[from].Set(tx, f-amt)
			accounts[to].Set(tx, accounts[to].Get(tx)+amt)
			return nil
		})
	})
	total := 0
	for _, a := range accounts {
		total += a.Load()
	}
	if total != nAcct*initial {
		h.failf("bank: final total %d, want %d", total, nAcct*initial)
	}
}

func tortureTree(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	tree := ds.NewRBTree[int]()
	done := make(chan struct{})
	go func() { // periodic validator
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if err := tree.Validate(); err != nil {
					h.failf("tree: %v", err)
				}
			}
		}
	}()
	h.runFor(threads, d, func(tid int, rng func(int) int64) {
		k := rng(1000)
		switch rng(3) {
		case 0, 1:
			_ = rt.Atomic(func(tx *stm.Tx) error { tree.Insert(tx, k, tid); return nil })
		default:
			_ = rt.Atomic(func(tx *stm.Tx) error { tree.Delete(tx, k); return nil })
		}
	})
	close(done)
	if err := tree.Validate(); err != nil {
		h.failf("tree final: %v", err)
	}
	var n int
	var keys []int64
	_ = rt.Atomic(func(tx *stm.Tx) error { n = tree.Len(tx); keys = tree.Keys(tx); return nil })
	if n != len(keys) {
		h.failf("tree: size %d != key count %d", n, len(keys))
	}
}

type torturePair struct {
	core.Deferrable
	a, b stm.Var[int]
}

func tortureDefer(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	pairs := make([]*torturePair, 8)
	for i := range pairs {
		pairs[i] = &torturePair{}
	}
	h.runFor(threads, d, func(tid int, rng func(int) int64) {
		p := pairs[rng(len(pairs))]
		if rng(4) == 0 { // writer: a transactionally, b deferred
			_ = rt.Atomic(func(tx *stm.Tx) error {
				p.Subscribe(tx)
				v := p.a.Get(tx) + 1
				p.a.Set(tx, v)
				core.AtomicDefer(tx, func(ctx *core.OpCtx) {
					core.Store(ctx, &p.b, v)
				}, p)
				return nil
			})
			return
		}
		var a, b int
		_ = rt.Atomic(func(tx *stm.Tx) error {
			p.Subscribe(tx)
			a = p.a.Get(tx)
			b = p.b.Get(tx)
			return nil
		})
		if a != b {
			h.failf("defer: observed a=%d b=%d", a, b)
		}
	})
	for i, p := range pairs {
		if p.Locked() {
			h.failf("defer: pair %d lock leaked", i)
		}
		if p.a.Load() != p.b.Load() {
			h.failf("defer: final pair %d a=%d b=%d", i, p.a.Load(), p.b.Load())
		}
	}
}

func tortureLocks(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	locks := make([]*txlock.Lock, 4)
	for i := range locks {
		locks[i] = txlock.NewLock()
	}
	shared := make([]int, len(locks)) // each protected by locks[i]
	var mu sync.Mutex                 // protects expected counts
	expected := make([]int, len(locks))
	h.runFor(threads, d, func(tid int, rng func(int) int64) {
		i, j := rng(len(locks)), rng(len(locks))
		if i == j {
			j = (j + 1) % int64(len(locks))
		}
		me := rt.NewOwner()
		// Acquire both locks in one transaction (arbitrary order —
		// deadlock-free by construction), mutate, release.
		_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
			locks[i].Acquire(tx)
			locks[j].Acquire(tx)
			return nil
		})
		shared[i]++
		shared[j]++
		mu.Lock()
		expected[i]++
		expected[j]++
		mu.Unlock()
		_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
			if err := locks[i].Release(tx); err != nil {
				return err
			}
			return locks[j].Release(tx)
		})
	})
	for i := range locks {
		if locks[i].OwnerSnapshot() != 0 {
			h.failf("locks: lock %d leaked", i)
		}
		if shared[i] != expected[i] {
			h.failf("locks: slot %d = %d, want %d (mutual exclusion violated)", i, shared[i], expected[i])
		}
	}
}

// tortureSelfcheck deliberately reports one failure so the nonzero-exit
// path of the harness can be asserted by the package test.
func tortureSelfcheck(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	h.failf("selfcheck: deliberate failure (harness exit-code test)")
}
