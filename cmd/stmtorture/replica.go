package main

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"deferstm/internal/check"
	"deferstm/internal/kv"
	"deferstm/internal/obs"
	"deferstm/internal/repl"
	"deferstm/internal/server"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

// tortureReplica runs a full primary→replica pipeline in one process:
// a sharded store behind a real server on a loopback socket, a Replica
// tailing it over the wire, writer threads hammering per-thread
// counters (some updates are multi-key batches that straddle WAL
// lanes), occasional checkpoints rewriting lanes mid-stream, and
// seeded Kick() calls severing the stream so reconnect re-handshakes
// from the applied cursors under load.
//
// At the end the writers stop, the replica is given time to drain, and
// three things must hold:
//
//  1. prefix coverage — every lane's applied cursor covers the
//     primary's durable watermark (check.AckedPrefixLanes, the same
//     axioms kvreplica -verify runs offline);
//  2. content equality — the replica's scan equals the primary's,
//     key for key;
//  3. counter exactness — each thread's local increment count equals
//     the replica's stored value (no lost, duplicated or torn update
//     survived the checkpoints and reconnects).
func tortureReplica(h *torture, rt *stm.Runtime, threads int, d time.Duration) {
	const slots = 8
	fs := simio.NewFS(simio.Latency{Fsync: 200 * time.Microsecond})
	s, _, err := kv.Open(rt, wal.NewSimBackend(fs), kv.Options{
		Shards: 4, WAL: wal.Options{SegmentBytes: 1 << 16},
	})
	if err != nil {
		h.failf("replica: open: %v", err)
		return
	}
	defer s.Close()

	srv := server.New(s, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.failf("replica: listen: %v", err)
		return
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = srv.Serve(ln) }()
	defer func() { srv.Close(); <-serveDone }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := repl.New(stm.NewDefault(), repl.Options{
		Primary:  obs.DialableAddr(ln.Addr()).String(),
		Registry: obs.NewRegistry(),
		Backoff:  2 * time.Millisecond,
	})
	runDone := make(chan struct{})
	go func() { defer close(runDone); _ = r.Run(ctx) }()
	defer func() { cancel(); <-runDone }()

	counts := make([][slots]int, threads)
	var ckptMu sync.Mutex
	h.runFor(threads, d, func(tid int, rng func(int) int64) {
		a := rng(slots)
		keyA := fmt.Sprintf("t%d-c%d", tid, a)
		batch := rng(4) == 0
		b2 := rng(slots)
		keyB := fmt.Sprintf("t%d-c%d", tid, b2)
		lsn, err := s.Update(func(tx *stm.Tx, b *kv.Batch) error {
			cur, _ := b.Get(keyA)
			n, _ := strconv.Atoi(cur)
			b.Put(keyA, strconv.Itoa(n+1))
			if batch && b2 != a {
				// Second key usually lives on another shard, making this
				// a cross-lane batch the replica must apply atomically.
				cur, _ := b.Get(keyB)
				n, _ := strconv.Atoi(cur)
				b.Put(keyB, strconv.Itoa(n+1))
			}
			return nil
		})
		if err != nil {
			h.failf("replica: update: %v", err)
			return
		}
		counts[tid][a]++
		if batch && b2 != a {
			counts[tid][b2]++
		}
		switch {
		case rng(64) == 0:
			s.WaitDurable(lsn)
		case rng(300) == 0 && ckptMu.TryLock():
			// Rotate lanes under the stream: tail frames for pruned LSNs
			// must be skipped, checkpoint frames must bootstrap cleanly.
			if _, err := s.Checkpoint(); err != nil {
				h.failf("replica: checkpoint: %v", err)
			}
			ckptMu.Unlock()
		case rng(500) == 0:
			// Partition: sever the stream mid-flight; the reconnect
			// re-handshakes from the applied cursors.
			r.Kick()
		}
	})

	// Writers stopped. Wait for the replica to drain: every lane's
	// applied cursor must reach the primary's durable watermark. The
	// watermark is still advancing (the last group flush lands after the
	// last Update returns), so poll both sides.
	deadline := time.Now().Add(10 * time.Second)
	for {
		caughtUp := true
		cursors := r.Cursors()
		var marks []uint64
		for _, lg := range s.Logs() {
			marks = append(marks, lg.DurableWatermark())
		}
		if len(cursors) != len(marks) {
			caughtUp = false
		} else {
			for lane, m := range marks {
				if cursors[lane] < m {
					caughtUp = false
				}
			}
		}
		if caughtUp && len(marks) > 0 {
			if v := check.AckedPrefixLanes(marks, cursors); len(v) > 0 {
				for _, viol := range v {
					h.failf("replica: prefix: %s", viol.Msg)
				}
				return
			}
			break
		}
		if time.Now().After(deadline) {
			h.failf("replica: drain timeout: cursors %v, watermarks %v", cursors, marks)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}

	st := r.Status()
	if st.PendingRecords != 0 {
		h.failf("replica: %d records still parked on sibling lanes after drain", st.PendingRecords)
	}
	if st.AppliedBatches == 0 {
		h.failf("replica: no cross-lane batches applied (workload should have produced them)")
	}

	primary := map[string]string{}
	if err := s.Scan(func(k, v string) bool { primary[k] = v; return true }); err != nil {
		h.failf("replica: primary scan: %v", err)
		return
	}
	mirror := map[string]string{}
	if err := r.Store().Scan(func(k, v string) bool { mirror[k] = v; return true }); err != nil {
		h.failf("replica: mirror scan: %v", err)
		return
	}
	if len(mirror) != len(primary) {
		h.failf("replica: mirror has %d keys, primary %d", len(mirror), len(primary))
	}
	for k, v := range primary {
		if mirror[k] != v {
			h.failf("replica: mirror %s = %q, primary %q", k, mirror[k], v)
		}
	}
	for tid := range counts {
		for slot, want := range counts[tid] {
			if want == 0 {
				continue
			}
			key := fmt.Sprintf("t%d-c%d", tid, slot)
			if got, _ := strconv.Atoi(mirror[key]); got != want {
				h.failf("replica: mirror %s = %d, want %d (lost, duplicated or torn update)", key, got, want)
			}
		}
	}
}
