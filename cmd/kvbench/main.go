// Command kvbench benchmarks the durable transactional KV store
// (internal/kv) across its three durability modes, demonstrating WAL
// group commit via atomic deferral:
//
//	none   no WAL — the in-memory upper bound;
//	sync   fsync per commit inside an irrevocable (serial) transaction —
//	       the paper's irrevocability baseline;
//	group  transactional WAL append with the flush deferred through the
//	       log's atomic deferral — concurrent commits share fsyncs.
//
// For each mode × thread count it reports commits/s, total fsyncs,
// fsyncs per commit, and the group-commit batch-size distribution. After
// every durable run it recovers the store from the written log and
// verifies the recovered contents match the live store — a benchmark
// run that does not recover correctly fails loudly.
//
// Example:
//
//	kvbench -threads 1,4,8 -ops 400 -latency slowdisk
//
// Pass -metrics 127.0.0.1:9191 to serve live /metrics (Prometheus text)
// and /debug/pprof while the benchmark runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deferstm/internal/bench"
	"deferstm/internal/kv"
	"deferstm/internal/obs"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type result struct {
	mode      kv.Mode
	threads   int
	commits   uint64
	elapsed   time.Duration
	fsyncs    uint64
	flushes   uint64
	meanBatch float64
	maxBatch  uint64
	hist      string
	recovered string // "ok" or failure text
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kvbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threads = fs.String("threads", "1,2,4,8", "comma-separated goroutine counts")
		ops     = fs.Int("ops", 200, "updates per goroutine per run")
		keys    = fs.Int("keys", 64, "distinct keys")
		value   = fs.Int("value", 64, "value bytes")
		latency = fs.String("latency", "pagecache", "simulated I/O cost: none|pagecache|slowdisk")
		modes   = fs.String("modes", "none,sync,group", "modes to run")
		shards  = fs.Int("shards", 1, "key-space shards = parallel WAL lanes (power of two)")
		buckets = fs.Int("buckets", 0, "store hash buckets (0 = kv default); small values force resizes")
		csv     = fs.Bool("csv", false, "emit CSV instead of a text table")
		metrics = fs.String("metrics", "", "serve /metrics + /debug/pprof on this address while the benchmark runs (e.g. 127.0.0.1:9191)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var lat simio.Latency
	switch *latency {
	case "none":
	case "pagecache":
		lat = simio.PageCacheLatency()
	case "slowdisk":
		lat = simio.SlowDiskLatency()
	default:
		fmt.Fprintf(stderr, "kvbench: unknown latency %q\n", *latency)
		return 2
	}
	threadCounts, err := parseInts(*threads)
	if err != nil {
		fmt.Fprintf(stderr, "kvbench: %v\n", err)
		return 2
	}
	var modeList []kv.Mode
	for _, m := range strings.Split(*modes, ",") {
		switch strings.TrimSpace(m) {
		case "none":
			modeList = append(modeList, kv.ModeNone)
		case "sync":
			modeList = append(modeList, kv.ModeSync)
		case "group":
			modeList = append(modeList, kv.ModeGroup)
		case "":
		default:
			fmt.Fprintf(stderr, "kvbench: unknown mode %q\n", m)
			return 2
		}
	}

	// Each benchOne builds a fresh Runtime, so the instruments are shared
	// across all runs (histograms accumulate over the whole benchmark) and
	// the stats callbacks follow the current runtime through an atomic
	// pointer — the exported counter series stay stable while runtimes
	// come and go.
	var met *stm.Metrics
	var curRT atomic.Pointer[stm.Runtime]
	var curStore atomic.Pointer[kv.Store]
	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.SetBuildInfo("commit", bench.GitCommit(), "go", runtime.Version(), "binary", "kvbench")
		met = stm.NewMetrics(reg)
		stm.RegisterStats(reg, func() stm.StatsSnapshot {
			if rt := curRT.Load(); rt != nil {
				return rt.Snapshot()
			}
			return stm.StatsSnapshot{}
		})
		kv.RegisterLaneMetrics(reg, *shards, func() *kv.Store { return curStore.Load() })
		addr, stop, err := reg.Serve(*metrics)
		if err != nil {
			fmt.Fprintf(stderr, "kvbench: -metrics: %v\n", err)
			return 1
		}
		defer stop()
		fmt.Fprintf(stderr, "metrics: http://%s/metrics\n", addr)
	}

	var results []result
	for _, mode := range modeList {
		for _, t := range threadCounts {
			r, err := benchOne(mode, t, *ops, *keys, *value, *buckets, *shards, lat, met, &curRT, &curStore)
			if err != nil {
				fmt.Fprintf(stderr, "kvbench: %v@%d: %v\n", mode, t, err)
				return 1
			}
			results = append(results, r)
			fmt.Fprintf(stderr, ".")
		}
	}
	fmt.Fprintln(stderr)

	if *csv {
		fmt.Fprintln(stdout, "mode,threads,commits,seconds,commits_per_s,fsyncs,fsyncs_per_commit,mean_batch,max_batch,recovery")
		for _, r := range results {
			fmt.Fprintf(stdout, "%s,%d,%d,%.3f,%.0f,%d,%.3f,%.1f,%d,%s\n",
				r.mode, r.threads, r.commits, r.elapsed.Seconds(),
				float64(r.commits)/r.elapsed.Seconds(),
				r.fsyncs, float64(r.fsyncs)/float64(r.commits),
				r.meanBatch, r.maxBatch, r.recovered)
		}
	} else {
		fmt.Fprintf(stdout, "kvbench: %d updates/goroutine, %d keys, %d-byte values, latency=%s, shards=%d\n\n",
			*ops, *keys, *value, *latency, *shards)
		fmt.Fprintf(stdout, "%-6s %8s %9s %12s %8s %14s %10s %8s  %s\n",
			"mode", "threads", "commits", "commits/s", "fsyncs", "fsyncs/commit", "mean-batch", "recovery", "batch-hist")
		for _, r := range results {
			fmt.Fprintf(stdout, "%-6s %8d %9d %12.0f %8d %14.3f %10.1f %8s  %s\n",
				r.mode, r.threads, r.commits,
				float64(r.commits)/r.elapsed.Seconds(),
				r.fsyncs, float64(r.fsyncs)/float64(r.commits),
				r.meanBatch, r.recovered, r.hist)
		}
	}

	// The point of the exercise: at every thread count where both ran,
	// group commit must need fewer fsyncs per commit than the
	// irrevocable baseline once there is concurrency to batch.
	bad := false
	perMode := map[kv.Mode]map[int]result{}
	for _, r := range results {
		if perMode[r.mode] == nil {
			perMode[r.mode] = map[int]result{}
		}
		perMode[r.mode][r.threads] = r
	}
	for t, g := range perMode[kv.ModeGroup] {
		s, ok := perMode[kv.ModeSync][t]
		if !ok || t < 4 {
			continue
		}
		gRate := float64(g.fsyncs) / float64(g.commits)
		sRate := float64(s.fsyncs) / float64(s.commits)
		if gRate >= sRate {
			fmt.Fprintf(stderr, "kvbench: group commit did not beat sync at %d threads (%.3f vs %.3f fsyncs/commit)\n",
				t, gRate, sRate)
			bad = true
		}
	}
	for _, r := range results {
		if r.recovered != "ok" {
			fmt.Fprintf(stderr, "kvbench: %v@%d recovery: %s\n", r.mode, r.threads, r.recovered)
			bad = true
		}
	}
	if bad {
		return 1
	}
	return 0
}

func benchOne(mode kv.Mode, threads, ops, keys, valueBytes, buckets, shards int, lat simio.Latency, met *stm.Metrics, curRT *atomic.Pointer[stm.Runtime], curStore *atomic.Pointer[kv.Store]) (result, error) {
	fs := simio.NewFS(lat)
	var backend wal.Backend
	if mode != kv.ModeNone {
		backend = wal.NewSimBackend(fs)
	}
	rt := stm.NewDefault()
	if met != nil {
		rt.SetMetrics(met)
		curRT.Store(rt)
	}
	before := rt.Snapshot()
	s, _, err := kv.Open(rt, backend, kv.Options{Mode: mode, Buckets: buckets, Shards: shards})
	if err != nil {
		return result{}, err
	}
	curStore.Store(s)
	// Fsyncs spent opening the store (the lane manifest, segment
	// creation) are setup cost, not commit cost: baseline them away so
	// lane accounting and fsyncs/commit both measure the run itself.
	fsyncBase := fs.Stats().Fsyncs

	value := strings.Repeat("v", valueBytes)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, threads)
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := uint64(g)*0x9E3779B97F4A7C15 + 1
			for i := 0; i < ops; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := fmt.Sprintf("k%04d", rng%uint64(keys))
				lsn, err := s.Update(func(tx *stm.Tx, b *kv.Batch) error {
					b.Put(k, value)
					return nil
				})
				if err != nil {
					errs[g] = err
					return
				}
				s.WaitDurable(lsn)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return result{}, err
		}
	}

	r := result{
		mode:      mode,
		threads:   threads,
		commits:   uint64(threads * ops),
		elapsed:   elapsed,
		fsyncs:    fs.Stats().Fsyncs - fsyncBase,
		recovered: "ok",
	}
	delta := rt.Snapshot().Delta(before)
	if logs := s.Logs(); mode != kv.ModeNone && len(logs) > 0 {
		var agg wal.BatchStats
		for _, log := range logs {
			st := log.BatchStats()
			agg.Flushes += st.Flushes
			agg.Records += st.Records
			agg.Fsyncs += st.Fsyncs
			if st.MaxBatch > agg.MaxBatch {
				agg.MaxBatch = st.MaxBatch
			}
			for i, n := range st.Hist {
				agg.Hist[i] += n
			}
		}
		r.flushes = agg.Flushes
		r.meanBatch = agg.Mean()
		r.maxBatch = agg.MaxBatch
		r.hist = histString(agg)
		if delta.WALRecords != r.commits {
			return result{}, fmt.Errorf("stats mismatch: %d WAL records for %d commits", delta.WALRecords, r.commits)
		}
		// Reconcile the lanes' own fsync counters against the simulated
		// disk's ground truth: every fsync the filesystem saw after Open
		// must be one some lane accounted for. A drift here means a code
		// path fsyncs without noteFsync (or counts one it never issued),
		// which would silently corrupt every fsyncs/commit figure above.
		if agg.Fsyncs != r.fsyncs {
			return result{}, fmt.Errorf("fsync accounting mismatch: lanes counted %d, disk saw %d", agg.Fsyncs, r.fsyncs)
		}
	}

	// Snapshot the live contents, close, recover from the written log,
	// and verify byte-for-byte equality.
	live := map[string]string{}
	if err := s.View(func(tx *stm.Tx) error {
		clear(live)
		s.Range(tx, func(k, v string) bool {
			live[k] = v
			return true
		})
		return nil
	}); err != nil {
		return result{}, err
	}
	if err := s.Close(); err != nil {
		return result{}, err
	}
	if mode != kv.ModeNone {
		if msg := verifyRecovery(fs, mode, buckets, shards, live, r.commits); msg != "" {
			r.recovered = msg
		}
	}
	return r, nil
}

// verifyRecovery reopens the store from the log the benchmark wrote and
// compares it to the live contents at close. Returns "" on success.
// With multiple lanes, RecoveryInfo.LastLSN is the sum of per-lane
// LSNs; every benchmark update appends exactly one record to exactly
// one lane, so the sum must still equal the commit count.
func verifyRecovery(fs *simio.FS, mode kv.Mode, buckets, shards int, live map[string]string, commits uint64) string {
	s2, info, err := kv.Open(stm.NewDefault(), wal.NewSimBackend(fs), kv.Options{Mode: mode, Buckets: buckets, Shards: shards})
	if err != nil {
		return fmt.Sprintf("open: %v", err)
	}
	defer s2.Close()
	if info.LastLSN != commits {
		return fmt.Sprintf("recovered LSN %d, want %d", info.LastLSN, commits)
	}
	got := map[string]string{}
	if err := s2.View(func(tx *stm.Tx) error {
		clear(got)
		s2.Range(tx, func(k, v string) bool {
			got[k] = v
			return true
		})
		return nil
	}); err != nil {
		return err.Error()
	}
	if len(got) != len(live) {
		return fmt.Sprintf("recovered %d keys, want %d", len(got), len(live))
	}
	for k, v := range live {
		if got[k] != v {
			return fmt.Sprintf("key %q diverged after recovery", k)
		}
	}
	return ""
}

// histString renders the batch-size histogram compactly: one bucket per
// power of two, e.g. "1:12 2-3:40 4-7:9".
func histString(st wal.BatchStats) string {
	var parts []string
	for i, n := range st.Hist {
		if n == 0 {
			continue
		}
		lo := uint64(1) << (i - 1)
		hi := uint64(1)<<i - 1
		if i == 0 {
			lo, hi = 0, 0
		}
		if lo == hi {
			parts = append(parts, fmt.Sprintf("%d:%d", lo, n))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d:%d", lo, hi, n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts")
	}
	return out, nil
}
