// Command dedupbench regenerates the paper's Figure 3: the PARSEC dedup
// kernel under the seven synchronization backends.
//
//	-figure a   threads 1–8; series STM, HTM, STM+DeferIO, HTM+DeferIO,
//	            STM+DeferAll, HTM+DeferAll, Pthread (Figure 3a)
//	-figure b   threads 4–32; series STM, STM-Best, HTM-Best, Pthread
//	            (Figure 3b; "Best" = +DeferAll)
//
// Example:
//
//	dedupbench -figure a -size 16777216 -trials 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"deferstm/internal/bench"
	"deferstm/internal/chunker"
	"deferstm/internal/dedup"
	"deferstm/internal/simio"
)

func main() {
	var (
		figure  = flag.String("figure", "a", "figure panel: a or b")
		size    = flag.Int("size", 8<<20, "input size in bytes")
		dupPct  = flag.Float64("dup", 0.5, "input duplication ratio (0..1)")
		trials  = flag.Int("trials", 3, "trials per point (paper uses 5)")
		threads = flag.String("threads", "", "override thread counts (comma-separated)")
		csv     = flag.Bool("csv", false, "emit CSV instead of a text table")
		verify  = flag.Bool("verify", false, "decode and verify every run's output")
		stats   = flag.Bool("stats", false, "also print per-backend structural TM metrics at the highest thread count")
		nofsync = flag.Bool("nofsync", false, "skip per-packet fsync")
		inread  = flag.Duration("inputread", 20*time.Millisecond, "simulated per-packet input-read latency (stage 1)")
		effort  = flag.Int("effort", 128, "compression effort (hash-chain depth)")
	)
	flag.Parse()

	var backends []dedup.Backend
	var names map[dedup.Backend]string
	var threadCounts []int
	switch *figure {
	case "a":
		backends = []dedup.Backend{
			dedup.STM, dedup.HTM,
			dedup.STMDeferIO, dedup.HTMDeferIO,
			dedup.STMDeferAll, dedup.HTMDeferAll,
			dedup.Pthread,
		}
		names = map[dedup.Backend]string{
			dedup.STM: "STM", dedup.HTM: "HTM",
			dedup.STMDeferIO: "STM+DeferIO", dedup.HTMDeferIO: "HTM+DeferIO",
			dedup.STMDeferAll: "STM+DeferAll", dedup.HTMDeferAll: "HTM+DeferAll",
			dedup.Pthread: "Pthread",
		}
		threadCounts = []int{1, 2, 4, 8}
	case "b":
		backends = []dedup.Backend{
			dedup.STM, dedup.STMDeferAll, dedup.HTMDeferAll, dedup.Pthread,
		}
		names = map[dedup.Backend]string{
			dedup.STM: "STM", dedup.STMDeferAll: "STM-Best",
			dedup.HTMDeferAll: "HTM-Best", dedup.Pthread: "Pthread",
		}
		threadCounts = []int{4, 8, 16, 24, 32}
	default:
		fmt.Fprintf(os.Stderr, "dedupbench: unknown figure %q (want a|b)\n", *figure)
		os.Exit(2)
	}
	if *threads != "" {
		var err error
		threadCounts, err = parseInts(*threads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: %v\n", err)
			os.Exit(2)
		}
	}

	input := dedup.GenInput(*size, *dupPct, 42)
	title := fmt.Sprintf("Figure 3(%s): PARSEC dedup, %d MiB input, %.0f%% duplication",
		*figure, *size>>20, *dupPct*100)
	tbl := bench.NewTable(title, "threads", "execution time (s)")

	lastStats := map[dedup.Backend]dedup.Result{}
	for _, b := range backends {
		series := tbl.SeriesByName(names[b])
		for _, t := range threadCounts {
			cfg := dedup.Config{
				Backend: b, Threads: t, NoFsync: *nofsync, InputRead: *inread,
				CompressEffort: *effort,
				Chunk:          chunker.Config{AvgBits: 16},
			}
			bench.Measure(series, float64(t), *trials, func() {
				fs := simio.NewFS(outputLatency())
				res, err := dedup.Run(cfg, input, fs, "out")
				if err != nil {
					fmt.Fprintf(os.Stderr, "dedupbench: %v run failed: %v\n", b, err)
					os.Exit(1)
				}
				if *verify {
					data, _ := fs.ReadAll("out")
					decoded, err := dedup.Decode(data)
					if err != nil || len(decoded) != len(input) {
						fmt.Fprintf(os.Stderr, "dedupbench: %v verify failed: %v\n", b, err)
						os.Exit(1)
					}
				}
				lastStats[b] = res
			})
			fmt.Fprintf(os.Stderr, ".")
		}
	}
	fmt.Fprintln(os.Stderr)

	if *csv {
		tbl.RenderCSV(os.Stdout)
	} else {
		tbl.Render(os.Stdout)
	}

	if *stats {
		// Structural metrics of the last (highest-thread) run of each
		// backend: these carry the paper's mechanism story even when
		// wall-clock differences are compressed by limited hardware
		// parallelism.
		fmt.Printf("\n# structural metrics at %d threads (last trial)\n", threadCounts[len(threadCounts)-1])
		fmt.Printf("%-14s %8s %8s %10s %10s %12s %10s %10s\n",
			"backend", "packets", "uniques", "serialRuns", "capAborts", "conflicts", "quiesceMs", "defOps")
		for _, b := range backends {
			r := lastStats[b]
			fmt.Printf("%-14s %8d %8d %10d %10d %12d %10.1f %10d\n",
				names[b], r.Packets, r.Uniques, r.TM.SerialRuns, r.TM.AbortsCapacity,
				r.TM.AbortsConflict, float64(r.TM.QuiesceNanos)/1e6, r.TM.DeferredOps)
		}
	}
}

// outputLatency is the output file's cost model: writes and fsyncs above
// the sleep floor, but cheap enough that the sequential output stage does
// not bottleneck the pipeline (PARSEC dedup's output is buffered file
// writes; the figure's signal is in the worker stage).
func outputLatency() simio.Latency {
	return simio.Latency{
		Open:       2 * time.Millisecond,
		Close:      1500 * time.Microsecond,
		Write:      1300 * time.Microsecond,
		WritePerKB: 10 * time.Microsecond,
		Read:       1300 * time.Microsecond,
		Fsync:      1500 * time.Microsecond,
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts")
	}
	return out, nil
}
