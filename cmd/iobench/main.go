// Command iobench regenerates the paper's Figure 2: the transactional
// I/O microbenchmark comparing a coarse global lock (CGL), fine-grained
// per-file locks (FGL), irrevocable transactions (irrevoc), and atomic
// deferral (defer), across thread counts.
//
// Panels:
//
//	-config a   1 file, open/close per op (CGL, irrevoc, defer)
//	-config b   2 files, open/close per op (+FGL)
//	-config c   4 files, open/close per op (+FGL)
//	-config d   4 files kept open, append-only (+FGL)
//
// Example:
//
//	iobench -config c -ops 20000 -threads 1,2,4,8 -trials 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"deferstm/internal/bench"
	"deferstm/internal/iobench"
	"deferstm/internal/simio"
)

func main() {
	var (
		config  = flag.String("config", "a", "figure panel: a, b, c or d")
		ops     = flag.Int("ops", 2000, "total operations per run")
		threads = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		trials  = flag.Int("trials", 3, "trials per point (paper uses 5)")
		payload = flag.Int("payload", 64, "payload bytes per append")
		csv     = flag.Bool("csv", false, "emit CSV instead of a text table")
	)
	flag.Parse()

	files, keepOpen, withFGL := 1, false, false
	switch *config {
	case "a":
		files = 1
	case "b":
		files, withFGL = 2, true
	case "c":
		files, withFGL = 4, true
	case "d":
		files, keepOpen, withFGL = 4, true, true
	default:
		fmt.Fprintf(os.Stderr, "iobench: unknown config %q (want a|b|c|d)\n", *config)
		os.Exit(2)
	}

	threadCounts, err := parseInts(*threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iobench: %v\n", err)
		os.Exit(2)
	}

	modes := []iobench.Mode{iobench.CGL, iobench.Irrevoc, iobench.Defer}
	if withFGL {
		modes = append(modes, iobench.FGL)
	}

	title := fmt.Sprintf("Figure 2(%s): I/O microbenchmark, %d file(s)%s, %d ops",
		*config, files, map[bool]string{true: ", kept open"}[keepOpen], *ops)
	tbl := bench.NewTable(title, "threads", "execution time (s)")

	for _, mode := range modes {
		series := tbl.SeriesByName(mode.String())
		for _, t := range threadCounts {
			cfg := iobench.Config{
				Mode: mode, Files: files, Threads: t, Ops: *ops,
				KeepOpen: keepOpen, Payload: *payload,
				Latency: simio.SlowDiskLatency(),
			}
			bench.Measure(series, float64(t), *trials, func() {
				if _, _, err := iobench.Run(cfg); err != nil {
					fmt.Fprintf(os.Stderr, "iobench: %v run failed: %v\n", mode, err)
					os.Exit(1)
				}
			})
			fmt.Fprintf(os.Stderr, ".") // progress
		}
	}
	fmt.Fprintln(os.Stderr)

	if *csv {
		tbl.RenderCSV(os.Stdout)
	} else {
		tbl.Render(os.Stdout)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts")
	}
	return out, nil
}
