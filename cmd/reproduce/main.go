// Command reproduce regenerates every experiment in the paper's
// evaluation section (Figures 2 and 3), writes the result tables to a
// directory, and checks the qualitative claims ("who wins, by roughly
// what factor, where the crossovers fall") automatically.
//
//	reproduce -out results          # full run (~10-20 min on 1 CPU)
//	reproduce -out results -quick   # reduced ops/trials (~3 min)
//
// Exit status is nonzero if any shape check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"deferstm/internal/bench"
	"deferstm/internal/chunker"
	"deferstm/internal/dedup"
	"deferstm/internal/iobench"
	"deferstm/internal/simio"
)

var checks []string
var failures int

func check(name string, ok bool, detail string) {
	status := "PASS"
	if !ok {
		status = "FAIL"
		failures++
	}
	line := fmt.Sprintf("%-4s %-52s %s", status, name, detail)
	checks = append(checks, line)
	fmt.Fprintln(os.Stderr, line)
}

func main() {
	var (
		outDir = flag.String("out", "results", "output directory for result tables")
		quick  = flag.Bool("quick", false, "smaller runs (fewer ops, 1 trial)")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	trials := 2
	ioOps := 1200
	dedupSize := 8 << 20
	if *quick {
		trials = 1
		ioOps = 600
		dedupSize = 4 << 20
	}

	start := time.Now()
	fig2(*outDir, ioOps, trials)
	fig3(*outDir, dedupSize, trials)
	fmt.Fprintf(os.Stderr, "total: %.1f min\n", time.Since(start).Minutes())

	// Write the check summary.
	sum := strings.Join(checks, "\n") + "\n"
	if err := os.WriteFile(filepath.Join(*outDir, "checks.txt"), []byte(sum), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d shape checks FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "all shape checks passed")
}

func writeTable(dir, name string, tbl *bench.Table) {
	var sb strings.Builder
	tbl.Render(&sb)
	if err := os.WriteFile(filepath.Join(dir, name+".txt"), []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	var csv strings.Builder
	tbl.RenderCSV(&csv)
	if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(csv.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// ---------- Figure 2 ----------

func fig2(dir string, ops, trials int) {
	panels := []struct {
		name     string
		files    int
		keepOpen bool
		withFGL  bool
	}{
		{"fig2a", 1, false, false},
		{"fig2b", 2, false, true},
		{"fig2c", 4, false, true},
		{"fig2d", 4, true, true},
	}
	threadCounts := []int{1, 2, 4, 8}
	for _, p := range panels {
		modes := []iobench.Mode{iobench.CGL, iobench.Irrevoc, iobench.Defer}
		if p.withFGL {
			modes = append(modes, iobench.FGL)
		}
		title := fmt.Sprintf("Figure 2(%s): %d file(s)%s, %d ops", p.name[4:],
			p.files, map[bool]string{true: " kept open"}[p.keepOpen], ops)
		tbl := bench.NewTable(title, "threads", "execution time (s)")
		for _, mode := range modes {
			series := tbl.SeriesByName(mode.String())
			for _, t := range threadCounts {
				cfg := iobench.Config{
					Mode: mode, Files: p.files, Threads: t, Ops: ops,
					KeepOpen: p.keepOpen, Latency: simio.SlowDiskLatency(),
				}
				bench.Measure(series, float64(t), trials, func() {
					if _, _, err := iobench.Run(cfg); err != nil {
						fmt.Fprintf(os.Stderr, "reproduce: %v: %v\n", mode, err)
						os.Exit(1)
					}
				})
				fmt.Fprintf(os.Stderr, ".")
			}
		}
		fmt.Fprintf(os.Stderr, " %s done\n", p.name)
		writeTable(dir, p.name, tbl)
		checkFig2(p.name, tbl, p.withFGL)
	}
}

func checkFig2(name string, tbl *bench.Table, withFGL bool) {
	cgl := tbl.SeriesByName("CGL")
	irr := tbl.SeriesByName("irrevoc")
	def := tbl.SeriesByName("defer")
	switch name {
	case "fig2a":
		// No concurrency: nothing should scale much, and irrevoc should
		// be within ~40% of CGL at every thread count (GCC's tuned
		// irrevocability ≈ CGL, Section 6.1).
		ok := irr.At(8) < cgl.At(8)*1.4 && irr.At(1) < cgl.At(1)*1.4
		check("fig2a: irrevoc comparable to CGL", ok,
			fmt.Sprintf("irrevoc@8=%.2fs cgl@8=%.2fs", irr.At(8), cgl.At(8)))
		ok = def.At(8) > cgl.At(8)*0.5
		check("fig2a: no series scales with 1 file", ok,
			fmt.Sprintf("defer@8=%.2fs cgl@8=%.2fs", def.At(8), cgl.At(8)))
	case "fig2b", "fig2c", "fig2d":
		fgl := tbl.SeriesByName("FGL")
		// defer tracks FGL at high thread counts (within 2x), while
		// CGL/irrevoc do not improve beyond ~70% of their 1-thread time.
		ok := def.At(8) < fgl.At(8)*2.0
		check(name+": defer tracks FGL at 8 threads", ok,
			fmt.Sprintf("defer@8=%.2fs fgl@8=%.2fs", def.At(8), fgl.At(8)))
		ok = def.At(8) < def.At(1)*0.7
		check(name+": defer scales (8t < 70% of 1t)", ok,
			fmt.Sprintf("defer@1=%.2fs defer@8=%.2fs", def.At(1), def.At(8)))
		ok = irr.At(8) > irr.At(1)*0.7
		check(name+": irrevoc does not scale", ok,
			fmt.Sprintf("irrevoc@1=%.2fs irrevoc@8=%.2fs", irr.At(1), irr.At(8)))
		ok = def.At(8) < irr.At(8)*0.75
		check(name+": defer beats irrevoc at 8 threads", ok,
			fmt.Sprintf("defer@8=%.2fs irrevoc@8=%.2fs", def.At(8), irr.At(8)))
		_ = withFGL
	}
}

// ---------- Figure 3 ----------

func dedupOutputLatency() simio.Latency {
	return simio.Latency{
		Open:       2 * time.Millisecond,
		Close:      1500 * time.Microsecond,
		Write:      1300 * time.Microsecond,
		WritePerKB: 10 * time.Microsecond,
		Read:       1300 * time.Microsecond,
		Fsync:      1500 * time.Microsecond,
	}
}

func fig3(dir string, size, trials int) {
	input := dedup.GenInput(size, 0.5, 42)
	run := func(b dedup.Backend, threads int) (float64, dedup.Result) {
		cfg := dedup.Config{
			Backend: b, Threads: threads,
			InputRead:      20 * time.Millisecond,
			CompressEffort: 128,
			Chunk:          chunker.Config{AvgBits: 16},
		}
		var last dedup.Result
		samples := bench.TimeTrials(trials, func() {
			fs := simio.NewFS(dedupOutputLatency())
			res, err := dedup.Run(cfg, input, fs, "out")
			if err != nil {
				fmt.Fprintf(os.Stderr, "reproduce: dedup %v: %v\n", b, err)
				os.Exit(1)
			}
			last = res
		})
		mean, _ := bench.MeanStd(samples)
		return mean, last
	}

	// Figure 3(a)
	aBackends := []struct {
		name string
		b    dedup.Backend
	}{
		{"STM", dedup.STM}, {"HTM", dedup.HTM},
		{"STM+DeferIO", dedup.STMDeferIO}, {"HTM+DeferIO", dedup.HTMDeferIO},
		{"STM+DeferAll", dedup.STMDeferAll}, {"HTM+DeferAll", dedup.HTMDeferAll},
		{"Pthread", dedup.Pthread},
	}
	tblA := bench.NewTable(fmt.Sprintf("Figure 3(a): dedup, %d MiB", size>>20), "threads", "execution time (s)")
	structural := map[string]dedup.Result{}
	for _, e := range aBackends {
		s := tblA.SeriesByName(e.name)
		for _, t := range []int{1, 2, 4, 8} {
			mean, res := run(e.b, t)
			s.Add(float64(t), mean, 0)
			if t == 8 {
				structural[e.name] = res
			}
			fmt.Fprintf(os.Stderr, ".")
		}
	}
	fmt.Fprintln(os.Stderr, " fig3a done")
	writeTable(dir, "fig3a", tblA)

	// Structural metrics table (the mechanism story).
	var sb strings.Builder
	fmt.Fprintf(&sb, "# structural TM metrics at 8 threads (Figure 3a runs)\n")
	fmt.Fprintf(&sb, "%-14s %8s %8s %10s %10s %10s %8s\n",
		"backend", "packets", "uniques", "serialRuns", "capAborts", "quiesceMs", "defOps")
	for _, e := range aBackends {
		r := structural[e.name]
		fmt.Fprintf(&sb, "%-14s %8d %8d %10d %10d %10.1f %8d\n",
			e.name, r.Packets, r.Uniques, r.TM.SerialRuns, r.TM.AbortsCapacity,
			float64(r.TM.QuiesceNanos)/1e6, r.TM.DeferredOps)
	}
	if err := os.WriteFile(filepath.Join(dir, "fig3a_structural.txt"), []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}

	// Shape checks for 3(a).
	pt, stm8 := tblA.SeriesByName("Pthread"), tblA.SeriesByName("STM")
	all8 := tblA.SeriesByName("STM+DeferAll")
	htmAll := tblA.SeriesByName("HTM+DeferAll")
	check("fig3a: Pthread scales 1->8 threads", pt.At(8) < pt.At(1)*0.45,
		fmt.Sprintf("pthread@1=%.2fs pthread@8=%.2fs", pt.At(1), pt.At(8)))
	check("fig3a: STM+DeferAll within 15% of Pthread @8", all8.At(8) < pt.At(8)*1.15,
		fmt.Sprintf("deferall@8=%.2fs pthread@8=%.2fs", all8.At(8), pt.At(8)))
	check("fig3a: HTM+DeferAll within 15% of Pthread @8", htmAll.At(8) < pt.At(8)*1.15,
		fmt.Sprintf("htm-deferall@8=%.2fs pthread@8=%.2fs", htmAll.At(8), pt.At(8)))
	check("fig3a: STM baseline slower than DeferAll @8", stm8.At(8) > all8.At(8)*1.05,
		fmt.Sprintf("stm@8=%.2fs deferall@8=%.2fs", stm8.At(8), all8.At(8)))
	rs, ra := structural["STM"], structural["STM+DeferAll"]
	check("fig3a: STM serializes once per output packet", rs.TM.SerialRuns == rs.Packets,
		fmt.Sprintf("serialRuns=%d packets=%d", rs.TM.SerialRuns, rs.Packets))
	check("fig3a: DeferAll never serializes", ra.TM.SerialRuns == 0,
		fmt.Sprintf("serialRuns=%d", ra.TM.SerialRuns))
	rh := structural["HTM"]
	check("fig3a: HTM compress exceeds capacity per unique", rh.TM.AbortsCapacity == 2*rh.Uniques,
		fmt.Sprintf("capAborts=%d uniques=%d", rh.TM.AbortsCapacity, rh.Uniques))
	rha := structural["HTM+DeferAll"]
	check("fig3a: deferred compress fits in HTM", rha.TM.AbortsCapacity == 0,
		fmt.Sprintf("capAborts=%d", rha.TM.AbortsCapacity))

	// Figure 3(b): higher thread counts, Best vs baseline.
	bBackends := []struct {
		name string
		b    dedup.Backend
	}{
		{"STM", dedup.STM}, {"STM-Best", dedup.STMDeferAll},
		{"HTM-Best", dedup.HTMDeferAll}, {"Pthread", dedup.Pthread},
	}
	tblB := bench.NewTable(fmt.Sprintf("Figure 3(b): dedup, %d MiB", size>>20), "threads", "execution time (s)")
	for _, e := range bBackends {
		s := tblB.SeriesByName(e.name)
		for _, t := range []int{4, 8, 16, 32} {
			mean, _ := run(e.b, t)
			s.Add(float64(t), mean, 0)
			fmt.Fprintf(os.Stderr, ".")
		}
	}
	fmt.Fprintln(os.Stderr, " fig3b done")
	writeTable(dir, "fig3b", tblB)

	best := tblB.SeriesByName("STM-Best")
	base := tblB.SeriesByName("STM")
	ptb := tblB.SeriesByName("Pthread")
	check("fig3b: STM-Best matches Pthread @32", best.At(32) < ptb.At(32)*1.2,
		fmt.Sprintf("best@32=%.2fs pthread@32=%.2fs", best.At(32), ptb.At(32)))
	// The paper reports ~10x at 32 threads on a 36-core machine. This
	// host cannot execute compressions in parallel, so the baseline's
	// lost compute-parallelism costs nothing here and the wall-clock gap
	// collapses (see EXPERIMENTS.md); what must still hold is that the
	// baseline is never *better*, and that its serialization persists
	// structurally (checked per-packet in fig3a).
	check("fig3b: baseline never beats Best @32", base.At(32) > best.At(32)*0.95,
		fmt.Sprintf("stm@32=%.2fs best@32=%.2fs", base.At(32), best.At(32)))
}
