GO ?= go

.PHONY: all build test race vet torture ci bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short adversarial soak: fault injection + full history checking.
torture:
	$(GO) run ./cmd/stmtorture -duration 2s -threads 8 -check -inject -seed 1

# The full CI gate (vet + build + race tests + torture smoke, both modes).
ci:
	./scripts/ci.sh

bench:
	$(GO) test -bench=. -benchmem
