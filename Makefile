GO ?= go

.PHONY: all build test race race-kv race-server vet torture kvsmoke servesmoke ci bench bench-scaling bench-reactive bench-mixed bench-figs benchdiff trace

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race gate for the durable store: the WAL group-commit paths and the
# seeded crash-recovery property tests must be race-clean.
race-kv:
	$(GO) test -race -count=1 ./internal/wal ./internal/kv

vet:
	$(GO) vet ./...

# Short adversarial soak: fault injection + full history checking.
torture:
	$(GO) run ./cmd/stmtorture -duration 2s -threads 8 -check -inject -seed 1

# Crash-recovery smoke (fixed seeds) + kvbench acceptance run.
kvsmoke:
	$(GO) test -race -count=1 -run 'TestCrashRecovery' ./internal/kv
	$(GO) run ./cmd/kvbench -threads 4,8 -ops 100 -latency pagecache -modes sync,group >/dev/null

# Race gate for the networked front end: protocol codecs, pipelined
# reader/writer pairs, shutdown under load.
race-server:
	$(GO) test -race -count=1 ./internal/server

# Networked smoke by hand: boot kvserver on an ephemeral port and run
# the kvloadgen connection ladder against it (no crash injection; the
# kill -9 + recovery-verify version lives in scripts/ci.sh).
servesmoke:
	@dir=$$(mktemp -d); \
	$(GO) build -o $$dir/kvserver ./cmd/kvserver; \
	$(GO) build -o $$dir/kvloadgen ./cmd/kvloadgen; \
	$$dir/kvserver -addr 127.0.0.1:0 -addrfile $$dir/addr.txt -dir $$dir/wal -mode group & \
	pid=$$!; \
	for i in $$(seq 1 50); do [ -s $$dir/addr.txt ] && break; sleep 0.1; done; \
	$$dir/kvloadgen -addr "$$(head -n1 $$dir/addr.txt)" -conns 1,4,8 -ops 400 -reads 20 -check; \
	rc=$$?; kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -rf $$dir; exit $$rc

# The full CI gate (vet + build + race tests + torture smoke in both
# modes + kv crash-recovery smoke + kvbench acceptance).
ci:
	./scripts/ci.sh

# STM hot-path benchmark suite (read-only / small-write / contended /
# kv-group-commit) plus the reactive suite (blocked-reader wakeup
# latency, watcher-vs-spin churn, queue handoff), written to
# stm-bench.json / stm-bench-reactive.json for later benchdiff runs.
bench:
	$(GO) run ./cmd/stmbench -json stm-bench.json
	$(GO) run ./cmd/stmbench -suite reactive -json stm-bench-reactive.json

# The reactive suite alone (wakeup-latency ladder and churn ablation).
bench-reactive:
	$(GO) run ./cmd/stmbench -suite reactive -json stm-bench-reactive.json

# Thread-scaling suite (map-read / map-write / resize-storm across the
# 1..NumCPU ladder), written to stm-bench-scaling.json.
bench-scaling:
	$(GO) run ./cmd/stmbench -suite scaling -json stm-bench-scaling.json

# Mixed suite: the TPC-B-style writer ladder against one long scanner,
# both scan variants (validating vs snapshot), written to
# stm-bench-mixed.json. SCANNER=validate|snapshot emits a single-variant
# document whose rows are named mixed-scan/N, so a validate run and a
# snapshot run diff row-for-row (the BENCH_PR9.json recipe).
SCANNER ?= both
bench-mixed:
	$(GO) run ./cmd/stmbench -suite mixed -scanner $(SCANNER) -json stm-bench-mixed.json

# Go testing-framework microbenchmarks (figure pipelines etc.).
bench-figs:
	$(GO) test -bench=. -benchmem ./...

# Export a Chrome trace of a short deferral workload to stm-trace.json:
# tx spans with nested quiesce waits, plus deferred-λ spans linked to the
# transactions that enqueued them. Load the file in https://ui.perfetto.dev
# or chrome://tracing. -check verifies the same event stream offline.
# (The defer workload is used because it exercises every span kind;
# selfcheck exists only to test the harness's failure exit and records
# no events.)
trace:
	$(GO) run ./cmd/stmtorture -duration 1s -threads 4 -workload defer -check -trace stm-trace.json

# Re-run a suite and diff against a saved baseline JSON
# (BASELINE=path, default stm-bench.json from a previous `make bench`;
# SUITE=hot|scaling|all selects which workloads re-run).
benchdiff:
	SUITE=$(SUITE) ./scripts/benchdiff.sh $(BASELINE)
