// Dedup: end-to-end run of the PARSEC dedup kernel reproduction,
// comparing all synchronization backends on the same input and verifying
// each output decodes back to the original (Section 6.2 of the paper).
//
// Run with: go run ./examples/dedup [-size 4194304] [-threads 4]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"deferstm/internal/dedup"
	"deferstm/internal/simio"
)

func main() {
	size := flag.Int("size", 4<<20, "input bytes")
	threads := flag.Int("threads", 4, "worker threads")
	dup := flag.Float64("dup", 0.6, "duplication ratio")
	flag.Parse()

	input := dedup.GenInput(*size, *dup, 1234)
	fmt.Printf("input: %d bytes, duplication ratio %.0f%%\n\n", len(input), *dup*100)
	fmt.Printf("%-14s %9s %8s %8s %8s %9s %10s %8s\n",
		"backend", "time", "packets", "uniques", "dups", "out(KiB)", "serialRuns", "defOps")

	for _, b := range dedup.Backends() {
		fs := simio.NewFS(simio.PageCacheLatency())
		res, err := dedup.Run(dedup.Config{Backend: b, Threads: *threads}, input, fs, "out")
		if err != nil {
			log.Fatalf("%v: %v", b, err)
		}
		data, err := fs.ReadAll("out")
		if err != nil {
			log.Fatal(err)
		}
		decoded, err := dedup.Decode(data)
		if err != nil {
			log.Fatalf("%v: decode: %v", b, err)
		}
		if !bytes.Equal(decoded, input) {
			log.Fatalf("%v: output does not reconstruct the input", b)
		}
		fmt.Printf("%-14s %8.3fs %8d %8d %8d %9d %10d %8d\n",
			b, res.Elapsed.Seconds(), res.Packets, res.Uniques, res.Dups,
			res.BytesOut/1024, res.TM.SerialRuns, res.TM.DeferredOps)
	}
	fmt.Println("\nok: every backend's output decoded to the original input")
	fmt.Println("note the serialRuns column: the TM baselines serialize per packet;")
	fmt.Println("the +Defer configurations eliminate that, like the paper's Figure 3")
}
