// Quickstart: transactional memory with atomic deferral in five minutes.
//
// A tiny payment system: accounts are transactional variables, transfers
// are transactions, and the audit-log write — an I/O operation that must
// appear atomic with the transfer but must not serialize the system — is
// atomically deferred (the paper's core idea).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"deferstm/internal/core"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
)

// auditLog wraps the log file as a deferrable object: its implicit lock
// is what keeps deferred writes atomic with their transactions.
type auditLog struct {
	core.Deferrable
	fd *simio.File
}

func main() {
	rt := stm.NewDefault()

	// Two accounts as transactional variables.
	alice := stm.NewVar(100)
	bob := stm.NewVar(50)

	// A simulated filesystem for the audit log (swap in any io.Writer-
	// style sink in real code).
	fs := simio.NewFS(simio.Latency{})
	logFile, err := fs.Create("audit.log")
	if err != nil {
		log.Fatal(err)
	}
	audit := &auditLog{fd: logFile}

	// transfer moves amount from one account to another and logs it.
	// The format string is built inside the transaction (it reads
	// transactional state), but the write happens after commit — without
	// making the transaction irrevocable, and without any other
	// transaction being able to observe "transferred but not logged".
	transfer := func(from, to *stm.Var[int], amount int, label string) error {
		return rt.Atomic(func(tx *stm.Tx) error {
			f := from.Get(tx)
			if f < amount {
				return fmt.Errorf("insufficient funds: %d < %d", f, amount)
			}
			from.Set(tx, f-amount)
			to.Set(tx, to.Get(tx)+amount)
			line := fmt.Sprintf("%s: %d moved (balances now %d/%d)\n",
				label, amount, from.Get(tx), to.Get(tx))
			core.AtomicDefer(tx, func(ctx *core.OpCtx) {
				if _, err := audit.fd.Write([]byte(line)); err != nil {
					log.Printf("audit write failed: %v", err)
				}
			}, audit)
			return nil
		})
	}

	// Concurrent transfers in both directions.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if i%2 == 0 {
					_ = transfer(alice, bob, 1, fmt.Sprintf("a->b[%d.%d]", i, j))
				} else {
					_ = transfer(bob, alice, 1, fmt.Sprintf("b->a[%d.%d]", i, j))
				}
			}
		}(i)
	}
	wg.Wait()

	fmt.Printf("final balances: alice=%d bob=%d (total %d)\n",
		alice.Load(), bob.Load(), alice.Load()+bob.Load())
	data, _ := fs.ReadAll("audit.log")
	lines := 0
	for _, b := range data {
		if b == '\n' {
			lines++
		}
	}
	fmt.Printf("audit log: %d entries, %d bytes\n", lines, len(data))
	fmt.Printf("runtime:   %s\n", rt.Snapshot())
	if alice.Load()+bob.Load() != 150 {
		log.Fatal("money was created or destroyed!")
	}
	if lines != 100 {
		log.Fatalf("expected 100 audit entries, got %d", lines)
	}
	fmt.Println("ok: serializability and audit completeness held")
}
