// Filepool: the paper's Listing 5 — MySQL InnoDB-style file-descriptor
// pool management with deferred open/close.
//
// InnoDB keeps a bounded pool of open file descriptors. Appending to a
// file updates its metadata under the pool lock and then issues
// asynchronous I/O; opening a file when the pool is at capacity must
// close other files first. In a transactional port, those open/close
// system calls would force irrevocability and serialize even read-only
// queries. With atomic deferral the pool is a Deferrable: metadata
// transactions on disjoint files run fully in parallel, and in the
// uncommon open/close case the system calls are deferred while concurrent
// pool accesses stall (via retry) only for the duration of the calls.
//
// Run with: go run ./examples/filepool
package main

import (
	"fmt"
	"log"
	"sync"

	"deferstm/internal/core"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
)

// fileNode is per-file metadata in the pool (file_space_t/node in
// Listing 5): all fields are transactional.
type fileNode struct {
	name    string
	open    stm.Var[bool]
	handle  stm.Var[*simio.File]
	size    stm.Var[int] // metadata size, updated before the async write
	inUse   stm.Var[int] // in-flight asynchronous writes
	openSeq stm.Var[int] // for LRU victim selection
}

// filePool is Listing 5's file_system_t: the whole pool wrapped as one
// deferrable object whose lock "abstractly covers an unbounded set of
// file descriptors".
type filePool struct {
	core.Deferrable
	fs      *simio.FS
	maxOpen int
	nodes   []*fileNode
	seq     stm.Var[int]
}

func newFilePool(fs *simio.FS, maxOpen int, names []string) *filePool {
	p := &filePool{fs: fs, maxOpen: maxOpen}
	for _, n := range names {
		node := &fileNode{name: n}
		p.nodes = append(p.nodes, node)
	}
	return p
}

// openCount counts open nodes inside tx.
func (p *filePool) openCount(tx *stm.Tx) int {
	n := 0
	for _, node := range p.nodes {
		if node.open.Get(tx) {
			n++
		}
	}
	return n
}

// ensureOpen makes node's descriptor usable, deferring the open (and any
// capacity-driven closes) from the transaction — Listing 5's
// mySQL_io_prepare. It returns once the node is open (possibly after the
// deferred operation of a prior transaction completes).
func (p *filePool) ensureOpen(rt *stm.Runtime, node *fileNode) error {
	return rt.Atomic(func(tx *stm.Tx) error {
		p.Subscribe(tx)
		if node.open.Get(tx) {
			return nil
		}
		// Select victims transactionally: oldest-opened idle nodes
		// beyond capacity.
		var victims []*fileNode
		needClose := p.openCount(tx) >= p.maxOpen
		if needClose {
			excess := p.openCount(tx) - p.maxOpen + 1
			for excess > 0 {
				var victim *fileNode
				best := int(^uint(0) >> 1)
				for _, cand := range p.nodes {
					if cand == node || !cand.open.Get(tx) || cand.inUse.Get(tx) > 0 {
						continue
					}
					if s := cand.openSeq.Get(tx); s < best {
						best, victim = s, cand
					}
				}
				if victim == nil {
					// Every open file has I/O in flight; wait for some
					// write to retire and re-run.
					tx.Retry()
				}
				victims = append(victims, victim)
				victim.open.Set(tx, false)
				excess--
			}
		}
		node.open.Set(tx, true)
		s := p.seq.Get(tx) + 1
		p.seq.Set(tx, s)
		node.openSeq.Set(tx, s)

		// The system calls run after commit, under the pool's lock:
		// concurrent pool transactions stall via their subscription
		// until the descriptors are usable again.
		core.AtomicDefer(tx, func(ctx *core.OpCtx) {
			for _, v := range victims {
				if h := v.handle.Load(); h != nil {
					if err := h.Close(); err != nil {
						log.Fatalf("close %s: %v", v.name, err)
					}
					core.Store(ctx, &v.handle, (*simio.File)(nil))
				}
			}
			h, err := p.fs.OpenAppend(node.name)
			if err != nil {
				log.Fatalf("open %s: %v", node.name, err)
			}
			core.Store(ctx, &node.handle, h)
		}, p)
		return nil
	})
}

// appendRecord is the hot path: update metadata transactionally (pool
// subscription + per-file vars), then issue the "asynchronous" write
// outside any transaction, exactly as InnoDB issues AIO after updating
// the size under the pool lock. Subsequent appends see the new size, so
// records land at increasing offsets even if their writes retire out of
// order.
func (p *filePool) appendRecord(rt *stm.Runtime, node *fileNode, payload []byte) error {
	var handle *simio.File
	err := rt.Atomic(func(tx *stm.Tx) error {
		p.Subscribe(tx)
		if !node.open.Get(tx) {
			return errNotOpen
		}
		node.size.Set(tx, node.size.Get(tx)+len(payload))
		node.inUse.Set(tx, node.inUse.Get(tx)+1)
		handle = node.handle.Get(tx)
		return nil
	})
	if err != nil {
		return err
	}
	// Asynchronous write (here: synchronous on this goroutine, after the
	// transaction — the pool lock is not held).
	if _, err := handle.Write(payload); err != nil {
		return err
	}
	return rt.Atomic(func(tx *stm.Tx) error {
		node.inUse.Set(tx, node.inUse.Get(tx)-1)
		return nil
	})
}

var errNotOpen = fmt.Errorf("filepool: not open")

func main() {
	rt := stm.NewDefault()
	fs := simio.NewFS(simio.Latency{})

	const nFiles = 12
	const maxOpen = 4
	names := make([]string, nFiles)
	for i := range names {
		names[i] = fmt.Sprintf("tablespace-%02d", i)
		f, err := fs.Create(names[i])
		if err != nil {
			log.Fatal(err)
		}
		_ = f.Close()
	}
	pool := newFilePool(fs, maxOpen, names)

	const workers = 6
	const perWorker = 150
	var wg sync.WaitGroup
	var appends [nFiles]int
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9E3779B97F4A7C15 + 7
			for i := 0; i < perWorker; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				node := pool.nodes[rng%uint64(nFiles)]
				payload := []byte(fmt.Sprintf("w%d op%d on %s\n", w, i, node.name))
				for {
					err := pool.appendRecord(rt, node, payload)
					if err == nil {
						break
					}
					if err == errNotOpen {
						if err := pool.ensureOpen(rt, node); err != nil {
							log.Fatal(err)
						}
						continue
					}
					log.Fatal(err)
				}
				mu.Lock()
				appends[rng%uint64(nFiles)] += len(payload)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Verify: per-file metadata size equals bytes actually written, and
	// no more than maxOpen descriptors remain open.
	openNow := 0
	for i, node := range pool.nodes {
		size := node.size.Load()
		data, err := fs.ReadAll(node.name)
		if err != nil {
			log.Fatal(err)
		}
		if size != len(data) || size != appends[i] {
			log.Fatalf("%s: metadata=%d file=%d expected=%d", node.name, size, len(data), appends[i])
		}
		if node.open.Load() {
			openNow++
		}
	}
	if openNow > maxOpen {
		log.Fatalf("pool over capacity: %d > %d", openNow, maxOpen)
	}
	st := fs.Stats()
	snap := rt.Snapshot()
	fmt.Printf("appended %d records across %d files; pool capacity %d, open now %d\n",
		workers*perWorker, nFiles, maxOpen, openNow)
	fmt.Printf("filesystem: opens=%d closes=%d writes=%d\n", st.Opens, st.Closes, st.Writes)
	fmt.Printf("runtime:    serialRuns=%d deferredOps=%d retries=%d\n",
		snap.SerialRuns, snap.DeferredOps, snap.Retries)
	if snap.SerialRuns != 0 {
		log.Fatal("pool management serialized the runtime — deferral failed")
	}
	fmt.Println("ok: open/close ran deferred, appends never serialized, metadata consistent")
}
