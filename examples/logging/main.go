// Logging: the paper's Listing 3 — diagnostic logging from critical
// sections without serialization.
//
// Programs like memcached occasionally log from critical sections. With
// plain TM the fprintf makes the transaction irrevocable, serializing
// everything; transactional ports therefore usually delete the logging.
// Atomic deferral keeps the logging *and* the scalability: the message is
// formatted inside the transaction (it reads mutable shared data) and the
// write is deferred on the log's deferrable object.
//
// This example contrasts three strategies on the same workload and prints
// how often each serialized the runtime.
//
// Run with: go run ./examples/logging
package main

import (
	"fmt"
	"log"
	"sync"

	"deferstm/internal/core"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
)

// deferFprintf is Listing 3's defer_fprintf: a Deferrable wrapping the
// log file descriptor.
type deferFprintf struct {
	core.Deferrable
	fd *simio.File
}

const (
	workers = 4
	perW    = 200
)

func main() {
	fs := simio.NewFS(simio.Latency{})

	type strategy struct {
		name string
		run  func(rt *stm.Runtime, df *deferFprintf, x *stm.Var[string], i *stm.Var[int])
	}

	strategies := []strategy{
		{
			// Irrevocable: fprintf inside a synchronized block.
			name: "irrevocable",
			run: func(rt *stm.Runtime, df *deferFprintf, x *stm.Var[string], i *stm.Var[int]) {
				err := rt.AtomicSerial(func(tx *stm.Tx) error {
					i.Set(tx, i.Get(tx)+1)
					msg := fmt.Sprintf("event %s #%d\n", x.Get(tx), i.Get(tx))
					_, werr := df.fd.Write([]byte(msg))
					return werr
				})
				if err != nil {
					log.Fatal(err)
				}
			},
		},
		{
			// Atomic deferral, ordered on the log's lock (Listing 3).
			name: "atomic_defer",
			run: func(rt *stm.Runtime, df *deferFprintf, x *stm.Var[string], i *stm.Var[int]) {
				err := rt.Atomic(func(tx *stm.Tx) error {
					i.Set(tx, i.Get(tx)+1)
					// sprintf inside the transaction: x and i are
					// mutable shared data.
					msg := fmt.Sprintf("event %s #%d\n", x.Get(tx), i.Get(tx))
					core.AtomicDefer(tx, func(ctx *core.OpCtx) {
						if _, err := df.fd.Write([]byte(msg)); err != nil {
							log.Printf("log write: %v", err)
						}
					}, df)
					return nil
				})
				if err != nil {
					log.Fatal(err)
				}
			},
		},
		{
			// The "pass nil" variant: no lock association. Valid when no
			// ordering among log entries is required (they carry their
			// own sequence numbers); the deferred write races only with
			// other writes to the same fd, which the File serializes.
			name: "defer_unordered",
			run: func(rt *stm.Runtime, df *deferFprintf, x *stm.Var[string], i *stm.Var[int]) {
				err := rt.Atomic(func(tx *stm.Tx) error {
					i.Set(tx, i.Get(tx)+1)
					msg := fmt.Sprintf("event %s #%d\n", x.Get(tx), i.Get(tx))
					core.AtomicDefer(tx, func(ctx *core.OpCtx) {
						if _, err := df.fd.Write([]byte(msg)); err != nil {
							log.Printf("log write: %v", err)
						}
					}) // no objects
					return nil
				})
				if err != nil {
					log.Fatal(err)
				}
			},
		},
	}

	for _, s := range strategies {
		rt := stm.NewDefault()
		f, err := fs.Create("log-" + s.name)
		if err != nil {
			log.Fatal(err)
		}
		df := &deferFprintf{fd: f}
		x := stm.NewVar("cache-miss")
		i := stm.NewVar(0)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < perW; k++ {
					s.run(rt, df, x, i)
				}
			}()
		}
		wg.Wait()

		data, _ := fs.ReadAll("log-" + s.name)
		lines := 0
		for _, b := range data {
			if b == '\n' {
				lines++
			}
		}
		snap := rt.Snapshot()
		fmt.Printf("%-16s entries=%d serialRuns=%d deferredOps=%d aborts=%d\n",
			s.name, lines, snap.SerialRuns, snap.DeferredOps, snap.Aborts())
		if lines != workers*perW {
			log.Fatalf("%s: lost log entries: %d != %d", s.name, lines, workers*perW)
		}
	}
	fmt.Println("ok: all strategies logged every event; only 'irrevocable' serialized")
}
