// Durable: the paper's Listing 4 — durable output with guaranteed
// fsync ordering.
//
// Two files F1 and F2: F2 must not be written until F1's contents have
// reached the disk. Simply deferring the fsync is not enough — the
// *completion* of the first durable write must gate the second. The
// construction: the completion flag lives in a Deferrable buffer object,
// and the deferred operation sets it while holding the object's lock, so
// a transaction that subscribes and reads the flag either sees it set
// (the fsync returned) or waits (the deferred write is in flight) or sees
// it clear (the first transaction hasn't committed).
//
// The second half shows the same idea grown into a subsystem: the
// durable KV store (internal/kv) writes one WAL record per transaction
// and defers the append+fsync through the log's lock, so concurrent
// commits share fsyncs (group commit) — and the store recovers its exact
// contents from the log after a restart.
//
// Run with: go run ./examples/durable
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"deferstm/internal/core"
	"deferstm/internal/kv"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

func main() {
	listing4()
	fmt.Println()
	groupCommit()
}

// listing4 is the paper's Listing 4: two files, the second gated on the
// first's durability through a deferrable completion flag.
func listing4() {
	rt := stm.NewDefault()
	// A filesystem with a slow, visible fsync.
	fs := simio.NewFS(simio.Latency{Fsync: 3 * time.Millisecond})

	f1, err := fs.Create("wal-1")
	if err != nil {
		log.Fatal(err)
	}
	f2, err := fs.Create("wal-2")
	if err != nil {
		log.Fatal(err)
	}
	fd1 := simio.NewDeferFD(f1)
	fd2 := simio.NewDeferFD(f2)
	buf1 := simio.NewDeferBuffer([]byte("record-A: must be durable first\n"))
	buf2 := simio.NewDeferBuffer([]byte("record-B: only after A is on disk\n"))

	var wg sync.WaitGroup

	// T2 — conditional durable output to F2, gated on buf1's flag
	// (Listing 4, right side). Started first to show the retry blocking.
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := rt.Atomic(func(tx *stm.Tx) error {
			if !buf1.Flag(tx) {
				// Case (1)/(2) of the paper's discussion: the flag is
				// unset or the deferred write is in flight — wait.
				tx.Retry()
			}
			// Case (3): buf1 is durable; emit F2's record.
			b := buf2.Buf(tx)
			f := fd2.FD(tx)
			core.AtomicDefer(tx, func(ctx *core.OpCtx) {
				durable, _ := fs.SyncedLen("wal-1")
				fmt.Printf("T2 deferred write begins; wal-1 durable bytes: %d\n", durable)
				if durable == 0 {
					log.Fatal("ordering violated: wal-1 not durable before wal-2 write")
				}
				if _, err := f.Write(b); err != nil {
					log.Fatal(err)
				}
				if err := f.Fsync(); err != nil {
					log.Fatal(err)
				}
				buf2.SetFlagDirect(ctx, true)
			}, fd2, buf2)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}()

	time.Sleep(2 * time.Millisecond) // let T2 block on the flag

	// T1 — durable output to F1 (Listing 4, left side).
	err = rt.Atomic(func(tx *stm.Tx) error {
		b := buf1.Buf(tx)
		f := fd1.FD(tx)
		core.AtomicDefer(tx, func(ctx *core.OpCtx) {
			fmt.Println("T1 deferred write begins (slow fsync ahead)")
			if _, err := f.Write(b); err != nil {
				log.Fatal(err)
			}
			if err := f.Fsync(); err != nil {
				log.Fatal(err)
			}
			// The flag flips only after the fsync returned, still under
			// buf1's lock — this is what T2's subscription synchronizes
			// with.
			buf1.SetFlagDirect(ctx, true)
		}, fd1, buf1)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	wg.Wait()

	d1, _ := fs.SyncedLen("wal-1")
	d2, _ := fs.SyncedLen("wal-2")
	c1, _ := fs.ReadAll("wal-1")
	c2, _ := fs.ReadAll("wal-2")
	fmt.Printf("wal-1: %d bytes, %d durable\nwal-2: %d bytes, %d durable\n",
		len(c1), d1, len(c2), d2)
	if d1 != len(c1) || d2 != len(c2) {
		log.Fatal("durability accounting wrong")
	}
	fmt.Println("ok: wal-2 was written only after wal-1 reached the disk")
}

// groupCommit drives the durable KV store: every Update appends one WAL
// record inside its transaction and the fsync is atomically deferred
// behind the log's lock — the first committer to find the lock free
// leads the flush, and commits that land during it share the next one.
func groupCommit() {
	fs := simio.NewFS(simio.Latency{Fsync: 2 * time.Millisecond})
	s, _, err := kv.Open(stm.NewDefault(), wal.NewSimBackend(fs), kv.Options{})
	if err != nil {
		log.Fatal(err)
	}

	const writers, updates = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < updates; i++ {
				lsn, err := s.Update(func(tx *stm.Tx, b *kv.Batch) error {
					b.Put(fmt.Sprintf("w%d-k%d", w, i%5), fmt.Sprintf("v%d", i))
					return nil
				})
				if err != nil {
					log.Fatal(err)
				}
				s.WaitDurable(lsn) // returns once a group flush covers us
			}
		}(w)
	}
	wg.Wait()

	st := s.Log().BatchStats()
	commits := uint64(writers * updates)
	fmt.Printf("group commit: %d durable updates, %d fsyncs (mean batch %.1f, max %d)\n",
		commits, fs.Stats().Fsyncs, st.Mean(), st.MaxBatch)
	if st.Flushes >= commits {
		log.Fatal("group commit never batched: as many fsyncs as commits")
	}

	// Snapshot the live contents, "restart", and recover from the log.
	live := map[string]string{}
	if err := s.View(func(tx *stm.Tx) error {
		s.Range(tx, func(k, v string) bool { live[k] = v; return true })
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}
	s2, info, err := kv.Open(stm.NewDefault(), wal.NewSimBackend(fs), kv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer s2.Close()
	recovered := map[string]string{}
	if err := s2.View(func(tx *stm.Tx) error {
		s2.Range(tx, func(k, v string) bool { recovered[k] = v; return true })
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if len(recovered) != len(live) {
		log.Fatalf("recovered %d keys, want %d", len(recovered), len(live))
	}
	for k, v := range live {
		if recovered[k] != v {
			log.Fatalf("key %q diverged after recovery", k)
		}
	}
	fmt.Printf("ok: replayed %d records, recovered store matches the live store exactly\n", info.Replayed)
}
