// Cache: a memcached-shaped workload (the paper's §5.1 example). A
// transactional CLOCK cache serves gets and puts from several client
// goroutines; eviction events are logged through atomic deferral — the
// logging memcached's transactional ports had to delete to avoid
// irrevocability stays in, and the runtime never serializes.
//
// Run with: go run ./examples/cache
package main

import (
	"fmt"
	"log"
	"sync"

	"deferstm/internal/cache"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
)

func main() {
	rt := stm.NewDefault()
	fs := simio.NewFS(simio.Latency{})
	logFile, err := fs.Create("evictions.log")
	if err != nil {
		log.Fatal(err)
	}
	var logMu sync.Mutex
	el := cache.NewEvictionLog(func(rec string) {
		logMu.Lock()
		defer logMu.Unlock()
		if _, err := logFile.Write([]byte(rec)); err != nil {
			log.Printf("eviction log: %v", err)
		}
	})
	c := cache.New[string](rt, 64).WithEvictionLog(el)

	// Clients: a zipf-ish mix of gets and puts over a keyspace larger
	// than the cache.
	const clients, perClient, keySpace = 6, 400, 200
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := uint64(cl)*0x9E3779B97F4A7C15 + 11
			for i := 0; i < perClient; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				// Skew toward low-numbered keys.
				k := rng % keySpace
				if k > keySpace/4 && rng&7 != 0 {
					k %= keySpace / 4
				}
				key := fmt.Sprintf("user:%d", k)
				err := rt.Atomic(func(tx *stm.Tx) error {
					if v, ok := c.Get(tx, key); ok {
						_ = v // cache hit: serve it
						return nil
					}
					// Miss: "fetch from the database" and populate.
					c.Put(tx, key, fmt.Sprintf("profile-%d", k))
					return nil
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}(cl)
	}
	wg.Wait()

	st := c.Stats()
	snap := rt.Snapshot()
	logData, _ := fs.ReadAll("evictions.log")
	logLines := 0
	for _, b := range logData {
		if b == '\n' {
			logLines++
		}
	}
	fmt.Printf("requests: %d   hits: %d   misses: %d   hit rate: %.1f%%\n",
		clients*perClient, st.Hits, st.Misses,
		100*float64(st.Hits)/float64(st.Hits+st.Misses))
	fmt.Printf("evictions: %d (all logged: %d lines)\n", st.Evictions, logLines)
	fmt.Printf("runtime: %s\n", snap.String())
	if uint64(logLines) != st.Evictions {
		log.Fatalf("eviction log incomplete: %d lines for %d evictions", logLines, st.Evictions)
	}
	if snap.SerialRuns != 0 {
		log.Fatal("logging serialized the runtime — deferral failed")
	}
	fmt.Println("ok: every eviction logged, zero serializations")
}
