package ds

import (
	"deferstm/internal/stm"
)

// HashMap is a transactional hash map with a fixed bucket array and
// per-bucket chain Vars: operations on different buckets never conflict.
type HashMap[V any] struct {
	buckets []stm.Var[*mapNode[V]]
	size    stm.Var[int]
}

type mapNode[V any] struct {
	key  int64
	val  V
	next *mapNode[V]
}

// NewHashMap creates a map with nBuckets buckets (minimum 16).
func NewHashMap[V any](nBuckets int) *HashMap[V] {
	if nBuckets < 16 {
		nBuckets = 16
	}
	return &HashMap[V]{buckets: make([]stm.Var[*mapNode[V]], nBuckets)}
}

func (m *HashMap[V]) bucket(k int64) *stm.Var[*mapNode[V]] {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return &m.buckets[h%uint64(len(m.buckets))]
}

// Get returns the value for k and whether it was present.
func (m *HashMap[V]) Get(tx *stm.Tx, k int64) (V, bool) {
	for n := m.bucket(k).Get(tx); n != nil; n = n.next {
		if n.key == k {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces k's value, returning true if the key was new.
// Chains are immutable nodes: updates rebuild the chain prefix, so readers
// of other keys in the same bucket conflict only via the bucket head Var.
func (m *HashMap[V]) Put(tx *stm.Tx, k int64, v V) bool {
	b := m.bucket(k)
	head := b.Get(tx)
	for n := head; n != nil; n = n.next {
		if n.key == k {
			b.Set(tx, replaceNode(head, k, v))
			return false
		}
	}
	b.Set(tx, &mapNode[V]{key: k, val: v, next: head})
	m.size.Set(tx, m.size.Get(tx)+1)
	return true
}

// replaceNode rebuilds chain head..k with k's value replaced.
func replaceNode[V any](head *mapNode[V], k int64, v V) *mapNode[V] {
	if head.key == k {
		return &mapNode[V]{key: k, val: v, next: head.next}
	}
	return &mapNode[V]{key: head.key, val: head.val, next: replaceNode(head.next, k, v)}
}

// Delete removes k, returning whether it was present.
func (m *HashMap[V]) Delete(tx *stm.Tx, k int64) bool {
	b := m.bucket(k)
	head := b.Get(tx)
	found := false
	for n := head; n != nil; n = n.next {
		if n.key == k {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	b.Set(tx, removeNode(head, k))
	m.size.Set(tx, m.size.Get(tx)-1)
	return true
}

func removeNode[V any](head *mapNode[V], k int64) *mapNode[V] {
	if head.key == k {
		return head.next
	}
	return &mapNode[V]{key: head.key, val: head.val, next: removeNode(head.next, k)}
}

// Len returns the number of entries.
func (m *HashMap[V]) Len(tx *stm.Tx) int { return m.size.Get(tx) }

// Range calls fn for each entry (inside tx) until fn returns false.
func (m *HashMap[V]) Range(tx *stm.Tx, fn func(k int64, v V) bool) {
	for i := range m.buckets {
		for n := m.buckets[i].Get(tx); n != nil; n = n.next {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
}
