package ds

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"deferstm/internal/core"
	"deferstm/internal/stm"
)

// HashMap is a transactional hash map built for multicore scaling:
//
//   - Per-bucket chain Vars with immutable nodes, so operations on
//     different buckets never conflict.
//   - The entry count is striped across cache-line-spaced counters
//     (stripe chosen from the key hash), so disjoint-key writers do not
//     serialize on a single size Var; Len sums the stripes
//     transactionally and stays exact.
//   - The bucket array lives behind a table indirection Var and grows by
//     load-factor-triggered resize. The inserting transaction flips a
//     resizing flag and uses core.AtomicDefer to acquire the map's lock
//     and run the rehash as the deferred operation after it commits (the
//     paper's atomic-deferral idiom: the expensive operation happens
//     post-commit, yet no transaction can observe a half-built table).
//     Migration proceeds in bounded chunks — each chunk is its own
//     deferral unit, so the map is never unavailable for O(n) time.
//
// Every operation subscribes to the map's implicit lock first, which is
// what makes the deferred rehash's direct stores safe: any transaction
// that could observe an intermediate table conflicts with the lock
// acquisition and aborts.
type HashMap[V any] struct {
	core.Deferrable
	table    stm.Var[*hmTable[V]]
	resizing stm.Var[bool] // a resize is triggered or in progress
	stripes  []sizeStripe
	resizes  atomic.Uint64 // completed resizes (diagnostics/tests)
}

// hmTable is one immutable view of the map's bucket layout. Outside a
// migration old is nil and buckets holds every chain. During a migration
// buckets is the new (larger) array, old is the previous array, and
// old[frontier:] are the chains not yet moved: a key whose old index is
// >= frontier still lives in old, everything else lives in buckets. Each
// migrated chunk installs a fresh hmTable with an advanced frontier.
type hmTable[V any] struct {
	buckets  []stm.Var[*mapNode[V]]
	old      []stm.Var[*mapNode[V]]
	frontier int
}

// sizeStripe pads each counter out to its own pair of cache lines so
// commits to different stripes never false-share.
type sizeStripe struct {
	n stm.Var[int]
	_ [96]byte // sizeof(stm.Var[int]) == 32; pad to 128
}

type mapNode[V any] struct {
	key  int64
	val  V
	next *mapNode[V]
}

const (
	minBuckets = 16
	// maxChain is the chain length that makes an inserting transaction
	// consider triggering a resize.
	maxChain = 8
	// growFactor: resize when entries > growFactor * buckets.
	growFactor = 4
	// migrateChunkBuckets bounds the work done under the map lock by one
	// deferral unit; between chunks the lock is free and blocked
	// transactions proceed against the frontier view.
	migrateChunkBuckets = 64
)

// NewHashMap creates a map with nBuckets buckets (minimum 16).
func NewHashMap[V any](nBuckets int) *HashMap[V] {
	if nBuckets < minBuckets {
		nBuckets = minBuckets
	}
	m := &HashMap[V]{stripes: make([]sizeStripe, stripeCount())}
	m.table.Init(&hmTable[V]{buckets: make([]stm.Var[*mapNode[V]], nBuckets)})
	return m
}

// stripeCount sizes the stripe array to the core count (power of two,
// clamped to [8, 64]) so concurrent size movers rarely collide.
func stripeCount() int {
	n := 8
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n *= 2
	}
	return n
}

func hashKey(k int64) uint64 { return uint64(k) * 0x9E3779B97F4A7C15 }

// stripeFor picks a size stripe from high hash bits, decorrelated from
// the bucket index (low bits) so same-stripe and same-bucket conflicts
// are independent.
func (m *HashMap[V]) stripeFor(h uint64) *stm.Var[int] {
	return &m.stripes[(h>>32)%uint64(len(m.stripes))].n
}

// view subscribes to the map's lock and returns the current table. The
// subscription is mandatory before any table access: it orders the
// transaction against deferred rehash operations.
func (m *HashMap[V]) view(tx *stm.Tx) *hmTable[V] {
	m.Subscribe(tx)
	return m.table.Get(tx)
}

// bucketFor returns the chain Var holding key hash h under table t.
func (t *hmTable[V]) bucketFor(h uint64) *stm.Var[*mapNode[V]] {
	if t.old != nil {
		if oi := int(h % uint64(len(t.old))); oi >= t.frontier {
			return &t.old[oi]
		}
	}
	return &t.buckets[h%uint64(len(t.buckets))]
}

// Get returns the value for k and whether it was present.
func (m *HashMap[V]) Get(tx *stm.Tx, k int64) (V, bool) {
	h := hashKey(k)
	for n := m.view(tx).bucketFor(h).Get(tx); n != nil; n = n.next {
		if n.key == k {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces k's value, returning true if the key was new.
// Chains are immutable nodes: updates rebuild the chain prefix, so readers
// of other keys in the same bucket conflict only via the bucket head Var.
// A single pass over the chain both finds the key and measures the chain.
func (m *HashMap[V]) Put(tx *stm.Tx, k int64, v V) bool {
	t := m.view(tx)
	h := hashKey(k)
	b := t.bucketFor(h)
	head := b.Get(tx)
	chain := 0
	for n := head; n != nil; n = n.next {
		chain++
		if n.key == k {
			b.Set(tx, replaceNode(head, k, v))
			return false
		}
	}
	b.Set(tx, &mapNode[V]{key: k, val: v, next: head})
	s := m.stripeFor(h)
	s.Set(tx, s.Get(tx)+1)
	m.maybeGrow(tx, t, chain+1)
	return true
}

// replaceNode rebuilds chain head..k with k's value replaced.
func replaceNode[V any](head *mapNode[V], k int64, v V) *mapNode[V] {
	if head.key == k {
		return &mapNode[V]{key: k, val: v, next: head.next}
	}
	return &mapNode[V]{key: head.key, val: head.val, next: replaceNode(head.next, k, v)}
}

// Delete removes k, returning whether it was present. One pass: removeNode
// walks the chain once, rebuilding the prefix only if the key exists.
func (m *HashMap[V]) Delete(tx *stm.Tx, k int64) bool {
	t := m.view(tx)
	h := hashKey(k)
	b := t.bucketFor(h)
	nh, ok := removeNode(b.Get(tx), k)
	if !ok {
		return false
	}
	b.Set(tx, nh)
	s := m.stripeFor(h)
	s.Set(tx, s.Get(tx)-1)
	return true
}

// removeNode returns the chain with k removed and whether k was found,
// copying only the prefix before k and only when k is present.
func removeNode[V any](head *mapNode[V], k int64) (*mapNode[V], bool) {
	if head == nil {
		return nil, false
	}
	if head.key == k {
		return head.next, true
	}
	rest, ok := removeNode(head.next, k)
	if !ok {
		return head, false
	}
	return &mapNode[V]{key: head.key, val: head.val, next: rest}, true
}

// Len returns the number of entries: the transactional sum of the size
// stripes, exact under serializability.
func (m *HashMap[V]) Len(tx *stm.Tx) int {
	m.Subscribe(tx)
	total := 0
	for i := range m.stripes {
		total += m.stripes[i].n.Get(tx)
	}
	return total
}

// Range calls fn for each entry (inside tx) until fn returns false.
func (m *HashMap[V]) Range(tx *stm.Tx, fn func(k int64, v V) bool) {
	t := m.view(tx)
	for i := range t.buckets {
		for n := t.buckets[i].Get(tx); n != nil; n = n.next {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
	if t.old == nil {
		return
	}
	for i := t.frontier; i < len(t.old); i++ {
		for n := t.old[i].Get(tx); n != nil; n = n.next {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
}

// SnapshotRange calls fn for every entry of one consistent cut of the
// map — a snapshot-mode transaction (stm.AtomicSnapshot) that sees the
// map as of a single version-clock instant, never aborts on conflicting
// writers and never forces them to wait. fn observes each key exactly
// once per call, even when the scan internally re-executes: the runtime
// falls back to the validating read-only path when the version chains
// cannot serve the snapshot (depth overflow, or a migration chunk held
// the map's lock at the pin), and that path may run the iteration more
// than once. The cut is therefore collected inside the transaction and
// handed to fn only after it succeeded — streaming fn directly from the
// transaction used to double-observe keys whenever a mid-resize scan
// was re-run. The buffer costs O(n) memory; fn returning false stops
// the delivery early (the cut itself is always collected in full).
func (m *HashMap[V]) SnapshotRange(rt *stm.Runtime, fn func(k int64, v V) bool) error {
	type entry struct {
		k int64
		v V
	}
	var cut []entry
	err := rt.AtomicSnapshot(func(tx *stm.Tx) error {
		cut = cut[:0] // re-execution restarts the iteration from scratch
		m.Range(tx, func(k int64, v V) bool {
			cut = append(cut, entry{k: k, v: v})
			return true
		})
		return nil
	})
	if err != nil {
		return err
	}
	for _, e := range cut {
		if !fn(e.k, e.v) {
			return nil
		}
	}
	return nil
}

// Resizes reports how many resizes have completed (snapshot).
func (m *HashMap[V]) Resizes() uint64 { return m.resizes.Load() }

// Migrating reports whether a migration is in progress (snapshot).
func (m *HashMap[V]) Migrating() bool { return m.table.Load().old != nil }

// BucketCount reports the current bucket array length (snapshot).
func (m *HashMap[V]) BucketCount() int { return len(m.table.Load().buckets) }

// approxLen sums the stripes non-transactionally. It deliberately avoids
// Get: reading every stripe into the read set would make each insert
// conflict with every size movement, recreating the single-counter
// hotspot. The value is a heuristic used only by the resize trigger.
func (m *HashMap[V]) approxLen() int {
	total := 0
	for i := range m.stripes {
		total += m.stripes[i].n.Load()
	}
	return total
}

// maybeGrow decides, after an insert produced a chain of chainLen, whether
// this transaction should trigger a resize. The trigger transaction flips
// the resizing flag (so exactly one committed transaction triggers) and
// defers beginResize under the map lock — the paper's pattern of moving a
// long operation out of the transaction while keeping it atomic.
func (m *HashMap[V]) maybeGrow(tx *stm.Tx, t *hmTable[V], chainLen int) {
	if chainLen <= maxChain || t.old != nil {
		return
	}
	if m.approxLen() <= growFactor*len(t.buckets) {
		return
	}
	if m.resizing.Get(tx) {
		return
	}
	m.resizing.Set(tx, true)
	core.AtomicDefer(tx, func(ctx *core.OpCtx) { m.beginResize(ctx) }, m)
}

// beginResize runs as a deferred operation holding the map lock: it
// installs the migrating table (new empty buckets, old array, frontier 0),
// migrates the first chunk, and — if chains remain — hands the rest to a
// background migrator. Direct stores are safe here because every map
// operation subscribes to the lock this operation holds.
func (m *HashMap[V]) beginResize(ctx *core.OpCtx) {
	t := core.Load(ctx, &m.table)
	if t.old != nil {
		return // already migrating (defensive; the resizing flag gates)
	}
	newLen := 2 * len(t.buckets)
	for m.approxLen() > growFactor*newLen {
		newLen *= 2
	}
	nt := &hmTable[V]{buckets: make([]stm.Var[*mapNode[V]], newLen), old: t.buckets}
	if m.migrateChunk(ctx, nt) {
		go m.migrateLoop(ctx.Runtime())
	}
}

// migrateChunk moves up to migrateChunkBuckets old chains into the new
// bucket array and installs the advanced-frontier table (or the final
// table, ending the migration). Must run holding the map lock. Reports
// whether chains remain.
func (m *HashMap[V]) migrateChunk(ctx *core.OpCtx, t *hmTable[V]) bool {
	if met := ctx.Runtime().Metrics(); met != nil {
		defer func(t0 time.Time) { met.ResizeChunk.Observe(time.Since(t0)) }(time.Now())
	}
	end := t.frontier + migrateChunkBuckets
	if end > len(t.old) {
		end = len(t.old)
	}
	for i := t.frontier; i < end; i++ {
		for n := core.Load(ctx, &t.old[i]); n != nil; n = n.next {
			// Rehash into the new array. The target bucket may already
			// hold keys from other (migrated) old buckets, so prepend.
			j := hashKey(n.key) % uint64(len(t.buckets))
			core.Store(ctx, &t.buckets[j],
				&mapNode[V]{key: n.key, val: n.val, next: core.Load(ctx, &t.buckets[j])})
		}
	}
	if end == len(t.old) {
		core.Store(ctx, &m.table, &hmTable[V]{buckets: t.buckets})
		core.Store(ctx, &m.resizing, false)
		m.resizes.Add(1)
		return false
	}
	core.Store(ctx, &m.table, &hmTable[V]{buckets: t.buckets, old: t.old, frontier: end})
	return true
}

// migrateLoop drives the remaining chunks from a plain goroutine under a
// fresh owner identity. Each chunk is one transaction deferring one
// operation — its own two-phase-locking unit — so the lock is released
// between chunks and map operations interleave with the migration. A
// failed TryAcquire means another owner holds the lock (a user-visible
// Lock() holder, or a second migrator after back-to-back resizes); we
// yield and retry, and stop as soon as a table with old == nil is seen.
func (m *HashMap[V]) migrateLoop(rt *stm.Runtime) {
	if rt.Metrics() != nil {
		// Label the migrator so goroutine/CPU profiles from the debug
		// endpoint separate background rehashing from foreground work.
		pprof.Do(context.Background(), pprof.Labels("deferstm", "map-migrator"),
			func(context.Context) { m.migrateChunks(rt) })
		return
	}
	m.migrateChunks(rt)
}

func (m *HashMap[V]) migrateChunks(rt *stm.Runtime) {
	me := rt.NewOwner()
	for {
		migrating := false
		_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
			migrating = false
			m.Subscribe(tx)
			t := m.table.Get(tx)
			if t.old == nil {
				return nil
			}
			migrating = true
			core.AtomicDeferTry(tx, func(ctx *core.OpCtx) {
				if nt := core.Load(ctx, &m.table); nt.old != nil {
					m.migrateChunk(ctx, nt)
				}
			}, m)
			return nil
		})
		if !migrating {
			return
		}
		runtime.Gosched()
	}
}
