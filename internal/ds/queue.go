package ds

import (
	"context"

	"deferstm/internal/stm"
)

// Queue is an unbounded transactional FIFO queue (two persistent stacks,
// the classic functional-queue construction): Put appends, Take removes
// the oldest element or retries until one exists. Because Take uses
// retry, a consumer transaction composes with arbitrary other
// transactional work — the "composable blocking" of Harris et al. that
// the paper's Section 2 reviews.
type Queue[T any] struct {
	front stm.Var[*qNode[T]] // next to take, oldest first
	back  stm.Var[*qNode[T]] // most recent put first
	size  stm.Var[int]
}

type qNode[T any] struct {
	v    T
	next *qNode[T]
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Put appends v.
func (q *Queue[T]) Put(tx *stm.Tx, v T) {
	q.back.Set(tx, &qNode[T]{v: v, next: q.back.Get(tx)})
	q.size.Set(tx, q.size.Get(tx)+1)
}

// TryTake removes and returns the oldest element, or ok=false when empty.
func (q *Queue[T]) TryTake(tx *stm.Tx) (T, bool) {
	if f := q.front.Get(tx); f != nil {
		q.front.Set(tx, f.next)
		q.size.Set(tx, q.size.Get(tx)-1)
		return f.v, true
	}
	// Reverse the back list into the front.
	b := q.back.Get(tx)
	if b == nil {
		var zero T
		return zero, false
	}
	var front *qNode[T]
	for n := b; n != nil; n = n.next {
		front = &qNode[T]{v: n.v, next: front}
	}
	q.back.Set(tx, nil)
	q.front.Set(tx, front.next)
	q.size.Set(tx, q.size.Get(tx)-1)
	return front.v, true
}

// Take removes and returns the oldest element, retrying (blocking and
// re-executing the transaction) while the queue is empty.
func (q *Queue[T]) Take(tx *stm.Tx) T {
	v, ok := q.TryTake(tx)
	if !ok {
		tx.Retry()
	}
	return v
}

// Len reports the queue length.
func (q *Queue[T]) Len(tx *stm.Tx) int { return q.size.Get(tx) }

// TakeCtx runs its own transaction that blocks (parked on watchers,
// consuming no CPU) until an element is available or ctx ends, in which
// case it returns ctx.Err(). Use Take to block inside an existing
// transaction; TakeCtx is the top-level consumer entry point.
func (q *Queue[T]) TakeCtx(ctx context.Context, rt *stm.Runtime) (T, error) {
	var v T
	err := rt.AtomicCtx(ctx, func(tx *stm.Tx) error {
		v = q.Take(tx)
		return nil
	})
	return v, err
}

// BoundedQueue is a fixed-capacity transactional FIFO ring. Put retries
// while full; Take retries while empty. It is the data structure behind
// reorder windows and bounded pipelines (compare internal/dedup's ring).
type BoundedQueue[T any] struct {
	slots []stm.Var[T]
	head  stm.Var[uint64] // next take position
	tail  stm.Var[uint64] // next put position
}

// NewBoundedQueue returns a queue of capacity n (minimum 1).
func NewBoundedQueue[T any](n int) *BoundedQueue[T] {
	if n < 1 {
		n = 1
	}
	return &BoundedQueue[T]{slots: make([]stm.Var[T], n)}
}

// Cap returns the capacity.
func (q *BoundedQueue[T]) Cap() int { return len(q.slots) }

// Len reports the number of queued elements inside tx.
func (q *BoundedQueue[T]) Len(tx *stm.Tx) int {
	return int(q.tail.Get(tx) - q.head.Get(tx))
}

// TryPut appends v, reporting false when full.
func (q *BoundedQueue[T]) TryPut(tx *stm.Tx, v T) bool {
	t := q.tail.Get(tx)
	if int(t-q.head.Get(tx)) == len(q.slots) {
		return false
	}
	q.slots[t%uint64(len(q.slots))].Set(tx, v)
	q.tail.Set(tx, t+1)
	return true
}

// Put appends v, retrying while the queue is full.
func (q *BoundedQueue[T]) Put(tx *stm.Tx, v T) {
	if !q.TryPut(tx, v) {
		tx.Retry()
	}
}

// TryTake removes the oldest element, reporting false when empty.
func (q *BoundedQueue[T]) TryTake(tx *stm.Tx) (T, bool) {
	h := q.head.Get(tx)
	if h == q.tail.Get(tx) {
		var zero T
		return zero, false
	}
	slot := &q.slots[h%uint64(len(q.slots))]
	v := slot.Get(tx)
	var zero T
	slot.Set(tx, zero) // drop the reference for GC
	q.head.Set(tx, h+1)
	return v, true
}

// Take removes the oldest element, retrying while the queue is empty.
func (q *BoundedQueue[T]) Take(tx *stm.Tx) T {
	v, ok := q.TryTake(tx)
	if !ok {
		tx.Retry()
	}
	return v
}

// PutCtx runs its own transaction that blocks (parked on watchers)
// while the queue is full, until the put succeeds or ctx ends, in which
// case it returns ctx.Err(). Use Put to block inside an existing
// transaction; PutCtx is the top-level producer entry point.
func (q *BoundedQueue[T]) PutCtx(ctx context.Context, rt *stm.Runtime, v T) error {
	return rt.AtomicCtx(ctx, func(tx *stm.Tx) error {
		q.Put(tx, v)
		return nil
	})
}

// TakeCtx runs its own transaction that blocks while the queue is
// empty, until an element arrives or ctx ends, in which case it returns
// ctx.Err().
func (q *BoundedQueue[T]) TakeCtx(ctx context.Context, rt *stm.Runtime) (T, error) {
	var v T
	err := rt.AtomicCtx(ctx, func(tx *stm.Tx) error {
		v = q.Take(tx)
		return nil
	})
	return v, err
}
