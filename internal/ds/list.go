// Package ds provides transactional data structures built on the STM
// runtime: a sorted linked-list set, a hash map, and a red-black tree (the
// paper's introduction motivates TM with exactly such irregular pointer
// structures — "the rebalancing operations of a red-black tree mutation").
//
// They serve three roles in the reproduction: realistic workloads for the
// contention-manager ablations, exercises for the STM's conflict
// detection (long traversals, read-mostly vs write-heavy mixes), and
// example fodder.
package ds

import (
	"deferstm/internal/stm"
)

// List is a sorted singly-linked integer set with per-node link Vars, so
// disjoint updates conflict only when they touch adjacent nodes.
// The zero List is not usable; call NewList.
type List struct {
	head *listNode // sentinel (-inf)
	size stm.Var[int]
}

type listNode struct {
	key  int64
	next stm.Var[*listNode]
}

// NewList returns an empty set.
func NewList() *List {
	return &List{head: &listNode{key: -1 << 62}}
}

// find returns the last node with key < k and its successor.
func (l *List) find(tx *stm.Tx, k int64) (prev, cur *listNode) {
	prev = l.head
	cur = prev.next.Get(tx)
	for cur != nil && cur.key < k {
		prev = cur
		cur = cur.next.Get(tx)
	}
	return prev, cur
}

// Contains reports whether k is in the set.
func (l *List) Contains(tx *stm.Tx, k int64) bool {
	_, cur := l.find(tx, k)
	return cur != nil && cur.key == k
}

// Insert adds k, returning false if it was already present.
func (l *List) Insert(tx *stm.Tx, k int64) bool {
	prev, cur := l.find(tx, k)
	if cur != nil && cur.key == k {
		return false
	}
	n := &listNode{key: k}
	n.next.Set(tx, cur)
	prev.next.Set(tx, n)
	l.size.Set(tx, l.size.Get(tx)+1)
	return true
}

// Remove deletes k, returning false if it was absent.
func (l *List) Remove(tx *stm.Tx, k int64) bool {
	prev, cur := l.find(tx, k)
	if cur == nil || cur.key != k {
		return false
	}
	prev.next.Set(tx, cur.next.Get(tx))
	l.size.Set(tx, l.size.Get(tx)-1)
	return true
}

// Len returns the set size.
func (l *List) Len(tx *stm.Tx) int { return l.size.Get(tx) }

// Keys returns the sorted keys (inside tx).
func (l *List) Keys(tx *stm.Tx) []int64 {
	var out []int64
	for n := l.head.next.Get(tx); n != nil; n = n.next.Get(tx) {
		out = append(out, n.key)
	}
	return out
}
