package ds

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"deferstm/internal/check"
	"deferstm/internal/history"
	"deferstm/internal/stm"
)

// waitSettled blocks until no migration is in flight and the map lock is
// free, so tests can inspect final state (and read the history log)
// without racing the background migrator.
func waitSettled[V any](t *testing.T, m *HashMap[V]) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for m.Migrating() || m.Lock().OwnerSnapshot() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("migration did not settle: migrating=%v lock=%d", m.Migrating(), m.Lock().OwnerSnapshot())
		}
		time.Sleep(time.Millisecond)
	}
}

// A map born at the minimum size must grow under monotonic inserts, and
// every key must survive the (chunked, deferred) migrations.
func TestHashMapResizeGrows(t *testing.T) {
	rt := stm.NewDefault()
	m := NewHashMap[int](16)
	const n = 4000
	for lo := 0; lo < n; lo += 100 {
		if err := rt.Atomic(func(tx *stm.Tx) error {
			for k := lo; k < lo+100; k++ {
				m.Put(tx, int64(k), k*3)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitSettled(t, m)
	if m.Resizes() == 0 {
		t.Fatal("no resize completed")
	}
	if got := m.BucketCount(); got <= 16 {
		t.Fatalf("bucket count did not grow: %d", got)
	}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		if l := m.Len(tx); l != n {
			t.Errorf("len = %d, want %d", l, n)
		}
		for k := 0; k < n; k++ {
			v, ok := m.Get(tx, int64(k))
			if !ok || v != k*3 {
				t.Fatalf("key %d: got (%d,%v)", k, v, ok)
			}
		}
		seen := 0
		m.Range(tx, func(k int64, v int) bool { seen++; return true })
		if seen != n {
			t.Errorf("range saw %d entries, want %d", seen, n)
		}
		return nil
	})
}

// Concurrent writers over disjoint keys with interleaved deletes: the
// striped length must stay exact and resizes must not lose entries.
func TestHashMapStripedLenConcurrent(t *testing.T) {
	rt := stm.NewDefault()
	m := NewHashMap[int](16)
	const workers, per = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) << 32
			for i := 0; i < per; i++ {
				k := base + int64(i)
				_ = rt.Atomic(func(tx *stm.Tx) error {
					m.Put(tx, k, i)
					return nil
				})
				if i%4 == 3 { // delete every 4th key again
					_ = rt.Atomic(func(tx *stm.Tx) error {
						if !m.Delete(tx, k) {
							t.Errorf("delete %d: not found", k)
						}
						return nil
					})
				}
			}
		}(w)
	}
	wg.Wait()
	waitSettled(t, m)
	want := workers * per * 3 / 4
	var got int
	_ = rt.Atomic(func(tx *stm.Tx) error { got = m.Len(tx); return nil })
	if got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
}

// runResizeChecked drives concurrent put/get/delete through at least one
// full resize on a recording runtime with fault injection, then runs the
// offline checker: the history — including the deferred rehash chunks and
// the background migrator's transactions — must be serializable, opaque,
// deferral-atomic and two-phase (satellite of the scaling tentpole).
func runResizeChecked(t *testing.T, seed uint64, workers, opsPerWorker int) {
	t.Helper()
	log := history.New()
	rt := stm.New(stm.Config{
		Recorder: log,
		Inject: &stm.Inject{
			Seed:              seed,
			ConflictPct:       15,
			WriteBackDelayPct: 10,
			QuiesceStallPct:   10,
			PreHookStallPct:   20,
			StallSpins:        256,
		},
	})
	m := NewHashMap[int](16)
	oracleKeys := int64(opsPerWorker) // per-worker key range; overlapping across workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := seed + uint64(w)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < opsPerWorker; i++ {
				k := int64(next()) % oracleKeys
				if k < 0 {
					k = -k
				}
				switch next() % 10 {
				case 0: // delete
					_ = rt.Atomic(func(tx *stm.Tx) error {
						m.Delete(tx, k)
						return nil
					})
				case 1, 2: // read
					_ = rt.Atomic(func(tx *stm.Tx) error {
						_, _ = m.Get(tx, k)
						return nil
					})
				default: // insert fresh-ish keys to force growth
					kk := k + int64(i)*oracleKeys
					_ = rt.Atomic(func(tx *stm.Tx) error {
						m.Put(tx, kk, int(kk))
						return nil
					})
				}
			}
		}(w)
	}
	wg.Wait()
	waitSettled(t, m)
	if m.Resizes() == 0 {
		t.Fatal("workload completed without a full resize; test is vacuous")
	}
	rep := check.History(log.Events())
	if !rep.OK() {
		t.Fatalf("checker rejected resize history (seed %d):\n%s", seed, rep)
	}
}

// Property: histories spanning deferred chunked resizes pass every
// checker axiom, for arbitrary seeds.
func TestHashMapResizeCheckerProperty(t *testing.T) {
	f := func(seed uint32) bool {
		runResizeChecked(t, uint64(seed), 4, 150)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}

// Fixed-seed smoke variant for deterministic reproduction.
func TestHashMapResizeCheckerSmoke(t *testing.T) {
	runResizeChecked(t, 7, 4, 200)
}
