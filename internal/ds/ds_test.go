package ds

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"deferstm/internal/stm"
)

// atomically runs fn in a fresh transaction, failing the test on error.
func atomically(t *testing.T, rt *stm.Runtime, fn func(tx *stm.Tx)) {
	t.Helper()
	if err := rt.Atomic(func(tx *stm.Tx) error {
		fn(tx)
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
}

// ---------- List ----------

func TestListBasic(t *testing.T) {
	rt := stm.NewDefault()
	l := NewList()
	atomically(t, rt, func(tx *stm.Tx) {
		if !l.Insert(tx, 5) || !l.Insert(tx, 1) || !l.Insert(tx, 9) {
			t.Error("insert failed")
		}
		if l.Insert(tx, 5) {
			t.Error("duplicate insert succeeded")
		}
		if !l.Contains(tx, 5) || l.Contains(tx, 4) {
			t.Error("contains wrong")
		}
		if l.Len(tx) != 3 {
			t.Errorf("len = %d", l.Len(tx))
		}
		keys := l.Keys(tx)
		if len(keys) != 3 || keys[0] != 1 || keys[1] != 5 || keys[2] != 9 {
			t.Errorf("keys = %v", keys)
		}
		if !l.Remove(tx, 5) || l.Remove(tx, 5) {
			t.Error("remove wrong")
		}
		if l.Len(tx) != 2 {
			t.Errorf("len after remove = %d", l.Len(tx))
		}
	})
}

func TestListConcurrentDisjoint(t *testing.T) {
	rt := stm.NewDefault()
	l := NewList()
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := int64(w*per + i)
				_ = rt.Atomic(func(tx *stm.Tx) error {
					l.Insert(tx, k)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	atomically(t, rt, func(tx *stm.Tx) {
		if n := l.Len(tx); n != workers*per {
			t.Errorf("len = %d, want %d", n, workers*per)
		}
		keys := l.Keys(tx)
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Error("keys not sorted")
		}
	})
}

// Property: the list behaves like a sorted set.
func TestListOracleProperty(t *testing.T) {
	rt := stm.NewDefault()
	f := func(ops []int16) bool {
		l := NewList()
		oracle := map[int64]bool{}
		for _, op := range ops {
			k := int64(op % 64)
			ins := op >= 0
			var got bool
			_ = rt.Atomic(func(tx *stm.Tx) error {
				if ins {
					got = l.Insert(tx, k)
				} else {
					got = l.Remove(tx, k)
				}
				return nil
			})
			var want bool
			if ins {
				want = !oracle[k]
				oracle[k] = true
			} else {
				want = oracle[k]
				delete(oracle, k)
			}
			if got != want {
				return false
			}
		}
		var n int
		_ = rt.Atomic(func(tx *stm.Tx) error { n = l.Len(tx); return nil })
		return n == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// ---------- HashMap ----------

func TestHashMapBasic(t *testing.T) {
	rt := stm.NewDefault()
	m := NewHashMap[string](16)
	atomically(t, rt, func(tx *stm.Tx) {
		if !m.Put(tx, 1, "one") {
			t.Error("new key reported as existing")
		}
		if m.Put(tx, 1, "uno") {
			t.Error("replace reported as new")
		}
		v, ok := m.Get(tx, 1)
		if !ok || v != "uno" {
			t.Errorf("Get = %q,%v", v, ok)
		}
		if _, ok := m.Get(tx, 2); ok {
			t.Error("phantom key")
		}
		if m.Len(tx) != 1 {
			t.Errorf("len = %d", m.Len(tx))
		}
		if !m.Delete(tx, 1) || m.Delete(tx, 1) {
			t.Error("delete wrong")
		}
	})
}

func TestHashMapRange(t *testing.T) {
	rt := stm.NewDefault()
	m := NewHashMap[int](16)
	atomically(t, rt, func(tx *stm.Tx) {
		for i := int64(0); i < 20; i++ {
			m.Put(tx, i, int(i*10))
		}
	})
	seen := map[int64]int{}
	atomically(t, rt, func(tx *stm.Tx) {
		m.Range(tx, func(k int64, v int) bool {
			seen[k] = v
			return true
		})
	})
	if len(seen) != 20 || seen[7] != 70 {
		t.Errorf("range saw %d entries", len(seen))
	}
	// Early stop.
	count := 0
	atomically(t, rt, func(tx *stm.Tx) {
		count = 0
		m.Range(tx, func(k int64, v int) bool {
			count++
			return count < 5
		})
	})
	if count != 5 {
		t.Errorf("early stop count = %d", count)
	}
}

func TestHashMapConcurrent(t *testing.T) {
	rt := stm.NewDefault()
	m := NewHashMap[int](64)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := int64(w*per + i)
				_ = rt.Atomic(func(tx *stm.Tx) error {
					m.Put(tx, k, w)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	var n int
	atomically(t, rt, func(tx *stm.Tx) { n = m.Len(tx) })
	if n != workers*per {
		t.Errorf("len = %d, want %d", n, workers*per)
	}
}

func TestHashMapMinBuckets(t *testing.T) {
	m := NewHashMap[int](1)
	if m.BucketCount() != 16 {
		t.Errorf("bucket floor = %d", m.BucketCount())
	}
}

// Property: map behaves like the builtin map.
func TestHashMapOracleProperty(t *testing.T) {
	rt := stm.NewDefault()
	f := func(ops []int16) bool {
		m := NewHashMap[int16](32)
		oracle := map[int64]int16{}
		for i, op := range ops {
			k := int64(op % 32)
			switch i % 3 {
			case 0, 1:
				_ = rt.Atomic(func(tx *stm.Tx) error { m.Put(tx, k, op); return nil })
				oracle[k] = op
			case 2:
				_ = rt.Atomic(func(tx *stm.Tx) error { m.Delete(tx, k); return nil })
				delete(oracle, k)
			}
		}
		good := true
		_ = rt.Atomic(func(tx *stm.Tx) error {
			if m.Len(tx) != len(oracle) {
				good = false
			}
			for k, v := range oracle {
				got, ok := m.Get(tx, k)
				if !ok || got != v {
					good = false
				}
			}
			return nil
		})
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// ---------- RBTree ----------

func TestRBTreeBasic(t *testing.T) {
	rt := stm.NewDefault()
	tr := NewRBTree[string]()
	atomically(t, rt, func(tx *stm.Tx) {
		if !tr.Insert(tx, 10, "ten") || !tr.Insert(tx, 5, "five") || !tr.Insert(tx, 15, "fifteen") {
			t.Error("insert failed")
		}
		if tr.Insert(tx, 10, "TEN") {
			t.Error("replace counted as new")
		}
		v, ok := tr.Get(tx, 10)
		if !ok || v != "TEN" {
			t.Errorf("Get(10) = %q,%v", v, ok)
		}
		if tr.Len(tx) != 3 {
			t.Errorf("len = %d", tr.Len(tx))
		}
		k, _, ok := tr.Min(tx)
		if !ok || k != 5 {
			t.Errorf("Min = %d", k)
		}
		k, _, ok = tr.Max(tx)
		if !ok || k != 15 {
			t.Errorf("Max = %d", k)
		}
		if !tr.Delete(tx, 10) || tr.Delete(tx, 10) {
			t.Error("delete wrong")
		}
		keys := tr.Keys(tx)
		if len(keys) != 2 || keys[0] != 5 || keys[1] != 15 {
			t.Errorf("keys = %v", keys)
		}
	})
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRBTreeEmpty(t *testing.T) {
	rt := stm.NewDefault()
	tr := NewRBTree[int]()
	atomically(t, rt, func(tx *stm.Tx) {
		if _, _, ok := tr.Min(tx); ok {
			t.Error("Min on empty")
		}
		if _, _, ok := tr.Max(tx); ok {
			t.Error("Max on empty")
		}
		if tr.Delete(tx, 1) {
			t.Error("delete on empty")
		}
		if _, ok := tr.Get(tx, 1); ok {
			t.Error("get on empty")
		}
	})
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestRBTreeInvariantsUnderSequentialOps: invariants hold after every
// operation of a deterministic mixed workload.
func TestRBTreeInvariantsSequential(t *testing.T) {
	rt := stm.NewDefault()
	tr := NewRBTree[int]()
	rng := uint64(12345)
	next := func(n int) int64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int64(rng % uint64(n))
	}
	present := map[int64]bool{}
	for i := 0; i < 3000; i++ {
		k := next(500)
		if next(3) != 0 {
			atomically(t, rt, func(tx *stm.Tx) { tr.Insert(tx, k, i) })
			present[k] = true
		} else {
			atomically(t, rt, func(tx *stm.Tx) { tr.Delete(tx, k) })
			delete(present, k)
		}
		if i%100 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var n int
	atomically(t, rt, func(tx *stm.Tx) { n = tr.Len(tx) })
	if n != len(present) {
		t.Errorf("len = %d, oracle %d", n, len(present))
	}
	var keys []int64
	atomically(t, rt, func(tx *stm.Tx) { keys = tr.Keys(tx) })
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Error("keys not sorted")
	}
}

// Property: tree matches a map oracle for random op sequences, and
// invariants hold at the end.
func TestRBTreeOracleProperty(t *testing.T) {
	rt := stm.NewDefault()
	f := func(ops []int16) bool {
		tr := NewRBTree[int16]()
		oracle := map[int64]int16{}
		for _, op := range ops {
			k := int64(op % 128)
			if op >= 0 {
				_ = rt.Atomic(func(tx *stm.Tx) error { tr.Insert(tx, k, op); return nil })
				oracle[k] = op
			} else {
				_ = rt.Atomic(func(tx *stm.Tx) error { tr.Delete(tx, k); return nil })
				delete(oracle, k)
			}
		}
		if tr.Validate() != nil {
			return false
		}
		good := true
		_ = rt.Atomic(func(tx *stm.Tx) error {
			if tr.Len(tx) != len(oracle) {
				good = false
			}
			for k, v := range oracle {
				got, ok := tr.Get(tx, k)
				if !ok || got != v {
					good = false
				}
			}
			return nil
		})
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRBTreeConcurrent: concurrent random mutations preserve invariants
// and conserve a transactional size counter.
func TestRBTreeConcurrent(t *testing.T) {
	rt := stm.NewDefault()
	tr := NewRBTree[int]()
	var wg sync.WaitGroup
	const workers, per = 6, 150
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w + 1)
			next := func(n int) int64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int64(rng % uint64(n))
			}
			for i := 0; i < per; i++ {
				k := next(200)
				if next(2) == 0 {
					_ = rt.Atomic(func(tx *stm.Tx) error { tr.Insert(tx, k, w); return nil })
				} else {
					_ = rt.Atomic(func(tx *stm.Tx) error { tr.Delete(tx, k); return nil })
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var n int
	var keys []int64
	atomically(t, rt, func(tx *stm.Tx) { n = tr.Len(tx); keys = tr.Keys(tx) })
	if n != len(keys) {
		t.Errorf("size counter %d != key count %d", n, len(keys))
	}
}

// TestRBTreeAscendingDescendingInserts: pathological orders stay balanced.
func TestRBTreePathologicalOrders(t *testing.T) {
	rt := stm.NewDefault()
	for name, gen := range map[string]func(i int) int64{
		"ascending":  func(i int) int64 { return int64(i) },
		"descending": func(i int) int64 { return int64(1000 - i) },
		"zigzag":     func(i int) int64 { return int64((i%2)*1000 + i) },
	} {
		t.Run(name, func(t *testing.T) {
			tr := NewRBTree[int]()
			for i := 0; i < 1000; i++ {
				k := gen(i)
				atomically(t, rt, func(tx *stm.Tx) { tr.Insert(tx, k, i) })
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			// Delete everything, validating along the way.
			for i := 0; i < 1000; i++ {
				k := gen(i)
				atomically(t, rt, func(tx *stm.Tx) { tr.Delete(tx, k) })
				if i%200 == 0 {
					if err := tr.Validate(); err != nil {
						t.Fatalf("after %d deletes: %v", i, err)
					}
				}
			}
			var n int
			atomically(t, rt, func(tx *stm.Tx) { n = tr.Len(tx) })
			if n != 0 {
				t.Errorf("len = %d after deleting all", n)
			}
		})
	}
}
