package ds

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deferstm/internal/check"
	"deferstm/internal/history"
	"deferstm/internal/stm"
)

// TestSnapshotRangeDuringResize tortures the abort-free scan against a
// migrating map: transfer writers conserve a sum across hot account
// keys, a filler thread forces chunked resizes underneath, and scanner
// threads run SnapshotRange the whole time. Every scan must observe
//
//   - each key at most once — during migration a key lives in either
//     the new table or the un-migrated old region, and a scan that
//     catches a rehash chunk mid-flight must not see both copies;
//   - the exact conserved sum — half-applied transfers may never leak
//     into a snapshot, whichever path (snapshot or validating
//     fallback) served it;
//   - a per-scan monotone epoch — later scans pin later instants.
//
// The whole run records onto a checker runtime, so the history —
// scans, transfers, and the migrator's deferred rehash chunks — also
// has to pass the serializability/opacity/deferral axioms offline.
func TestSnapshotRangeDuringResize(t *testing.T) {
	const (
		accounts = 64
		perAcct  = 100
		total    = accounts * perAcct
		epochKey = int64(-1)
		writers  = 2
		scanners = 2
	)
	log := history.New()
	rt := stm.New(stm.Config{Recorder: log})
	m := NewHashMap[int64](16)
	if err := rt.Atomic(func(tx *stm.Tx) error {
		m.Put(tx, epochKey, 0)
		for k := int64(0); k < accounts; k++ {
			m.Put(tx, k, perAcct)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var (
		stop    atomic.Bool
		scans   atomic.Uint64
		errOnce sync.Once
		failMsg atomic.Value
	)
	report := func(format string, args ...any) {
		errOnce.Do(func() { failMsg.Store(fmt.Sprintf(format, args...)) })
		stop.Store(true)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; !stop.Load(); i++ {
				from := int64(next() % accounts)
				to := int64(next() % accounts)
				amt := int64(next()%7) + 1
				if err := rt.Atomic(func(tx *stm.Tx) error {
					vf, _ := m.Get(tx, from)
					if vf < amt || from == to {
						return nil
					}
					vt, _ := m.Get(tx, to)
					m.Put(tx, from, vf-amt)
					m.Put(tx, to, vt+amt)
					e, _ := m.Get(tx, epochKey)
					m.Put(tx, epochKey, e+1)
					return nil
				}); err != nil {
					report("transfer: %v", err)
				}
			}
		}(w)
	}

	// Filler: monotonic inserts of sentinel-valued keys far outside the
	// account range, enough volume to drive the 16-bucket map through
	// several chunked migrations while the scans run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := int64(1 << 20); !stop.Load(); k += 16 {
			if err := rt.Atomic(func(tx *stm.Tx) error {
				for j := int64(0); j < 16; j++ {
					m.Put(tx, k+j, -7)
				}
				return nil
			}); err != nil {
				report("filler: %v", err)
			}
		}
	}()

	for sc := 0; sc < scanners; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastEpoch := int64(-1)
			seen := make(map[int64]struct{}, 4096)
			for !stop.Load() {
				clear(seen)
				var sum, epoch int64
				err := m.SnapshotRange(rt, func(k int64, v int64) bool {
					if _, dup := seen[k]; dup {
						report("scan observed key %d twice (resizes=%d, migrating=%v)",
							k, m.Resizes(), m.Migrating())
						return false
					}
					seen[k] = struct{}{}
					switch {
					case k == epochKey:
						epoch = v
					case k < accounts:
						sum += v
					case v != -7:
						report("filler key %d = %d, want -7", k, v)
						return false
					}
					return true
				})
				if err != nil {
					report("scan: %v", err)
					return
				}
				if sum != total {
					report("scan saw a torn transfer: sum = %d, want %d (epoch %d, resizes=%d)",
						sum, total, epoch, m.Resizes())
				}
				if epoch < lastEpoch {
					report("epoch ran backwards across scans: %d after %d", epoch, lastEpoch)
				}
				lastEpoch = epoch
				scans.Add(1)
			}
		}()
	}

	deadline := time.Now().Add(20 * time.Second)
	for !stop.Load() && (m.Resizes() < 3 || scans.Load() < 100) {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if msg := failMsg.Load(); msg != nil {
		t.Fatal(msg)
	}
	waitSettled(t, m)
	if m.Resizes() < 1 {
		t.Fatalf("no resize completed; the torture never crossed a migration (scans=%d)", scans.Load())
	}
	if scans.Load() == 0 {
		t.Fatal("no scan completed")
	}
	t.Logf("scans=%d resizes=%d snapshots=%d fallbacks=%d",
		scans.Load(), m.Resizes(), rt.Snapshot().Snapshots, rt.Snapshot().SnapshotFallbacks)

	rep := check.History(log.Events())
	if !rep.OK() {
		t.Fatalf("checker rejected the snapshot-scan history:\n%s", rep)
	}
}
