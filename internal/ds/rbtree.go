package ds

import (
	"fmt"

	"deferstm/internal/stm"
)

// RBTree is a transactional red-black tree map from int64 to V. Nodes are
// immutable (persistent): mutations rebuild the root-to-target path and
// publish the new root through a single Var, so structural rebalancing —
// the paper's motivating "hard to lock" operation — is trivially atomic.
// Writers conflict with each other on the root; readers run in parallel
// and validate against it.
//
// Insertion is Okasaki's functional balancing; deletion is Kahrs'
// functional formulation.
type RBTree[V any] struct {
	root stm.Var[*rbNode[V]]
	size stm.Var[int]
}

type rbNode[V any] struct {
	red         bool
	left, right *rbNode[V]
	key         int64
	val         V
}

// NewRBTree returns an empty tree.
func NewRBTree[V any]() *RBTree[V] { return &RBTree[V]{} }

func isRed[V any](n *rbNode[V]) bool { return n != nil && n.red }

func mk[V any](red bool, l *rbNode[V], k int64, v V, r *rbNode[V]) *rbNode[V] {
	return &rbNode[V]{red: red, left: l, right: r, key: k, val: v}
}

func blacken[V any](n *rbNode[V]) *rbNode[V] {
	if n == nil || !n.red {
		return n
	}
	return mk(false, n.left, n.key, n.val, n.right)
}

// sub1 demotes a black node to red (used when a black sibling's subtree
// gives up one unit of black height). Calling it on a red or nil node
// would mean the tree invariants were already broken.
func sub1[V any](n *rbNode[V]) *rbNode[V] {
	if n == nil || n.red {
		panic("ds: red-black invariant violation (sub1)")
	}
	return mk(true, n.left, n.key, n.val, n.right)
}

// balance resolves a single red-red violation beneath a black parent
// (Okasaki's four rotation cases, plus Kahrs' both-red recoloring).
func balance[V any](l *rbNode[V], k int64, v V, r *rbNode[V]) *rbNode[V] {
	if isRed(l) && isRed(r) {
		return mk(true, blacken(l), k, v, blacken(r))
	}
	if isRed(l) {
		if isRed(l.left) {
			return mk(true, blacken(l.left), l.key, l.val, mk(false, l.right, k, v, r))
		}
		if isRed(l.right) {
			lr := l.right
			return mk(true, mk(false, l.left, l.key, l.val, lr.left), lr.key, lr.val,
				mk(false, lr.right, k, v, r))
		}
	}
	if isRed(r) {
		if isRed(r.right) {
			return mk(true, mk(false, l, k, v, r.left), r.key, r.val, blacken(r.right))
		}
		if isRed(r.left) {
			rl := r.left
			return mk(true, mk(false, l, k, v, rl.left), rl.key, rl.val,
				mk(false, rl.right, r.key, r.val, r.right))
		}
	}
	return mk(false, l, k, v, r)
}

func ins[V any](n *rbNode[V], k int64, v V) (*rbNode[V], bool) {
	if n == nil {
		return mk(true, nil, k, v, nil), true
	}
	switch {
	case k < n.key:
		l, added := ins(n.left, k, v)
		if n.red {
			return mk(true, l, n.key, n.val, n.right), added
		}
		return balance(l, n.key, n.val, n.right), added
	case k > n.key:
		r, added := ins(n.right, k, v)
		if n.red {
			return mk(true, n.left, n.key, n.val, r), added
		}
		return balance(n.left, n.key, n.val, r), added
	default:
		return mk(n.red, n.left, k, v, n.right), false
	}
}

// balleft rebuilds after the left subtree lost one black unit.
func balleft[V any](l *rbNode[V], k int64, v V, r *rbNode[V]) *rbNode[V] {
	switch {
	case isRed(l):
		return mk(true, blacken(l), k, v, r)
	case r != nil && !r.red:
		return balance(l, k, v, sub1(r))
	case r != nil && r.red && r.left != nil && !r.left.red:
		rl := r.left
		return mk(true, mk(false, l, k, v, rl.left), rl.key, rl.val,
			balance(rl.right, r.key, r.val, sub1(r.right)))
	default:
		panic("ds: red-black invariant violation (balleft)")
	}
}

// balright rebuilds after the right subtree lost one black unit.
func balright[V any](l *rbNode[V], k int64, v V, r *rbNode[V]) *rbNode[V] {
	switch {
	case isRed(r):
		return mk(true, l, k, v, blacken(r))
	case l != nil && !l.red:
		return balance(sub1(l), k, v, r)
	case l != nil && l.red && l.right != nil && !l.right.red:
		lr := l.right
		return mk(true, balance(sub1(l.left), l.key, l.val, lr.left), lr.key, lr.val,
			mk(false, lr.right, k, v, r))
	default:
		panic("ds: red-black invariant violation (balright)")
	}
}

// app fuses the two subtrees of a deleted node (Kahrs).
func app[V any](l, r *rbNode[V]) *rbNode[V] {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.red && r.red:
		m := app(l.right, r.left)
		if isRed(m) {
			return mk(true, mk(true, l.left, l.key, l.val, m.left), m.key, m.val,
				mk(true, m.right, r.key, r.val, r.right))
		}
		return mk(true, l.left, l.key, l.val, mk(true, m, r.key, r.val, r.right))
	case !l.red && !r.red:
		m := app(l.right, r.left)
		if isRed(m) {
			return mk(true, mk(false, l.left, l.key, l.val, m.left), m.key, m.val,
				mk(false, m.right, r.key, r.val, r.right))
		}
		return balleft(l.left, l.key, l.val, mk(false, m, r.key, r.val, r.right))
	case r.red:
		return mk(true, app(l, r.left), r.key, r.val, r.right)
	default: // l.red
		return mk(true, l.left, l.key, l.val, app(l.right, r))
	}
}

func del[V any](n *rbNode[V], k int64) (*rbNode[V], bool) {
	if n == nil {
		return nil, false
	}
	switch {
	case k < n.key:
		l, removed := del(n.left, k)
		if !removed {
			return n, false
		}
		if n.left != nil && !n.left.red {
			return balleft(l, n.key, n.val, n.right), true
		}
		return mk(true, l, n.key, n.val, n.right), true
	case k > n.key:
		r, removed := del(n.right, k)
		if !removed {
			return n, false
		}
		if n.right != nil && !n.right.red {
			return balright(n.left, n.key, n.val, r), true
		}
		return mk(true, n.left, n.key, n.val, r), true
	default:
		return app(n.left, n.right), true
	}
}

// Get returns the value for k.
func (t *RBTree[V]) Get(tx *stm.Tx, k int64) (V, bool) {
	n := t.root.Get(tx)
	for n != nil {
		switch {
		case k < n.key:
			n = n.left
		case k > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Insert adds or replaces k, returning true if the key was new.
func (t *RBTree[V]) Insert(tx *stm.Tx, k int64, v V) bool {
	root, added := ins(t.root.Get(tx), k, v)
	t.root.Set(tx, blacken(root))
	if added {
		t.size.Set(tx, t.size.Get(tx)+1)
	}
	return added
}

// Delete removes k, returning whether it was present.
func (t *RBTree[V]) Delete(tx *stm.Tx, k int64) bool {
	root, removed := del(t.root.Get(tx), k)
	if !removed {
		return false
	}
	t.root.Set(tx, blacken(root))
	t.size.Set(tx, t.size.Get(tx)-1)
	return true
}

// Len returns the number of keys.
func (t *RBTree[V]) Len(tx *stm.Tx) int { return t.size.Get(tx) }

// Min returns the smallest key (ok=false when empty).
func (t *RBTree[V]) Min(tx *stm.Tx) (k int64, v V, ok bool) {
	n := t.root.Get(tx)
	if n == nil {
		return 0, v, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest key (ok=false when empty).
func (t *RBTree[V]) Max(tx *stm.Tx) (k int64, v V, ok bool) {
	n := t.root.Get(tx)
	if n == nil {
		return 0, v, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Keys returns all keys in order.
func (t *RBTree[V]) Keys(tx *stm.Tx) []int64 {
	var out []int64
	var walk func(n *rbNode[V])
	walk = func(n *rbNode[V]) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.key)
		walk(n.right)
	}
	walk(t.root.Get(tx))
	return out
}

// Validate checks the red-black invariants (root black, no red-red edges,
// uniform black height, BST order) on the committed tree. For tests.
func (t *RBTree[V]) Validate() error {
	root := t.root.Load()
	if isRed(root) {
		return fmt.Errorf("ds: root is red")
	}
	_, err := checkRB(root, -1<<63, 1<<63-1)
	return err
}

func checkRB[V any](n *rbNode[V], lo, hi int64) (blackHeight int, err error) {
	if n == nil {
		return 1, nil
	}
	if n.key < lo || n.key > hi {
		return 0, fmt.Errorf("ds: BST order violated at %d", n.key)
	}
	if n.red && (isRed(n.left) || isRed(n.right)) {
		return 0, fmt.Errorf("ds: red-red edge at %d", n.key)
	}
	lh, err := checkRB(n.left, lo, n.key-1)
	if err != nil {
		return 0, err
	}
	rh, err := checkRB(n.right, n.key+1, hi)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("ds: black height mismatch at %d (%d vs %d)", n.key, lh, rh)
	}
	if !n.red {
		lh++
	}
	return lh, nil
}
