package ds

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"deferstm/internal/stm"
)

func TestQueueFIFO(t *testing.T) {
	rt := stm.NewDefault()
	q := NewQueue[int]()
	atomically(t, rt, func(tx *stm.Tx) {
		for i := 1; i <= 5; i++ {
			q.Put(tx, i)
		}
		if q.Len(tx) != 5 {
			t.Errorf("len = %d", q.Len(tx))
		}
	})
	var got []int
	atomically(t, rt, func(tx *stm.Tx) {
		got = got[:0]
		for i := 0; i < 5; i++ {
			v, ok := q.TryTake(tx)
			if !ok {
				t.Fatal("queue empty early")
			}
			got = append(got, v)
		}
		if _, ok := q.TryTake(tx); ok {
			t.Error("take from empty succeeded")
		}
	})
	for i, v := range got {
		if v != i+1 {
			t.Errorf("got[%d] = %d", i, v)
		}
	}
}

func TestQueueInterleavedPutTake(t *testing.T) {
	rt := stm.NewDefault()
	q := NewQueue[int]()
	var out []int
	for i := 0; i < 20; i++ {
		atomically(t, rt, func(tx *stm.Tx) { q.Put(tx, i) })
		if i%2 == 1 {
			atomically(t, rt, func(tx *stm.Tx) {
				v, _ := q.TryTake(tx)
				out = append(out, v)
			})
		}
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Errorf("FIFO order violated: %v", out)
		}
	}
}

func TestQueueTakeBlocks(t *testing.T) {
	rt := stm.NewDefault()
	q := NewQueue[string]()
	got := make(chan string, 1)
	go func() {
		var v string
		_ = rt.Atomic(func(tx *stm.Tx) error {
			v = q.Take(tx)
			return nil
		})
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("Take returned %q from empty queue", v)
	case <-time.After(20 * time.Millisecond):
	}
	atomically(t, rt, func(tx *stm.Tx) { q.Put(tx, "x") })
	select {
	case v := <-got:
		if v != "x" {
			t.Errorf("got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Take never woke")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	rt := stm.NewDefault()
	q := NewQueue[int]()
	const producers, per = 4, 100
	total := producers * per
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := p*per + i
				_ = rt.Atomic(func(tx *stm.Tx) error { q.Put(tx, v); return nil })
			}
		}(p)
	}
	seen := make([]bool, total)
	var mu sync.Mutex
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				var v int
				var ok bool
				_ = rt.Atomic(func(tx *stm.Tx) error {
					v, ok = q.TryTake(tx)
					return nil
				})
				if !ok {
					mu.Lock()
					n := 0
					for _, s := range seen {
						if s {
							n++
						}
					}
					mu.Unlock()
					if n == total {
						return
					}
					continue
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate element %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	done := make(chan struct{})
	go func() { cg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("consumers never drained the queue")
	}
}

func TestBoundedQueueBasics(t *testing.T) {
	rt := stm.NewDefault()
	q := NewBoundedQueue[int](3)
	if q.Cap() != 3 {
		t.Errorf("cap = %d", q.Cap())
	}
	atomically(t, rt, func(tx *stm.Tx) {
		for i := 0; i < 3; i++ {
			if !q.TryPut(tx, i) {
				t.Fatalf("TryPut %d failed", i)
			}
		}
		if q.TryPut(tx, 99) {
			t.Error("TryPut succeeded on full queue")
		}
		if q.Len(tx) != 3 {
			t.Errorf("len = %d", q.Len(tx))
		}
		for i := 0; i < 3; i++ {
			v, ok := q.TryTake(tx)
			if !ok || v != i {
				t.Errorf("TryTake = %d,%v want %d", v, ok, i)
			}
		}
		if _, ok := q.TryTake(tx); ok {
			t.Error("TryTake succeeded on empty queue")
		}
	})
}

func TestBoundedQueueMinCapacity(t *testing.T) {
	q := NewBoundedQueue[int](0)
	if q.Cap() != 1 {
		t.Errorf("cap = %d, want 1", q.Cap())
	}
}

func TestBoundedQueueBackpressure(t *testing.T) {
	rt := stm.NewDefault()
	q := NewBoundedQueue[int](1)
	atomically(t, rt, func(tx *stm.Tx) { q.Put(tx, 1) })
	blocked := make(chan struct{})
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error { q.Put(tx, 2); return nil })
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("Put succeeded on full queue")
	case <-time.After(20 * time.Millisecond):
	}
	var v int
	atomically(t, rt, func(tx *stm.Tx) { v = q.Take(tx) })
	if v != 1 {
		t.Errorf("take = %d", v)
	}
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Put never resumed")
	}
}

// TestBoundedQueuePipeline: a classic producer→consumer pipeline through
// a small ring, all values delivered in order.
func TestBoundedQueuePipeline(t *testing.T) {
	rt := stm.NewDefault()
	q := NewBoundedQueue[int](4)
	const n = 300
	var got []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			var v int
			_ = rt.Atomic(func(tx *stm.Tx) error {
				v = q.Take(tx)
				return nil
			})
			got = append(got, v)
		}
	}()
	for i := 0; i < n; i++ {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			q.Put(tx, i)
			return nil
		})
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("pipeline stalled")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d (order broken)", i, v)
		}
	}
}

// Property: queue contents equal the oracle slice under any op sequence.
func TestQueueOracleProperty(t *testing.T) {
	rt := stm.NewDefault()
	f := func(ops []int8) bool {
		q := NewQueue[int8]()
		var oracle []int8
		for _, op := range ops {
			if op >= 0 {
				_ = rt.Atomic(func(tx *stm.Tx) error { q.Put(tx, op); return nil })
				oracle = append(oracle, op)
			} else {
				var v int8
				var ok bool
				_ = rt.Atomic(func(tx *stm.Tx) error {
					v, ok = q.TryTake(tx)
					return nil
				})
				if len(oracle) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != oracle[0] {
						return false
					}
					oracle = oracle[1:]
				}
			}
		}
		var n int
		_ = rt.Atomic(func(tx *stm.Tx) error { n = q.Len(tx); return nil })
		return n == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
