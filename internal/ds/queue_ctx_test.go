// Tests for the context-aware queue entry points (PutCtx/TakeCtx):
// blocking take/put over watcher-parked transactions with randomized
// producer/consumer schedules, and cancellation of parked operations.
package ds

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deferstm/internal/stm"
)

// TestBoundedQueueCtxRandomized drives randomized producers and
// consumers through PutCtx/TakeCtx over a deliberately tiny queue, so
// both sides park constantly. Every element must arrive exactly once,
// and each consumer must see any single producer's elements in
// strictly increasing order (the queue is FIFO and elements are taken
// once). Producers jitter with random yields to vary the schedules.
func TestBoundedQueueCtxRandomized(t *testing.T) {
	const producers, consumers, perProducer = 4, 4, 250
	rt := stm.NewDefault()
	q := NewBoundedQueue[uint64](3)
	ctx := context.Background()

	var produced, consumed atomic.Int64
	var sum atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid) + 1))
			for seq := 0; seq < perProducer; seq++ {
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
				}
				v := uint64(pid)<<32 | uint64(seq)
				if err := q.PutCtx(ctx, rt, v); err != nil {
					t.Errorf("PutCtx: %v", err)
					return
				}
				produced.Add(1)
			}
		}(p)
	}
	total := producers * perProducer
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastSeq := make([]int64, producers)
			for i := range lastSeq {
				lastSeq[i] = -1
			}
			for {
				// Claim a slot in the expected total; extra claimers stop.
				if consumed.Add(1) > int64(total) {
					consumed.Add(-1)
					return
				}
				v, err := q.TakeCtx(ctx, rt)
				if err != nil {
					t.Errorf("TakeCtx: %v", err)
					return
				}
				pid, seq := int(v>>32), int64(v&0xffffffff)
				if pid < 0 || pid >= producers {
					t.Errorf("value from impossible producer %d", pid)
					return
				}
				if seq <= lastSeq[pid] {
					t.Errorf("consumer saw producer %d seq %d after %d (order violated)", pid, seq, lastSeq[pid])
				}
				lastSeq[pid] = seq
				sum.Add(int64(v))
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("handoff deadlocked: produced=%d consumed=%d/%d parked=%d",
			produced.Load(), consumed.Load(), total, rt.RetryParked())
	}
	var wantSum int64
	for p := 0; p < producers; p++ {
		for s := 0; s < perProducer; s++ {
			wantSum += int64(uint64(p)<<32 | uint64(s))
		}
	}
	if consumed.Load() != int64(total) || sum.Load() != wantSum {
		t.Fatalf("consumed %d (sum %d), want %d (sum %d)", consumed.Load(), sum.Load(), total, wantSum)
	}
	if n := rt.RetryParked(); n != 0 {
		t.Fatalf("%d transactions still parked after drain", n)
	}
}

// TestBoundedQueueTakeCtxCancel parks a consumer on an empty queue and
// cancels it: TakeCtx must return the context error and leave no
// parked transaction behind.
func TestBoundedQueueTakeCtxCancel(t *testing.T) {
	rt := stm.NewDefault()
	q := NewBoundedQueue[int](2)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := q.TakeCtx(ctx, rt)
		errCh <- err
	}()
	waitParkedDS(t, rt, 1)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("TakeCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TakeCtx ignored cancellation while parked on empty")
	}
	if n := rt.RetryParked(); n != 0 {
		t.Fatalf("RetryParked = %d after cancel, want 0", n)
	}
}

// TestBoundedQueuePutCtxCancelWhenFull is the symmetric case: a
// producer parked on a full queue must honor cancellation, and the
// queue contents must be untouched by the abandoned put.
func TestBoundedQueuePutCtxCancelWhenFull(t *testing.T) {
	rt := stm.NewDefault()
	q := NewBoundedQueue[int](2)
	for i := 0; i < 2; i++ {
		if err := q.PutCtx(context.Background(), rt, i); err != nil {
			t.Fatalf("fill: %v", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- q.PutCtx(ctx, rt, 99) }()
	waitParkedDS(t, rt, 1)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PutCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PutCtx ignored cancellation while parked on full")
	}
	// The abandoned put must not have landed.
	var a, b int
	err := rt.Atomic(func(tx *stm.Tx) error {
		a = q.Take(tx)
		b = q.Take(tx)
		if q.Len(tx) != 0 {
			t.Errorf("queue holds %d extra elements", q.Len(tx))
		}
		return nil
	})
	if err != nil || a != 0 || b != 1 {
		t.Fatalf("drained (%d,%d) err=%v, want (0,1)", a, b, err)
	}
}

// TestQueueTakeCtxCancel covers the unbounded queue's blocking take.
func TestQueueTakeCtxCancel(t *testing.T) {
	rt := stm.NewDefault()
	q := NewQueue[string]()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := q.TakeCtx(ctx, rt); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TakeCtx = %v, want context.DeadlineExceeded", err)
	}
	// A later put/take pair must work normally.
	if err := rt.Atomic(func(tx *stm.Tx) error { q.Put(tx, "x"); return nil }); err != nil {
		t.Fatal(err)
	}
	v, err := q.TakeCtx(context.Background(), rt)
	if err != nil || v != "x" {
		t.Fatalf("TakeCtx = %q, %v", v, err)
	}
}

// waitParkedDS spins until n transactions are parked on watchers.
func waitParkedDS(t *testing.T, rt *stm.Runtime, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for rt.RetryParked() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d parked transactions (have %d)", n, rt.RetryParked())
		}
		time.Sleep(100 * time.Microsecond)
	}
}
