package simio

import (
	"deferstm/internal/core"
	"deferstm/internal/stm"
)

// This file provides the Deferrable encapsulations of I/O state that the
// paper's examples use:
//
//   - DeferFD    — Listing 3/4's defer_fprintf / defer_fd: a shared file
//     handle wrapped as a deferrable object;
//   - DeferBuffer — Listing 4's defer_buffer: a shared output buffer plus
//     a "written?" flag, enabling ordered durable output;
//   - DeferFile  — Listing 6's defer_file: input/output streams for one
//     named file, for the I/O microbenchmark.
//
// Per the paper's Section 4.3, if a file descriptor is shared it should be
// a field of a Deferrable object, and if the byte stream is shared it
// should be too; whether they live in one object or two is a granularity
// decision the programmer makes.

// DeferFD wraps a shared open file as a deferrable object.
type DeferFD struct {
	core.Deferrable
	fd stm.Var[*File]
}

// NewDeferFD wraps f.
func NewDeferFD(f *File) *DeferFD {
	d := &DeferFD{}
	d.fd.Init(f)
	return d
}

// FD returns the handle inside a transaction, subscribing first.
func (d *DeferFD) FD(tx *stm.Tx) *File {
	d.Subscribe(tx)
	return d.fd.Get(tx)
}

// SetFD replaces the handle inside a transaction, subscribing first.
func (d *DeferFD) SetFD(tx *stm.Tx, f *File) {
	d.Subscribe(tx)
	d.fd.Set(tx, f)
}

// FDDirect returns the handle from a deferred operation that holds the
// object's lock.
func (d *DeferFD) FDDirect() *File { return d.fd.Load() }

// SetFDDirect replaces the handle from a deferred operation that holds the
// object's lock.
func (d *DeferFD) SetFDDirect(ctx *core.OpCtx, f *File) {
	core.Store(ctx, &d.fd, f)
}

// DeferBuffer is Listing 4's defer_buffer: a shared byte buffer and a flag
// recording whether the buffer has been durably written. The flag is only
// ever set by a deferred operation, while the object's lock is held, so a
// transaction that subscribes and observes Flag()==true knows the durable
// write completed — the paper's ordered-fsync construction.
type DeferBuffer struct {
	core.Deferrable
	buf  stm.Var[[]byte]
	flag stm.Var[bool]
}

// NewDeferBuffer creates a DeferBuffer holding buf, flag=false.
func NewDeferBuffer(buf []byte) *DeferBuffer {
	d := &DeferBuffer{}
	d.buf.Init(buf)
	return d
}

// Buf returns the buffer inside a transaction, subscribing first.
func (d *DeferBuffer) Buf(tx *stm.Tx) []byte {
	d.Subscribe(tx)
	return d.buf.Get(tx)
}

// SetBuf replaces the buffer inside a transaction, subscribing first.
func (d *DeferBuffer) SetBuf(tx *stm.Tx, b []byte) {
	d.Subscribe(tx)
	d.buf.Set(tx, b)
}

// Flag reports the durable-write flag inside a transaction, subscribing
// first (so an in-flight deferred write blocks the reader until done —
// case (2) of the paper's Listing 4 discussion).
func (d *DeferBuffer) Flag(tx *stm.Tx) bool {
	d.Subscribe(tx)
	return d.flag.Get(tx)
}

// BufDirect returns the buffer from a deferred operation holding the lock.
func (d *DeferBuffer) BufDirect() []byte { return d.buf.Load() }

// SetFlagDirect sets the flag from a deferred operation holding the lock.
func (d *DeferBuffer) SetFlagDirect(ctx *core.OpCtx, v bool) {
	core.Store(ctx, &d.flag, v)
}

// DeferFile is Listing 6's defer_file: the deferrable identity of one
// named file in a filesystem, used by the I/O microbenchmark. The deferred
// operation opens the file, reads its length, appends formatted content,
// and closes it — all while the object's lock is held.
type DeferFile struct {
	core.Deferrable
	FS   *FS
	Name string
}

// NewDeferFile creates the deferrable identity of name within fs, creating
// the file if it does not exist.
func NewDeferFile(fs *FS, name string) (*DeferFile, error) {
	if !fs.Exists(name) {
		f, err := fs.Create(name)
		if err != nil {
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	return &DeferFile{FS: fs, Name: name}, nil
}
