package simio

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"deferstm/internal/core"
	"deferstm/internal/stm"
)

// TestDeferredLogging reproduces Listing 3: transactions format a message
// from transactional state and defer the write to a shared log file. All
// messages must appear, whole, in the log.
func TestDeferredLogging(t *testing.T) {
	rt := stm.NewDefault()
	fs := NewFS(Latency{})
	logFile, err := fs.Create("stderr")
	if err != nil {
		t.Fatal(err)
	}
	df := NewDeferFD(logFile)
	x := stm.NewVar("item")
	i := stm.NewVar(0)

	var wg sync.WaitGroup
	const workers, per = 4, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				err := rt.Atomic(func(tx *stm.Tx) error {
					// Prepare the output string inside the transaction
					// (sprintf on transactional data), defer the fprintf.
					i.Set(tx, i.Get(tx)+1)
					msg := fmt.Sprintf("[%s %d.%d]", x.Get(tx), w, k)
					fd := df.FD(tx)
					core.AtomicDefer(tx, func(ctx *core.OpCtx) {
						if _, err := fd.Write([]byte(msg)); err != nil {
							t.Errorf("log write: %v", err)
						}
					}, df)
					return nil
				})
				if err != nil {
					t.Errorf("atomic: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, _ := fs.ReadAll("stderr")
	for w := 0; w < workers; w++ {
		for k := 0; k < per; k++ {
			want := fmt.Sprintf("[item %d.%d]", w, k)
			if !bytes.Contains(got, []byte(want)) {
				t.Fatalf("log missing %q", want)
			}
		}
	}
	if n := i.Load(); n != workers*per {
		t.Errorf("i = %d, want %d", n, workers*per)
	}
}

// TestDurableOrderedOutput reproduces Listing 4: T2 must not write buffer2
// to fd2 until T1's write of buffer1 to fd1 is durable. We run T1 with a
// slow fsync and verify T2's write observes durability.
func TestDurableOrderedOutput(t *testing.T) {
	rt := stm.NewDefault()
	fs := NewFS(Latency{Fsync: 2 * time.Millisecond})
	f1, _ := fs.Create("f1")
	f2, _ := fs.Create("f2")
	fd1, fd2 := NewDeferFD(f1), NewDeferFD(f2)
	buf1 := NewDeferBuffer([]byte("first-payload"))
	buf2 := NewDeferBuffer([]byte("second-payload"))

	var wg sync.WaitGroup
	var orderViolation bool
	var mu sync.Mutex

	// T2: conditional durable output to fd2, gated on buf1's flag.
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := rt.Atomic(func(tx *stm.Tx) error {
			if !buf1.Flag(tx) { // Subscribe + read; retries while locked
				tx.Retry()
			}
			b := buf2.Buf(tx)
			f := fd2.FD(tx)
			core.AtomicDefer(tx, func(ctx *core.OpCtx) {
				// At this moment f1 must already be durable.
				n, err := fs.SyncedLen("f1")
				if err != nil || n == 0 {
					mu.Lock()
					orderViolation = true
					mu.Unlock()
				}
				if _, err := f.Write(b); err != nil {
					t.Errorf("t2 write: %v", err)
				}
				if err := f.Fsync(); err != nil {
					t.Errorf("t2 fsync: %v", err)
				}
				buf2.SetFlagDirect(ctx, true)
			}, fd2, buf2)
			return nil
		})
		if err != nil {
			t.Errorf("t2: %v", err)
		}
	}()

	// Give T2 a chance to block on the flag.
	time.Sleep(2 * time.Millisecond)

	// T1: durable output to fd1, setting the flag in the deferred op.
	if err := rt.Atomic(func(tx *stm.Tx) error {
		b := buf1.Buf(tx)
		f := fd1.FD(tx)
		core.AtomicDefer(tx, func(ctx *core.OpCtx) {
			if _, err := f.Write(b); err != nil {
				t.Errorf("t1 write: %v", err)
			}
			if err := f.Fsync(); err != nil {
				t.Errorf("t1 fsync: %v", err)
			}
			buf1.SetFlagDirect(ctx, true)
		}, fd1, buf1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	if orderViolation {
		t.Error("T2 wrote before T1's data was durable")
	}
	g1, _ := fs.ReadAll("f1")
	g2, _ := fs.ReadAll("f2")
	if string(g1) != "first-payload" || string(g2) != "second-payload" {
		t.Errorf("contents: f1=%q f2=%q", g1, g2)
	}
	if n, _ := fs.SyncedLen("f2"); n != len(g2) {
		t.Error("f2 not durable")
	}
}

// TestDeferFileMicrobenchOp reproduces Listing 6's deferred operation:
// open, seek to end for length, close, then append formatted content.
func TestDeferFileMicrobenchOp(t *testing.T) {
	rt := stm.NewDefault()
	fs := NewFS(Latency{})
	df, err := NewDeferFile(fs, "data-0")
	if err != nil {
		t.Fatal(err)
	}
	content := stm.NewVar("payload")

	for round := 0; round < 3; round++ {
		if err := rt.Atomic(func(tx *stm.Tx) error {
			df.Subscribe(tx)
			c := content.Get(tx)
			core.AtomicDefer(tx, func(ctx *core.OpCtx) {
				in, err := df.FS.Open(df.Name)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				length := in.Len()
				if err := in.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
				out, err := df.FS.OpenAppend(df.Name)
				if err != nil {
					t.Errorf("open out: %v", err)
					return
				}
				tmp := fmt.Sprintf("%s@%d;", c, length)
				if _, err := out.Write([]byte(tmp)); err != nil {
					t.Errorf("write: %v", err)
				}
				if err := out.Close(); err != nil {
					t.Errorf("close out: %v", err)
				}
			}, df)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := fs.ReadAll("data-0")
	want := "payload@0;payload@10;payload@21;"
	if string(got) != want {
		t.Errorf("contents = %q, want %q", got, want)
	}
	if df.Locked() {
		t.Error("lock leaked")
	}
}

func TestNewDeferFileCreatesOnce(t *testing.T) {
	fs := NewFS(Latency{})
	d1, err := NewDeferFile(fs, "x")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.OpenAppend("x")
	_, _ = f.Write([]byte("keep"))
	_ = f.Close()
	d2, err := NewDeferFile(fs, "x")
	if err != nil {
		t.Fatal(err)
	}
	if d1.Name != d2.Name {
		t.Error("names differ")
	}
	got, _ := fs.ReadAll("x")
	if string(got) != "keep" {
		t.Errorf("existing file truncated: %q", got)
	}
}

// TestDeferFDSetFD: swapping the wrapped handle transactionally.
func TestDeferFDSetFD(t *testing.T) {
	rt := stm.NewDefault()
	fs := NewFS(Latency{})
	a, _ := fs.Create("a")
	b, _ := fs.Create("b")
	d := NewDeferFD(a)
	if err := rt.Atomic(func(tx *stm.Tx) error {
		if d.FD(tx).Name() != "a" {
			t.Error("initial fd wrong")
		}
		d.SetFD(tx, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if d.FDDirect().Name() != "b" {
		t.Error("SetFD not committed")
	}
	// Direct swap from a deferred op.
	if err := rt.Atomic(func(tx *stm.Tx) error {
		core.AtomicDefer(tx, func(ctx *core.OpCtx) {
			d.SetFDDirect(ctx, a)
		}, d)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if d.FDDirect().Name() != "a" {
		t.Error("SetFDDirect not applied")
	}
}

// TestDeferBufferSetBuf: transactional buffer replacement.
func TestDeferBufferSetBuf(t *testing.T) {
	rt := stm.NewDefault()
	d := NewDeferBuffer([]byte("one"))
	if err := rt.Atomic(func(tx *stm.Tx) error {
		if string(d.Buf(tx)) != "one" {
			t.Error("initial buf wrong")
		}
		d.SetBuf(tx, []byte("two"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if string(d.BufDirect()) != "two" {
		t.Error("SetBuf not committed")
	}
}
