// Package simio provides the I/O substrate for the reproduction: an
// in-memory filesystem with a configurable latency model and fault
// injection.
//
// The paper's evaluation measures where time is spent while transactions
// or locks are held around I/O system calls (open, close, write, fsync),
// not disk physics. A simulated filesystem makes those costs explicit and
// controllable: each operation sleeps for its configured latency (yielding
// the CPU, as a blocking syscall would), and writes can be made to fail
// transiently or fatally to exercise the paper's pipeline_out error
// handling (Listing 7).
//
// A zero Latency gives a zero-cost filesystem, convenient for unit tests;
// the benchmark harness configures microsecond-scale latencies comparable
// to page-cache file I/O.
package simio

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by the simulated filesystem.
var (
	ErrNotExist  = errors.New("simio: file does not exist")
	ErrExist     = errors.New("simio: file already exists")
	ErrClosed    = errors.New("simio: file is closed")
	ErrTransient = errors.New("simio: transient write error")
	ErrFatal     = errors.New("simio: fatal write error")
)

// IsTransient reports whether err is a retryable write error (the
// "unreliable media" condition of Listing 7's pipeline_out).
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsFatal reports whether err is a non-retryable write error.
func IsFatal(err error) bool { return errors.Is(err, ErrFatal) }

// Latency models the cost of each filesystem operation. Zero values mean
// the operation is free.
type Latency struct {
	Open       time.Duration // per Open/Create
	Close      time.Duration // per Close
	Write      time.Duration // per Write call
	WritePerKB time.Duration // additional, per KiB written
	Read       time.Duration // per Read call
	Seek       time.Duration // per Seek
	Fsync      time.Duration // per Fsync
}

// PageCacheLatency approximates warm page-cache file I/O: cheap writes,
// expensive fsync — the regime of the paper's microbenchmark (Section 6.1).
//
// Note that time.Sleep has a platform floor (≈1 ms on small cloud VMs):
// sub-millisecond values all cost about the floor, which preserves "a
// syscall has a fixed cost" but flattens the ratios between operations.
// Benchmarks that need faithful ratios use SlowDiskLatency instead.
func PageCacheLatency() Latency {
	return Latency{
		Open:       20 * time.Microsecond,
		Close:      10 * time.Microsecond,
		Write:      4 * time.Microsecond,
		WritePerKB: 1 * time.Microsecond,
		Read:       2 * time.Microsecond,
		Seek:       500 * time.Nanosecond,
		Fsync:      120 * time.Microsecond,
	}
}

// SlowDiskLatency models a spinning disk / network filesystem with every
// operation above the time.Sleep floor, so the configured ratios between
// operations (fsync ≫ write ≈ open) actually hold at runtime. This is
// the profile the benchmark harness uses: the paper's effects depend on
// *where* I/O time is spent while locks or transactions are held, which
// this profile renders faithfully on machines with coarse sleep
// granularity.
func SlowDiskLatency() Latency {
	return Latency{
		Open:       2 * time.Millisecond,
		Close:      1500 * time.Microsecond,
		Write:      1500 * time.Microsecond,
		WritePerKB: 10 * time.Microsecond,
		Read:       1500 * time.Microsecond,
		Seek:       0,
		Fsync:      6 * time.Millisecond,
	}
}

// Faults configures write-fault injection on a filesystem.
type Faults struct {
	// TransientEvery makes every Nth write (counted per FS) fail with
	// ErrTransient after writing a partial prefix. 0 disables.
	TransientEvery int
	// FatalOnWrite makes the Nth write (1-based, counted per FS) fail
	// with ErrFatal. 0 disables.
	FatalOnWrite int
}

// FSStats counts filesystem operations.
type FSStats struct {
	Opens, Closes, Writes, Reads, Seeks, Fsyncs uint64
	BytesWritten                                uint64
	TransientErrors, FatalErrors                uint64
}

// FS is an in-memory filesystem. All methods are safe for concurrent use.
type FS struct {
	mu    sync.Mutex
	files map[string]*fileData
	lat   Latency
	fl    Faults

	writeSeq atomic.Uint64

	opens, closes, writes, reads, seeks, fsyncs atomic.Uint64
	bytesWritten                                atomic.Uint64
	transientErrs, fatalErrs                    atomic.Uint64

	crashState // crash-image capture (see crash.go)
}

type fileData struct {
	mu     sync.Mutex
	data   []byte
	synced int // prefix length known to be durable
	opens  int // currently open handles
}

// NewFS creates a filesystem with the given latency model.
func NewFS(lat Latency) *FS {
	return &FS{files: make(map[string]*fileData), lat: lat}
}

// SetFaults installs a fault-injection plan (replacing any previous one).
func (fs *FS) SetFaults(f Faults) {
	fs.mu.Lock()
	fs.fl = f
	fs.writeSeq.Store(0)
	fs.mu.Unlock()
}

// Stats returns a snapshot of operation counters.
func (fs *FS) Stats() FSStats {
	return FSStats{
		Opens:           fs.opens.Load(),
		Closes:          fs.closes.Load(),
		Writes:          fs.writes.Load(),
		Reads:           fs.reads.Load(),
		Seeks:           fs.seeks.Load(),
		Fsyncs:          fs.fsyncs.Load(),
		BytesWritten:    fs.bytesWritten.Load(),
		TransientErrors: fs.transientErrs.Load(),
		FatalErrors:     fs.fatalErrs.Load(),
	}
}

func (fs *FS) sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Create creates (or truncates) a file and opens it.
func (fs *FS) Create(name string) (*File, error) {
	fs.sleep(fs.lat.Open)
	fs.opens.Add(1)
	fs.mu.Lock()
	fd, ok := fs.files[name]
	if !ok {
		fd = &fileData{}
		fs.files[name] = fd
	}
	fs.mu.Unlock()
	fd.mu.Lock()
	fd.data = fd.data[:0]
	fd.synced = 0
	fd.opens++
	fd.mu.Unlock()
	return &File{fs: fs, fd: fd, name: name}, nil
}

// Open opens an existing file for reading and writing, positioned at 0.
func (fs *FS) Open(name string) (*File, error) {
	fs.sleep(fs.lat.Open)
	fs.opens.Add(1)
	fs.mu.Lock()
	fd, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("open %s: %w", name, ErrNotExist)
	}
	fd.mu.Lock()
	fd.opens++
	fd.mu.Unlock()
	return &File{fs: fs, fd: fd, name: name}, nil
}

// OpenAppend opens an existing file (creating it if needed) positioned at
// its end, in append mode.
func (fs *FS) OpenAppend(name string) (*File, error) {
	fs.sleep(fs.lat.Open)
	fs.opens.Add(1)
	fs.mu.Lock()
	fd, ok := fs.files[name]
	if !ok {
		fd = &fileData{}
		fs.files[name] = fd
	}
	fs.mu.Unlock()
	fd.mu.Lock()
	fd.opens++
	off := len(fd.data)
	fd.mu.Unlock()
	return &File{fs: fs, fd: fd, name: name, offset: off, appendMode: true}, nil
}

// Exists reports whether name exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// Remove deletes a file. Open handles keep working on the orphaned data,
// as with POSIX unlink.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("remove %s: %w", name, ErrNotExist)
	}
	delete(fs.files, name)
	return nil
}

// Names returns the sorted names of all files.
func (fs *FS) Names() []string {
	fs.mu.Lock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	fs.mu.Unlock()
	sort.Strings(names)
	return names
}

// ReadAll returns a copy of a file's full contents (test convenience).
func (fs *FS) ReadAll(name string) ([]byte, error) {
	fs.mu.Lock()
	fd, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("readall %s: %w", name, ErrNotExist)
	}
	fd.mu.Lock()
	defer fd.mu.Unlock()
	out := make([]byte, len(fd.data))
	copy(out, fd.data)
	return out, nil
}

// SyncedLen reports how many bytes of a file are durable (fsync'd).
func (fs *FS) SyncedLen(name string) (int, error) {
	fs.mu.Lock()
	fd, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("syncedlen %s: %w", name, ErrNotExist)
	}
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.synced, nil
}

// File is an open handle on a simulated file. A File is safe for
// concurrent use by multiple goroutines (operations are atomic), though —
// like a POSIX fd — interleaved writes from different goroutines interleave
// at call granularity.
type File struct {
	fs         *FS
	fd         *fileData
	name       string
	appendMode bool

	mu     sync.Mutex
	offset int
	closed bool
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Write writes p at the current offset (or at end-of-file in append mode),
// applying the latency model and fault injection. On a transient fault a
// partial prefix may have been written; the returned count reflects it.
func (f *File) Write(p []byte) (int, error) {
	f.fs.sleep(f.fs.lat.Write + f.fs.lat.WritePerKB*time.Duration((len(p)+1023)/1024))
	f.fs.writes.Add(1)

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("write %s: %w", f.name, ErrClosed)
	}

	n := len(p)
	var werr error
	seq := f.fs.writeSeq.Add(1)
	if te := f.fs.fl.TransientEvery; te > 0 && seq%uint64(te) == 0 {
		// Partial write, then transient failure. At least one byte
		// makes progress so retry loops always terminate (as a real
		// short write would).
		n = len(p) / 2
		if n == 0 {
			n = 1
		}
		werr = fmt.Errorf("write %s: %w", f.name, ErrTransient)
		f.fs.transientErrs.Add(1)
	}
	if fo := f.fs.fl.FatalOnWrite; fo > 0 && seq == uint64(fo) {
		f.fs.fatalErrs.Add(1)
		return 0, fmt.Errorf("write %s: %w", f.name, ErrFatal)
	}

	// Crash injection: if this is the planned mid-write crash, only a
	// prefix of the payload is on the file when the image is captured;
	// the rest of the reserved range reads as zeros (a torn append). The
	// live write then completes normally.
	split, crashing := f.fs.crashWriteSplit(n)

	f.fd.mu.Lock()
	off := f.offset
	if f.appendMode {
		off = len(f.fd.data)
	}
	if need := off + n; need > len(f.fd.data) {
		if need > cap(f.fd.data) {
			grown := make([]byte, need, need*2)
			copy(grown, f.fd.data)
			f.fd.data = grown
		} else {
			f.fd.data = f.fd.data[:need]
		}
	}
	copy(f.fd.data[off:off+split], p[:split])
	f.fd.mu.Unlock()

	if crashing {
		f.fs.captureCrash()
		f.fd.mu.Lock()
		copy(f.fd.data[off+split:off+n], p[split:n])
		f.fd.mu.Unlock()
	}

	f.offset = off + n
	f.fs.bytesWritten.Add(uint64(n))
	return n, werr
}

// Read reads from the current offset.
func (f *File) Read(p []byte) (int, error) {
	f.fs.sleep(f.fs.lat.Read)
	f.fs.reads.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("read %s: %w", f.name, ErrClosed)
	}
	f.fd.mu.Lock()
	defer f.fd.mu.Unlock()
	if f.offset >= len(f.fd.data) {
		return 0, io.EOF
	}
	n := copy(p, f.fd.data[f.offset:])
	f.offset += n
	return n, nil
}

// Seek repositions the handle. Whence follows io.Seek* semantics.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.fs.sleep(f.fs.lat.Seek)
	f.fs.seeks.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("seek %s: %w", f.name, ErrClosed)
	}
	f.fd.mu.Lock()
	size := len(f.fd.data)
	f.fd.mu.Unlock()
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = int64(f.offset) + offset
	case io.SeekEnd:
		abs = int64(size) + offset
	default:
		return 0, fmt.Errorf("seek %s: invalid whence %d", f.name, whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("seek %s: negative position", f.name)
	}
	f.offset = int(abs)
	return abs, nil
}

// Len returns the file's current size.
func (f *File) Len() int {
	f.fd.mu.Lock()
	defer f.fd.mu.Unlock()
	return len(f.fd.data)
}

// Fsync makes all written data durable (visible via SyncedLen), applying
// the fsync latency.
func (f *File) Fsync() error {
	f.fs.sleep(f.fs.lat.Fsync)
	f.fs.fsyncs.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("fsync %s: %w", f.name, ErrClosed)
	}
	if f.fs.crashFsyncHit(CrashPreFsync) {
		f.fs.captureCrash()
	}
	f.fd.mu.Lock()
	f.fd.synced = len(f.fd.data)
	f.fd.mu.Unlock()
	if f.fs.crashFsyncHit(CrashPostFsync) {
		f.fs.captureCrash()
	}
	return nil
}

// Close closes the handle. Closing twice returns ErrClosed.
func (f *File) Close() error {
	f.fs.sleep(f.fs.lat.Close)
	f.fs.closes.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("close %s: %w", f.name, ErrClosed)
	}
	f.closed = true
	f.fd.mu.Lock()
	f.fd.opens--
	f.fd.mu.Unlock()
	return nil
}

// Closed reports whether the handle has been closed.
func (f *File) Closed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// ReliableWrite implements the paper's pipeline_out (Listing 7): write buf
// to f, retrying transient errors and resuming after partial writes, then
// fsync. A fatal error is returned as-is. It is the kind of long-running,
// irrevocable operation atomic deferral exists for.
func ReliableWrite(f *File, buf []byte) error {
	sent := 0
	for sent < len(buf) {
		n, err := f.Write(buf[sent:])
		sent += n
		if err != nil {
			if IsTransient(err) {
				continue
			}
			return err
		}
	}
	return f.Fsync()
}
