package simio

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
)

func TestCreateWriteRead(t *testing.T) {
	fs := NewFS(Latency{})
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Errorf("contents = %q", got)
	}
}

func TestOpenNotExist(t *testing.T) {
	fs := NewFS(Latency{})
	if _, err := fs.Open("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
	if _, err := fs.ReadAll("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("ReadAll err = %v", err)
	}
	if _, err := fs.SyncedLen("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("SyncedLen err = %v", err)
	}
	if err := fs.Remove("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Remove err = %v", err)
	}
}

func TestCreateTruncates(t *testing.T) {
	fs := NewFS(Latency{})
	f, _ := fs.Create("a")
	_, _ = f.Write([]byte("data"))
	_ = f.Close()
	f2, _ := fs.Create("a")
	_ = f2.Close()
	got, _ := fs.ReadAll("a")
	if len(got) != 0 {
		t.Errorf("Create did not truncate: %q", got)
	}
}

func TestReadSeek(t *testing.T) {
	fs := NewFS(Latency{})
	f, _ := fs.Create("a")
	_, _ = f.Write([]byte("0123456789"))
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	n, err := f.Read(buf)
	if err != nil || n != 4 || string(buf) != "0123" {
		t.Errorf("Read = %d,%v,%q", n, err, buf)
	}
	if pos, err := f.Seek(-2, io.SeekEnd); err != nil || pos != 8 {
		t.Errorf("SeekEnd = %d,%v", pos, err)
	}
	n, _ = f.Read(buf)
	if n != 2 || string(buf[:2]) != "89" {
		t.Errorf("tail read = %q", buf[:n])
	}
	if _, err := f.Read(buf); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
	if pos, err := f.Seek(2, io.SeekCurrent); err != nil || pos != 12 {
		t.Errorf("SeekCurrent = %d,%v", pos, err)
	}
	if _, err := f.Seek(-100, io.SeekStart); err == nil {
		t.Error("negative seek allowed")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Error("bad whence allowed")
	}
}

func TestAppendMode(t *testing.T) {
	fs := NewFS(Latency{})
	f, _ := fs.Create("log")
	_, _ = f.Write([]byte("aa"))
	_ = f.Close()
	a1, _ := fs.OpenAppend("log")
	a2, _ := fs.OpenAppend("log")
	_, _ = a1.Write([]byte("bb"))
	_, _ = a2.Write([]byte("cc")) // appends at current end, not stale offset
	_ = a1.Close()
	_ = a2.Close()
	got, _ := fs.ReadAll("log")
	if string(got) != "aabbcc" {
		t.Errorf("append contents = %q, want aabbcc", got)
	}
}

func TestOpenAppendCreates(t *testing.T) {
	fs := NewFS(Latency{})
	f, err := fs.OpenAppend("new")
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if !fs.Exists("new") {
		t.Error("OpenAppend did not create")
	}
}

func TestCloseSemantics(t *testing.T) {
	fs := NewFS(Latency{})
	f, _ := fs.Create("a")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !f.Closed() {
		t.Error("Closed() = false")
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close err = %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write-after-close err = %v", err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("read-after-close err = %v", err)
	}
	if _, err := f.Seek(0, io.SeekStart); !errors.Is(err, ErrClosed) {
		t.Errorf("seek-after-close err = %v", err)
	}
	if err := f.Fsync(); !errors.Is(err, ErrClosed) {
		t.Errorf("fsync-after-close err = %v", err)
	}
}

func TestFsyncTracksDurability(t *testing.T) {
	fs := NewFS(Latency{})
	f, _ := fs.Create("d")
	_, _ = f.Write([]byte("abc"))
	if n, _ := fs.SyncedLen("d"); n != 0 {
		t.Errorf("synced before fsync = %d", n)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.SyncedLen("d"); n != 3 {
		t.Errorf("synced after fsync = %d", n)
	}
	_, _ = f.Write([]byte("de"))
	if n, _ := fs.SyncedLen("d"); n != 3 {
		t.Errorf("unsynced tail counted: %d", n)
	}
}

func TestRemoveAndNames(t *testing.T) {
	fs := NewFS(Latency{})
	for _, n := range []string{"b", "a", "c"} {
		f, _ := fs.Create(n)
		_ = f.Close()
	}
	names := fs.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("Names = %v", names)
	}
	if err := fs.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("b") {
		t.Error("removed file exists")
	}
}

func TestTransientFaultInjection(t *testing.T) {
	fs := NewFS(Latency{})
	fs.SetFaults(Faults{TransientEvery: 2})
	f, _ := fs.Create("x")
	// writeSeq=1: ok; writeSeq=2: transient partial.
	if _, err := f.Write([]byte("full")); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !IsTransient(err) {
		t.Fatalf("expected transient, got %v", err)
	}
	if n != 3 {
		t.Errorf("partial write = %d, want 3", n)
	}
	if fs.Stats().TransientErrors != 1 {
		t.Error("transient error not counted")
	}
}

func TestFatalFaultInjection(t *testing.T) {
	fs := NewFS(Latency{})
	fs.SetFaults(Faults{FatalOnWrite: 2})
	f, _ := fs.Create("x")
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("b")); !IsFatal(err) {
		t.Fatalf("expected fatal, got %v", err)
	}
	if fs.Stats().FatalErrors != 1 {
		t.Error("fatal error not counted")
	}
}

func TestReliableWriteRetriesTransients(t *testing.T) {
	fs := NewFS(Latency{})
	fs.SetFaults(Faults{TransientEvery: 1}) // every write is a short write
	f, _ := fs.Create("out")
	payload := bytes.Repeat([]byte("deadbeef"), 64)
	if err := ReliableWrite(f, payload); err != nil {
		t.Fatalf("ReliableWrite: %v", err)
	}
	got, _ := fs.ReadAll("out")
	if !bytes.Equal(got, payload) {
		t.Errorf("contents mismatch: %d bytes vs %d", len(got), len(payload))
	}
	if n, _ := fs.SyncedLen("out"); n != len(payload) {
		t.Errorf("not durable: synced=%d", n)
	}
	if fs.Stats().TransientErrors == 0 {
		t.Error("no transients were injected — test is vacuous")
	}
}

func TestReliableWriteFatal(t *testing.T) {
	fs := NewFS(Latency{})
	fs.SetFaults(Faults{FatalOnWrite: 1})
	f, _ := fs.Create("out")
	if err := ReliableWrite(f, []byte("data")); !IsFatal(err) {
		t.Errorf("expected fatal error, got %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	fs := NewFS(Latency{})
	f, _ := fs.Create("s")
	_, _ = f.Write([]byte("1234"))
	_, _ = f.Seek(0, io.SeekStart)
	_, _ = f.Read(make([]byte, 2))
	_ = f.Fsync()
	_ = f.Close()
	st := fs.Stats()
	if st.Opens != 1 || st.Closes != 1 || st.Writes != 1 || st.Reads != 1 || st.Seeks != 1 || st.Fsyncs != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesWritten != 4 {
		t.Errorf("bytes = %d", st.BytesWritten)
	}
}

func TestConcurrentAppendersNoLostBytes(t *testing.T) {
	fs := NewFS(Latency{})
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f, err := fs.OpenAppend("shared")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			defer f.Close() //nolint:errcheck
			for i := 0; i < per; i++ {
				if _, err := f.Write([]byte{byte(w)}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, _ := fs.ReadAll("shared")
	if len(got) != workers*per {
		t.Errorf("len = %d, want %d", len(got), workers*per)
	}
	counts := map[byte]int{}
	for _, b := range got {
		counts[b]++
	}
	for w := 0; w < workers; w++ {
		if counts[byte(w)] != per {
			t.Errorf("worker %d bytes = %d, want %d", w, counts[byte(w)], per)
		}
	}
}

// Property: for any sequence of appends, the file contents equal the
// concatenation.
func TestAppendConcatenationProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		fs := NewFS(Latency{})
		file, err := fs.Create("p")
		if err != nil {
			return false
		}
		var want []byte
		for _, c := range chunks {
			if _, err := file.Write(c); err != nil {
				return false
			}
			want = append(want, c...)
		}
		got, err := fs.ReadAll("p")
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ReliableWrite always produces exactly the payload, durable,
// under any transient-fault period.
func TestReliableWriteProperty(t *testing.T) {
	f := func(payload []byte, every uint8) bool {
		fs := NewFS(Latency{})
		fs.SetFaults(Faults{TransientEvery: int(every%7) + 2})
		file, err := fs.Create("p")
		if err != nil {
			return false
		}
		if err := ReliableWrite(file, payload); err != nil {
			return false
		}
		got, err := fs.ReadAll("p")
		if err != nil || !bytes.Equal(got, payload) {
			return false
		}
		n, err := fs.SyncedLen("p")
		return err == nil && n == len(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPageCacheLatencyNonZero(t *testing.T) {
	l := PageCacheLatency()
	if l.Open == 0 || l.Fsync == 0 || l.Write == 0 {
		t.Error("latency model has zero core costs")
	}
	if l.Fsync < l.Write {
		t.Error("fsync should dominate write")
	}
}
