package simio

import (
	"fmt"
	"sync/atomic"
)

// Crash injection: a CrashPlan arms the filesystem to capture a byte-exact
// image of its state ("what is on the media") at an adversarial instant —
// in the middle of a write, just before an fsync takes effect, or just
// after. The live filesystem keeps running; the image is what a process
// restarted after a power failure at that instant would find. FSFromImage
// reconstructs a filesystem from the image, applying the usual crash
// semantics: the synced prefix of every file survives intact, and of the
// unsynced tail an arbitrary (seeded) prefix survives, possibly with its
// last byte corrupted — a torn write. Recovery code (internal/wal) must
// detect and truncate such tails via per-record CRCs.

// CrashPoint selects the instant a CrashPlan captures the image.
type CrashPoint int

const (
	// CrashMidWrite captures during the Nth write, after only a partial
	// prefix of the payload has reached the file (the rest of the
	// reserved range reads as zeros — a torn append).
	CrashMidWrite CrashPoint = iota
	// CrashPreFsync captures at the Nth fsync, before it takes effect:
	// everything written since the previous fsync is still volatile.
	CrashPreFsync
	// CrashPostFsync captures at the Nth fsync, after it takes effect:
	// the fsync's data is durable but nothing after it is.
	CrashPostFsync
)

func (p CrashPoint) String() string {
	switch p {
	case CrashMidWrite:
		return "mid-write"
	case CrashPreFsync:
		return "pre-fsync"
	case CrashPostFsync:
		return "post-fsync"
	default:
		return "crash(?)"
	}
}

// CrashPlan arms crash capture on an FS. The image is captured once, at
// the Nth (1-based) operation of the planned kind; OnCrash, if non-nil,
// is called synchronously at the capture instant (outside all filesystem
// locks) — tests use it to snapshot what the system had acknowledged as
// durable at the moment of the crash.
type CrashPlan struct {
	Point   CrashPoint
	N       uint64
	OnCrash func()
}

// SetCrashPlan arms p. Call before the workload; a second call replaces
// the plan but an already-captured image is kept.
func (fs *FS) SetCrashPlan(p CrashPlan) {
	fs.crashPlan.Store(&p)
}

// Crashed reports whether the planned crash point has been reached.
func (fs *FS) Crashed() bool { return fs.crashImg.Load() != nil }

// CrashImage returns the captured image, or nil if the crash point has
// not been reached.
func (fs *FS) CrashImage() *Image { return fs.crashImg.Load() }

// Image is a byte-exact snapshot of a filesystem at a crash instant.
type Image struct {
	files map[string]imageFile
}

type imageFile struct {
	data   []byte
	synced int
}

// crashWriteSplit reports, for the current write call, how many of n
// payload bytes should land before the image is captured. It returns
// (n, false) when this write does not trigger the plan.
func (fs *FS) crashWriteSplit(n int) (int, bool) {
	p := fs.crashPlan.Load()
	if p == nil || p.Point != CrashMidWrite || fs.Crashed() {
		return n, false
	}
	if fs.crashWrites.Add(1) != p.N {
		return n, false
	}
	return n / 2, true
}

// crashFsyncHit reports whether the current fsync triggers the plan at
// the given point (CrashPreFsync or CrashPostFsync). The operation
// counter is shared between the two points: the Nth fsync triggers
// whichever one the plan names.
func (fs *FS) crashFsyncHit(point CrashPoint) bool {
	p := fs.crashPlan.Load()
	if p == nil || p.Point != point || fs.Crashed() {
		return false
	}
	return fs.crashFsyncs.Add(1) == p.N
}

// captureCrash snapshots every file's (data, synced) pair into the FS's
// crash image and fires the plan's OnCrash callback. It must be called
// without holding fs.mu or any fileData mutex.
func (fs *FS) captureCrash() {
	fs.mu.Lock()
	fds := make(map[string]*fileData, len(fs.files))
	for name, fd := range fs.files {
		fds[name] = fd
	}
	fs.mu.Unlock()

	img := &Image{files: make(map[string]imageFile, len(fds))}
	for name, fd := range fds {
		fd.mu.Lock()
		data := make([]byte, len(fd.data))
		copy(data, fd.data)
		img.files[name] = imageFile{data: data, synced: fd.synced}
		fd.mu.Unlock()
	}
	if !fs.crashImg.CompareAndSwap(nil, img) {
		return // a concurrent capture won; keep the first image
	}
	if p := fs.crashPlan.Load(); p != nil && p.OnCrash != nil {
		p.OnCrash()
	}
}

// FSFromImage reconstructs the filesystem a restarted process would see
// after a crash at the image's instant. For every file the synced prefix
// survives; of the unsynced tail, a seeded-random prefix survives, and
// with probability 1/2 the last surviving torn byte is bit-flipped
// (corrupted sector). All surviving bytes are marked synced — they are,
// by definition, what the media holds.
func FSFromImage(img *Image, lat Latency, seed uint64) *FS {
	rng := seed*2654435761 + 0x9e3779b97f4a7c15
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	fs := NewFS(lat)
	for name, f := range img.files {
		keep := f.synced
		if tail := len(f.data) - f.synced; tail > 0 {
			keep += int(next() % uint64(tail+1))
		}
		data := make([]byte, keep)
		copy(data, f.data[:keep])
		if keep > f.synced && next()&1 == 0 {
			data[keep-1] ^= 1 << (next() % 8)
		}
		fs.files[name] = &fileData{data: data, synced: keep}
	}
	return fs
}

// Truncate cuts a file to size bytes (a no-op if it is already shorter),
// clamping the synced prefix. Recovery uses it to drop torn tails.
func (fs *FS) Truncate(name string, size int) error {
	if size < 0 {
		return fmt.Errorf("truncate %s: negative size", name)
	}
	fs.mu.Lock()
	fd, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return fmt.Errorf("truncate %s: %w", name, ErrNotExist)
	}
	fd.mu.Lock()
	if size < len(fd.data) {
		fd.data = fd.data[:size]
	}
	if fd.synced > size {
		fd.synced = size
	}
	fd.mu.Unlock()
	return nil
}

// crashState holds the FS fields backing crash injection; embedded in FS
// so the zero value (no plan) is free.
type crashState struct {
	crashPlan   atomic.Pointer[CrashPlan]
	crashImg    atomic.Pointer[Image]
	crashWrites atomic.Uint64
	crashFsyncs atomic.Uint64
}
