package simio

import (
	"deferstm/internal/core"
	"deferstm/internal/stm"
)

// TxFile realizes the paper's future-work item of "automatically
// transforming output operations into deferred operations" (§8): a file
// wrapper whose write-side methods, called inside a transaction, defer
// themselves on the file's implicit lock — the programmer writes
// straight-line code and the runtime moves the I/O after commit. The data
// to write is captured at call time (it is typically derived from
// transactional state, like Listing 3's sprintf), and the operations of
// one transaction run post-commit in program order.
//
// Read-side state (the durable length) is exposed transactionally so
// other transactions can condition on completed output, as in Listing 4.
type TxFile struct {
	core.Deferrable
	f       *File
	durable stm.Var[int] // bytes known durable, maintained by deferred ops
	written stm.Var[int] // bytes written (post-deferred), transactional view
}

// NewTxFile wraps an open file.
func NewTxFile(f *File) *TxFile { return &TxFile{f: f} }

// File returns the underlying file (for non-transactional use).
func (t *TxFile) File() *File { return t.f }

// Write schedules an atomically deferred append of data to the file. The
// call must be made inside tx; the write happens after commit, under the
// file's lock, in the order Write/Fsync calls were made. data must not be
// mutated afterwards (copy if unsure).
func (t *TxFile) Write(tx *stm.Tx, data []byte) {
	t.Subscribe(tx)
	core.AtomicDefer(tx, func(ctx *core.OpCtx) {
		sent := 0
		for sent < len(data) {
			n, err := t.f.Write(data[sent:])
			sent += n
			if err != nil {
				if IsTransient(err) {
					continue
				}
				// Fatal output errors after commit cannot abort the
				// transaction (paper §7); record what we know and stop.
				core.Store(ctx, &t.written, t.written.Load()+sent)
				return
			}
		}
		core.Store(ctx, &t.written, t.written.Load()+sent)
	}, t)
}

// Fsync schedules an atomically deferred fsync. Transactions that later
// observe Durable() covering their data know it reached the disk.
func (t *TxFile) Fsync(tx *stm.Tx) {
	t.Subscribe(tx)
	core.AtomicDefer(tx, func(ctx *core.OpCtx) {
		if err := t.f.Fsync(); err != nil {
			return
		}
		core.Store(ctx, &t.durable, t.written.Load())
	}, t)
}

// Durable returns, inside tx, how many bytes are known durable. Because
// the value is only advanced by deferred operations holding the file's
// lock, a subscribing reader blocks while output is in flight and
// otherwise sees a completed state — the Listing 4 ordering pattern
// without hand-rolled flag objects.
func (t *TxFile) Durable(tx *stm.Tx) int {
	t.Subscribe(tx)
	return t.durable.Get(tx)
}

// Written returns, inside tx, how many bytes have been written by
// completed deferred operations.
func (t *TxFile) Written(tx *stm.Tx) int {
	t.Subscribe(tx)
	return t.written.Get(tx)
}
