package simio

import (
	"bytes"
	"testing"
)

// TestCrashMidWrite: the image captured during the Nth write holds only a
// prefix of that write's payload; the live file still ends up complete.
func TestCrashMidWrite(t *testing.T) {
	fs := NewFS(Latency{})
	var fired int
	fs.SetCrashPlan(CrashPlan{Point: CrashMidWrite, N: 2, OnCrash: func() { fired++ }})

	f, err := fs.Create("log")
	if err != nil {
		t.Fatal(err)
	}
	first := []byte("aaaaaaaa")
	second := []byte("bbbbbbbb")
	if _, err := f.Write(first); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if fs.Crashed() {
		t.Fatal("crashed before the planned write")
	}
	if _, err := f.Write(second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("OnCrash fired %d times, want 1", fired)
	}
	img := fs.CrashImage()
	if img == nil {
		t.Fatal("no crash image after planned write")
	}
	got := img.files["log"]
	if got.synced != len(first) {
		t.Fatalf("image synced=%d, want %d", got.synced, len(first))
	}
	// The image holds the full reserved length, but only half the second
	// payload's bytes; the rest read as zeros.
	if len(got.data) != len(first)+len(second) {
		t.Fatalf("image len=%d, want %d", len(got.data), len(first)+len(second))
	}
	if !bytes.Equal(got.data[:len(first)], first) {
		t.Fatalf("synced prefix corrupted: %q", got.data[:len(first)])
	}
	tail := got.data[len(first):]
	if !bytes.Equal(tail[:4], second[:4]) || !bytes.Equal(tail[4:], []byte{0, 0, 0, 0}) {
		t.Fatalf("torn tail = %q, want 4 written + 4 zero bytes", tail)
	}
	// Live file unaffected.
	all, _ := fs.ReadAll("log")
	if !bytes.Equal(all, append(append([]byte{}, first...), second...)) {
		t.Fatalf("live file = %q", all)
	}
}

// TestCrashFsyncPoints: pre-fsync images exclude the pending bytes from
// the synced prefix; post-fsync images include them.
func TestCrashFsyncPoints(t *testing.T) {
	for _, tc := range []struct {
		point      CrashPoint
		wantSynced int
	}{
		{CrashPreFsync, 0},
		{CrashPostFsync, 8},
	} {
		fs := NewFS(Latency{})
		fs.SetCrashPlan(CrashPlan{Point: tc.point, N: 1})
		f, _ := fs.Create("log")
		if _, err := f.Write([]byte("aaaabbbb")); err != nil {
			t.Fatal(err)
		}
		if err := f.Fsync(); err != nil {
			t.Fatal(err)
		}
		img := fs.CrashImage()
		if img == nil {
			t.Fatalf("%v: no image", tc.point)
		}
		if got := img.files["log"].synced; got != tc.wantSynced {
			t.Fatalf("%v: image synced=%d, want %d", tc.point, got, tc.wantSynced)
		}
	}
}

// TestFSFromImage: reconstruction keeps the synced prefix verbatim, keeps
// only a seeded-random portion of the unsynced tail, and is deterministic
// per seed.
func TestFSFromImage(t *testing.T) {
	img := &Image{files: map[string]imageFile{
		"log": {data: []byte("ssssssssuuuuuuuu"), synced: 8},
	}}
	for seed := uint64(1); seed <= 32; seed++ {
		fs := FSFromImage(img, Latency{}, seed)
		data, err := fs.ReadAll("log")
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 8 || len(data) > 16 {
			t.Fatalf("seed %d: surviving length %d out of range", seed, len(data))
		}
		if !bytes.Equal(data[:8], []byte("ssssssss")) {
			t.Fatalf("seed %d: synced prefix altered: %q", seed, data[:8])
		}
		if n, _ := fs.SyncedLen("log"); n != len(data) {
			t.Fatalf("seed %d: synced=%d, want whole surviving file %d", seed, n, len(data))
		}
		again, _ := FSFromImage(img, Latency{}, seed).ReadAll("log")
		if !bytes.Equal(data, again) {
			t.Fatalf("seed %d: reconstruction not deterministic", seed)
		}
	}
	// Across seeds, at least one reconstruction must actually tear the
	// tail (drop or corrupt unsynced bytes) — otherwise the model is
	// vacuous.
	torn := false
	for seed := uint64(1); seed <= 32 && !torn; seed++ {
		data, _ := FSFromImage(img, Latency{}, seed).ReadAll("log")
		if len(data) < 16 || !bytes.Equal(data[8:], []byte("uuuuuuuu")) {
			torn = true
		}
	}
	if !torn {
		t.Fatal("no seed in 1..32 produced a torn tail")
	}
}

func TestTruncate(t *testing.T) {
	fs := NewFS(Latency{})
	f, _ := fs.Create("log")
	if _, err := f.Write([]byte("aaaabbbb")); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("log", 3); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadAll("log")
	if string(data) != "aaa" {
		t.Fatalf("after truncate: %q", data)
	}
	if n, _ := fs.SyncedLen("log"); n != 3 {
		t.Fatalf("synced=%d after truncate, want 3", n)
	}
	if err := fs.Truncate("log", 10); err != nil {
		t.Fatal(err)
	}
	if data, _ = fs.ReadAll("log"); string(data) != "aaa" {
		t.Fatalf("growing truncate changed data: %q", data)
	}
	if err := fs.Truncate("nope", 0); err == nil {
		t.Fatal("truncate of missing file succeeded")
	}
}
