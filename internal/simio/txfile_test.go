package simio

import (
	"fmt"
	"sync"
	"testing"

	"deferstm/internal/stm"
)

func TestTxFileWriteDeferred(t *testing.T) {
	rt := stm.NewDefault()
	fs := NewFS(Latency{})
	f, _ := fs.Create("auto")
	tf := NewTxFile(f)
	if err := rt.Atomic(func(tx *stm.Tx) error {
		tf.Write(tx, []byte("hello "))
		tf.Write(tx, []byte("world"))
		tf.Fsync(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadAll("auto")
	if string(got) != "hello world" {
		t.Errorf("contents = %q", got)
	}
	var durable, written int
	_ = rt.Atomic(func(tx *stm.Tx) error {
		durable = tf.Durable(tx)
		written = tf.Written(tx)
		return nil
	})
	if written != 11 || durable != 11 {
		t.Errorf("written=%d durable=%d, want 11/11", written, durable)
	}
}

func TestTxFileAbortWritesNothing(t *testing.T) {
	rt := stm.NewDefault()
	fs := NewFS(Latency{})
	f, _ := fs.Create("auto")
	tf := NewTxFile(f)
	sentinel := fmt.Errorf("abort")
	_ = rt.Atomic(func(tx *stm.Tx) error {
		tf.Write(tx, []byte("discarded"))
		return sentinel
	})
	got, _ := fs.ReadAll("auto")
	if len(got) != 0 {
		t.Errorf("aborted transaction wrote %q", got)
	}
}

func TestTxFileConcurrentWritersComplete(t *testing.T) {
	rt := stm.NewDefault()
	fs := NewFS(Latency{})
	f, _ := fs.Create("auto")
	tf := NewTxFile(f)
	var wg sync.WaitGroup
	const workers, per = 4, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				msg := fmt.Sprintf("[%d.%d]", w, i)
				_ = rt.Atomic(func(tx *stm.Tx) error {
					tf.Write(tx, []byte(msg))
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	var written int
	_ = rt.Atomic(func(tx *stm.Tx) error {
		written = tf.Written(tx)
		return nil
	})
	got, _ := fs.ReadAll("auto")
	if written != len(got) {
		t.Errorf("written=%d file=%d", written, len(got))
	}
	// All messages present and whole.
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			if !containsBytes(got, []byte(fmt.Sprintf("[%d.%d]", w, i))) {
				t.Fatalf("missing [%d.%d]", w, i)
			}
		}
	}
}

func containsBytes(hay, needle []byte) bool {
	for i := 0; i+len(needle) <= len(hay); i++ {
		ok := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestTxFileDurableGatesReaders: a reader conditioned on Durable blocks
// while a deferred write+fsync is in flight (the Listing 4 pattern via
// the automatic wrapper).
func TestTxFileDurableGatesReaders(t *testing.T) {
	rt := stm.NewDefault()
	fs := NewFS(Latency{})
	f, _ := fs.Create("auto")
	tf := NewTxFile(f)

	readerDone := make(chan int, 1)
	go func() {
		var d int
		_ = rt.Atomic(func(tx *stm.Tx) error {
			d = tf.Durable(tx)
			if d == 0 {
				tx.Retry()
			}
			return nil
		})
		readerDone <- d
	}()

	if err := rt.Atomic(func(tx *stm.Tx) error {
		tf.Write(tx, []byte("payload!"))
		tf.Fsync(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	d := <-readerDone
	if d != 8 {
		t.Errorf("reader observed durable=%d, want 8", d)
	}
}
