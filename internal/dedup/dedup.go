package dedup

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"deferstm/internal/chunker"
	"deferstm/internal/compress"
	"deferstm/internal/core"
	"deferstm/internal/mempool"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
)

// Backend selects the synchronization scheme for the pipeline's shared
// state, matching the series of the paper's Figure 3.
type Backend int

const (
	// Pthread is the well-designed lock-based baseline: one lock per
	// fingerprint bucket, condition-variable reorder ring, output under
	// an output lock, compression outside all locks.
	Pthread Backend = iota
	// CGL holds a single global lock across table access and
	// compression (a deliberately coarse baseline).
	CGL
	// STM is the direct transactionalization (Wang et al.): table and
	// reorder accesses in transactions, compression inside the worker
	// transaction (a pure function), output in an irrevocable
	// transaction — which serializes every concurrent transaction.
	STM
	// HTM is STM executed on the simulated best-effort HTM:
	// compression overflows capacity (serial fallback), output aborts
	// to the serial path.
	HTM
	// STMDeferIO defers only the output (Listing 7): the write runs
	// post-commit under the packet's lock, so irrevocability is gone,
	// but compression still runs inside the worker transaction.
	STMDeferIO
	// HTMDeferIO is STMDeferIO under simulated HTM.
	HTMDeferIO
	// STMDeferAll additionally defers compression under the packet's
	// lock ("+DeferAll"): worker transactions become small, quiescence
	// windows shrink, and HTM capacity is no longer exceeded.
	STMDeferAll
	// HTMDeferAll is STMDeferAll under simulated HTM.
	HTMDeferAll
)

var backendNames = map[Backend]string{
	Pthread:     "pthread",
	CGL:         "cgl",
	STM:         "stm",
	HTM:         "htm",
	STMDeferIO:  "stm+deferio",
	HTMDeferIO:  "htm+deferio",
	STMDeferAll: "stm+deferall",
	HTMDeferAll: "htm+deferall",
}

func (b Backend) String() string {
	if s, ok := backendNames[b]; ok {
		return s
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend resolves a backend name (as printed by String).
func ParseBackend(s string) (Backend, error) {
	for b, name := range backendNames {
		if name == s {
			return b, nil
		}
	}
	return 0, fmt.Errorf("dedup: unknown backend %q", s)
}

// Backends lists all backends in presentation order.
func Backends() []Backend {
	return []Backend{Pthread, CGL, STM, HTM, STMDeferIO, HTMDeferIO, STMDeferAll, HTMDeferAll}
}

// IsTM reports whether the backend uses the TM runtime.
func (b Backend) IsTM() bool { return b != Pthread && b != CGL }

// htmMode reports whether the backend runs on the simulated HTM.
func (b Backend) htmMode() bool { return b == HTM || b == HTMDeferIO || b == HTMDeferAll }

// defersIO reports whether output is atomically deferred.
func (b Backend) defersIO() bool {
	return b == STMDeferIO || b == HTMDeferIO || b == STMDeferAll || b == HTMDeferAll
}

// defersCompress reports whether compression is atomically deferred.
func (b Backend) defersCompress() bool { return b == STMDeferAll || b == HTMDeferAll }

// Config parameterizes a pipeline run.
type Config struct {
	Backend Backend
	// Threads is the number of chunk-processing workers (the output
	// stage adds one more thread, as in PARSEC's pipeline). Minimum 1.
	Threads int
	// RingSize bounds the reorder window. 0 means 4 * Threads, floor 16.
	RingSize int
	// Buckets sizes the fingerprint table. 0 means 4096.
	Buckets int
	// Chunk configures content-defined chunking. The zero value selects
	// 32 KiB average chunks (AvgBits 15), large enough that in-
	// transaction compression exceeds simulated HTM capacity, as the
	// paper observed on real TSX.
	Chunk chunker.Config
	// Fsync controls whether the output stage fsyncs after every packet
	// (Listing 7's pipeline_out). Default true.
	NoFsync bool
	// CompressEffort is the hash-chain search depth of the compression
	// stage (compress.CompressLevel). Higher effort models the paper's
	// gzip-class Compress: a genuinely long-running pure function.
	// 0 means 8.
	CompressEffort int
	// InputRead simulates the pipeline's fragment stage reading each
	// chunk from storage: the worker sleeps this long per packet before
	// processing, outside any transaction or lock (PARSEC dedup reads
	// its input in a dedicated pipeline stage). Input reads from
	// different workers overlap, which is where thread scaling comes
	// from on machines whose CPU parallelism is limited. 0 disables.
	InputRead time.Duration
	// STMConfig optionally overrides runtime tuning (Mode is forced to
	// match the backend).
	STMConfig stm.Config
}

func (c Config) withDefaults() Config {
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.RingSize <= 0 {
		c.RingSize = 4 * c.Threads
		if c.RingSize < 16 {
			c.RingSize = 16
		}
	}
	if c.Buckets <= 0 {
		c.Buckets = 4096
	}
	if c.Chunk.AvgBits == 0 {
		c.Chunk.AvgBits = 15
	}
	if c.CompressEffort <= 0 {
		c.CompressEffort = 8
	}
	return c
}

// Result summarizes a pipeline run.
type Result struct {
	Backend      Backend
	Threads      int
	Elapsed      time.Duration
	Packets      uint64
	Uniques      uint64
	Dups         uint64
	BytesIn      uint64
	BytesOut     uint64
	TM           stm.StatsSnapshot // zero for lock backends
	PoolOut      int64             // pool buffers still outstanding (should be 0)
	TableEntries uint64            // unique fingerprints in the table
	FsyncCount   uint64
	OutputBytes  uint64
}

// DedupFactor is BytesIn / BytesOut.
func (r Result) DedupFactor() float64 {
	if r.BytesOut == 0 {
		return 0
	}
	return float64(r.BytesIn) / float64(r.BytesOut)
}

// Run executes the dedup pipeline over input, writing the record stream
// to outName in fs, and returns run statistics. The output is verifiable
// with Decode.
func Run(cfg Config, input []byte, fs *simio.FS, outName string) (Result, error) {
	cfg = cfg.withDefaults()
	out, err := fs.Create(outName)
	if err != nil {
		return Result{}, err
	}
	defer out.Close() //nolint:errcheck

	chunks := chunker.New(cfg.Chunk).Split(input)
	packets := make([]*packet, len(chunks))
	for i, ch := range chunks {
		packets[i] = &packet{seq: uint64(i), raw: ch.Data}
	}

	p := &pipeline{
		cfg:  cfg,
		out:  out,
		pool: mempool.New(),
	}
	if cfg.Backend.IsTM() {
		sc := cfg.STMConfig
		if cfg.Backend.htmMode() {
			sc.Mode = stm.ModeHTM
		} else {
			sc.Mode = stm.ModeSTM
		}
		p.rt = stm.New(sc)
		p.table = newTMTable(cfg.Buckets)
		p.ring = newTMRing(cfg.RingSize)
	} else {
		p.table = newLockTable(cfg.Buckets)
		p.ring = newLockRing(cfg.RingSize)
	}

	start := time.Now()
	if err := p.run(packets); err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)

	res := Result{
		Backend:      cfg.Backend,
		Threads:      cfg.Threads,
		Elapsed:      elapsed,
		Packets:      uint64(len(packets)),
		Uniques:      p.uniques.Load(),
		Dups:         p.dups.Load(),
		BytesIn:      uint64(len(input)),
		BytesOut:     p.bytesOut.Load(),
		PoolOut:      p.pool.Stats().Outstanding,
		TableEntries: uint64(p.table.entries()),
		FsyncCount:   fs.Stats().Fsyncs,
		OutputBytes:  uint64(out.Len()),
	}
	if p.rt != nil {
		res.TM = p.rt.Snapshot()
	}
	return res, nil
}

// pipeline holds a run's wiring.
type pipeline struct {
	cfg   Config
	rt    *stm.Runtime
	table fpTable
	ring  reorder
	out   *simio.File
	pool  *mempool.Pool

	glock sync.Mutex // CGL
	outMu sync.Mutex // Pthread/CGL output lock

	uniques  atomic.Uint64
	dups     atomic.Uint64
	bytesOut atomic.Uint64

	errMu sync.Mutex
	err   error
}

func (p *pipeline) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
}

func (p *pipeline) failed() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

func (p *pipeline) run(packets []*packet) error {
	feed := make(chan *packet, 2*p.cfg.Threads)
	var workers sync.WaitGroup
	for w := 0; w < p.cfg.Threads; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for pkt := range feed {
				p.processChunk(pkt)
			}
		}()
	}
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		p.writeStage(uint64(len(packets)))
	}()

	for _, pkt := range packets {
		feed <- pkt
	}
	close(feed)
	workers.Wait()
	writer.Wait()
	return p.failed()
}

// processChunk is the worker stage: fingerprint, dedup, (compression),
// publish to the reorder ring.
func (p *pipeline) processChunk(pkt *packet) {
	if p.cfg.InputRead > 0 {
		time.Sleep(p.cfg.InputRead) // stage-1 input read (overlappable)
	}
	pkt.fp = fingerprint(pkt.raw)
	switch {
	case !p.cfg.Backend.IsTM():
		p.processChunkLocked(pkt)
	default:
		p.processChunkTM(pkt)
	}
	if pkt.unique {
		p.uniques.Add(1)
	} else {
		p.dups.Add(1)
	}
}

func (p *pipeline) processChunkLocked(pkt *packet) {
	if p.cfg.Backend == CGL {
		// Coarse: table + compression under one global lock.
		p.glock.Lock()
		owner, inserted := p.table.lookupOrInsert(nil, pkt.fp, pkt.seq)
		pkt.unique, pkt.refSeq = inserted, owner
		if inserted {
			pkt.compressed.Init(compress.Compress(nil, pkt.raw))
		}
		p.glock.Unlock()
	} else {
		// Pthread: per-bucket lock inside lookupOrInsert; compression
		// outside any lock.
		owner, inserted := p.table.lookupOrInsert(nil, pkt.fp, pkt.seq)
		pkt.unique, pkt.refSeq = inserted, owner
		if inserted {
			pkt.compressed.Init(compress.CompressLevel(nil, pkt.raw, p.cfg.CompressEffort))
		}
	}
	p.ring.put(nil, pkt)
}

func (p *pipeline) processChunkTM(pkt *packet) {
	b := p.cfg.Backend
	err := p.rt.Atomic(func(tx *stm.Tx) error {
		// Bail out (cheaply, via retry) while the reorder window has no
		// room, before paying for compression.
		p.ring.reserve(tx, pkt.seq)
		owner, inserted := p.table.lookupOrInsert(tx, pkt.fp, pkt.seq)
		pkt.unique, pkt.refSeq = inserted, owner
		if inserted {
			if b.defersCompress() {
				// +DeferAll: compression runs after commit, under the
				// packet's lock; the writer's subscription blocks until
				// it completes.
				raw := pkt.raw
				core.AtomicDefer(tx, func(ctx *core.OpCtx) {
					buf := p.pool.Alloc(compress.MaxCompressedLen(len(raw)))
					comp := compress.CompressLevel(buf[:0], raw, p.cfg.CompressEffort)
					core.Store(ctx, &pkt.compressed, comp)
				}, pkt)
			} else {
				// Baseline / +DeferIO: the pure Compress call executes
				// inside the transaction. Under STM this stretches the
				// transaction (and everyone else's quiescence); under
				// simulated HTM the compressor's working set (input,
				// output, and its 64 KiB hash table) exceeds capacity
				// and forces the serial fallback, as on real TSX.
				tx.HTMTouch(len(pkt.raw),
					compress.MaxCompressedLen(len(pkt.raw))+compress.TableBytes+compress.ChainBytes(len(pkt.raw)))
				pkt.compressed.Set(tx, compress.CompressLevel(nil, pkt.raw, p.cfg.CompressEffort))
			}
		}
		p.ring.put(tx, pkt)
		return nil
	})
	if err != nil {
		p.fail(err)
	}
}

// writeStage is the single output thread: take packets in sequence order
// and emit records, fsyncing per packet (pipeline_out).
func (p *pipeline) writeStage(total uint64) {
	for seq := uint64(0); seq < total; seq++ {
		if p.failed() != nil {
			// Keep draining the ring so blocked workers can finish,
			// but stop emitting output.
			p.drainOne(seq)
			continue
		}
		if p.cfg.Backend.IsTM() {
			p.writeOneTM(seq)
		} else {
			p.writeOneLocked(seq)
		}
	}
}

func (p *pipeline) drainOne(seq uint64) {
	if p.cfg.Backend.IsTM() {
		_ = p.rt.Atomic(func(tx *stm.Tx) error {
			p.ring.take(tx, seq)
			return nil
		})
		return
	}
	p.ring.take(nil, seq)
}

func (p *pipeline) writeOneLocked(seq uint64) {
	pkt := p.ring.take(nil, seq)
	rec := p.buildRecord(pkt, nil)
	if p.cfg.Backend == CGL {
		p.glock.Lock()
		defer p.glock.Unlock()
	} else {
		p.outMu.Lock()
		defer p.outMu.Unlock()
	}
	if err := p.emit(rec); err != nil {
		p.fail(err)
	}
}

func (p *pipeline) writeOneTM(seq uint64) {
	b := p.cfg.Backend
	err := p.rt.Atomic(func(tx *stm.Tx) error {
		pkt := p.ring.take(tx, seq)
		// Subscribing to the packet blocks (via retry) while a deferred
		// compression still holds its lock (+DeferAll); it is a cheap
		// read otherwise.
		pkt.Subscribe(tx)
		rec := p.buildRecord(pkt, tx)
		if b.defersIO() {
			// Listing 7: the write (with its retry loop and fsync) is
			// atomically deferred on the packet.
			comp := pkt.compressed.Get(tx)
			core.AtomicDefer(tx, func(ctx *core.OpCtx) {
				if err := p.emit(rec); err != nil {
					p.fail(err)
				}
				if comp != nil && b.defersCompress() {
					p.pool.Release(comp)
				}
			}, pkt)
			return nil
		}
		// Baseline: output inside the transaction requires
		// irrevocability and serializes every concurrent transaction.
		tx.Irrevocable()
		return p.emit(rec)
	})
	if err != nil {
		p.fail(err)
	}
}

func (p *pipeline) buildRecord(pkt *packet, tx *stm.Tx) []byte {
	if !pkt.unique {
		return buildDupRecord(pkt.seq, pkt.refSeq)
	}
	var comp []byte
	if tx != nil {
		comp = pkt.compressed.Get(tx)
	} else {
		comp = pkt.compressed.Load()
	}
	return buildUniqueRecord(pkt.seq, comp)
}

// emit performs the reliable, durable write of one record.
func (p *pipeline) emit(rec []byte) error {
	if p.cfg.NoFsync {
		sent := 0
		for sent < len(rec) {
			n, err := p.out.Write(rec[sent:])
			sent += n
			if err != nil {
				if simio.IsTransient(err) {
					continue
				}
				return err
			}
		}
	} else if err := simio.ReliableWrite(p.out, rec); err != nil {
		return err
	}
	p.bytesOut.Add(uint64(len(rec)))
	return nil
}
