package dedup

import (
	"bytes"
	"testing"

	"deferstm/internal/simio"
)

func testInput(t *testing.T) []byte {
	t.Helper()
	return GenInput(1<<20, 0.5, 42) // 1 MiB, 50% duplicated blocks
}

func runOnce(t *testing.T, cfg Config, input []byte) (Result, []byte) {
	t.Helper()
	fs := simio.NewFS(simio.Latency{})
	res, err := Run(cfg, input, fs, "out")
	if err != nil {
		t.Fatalf("Run(%v): %v", cfg.Backend, err)
	}
	data, err := fs.ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	return res, data
}

// TestAllBackendsRoundTrip is the keystone: every synchronization backend
// must produce a stream that decodes to exactly the input, at several
// thread counts.
func TestAllBackendsRoundTrip(t *testing.T) {
	input := testInput(t)
	for _, b := range Backends() {
		for _, threads := range []int{1, 4} {
			b, threads := b, threads
			t.Run(b.String()+"/t"+string(rune('0'+threads)), func(t *testing.T) {
				t.Parallel()
				res, data := runOnce(t, Config{Backend: b, Threads: threads}, input)
				decoded, err := Decode(data)
				if err != nil {
					t.Fatalf("Decode: %v", err)
				}
				if !bytes.Equal(decoded, input) {
					t.Fatalf("round trip mismatch: %d vs %d bytes", len(decoded), len(input))
				}
				if res.Packets != res.Uniques+res.Dups {
					t.Errorf("packet accounting: %d != %d + %d", res.Packets, res.Uniques, res.Dups)
				}
				if res.Uniques != res.TableEntries {
					t.Errorf("uniques %d != table entries %d", res.Uniques, res.TableEntries)
				}
				if res.PoolOut != 0 {
					t.Errorf("pool leak: %d buffers outstanding", res.PoolOut)
				}
			})
		}
	}
}

// TestDeduplicationEffective: a redundant input must dedup + compress to
// much less than its size.
func TestDeduplicationEffective(t *testing.T) {
	input := GenInput(1<<20, 0.7, 7)
	res, data := runOnce(t, Config{Backend: Pthread, Threads: 2}, input)
	if res.Dups == 0 {
		t.Fatal("no duplicates found in highly duplicated input")
	}
	if res.DedupFactor() < 1.5 {
		t.Errorf("dedup factor %.2f too low (out=%d in=%d)", res.DedupFactor(), res.BytesOut, res.BytesIn)
	}
	if uint64(len(data)) != res.BytesOut {
		t.Errorf("file size %d != BytesOut %d", len(data), res.BytesOut)
	}
}

// TestUniqueInputNoDups: with no duplication the dup count is (almost)
// zero.
func TestUniqueInputNoDups(t *testing.T) {
	input := GenInput(1<<19, 0, 3)
	res, _ := runOnce(t, Config{Backend: Pthread, Threads: 2}, input)
	if res.Dups > res.Packets/20 {
		t.Errorf("%d/%d dups in unique input", res.Dups, res.Packets)
	}
}

// TestBackendsAgreeOnDedup: TM and lock backends must find the same set of
// unique fingerprints (identical chunking ⇒ identical dedup counts).
func TestBackendsAgreeOnDedup(t *testing.T) {
	input := testInput(t)
	ref, _ := runOnce(t, Config{Backend: Pthread, Threads: 1}, input)
	for _, b := range []Backend{STM, HTMDeferAll, STMDeferAll, CGL} {
		res, _ := runOnce(t, Config{Backend: b, Threads: 4}, input)
		if res.Packets != ref.Packets {
			t.Errorf("%v packets = %d, want %d", b, res.Packets, ref.Packets)
		}
		if res.Uniques != ref.Uniques {
			t.Errorf("%v uniques = %d, want %d", b, res.Uniques, ref.Uniques)
		}
	}
}

// TestSTMBaselineSerializes: the irrevocable output of the STM baseline
// must register serial runs (one per packet write).
func TestSTMBaselineSerializes(t *testing.T) {
	input := GenInput(1<<19, 0.5, 9)
	res, _ := runOnce(t, Config{Backend: STM, Threads: 2}, input)
	if res.TM.SerialRuns < res.Packets {
		t.Errorf("serial runs = %d, want >= %d (one per packet write)", res.TM.SerialRuns, res.Packets)
	}
}

// TestDeferIOAvoidsWriteSerialization: +DeferIO must not serialize for
// output (some serial runs may still come from contention escalation, but
// far fewer than one per packet).
func TestDeferIOAvoidsWriteSerialization(t *testing.T) {
	input := GenInput(1<<19, 0.5, 9)
	res, _ := runOnce(t, Config{Backend: STMDeferIO, Threads: 2}, input)
	if res.TM.SerialRuns >= res.Packets {
		t.Errorf("serial runs = %d for %d packets; output still serializing", res.TM.SerialRuns, res.Packets)
	}
	if res.TM.DeferredOps < res.Packets {
		t.Errorf("deferred ops = %d, want >= %d (one write per packet)", res.TM.DeferredOps, res.Packets)
	}
}

// TestHTMBaselineCapacityAborts: in-transaction compression must overflow
// the simulated HTM and fall back to serial execution.
func TestHTMBaselineCapacityAborts(t *testing.T) {
	input := GenInput(1<<19, 0.3, 11)
	res, _ := runOnce(t, Config{Backend: HTM, Threads: 2}, input)
	if res.TM.AbortsCapacity == 0 {
		t.Error("no capacity aborts for compression inside HTM transactions")
	}
	if res.TM.SerialRuns == 0 {
		t.Error("no serial fallbacks")
	}
}

// TestHTMDeferAllAvoidsCapacityAborts: with compression deferred, worker
// transactions fit in hardware capacity.
func TestHTMDeferAllAvoidsCapacityAborts(t *testing.T) {
	input := GenInput(1<<19, 0.3, 11)
	res, _ := runOnce(t, Config{Backend: HTMDeferAll, Threads: 2}, input)
	if res.TM.AbortsCapacity > res.Packets/10 {
		t.Errorf("capacity aborts = %d for %d packets with deferred compression", res.TM.AbortsCapacity, res.Packets)
	}
	decodedOK := res.TM.DeferredOps >= res.Uniques // compress ops + write ops
	if !decodedOK {
		t.Errorf("deferred ops = %d, want >= uniques %d", res.TM.DeferredOps, res.Uniques)
	}
}

// TestFsyncPerPacket: with fsync enabled, each packet is durably written.
func TestFsyncPerPacket(t *testing.T) {
	input := GenInput(1<<18, 0.5, 5)
	fs := simio.NewFS(simio.Latency{})
	res, err := Run(Config{Backend: Pthread, Threads: 2}, input, fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	if res.FsyncCount < res.Packets {
		t.Errorf("fsyncs = %d, want >= packets %d", res.FsyncCount, res.Packets)
	}
	n, _ := fs.SyncedLen("out")
	if uint64(n) != res.BytesOut {
		t.Errorf("synced %d != written %d", n, res.BytesOut)
	}
	// NoFsync mode skips them.
	fs2 := simio.NewFS(simio.Latency{})
	res2, err := Run(Config{Backend: Pthread, Threads: 2, NoFsync: true}, input, fs2, "out")
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Stats().Fsyncs != 0 {
		t.Errorf("NoFsync run performed %d fsyncs", fs2.Stats().Fsyncs)
	}
	if res2.BytesOut != res.BytesOut {
		t.Errorf("output size differs with fsync setting: %d vs %d", res2.BytesOut, res.BytesOut)
	}
}

// TestTransientWriteFaultsHandled: pipeline_out must retry transient
// faults; the stream still decodes.
func TestTransientWriteFaultsHandled(t *testing.T) {
	input := GenInput(1<<20, 0.5, 13)
	fs := simio.NewFS(simio.Latency{})
	fs.SetFaults(simio.Faults{TransientEvery: 2})
	if _, err := Run(Config{Backend: STMDeferAll, Threads: 2}, input, fs, "out"); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadAll("out")
	decoded, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(decoded, input) {
		t.Error("round trip failed under transient write faults")
	}
	if fs.Stats().TransientErrors == 0 {
		t.Error("no transients injected — vacuous test")
	}
}

// TestFatalWriteFaultPropagates: a fatal write error must surface as a Run
// error, not hang the pipeline.
func TestFatalWriteFaultPropagates(t *testing.T) {
	input := GenInput(1<<18, 0.5, 13)
	for _, b := range []Backend{Pthread, STM, STMDeferAll} {
		fs := simio.NewFS(simio.Latency{})
		fs.SetFaults(simio.Faults{FatalOnWrite: 3})
		_, err := Run(Config{Backend: b, Threads: 2}, input, fs, "out")
		if b == Pthread || b == STM {
			if !simio.IsFatal(err) {
				t.Errorf("%v: err = %v, want fatal", b, err)
			}
		} else if err != nil && !simio.IsFatal(err) {
			// Deferred writes report the failure via fail(); Run returns it.
			t.Errorf("%v: err = %v", b, err)
		}
	}
}

func TestBackendParsing(t *testing.T) {
	for _, b := range Backends() {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBackend(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := ParseBackend("nonsense"); err == nil {
		t.Error("expected error for unknown backend")
	}
	if Backend(99).String() == "" {
		t.Error("unknown backend String empty")
	}
}

func TestBackendPredicates(t *testing.T) {
	if Pthread.IsTM() || CGL.IsTM() {
		t.Error("lock backends claim TM")
	}
	if !STM.IsTM() || !HTMDeferAll.IsTM() {
		t.Error("TM backends deny TM")
	}
	if !HTM.htmMode() || STMDeferAll.htmMode() {
		t.Error("htmMode wrong")
	}
	if STM.defersIO() || !STMDeferIO.defersIO() || !HTMDeferAll.defersIO() {
		t.Error("defersIO wrong")
	}
	if STMDeferIO.defersCompress() || !STMDeferAll.defersCompress() {
		t.Error("defersCompress wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Threads != 1 || c.RingSize != 16 || c.Buckets != 4096 || c.Chunk.AvgBits != 15 {
		t.Errorf("defaults = %+v", c)
	}
	c8 := Config{Threads: 8}.withDefaults()
	if c8.RingSize != 32 {
		t.Errorf("ring for 8 threads = %d, want 32", c8.RingSize)
	}
}

func TestEmptyInput(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	res, err := Run(Config{Backend: STMDeferAll, Threads: 2}, nil, fs, "out")
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 0 {
		t.Errorf("packets = %d for empty input", res.Packets)
	}
	data, _ := fs.ReadAll("out")
	decoded, err := Decode(data)
	if err != nil || len(decoded) != 0 {
		t.Errorf("empty stream decode = %v, %v", decoded, err)
	}
}

func TestGenInputProperties(t *testing.T) {
	a := GenInput(100_000, 0.5, 1)
	b := GenInput(100_000, 0.5, 1)
	if !bytes.Equal(a, b) {
		t.Error("GenInput not deterministic")
	}
	c := GenInput(100_000, 0.5, 2)
	if bytes.Equal(a, c) {
		t.Error("different seeds gave identical input")
	}
	if len(GenInput(12345, 0.3, 1)) != 12345 {
		t.Error("size not honored")
	}
	if GenInput(0, 0.5, 1) != nil {
		t.Error("zero size should be nil")
	}
	// Clamp extremes.
	if len(GenInput(1000, -5, 1)) != 1000 || len(GenInput(1000, 5, 1)) != 1000 {
		t.Error("ratio clamping broken")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{'X'}); err == nil {
		t.Error("bad type accepted")
	}
	if _, err := Decode([]byte{'U'}); err == nil {
		t.Error("truncated record accepted")
	}
	// A dup referencing a missing unique.
	rec := buildDupRecord(0, 99)
	if _, err := Decode(rec); err == nil {
		t.Error("dangling dup reference accepted")
	}
	// Out-of-order seq.
	recs := append(buildDupRecord(1, 0), buildDupRecord(0, 0)...)
	if _, err := Decode(recs); err == nil {
		t.Error("out-of-order records accepted")
	}
}
