package dedup

import (
	"sync"

	"deferstm/internal/core"
	"deferstm/internal/stm"
)

// packet is one chunk flowing through the pipeline. Fields written before
// the packet is published into the reorder ring (seq, raw, fp, unique,
// refSeq) are plain; compressed may be filled after publication (by a
// deferred compression under the packet's lock in +DeferAll), so it is a
// transactional Var guarded by the packet's Deferrable subscription.
type packet struct {
	core.Deferrable
	seq        uint64
	raw        []byte // chunk bytes (alias into the input)
	fp         Fingerprint
	unique     bool
	refSeq     uint64 // owner seq when duplicate
	compressed stm.Var[[]byte]
}

// reorder is the worker→writer handoff: a bounded ring indexed by
// sequence number, so the single output stage emits packets in input
// order (PARSEC dedup's reorder stage).
type reorder interface {
	// reserve retries (in TM rings) while seq's slot is not yet
	// writable, so a transaction can bail out cheaply *before* doing
	// expensive work whose put would block — the moral equivalent of
	// PARSEC waiting for queue space before processing. No-op for lock
	// rings (their put blocks without wasting work).
	reserve(tx *stm.Tx, seq uint64)
	// put publishes p (blocking while the slot is occupied: backpressure).
	// For TM backends it must be called inside the enclosing transaction.
	put(tx *stm.Tx, p *packet)
	// take removes and returns packet seq (blocking until present).
	take(tx *stm.Tx, seq uint64) *packet
}

// ---- transactional ring ----
//
// Each slot carries a round number: slot i is in round r while it serves
// sequence number r*W + i. put(seq) must wait for the slot to reach
// seq/W, not merely for it to be empty — an empty slot whose round is too
// low means an *earlier* packet with the same index has not been written
// yet, and putting the later one would deadlock the in-order writer (the
// classic reorder-window hazard).

type ringSlot struct {
	round uint64
	p     *packet
}

type tmRing struct {
	slots []stm.Var[ringSlot]
}

func newTMRing(size int) *tmRing {
	return &tmRing{slots: make([]stm.Var[ringSlot], size)}
}

func (r *tmRing) reserve(tx *stm.Tx, seq uint64) {
	w := uint64(len(r.slots))
	s := &r.slots[seq%w]
	sl := s.Get(tx)
	if sl.p != nil || sl.round != seq/w {
		tx.Retry()
	}
}

func (r *tmRing) put(tx *stm.Tx, p *packet) {
	w := uint64(len(r.slots))
	s := &r.slots[p.seq%w]
	sl := s.Get(tx)
	if sl.p != nil || sl.round != p.seq/w {
		tx.Retry() // slot occupied, or its round hasn't come yet
	}
	s.Set(tx, ringSlot{round: sl.round, p: p})
}

func (r *tmRing) take(tx *stm.Tx, seq uint64) *packet {
	w := uint64(len(r.slots))
	s := &r.slots[seq%w]
	sl := s.Get(tx)
	if sl.p == nil || sl.p.seq != seq {
		tx.Retry()
	}
	s.Set(tx, ringSlot{round: sl.round + 1})
	return sl.p
}

// ---- lock-based ring (Pthread / CGL backends) ----
//
// Same per-slot round discipline as the transactional ring.

type lockRing struct {
	mu     sync.Mutex
	cond   *sync.Cond
	slots  []*packet
	rounds []uint64
}

func newLockRing(size int) *lockRing {
	r := &lockRing{slots: make([]*packet, size), rounds: make([]uint64, size)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *lockRing) reserve(_ *stm.Tx, _ uint64) {}

func (r *lockRing) put(_ *stm.Tx, p *packet) {
	w := uint64(len(r.slots))
	idx := p.seq % w
	r.mu.Lock()
	for r.slots[idx] != nil || r.rounds[idx] != p.seq/w {
		r.cond.Wait()
	}
	r.slots[idx] = p
	r.cond.Broadcast()
	r.mu.Unlock()
}

func (r *lockRing) take(_ *stm.Tx, seq uint64) *packet {
	w := uint64(len(r.slots))
	idx := seq % w
	r.mu.Lock()
	for r.slots[idx] == nil || r.slots[idx].seq != seq {
		r.cond.Wait()
	}
	p := r.slots[idx]
	r.slots[idx] = nil
	r.rounds[idx]++
	r.cond.Broadcast()
	r.mu.Unlock()
	return p
}
