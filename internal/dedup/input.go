package dedup

// GenInput synthesizes an input stream with a controllable duplication
// profile, standing in for the PARSEC "simlarge" media archive. The
// stream is a sequence of spans several chunks long (96–192 KiB of mildly
// compressible content); with probability dupRatio a span repeats an
// earlier span verbatim. Spans are deliberately larger than the dedup
// pipeline's chunks (32 KiB average) so that content-defined chunking
// resynchronizes inside a repeated span and rediscovers its interior
// chunks as duplicates — the same reason real archives dedup well.
//
// dupRatio 0 yields an (almost) fully unique stream; 0.75 resembles the
// highly redundant archives dedup targets. The generator is deterministic
// in seed.
func GenInput(size int, dupRatio float64, seed uint64) []byte {
	if size <= 0 {
		return nil
	}
	if dupRatio < 0 {
		dupRatio = 0
	}
	if dupRatio > 1 {
		dupRatio = 1
	}
	rng := seed*2654435761 + 0x9E3779B97F4A7C15
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	out := make([]byte, 0, size)
	var spans [][]byte // previously generated unique spans
	threshold := uint64(dupRatio * float64(1<<32))
	for len(out) < size {
		if len(spans) > 0 && next()&0xFFFFFFFF < threshold {
			// Repeat an earlier span verbatim.
			b := spans[next()%uint64(len(spans))]
			if rem := size - len(out); len(b) > rem {
				b = b[:rem]
			}
			out = append(out, b...)
			continue
		}
		n := 96*1024 + int(next()%(96*1024))
		if len(out)+n > size {
			n = size - len(out)
		}
		start := len(out)
		// Mildly compressible content: mix of runs and noise, so the
		// compression stage has real work with realistic ratios.
		for len(out)-start < n {
			r := next()
			if r&7 == 0 {
				// a short run
				runLen := int(r>>8)%64 + 8
				if rem := n - (len(out) - start); runLen > rem {
					runLen = rem
				}
				ch := byte(r >> 16)
				for i := 0; i < runLen; i++ {
					out = append(out, ch)
				}
			} else {
				out = append(out, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
				if over := (len(out) - start) - n; over > 0 {
					out = out[:len(out)-over]
				}
			}
		}
		spans = append(spans, out[start:start+n])
	}
	return out[:size]
}
