package dedup

import (
	"sync"
	"testing"
	"time"

	"deferstm/internal/stm"
)

// TestRingOutOfOrderWindowHazard reproduces the reorder-window hazard: a
// producer holding seq and another producer holding seq+W (same slot)
// must not deadlock the in-order consumer. Without per-slot rounds,
// seq+W can land in the empty slot first and wedge the pipeline.
func TestRingOutOfOrderWindowHazard(t *testing.T) {
	for _, kind := range []string{"tm", "lock"} {
		t.Run(kind, func(t *testing.T) {
			const W = 4
			const N = 64
			rt := stm.NewDefault()
			var ring reorder
			if kind == "tm" {
				ring = newTMRing(W)
			} else {
				ring = newLockRing(W)
			}
			put := func(p *packet) {
				if kind == "tm" {
					_ = rt.Atomic(func(tx *stm.Tx) error { ring.put(tx, p); return nil })
				} else {
					ring.put(nil, p)
				}
			}
			take := func(seq uint64) *packet {
				var p *packet
				if kind == "tm" {
					_ = rt.Atomic(func(tx *stm.Tx) error { p = ring.take(tx, seq); return nil })
				} else {
					p = ring.take(nil, seq)
				}
				return p
			}

			// Two producers deliberately put colliding seqs out of order:
			// producer B tries seq+W before producer A has put seq.
			feedA := make(chan uint64, N)
			feedB := make(chan uint64, N)
			for s := uint64(0); s < N; s++ {
				if (s/W)%2 == 0 {
					feedA <- s
				} else {
					feedB <- s
				}
			}
			close(feedA)
			close(feedB)
			var wg sync.WaitGroup
			producer := func(feed chan uint64, delay time.Duration) {
				defer wg.Done()
				for s := range feed {
					time.Sleep(delay)
					put(&packet{seq: s})
				}
			}
			wg.Add(2)
			go producer(feedA, 200*time.Microsecond) // slow: later seqs race ahead
			go producer(feedB, 0)

			done := make(chan struct{})
			go func() {
				defer close(done)
				for s := uint64(0); s < N; s++ {
					p := take(s)
					if p.seq != s {
						t.Errorf("take(%d) returned seq %d", s, p.seq)
						return
					}
				}
			}()
			wg.Wait()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("reorder ring deadlocked")
			}
		})
	}
}

// TestRingBackpressure: a producer more than W ahead must block until the
// consumer catches up.
func TestRingBackpressure(t *testing.T) {
	rt := stm.NewDefault()
	const W = 2
	ring := newTMRing(W)
	for s := uint64(0); s < W; s++ {
		if err := rt.Atomic(func(tx *stm.Tx) error { ring.put(tx, &packet{seq: s}); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan struct{})
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error { ring.put(tx, &packet{seq: W}); return nil })
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("put beyond the window did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if err := rt.Atomic(func(tx *stm.Tx) error { ring.take(tx, 0); return nil }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("put did not resume after take")
	}
}
