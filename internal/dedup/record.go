// Package dedup reproduces the PARSEC dedup kernel: a pipelined,
// content-addressed deduplicating compressor, the workload of the paper's
// Section 6.2 (Figure 3).
//
// The pipeline splits an input stream into content-defined chunks
// (internal/chunker), deduplicates them against a shared fingerprint
// table (SHA-256), compresses unique chunks (internal/compress), and
// writes records to an output file in input order through a single
// reorder/output stage (internal/simio), fsyncing per packet as in the
// paper's pipeline_out (Listing 7).
//
// The shared state — fingerprint table, reorder ring, output stream — can
// be synchronized by eight interchangeable backends (Backend): pthread-
// style fine-grained locks, a single coarse global lock, and TM in the
// six paper configurations (STM/HTM × baseline/+DeferIO/+DeferAll).
package dedup

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"deferstm/internal/compress"
)

// Record types in the output stream.
const (
	recUnique byte = 'U' // payload: compressed chunk
	recDup    byte = 'D' // payload: uvarint seq of the unique packet
)

// ErrBadStream reports a malformed output stream.
var ErrBadStream = errors.New("dedup: malformed output stream")

// appendRecord serializes one output record:
//
//	[type byte][uvarint seq][uvarint payload len][payload]
func appendRecord(dst []byte, typ byte, seq uint64, payload []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, typ)
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], seq)]...)
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(payload)))]...)
	return append(dst, payload...)
}

// buildUniqueRecord builds the record for a unique packet.
func buildUniqueRecord(seq uint64, compressed []byte) []byte {
	out := make([]byte, 0, len(compressed)+2*binary.MaxVarintLen64+1)
	return appendRecord(out, recUnique, seq, compressed)
}

// buildDupRecord builds the record for a duplicate packet referencing the
// unique packet refSeq.
func buildDupRecord(seq, refSeq uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	payload := tmp[:binary.PutUvarint(tmp[:], refSeq)]
	out := make([]byte, 0, len(payload)+2*binary.MaxVarintLen64+1)
	return appendRecord(out, recDup, seq, payload)
}

type rawRecord struct {
	typ     byte
	seq     uint64
	payload []byte
}

func parseRecords(data []byte) ([]rawRecord, error) {
	var recs []rawRecord
	pos := 0
	for pos < len(data) {
		typ := data[pos]
		pos++
		if typ != recUnique && typ != recDup {
			return nil, fmt.Errorf("%w: bad record type %q at %d", ErrBadStream, typ, pos-1)
		}
		seq, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("%w: bad seq at %d", ErrBadStream, pos)
		}
		pos += k
		plen, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("%w: bad payload length at %d", ErrBadStream, pos)
		}
		pos += k
		if uint64(len(data)-pos) < plen {
			return nil, fmt.Errorf("%w: truncated payload at %d", ErrBadStream, pos)
		}
		recs = append(recs, rawRecord{typ: typ, seq: seq, payload: data[pos : pos+int(plen)]})
		pos += int(plen)
	}
	return recs, nil
}

// Decode reconstructs the original input from a dedup output stream. It
// is the "un-dedup" verifier used by tests and examples: records appear in
// input (seq) order, but a duplicate may reference a unique packet with a
// *higher* seq (the worker that lost the insertion race had the smaller
// seq), so decoding is two-pass: first index unique chunks by seq, then
// stitch the stream.
func Decode(data []byte) ([]byte, error) {
	recs, err := parseRecords(data)
	if err != nil {
		return nil, err
	}
	uniques := make(map[uint64][]byte, len(recs))
	for _, r := range recs {
		if r.typ != recUnique {
			continue
		}
		chunk, err := compress.Decompress(r.payload)
		if err != nil {
			return nil, fmt.Errorf("dedup: chunk %d: %w", r.seq, err)
		}
		uniques[r.seq] = chunk
	}
	var out bytes.Buffer
	lastSeq := int64(-1)
	for _, r := range recs {
		if int64(r.seq) != lastSeq+1 {
			return nil, fmt.Errorf("%w: records out of order (%d after %d)", ErrBadStream, r.seq, lastSeq)
		}
		lastSeq = int64(r.seq)
		switch r.typ {
		case recUnique:
			out.Write(uniques[r.seq])
		case recDup:
			ref, k := binary.Uvarint(r.payload)
			if k <= 0 {
				return nil, fmt.Errorf("%w: bad dup ref in %d", ErrBadStream, r.seq)
			}
			chunk, ok := uniques[ref]
			if !ok {
				return nil, fmt.Errorf("%w: dup %d references missing unique %d", ErrBadStream, r.seq, ref)
			}
			out.Write(chunk)
		}
	}
	return out.Bytes(), nil
}
