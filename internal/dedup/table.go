package dedup

import (
	"crypto/sha256"
	"sync"

	"deferstm/internal/stm"
)

// Fingerprint identifies a chunk by its SHA-256 digest.
type Fingerprint [sha256.Size]byte

// fingerprint hashes a chunk.
func fingerprint(data []byte) Fingerprint { return sha256.Sum256(data) }

// bucketOf maps a fingerprint to a bucket index (first 8 bytes, masked).
func bucketOf(fp Fingerprint, nBuckets int) int {
	h := uint64(fp[0]) | uint64(fp[1])<<8 | uint64(fp[2])<<16 | uint64(fp[3])<<24 |
		uint64(fp[4])<<32 | uint64(fp[5])<<40 | uint64(fp[6])<<48 | uint64(fp[7])<<56
	return int(h % uint64(nBuckets))
}

// fpTable is the shared fingerprint index: lookupOrInsert returns the seq
// of the packet that owns (first inserted) the fingerprint, and whether
// this call performed the insertion. It is the dedup pipeline's contended
// shared structure.
type fpTable interface {
	lookupOrInsert(tx *stm.Tx, fp Fingerprint, seq uint64) (ownerSeq uint64, inserted bool)
	// entries reports the number of unique fingerprints (post-run).
	entries() int
}

// ---- transactional table (TM backends) ----

type tmNode struct {
	fp   Fingerprint
	seq  uint64
	next *tmNode
}

type tmTable struct {
	buckets []stm.Var[*tmNode]
}

func newTMTable(nBuckets int) *tmTable {
	return &tmTable{buckets: make([]stm.Var[*tmNode], nBuckets)}
}

func (t *tmTable) lookupOrInsert(tx *stm.Tx, fp Fingerprint, seq uint64) (uint64, bool) {
	b := &t.buckets[bucketOf(fp, len(t.buckets))]
	head := b.Get(tx)
	for n := head; n != nil; n = n.next {
		if n.fp == fp {
			return n.seq, false
		}
	}
	b.Set(tx, &tmNode{fp: fp, seq: seq, next: head})
	return seq, true
}

func (t *tmTable) entries() int {
	n := 0
	for i := range t.buckets {
		for node := t.buckets[i].Load(); node != nil; node = node.next {
			n++
		}
	}
	return n
}

// ---- lock-based table (Pthread backend: one lock per bucket) ----

type lockNode struct {
	fp   Fingerprint
	seq  uint64
	next *lockNode
}

type lockBucket struct {
	mu   sync.Mutex
	head *lockNode
	_    [4]uint64 // pad to reduce false sharing between buckets
}

type lockTable struct {
	buckets []lockBucket
}

func newLockTable(nBuckets int) *lockTable {
	return &lockTable{buckets: make([]lockBucket, nBuckets)}
}

// lookupOrInsert for the lock table ignores tx (it may be nil).
func (t *lockTable) lookupOrInsert(_ *stm.Tx, fp Fingerprint, seq uint64) (uint64, bool) {
	b := &t.buckets[bucketOf(fp, len(t.buckets))]
	b.mu.Lock()
	defer b.mu.Unlock()
	for n := b.head; n != nil; n = n.next {
		if n.fp == fp {
			return n.seq, false
		}
	}
	b.head = &lockNode{fp: fp, seq: seq, next: b.head}
	return seq, true
}

func (t *lockTable) entries() int {
	n := 0
	for i := range t.buckets {
		b := &t.buckets[i]
		b.mu.Lock()
		for node := b.head; node != nil; node = node.next {
			n++
		}
		b.mu.Unlock()
	}
	return n
}
