package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

// replReadChunk bounds the payload bytes one ReadRange call returns.
// The scan holds the lane's file mutex (segment files are append-shared
// with the flusher), so this is also the bound on how long one stream
// round can stall that lane's group commit.
const replReadChunk = 1 << 20

// serveRepl runs the replication stream on a connection whose writer
// has already drained and exited (see the OpReplHello branch of the
// reader loop). It ships, per lane: a checkpoint bootstrap when the
// follower's cursor is fresh or pruned, then records in LSN order up to
// the published durable watermark — never past it, so a follower can
// only apply bytes the primary has fsynced — plus watermark heartbeats
// whenever a lane's mark moves. With nothing to ship it parks on the
// watermarks via retry (PeekDurable: no lock subscription, same
// rationale as WaitDurable) until any lane advances.
func (s *Server) serveRepl(nc net.Conn, req Request) {
	logs := s.store.Logs()
	bw := bufio.NewWriterSize(nc, 64<<10)
	fail := func(msg string) {
		_ = writeFrame(bw, EncodeResponse(Response{Status: StatusErr, Op: OpReplHello, ID: req.ID, Err: msg}))
		_ = bw.Flush()
	}
	if len(logs) == 0 || logs[0] == nil {
		fail("server: replication requires a WAL-backed store")
		return
	}
	if len(req.Cursors) != 0 && len(req.Cursors) != len(logs) {
		fail(fmt.Sprintf("server: cursor vector names %d lanes, store has %d", len(req.Cursors), len(logs)))
		return
	}
	cursors := make([]uint64, len(logs))
	copy(cursors, req.Cursors)

	ctx, cancel := context.WithCancel(s.streamCtx)
	defer cancel()
	go func() {
		// The follower never speaks after the hello; a returned read
		// means hangup (protocol violations get the same treatment).
		// Without this watchdog a dead follower would leave the stream
		// parked on the watermarks until the next flush tried to write.
		var b [1]byte
		_, _ = nc.Read(b[:])
		cancel()
	}()

	if err := writeFrame(bw, EncodeResponse(Response{Status: StatusOK, Op: OpReplHello, ID: req.ID, Shards: len(logs)})); err != nil {
		return
	}

	send := func(f ReplFrame) bool {
		return writeFrame(bw, EncodeReplFrame(f)) == nil
	}
	bootstrap := func(lane int) bool {
		upTo, blob, err := logs[lane].LatestCheckpoint()
		if err != nil || upTo == 0 {
			s.logf("server: %s: repl lane %d: no checkpoint to bootstrap from (%v)", nc.RemoteAddr(), lane, err)
			return false
		}
		if upTo <= cursors[lane] {
			return true // raced with the pruner; the tail read will retry
		}
		if !send(ReplFrame{Kind: ReplCheckpoint, Lane: lane, LSN: upTo, Payload: blob}) {
			return false
		}
		cursors[lane] = upTo
		return true
	}

	lastWM := make([]uint64, len(logs))
	first := true
	for ctx.Err() == nil {
		progress := false
		for lane, log := range logs {
			if cursors[lane] == 0 && log.CheckpointLSN() > 0 {
				// Fresh follower on a checkpointed lane: ship the base
				// blob instead of replaying history from LSN 1.
				if !bootstrap(lane) {
					return
				}
				progress = true
			}
			d := log.DurableWatermark()
			if d <= cursors[lane] {
				continue
			}
			recs, err := log.ReadRange(cursors[lane], d, replReadChunk)
			if errors.Is(err, wal.ErrPruned) {
				// A checkpoint pruned the tail out from under the
				// cursor: re-base the lane and resume from its upTo.
				if !bootstrap(lane) {
					return
				}
				progress = true
				continue
			}
			if err != nil {
				s.logf("server: %s: repl lane %d: %v", nc.RemoteAddr(), lane, err)
				return
			}
			for _, r := range recs {
				if !send(ReplFrame{Kind: ReplRecord, Lane: lane, LSN: r.LSN, Payload: r.Payload}) {
					return
				}
				cursors[lane] = r.LSN
			}
			if len(recs) > 0 {
				progress = true
			}
		}
		for lane, log := range logs {
			if d := log.DurableWatermark(); first || d != lastWM[lane] {
				var ts [8]byte
				binary.LittleEndian.PutUint64(ts[:], uint64(time.Now().UnixNano()))
				if !send(ReplFrame{Kind: ReplWatermark, Lane: lane, LSN: d, Payload: ts[:]}) {
					return
				}
				lastWM[lane] = d
			}
		}
		first = false
		if err := bw.Flush(); err != nil {
			return
		}
		if progress {
			continue
		}
		err := s.rt.AtomicCtx(ctx, func(tx *stm.Tx) error {
			for lane, log := range logs {
				if log.PeekDurable(tx) > cursors[lane] {
					return nil
				}
			}
			tx.Retry()
			return nil
		})
		if err != nil {
			_ = bw.Flush()
			return
		}
	}
}
