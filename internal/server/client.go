package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"deferstm/internal/kv"
)

// Client is a pipelined connection to a kvserver: requests go out
// without waiting for earlier responses, a demux goroutine matches
// responses back to callers by id, and any number of goroutines may
// share one Client (sends serialize on a mutex; waits don't). The
// synchronous methods (Get, Put, …) are one-request windows over the
// async core; a load generator keeps N requests in flight with
// Send/Recv pairs.
type Client struct {
	nc net.Conn
	br *bufio.Reader

	mu      sync.Mutex // guards bw, pending, nextID, err
	bw      *bufio.Writer
	pending map[uint64]chan Response
	nextID  uint64
	err     error // sticky: first transport failure

	readerDone chan struct{}
}

// Dial connects to a kvserver at addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:         nc,
		br:         bufio.NewReaderSize(nc, 32<<10),
		bw:         bufio.NewWriterSize(nc, 32<<10),
		pending:    map[uint64]chan Response{},
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop demultiplexes responses to their waiting callers. On
// transport failure it fails every in-flight call and every later one.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		payload, err := readFrame(c.br, DefaultMaxFrame)
		if err == nil {
			var resp Response
			if resp, err = DecodeResponse(payload); err == nil {
				c.mu.Lock()
				ch, ok := c.pending[resp.ID]
				delete(c.pending, resp.ID)
				c.mu.Unlock()
				if !ok {
					err = fmt.Errorf("server: response for unknown id %d", resp.ID)
				} else {
					ch <- resp
					continue
				}
			}
		}
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		for id, ch := range c.pending {
			delete(c.pending, id)
			close(ch) // receivers translate a closed channel into c.err
		}
		c.mu.Unlock()
		return
	}
}

// Send issues req asynchronously: it assigns the id, writes the frame,
// and returns a channel that will carry the response. The channel is
// closed without a value if the connection fails first.
func (c *Client) Send(req Request) (<-chan Response, error) {
	ch := make(chan Response, 1)
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return nil, c.err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	err := writeFrame(c.bw, EncodeRequest(req))
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		if c.err == nil {
			c.err = err
		}
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()
	return ch, nil
}

// Recv waits for the response on a Send channel, translating transport
// failure into an error.
func (c *Client) Recv(ch <-chan Response) (Response, error) {
	resp, ok := <-ch
	if !ok {
		return Response{}, c.transportErr()
	}
	if resp.Status != StatusOK {
		return resp, fmt.Errorf("server: %s", resp.Err)
	}
	return resp, nil
}

func (c *Client) transportErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return errors.New("server: connection closed")
}

func (c *Client) call(req Request) (Response, error) {
	ch, err := c.Send(req)
	if err != nil {
		return Response{}, err
	}
	return c.Recv(ch)
}

// Get reads key.
func (c *Client) Get(key string) (string, bool, error) {
	resp, err := c.call(Request{Op: OpGet, Key: key})
	return resp.Val, resp.Found, err
}

// Put writes key=value and returns its LSN once it is durable (the
// server acks at the watermark — by the time this returns, the record
// survives a crash).
func (c *Client) Put(key, value string) (uint64, error) {
	resp, err := c.call(Request{Op: OpPut, Key: key, Val: value})
	return resp.LSN, err
}

// Del deletes key and returns the durable LSN.
func (c *Client) Del(key string) (uint64, error) {
	resp, err := c.call(Request{Op: OpDel, Key: key})
	return resp.LSN, err
}

// Batch applies ops as one atomic, durable transaction.
func (c *Client) Batch(ops []kv.Op) (uint64, error) {
	resp, err := c.call(Request{Op: OpBatch, Ops: ops})
	return resp.LSN, err
}

// Watch blocks until the server's durable watermark covers lsn and
// returns the watermark observed.
func (c *Client) Watch(lsn uint64) (uint64, error) {
	resp, err := c.call(Request{Op: OpWatch, LSN: lsn})
	return resp.Water, err
}

// Stats fetches the server's stats snapshot.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(Request{Op: OpStats})
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal([]byte(resp.Stats), &st); err != nil {
		return Stats{}, fmt.Errorf("server: stats payload: %w", err)
	}
	return st, nil
}

// Close tears the connection down and releases every waiter.
func (c *Client) Close() error {
	err := c.nc.Close()
	<-c.readerDone
	return err
}
