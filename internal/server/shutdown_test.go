package server

import (
	"bufio"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"deferstm/internal/kv"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
)

// TestShutdownDrainsAcks is the graceful-drain regression: a SIGTERM
// (srv.Shutdown) arriving while a connection has a full window of
// pipelined writes parked on the durable watermark must not drop their
// acks. Every decoded request gets its response — with the durability
// wait intact — before the connection is torn down.
func TestShutdownDrainsAcks(t *testing.T) {
	const puts = 32
	// A visible fsync cost keeps the window genuinely parked on the
	// watermark when Shutdown lands, instead of racing it.
	lat := simio.Latency{Fsync: 2 * time.Millisecond}
	srv, store, addr := startServer(t, kv.ModeGroup, lat, Options{Window: puts})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	for i := 0; i < puts; i++ {
		req := Request{Op: OpPut, ID: uint64(i + 1), Key: "k", Val: "v"}
		if err := WriteFrame(nc, EncodeRequest(req)); err != nil {
			t.Fatal(err)
		}
	}
	// Shutdown must land after the reader decoded every request — the
	// guarantee under test is "decoded implies acked", so make sure all
	// of them crossed the decode line first.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Requests["put"] != puts {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d puts decoded", srv.Stats().Requests["put"], puts)
		}
		time.Sleep(time.Millisecond)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Every pipelined write must have been acked durable, in order,
	// before the server hung up.
	br := bufio.NewReader(nc)
	for i := 0; i < puts; i++ {
		payload, err := ReadFrame(br, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("ack %d/%d lost in shutdown: %v", i, puts, err)
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != StatusOK || resp.ID != uint64(i+1) {
			t.Fatalf("ack %d = %+v", i, resp)
		}
		if w := store.Log().DurableWatermark(); w < resp.LSN {
			t.Fatalf("drained ack lsn=%d above durable watermark %d", resp.LSN, w)
		}
	}
	if _, err := ReadFrame(br, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("connection still open after drain: %v", err)
	}
}

// TestShutdownIdleImmediate: with no traffic in flight Shutdown returns
// promptly and Serve exits nil (a deadline-kicked reader is a clean
// stop, not an accept error).
func TestShutdownIdleImmediate(t *testing.T) {
	srv, _, addr := startServer(t, kv.ModeGroup, simio.Latency{}, Options{})
	c := dial(t, addr)
	if _, err := c.Put("a", "1"); err != nil {
		t.Fatal(err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	// And again: idempotent.
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
}

func replHello(t *testing.T, addr string, cursors []uint64) (net.Conn, *bufio.Reader, Response) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	req := Request{Op: OpReplHello, ID: 9, Cursors: cursors}
	if err := WriteFrame(nc, EncodeRequest(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	payload, err := ReadFrame(br, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	return nc, br, resp
}

// TestReplHelloRefusals: a WAL-less store cannot be a primary, and a
// cursor vector that names the wrong lane count is a protocol error.
func TestReplHelloRefusals(t *testing.T) {
	_, _, addr := startServer(t, kv.ModeNone, simio.Latency{}, Options{})
	if _, _, resp := replHello(t, addr, nil); resp.Status != StatusErr {
		t.Fatalf("WAL-less hello accepted: %+v", resp)
	}

	_, _, addr2 := startServer(t, kv.ModeGroup, simio.Latency{}, Options{})
	if _, _, resp := replHello(t, addr2, []uint64{0, 0, 0}); resp.Status != StatusErr {
		t.Fatalf("3-lane cursor vector on a 1-lane store accepted: %+v", resp)
	}
}

// TestReplStreamShipsRecords speaks the stream protocol by hand: after
// the hello, the lane's durable records arrive in LSN order followed by
// a watermark heartbeat, and nothing past the watermark is ever shipped.
func TestReplStreamShipsRecords(t *testing.T) {
	srv, store, addr := startServer(t, kv.ModeGroup, simio.Latency{}, Options{})
	c := dial(t, addr)
	for i, kvp := range [][2]string{{"a", "1"}, {"b", "2"}, {"a", "3"}} {
		lsn, err := c.Put(kvp[0], kvp[1])
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("put %d got lsn %d", i, lsn)
		}
	}
	store.WaitDurable(3)

	nc, br, resp := replHello(t, addr, nil)
	if resp.Status != StatusOK || resp.Shards != 1 {
		t.Fatalf("hello = %+v", resp)
	}
	var recs []ReplFrame
	sawWM := false
	for !sawWM || len(recs) < 3 {
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		payload, err := ReadFrame(br, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("stream died after %d records (wm=%v): %v", len(recs), sawWM, err)
		}
		f, err := DecodeReplFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		switch f.Kind {
		case ReplRecord:
			recs = append(recs, ReplFrame{Kind: f.Kind, Lane: f.Lane, LSN: f.LSN, Payload: append([]byte(nil), f.Payload...)})
		case ReplWatermark:
			if f.LSN >= 3 {
				sawWM = true
			}
		default:
			t.Fatalf("unexpected frame kind %d on a checkpoint-less lane", f.Kind)
		}
	}
	for i, f := range recs {
		if f.Lane != 0 || f.LSN != uint64(i+1) {
			t.Fatalf("record %d = lane %d lsn %d", i, f.Lane, f.LSN)
		}
		ops, err := kv.DecodeOps(f.Payload)
		if err != nil || len(ops) != 1 {
			t.Fatalf("record %d payload: %v (%d ops)", i, err, len(ops))
		}
	}
	if w := store.Log().DurableWatermark(); recs[len(recs)-1].LSN > w {
		t.Fatalf("stream shipped lsn %d past durable watermark %d", recs[len(recs)-1].LSN, w)
	}
	// The follower hanging up must not wedge the server.
	nc.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown with a dead stream: %v", err)
	}
}

// TestReadOnlyServer: the replica serving mode refuses mutations and
// still answers reads.
func TestReadOnlyServer(t *testing.T) {
	store, _, err := kv.Open(stm.NewDefault(), nil, kv.Options{Mode: kv.ModeNone})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the store directly — on a real replica this is the stream's
	// job; the server itself must never write.
	if _, err := store.Update(func(tx *stm.Tx, b *kv.Batch) error {
		b.Put("a", "1")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	srv := New(store, Options{ReadOnly: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
		if err := <-done; err != nil {
			t.Error(err)
		}
	})

	c := dial(t, ln.Addr().String())
	if v, found, err := c.Get("a"); err != nil || !found || v != "1" {
		t.Fatalf("Get on read-only server = %q %v %v", v, found, err)
	}
	if _, err := c.Put("a", "2"); err == nil {
		t.Fatal("read-only server accepted a PUT")
	}
	if _, err := c.Del("a"); err == nil {
		t.Fatal("read-only server accepted a DEL")
	}
	if _, err := c.Batch([]kv.Op{{Put: true, Key: "b", Value: "2"}}); err == nil {
		t.Fatal("read-only server accepted a BATCH")
	}
	if v, found, _ := c.Get("a"); !found || v != "1" {
		t.Fatalf("refused writes still mutated the store: %q %v", v, found)
	}
}
