package server

import (
	"encoding/binary"
	"fmt"
)

// Replication stream frames. After an OpReplHello handshake every frame
// on the connection is one of these, length-prefixed like every other
// frame:
//
//	repl frame: u8 kind | u8 lane | u64 lsn | payload
//
// Kinds:
//
//	CKPT   lsn = the checkpoint's upTo, payload = the snapshot blob.
//	       The follower replaces the lane's contents with the blob and
//	       sets its cursor to upTo — sent on bootstrap and whenever the
//	       follower's cursor has been pruned out from under it.
//	REC    lsn = the record's lane LSN, payload = the WAL record payload
//	       byte-identical to storage. Frames of one lane arrive in LSN
//	       order; the primary never ships a record past the lane's
//	       published durable watermark.
//	WM     lsn = the lane's durable watermark at send time, payload =
//	       u64 send-time unix nanos. A heartbeat: the follower knows how
//	       far behind it is, and the timestamp prices that lag in wall
//	       time once the follower's applied cursor catches the mark.
const (
	ReplCheckpoint byte = 1
	ReplRecord     byte = 2
	ReplWatermark  byte = 3
)

// replFrameHeader is the fixed prefix: kind, lane, lsn.
const replFrameHeader = 1 + 1 + 8

// ReplFrame is one decoded replication stream frame.
type ReplFrame struct {
	Kind    byte
	Lane    int
	LSN     uint64
	Payload []byte
}

// EncodeReplFrame renders f as a frame payload (no length prefix).
func EncodeReplFrame(f ReplFrame) []byte {
	out := make([]byte, 0, replFrameHeader+len(f.Payload))
	out = append(out, f.Kind, byte(f.Lane))
	out = appendU64(out, f.LSN)
	return append(out, f.Payload...)
}

// DecodeReplFrame parses a frame payload into a ReplFrame. The payload
// aliases b.
func DecodeReplFrame(b []byte) (ReplFrame, error) {
	var f ReplFrame
	if len(b) < replFrameHeader {
		return f, fmt.Errorf("server: repl frame truncated (%d bytes)", len(b))
	}
	f.Kind = b[0]
	if f.Kind != ReplCheckpoint && f.Kind != ReplRecord && f.Kind != ReplWatermark {
		return f, fmt.Errorf("server: unknown repl frame kind %d", f.Kind)
	}
	f.Lane = int(b[1])
	f.LSN = binary.LittleEndian.Uint64(b[2:10])
	f.Payload = b[replFrameHeader:]
	return f, nil
}
