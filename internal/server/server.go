package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"deferstm/internal/ds"
	"deferstm/internal/kv"
	"deferstm/internal/obs"
	"deferstm/internal/stm"
)

// Options configures a Server. The zero value is usable.
type Options struct {
	// Window is the per-connection in-flight response bound: how many
	// decoded-but-unacknowledged requests a connection may have before
	// the server stops reading its socket. It is the backpressure
	// mechanism — when durability lags, windows fill, readers park on
	// the bounded queue, and TCP flow control pushes the stall back to
	// the client. 0 means 128.
	Window int
	// MaxFrame bounds one wire frame. 0 means DefaultMaxFrame.
	MaxFrame int
	// Registry, when non-nil, receives the server's instruments
	// (request counters, connection gauge, ack-latency histogram,
	// durable-lag gauge).
	Registry *obs.Registry
	// Logf, when non-nil, receives one line per noteworthy connection
	// event (accept failures, protocol errors).
	Logf func(format string, args ...any)
	// ReadOnly refuses mutations (PUT, DEL, BATCH) and serves GET on the
	// store's snapshot path — zero validation aborts, reads ordered at
	// the replica's applied (LastDurable-consistent) cut. This is the
	// replica serving mode: its store is written only by the replication
	// stream.
	ReadOnly bool
}

// errReadOnly is the refusal both the wire protocol and the HTTP
// fallback give mutations on a replica.
var errReadOnly = errors.New("server: read-only replica")

func (o Options) window() int {
	if o.Window <= 0 {
		return 128
	}
	return o.Window
}

func (o Options) maxFrame() int {
	if o.MaxFrame <= 0 {
		return DefaultMaxFrame
	}
	return o.MaxFrame
}

// Server serves the store over TCP. Create with New, run with Serve,
// stop with Close. All exported methods are safe for concurrent use.
type Server struct {
	store *kv.Store
	rt    *stm.Runtime
	opts  Options

	ctx    context.Context
	cancel context.CancelFunc
	// streamCtx governs replication streams, which never end on their
	// own: Shutdown cancels it so streams drain out of the graceful
	// wait, while ordinary connections keep their durability waits.
	streamCtx    context.Context
	streamCancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	nConns     atomic.Int64
	totalConns atomic.Uint64
	reqs       [OpReplHello + 1]atomic.Uint64
	reqErrs    atomic.Uint64

	ackLatency *obs.Histogram
}

// Stats is the STATS response payload (and /kv/stats JSON): store and
// wire-level counters a load generator needs to compute fsyncs/commit
// and durable lag across a run. WALFlushes counts group-commit
// drain+fsync cycles and WALFsyncs every fsync issued (flushes plus
// segment rotations and checkpoints); WALRecords the commits those
// flushes covered. On a sharded store the WAL fields aggregate across
// lanes (LastAssigned and Durable are sums of per-lane watermarks —
// totals of log positions, not single-log LSNs).
type Stats struct {
	Mode         string            `json:"mode"`
	Shards       int               `json:"shards"`
	Keys         int               `json:"keys"`
	LastAssigned uint64            `json:"last_assigned_lsn"`
	Durable      uint64            `json:"durable_lsn"`
	WALFlushes   uint64            `json:"wal_flushes"`
	WALFsyncs    uint64            `json:"wal_fsyncs"`
	WALRecords   uint64            `json:"wal_records"`
	WALMeanBatch float64           `json:"wal_mean_batch"`
	WALMaxBatch  uint64            `json:"wal_max_batch"`
	Conns        int64             `json:"conns"`
	TotalConns   uint64            `json:"total_conns"`
	Requests     map[string]uint64 `json:"requests"`
	RequestErrs  uint64            `json:"request_errors"`
}

// New builds a server for store. The store stays owned by the caller:
// Close stops serving but does not close the store (kv.Store.Close is
// idempotent, so shutdown paths may close it redundantly anyway).
func New(store *kv.Store, opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	streamCtx, streamCancel := context.WithCancel(ctx)
	s := &Server{
		store:        store,
		rt:           store.Runtime(),
		opts:         opts,
		ctx:          ctx,
		cancel:       cancel,
		streamCtx:    streamCtx,
		streamCancel: streamCancel,
		conns:        map[net.Conn]struct{}{},
	}
	reg := opts.Registry
	s.ackLatency = reg.NewHistogram("deferstm_server_ack_seconds",
		"Request decoded to response written (durability wait included for mutations).")
	reg.GaugeFunc("deferstm_server_conns", "Open client connections.",
		func() float64 { return float64(s.nConns.Load()) })
	reg.GaugeFunc("deferstm_server_durable_lag_records",
		"Assigned-but-not-yet-durable WAL records (group-commit depth), summed over lanes.",
		func() float64 {
			var lag float64
			for _, log := range store.Logs() {
				if log == nil {
					return 0
				}
				if a, d := log.AssignedWatermark(), log.DurableWatermark(); a > d {
					lag += float64(a - d)
				}
			}
			return lag
		})
	for op, name := range opNames {
		op := op
		reg.Counter(fmt.Sprintf("deferstm_server_requests_total{op=%q}", name),
			"Requests served, by op.", func() uint64 { return s.reqs[op].Load() })
	}
	reg.Counter("deferstm_server_request_errors_total",
		"Requests answered with an error status.", func() uint64 { return s.reqErrs.Load() })
	return s
}

var opNames = map[byte]string{
	OpGet: "get", OpPut: "put", OpDel: "del",
	OpBatch: "batch", OpWatch: "watch", OpStats: "stats",
	OpReplHello: "repl",
}

// Serve accepts connections on ln until Close or Shutdown. It returns
// nil after either shutdown path, or the accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		nc, err := ln.Accept()
		if err != nil {
			// Shutdown closes the listener without cancelling s.ctx (the
			// graceful path keeps durability waits alive), so "closed"
			// alone also means a clean stop — returning the accept error
			// there made every graceful drain look like a failure.
			if s.ctx.Err() != nil || s.stopping() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.nConns.Add(1)
		s.totalConns.Add(1)
		go s.handleConn(nc)
	}
}

// Shutdown stops accepting and drains gracefully: every response
// already owed to a client — including ones still waiting on the
// durable watermark — is written before its connection closes. This is
// the SIGTERM path; Close is the hard stop. The old drain (Close on
// signal) cancelled the per-connection contexts, so writer goroutines
// abandoned durable-but-unwritten acks below the watermark: the client
// saw a clean TCP close with its committed writes unacknowledged.
//
// Mechanically: the listener closes, replication streams are released
// (they never end on their own), and each connection's reader is kicked
// with an immediate read deadline — it enqueues its clean-shutdown
// sentinel and the writer drains the full ack window, durability waits
// intact, before teardown. If ctx ends first the remaining connections
// are hard-closed and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	s.streamCancel()
	past := time.Now().Add(-time.Second)
	for _, c := range conns {
		_ = c.SetReadDeadline(past)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		for _, c := range conns {
			c.Close()
		}
		<-done
		return ctx.Err()
	}
}

// Close stops accepting, closes every connection, and waits for the
// per-connection goroutines to drain. Responses still waiting on the
// durable watermark are abandoned (their records stay committed and
// durable — only the acks are lost); use Shutdown to drain them.
// Idempotent; after a Shutdown already in flight it just waits.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancel()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// Stats snapshots the server and store counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Mode:        s.store.Mode().String(),
		Conns:       s.nConns.Load(),
		TotalConns:  s.totalConns.Load(),
		Requests:    map[string]uint64{},
		RequestErrs: s.reqErrs.Load(),
	}
	for op, name := range opNames {
		st.Requests[name] = s.reqs[op].Load()
	}
	st.Shards = s.store.Shards()
	_ = s.store.View(func(tx *stm.Tx) error {
		st.Keys = s.store.Len(tx)
		for _, log := range s.store.Logs() {
			if log != nil {
				st.LastAssigned += log.LastAssigned(tx)
			}
		}
		return nil
	})
	var batchSum, flushSum uint64
	for _, log := range s.store.Logs() {
		if log == nil {
			continue
		}
		st.Durable += log.DurableWatermark()
		bs := log.BatchStats()
		st.WALFlushes += bs.Flushes
		st.WALFsyncs += bs.Fsyncs
		st.WALRecords += bs.Records
		batchSum += bs.Records
		flushSum += bs.Flushes
		if bs.MaxBatch > st.WALMaxBatch {
			st.WALMaxBatch = bs.MaxBatch
		}
	}
	if flushSum > 0 {
		st.WALMeanBatch = float64(batchSum) / float64(flushSum)
	}
	return st
}

// stopping reports whether Close or Shutdown has begun.
func (s *Server) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// pend is one queued response: decoded, executed, waiting for its
// durability condition and its in-order turn on the wire.
type pend struct {
	resp     Response
	received time.Time
	sentinel bool // reader finished cleanly: flush and stop
}

// handleConn runs a connection's reader loop, with a paired writer
// goroutine draining the bounded ack queue.
//
// Pipelining contract: the reader decodes and EXECUTES each request
// immediately — a PUT's transaction commits (reserving its LSN and
// joining the WAL group commit) long before its response is writable —
// and only the RESPONSE is held back, until the durable watermark
// covers the request's LSN. Requests are answered strictly in arrival
// order; per-connection LSNs are therefore monotone and the writer's
// durability waits are cumulative, not redundant. The ack queue's
// capacity is the in-flight window: when durability lags, the queue
// fills, the reader parks (a watcher-based retry, no spinning), the
// socket stops being read, and TCP pushes the backpressure to the
// client.
func (s *Server) handleConn(nc net.Conn) {
	ctx, cancel := context.WithCancel(s.ctx)
	acks := ds.NewBoundedQueue[pend](s.opts.window())
	writerDone := make(chan struct{})

	go func() {
		defer close(writerDone)
		defer cancel() // a writer exit must unpark the reader
		bw := bufio.NewWriterSize(nc, 32<<10)
		for {
			p, ok := s.takeNoWait(acks)
			if !ok {
				// Nothing pending: flush buffered responses before
				// parking so a half-full buffer never stalls a client.
				if err := bw.Flush(); err != nil {
					return
				}
				var err error
				p, err = acks.TakeCtx(ctx, s.rt)
				if err != nil {
					return
				}
			}
			if p.sentinel {
				bw.Flush()
				return
			}
			if p.resp.Status == StatusOK && p.resp.Op == OpWatch {
				// WATCH resolves here, in response order, like any
				// mutation ack: wait for the watched token, then report
				// the fresh watermark of the token's lane (as a token,
				// so a sharded client can keep chaining watches).
				if s.store.WaitDurableCtx(ctx, p.resp.Water) != nil {
					return
				}
				if p.resp.Water > 0 {
					lane := kv.TokenLane(p.resp.Water)
					if log := s.store.Logs()[lane]; log != nil {
						p.resp.Water = kv.PackToken(lane, log.DurableWatermark())
					}
				} else if log := s.store.Log(); log != nil {
					p.resp.Water = log.DurableWatermark()
				}
			}
			if p.resp.LSN > 0 {
				// The durability-ack rule: a mutation's response exists
				// only once the watermark covers its LSN. Cancellation
				// (shutdown) abandons the response, never early-acks it.
				if s.store.WaitDurableCtx(ctx, p.resp.LSN) != nil {
					return
				}
			}
			if err := writeFrame(bw, EncodeResponse(p.resp)); err != nil {
				return
			}
			s.ackLatency.Observe(time.Since(p.received))
		}
	}()

	br := bufio.NewReaderSize(nc, 32<<10)
	for {
		payload, err := readFrame(br, s.opts.maxFrame())
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && ctx.Err() == nil && !s.stopping() {
				s.logf("server: %s: read: %v", nc.RemoteAddr(), err)
			}
			_ = acks.PutCtx(ctx, s.rt, pend{sentinel: true})
			break
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			// Framing survived but the payload didn't parse: the stream
			// is no longer trustworthy. Answer the one bad request and
			// close.
			s.reqErrs.Add(1)
			s.logf("server: %s: %v", nc.RemoteAddr(), err)
			_ = acks.PutCtx(ctx, s.rt, pend{
				received: time.Now(),
				resp:     Response{Status: StatusErr, Op: req.Op, ID: req.ID, Err: err.Error()},
			})
			_ = acks.PutCtx(ctx, s.rt, pend{sentinel: true})
			break
		}
		if req.Op == OpReplHello {
			// The connection stops being request/response here: flush
			// everything the writer still owes (in order, durability
			// waits included), retire it, and hand the socket to the
			// replication stream.
			s.reqs[OpReplHello].Add(1)
			_ = acks.PutCtx(ctx, s.rt, pend{sentinel: true})
			<-writerDone
			s.serveRepl(nc, req)
			break
		}
		p := s.execute(req)
		if acks.PutCtx(ctx, s.rt, p) != nil {
			break // shutdown while parked on a full window
		}
	}

	<-writerDone
	cancel()
	nc.Close()
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	s.nConns.Add(-1)
	s.wg.Done()
}

// takeNoWait is BoundedQueue.TryTake in its own transaction.
func (s *Server) takeNoWait(acks *ds.BoundedQueue[pend]) (pend, bool) {
	var p pend
	var ok bool
	_ = s.rt.Atomic(func(tx *stm.Tx) error {
		p, ok = acks.TryTake(tx)
		return nil
	})
	return p, ok
}

// execute runs one request against the store and returns its pending
// response. Mutations commit here; their durability is the writer's
// problem (that is the whole design).
func (s *Server) execute(req Request) pend {
	p := pend{received: time.Now()}
	if int(req.Op) < len(s.reqs) {
		s.reqs[req.Op].Add(1)
	}
	fail := func(err error) pend {
		s.reqErrs.Add(1)
		p.resp = Response{Status: StatusErr, Op: req.Op, ID: req.ID, Err: err.Error()}
		return p
	}
	p.resp = Response{Status: StatusOK, Op: req.Op, ID: req.ID}
	if s.opts.ReadOnly && (req.Op == OpPut || req.Op == OpDel || req.Op == OpBatch) {
		return fail(errReadOnly)
	}
	switch req.Op {
	case OpGet:
		view := s.store.View
		if s.opts.ReadOnly {
			// Replica reads ride the snapshot path: abort-free, ordered
			// at the applied (LastDurable-consistent) cut.
			view = s.store.SnapshotView
		}
		err := view(func(tx *stm.Tx) error {
			p.resp.Val, p.resp.Found = s.store.Get(tx, req.Key)
			return nil
		})
		if err != nil {
			return fail(err)
		}
	case OpPut:
		lsn, err := s.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			b.Put(req.Key, req.Val)
			return nil
		})
		if err != nil {
			return fail(err)
		}
		p.resp.LSN = lsn
	case OpDel:
		lsn, err := s.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			b.Delete(req.Key)
			return nil
		})
		if err != nil {
			return fail(err)
		}
		p.resp.LSN = lsn
	case OpBatch:
		if len(req.Ops) == 0 {
			return fail(errors.New("server: empty batch"))
		}
		lsn, err := s.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			for _, op := range req.Ops {
				if op.Put {
					b.Put(op.Key, op.Value)
				} else {
					b.Delete(op.Key)
				}
			}
			return nil
		})
		if err != nil {
			return fail(err)
		}
		p.resp.LSN = lsn
	case OpWatch:
		if s.store.Log() == nil {
			if req.LSN > 0 {
				return fail(errors.New("server: WATCH on a store with no WAL"))
			}
			return p
		}
		// The watched value is a durability token: its top bits route to
		// a WAL lane. A token naming a lane the store does not have is a
		// client bug, not a reason to wait (or panic).
		lane := kv.TokenLane(req.LSN)
		if lane >= s.store.Shards() {
			return fail(fmt.Errorf("server: WATCH token names lane %d of a %d-lane store", lane, s.store.Shards()))
		}
		log := s.store.Logs()[lane]
		var assigned uint64
		_ = s.store.View(func(tx *stm.Tx) error {
			assigned = log.LastAssigned(tx)
			return nil
		})
		if kv.TokenLSN(req.LSN) > assigned {
			// A watch past the assigned history would block this
			// connection's response stream forever; refuse it.
			return fail(fmt.Errorf("server: WATCH %d beyond assigned LSN %d on lane %d", kv.TokenLSN(req.LSN), assigned, lane))
		}
		p.resp.Water = req.LSN
	case OpStats:
		b, err := json.Marshal(s.Stats())
		if err != nil {
			return fail(err)
		}
		p.resp.Stats = string(b)
	default:
		return fail(fmt.Errorf("server: unknown op %d", req.Op))
	}
	return p
}
