package server

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"deferstm/internal/kv"
	"deferstm/internal/obs"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

// startServer brings up a sim-backed store and a serving listener on an
// ephemeral loopback port, and tears both down at test end.
func startServer(t *testing.T, mode kv.Mode, lat simio.Latency, opts Options) (*Server, *kv.Store, string) {
	t.Helper()
	var backend wal.Backend
	if mode != kv.ModeNone {
		backend = wal.NewSimBackend(simio.NewFS(lat))
	}
	store, _, err := kv.Open(stm.NewDefault(), backend, kv.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
		if err := store.Close(); err != nil {
			t.Errorf("store close: %v", err)
		}
	})
	return srv, store, ln.Addr().String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestEndToEnd drives every op through a real TCP connection and checks
// the durability-ack rule: when a mutation's response arrives, the
// store's durable watermark already covers its LSN.
func TestEndToEnd(t *testing.T) {
	_, store, addr := startServer(t, kv.ModeGroup, simio.Latency{}, Options{})
	c := dial(t, addr)

	if _, found, err := c.Get("missing"); err != nil || found {
		t.Fatalf("Get(missing) = found=%v err=%v", found, err)
	}
	lsn, err := c.Put("a", "1")
	if err != nil {
		t.Fatal(err)
	}
	if w := store.Log().DurableWatermark(); w < lsn {
		t.Fatalf("acked PUT lsn=%d before durable watermark %d", lsn, w)
	}
	if v, found, err := c.Get("a"); err != nil || !found || v != "1" {
		t.Fatalf("Get(a) = %q found=%v err=%v", v, found, err)
	}

	blsn, err := c.Batch([]kv.Op{
		{Put: true, Key: "b", Value: "2"},
		{Put: true, Key: "c", Value: "3"},
		{Put: false, Key: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if blsn <= lsn {
		t.Fatalf("batch lsn %d not after put lsn %d", blsn, lsn)
	}
	if w := store.Log().DurableWatermark(); w < blsn {
		t.Fatalf("acked BATCH lsn=%d before durable watermark %d", blsn, w)
	}
	if _, found, _ := c.Get("a"); found {
		t.Fatal("batch delete of a did not apply")
	}

	dlsn, err := c.Del("b")
	if err != nil {
		t.Fatal(err)
	}
	water, err := c.Watch(dlsn)
	if err != nil {
		t.Fatal(err)
	}
	if water < dlsn {
		t.Fatalf("Watch(%d) reported watermark %d", dlsn, water)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 1 || st.Mode != "group" || st.Durable < dlsn {
		t.Fatalf("stats = %+v", st)
	}
	if st.Requests["put"] != 1 || st.Requests["batch"] != 1 {
		t.Fatalf("request counters = %v", st.Requests)
	}
}

// TestPipelinedGroupCommit is the tentpole property: many connections
// issuing pipelined writes share fsyncs, so the flush count stays well
// below the record count even though every ack is durable.
func TestPipelinedGroupCommit(t *testing.T) {
	const conns, perConn, window = 8, 50, 32
	// A visible fsync cost is what makes commits pile up behind the
	// leader; without it the sim backend flushes too fast to batch.
	lat := simio.Latency{Fsync: 500 * time.Microsecond}
	_, store, addr := startServer(t, kv.ModeGroup, lat, Options{Window: window})

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			chs := make([]<-chan Response, 0, perConn)
			for i := 0; i < perConn; i++ {
				ch, err := c.Send(Request{
					Op:  OpPut,
					Key: fmt.Sprintf("k%d-%d", ci, i%10),
					Val: strings.Repeat("v", 32),
				})
				if err != nil {
					errs <- err
					return
				}
				chs = append(chs, ch)
			}
			var last uint64
			for _, ch := range chs {
				resp, err := c.Recv(ch)
				if err != nil {
					errs <- err
					return
				}
				if resp.LSN <= last {
					errs <- fmt.Errorf("conn %d: non-monotone LSNs %d after %d", ci, resp.LSN, last)
					return
				}
				last = resp.LSN
			}
			errs <- nil
		}(ci)
	}
	wg.Wait()
	for i := 0; i < conns; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	bs := store.Log().BatchStats()
	if bs.Records < conns*perConn {
		t.Fatalf("records = %d, want >= %d", bs.Records, conns*perConn)
	}
	if bs.Flushes >= bs.Records {
		t.Errorf("group commit never batched: %d flushes for %d records", bs.Flushes, bs.Records)
	}
	t.Logf("records=%d flushes=%d fsyncs/commit=%.3f max batch=%d",
		bs.Records, bs.Flushes, float64(bs.Flushes)/float64(bs.Records), bs.MaxBatch)
}

// TestSmallWindow: a window of 1 serializes the pipeline but must not
// deadlock or drop responses.
func TestSmallWindow(t *testing.T) {
	_, _, addr := startServer(t, kv.ModeGroup, simio.Latency{}, Options{Window: 1})
	c := dial(t, addr)
	chs := make([]<-chan Response, 0, 100)
	for i := 0; i < 100; i++ {
		ch, err := c.Send(Request{Op: OpPut, Key: fmt.Sprintf("k%d", i%7), Val: "v"})
		if err != nil {
			t.Fatal(err)
		}
		chs = append(chs, ch)
	}
	for i, ch := range chs {
		if _, err := c.Recv(ch); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
	}
}

// TestSharedClient: one Client used by many goroutines demuxes every
// response to its caller.
func TestSharedClient(t *testing.T) {
	_, _, addr := startServer(t, kv.ModeGroup, simio.Latency{}, Options{})
	c := dial(t, addr)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("g%d", g)
			for i := 0; i < 25; i++ {
				want := fmt.Sprintf("v%d-%d", g, i)
				if _, err := c.Put(key, want); err != nil {
					errs <- err
					return
				}
				got, found, err := c.Get(key)
				if err != nil || !found || got != want {
					errs <- fmt.Errorf("g%d: got %q found=%v err=%v want %q", g, got, found, err, want)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	for g := 0; g < 16; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestErrorResponses: application-level errors come back as StatusErr
// without killing the connection... except protocol-level garbage,
// which answers once and closes.
func TestErrorResponses(t *testing.T) {
	_, _, addr := startServer(t, kv.ModeGroup, simio.Latency{}, Options{})

	t.Run("empty batch", func(t *testing.T) {
		c := dial(t, addr)
		if _, err := c.Batch(nil); err == nil || !strings.Contains(err.Error(), "empty batch") {
			t.Fatalf("err = %v", err)
		}
		// Connection survives an application error.
		if _, err := c.Put("after", "ok"); err != nil {
			t.Fatalf("connection dead after app error: %v", err)
		}
	})

	t.Run("watch beyond assigned", func(t *testing.T) {
		c := dial(t, addr)
		if _, err := c.Watch(1 << 40); err == nil || !strings.Contains(err.Error(), "beyond assigned") {
			t.Fatalf("err = %v", err)
		}
		if _, err := c.Put("after2", "ok"); err != nil {
			t.Fatalf("connection dead after app error: %v", err)
		}
	})

	t.Run("unknown op closes", func(t *testing.T) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		payload := append([]byte{77}, make([]byte, 8)...)
		if err := writeFrame(nc, payload); err != nil {
			t.Fatal(err)
		}
		frame, err := readFrame(nc, DefaultMaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := DecodeResponse(frame)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != StatusErr || !strings.Contains(resp.Err, "unknown op") {
			t.Fatalf("resp = %+v", resp)
		}
		if _, err := readFrame(nc, DefaultMaxFrame); err != io.EOF {
			t.Fatalf("stream after protocol error: err = %v, want EOF", err)
		}
	})

	t.Run("oversized frame closes", func(t *testing.T) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		// Header claims more than MaxFrame; the server must hang up
		// without waiting for (or allocating) the body.
		if _, err := nc.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
			t.Fatal(err)
		}
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := readFrame(nc, DefaultMaxFrame); err == nil {
			t.Fatal("server answered an oversized frame")
		}
	})
}

// TestModeNone: a WAL-less store serves reads and writes with LSN 0 and
// no durability waits; WATCH of a positive LSN is refused.
func TestModeNone(t *testing.T) {
	_, _, addr := startServer(t, kv.ModeNone, simio.Latency{}, Options{})
	c := dial(t, addr)
	lsn, err := c.Put("a", "1")
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 0 {
		t.Fatalf("ModeNone put lsn = %d", lsn)
	}
	if v, found, err := c.Get("a"); err != nil || !found || v != "1" {
		t.Fatalf("Get = %q %v %v", v, found, err)
	}
	if _, err := c.Watch(7); err == nil || !strings.Contains(err.Error(), "no WAL") {
		t.Fatalf("Watch on ModeNone: err = %v", err)
	}
}

// TestCloseDuringLoad: server shutdown mid-pipeline releases parked
// readers and writers; in-flight calls fail rather than hang, and a
// redundant store close stays idempotent.
func TestCloseDuringLoad(t *testing.T) {
	var backend wal.Backend = wal.NewSimBackend(simio.NewFS(simio.Latency{Fsync: 2 * time.Millisecond}))
	store, _, err := kv.Open(stm.NewDefault(), backend, kv.Options{Mode: kv.ModeGroup})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, Options{Window: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	const loaders = 4
	var wg sync.WaitGroup
	for g := 0; g < loaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(ln.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				if _, err := c.Put(fmt.Sprintf("k%d", g), "v"); err != nil {
					return // shutdown reached us
				}
				_ = i
			}
		}(g)
	}

	time.Sleep(20 * time.Millisecond) // let the load get going
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("clients hung after server close")
	}

	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("redundant store close: %v", err)
	}
}

// TestHTTPFallback exercises the JSON API mounted on the metrics mux.
func TestHTTPFallback(t *testing.T) {
	srv, store, _ := startServer(t, kv.ModeGroup, simio.Latency{}, Options{Registry: obs.NewRegistry()})
	mux := http.NewServeMux()
	srv.RegisterHTTP(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	put := func(key, val string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/kv/put?key="+key, strings.NewReader(val))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("put %s: %d %s", key, resp.StatusCode, body)
		}
	}
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	put("h1", "hello")
	if w := store.Log().DurableWatermark(); w == 0 {
		t.Fatal("HTTP put acked before anything was durable")
	}
	if body := get("/kv/get?key=h1"); !strings.Contains(body, `"found":true`) || !strings.Contains(body, "hello") {
		t.Fatalf("get body = %s", body)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/kv/del?key=h1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("del: %d", resp.StatusCode)
	}
	if body := get("/kv/get?key=h1"); !strings.Contains(body, `"found":false`) {
		t.Fatalf("after del: %s", body)
	}
	if body := get("/kv/stats"); !strings.Contains(body, `"mode":"group"`) {
		t.Fatalf("stats: %s", body)
	}

	// Wrong method on a mutation route.
	if resp, err := http.Get(ts.URL + "/kv/put?key=x"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /kv/put = %d", resp.StatusCode)
		}
	}
}
