package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"deferstm/internal/kv"
	"deferstm/internal/stm"
)

// RegisterHTTP mounts a JSON fallback API onto mux — in cmd/kvserver,
// the same mux the -metrics endpoint serves, so one debug port carries
// /metrics, /debug/pprof and a curl-able view of the store:
//
//	GET  /kv/get?key=k          {"found":true,"value":"v"}
//	PUT  /kv/put?key=k  (body = value)   {"lsn":12}
//	POST /kv/del?key=k          {"lsn":13}
//	GET  /kv/stats              server.Stats
//
// Mutations obey the same durability-ack rule as the wire protocol:
// the response is written only once the durable watermark covers the
// request's LSN. The fallback is for operators and scripts; the binary
// protocol is the data path.
func (s *Server) RegisterHTTP(mux *http.ServeMux) {
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}
	fail := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}

	mux.HandleFunc("/kv/get", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		var val string
		var found bool
		view := s.store.View
		if s.opts.ReadOnly {
			// Same rule as the wire protocol: replica reads ride the
			// snapshot path, ordered at the applied cut.
			view = s.store.SnapshotView
		}
		err := view(func(tx *stm.Tx) error {
			val, found = s.store.Get(tx, key)
			return nil
		})
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"found": found, "value": val})
	})

	mux.HandleFunc("/kv/put", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut && r.Method != http.MethodPost {
			http.Error(w, "PUT or POST", http.StatusMethodNotAllowed)
			return
		}
		if s.opts.ReadOnly {
			fail(w, http.StatusForbidden, errReadOnly)
			return
		}
		key := r.URL.Query().Get("key")
		body, err := io.ReadAll(io.LimitReader(r.Body, int64(s.opts.maxFrame())))
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		lsn, err := s.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			b.Put(key, string(body))
			return nil
		})
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		if err := s.store.WaitDurableCtx(r.Context(), lsn); err != nil {
			fail(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"lsn": lsn})
	})

	mux.HandleFunc("/kv/del", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost && r.Method != http.MethodDelete {
			http.Error(w, "POST or DELETE", http.StatusMethodNotAllowed)
			return
		}
		if s.opts.ReadOnly {
			fail(w, http.StatusForbidden, errReadOnly)
			return
		}
		key := r.URL.Query().Get("key")
		lsn, err := s.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			b.Delete(key)
			return nil
		})
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		if err := s.store.WaitDurableCtx(r.Context(), lsn); err != nil {
			fail(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"lsn": lsn})
	})

	mux.HandleFunc("/kv/scan", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		prefix := q.Get("prefix")
		limit := 1000
		if l := q.Get("limit"); l != "" {
			n, err := strconv.Atoi(l)
			if err != nil || n <= 0 {
				fail(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", l))
				return
			}
			limit = n
		}
		// One consistent snapshot across all shards (Store.Scan pins a
		// single version) — on a replica this is the LastDurable-
		// consistent cut the stream applied, abort-free under traffic.
		entries := map[string]string{}
		truncated := false
		err := s.store.Scan(func(k, v string) bool {
			if !strings.HasPrefix(k, prefix) {
				return true
			}
			if len(entries) >= limit {
				truncated = true
				return false
			}
			entries[k] = v
			return true
		})
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"entries": entries, "count": len(entries), "truncated": truncated,
		})
	})

	mux.HandleFunc("/kv/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
}
