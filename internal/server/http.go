package server

import (
	"encoding/json"
	"io"
	"net/http"

	"deferstm/internal/kv"
	"deferstm/internal/stm"
)

// RegisterHTTP mounts a JSON fallback API onto mux — in cmd/kvserver,
// the same mux the -metrics endpoint serves, so one debug port carries
// /metrics, /debug/pprof and a curl-able view of the store:
//
//	GET  /kv/get?key=k          {"found":true,"value":"v"}
//	PUT  /kv/put?key=k  (body = value)   {"lsn":12}
//	POST /kv/del?key=k          {"lsn":13}
//	GET  /kv/stats              server.Stats
//
// Mutations obey the same durability-ack rule as the wire protocol:
// the response is written only once the durable watermark covers the
// request's LSN. The fallback is for operators and scripts; the binary
// protocol is the data path.
func (s *Server) RegisterHTTP(mux *http.ServeMux) {
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}
	fail := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}

	mux.HandleFunc("/kv/get", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		var val string
		var found bool
		err := s.store.View(func(tx *stm.Tx) error {
			val, found = s.store.Get(tx, key)
			return nil
		})
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"found": found, "value": val})
	})

	mux.HandleFunc("/kv/put", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut && r.Method != http.MethodPost {
			http.Error(w, "PUT or POST", http.StatusMethodNotAllowed)
			return
		}
		key := r.URL.Query().Get("key")
		body, err := io.ReadAll(io.LimitReader(r.Body, int64(s.opts.maxFrame())))
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		lsn, err := s.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			b.Put(key, string(body))
			return nil
		})
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		if err := s.store.WaitDurableCtx(r.Context(), lsn); err != nil {
			fail(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"lsn": lsn})
	})

	mux.HandleFunc("/kv/del", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost && r.Method != http.MethodDelete {
			http.Error(w, "POST or DELETE", http.StatusMethodNotAllowed)
			return
		}
		key := r.URL.Query().Get("key")
		lsn, err := s.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			b.Delete(key)
			return nil
		})
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		if err := s.store.WaitDurableCtx(r.Context(), lsn); err != nil {
			fail(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"lsn": lsn})
	})

	mux.HandleFunc("/kv/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
}
