// Package server puts the durable transactional KV store (internal/kv)
// behind a TCP wire protocol, turning the paper's atomic-deferral story
// into a system that serves real traffic: many client connections
// funnel their writes into the WAL's group commit, the fsync runs as
// the deferred operation it always was, and a client's response is held
// until the durable watermark covers its record — the ack IS the
// durability guarantee.
//
// # Wire format
//
// Both directions speak length-prefixed frames, little-endian, the same
// framing discipline as the WAL record format and the kv codecs:
//
//	frame:     u32 len | payload          (len counts the payload only)
//	request:   u8 op | u64 id | body
//	response:  u8 status | u8 op | u64 id | body
//	string:    u32 len | bytes            (kv codec framing)
//
// Request bodies by op:
//
//	GET    str key
//	PUT    str key, str value
//	DEL    str key
//	BATCH  kv.EncodeOps blob — byte-identical to the WAL record payload
//	       the server will append for it
//	WATCH  u64 lsn — respond once the durable watermark covers lsn
//	STATS  (empty)
//	REPL   u32 n, n × u64 — per-lane resume cursors (n = 0 on a fresh
//	       bootstrap; otherwise n must equal the store's lane count)
//
// Response bodies (status OK) by op:
//
//	GET    u8 found, str value
//	PUT    u64 lsn
//	DEL    u64 lsn
//	BATCH  u64 lsn
//	WATCH  u64 watermark (≥ the requested lsn)
//	STATS  str JSON (server.Stats)
//	REPL   u32 lanes — the store's lane count
//
// An error response (status 1) carries `str message` regardless of op.
// The id is an opaque client token echoed verbatim; the server answers
// a connection's requests strictly in arrival order, so ids exist for
// client bookkeeping, not reordering.
//
// REPL is special: after its OK response the connection stops being a
// request/response channel and becomes a one-way server→client stream
// of replication frames (see ReplFrame) — the same u32 length prefix,
// carrying lane-tagged checkpoint blobs, WAL record payloads, and
// durable-watermark heartbeats. The client must send nothing further;
// it resumes after a disconnect by reconnecting and sending a new REPL
// hello with its per-lane cursors.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"deferstm/internal/kv"
)

// Op codes (request). Response frames echo them so a response is
// self-describing.
const (
	OpGet   = 1
	OpPut   = 2
	OpDel   = 3
	OpBatch = 4
	OpWatch = 5
	OpStats = 6
	// OpReplHello upgrades the connection to a replication stream: the
	// request carries the follower's per-lane resume cursors, the OK
	// response the lane count, and every frame after that is an encoded
	// ReplFrame flowing server→client only.
	OpReplHello = 7
)

// Response status codes.
const (
	StatusOK  = 0
	StatusErr = 1
)

// DefaultMaxFrame bounds a single frame (either direction). A frame
// this size is already pathological for a KV workload; the bound is a
// garbage-input defence, not a tuning knob.
const DefaultMaxFrame = 16 << 20

var errFrameTooBig = errors.New("server: frame exceeds size limit")

// Request is one decoded client request.
type Request struct {
	Op  byte
	ID  uint64
	Key     string   // GET, PUT, DEL
	Val     string   // PUT
	Ops     []kv.Op  // BATCH
	LSN     uint64   // WATCH
	Cursors []uint64 // REPL: per-lane resume cursors (empty = bootstrap)
}

// Response is one decoded server response.
type Response struct {
	Status byte
	Op     byte
	ID     uint64
	Found  bool   // GET
	Val    string // GET
	LSN    uint64 // PUT, DEL, BATCH
	Water  uint64 // WATCH
	Stats  string // STATS (JSON)
	Shards int    // REPL: the store's lane count
	Err    string // status Err
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func takeU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("server: truncated u32")
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

func takeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("server: truncated u64")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func takeStr(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("server: truncated string length")
	}
	n := binary.LittleEndian.Uint32(b)
	if uint32(len(b)-4) < n {
		return "", nil, fmt.Errorf("server: truncated string (%d of %d bytes)", len(b)-4, n)
	}
	return string(b[4 : 4+n]), b[4+n:], nil
}

// EncodeRequest renders req as a frame payload (no length prefix).
func EncodeRequest(req Request) []byte {
	out := []byte{req.Op}
	out = appendU64(out, req.ID)
	switch req.Op {
	case OpGet, OpDel:
		out = appendStr(out, req.Key)
	case OpPut:
		out = appendStr(out, req.Key)
		out = appendStr(out, req.Val)
	case OpBatch:
		out = append(out, kv.EncodeOps(req.Ops)...)
	case OpWatch:
		out = appendU64(out, req.LSN)
	case OpStats:
	case OpReplHello:
		out = appendU32(out, uint32(len(req.Cursors)))
		for _, c := range req.Cursors {
			out = appendU64(out, c)
		}
	}
	return out
}

// DecodeRequest parses a frame payload into a Request.
func DecodeRequest(b []byte) (Request, error) {
	var req Request
	if len(b) < 9 {
		return req, fmt.Errorf("server: request header truncated (%d bytes)", len(b))
	}
	req.Op = b[0]
	req.ID = binary.LittleEndian.Uint64(b[1:9])
	b = b[9:]
	var err error
	switch req.Op {
	case OpGet, OpDel:
		if req.Key, b, err = takeStr(b); err != nil {
			return req, err
		}
	case OpPut:
		if req.Key, b, err = takeStr(b); err != nil {
			return req, err
		}
		if req.Val, b, err = takeStr(b); err != nil {
			return req, err
		}
	case OpBatch:
		if req.Ops, err = kv.DecodeOps(b); err != nil {
			return req, err
		}
		b = nil
	case OpWatch:
		if req.LSN, b, err = takeU64(b); err != nil {
			return req, err
		}
	case OpStats:
	case OpReplHello:
		var n uint32
		if n, b, err = takeU32(b); err != nil {
			return req, err
		}
		if uint64(len(b)) < uint64(n)*8 {
			return req, fmt.Errorf("server: truncated cursor vector (%d of %d lanes)", len(b)/8, n)
		}
		for i := uint32(0); i < n; i++ {
			var c uint64
			c, b, _ = takeU64(b)
			req.Cursors = append(req.Cursors, c)
		}
	default:
		return req, fmt.Errorf("server: unknown op %d", req.Op)
	}
	if len(b) != 0 {
		return req, fmt.Errorf("server: %d trailing request bytes", len(b))
	}
	return req, nil
}

// EncodeResponse renders resp as a frame payload (no length prefix).
func EncodeResponse(resp Response) []byte {
	out := []byte{resp.Status, resp.Op}
	out = appendU64(out, resp.ID)
	if resp.Status != StatusOK {
		return appendStr(out, resp.Err)
	}
	switch resp.Op {
	case OpGet:
		found := byte(0)
		if resp.Found {
			found = 1
		}
		out = append(out, found)
		out = appendStr(out, resp.Val)
	case OpPut, OpDel, OpBatch:
		out = appendU64(out, resp.LSN)
	case OpWatch:
		out = appendU64(out, resp.Water)
	case OpStats:
		out = appendStr(out, resp.Stats)
	case OpReplHello:
		out = appendU32(out, uint32(resp.Shards))
	}
	return out
}

// DecodeResponse parses a frame payload into a Response.
func DecodeResponse(b []byte) (Response, error) {
	var resp Response
	if len(b) < 10 {
		return resp, fmt.Errorf("server: response header truncated (%d bytes)", len(b))
	}
	resp.Status = b[0]
	resp.Op = b[1]
	resp.ID = binary.LittleEndian.Uint64(b[2:10])
	b = b[10:]
	var err error
	if resp.Status != StatusOK {
		if resp.Err, b, err = takeStr(b); err != nil {
			return resp, err
		}
		if len(b) != 0 {
			return resp, fmt.Errorf("server: %d trailing response bytes", len(b))
		}
		return resp, nil
	}
	switch resp.Op {
	case OpGet:
		if len(b) < 1 {
			return resp, fmt.Errorf("server: GET response truncated")
		}
		resp.Found = b[0] == 1
		if resp.Val, b, err = takeStr(b[1:]); err != nil {
			return resp, err
		}
	case OpPut, OpDel, OpBatch:
		if resp.LSN, b, err = takeU64(b); err != nil {
			return resp, err
		}
	case OpWatch:
		if resp.Water, b, err = takeU64(b); err != nil {
			return resp, err
		}
	case OpStats:
		if resp.Stats, b, err = takeStr(b); err != nil {
			return resp, err
		}
	case OpReplHello:
		var n uint32
		if n, b, err = takeU32(b); err != nil {
			return resp, err
		}
		resp.Shards = int(n)
	default:
		return resp, fmt.Errorf("server: unknown response op %d", resp.Op)
	}
	if len(b) != 0 {
		return resp, fmt.Errorf("server: %d trailing response bytes", len(b))
	}
	return resp, nil
}

// WriteFrame writes one length-prefixed frame (exported for the
// replication follower, which speaks raw frames instead of the
// request/response Client).
func WriteFrame(w io.Writer, payload []byte) error { return writeFrame(w, payload) }

// ReadFrame reads one length-prefixed frame, enforcing maxFrame.
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) { return readFrame(r, maxFrame) }

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, enforcing the size limit BEFORE allocating
// the payload buffer — a lying header must not cost memory.
func readFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int(n) > maxFrame {
		return nil, fmt.Errorf("%w: %d > %d", errFrameTooBig, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
