package server

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"deferstm/internal/kv"
)

// TestRequestRoundTrip: every op encodes and decodes back to itself.
func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, ID: 1, Key: "alpha"},
		{Op: OpGet, ID: 2, Key: ""},
		{Op: OpPut, ID: 3, Key: "k", Val: "v"},
		{Op: OpPut, ID: 4, Key: "", Val: ""},
		{Op: OpDel, ID: 5, Key: "gone"},
		{Op: OpBatch, ID: 6, Ops: []kv.Op{
			{Put: true, Key: "a", Value: "1"},
			{Put: false, Key: "b"},
		}},
		{Op: OpWatch, ID: 7, LSN: 42},
		{Op: OpStats, ID: 8},
	}
	for _, want := range cases {
		got, err := DecodeRequest(EncodeRequest(want))
		if err != nil {
			t.Fatalf("op %d: %v", want.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("op %d: got %+v want %+v", want.Op, got, want)
		}
	}
}

// TestResponseRoundTrip: every response shape, OK and error.
func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Status: StatusOK, Op: OpGet, ID: 1, Found: true, Val: "v"},
		{Status: StatusOK, Op: OpGet, ID: 2, Found: false, Val: ""},
		{Status: StatusOK, Op: OpPut, ID: 3, LSN: 9},
		{Status: StatusOK, Op: OpDel, ID: 4, LSN: 10},
		{Status: StatusOK, Op: OpBatch, ID: 5, LSN: 11},
		{Status: StatusOK, Op: OpWatch, ID: 6, Water: 12},
		{Status: StatusOK, Op: OpStats, ID: 7, Stats: `{"keys":3}`},
		{Status: StatusErr, Op: OpPut, ID: 8, Err: "server: boom"},
		{Status: StatusErr, Op: 200, ID: 9, Err: ""},
	}
	for _, want := range cases {
		got, err := DecodeResponse(EncodeResponse(want))
		if err != nil {
			t.Fatalf("op %d status %d: %v", want.Op, want.Status, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("op %d: got %+v want %+v", want.Op, got, want)
		}
	}
}

// TestDecodeRequestCorrupt: malformed payloads must error, never panic
// or silently succeed.
func TestDecodeRequestCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":               {},
		"header short":        {OpGet, 0, 0, 0},
		"unknown op":          append([]byte{99}, make([]byte, 8)...),
		"zero op":             append([]byte{0}, make([]byte, 8)...),
		"get no key":          append([]byte{OpGet}, make([]byte, 8)...),
		"get short key len":   append(append([]byte{OpGet}, make([]byte, 8)...), 1, 0),
		"get lying key len":   append(append([]byte{OpGet}, make([]byte, 8)...), 50, 0, 0, 0, 'x'),
		"put missing value":   EncodeRequest(Request{Op: OpPut, Key: "k", Val: "v"})[:14],
		"watch short lsn":     append(append([]byte{OpWatch}, make([]byte, 8)...), 1, 2, 3),
		"stats trailing":      append(EncodeRequest(Request{Op: OpStats}), 0xff),
		"get trailing":        append(EncodeRequest(Request{Op: OpGet, Key: "k"}), 0xff),
		"batch corrupt blob":  append(append([]byte{OpBatch}, make([]byte, 8)...), 0xff, 0xff),
		"watch trailing byte": append(EncodeRequest(Request{Op: OpWatch, LSN: 1}), 0),
	}
	for name, b := range cases {
		if _, err := DecodeRequest(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestDecodeResponseCorrupt mirrors the request corruption battery.
func TestDecodeResponseCorrupt(t *testing.T) {
	ok := func(op byte) []byte {
		return append([]byte{StatusOK, op}, make([]byte, 8)...)
	}
	cases := map[string][]byte{
		"empty":              {},
		"header short":       {StatusOK, OpGet, 0},
		"unknown op":         ok(99),
		"get empty body":     ok(OpGet),
		"get no value":       append(ok(OpGet), 1),
		"get lying val len":  append(ok(OpGet), 1, 9, 0, 0, 0, 'x'),
		"put short lsn":      append(ok(OpPut), 1, 2),
		"watch short":        append(ok(OpWatch), 1),
		"stats truncated":    append(ok(OpStats), 8, 0, 0, 0, 'x'),
		"err truncated":      append([]byte{StatusErr, OpPut}, make([]byte, 8)...),
		"err trailing":       append(EncodeResponse(Response{Status: StatusErr, Op: OpPut, Err: "e"}), 0),
		"ok trailing":        append(EncodeResponse(Response{Status: StatusOK, Op: OpPut, LSN: 1}), 0),
		"get trailing bytes": append(EncodeResponse(Response{Status: StatusOK, Op: OpGet, Val: "v"}), 1, 2),
	}
	for name, b := range cases {
		if _, err := DecodeResponse(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestFrameRoundTrip: frames survive the wire; readFrame enforces the
// size cap before allocating and rejects short reads.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xab}, 1000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := readFrame(&buf, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: got %d bytes want %d", i, len(got), len(want))
		}
	}
	if _, err := readFrame(&buf, DefaultMaxFrame); err != io.EOF {
		t.Errorf("drained reader: err = %v, want io.EOF", err)
	}

	// Oversized header refused without reading (or allocating) the body.
	buf.Reset()
	if err := writeFrame(&buf, bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(&buf, 10); err == nil || !strings.Contains(err.Error(), "exceeds size limit") {
		t.Errorf("oversized frame: err = %v", err)
	}

	// Lying header over a truncated body.
	buf.Reset()
	buf.Write([]byte{0xff, 0, 0, 0, 'x'})
	if _, err := readFrame(&buf, DefaultMaxFrame); err == nil {
		t.Error("truncated frame decoded without error")
	}
}

// FuzzDecodeRequest: arbitrary bytes never panic, and anything that
// decodes must re-encode canonically.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(Request{Op: OpPut, ID: 7, Key: "k", Val: "v"}))
	f.Add(EncodeRequest(Request{Op: OpBatch, ID: 1, Ops: []kv.Op{{Put: true, Key: "a", Value: "b"}}}))
	f.Add([]byte{OpWatch, 1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeRequest(b)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeRequest(req), b) {
			t.Errorf("non-canonical request decoded: %+v", req)
		}
	})
}

// FuzzDecodeResponse: same property for the response direction.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(Response{Status: StatusOK, Op: OpGet, ID: 3, Found: true, Val: "v"}))
	f.Add(EncodeResponse(Response{Status: StatusErr, Op: OpPut, ID: 4, Err: "e"}))
	f.Fuzz(func(t *testing.T, b []byte) {
		resp, err := DecodeResponse(b)
		if err != nil {
			return
		}
		// Found is the one lossy field: any nonzero byte decodes as a
		// bool, so only byte values 0/1 re-encode canonically.
		if !bytes.Equal(EncodeResponse(resp), b) {
			if resp.Op == OpGet && len(b) >= 11 && b[10] > 1 {
				return
			}
			t.Errorf("non-canonical response decoded: %+v", resp)
		}
	})
}
