// Package cache implements a transactional in-memory key-value cache
// with CLOCK eviction — the memcached-shaped workload of the paper's
// Section 5.1. It demonstrates the library end to end:
//
//   - the index and eviction state are transactional (lookups, inserts
//     and evictions compose into callers' transactions);
//   - hit/miss statistics are recorded through post-commit hooks, so
//     aborted attempts never double-count;
//   - eviction events can be logged through atomic deferral: the paper's
//     observation is that memcached's transactional ports *delete* their
//     logging to avoid irrevocability, while atomic_defer keeps the
//     logging without serializing — this cache keeps it.
//
// Eviction uses the CLOCK approximation of LRU (as production caches
// do):each slot has a reference bit set on access; the eviction hand sweeps,
// clearing bits, and evicts the first unreferenced slot.
package cache

import (
	"fmt"
	"sync/atomic"

	"deferstm/internal/core"
	"deferstm/internal/stm"
)

// Cache is a fixed-capacity transactional string-keyed cache.
type Cache[V any] struct {
	rt       *stm.Runtime
	capacity int

	slots   []slot[V]
	buckets []stm.Var[*idxNode] // key -> slot index
	hand    stm.Var[int]
	size    stm.Var[int]

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	evictLog *EvictionLog // optional
}

type slot[V any] struct {
	key stm.Var[string] // "" = free
	val stm.Var[V]
	ref stm.Var[bool] // CLOCK reference bit
}

type idxNode struct {
	key  string
	slot int
	next *idxNode
}

// EvictionLog is a deferrable sink for eviction records (Listing 3's
// defer_fprintf pattern): writes are atomically deferred on the log.
type EvictionLog struct {
	core.Deferrable
	write func(record string) // invoked post-commit, under the log's lock
}

// NewEvictionLog wraps a writer function (e.g. a simio file append).
func NewEvictionLog(write func(record string)) *EvictionLog {
	return &EvictionLog{write: write}
}

// New creates a cache with the given capacity (minimum 1).
func New[V any](rt *stm.Runtime, capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	nBuckets := 1
	for nBuckets < capacity*2 {
		nBuckets <<= 1
	}
	return &Cache[V]{
		rt:       rt,
		capacity: capacity,
		slots:    make([]slot[V], capacity),
		buckets:  make([]stm.Var[*idxNode], nBuckets),
	}
}

// WithEvictionLog attaches a deferrable eviction log. Must be called
// before the cache is shared.
func (c *Cache[V]) WithEvictionLog(l *EvictionLog) *Cache[V] {
	c.evictLog = l
	return c
}

// Capacity returns the configured capacity.
func (c *Cache[V]) Capacity() int { return c.capacity }

func hashKey(k string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache[V]) bucket(k string) *stm.Var[*idxNode] {
	return &c.buckets[hashKey(k)&uint64(len(c.buckets)-1)]
}

// lookup returns the slot index for k, or -1.
func (c *Cache[V]) lookup(tx *stm.Tx, k string) int {
	for n := c.bucket(k).Get(tx); n != nil; n = n.next {
		if n.key == k {
			return n.slot
		}
	}
	return -1
}

func (c *Cache[V]) indexInsert(tx *stm.Tx, k string, slotIdx int) {
	b := c.bucket(k)
	b.Set(tx, &idxNode{key: k, slot: slotIdx, next: b.Get(tx)})
}

func (c *Cache[V]) indexRemove(tx *stm.Tx, k string) {
	b := c.bucket(k)
	head := b.Get(tx)
	var rebuild func(n *idxNode) *idxNode
	rebuild = func(n *idxNode) *idxNode {
		if n == nil {
			return nil
		}
		if n.key == k {
			return n.next
		}
		return &idxNode{key: n.key, slot: n.slot, next: rebuild(n.next)}
	}
	b.Set(tx, rebuild(head))
}

// Get returns the cached value inside tx, recording a hit or miss (the
// statistic is committed with the transaction via a post-commit hook).
func (c *Cache[V]) Get(tx *stm.Tx, k string) (V, bool) {
	if idx := c.lookup(tx, k); idx >= 0 {
		s := &c.slots[idx]
		if !s.ref.Get(tx) {
			s.ref.Set(tx, true)
		}
		tx.AfterCommit(func() { c.hits.Add(1) })
		return s.val.Get(tx), true
	}
	tx.AfterCommit(func() { c.misses.Add(1) })
	var zero V
	return zero, false
}

// Put inserts or updates k inside tx, evicting a victim with the CLOCK
// sweep when full. It returns the evicted key ("" if none).
func (c *Cache[V]) Put(tx *stm.Tx, k string, v V) string {
	if k == "" {
		panic("cache: empty key")
	}
	if idx := c.lookup(tx, k); idx >= 0 {
		s := &c.slots[idx]
		s.val.Set(tx, v)
		s.ref.Set(tx, true)
		return ""
	}
	evicted := ""
	idx := -1
	if c.size.Get(tx) < c.capacity {
		// A free slot exists; find it (free slots have key "").
		for i := range c.slots {
			if c.slots[i].key.Get(tx) == "" {
				idx = i
				break
			}
		}
		c.size.Set(tx, c.size.Get(tx)+1)
	} else {
		idx = c.sweep(tx)
		victim := &c.slots[idx]
		evicted = victim.key.Get(tx)
		c.indexRemove(tx, evicted)
		tx.AfterCommit(func() { c.evictions.Add(1) })
		if c.evictLog != nil {
			rec := fmt.Sprintf("evict key=%q for key=%q\n", evicted, k)
			log := c.evictLog
			core.AtomicDefer(tx, func(ctx *core.OpCtx) {
				log.write(rec)
			}, log)
		}
	}
	s := &c.slots[idx]
	s.key.Set(tx, k)
	s.val.Set(tx, v)
	s.ref.Set(tx, true)
	c.indexInsert(tx, k, idx)
	return evicted
}

// sweep advances the CLOCK hand, clearing reference bits, and returns the
// first unreferenced occupied slot.
func (c *Cache[V]) sweep(tx *stm.Tx) int {
	h := c.hand.Get(tx)
	for i := 0; i < 2*len(c.slots)+1; i++ {
		s := &c.slots[h]
		if s.key.Get(tx) != "" {
			if !s.ref.Get(tx) {
				c.hand.Set(tx, (h+1)%len(c.slots))
				return h
			}
			s.ref.Set(tx, false)
		}
		h = (h + 1) % len(c.slots)
	}
	// All slots referenced twice around: take the current hand position.
	c.hand.Set(tx, (h+1)%len(c.slots))
	return h
}

// Delete removes k inside tx, reporting whether it was present.
func (c *Cache[V]) Delete(tx *stm.Tx, k string) bool {
	idx := c.lookup(tx, k)
	if idx < 0 {
		return false
	}
	s := &c.slots[idx]
	s.key.Set(tx, "")
	var zero V
	s.val.Set(tx, zero)
	s.ref.Set(tx, false)
	c.indexRemove(tx, k)
	c.size.Set(tx, c.size.Get(tx)-1)
	return true
}

// Len returns the number of cached entries inside tx.
func (c *Cache[V]) Len(tx *stm.Tx) int { return c.size.Get(tx) }

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Hits, Misses, Evictions uint64
}

// Stats returns committed hit/miss/eviction counts (aborted transactions
// never count: the increments ride post-commit hooks).
func (c *Cache[V]) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load()}
}
