package cache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"deferstm/internal/stm"
)

func inTx(t *testing.T, rt *stm.Runtime, fn func(tx *stm.Tx)) {
	t.Helper()
	if err := rt.Atomic(func(tx *stm.Tx) error {
		fn(tx)
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
}

func TestCacheBasic(t *testing.T) {
	rt := stm.NewDefault()
	c := New[int](rt, 4)
	inTx(t, rt, func(tx *stm.Tx) {
		if ev := c.Put(tx, "a", 1); ev != "" {
			t.Errorf("unexpected eviction %q", ev)
		}
		c.Put(tx, "b", 2)
		if v, ok := c.Get(tx, "a"); !ok || v != 1 {
			t.Errorf("Get(a) = %d,%v", v, ok)
		}
		if _, ok := c.Get(tx, "zzz"); ok {
			t.Error("phantom key")
		}
		if c.Len(tx) != 2 {
			t.Errorf("len = %d", c.Len(tx))
		}
		// Update in place.
		c.Put(tx, "a", 10)
		if v, _ := c.Get(tx, "a"); v != 10 {
			t.Errorf("update lost: %d", v)
		}
		if c.Len(tx) != 2 {
			t.Errorf("update changed len: %d", c.Len(tx))
		}
	})
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheDelete(t *testing.T) {
	rt := stm.NewDefault()
	c := New[string](rt, 4)
	inTx(t, rt, func(tx *stm.Tx) {
		c.Put(tx, "k", "v")
		if !c.Delete(tx, "k") {
			t.Error("delete failed")
		}
		if c.Delete(tx, "k") {
			t.Error("double delete succeeded")
		}
		if _, ok := c.Get(tx, "k"); ok {
			t.Error("deleted key found")
		}
		if c.Len(tx) != 0 {
			t.Errorf("len = %d", c.Len(tx))
		}
	})
}

func TestCacheEvictionAtCapacity(t *testing.T) {
	rt := stm.NewDefault()
	c := New[int](rt, 3)
	var evicted []string
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("k%d", i)
		inTx(t, rt, func(tx *stm.Tx) {
			if ev := c.Put(tx, key, i); ev != "" {
				evicted = append(evicted, ev)
			}
			if c.Len(tx) > 3 {
				t.Fatalf("len %d exceeds capacity", c.Len(tx))
			}
		})
	}
	if len(evicted) != 3 {
		t.Errorf("evictions = %v, want 3", evicted)
	}
	if c.Stats().Evictions != 3 {
		t.Errorf("eviction stat = %d", c.Stats().Evictions)
	}
	// The three newest keys must be present.
	inTx(t, rt, func(tx *stm.Tx) {
		present := 0
		for i := 0; i < 6; i++ {
			if _, ok := c.Get(tx, fmt.Sprintf("k%d", i)); ok {
				present++
			}
		}
		if present != 3 {
			t.Errorf("present = %d, want 3", present)
		}
	})
}

// TestCacheClockPrefersUnreferenced: a hot key (touched between eviction
// rounds) survives eviction pressure that removes cold keys. The cache
// must be large enough relative to the churn that CLOCK does not
// degenerate to FIFO (with every slot referenced, the hand evicts
// whatever it points at).
func TestCacheClockPrefersUnreferenced(t *testing.T) {
	rt := stm.NewDefault()
	c := New[int](rt, 8)
	inTx(t, rt, func(tx *stm.Tx) {
		for i := 0; i < 7; i++ {
			c.Put(tx, fmt.Sprintf("cold%d", i), i)
		}
		c.Put(tx, "hot", 99)
	})
	// Alternate eviction pressure with touches of the hot key, in
	// separate transactions (the ref bit must be re-set between sweeps).
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("new%d", i)
		inTx(t, rt, func(tx *stm.Tx) { c.Put(tx, key, i) })
		inTx(t, rt, func(tx *stm.Tx) { _, _ = c.Get(tx, "hot") })
	}
	inTx(t, rt, func(tx *stm.Tx) {
		if _, ok := c.Get(tx, "hot"); !ok {
			t.Error("hot key was evicted despite constant access")
		}
	})
}

func TestCacheEvictionLogDeferred(t *testing.T) {
	rt := stm.NewDefault()
	var mu sync.Mutex
	var log strings.Builder
	el := NewEvictionLog(func(rec string) {
		mu.Lock()
		log.WriteString(rec)
		mu.Unlock()
	})
	c := New[int](rt, 2).WithEvictionLog(el)
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		inTx(t, rt, func(tx *stm.Tx) { c.Put(tx, key, i) })
	}
	mu.Lock()
	defer mu.Unlock()
	lines := strings.Count(log.String(), "\n")
	if lines != 2 {
		t.Errorf("eviction log lines = %d, want 2:\n%s", lines, log.String())
	}
	if !strings.Contains(log.String(), "evict key=") {
		t.Errorf("malformed log: %s", log.String())
	}
	if el.Locked() {
		t.Error("eviction log lock leaked")
	}
}

func TestCacheAbortedTxCountsNothing(t *testing.T) {
	rt := stm.NewDefault()
	c := New[int](rt, 4)
	sentinel := fmt.Errorf("abort")
	_ = rt.Atomic(func(tx *stm.Tx) error {
		c.Put(tx, "x", 1)
		_, _ = c.Get(tx, "x")
		_, _ = c.Get(tx, "y")
		return sentinel
	})
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("aborted tx counted stats: %+v", st)
	}
	inTx(t, rt, func(tx *stm.Tx) {
		if _, ok := c.Get(tx, "x"); ok {
			t.Error("aborted put visible")
		}
	})
}

func TestCacheEmptyKeyPanics(t *testing.T) {
	rt := stm.NewDefault()
	c := New[int](rt, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	_ = rt.Atomic(func(tx *stm.Tx) error {
		c.Put(tx, "", 1)
		return nil
	})
}

func TestCacheMinCapacity(t *testing.T) {
	rt := stm.NewDefault()
	c := New[int](rt, 0)
	if c.Capacity() != 1 {
		t.Errorf("capacity = %d", c.Capacity())
	}
	inTx(t, rt, func(tx *stm.Tx) {
		c.Put(tx, "a", 1)
		ev := c.Put(tx, "b", 2)
		if ev != "a" {
			t.Errorf("evicted %q, want a", ev)
		}
	})
}

func TestCacheConcurrent(t *testing.T) {
	rt := stm.NewDefault()
	c := New[int](rt, 32)
	var wg sync.WaitGroup
	const workers, per = 6, 150
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%20)
				_ = rt.Atomic(func(tx *stm.Tx) error {
					if i%3 == 0 {
						c.Put(tx, key, i)
					} else {
						_, _ = c.Get(tx, key)
					}
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	// Invariants: size within capacity, index consistent with slots.
	inTx(t, rt, func(tx *stm.Tx) {
		n := c.Len(tx)
		if n < 0 || n > c.Capacity() {
			t.Errorf("len = %d (capacity %d)", n, c.Capacity())
		}
		occupied := 0
		for i := range c.slots {
			k := c.slots[i].key.Get(tx)
			if k == "" {
				continue
			}
			occupied++
			if got := c.lookup(tx, k); got != i {
				t.Errorf("index maps %q to %d, slot is %d", k, got, i)
			}
		}
		if occupied != n {
			t.Errorf("occupied slots %d != size %d", occupied, n)
		}
	})
}

// Property: cache agrees with a capacity-unbounded oracle on *hits* — any
// value the cache returns must be the latest value put for that key.
func TestCacheNeverReturnsStaleProperty(t *testing.T) {
	rt := stm.NewDefault()
	f := func(ops []uint16) bool {
		c := New[uint16](rt, 4)
		oracle := map[string]uint16{}
		ok := true
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%12)
			if op%3 == 0 {
				_ = rt.Atomic(func(tx *stm.Tx) error {
					c.Put(tx, key, op)
					return nil
				})
				oracle[key] = op
			} else {
				_ = rt.Atomic(func(tx *stm.Tx) error {
					if v, hit := c.Get(tx, key); hit {
						if want, exists := oracle[key]; !exists || v != want {
							ok = false
						}
					}
					return nil
				})
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
