package bench

import (
	"strings"
	"testing"
)

func gateDoc(rows map[string]float64) *StmDoc {
	d := &StmDoc{Schema: StmSchema}
	for name, allocs := range rows {
		d.Results = append(d.Results, StmResult{Name: name, AllocsPerOp: allocs})
	}
	return d
}

func TestAllocGatePassesWithinSlack(t *testing.T) {
	old := gateDoc(map[string]float64{"read-only": 0, "small-write": 2, "contended-counter": 5})
	now := gateDoc(map[string]float64{"read-only": 0.1, "small-write": 2.3, "contended-counter": 50})
	if err := AllocGate(old, now); err != nil {
		t.Fatalf("gate failed within slack: %v", err)
	}
}

func TestAllocGateFailsOnReadOnlyRegression(t *testing.T) {
	old := gateDoc(map[string]float64{"read-only": 0})
	now := gateDoc(map[string]float64{"read-only": 1})
	err := AllocGate(old, now)
	if err == nil {
		t.Fatal("gate passed a read-only allocation regression")
	}
	if !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("error does not name the row: %v", err)
	}
}

func TestAllocGateFailsOnSmallWriteRegression(t *testing.T) {
	old := gateDoc(map[string]float64{"small-write": 2})
	now := gateDoc(map[string]float64{"small-write": 3})
	if err := AllocGate(old, now); err == nil {
		t.Fatal("gate passed a small-write allocation regression")
	}
}

func TestAllocGateSkipsMissingRows(t *testing.T) {
	// A scaling-only baseline has no gated rows; the gate must compose.
	old := gateDoc(map[string]float64{"map-read/1": 3})
	now := gateDoc(map[string]float64{"read-only": 5, "map-read/1": 3})
	if err := AllocGate(old, now); err != nil {
		t.Fatalf("gate judged a row absent from the baseline: %v", err)
	}
}
