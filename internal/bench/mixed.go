// The mixed suite behind `stmbench -suite mixed`: N TPC-B-style writers
// against one long scanner, the workload MVCC snapshot reads exist for.
//
// State is a scaled-down TPC-B: a few branch totals, a teller tier, and
// a large account array. Every writer transaction applies one signed
// delta to a random (branch, teller, account) triple, so the three
// tiers always carry the same grand total — which makes every full scan
// self-checking: a scanner that sums the branch tier and the account
// tier must see them equal, or its cut was torn.
//
// Three row families per writer-ladder point N:
//
//   - mixed-base/N: writers alone — the scan-free throughput the
//     acceptance compares against.
//   - a scan variant: writers plus one scanner goroutine summing the
//     whole keyspace, paced at a bounded duty cycle (it sleeps ~4x each
//     scan's duration between scans) so the writer-throughput
//     comparison isolates STM interference — aborts, lock stalls,
//     validation — from raw CPU time-slicing, which on a small machine
//     would otherwise dominate. The scanner either runs as an ordinary
//     validating read-only transaction (Scanner "validate": every
//     writer commit into its read set is a potential abort) or in
//     snapshot mode (Scanner "snapshot": chain-resolved reads at a
//     pinned version, abort-free by construction).
//
// With Scanner "both", the variants are emitted side by side as
// mixed-validate/N and mixed-snapshot/N. With a single variant the rows
// are named mixed-scan/N, so a validate-variant document and a
// snapshot-variant document diff row-for-row — that is the committed
// BENCH_PR9.json shape (baseline = what a scanner cost before snapshot
// mode existed, after = the same scan in snapshot mode).
//
// Writer tail latency (tx_p99_ns) comes from the runtime's shared
// commit-latency histogram; scan commits land in it too, but at the
// paced duty cycle they are a negligible fraction of samples.
package bench

import (
	"fmt"
	"time"

	"deferstm/internal/stm"
)

// MixedOptions configures a mixed-suite run.
type MixedOptions struct {
	StmOptions
	// MaxWriters caps the writer ladder (CI smoke runs use 2). 0 means
	// the full ladder.
	MaxWriters int
	// Scanner selects the scan variant(s): "validate", "snapshot", or
	// "both" (the default).
	Scanner string
}

// MixedWriterLadder returns the writer counts the suite measures,
// capped at max when max > 0. The acceptance point is 4 writers.
func MixedWriterLadder(max int) []int {
	out := []int{}
	for _, w := range []int{1, 2, 4, 8} {
		if max > 0 && w > max {
			continue
		}
		out = append(out, w)
	}
	return out
}

// Scaled-down TPC-B shape. The account tier dominates scan length; the
// branch tier is deliberately hot (every writer commit moves one of 4
// vars), which is what forces deep chains on hot vars during a scan.
const (
	mixedBranches = 4
	mixedTellers  = 40
	mixedAccounts = 1 << 13
)

// mixedScanStats carries the scanner-side counters of the last
// measured run out of the workload closure. run() resets it at entry
// and the scanner goroutine is joined before run() returns, so the
// fields need no atomics.
type mixedScanStats struct {
	ops       uint64 // completed scans
	attempts  uint64 // fn executions (commits + aborts + fallbacks)
	fallbacks uint64 // snapshot-overflow fallbacks (stats delta)
}

// RunMixedSuite executes the writer ladder for each requested variant
// and returns one result per (variant, writers) pair.
func RunMixedSuite(opts MixedOptions) []StmResult {
	scanner := opts.Scanner
	if scanner == "" {
		scanner = "both"
	}
	type variant struct{ family, mode string }
	variants := []variant{{family: "mixed-base", mode: ""}}
	switch scanner {
	case "validate":
		variants = append(variants, variant{family: "mixed-scan", mode: "validate"})
	case "snapshot":
		variants = append(variants, variant{family: "mixed-scan", mode: "snapshot"})
	default:
		variants = append(variants,
			variant{family: "mixed-validate", mode: "validate"},
			variant{family: "mixed-snapshot", mode: "snapshot"})
	}
	ladder := MixedWriterLadder(opts.MaxWriters)
	out := make([]StmResult, 0, len(variants)*len(ladder))
	for _, v := range variants {
		for _, writers := range ladder {
			scan := &mixedScanStats{}
			w := stmWorkload{
				name:    v.family + "/" + itoa(writers),
				threads: writers,
				setup:   setupMixed(v.mode, scan),
			}
			var r StmResult
			withProcs(writers+1, func() { r = measureStm(w, opts.StmOptions) })
			r.ScanOps = scan.ops
			r.ScanFallbacks = scan.fallbacks
			if scan.attempts > scan.ops+scan.fallbacks {
				// Re-executions beyond the scans themselves and their
				// snapshot fallbacks are contention aborts of the
				// validating path.
				r.ScanAborts = scan.attempts - scan.ops - scan.fallbacks
			}
			if opts.Logf != nil {
				opts.Logf("%-18s writers=%-2d %10.1f ns/op %12.0f commits/s scans=%d scan-aborts=%d fallbacks=%d",
					r.Name, writers, r.NsPerOp, r.CommitsPerSec, r.ScanOps, r.ScanAborts, r.ScanFallbacks)
			}
			out = append(out, r)
		}
	}
	return out
}

// setupMixed builds one ladder point: TPC-B state, writer loop, and —
// when mode is non-empty — the paced scanner goroutine whose lifetime
// brackets each measured run.
func setupMixed(mode string, scan *mixedScanStats) func(threads int) (*stm.Runtime, func(uint64)) {
	return func(threads int) (*stm.Runtime, func(uint64)) {
		// Chains must outlive a full scan on the hottest var: every
		// writer commit moves one of mixedBranches branch totals, so a
		// scan spanning C commits needs ~C/mixedBranches retained
		// versions there. Size generously; memory is bounded by actual
		// overwrites while a snapshot is live and drops to one value per
		// var the moment no scan is registered.
		rt := stm.New(stm.Config{SnapshotChainDepth: 1 << 16})
		branches := make([]*stm.Var[int], mixedBranches)
		tellers := make([]*stm.Var[int], mixedTellers)
		accounts := make([]*stm.Var[int], mixedAccounts)
		for i := range branches {
			branches[i] = stm.NewVar(0)
		}
		for i := range tellers {
			tellers[i] = stm.NewVar(0)
		}
		for i := range accounts {
			accounts[i] = stm.NewVar(0)
		}
		scanOnce := func(tx *stm.Tx) error {
			scan.attempts++
			bSum, aSum := 0, 0
			for _, b := range branches {
				bSum += b.Get(tx)
			}
			for _, t := range tellers {
				_ = t.Get(tx)
			}
			for _, a := range accounts {
				aSum += a.Get(tx)
			}
			if bSum != aSum {
				panic(fmt.Sprintf("bench: mixed scan tore: branch sum %d != account sum %d", bSum, aSum))
			}
			return nil
		}
		return rt, func(n uint64) {
			*scan = mixedScanStats{}
			fallbackBase := rt.Stats().SnapshotFallbacks.Load()
			stop := make(chan struct{})
			scanDone := make(chan struct{})
			if mode == "" {
				close(scanDone)
			} else {
				go func() {
					defer close(scanDone)
					for {
						select {
						case <-stop:
							return
						default:
						}
						start := time.Now()
						var err error
						if mode == "snapshot" {
							err = rt.AtomicSnapshot(scanOnce)
						} else {
							err = rt.Atomic(scanOnce)
						}
						if err != nil {
							panic("bench: mixed scan: " + err.Error())
						}
						scan.ops++
						// Bounded duty cycle: sleep ~4x the scan we just
						// ran, so the scanner occupies ~20% of one core
						// regardless of machine speed.
						select {
						case <-stop:
							return
						case <-time.After(4 * time.Since(start)):
						}
					}
				}()
			}
			runParallel(threads, n, func(g int, per uint64) {
				rng := seedRng(g)
				for i := uint64(0); i < per; i++ {
					b := int(xorshift(&rng) % mixedBranches)
					t := int(xorshift(&rng) % mixedTellers)
					a := int(xorshift(&rng) % mixedAccounts)
					delta := int(xorshift(&rng)%199) - 99
					if err := rt.Atomic(func(tx *stm.Tx) error {
						accounts[a].Set(tx, accounts[a].Get(tx)+delta)
						tellers[t].Set(tx, tellers[t].Get(tx)+delta)
						branches[b].Set(tx, branches[b].Get(tx)+delta)
						return nil
					}); err != nil {
						panic("bench: mixed writer: " + err.Error())
					}
				}
			})
			close(stop)
			<-scanDone
			scan.fallbacks = rt.Stats().SnapshotFallbacks.Load() - fallbackBase
		}
	}
}
