// Reactive-suite workloads behind `stmbench -suite reactive`: where the
// hot and scaling suites measure transactions that always have work, this
// file measures transactions that *wait* — the watcher-based retry path.
// Three workload families:
//
//   - wakeup/<r>:  r blocked readers park on a counter while one writer
//     increments it; each commit broadcasts to every parked reader. The
//     wake_p99_ns column is the blocked-reader wakeup-latency ladder —
//     the number a networked front end's tail latency inherits.
//   - blocked-churn-{watch,spin}/16: 16 readers block on a var that
//     never changes while a writer hammers an unrelated var. The starts
//     counter is the CPU-churn proxy: parked watchers re-execute ~never,
//     the SpinRetry opt-out re-executes continuously. The pair is the
//     paper-style ablation behind the ≥10x acceptance ratio (asserted
//     in internal/stm's regression test; reported here for trajectories).
//   - queue-handoff/4: producer/consumer pairs over a BoundedQueue,
//     blocking on both full and empty — the reactive kit's bread and
//     butter, measured end to end.
package bench

import (
	"fmt"
	"sync"

	"deferstm/internal/ds"
	"deferstm/internal/stm"
)

// ReactiveOptions configures a reactive-suite run.
type ReactiveOptions struct {
	StmOptions
	// MaxReaders caps the blocked-reader ladder (CI smoke uses 4).
	// 0 means the full ladder (1, 4, 16).
	MaxReaders int
}

// RunReactiveSuite executes the reactive workloads and returns one
// result per (workload, readers) pair.
func RunReactiveSuite(opts ReactiveOptions) []StmResult {
	ladder := []int{1, 4, 16}
	var out []StmResult
	logf := func(format string, args ...any) {
		if opts.Logf != nil {
			opts.Logf(format, args...)
		}
	}
	for _, readers := range ladder {
		if opts.MaxReaders > 0 && readers > opts.MaxReaders {
			continue
		}
		w := stmWorkload{
			name:    fmtName("wakeup", readers),
			threads: readers + 1,
			setup:   func(int) (*stm.Runtime, func(uint64)) { return setupWakeup(readers) },
		}
		r := measureStm(w, opts.StmOptions)
		logf("%-22s threads=%-2d %10.1f ns/op parks=%d wakes=%d wake_p99=%.0fns",
			r.Name, r.Threads, r.NsPerOp, r.RetryParks, r.RetryWakes, r.WakeP99Ns)
		out = append(out, r)
	}

	churnReaders := 16
	if opts.MaxReaders > 0 && churnReaders > opts.MaxReaders {
		churnReaders = opts.MaxReaders
	}
	var watch, spin StmResult
	for _, mode := range []struct {
		name string
		spin bool
	}{{"blocked-churn-watch", false}, {"blocked-churn-spin", true}} {
		mode := mode
		w := stmWorkload{
			name:    fmtName(mode.name, churnReaders),
			threads: churnReaders + 1,
			setup: func(int) (*stm.Runtime, func(uint64)) {
				return setupBlockedChurn(churnReaders, mode.spin)
			},
		}
		r := measureStm(w, opts.StmOptions)
		logf("%-22s threads=%-2d %10.1f ns/op starts=%d (churn proxy)",
			r.Name, r.Threads, r.NsPerOp, r.Starts)
		if mode.spin {
			spin = r
		} else {
			watch = r
		}
		out = append(out, r)
	}
	if watch.N > 0 && spin.N > 0 && watch.Starts > 0 {
		// Per-op churn, because the two runs calibrate to different N.
		wps := float64(watch.Starts) / float64(watch.N)
		sps := float64(spin.Starts) / float64(spin.N)
		logf("blocked-reader churn ratio (spin/watch, starts per op): %.1fx", sps/wps)
	}

	qw := stmWorkload{
		name:    "queue-handoff/4",
		threads: 4,
		setup:   setupQueueHandoff,
	}
	r := measureStm(qw, opts.StmOptions)
	logf("%-22s threads=%-2d %10.1f ns/op parks=%d wakes=%d",
		r.Name, r.Threads, r.NsPerOp, r.RetryParks, r.RetryWakes)
	out = append(out, r)
	return out
}

func fmtName(base string, n int) string {
	return fmt.Sprintf("%s/%d", base, n)
}

// setupWakeup: one writer increments a counter n times; `readers`
// goroutines each chase the counter, parking between commits, until it
// reaches the session's target. Every writer commit broadcasts to all
// currently parked readers.
func setupWakeup(readers int) (*stm.Runtime, func(uint64)) {
	rt := stm.NewDefault()
	v := stm.NewVar(uint64(0))
	return rt, func(n uint64) {
		start := v.Load()
		target := start + n
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				seen := start
				for seen < target {
					_ = rt.Atomic(func(tx *stm.Tx) error {
						cur := v.Get(tx)
						if cur <= seen {
							tx.Retry()
						}
						seen = cur
						return nil
					})
				}
			}()
		}
		for i := uint64(0); i < n; i++ {
			_ = rt.Atomic(func(tx *stm.Tx) error {
				v.Set(tx, v.Get(tx)+1)
				return nil
			})
		}
		wg.Wait()
	}
}

// setupBlockedChurn: `readers` goroutines block on a var the writer
// never touches while the writer commits n times to an unrelated var.
// With watchers the blocked readers cost nothing; with SpinRetry they
// re-execute for the whole run. The per-op starts delta is the ratio
// the acceptance criterion gates on.
func setupBlockedChurn(readers int, spinRetry bool) (*stm.Runtime, func(uint64)) {
	rt := stm.New(stm.Config{SpinRetry: spinRetry})
	gate := stm.NewVar(uint64(0))
	busy := stm.NewVar(uint64(0))
	return rt, func(n uint64) {
		base := gate.Load()
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = rt.Atomic(func(tx *stm.Tx) error {
					if gate.Get(tx) == base {
						tx.Retry()
					}
					return nil
				})
			}()
		}
		for i := uint64(0); i < n; i++ {
			_ = rt.Atomic(func(tx *stm.Tx) error {
				busy.Set(tx, busy.Get(tx)+1)
				return nil
			})
		}
		// Release the blocked readers and drain them.
		_ = rt.Atomic(func(tx *stm.Tx) error {
			gate.Set(tx, base+1)
			return nil
		})
		wg.Wait()
	}
}

// setupQueueHandoff: two producer/consumer pairs over one small bounded
// queue; producers block on full, consumers on empty.
func setupQueueHandoff(threads int) (*stm.Runtime, func(uint64)) {
	rt := stm.NewDefault()
	q := ds.NewBoundedQueue[uint64](64)
	return rt, func(n uint64) {
		runParallel(threads, n, func(g int, per uint64) {
			if g%2 == 0 {
				for i := uint64(0); i < per; i++ {
					_ = rt.Atomic(func(tx *stm.Tx) error {
						q.Put(tx, i)
						return nil
					})
				}
			} else {
				for i := uint64(0); i < per; i++ {
					_ = rt.Atomic(func(tx *stm.Tx) error {
						q.Take(tx)
						return nil
					})
				}
			}
		})
	}
}
