// STM hot-path workload runners behind cmd/stmbench: the benchmark-
// regression pipeline every perf PR is judged against. Each workload
// measures the runtime's constant factors (ns/op, allocs/op) together
// with the structural counters (commits, aborts, quiesce waits) so a
// "faster" result that changed the algorithm's behavior is visible as a
// counter drift, not just a timing delta.
//
// The measurement loop is self-contained (no testing.Benchmark): it
// calibrates N by doubling until the target wall time is reached, then
// reports the final calibrated run. Allocation counts come from
// runtime.MemStats deltas, so they cover every goroutine the workload
// spawns, not just the caller.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"deferstm/internal/kv"
	"deferstm/internal/obs"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

// StmResult is one workload measurement.
type StmResult struct {
	Name          string  `json:"name"`
	Threads       int     `json:"threads"`
	N             uint64  `json:"n"` // transactions in the measured run
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	CommitsPerSec float64 `json:"commits_per_s"`
	Commits       uint64  `json:"commits"`
	Aborts        uint64  `json:"aborts"`
	SerialRuns    uint64  `json:"serial_runs"`
	QuiesceWaits  uint64  `json:"quiesce_waits"`
	QuiesceNanos  uint64  `json:"quiesce_nanos"`
	WALRecords    uint64  `json:"wal_records,omitempty"`
	WALFlushes    uint64  `json:"wal_flushes,omitempty"`
	WALFsyncs     uint64  `json:"wal_fsyncs,omitempty"`

	// Watcher-based retry counters (reactive suite): Starts is the total
	// attempt count — for blocked-reader workloads it is the CPU-churn
	// proxy the watcher-vs-spin acceptance ratio is computed from.
	Starts     uint64 `json:"starts,omitempty"`
	RetryParks uint64 `json:"retry_parks,omitempty"`
	RetryWakes uint64 `json:"retry_wakes,omitempty"`

	// Tail latency of the measured run's successful transactions, from
	// the runtime's log2-bucketed commit-latency histogram: upper bounds
	// tight to within one bucket (a factor of two), with the exact max.
	// Mean ns/op above includes aborted attempts and harness overhead;
	// these do not.
	TxP50Ns float64 `json:"tx_p50_ns,omitempty"`
	TxP90Ns float64 `json:"tx_p90_ns,omitempty"`
	TxP99Ns float64 `json:"tx_p99_ns,omitempty"`
	TxMaxNs float64 `json:"tx_max_ns,omitempty"`

	// Wakeup propagation latency (waking commit's broadcast → parked
	// transaction running again), from the runtime's wake-latency
	// histogram. Present only for workloads that actually parked.
	WakeP50Ns float64 `json:"wake_p50_ns,omitempty"`
	WakeP99Ns float64 `json:"wake_p99_ns,omitempty"`
	WakeMaxNs float64 `json:"wake_max_ns,omitempty"`

	// GOMAXPROCS in effect while this row was measured. The scaling and
	// mixed suites raise it per ladder point (see withProcs), so the
	// document-level GOMAXPROCS no longer tells the whole story.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`

	// Scanner-side counters (mixed suite): completed scans, scanner
	// contention aborts (validating scanners under write traffic), and
	// snapshot-overflow fallbacks. A scan row with ScanOps > 0 and no
	// scan_aborts key had zero scanner aborts — the snapshot headline.
	ScanOps       uint64 `json:"scan_ops,omitempty"`
	ScanAborts    uint64 `json:"scan_aborts,omitempty"`
	ScanFallbacks uint64 `json:"scan_fallbacks,omitempty"`
}

// StmDoc is the JSON document cmd/stmbench emits: one machine, one
// commit, one suite run.
type StmDoc struct {
	Schema     string      `json:"schema"` // always StmSchema
	Label      string      `json:"label,omitempty"`
	Commit     string      `json:"commit,omitempty"`
	Go         string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Time       string      `json:"time"`
	Quick      bool        `json:"quick,omitempty"`
	Results    []StmResult `json:"results"`
}

// StmTrajectory is the committed BENCH_*.json shape: the pre-change
// baseline and the post-change run from the same machine.
type StmTrajectory struct {
	Schema   string  `json:"schema"` // always TrajectorySchema
	Baseline *StmDoc `json:"baseline"`
	After    *StmDoc `json:"after"`
}

const (
	StmSchema        = "deferstm/bench/v1"
	TrajectorySchema = "deferstm/bench-trajectory/v1"
)

// StmOptions configures a suite run.
type StmOptions struct {
	// Target is the wall time each workload calibrates toward.
	// 0 means 1s (or 25ms when Quick).
	Target time.Duration
	// Quick selects the CI smoke configuration: tiny target, capped N.
	// CI asserts only that the pipeline runs and the JSON is well
	// formed — never a timing threshold.
	Quick bool
	// Logf, when non-nil, receives one progress line per workload.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, is attached to every workload's runtime
	// (cmd/stmbench's -metrics endpoint shares one instrument set
	// across the suite). Nil makes each measurement use a private,
	// unregistered set — percentiles are always collected.
	Metrics *stm.Metrics
}

func (o StmOptions) target() time.Duration {
	if o.Target > 0 {
		return o.Target
	}
	if o.Quick {
		return 25 * time.Millisecond
	}
	return time.Second
}

// stmWorkload is one named benchmark: setup builds the closed-over
// state and returns the runtime to snapshot counters from plus run,
// which executes n transactions (split across the workload's threads).
type stmWorkload struct {
	name    string
	threads int
	// maxN, when nonzero, caps the calibrated N (workloads whose state
	// grows with every op, like resize-storm, bound their footprint).
	maxN  uint64
	setup func(threads int) (rt *stm.Runtime, run func(n uint64))
}

// RunStmSuite executes the four hot-path workloads and returns their
// results in order.
func RunStmSuite(opts StmOptions) []StmResult {
	nThreads := runtime.GOMAXPROCS(0)
	if nThreads < 2 {
		nThreads = 2
	}
	workloads := []stmWorkload{
		{name: "read-only", threads: 1, setup: setupReadOnly},
		{name: "small-write", threads: 1, setup: setupSmallWrite},
		{name: "contended-counter", threads: nThreads, setup: setupContended},
		{name: "kv-group-commit", threads: 4, setup: setupKVGroupCommit},
	}
	out := make([]StmResult, 0, len(workloads))
	for _, w := range workloads {
		r := measureStm(w, opts)
		if opts.Logf != nil {
			opts.Logf("%-18s threads=%-2d %10.1f ns/op %7.2f allocs/op %12.0f commits/s aborts=%d",
				r.Name, r.Threads, r.NsPerOp, r.AllocsPerOp, r.CommitsPerSec, r.Aborts)
		}
		out = append(out, r)
	}
	return out
}

// measureStm calibrates and measures one workload. The final doubling
// iteration is the reported measurement; earlier iterations double as
// warmup (transaction descriptor pools, WAL segments, map growth).
func measureStm(w stmWorkload, opts StmOptions) StmResult {
	rt, run := w.setup(w.threads)
	target := opts.target()

	met := opts.Metrics
	if met == nil {
		met = stm.NewMetrics(nil)
	}
	rt.SetMetrics(met)

	n := uint64(64)
	if opts.Quick {
		n = 16
	}
	run(n) // warmup: populate descriptor pools, fault in state

	var (
		elapsed time.Duration
		mallocs uint64
		bytes   uint64
		before  stm.StatsSnapshot
		delta   stm.StatsSnapshot
		lat     obs.HistSnapshot
		wake    obs.HistSnapshot
	)
	for {
		var msBefore, msAfter runtime.MemStats
		before = rt.Snapshot()
		latBefore := met.TxLatency.Snapshot()
		wakeBefore := met.WakeLatency.Snapshot()
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		run(n)
		elapsed = time.Since(start)
		runtime.ReadMemStats(&msAfter)
		delta = rt.Snapshot().Delta(before)
		lat = met.TxLatency.Snapshot().Delta(latBefore)
		wake = met.WakeLatency.Snapshot().Delta(wakeBefore)
		mallocs = msAfter.Mallocs - msBefore.Mallocs
		bytes = msAfter.TotalAlloc - msBefore.TotalAlloc
		limit := uint64(1 << 28)
		if w.maxN != 0 && w.maxN < limit {
			limit = w.maxN
		}
		if elapsed >= target || n >= limit || (opts.Quick && n >= 1<<12) {
			break
		}
		// Aim for ~1.5x the target next round, at least doubling.
		next := n * 2
		if elapsed > 0 {
			byRate := uint64(float64(n) * 1.5 * float64(target) / float64(elapsed))
			if byRate > next {
				next = byRate
			}
		}
		if next > limit {
			next = limit
		}
		n = next
	}

	r := StmResult{
		Name:         w.name,
		Threads:      w.threads,
		N:            n,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NsPerOp:      float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerOp:  float64(mallocs) / float64(n),
		BytesPerOp:   float64(bytes) / float64(n),
		Commits:      delta.Commits,
		Aborts:       delta.Aborts(),
		SerialRuns:   delta.SerialRuns,
		QuiesceWaits: delta.QuiesceWaits,
		QuiesceNanos: delta.QuiesceNanos,
		WALRecords:   delta.WALRecords,
		WALFlushes:   delta.WALFlushes,
		WALFsyncs:    delta.WALFsyncs,
		Starts:       delta.Starts,
		RetryParks:   delta.RetryParks,
		RetryWakes:   delta.RetryWakes,
	}
	if elapsed > 0 {
		r.CommitsPerSec = float64(delta.Commits) / elapsed.Seconds()
	}
	if lat.Count > 0 {
		r.TxP50Ns = lat.Quantile(0.50)
		r.TxP90Ns = lat.Quantile(0.90)
		r.TxP99Ns = lat.Quantile(0.99)
		r.TxMaxNs = float64(lat.Max)
	}
	if wake.Count > 0 {
		r.WakeP50Ns = wake.Quantile(0.50)
		r.WakeP99Ns = wake.Quantile(0.99)
		r.WakeMaxNs = float64(wake.Max)
	}
	return r
}

// setupReadOnly: single thread, 8-var read-only transactions — the
// path the runtime promises to run with zero heap allocations.
func setupReadOnly(_ int) (*stm.Runtime, func(uint64)) {
	rt := stm.NewDefault()
	vars := make([]*stm.Var[int], 8)
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	fn := func(tx *stm.Tx) error {
		s := 0
		for _, v := range vars {
			s += v.Get(tx)
		}
		sink = s
		return nil
	}
	return rt, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			_ = rt.Atomic(fn)
		}
	}
}

// setupSmallWrite: single thread, uncontended 2-read/2-write
// transactions — the typical small writer the write-set fast path is
// sized for.
func setupSmallWrite(_ int) (*stm.Runtime, func(uint64)) {
	rt := stm.NewDefault()
	a, b := stm.NewVar(0), stm.NewVar(0)
	c, d := stm.NewVar(0), stm.NewVar(0)
	fn := func(tx *stm.Tx) error {
		x := a.Get(tx) + b.Get(tx)
		c.Set(tx, x)
		d.Set(tx, x+1)
		return nil
	}
	return rt, func(n uint64) {
		for i := uint64(0); i < n; i++ {
			_ = rt.Atomic(fn)
		}
	}
}

// setupContended: GOMAXPROCS threads hammering one counter — the
// conflict-heavy workload where shared stat counters, the global clock
// and backoff policy dominate.
func setupContended(threads int) (*stm.Runtime, func(uint64)) {
	rt := stm.NewDefault()
	v := stm.NewVar(0)
	return rt, func(n uint64) {
		runParallel(threads, n, func(_ int, per uint64) {
			for i := uint64(0); i < per; i++ {
				_ = rt.Atomic(func(tx *stm.Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				})
			}
		})
	}
}

// setupKVGroupCommit: 4 threads appending through the durable KV store
// in group-commit mode over a page-cache-speed simulated disk; each op
// is one Update + WaitDurable, so the measurement covers WAL append,
// leader election and the group-commit fsync batch.
func setupKVGroupCommit(threads int) (*stm.Runtime, func(uint64)) {
	fs := simio.NewFS(simio.PageCacheLatency())
	rt := stm.NewDefault()
	s, _, err := kv.Open(rt, wal.NewSimBackend(fs), kv.Options{Mode: kv.ModeGroup})
	if err != nil {
		panic(fmt.Sprintf("bench: kv.Open: %v", err))
	}
	value := "v-0123456789abcdef"
	return rt, func(n uint64) {
		runParallel(threads, n, func(g int, per uint64) {
			rng := uint64(g)*0x9e3779b97f4a7c15 + 1
			for i := uint64(0); i < per; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				key := fmt.Sprintf("k%03d", rng%256)
				lsn, err := s.Update(func(tx *stm.Tx, b *kv.Batch) error {
					b.Put(key, value)
					return nil
				})
				if err != nil {
					panic(fmt.Sprintf("bench: kv.Update: %v", err))
				}
				s.WaitDurable(lsn)
			}
		})
	}
}

// runParallel splits n operations over the given goroutine count and
// waits for all of them. Workers receive their goroutine index so they
// can derive disjoint RNG streams or key ranges.
func runParallel(threads int, n uint64, worker func(g int, per uint64)) {
	per := n / uint64(threads)
	if per == 0 {
		per = 1
	}
	done := make(chan struct{}, threads)
	for g := 0; g < threads; g++ {
		go func(g int) {
			worker(g, per)
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < threads; g++ {
		<-done
	}
}

// sink defeats dead-code elimination of read-only loop bodies.
var sink int

// NewStmDoc wraps suite results with the machine/build metadata that
// makes two JSON files comparable.
func NewStmDoc(label, commit string, quick bool, results []StmResult) *StmDoc {
	return &StmDoc{
		Schema:     StmSchema,
		Label:      label,
		Commit:     commit,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Time:       time.Now().UTC().Format(time.RFC3339),
		Quick:      quick,
		Results:    results,
	}
}

// WriteJSON writes doc (an *StmDoc or *StmTrajectory) to path,
// indented, creating or truncating the file.
func WriteJSON(path string, doc any) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// LoadStmDoc reads path as either a bare StmDoc or a trajectory (in
// which case the "after" section is returned, falling back to
// "baseline" for a trajectory still awaiting its after run).
func LoadStmDoc(path string) (*StmDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch probe.Schema {
	case StmSchema:
		var d StmDoc
		if err := json.Unmarshal(b, &d); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &d, nil
	case TrajectorySchema:
		var t StmTrajectory
		if err := json.Unmarshal(b, &t); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if t.After != nil {
			return t.After, nil
		}
		if t.Baseline != nil {
			return t.Baseline, nil
		}
		return nil, fmt.Errorf("%s: trajectory has neither baseline nor after", path)
	default:
		return nil, fmt.Errorf("%s: unknown schema %q", path, probe.Schema)
	}
}

// ValidateStmDoc checks that a document is structurally sound: schema
// tagged, non-empty, every result named with positive N and finite
// timings. It is the CI well-formedness gate (never a timing check).
func ValidateStmDoc(d *StmDoc) error {
	if d.Schema != StmSchema {
		return fmt.Errorf("schema = %q, want %q", d.Schema, StmSchema)
	}
	if len(d.Results) == 0 {
		return fmt.Errorf("no results")
	}
	for _, r := range d.Results {
		if r.Name == "" {
			return fmt.Errorf("unnamed result")
		}
		if r.N == 0 {
			return fmt.Errorf("%s: N = 0", r.Name)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("%s: ns/op = %v", r.Name, r.NsPerOp)
		}
		if r.Commits == 0 {
			return fmt.Errorf("%s: no commits recorded", r.Name)
		}
	}
	return nil
}

// allocGated names the rows AllocGate judges and the absolute slack
// each is allowed. The hot-path allocation pins are structural promises
// (read-only: zero allocations; small-write: one box per Set), so the
// gate is absolute, not proportional — a half-alloc drift on a
// zero-alloc row IS the regression, however small it looks in percent.
var allocGated = map[string]float64{
	"read-only":   0.25,
	"small-write": 0.5,
}

// AllocGate fails if a gated microbench row's allocs/op regressed
// beyond its slack relative to the baseline. Rows absent from either
// document are skipped (the gate composes with partial suites); timing
// is never judged here — that is DiffStmDocs's advisory table.
func AllocGate(oldDoc, newDoc *StmDoc) error {
	byName := make(map[string]StmResult, len(oldDoc.Results))
	for _, r := range oldDoc.Results {
		byName[r.Name] = r
	}
	for _, nr := range newDoc.Results {
		slack, gated := allocGated[nr.Name]
		if !gated {
			continue
		}
		or, ok := byName[nr.Name]
		if !ok {
			continue
		}
		if nr.AllocsPerOp > or.AllocsPerOp+slack {
			return fmt.Errorf("%s: allocs/op %.2f exceeds baseline %.2f (+%.2f slack) — hot-path allocation regression",
				nr.Name, nr.AllocsPerOp, or.AllocsPerOp, slack)
		}
	}
	return nil
}

// DiffStmDocs renders a delta table between two runs, matching results
// by name. Positive deltas mean the new run is worse (more ns, more
// allocs); quiesce and abort counters are reported but not judged.
func DiffStmDocs(w io.Writer, oldDoc, newDoc *StmDoc) {
	byName := make(map[string]StmResult, len(oldDoc.Results))
	for _, r := range oldDoc.Results {
		byName[r.Name] = r
	}
	fmt.Fprintf(w, "%-18s %14s %14s %8s %12s   %s\n",
		"workload", "old ns/op", "new ns/op", "delta", "p99 old->new", "allocs/op old->new")
	for _, nr := range newDoc.Results {
		or, ok := byName[nr.Name]
		if !ok {
			fmt.Fprintf(w, "%-18s %14s %14.1f %8s %12s   (new workload)\n", nr.Name, "-", nr.NsPerOp, "-", "-")
			continue
		}
		pct := 100 * (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		p99 := "-"
		if or.TxP99Ns > 0 && nr.TxP99Ns > 0 {
			p99 = fmt.Sprintf("%.0f->%.0f", or.TxP99Ns, nr.TxP99Ns)
		} else if nr.TxP99Ns > 0 {
			p99 = fmt.Sprintf("-> %.0f", nr.TxP99Ns)
		}
		fmt.Fprintf(w, "%-18s %14.1f %14.1f %+7.1f%% %12s   %.2f -> %.2f\n",
			nr.Name, or.NsPerOp, nr.NsPerOp, pct, p99, or.AllocsPerOp, nr.AllocsPerOp)
	}
}
