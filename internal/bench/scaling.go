// Thread-scaling workloads behind `stmbench -suite scaling`: where
// stmbench.go measures per-transaction constant factors on fixed thread
// counts, this file measures how throughput moves as threads are added.
// Three workloads cover the transactional-map scaling story:
//
//   - map-read:  read-mostly operations on a pre-sized map — bucket
//     independence; adding threads must not add conflicts.
//   - map-write: insert/delete-heavy operations — every op moves the
//     map's size, so a map with a single global size Var serializes all
//     writers here (the hotspot this suite exists to expose), while
//     striped size counters keep disjoint-key writers conflict-free.
//   - resize-storm: monotonic fresh-key inserts into a deliberately
//     tiny map, forcing repeated load-factor-triggered resizes; the
//     deferred, chunked migration must stay live (throughput > 0 at
//     every thread count) and race/checker-clean.
//
// Each workload runs at every requested thread count and emits one
// StmResult per (workload, threads) pair, named "<workload>/<t>", into
// the same versioned JSON document as the hot-path suite, so scaling
// curves ride the existing benchdiff trajectory. On a single-core
// machine the curves collapse (no parallel speedup is physically
// available); the structural counters — aborts per op at t>1 — still
// distinguish a serializing map from a striped one.
package bench

import (
	"fmt"
	"runtime"
	"sort"

	"deferstm/internal/ds"
	"deferstm/internal/kv"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

// ScalingOptions configures a scaling-suite run.
type ScalingOptions struct {
	StmOptions
	// MaxThreads caps the thread counts (CI smoke runs use 2). 0 means
	// no cap beyond the default ladder.
	MaxThreads int
}

// ScalingThreadCounts returns the thread ladder the suite measures:
// 1, 2, 4, ... up to NumCPU (always including 1, 4 and NumCPU — the
// points BENCH_*.json trajectories compare), capped at max when max>0.
func ScalingThreadCounts(max int) []int {
	ncpu := runtime.NumCPU()
	set := map[int]bool{1: true, 2: true, 4: true, ncpu: true}
	for t := 8; t < ncpu; t *= 2 {
		set[t] = true
	}
	out := make([]int, 0, len(set))
	for t := range set {
		if max > 0 && t > max {
			continue
		}
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// RunScalingSuite executes the three scaling workloads across the
// thread ladder and returns one result per (workload, threads) pair.
func RunScalingSuite(opts ScalingOptions) []StmResult {
	counts := ScalingThreadCounts(opts.MaxThreads)
	kinds := []struct {
		name  string
		maxN  uint64
		setup func(threads int) (*stm.Runtime, func(n uint64))
	}{
		{name: "map-read", setup: setupMapRead},
		{name: "map-write", setup: setupMapWrite},
		// resize-storm inserts a fresh key per op; cap N so the
		// calibration loop cannot grow the map without bound (and so a
		// map without resize — the pre-resize baseline — finishes its
		// quadratic rounds in bounded time).
		{name: "resize-storm", maxN: 1 << 17, setup: setupResizeStorm},
	}
	out := make([]StmResult, 0, len(kinds)*len(counts))
	for _, k := range kinds {
		for _, t := range counts {
			w := stmWorkload{name: k.name + "/" + itoa(t), threads: t, maxN: k.maxN, setup: k.setup}
			var r StmResult
			withProcs(t, func() { r = measureStm(w, opts.StmOptions) })
			if opts.Logf != nil {
				opts.Logf("%-18s threads=%-2d %10.1f ns/op %7.2f allocs/op %12.0f commits/s aborts=%d",
					r.Name, r.Threads, r.NsPerOp, r.AllocsPerOp, r.CommitsPerSec, r.Aborts)
			}
			out = append(out, r)
		}
	}
	for _, lanes := range []int{1, 2, 4, 8} {
		for _, t := range walLaneThreadCounts(opts.MaxThreads) {
			w := stmWorkload{
				name:    fmt.Sprintf("wal-lanes-%d/%d", lanes, t),
				threads: t,
				setup:   setupWALLanes(lanes),
			}
			var r StmResult
			withProcs(t, func() { r = measureStm(w, opts.StmOptions) })
			if opts.Logf != nil {
				fpc := 0.0
				if r.WALRecords > 0 {
					fpc = float64(r.WALFsyncs) / float64(r.WALRecords)
				}
				opts.Logf("%-18s threads=%-2d %10.1f ns/op %12.0f commits/s %6.3f fsyncs/commit",
					r.Name, r.Threads, r.NsPerOp, r.CommitsPerSec, fpc)
			}
			out = append(out, r)
		}
	}
	return out
}

// walLaneThreadCounts is the connection ladder for the wal-lanes
// workloads: sparser than the map ladder (each rung pays real simulated
// fsync time) but always reaching 8, the point the shard-scaling
// acceptance compares — parallel lanes only separate from a single lane
// once several writers commit concurrently.
func walLaneThreadCounts(max int) []int {
	out := []int{1}
	for _, t := range []int{4, 8} {
		if max <= 0 || t <= max {
			out = append(out, t)
		}
	}
	return out
}

// setupWALLanes builds the shard-ladder workload: a durable KV store
// with the given number of WAL lanes over a page-cache-speed simulated
// disk, driven by windowed pipelining — each worker keeps up to 32
// commits in flight before blocking on the oldest token, the way a
// pipelined connection drives kvserver. Single-lane, this is the
// group-commit baseline (one fsync queue); with more lanes the same
// offered load splits across independent queues whose write and fsync
// sleeps overlap, which is the whole bet of the sharded store.
func setupWALLanes(lanes int) func(threads int) (*stm.Runtime, func(uint64)) {
	return func(threads int) (*stm.Runtime, func(uint64)) {
		fs := simio.NewFS(simio.PageCacheLatency())
		rt := stm.NewDefault()
		s, _, err := kv.Open(rt, wal.NewSimBackend(fs), kv.Options{Mode: kv.ModeGroup, Shards: lanes})
		if err != nil {
			panic(fmt.Sprintf("bench: kv.Open: %v", err))
		}
		value := "v-0123456789abcdef"
		const window = 32
		return rt, func(n uint64) {
			runParallel(threads, n, func(g int, per uint64) {
				rng := seedRng(g)
				pending := make([]uint64, 0, window)
				for i := uint64(0); i < per; i++ {
					key := fmt.Sprintf("k%03d", xorshift(&rng)%256)
					tok, err := s.Update(func(tx *stm.Tx, b *kv.Batch) error {
						b.Put(key, value)
						return nil
					})
					if err != nil {
						panic(fmt.Sprintf("bench: kv.Update: %v", err))
					}
					pending = append(pending, tok)
					if len(pending) >= window {
						s.WaitDurable(pending[0])
						pending = pending[1:]
					}
				}
				for _, tok := range pending {
					s.WaitDurable(tok)
				}
			})
		}
	}
}

// withProcs runs f with GOMAXPROCS raised to min(want, NumCPU),
// restoring the previous value afterwards. Raise-only: a ladder point
// measuring t goroutines needs up to t procs to scale, but lowering the
// user's setting for small points would change scheduler semantics
// mid-suite. Before this helper the whole scaling ladder ran — and its
// trajectory JSON was recorded — at whatever GOMAXPROCS the process
// happened to start with (famously 1), making the "scaling" curves
// time-slicing artifacts; each row now also records the value actually
// in effect (StmResult.GOMAXPROCS).
func withProcs(want int, f func()) {
	if ncpu := runtime.NumCPU(); want > ncpu {
		want = ncpu
	}
	prev := runtime.GOMAXPROCS(0)
	if want > prev {
		runtime.GOMAXPROCS(want)
		defer runtime.GOMAXPROCS(prev)
	}
	f()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

const (
	scalingKeyspace = 1 << 13 // distinct keys for the steady-state maps
	scalingBuckets  = 1 << 12 // pre-sized so the steady maps never resize
)

// setupMapRead: 90% Get / 10% overwrite Put on a fully populated,
// pre-sized map. Writers touch one bucket each; no size movement.
func setupMapRead(threads int) (*stm.Runtime, func(uint64)) {
	rt := stm.NewDefault()
	m := ds.NewHashMap[int](scalingBuckets)
	populate(rt, m, scalingKeyspace)
	return rt, func(n uint64) {
		runParallel(threads, n, func(g int, per uint64) {
			rng := seedRng(g)
			for i := uint64(0); i < per; i++ {
				k := int64(xorshift(&rng) % scalingKeyspace)
				if xorshift(&rng)%10 == 0 {
					_ = rt.Atomic(func(tx *stm.Tx) error {
						m.Put(tx, k, int(i))
						return nil
					})
				} else {
					_ = rt.Atomic(func(tx *stm.Tx) error {
						v, _ := m.Get(tx, k)
						sink = v
						return nil
					})
				}
			}
		})
	}
}

// setupMapWrite: 80% insert-or-delete toggles (every one moves the
// size) / 20% Get, over a half-populated, pre-sized map. With a global
// size Var this serializes completely; with striped counters the
// toggles conflict only on genuine same-stripe collisions.
func setupMapWrite(threads int) (*stm.Runtime, func(uint64)) {
	rt := stm.NewDefault()
	m := ds.NewHashMap[int](scalingBuckets)
	populate(rt, m, scalingKeyspace/2)
	return rt, func(n uint64) {
		runParallel(threads, n, func(g int, per uint64) {
			rng := seedRng(g)
			for i := uint64(0); i < per; i++ {
				k := int64(xorshift(&rng) % scalingKeyspace)
				if xorshift(&rng)%5 == 0 {
					_ = rt.Atomic(func(tx *stm.Tx) error {
						v, _ := m.Get(tx, k)
						sink = v
						return nil
					})
				} else {
					_ = rt.Atomic(func(tx *stm.Tx) error {
						if _, ok := m.Get(tx, k); ok {
							m.Delete(tx, k)
						} else {
							m.Put(tx, k, int(i))
						}
						return nil
					})
				}
			}
		})
	}
}

// setupResizeStorm: every op inserts a fresh key (per-thread disjoint
// ranges) into a map born at the minimum bucket count, driving it
// through ceaseless load-factor resizes. A fresh map per measured run
// keeps the calibration loop from compounding growth across rounds.
func setupResizeStorm(threads int) (*stm.Runtime, func(uint64)) {
	rt := stm.NewDefault()
	return rt, func(n uint64) {
		m := ds.NewHashMap[int](16)
		runParallel(threads, n, func(g int, per uint64) {
			base := int64(g) << 40
			for i := uint64(0); i < per; i++ {
				k := base + int64(i)
				_ = rt.Atomic(func(tx *stm.Tx) error {
					m.Put(tx, k, 1)
					return nil
				})
			}
		})
	}
}

func populate(rt *stm.Runtime, m *ds.HashMap[int], n int) {
	const chunk = 256
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if err := rt.Atomic(func(tx *stm.Tx) error {
			for k := lo; k < hi; k++ {
				m.Put(tx, int64(k), k)
			}
			return nil
		}); err != nil {
			panic("bench: populate: " + err.Error())
		}
	}
}

func seedRng(g int) uint64 {
	return uint64(g)*0x9E3779B97F4A7C15 + 0x123456789
}

func xorshift(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}
