// Package bench is the measurement harness shared by the benchmark
// binaries (cmd/iobench, cmd/dedupbench) and the root bench_test.go: it
// runs repeated trials, aggregates mean and standard deviation, and
// renders the same rows/series the paper's figures report, as aligned
// text tables or CSV.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one measurement: Y (mean) at X, with standard deviation Dev
// over the trials.
type Point struct {
	X   float64
	Y   float64
	Dev float64
}

// Series is a named curve, e.g. "defer" or "FGL" in Figure 2.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y, dev float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Dev: dev})
}

// At returns the Y value at x (NaN if absent).
func (s *Series) At(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// Table is a figure-shaped result set: one row per X value, one column
// per series.
type Table struct {
	Title  string
	XLabel string // e.g. "threads"
	YLabel string // e.g. "execution time (s)"
	Series []*Series
}

// NewTable creates an empty table.
func NewTable(title, xLabel, yLabel string) *Table {
	return &Table{Title: title, XLabel: xLabel, YLabel: yLabel}
}

// Series returns (creating if needed) the named series.
func (t *Table) SeriesByName(name string) *Series {
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	s := &Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}

// xs returns the sorted union of X values across series.
func (t *Table) xs() []float64 {
	set := map[float64]bool{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			set[p.X] = true
		}
	}
	out := make([]float64, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Float64s(out)
	return out
}

func formatX(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Render writes an aligned text table: header row of series names, one
// row per X, cells "mean±dev".
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s vs %s\n", t.Title, t.YLabel, t.XLabel)
	cols := make([]string, 0, len(t.Series)+1)
	cols = append(cols, t.XLabel)
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	rows := [][]string{cols}
	for _, x := range t.xs() {
		row := []string{formatX(x)}
		for _, s := range t.Series {
			y := s.At(x)
			if math.IsNaN(y) {
				row = append(row, "-")
				continue
			}
			var dev float64
			for _, p := range s.Points {
				if p.X == x {
					dev = p.Dev
				}
			}
			if dev > 0 {
				row = append(row, fmt.Sprintf("%.3f±%.3f", y, dev))
			} else {
				row = append(row, fmt.Sprintf("%.3f", y))
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		if ri == 0 {
			fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(b.String(), " "))))
		}
	}
}

// RenderCSV writes the table as CSV (x, then one column per series mean,
// then one per series dev).
func (t *Table) RenderCSV(w io.Writer) {
	cols := []string{t.XLabel}
	for _, s := range t.Series {
		cols = append(cols, s.Name)
	}
	for _, s := range t.Series {
		cols = append(cols, s.Name+"_dev")
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, x := range t.xs() {
		row := []string{formatX(x)}
		for _, s := range t.Series {
			y := s.At(x)
			if math.IsNaN(y) {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%.6f", y))
			}
		}
		for _, s := range t.Series {
			var dev float64
			found := false
			for _, p := range s.Points {
				if p.X == x {
					dev, found = p.Dev, true
				}
			}
			if found {
				row = append(row, fmt.Sprintf("%.6f", dev))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// MeanStd returns the mean and (population) standard deviation.
func MeanStd(samples []float64) (mean, std float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	for _, s := range samples {
		std += (s - mean) * (s - mean)
	}
	std = math.Sqrt(std / float64(len(samples)))
	return mean, std
}

// TimeTrials runs fn `trials` times and returns per-trial wall-clock
// seconds. The paper reports the average of 5 trials.
func TimeTrials(trials int, fn func()) []float64 {
	if trials < 1 {
		trials = 1
	}
	out := make([]float64, trials)
	for i := range out {
		start := time.Now()
		fn()
		out[i] = time.Since(start).Seconds()
	}
	return out
}

// Measure runs fn `trials` times and adds the aggregated point to series
// s at x.
func Measure(s *Series, x float64, trials int, fn func()) {
	mean, dev := MeanStd(TimeTrials(trials, fn))
	s.Add(x, mean, dev)
}

// Speedup returns a derived series base/other at matching X values
// (e.g. "times faster than the TM baseline" in Section 6.2).
func Speedup(name string, base, other *Series) *Series {
	out := &Series{Name: name}
	for _, p := range base.Points {
		o := other.At(p.X)
		if !math.IsNaN(o) && o > 0 {
			out.Add(p.X, p.Y/o, 0)
		}
	}
	return out
}
