package bench

import (
	"context"
	"os/exec"
	"strings"
	"time"
)

// GitCommit best-effort resolves the working tree's HEAD short hash for
// document metadata and build-info gauges; empty when git (or a repo)
// is unavailable. Shared by cmd/stmbench, cmd/kvbench and the metrics
// endpoints so every artifact of one build carries the same identifier.
func GitCommit() string {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := exec.CommandContext(ctx, "git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
