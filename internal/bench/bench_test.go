package bench

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Errorf("mean = %v", m)
	}
	if math.Abs(s-2) > 1e-9 {
		t.Errorf("std = %v", s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Error("empty samples should be 0,0")
	}
}

func TestSeriesAddAt(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(1, 10, 0.5)
	s.Add(2, 20, 0)
	if s.At(1) != 10 || s.At(2) != 20 {
		t.Error("At lookup wrong")
	}
	if !math.IsNaN(s.At(3)) {
		t.Error("missing X should be NaN")
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Fig 2(a)", "threads", "execution time (s)")
	d := tbl.SeriesByName("defer")
	c := tbl.SeriesByName("CGL")
	d.Add(1, 1.25, 0.1)
	d.Add(2, 0.7, 0)
	c.Add(1, 1.0, 0)
	c.Add(4, 1.1, 0)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Fig 2(a)", "threads", "defer", "CGL", "1.250±0.100", "0.700", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// SeriesByName returns the same series on re-lookup.
	if tbl.SeriesByName("defer") != d {
		t.Error("SeriesByName created a duplicate")
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := NewTable("t", "x", "y")
	a := tbl.SeriesByName("a")
	a.Add(1, 2.5, 0.25)
	var sb strings.Builder
	tbl.RenderCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "x,a,a_dev" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,2.5") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestTimeTrialsAndMeasure(t *testing.T) {
	n := 0
	samples := TimeTrials(3, func() { n++ })
	if len(samples) != 3 || n != 3 {
		t.Errorf("trials = %d, n = %d", len(samples), n)
	}
	if TimeTrials(0, func() {}) == nil {
		t.Error("zero trials should clamp to 1")
	}
	s := &Series{Name: "m"}
	Measure(s, 4, 2, func() {})
	if len(s.Points) != 1 || s.Points[0].X != 4 {
		t.Errorf("Measure points = %+v", s.Points)
	}
}

func TestSpeedup(t *testing.T) {
	base := &Series{Name: "stm"}
	base.Add(8, 20, 0)
	best := &Series{Name: "best"}
	best.Add(8, 2, 0)
	sp := Speedup("stm/best", base, best)
	if sp.At(8) != 10 {
		t.Errorf("speedup = %v, want 10", sp.At(8))
	}
	// Missing or zero denominators are skipped.
	base.Add(16, 5, 0)
	sp = Speedup("s", base, best)
	if len(sp.Points) != 1 {
		t.Errorf("points = %d", len(sp.Points))
	}
}

func TestFormatX(t *testing.T) {
	if formatX(4) != "4" || formatX(2.5) != "2.5" {
		t.Error("formatX wrong")
	}
}
