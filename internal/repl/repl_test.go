package repl

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"deferstm/internal/kv"
	"deferstm/internal/server"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

// primary is one sim-backed primary: store + serving listener.
type primary struct {
	fs    *simio.FS
	store *kv.Store
	srv   *server.Server
	addr  string
	done  chan error
}

func startPrimary(t *testing.T, fs *simio.FS, kopts kv.Options) *primary {
	t.Helper()
	store, _, err := kv.Open(stm.NewDefault(), wal.NewSimBackend(fs), kopts)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(store, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &primary{fs: fs, store: store, srv: srv, addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { p.done <- srv.Serve(ln) }()
	return p
}

// stop tears the primary down; the store stays usable for comparisons.
func (p *primary) stop(t *testing.T) {
	t.Helper()
	if err := p.srv.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
	if err := <-p.done; err != nil {
		t.Errorf("serve: %v", err)
	}
}

func startReplica(t *testing.T, ctx context.Context, addr string) *Replica {
	t.Helper()
	r := New(stm.NewDefault(), Options{
		Primary: addr,
		Backoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
		Logf: t.Logf,
	})
	runDone := make(chan struct{})
	go func() { defer close(runDone); r.Run(ctx) }()
	t.Cleanup(func() { <-runDone })
	return r
}

func contents(t *testing.T, s *kv.Store) map[string]string {
	t.Helper()
	out := map[string]string{}
	if err := s.Scan(func(k, v string) bool { out[k] = v; return true }); err != nil {
		t.Fatal(err)
	}
	return out
}

func sameContents(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// waitConverged polls until the replica's store matches want.
func waitConverged(t *testing.T, r *Replica, want map[string]string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if rs := r.Store(); rs != nil && sameContents(contents(t, rs), want) {
			return
		}
		if time.Now().After(deadline) {
			st := r.Status()
			t.Fatalf("replica never converged; status %+v\nreplica: %v\nwant:    %v",
				st, contents(t, r.Store()), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicaEndToEnd: a 2-lane primary takes single-lane writes and
// cross-shard batches; a fresh replica catches up to an identical image
// and its per-lane cursors reach the primary's durable watermarks.
func TestReplicaEndToEnd(t *testing.T) {
	p := startPrimary(t, simio.NewFS(simio.Latency{}), kv.Options{Mode: kv.ModeGroup, Shards: 2})
	defer p.store.Close()
	defer p.stop(t)

	var last uint64
	for i := 0; i < 20; i++ {
		tok, err := p.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			b.Put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
			if i%4 == 3 {
				// A deliberate cross-shard batch: enough keys that both
				// lanes are touched with overwhelming probability.
				for j := 0; j < 6; j++ {
					b.Put(fmt.Sprintf("x%02d-%d", i, j), fmt.Sprintf("b%d", i))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = tok
	}
	p.store.WaitDurable(last)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := startReplica(t, ctx, p.addr)
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := r.WaitCaughtUp(wctx); err != nil {
		t.Fatalf("catch-up: %v (status %+v)", err, r.Status())
	}

	want := contents(t, p.store)
	waitConverged(t, r, want)

	st := r.Status()
	if st.Lanes != 2 {
		t.Fatalf("lanes = %d", st.Lanes)
	}
	if st.AppliedBatches == 0 {
		t.Fatal("no cross-shard batch crossed the stream")
	}
	if st.PendingRecords != 0 {
		t.Fatalf("%d records still pending after convergence", st.PendingRecords)
	}
	for lane, log := range p.store.Logs() {
		if st.Applied[lane] < log.DurableWatermark() {
			t.Fatalf("lane %d applied %d < primary durable %d", lane, st.Applied[lane], log.DurableWatermark())
		}
	}
	// The replica's store is read via the snapshot path everywhere in
	// this test; it must never have needed a validating fallback.
	if st.SnapshotFallbacks != 0 {
		t.Fatalf("%d snapshot fallbacks on replica reads", st.SnapshotFallbacks)
	}
}

// TestReplicaCheckpointBootstrap: a fresh replica joining a primary that
// already checkpointed bootstraps from the blob and streams only the
// records after it — and the record at exactly the checkpoint's upTo is
// NOT shipped again.
func TestReplicaCheckpointBootstrap(t *testing.T) {
	p := startPrimary(t, simio.NewFS(simio.Latency{}), kv.Options{Mode: kv.ModeGroup})
	defer p.store.Close()
	defer p.stop(t)

	for i := 0; i < 10; i++ {
		lsn, err := p.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			b.Put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		p.store.WaitDurable(lsn)
	}
	upTo, err := p.store.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if upTo != 10 {
		t.Fatalf("checkpoint upTo = %d, want 10", upTo)
	}
	var last uint64
	for i := 10; i < 15; i++ {
		last, err = p.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			b.Put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	p.store.WaitDurable(last)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := startReplica(t, ctx, p.addr)
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := r.WaitCaughtUp(wctx); err != nil {
		t.Fatalf("catch-up: %v (status %+v)", err, r.Status())
	}
	waitConverged(t, r, contents(t, p.store))

	st := r.Status()
	if st.AppliedRecords != 5 {
		t.Fatalf("applied %d records, want 5 (checkpoint must cover 1..10, and 10 must not be resent)", st.AppliedRecords)
	}
	if cur := r.Cursors(); cur[0] != 15 {
		t.Fatalf("cursor = %d, want 15", cur[0])
	}
}

// TestReplicaPrimaryCrashRestart is the partition + torn-tail edge: the
// replica catches up, the primary is cut off and crashes mid-append
// (torn tail on disk, never watermarked, never shipped), a new primary
// recovers from the crash image on a fresh address, and the replica —
// repointed and kicked — resumes from its cursors and converges on the
// recovered history plus new writes.
func TestReplicaPrimaryCrashRestart(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	kopts := kv.Options{Mode: kv.ModeGroup, Shards: 2, WAL: wal.Options{SegmentBytes: 256}}
	p := startPrimary(t, fs, kopts)

	var last uint64
	for i := 0; i < 12; i++ {
		lsn, err := p.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			b.Put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
			if i%5 == 4 {
				for j := 0; j < 4; j++ {
					b.Put(fmt.Sprintf("x%02d-%d", i, j), "batch")
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	p.store.WaitDurable(last)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := startReplica(t, ctx, p.addr)
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := r.WaitCaughtUp(wctx); err != nil {
		t.Fatalf("catch-up: %v (status %+v)", err, r.Status())
	}
	preCrash := contents(t, p.store)
	waitConverged(t, r, preCrash)
	curBefore := r.Cursors()

	// Partition: stop serving, THEN tear a write. The stream is already
	// dead, so the torn record was never shipped — the replica cannot be
	// ahead of what the crash image recovers to.
	p.stop(t)
	fs.SetCrashPlan(simio.CrashPlan{Point: simio.CrashMidWrite, N: 1})
	if _, err := p.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
		b.Put("doomed", "torn")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !fs.Crashed() {
		t.Fatal("crash plan never fired")
	}
	img := fs.CrashImage()
	if err := p.store.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover a new primary from the crash image on a new address.
	fs2 := simio.FSFromImage(img, simio.Latency{}, 1)
	p2 := startPrimary(t, fs2, kopts)
	defer p2.store.Close()
	defer p2.stop(t)
	if got := contents(t, p2.store); !sameContents(got, preCrash) {
		t.Fatalf("recovered primary diverged from acked history:\n got %v\nwant %v", got, preCrash)
	}

	for i := 0; i < 6; i++ {
		lsn, err := p2.store.Update(func(tx *stm.Tx, b *kv.Batch) error {
			b.Put(fmt.Sprintf("post%d", i), "after-restart")
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	p2.store.WaitDurable(last)

	r.SetPrimary(p2.addr)
	r.Kick()
	waitConverged(t, r, contents(t, p2.store))

	st := r.Status()
	if st.Reconnects == 0 {
		t.Fatal("replica converged without ever reconnecting?")
	}
	for lane := range curBefore {
		if got := r.Cursors()[lane]; got < curBefore[lane] {
			t.Fatalf("lane %d cursor went backwards: %d -> %d", lane, curBefore[lane], got)
		}
	}
}
