// Package repl implements WAL shipping: a follower process that
// bootstraps from the primary's latest checkpoint, tails every WAL lane
// as a lane-tagged record stream over the kvserver transport, and
// replays the records into its own (WAL-less) kv.Store — applying a
// cross-shard batch only once every lane in its GSN vector has
// arrived, the replica-side mirror of the primary's multi-lane atomic
// deferral. The replica's store is always a prefix-consistent image of
// the primary's durable history: per lane a watermark-covered prefix,
// and all-or-nothing across lanes for cross-shard batches.
package repl

import (
	"fmt"
	"sync/atomic"
	"time"

	"deferstm/internal/kv"
	"deferstm/internal/obs"
	"deferstm/internal/server"
	"deferstm/internal/stm"
)

// pendingRec is one shipped record held back until it can apply: for a
// single-lane record that is immediately, for a cross-shard batch once
// every sibling lane's record (same GSN) is available.
type pendingRec struct {
	lsn uint64
	gsn uint64
	pts []kv.LanePoint
	ops []kv.Op
}

// engine owns the replica's apply state. Frames are fed by exactly one
// goroutine (the stream loop); the atomic fields exist so metrics and
// status snapshots can read concurrently.
type engine struct {
	rt    *stm.Runtime
	store *kv.Store
	lanes int

	applied []atomic.Uint64 // per-lane applied LSN (the resume cursors)
	horizon []atomic.Uint64 // per-lane primary durable watermark (WM frames)
	wmSeen  []bool          // lane has received ≥1 watermark frame

	gsnHorizon     atomic.Uint64 // highest GSN applied atomically
	appliedRecords atomic.Uint64
	appliedBatches atomic.Uint64
	pendingRecords atomic.Int64

	q      [][]pendingRec // per-lane hold-back queues (stream goroutine only)
	probes []lagProbe     // outstanding per-lane lag measurements

	lag *obs.Histogram
}

// lagProbe prices replication lag in wall time: a watermark frame
// carries its send instant; when the applied cursor reaches that mark
// the elapsed time is one lag sample.
type lagProbe struct {
	wm    uint64
	sent  time.Time
	armed bool
}

func newEngine(rt *stm.Runtime, store *kv.Store, lanes int, lag *obs.Histogram) *engine {
	return &engine{
		rt: rt, store: store, lanes: lanes,
		applied: make([]atomic.Uint64, lanes),
		horizon: make([]atomic.Uint64, lanes),
		wmSeen:  make([]bool, lanes),
		q:       make([][]pendingRec, lanes),
		probes:  make([]lagProbe, lanes),
		lag:     lag,
	}
}

// reset drops every held-back record. Called on disconnect: the applied
// cursors are the hello's resume point, so anything not yet applied
// will be shipped again.
func (e *engine) reset() {
	for lane := range e.q {
		e.q[lane] = e.q[lane][:0]
		e.probes[lane] = lagProbe{}
	}
	e.pendingRecords.Store(0)
}

// cursors snapshots the per-lane applied LSNs.
func (e *engine) cursors() []uint64 {
	out := make([]uint64, e.lanes)
	for i := range out {
		out[i] = e.applied[i].Load()
	}
	return out
}

// caughtUp reports whether every lane has heard a watermark and applied
// up to it — the replica is serving the primary's current durable cut.
func (e *engine) caughtUp() bool {
	for lane := 0; lane < e.lanes; lane++ {
		if !e.wmSeen[lane] || e.applied[lane].Load() < e.horizon[lane].Load() {
			return false
		}
	}
	return true
}

// frame applies one stream frame. Errors are protocol or state
// corruption: the caller drops the connection and re-handshakes from
// the applied cursors.
func (e *engine) frame(f server.ReplFrame) error {
	if f.Lane < 0 || f.Lane >= e.lanes {
		return fmt.Errorf("repl: frame names lane %d of %d", f.Lane, e.lanes)
	}
	switch f.Kind {
	case server.ReplCheckpoint:
		if err := e.checkpointFrame(f.Lane, f.LSN, f.Payload); err != nil {
			return err
		}
	case server.ReplRecord:
		if err := e.recordFrame(f.Lane, f.LSN, f.Payload); err != nil {
			return err
		}
	case server.ReplWatermark:
		e.watermarkFrame(f)
		return nil // no apply progress; probes fire from applies
	default:
		return fmt.Errorf("repl: unknown frame kind %d", f.Kind)
	}
	if err := e.drain(); err != nil {
		return err
	}
	e.fireProbes()
	return nil
}

func (e *engine) checkpointFrame(lane int, upTo uint64, blob []byte) error {
	if upTo <= e.applied[lane].Load() {
		return nil // stale base; everything it covers is already applied
	}
	kvs, err := kv.DecodeSnapshotBlob(blob)
	if err != nil {
		return fmt.Errorf("repl: lane %d checkpoint: %w", lane, err)
	}
	err = e.rt.Atomic(func(tx *stm.Tx) error {
		return e.store.ResetShardContents(tx, lane, kvs)
	})
	if err != nil {
		return err
	}
	e.applied[lane].Store(upTo)
	// Held-back records the base now covers are redundant (their
	// effects are inside the blob — checkpoints never contain partial
	// cross-shard batches, so dropping them cannot orphan a sibling).
	kept := e.q[lane][:0]
	for _, r := range e.q[lane] {
		if r.lsn > upTo {
			kept = append(kept, r)
		} else {
			e.pendingRecords.Add(-1)
		}
	}
	e.q[lane] = kept
	return nil
}

func (e *engine) recordFrame(lane int, lsn uint64, payload []byte) error {
	if lsn <= e.applied[lane].Load() {
		return nil // resend overlap after a re-base
	}
	next := e.applied[lane].Load() + 1
	if n := len(e.q[lane]); n > 0 {
		next = e.q[lane][n-1].lsn + 1
	}
	if lsn != next {
		return fmt.Errorf("repl: lane %d record gap: got LSN %d, expected %d", lane, lsn, next)
	}
	gsn, pts, ops, err := e.store.DecodeLaneRecord(payload)
	if err != nil {
		return fmt.Errorf("repl: lane %d record %d: %w", lane, lsn, err)
	}
	e.q[lane] = append(e.q[lane], pendingRec{lsn: lsn, gsn: gsn, pts: pts, ops: ops})
	e.pendingRecords.Add(1)
	return nil
}

func (e *engine) watermarkFrame(f server.ReplFrame) {
	e.horizon[f.Lane].Store(f.LSN)
	e.wmSeen[f.Lane] = true
	if len(f.Payload) == 8 {
		sent := time.Unix(0, int64(leU64(f.Payload)))
		if e.applied[f.Lane].Load() >= f.LSN {
			e.lag.Observe(time.Since(sent))
		} else {
			e.probes[f.Lane] = lagProbe{wm: f.LSN, sent: sent, armed: true}
		}
	}
}

func (e *engine) fireProbes() {
	for lane := range e.probes {
		p := &e.probes[lane]
		if p.armed && e.applied[lane].Load() >= p.wm {
			e.lag.Observe(time.Since(p.sent))
			p.armed = false
		}
	}
}

// drain applies every head record that is allowed to apply, to a fixed
// point. Single-lane records apply immediately in lane-LSN order. A
// cross-shard batch head applies only when every (lane, LSN) in its
// vector is satisfied — already applied (or folded into a checkpoint
// base), or sitting at that lane's queue head — and then all its
// still-pending lane records commit in ONE transaction: readers of the
// replica can never observe half a batch, exactly as on the primary,
// where the batch's lanes flushed under one multi-lock deferral.
//
// The fixed-point loop terminates: every pass either applies a record
// (finitely many are queued) or changes nothing. It cannot deadlock
// across lanes because GSNs are assigned monotonically with each
// lane's LSNs — two batches cannot be each other's missing sibling in
// opposite orders.
func (e *engine) drain() error {
	for changed := true; changed; {
		changed = false
		for lane := 0; lane < e.lanes; lane++ {
			for len(e.q[lane]) > 0 {
				head := e.q[lane][0]
				if head.lsn <= e.applied[lane].Load() {
					e.pop(lane)
					changed = true
					continue
				}
				if len(head.pts) <= 1 {
					err := e.rt.Atomic(func(tx *stm.Tx) error {
						return e.store.ApplyReplicated(tx, lane, head.ops)
					})
					if err != nil {
						return err
					}
					e.applied[lane].Store(head.lsn)
					e.pop(lane)
					e.appliedRecords.Add(1)
					if head.gsn > e.gsnHorizon.Load() {
						e.gsnHorizon.Store(head.gsn)
					}
					changed = true
					continue
				}
				ready, err := e.batchReady(lane, head)
				if err != nil {
					return err
				}
				if !ready {
					break // lane stalls until the missing sibling arrives
				}
				if err := e.applyBatch(head); err != nil {
					return err
				}
				changed = true
			}
		}
	}
	return nil
}

func (e *engine) pop(lane int) {
	e.q[lane] = e.q[lane][1:]
	e.pendingRecords.Add(-1)
}

// batchReady reports whether every lane point of a cross-shard batch is
// satisfied: applied already, or pending at its lane's queue head with
// the matching GSN.
func (e *engine) batchReady(lane int, head pendingRec) (bool, error) {
	for _, p := range head.pts {
		if p.Lane == lane {
			continue
		}
		if p.Lane < 0 || p.Lane >= e.lanes {
			return false, fmt.Errorf("repl: batch gsn %d names lane %d of %d", head.gsn, p.Lane, e.lanes)
		}
		if p.LSN <= e.applied[p.Lane].Load() {
			continue
		}
		if len(e.q[p.Lane]) == 0 || e.q[p.Lane][0].lsn != p.LSN {
			return false, nil
		}
		if e.q[p.Lane][0].gsn != head.gsn {
			return false, fmt.Errorf("repl: lane %d LSN %d carries gsn %d, sibling expected %d",
				p.Lane, p.LSN, e.q[p.Lane][0].gsn, head.gsn)
		}
	}
	return true, nil
}

// applyBatch commits every still-pending lane record of the batch in
// one transaction and advances their cursors.
func (e *engine) applyBatch(head pendingRec) error {
	type part struct {
		lane int
		rec  pendingRec
	}
	parts := make([]part, 0, len(head.pts))
	for _, p := range head.pts {
		if p.LSN <= e.applied[p.Lane].Load() {
			continue // that lane's slice is inside a checkpoint base
		}
		parts = append(parts, part{lane: p.Lane, rec: e.q[p.Lane][0]})
	}
	err := e.rt.Atomic(func(tx *stm.Tx) error {
		for _, pt := range parts {
			if err := e.store.ApplyReplicated(tx, pt.lane, pt.rec.ops); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, pt := range parts {
		e.applied[pt.lane].Store(pt.rec.lsn)
		e.pop(pt.lane)
		e.appliedRecords.Add(1)
	}
	e.appliedBatches.Add(1)
	if head.gsn > e.gsnHorizon.Load() {
		e.gsnHorizon.Store(head.gsn)
	}
	return nil
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
