package repl

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"deferstm/internal/kv"
	"deferstm/internal/obs"
	"deferstm/internal/server"
	"deferstm/internal/stm"
)

// Options configures a Replica. Primary is required.
type Options struct {
	// Primary is the kvserver address to stream from. It can be changed
	// at runtime with SetPrimary (the next (re)connect uses it).
	Primary string
	// Registry, when non-nil, receives the deferstm_repl_* instruments.
	Registry *obs.Registry
	// Logf, when non-nil, receives one line per stream lifecycle event.
	Logf func(format string, args ...any)
	// MaxFrame bounds one stream frame. 0 means server.DefaultMaxFrame.
	// Checkpoint blobs ride single frames, so this must exceed the
	// primary's largest lane snapshot.
	MaxFrame int
	// Backoff and MaxBackoff bound the reconnect backoff (exponential,
	// reset after a stream that shipped frames). 0 means 50ms / 5s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Buckets sizes the replica store's hash table. 0 means 1024.
	Buckets int
}

func (o Options) maxFrame() int {
	if o.MaxFrame <= 0 {
		return server.DefaultMaxFrame
	}
	return o.MaxFrame
}

func (o Options) backoff() (time.Duration, time.Duration) {
	lo, hi := o.Backoff, o.MaxBackoff
	if lo <= 0 {
		lo = 50 * time.Millisecond
	}
	if hi <= 0 {
		hi = 5 * time.Second
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Status is one observation of the replica's replication state (the
// kvreplica -statusfile payload).
type Status struct {
	Lanes             int      `json:"lanes"`
	Applied           []uint64 `json:"applied_lsn"`
	Horizon           []uint64 `json:"horizon_lsn"`
	GSNHorizon        uint64   `json:"gsn_horizon"`
	AppliedRecords    uint64   `json:"applied_records"`
	AppliedBatches    uint64   `json:"applied_batches"`
	PendingRecords    int64    `json:"pending_records"`
	BytesShipped      uint64   `json:"bytes_shipped"`
	Reconnects        uint64   `json:"reconnects"`
	CaughtUp          bool     `json:"caught_up"`
	LagP50Ns          float64  `json:"lag_p50_ns"`
	LagP99Ns          float64  `json:"lag_p99_ns"`
	LagSamples        uint64   `json:"lag_samples"`
	SnapshotReads     uint64   `json:"snapshot_reads"`
	SnapshotFallbacks uint64   `json:"snapshot_fallbacks"`
}

// Replica tails a primary's WAL lanes into its own store. Create with
// New, drive with Run (blocks until ctx ends), read with Store — a
// normal kv.Store in ModeNone that the local server can serve GET/Scan
// from while Run keeps applying behind it.
type Replica struct {
	rt   *stm.Runtime
	opts Options

	mu      sync.Mutex
	primary string
	conn    net.Conn

	stateMu sync.Mutex
	store   *kv.Store
	eng     *engine

	ready    chan struct{} // closed once the store exists (first hello)
	caughtUp chan struct{} // closed once every lane applied its horizon

	reconnects   atomic.Uint64
	bytesShipped atomic.Uint64
	lag          *obs.Histogram
	regOnce      sync.Once
}

// New builds a replica on rt (its own runtime, independent of any
// primary in the same process). Run starts the stream.
func New(rt *stm.Runtime, opts Options) *Replica {
	r := &Replica{
		rt:       rt,
		opts:     opts,
		primary:  opts.Primary,
		ready:    make(chan struct{}),
		caughtUp: make(chan struct{}),
	}
	r.lag = opts.Registry.NewHistogram("deferstm_repl_lag_seconds",
		"Watermark publish on the primary to the same LSN applied here.")
	opts.Registry.Counter("deferstm_repl_bytes_shipped_total",
		"Stream frame bytes received.", func() uint64 { return r.bytesShipped.Load() })
	opts.Registry.Counter("deferstm_repl_reconnects_total",
		"Stream disconnects (each one is followed by a reconnect attempt).",
		func() uint64 { return r.reconnects.Load() })
	return r
}

// SetPrimary changes the address the next (re)connect dials.
func (r *Replica) SetPrimary(addr string) {
	r.mu.Lock()
	r.primary = addr
	r.mu.Unlock()
}

// Primary returns the current primary address.
func (r *Replica) Primary() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary
}

// Kick drops the current stream connection, forcing a reconnect and
// re-handshake from the applied cursors — fault injection for
// partition tests, and the way to make SetPrimary take effect now.
func (r *Replica) Kick() {
	r.mu.Lock()
	c := r.conn
	r.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (r *Replica) setConn(c net.Conn) {
	r.mu.Lock()
	r.conn = c
	r.mu.Unlock()
}

// Store returns the replica's store, nil before the first successful
// handshake (WaitReady blocks for exactly that).
func (r *Replica) Store() *kv.Store {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	return r.store
}

// WaitReady blocks until the store exists (lane count learned from the
// first hello) or ctx ends.
func (r *Replica) WaitReady(ctx context.Context) error {
	select {
	case <-r.ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WaitCaughtUp blocks until the replica has, at least once, applied
// every lane up to a received watermark — initial catch-up complete;
// serve reads after this and they are LastDurable-consistent.
func (r *Replica) WaitCaughtUp(ctx context.Context) error {
	select {
	case <-r.caughtUp:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cursors snapshots the per-lane applied LSNs (nil before ready).
func (r *Replica) Cursors() []uint64 {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	if r.eng == nil {
		return nil
	}
	return r.eng.cursors()
}

// Status snapshots the replication state.
func (r *Replica) Status() Status {
	st := Status{
		BytesShipped: r.bytesShipped.Load(),
		Reconnects:   r.reconnects.Load(),
	}
	hs := r.lag.Snapshot()
	st.LagP50Ns, st.LagP99Ns, st.LagSamples = hs.Quantile(0.50), hs.Quantile(0.99), hs.Count
	rs := r.rt.Snapshot()
	st.SnapshotReads, st.SnapshotFallbacks = rs.SnapshotReads, rs.SnapshotFallbacks
	select {
	case <-r.caughtUp:
		st.CaughtUp = true
	default:
	}
	r.stateMu.Lock()
	eng := r.eng
	r.stateMu.Unlock()
	if eng != nil {
		st.Lanes = eng.lanes
		st.Applied = eng.cursors()
		st.Horizon = make([]uint64, eng.lanes)
		for i := range st.Horizon {
			st.Horizon[i] = eng.horizon[i].Load()
		}
		st.GSNHorizon = eng.gsnHorizon.Load()
		st.AppliedRecords = eng.appliedRecords.Load()
		st.AppliedBatches = eng.appliedBatches.Load()
		st.PendingRecords = eng.pendingRecords.Load()
	}
	return st
}

func (r *Replica) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// Run connects, streams, and reconnects with exponential backoff until
// ctx ends. A stream that shipped at least one frame resets the
// backoff; the applied cursors survive disconnects, so every
// re-handshake resumes exactly where the replica's state left off.
func (r *Replica) Run(ctx context.Context) error {
	lo, hi := r.opts.backoff()
	backoff := lo
	for {
		frames, err := r.streamOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		r.reconnects.Add(1)
		if frames > 0 {
			backoff = lo
		}
		r.logf("repl: stream ended after %d frames: %v (reconnect in %v)", frames, err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > hi {
			backoff = hi
		}
	}
}

// streamOnce runs one connection: dial, hello with the applied cursors,
// then apply frames until the stream breaks.
func (r *Replica) streamOnce(ctx context.Context) (int, error) {
	d := net.Dialer{Timeout: 3 * time.Second}
	nc, err := d.DialContext(ctx, "tcp", r.Primary())
	if err != nil {
		return 0, err
	}
	defer nc.Close()
	r.setConn(nc)
	defer r.setConn(nil)
	stop := context.AfterFunc(ctx, func() { nc.Close() })
	defer stop()

	hello := server.Request{Op: server.OpReplHello, ID: 1, Cursors: r.Cursors()}
	if err := server.WriteFrame(nc, server.EncodeRequest(hello)); err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	payload, err := server.ReadFrame(br, r.opts.maxFrame())
	if err != nil {
		return 0, err
	}
	resp, err := server.DecodeResponse(payload)
	if err != nil {
		return 0, err
	}
	if resp.Status != server.StatusOK || resp.Op != server.OpReplHello {
		return 0, fmt.Errorf("repl: hello refused: %s", resp.Err)
	}
	eng, err := r.ensureState(resp.Shards)
	if err != nil {
		return 0, err
	}
	eng.reset()

	frames := 0
	for {
		payload, err := server.ReadFrame(br, r.opts.maxFrame())
		if err != nil {
			return frames, err
		}
		f, err := server.DecodeReplFrame(payload)
		if err != nil {
			return frames, err
		}
		r.bytesShipped.Add(uint64(len(payload)) + 4)
		if err := eng.frame(f); err != nil {
			// Apply errors mean the stream and our queues disagree;
			// the cursors still describe exactly what was applied, so
			// a clean re-handshake re-ships the difference.
			return frames, err
		}
		frames++
		select {
		case <-r.caughtUp:
		default:
			if eng.caughtUp() {
				close(r.caughtUp)
			}
		}
	}
}

// ensureState builds the store and engine on the first hello and pins
// the lane count thereafter — a primary that restarts with a different
// shard count is a topology change, not something to replay over.
func (r *Replica) ensureState(lanes int) (*engine, error) {
	if lanes <= 0 || lanes > kv.MaxShards {
		return nil, fmt.Errorf("repl: primary reports %d lanes", lanes)
	}
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	if r.eng != nil {
		if r.eng.lanes != lanes {
			return nil, fmt.Errorf("repl: primary now has %d lanes, replica built for %d", lanes, r.eng.lanes)
		}
		return r.eng, nil
	}
	store, _, err := kv.Open(r.rt, nil, kv.Options{
		Mode: kv.ModeNone, Shards: lanes, Buckets: r.opts.Buckets,
	})
	if err != nil {
		return nil, err
	}
	r.store = store
	r.eng = newEngine(r.rt, store, lanes, r.lag)
	r.registerLaneMetrics(lanes)
	close(r.ready)
	return r.eng, nil
}

func (r *Replica) registerLaneMetrics(lanes int) {
	r.regOnce.Do(func() {
		reg := r.opts.Registry
		eng := r.eng
		for lane := 0; lane < lanes; lane++ {
			lane := lane
			reg.GaugeFunc(fmt.Sprintf("deferstm_repl_applied_lsn{lane=\"%d\"}", lane),
				"Highest lane LSN applied to the replica store.",
				func() float64 { return float64(eng.applied[lane].Load()) })
			reg.GaugeFunc(fmt.Sprintf("deferstm_repl_horizon_lsn{lane=\"%d\"}", lane),
				"Primary durable watermark last heard for the lane.",
				func() float64 { return float64(eng.horizon[lane].Load()) })
		}
		reg.GaugeFunc("deferstm_repl_gsn_horizon",
			"Highest global commit sequence number applied atomically.",
			func() float64 { return float64(eng.gsnHorizon.Load()) })
		reg.GaugeFunc("deferstm_repl_pending_records",
			"Records held back waiting for cross-shard siblings.",
			func() float64 { return float64(eng.pendingRecords.Load()) })
		reg.Counter("deferstm_repl_applied_records_total",
			"Records applied to the replica store.",
			func() uint64 { return eng.appliedRecords.Load() })
		reg.Counter("deferstm_repl_applied_batches_total",
			"Cross-shard batches applied atomically.",
			func() uint64 { return eng.appliedBatches.Load() })
	})
}
