package repl

import (
	"strings"
	"testing"

	"deferstm/internal/kv"
	"deferstm/internal/server"
	"deferstm/internal/stm"
)

func newTestEngine(t *testing.T, lanes int) (*engine, *kv.Store) {
	t.Helper()
	rt := stm.NewDefault()
	store, _, err := kv.Open(rt, nil, kv.Options{Mode: kv.ModeNone, Shards: lanes})
	if err != nil {
		t.Fatal(err)
	}
	return newEngine(rt, store, lanes, nil), store
}

func recFrame(lane int, lsn, gsn uint64, pts []kv.LanePoint, ops ...kv.Op) server.ReplFrame {
	return server.ReplFrame{
		Kind: server.ReplRecord, Lane: lane, LSN: lsn,
		Payload: kv.EncodeLaneRecord(gsn, pts, ops),
	}
}

func put(k, v string) kv.Op { return kv.Op{Put: true, Key: k, Value: v} }

func storeVal(t *testing.T, s *kv.Store, key string) (string, bool) {
	t.Helper()
	var v string
	var ok bool
	if err := s.View(func(tx *stm.Tx) error {
		v, ok = s.Get(tx, key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return v, ok
}

// TestEngineCrossShardBarrier: a cross-shard batch record applies only
// once every lane in its GSN vector has arrived, and then all lanes
// commit in one transaction.
func TestEngineCrossShardBarrier(t *testing.T) {
	e, store := newTestEngine(t, 2)
	pts := []kv.LanePoint{{Lane: 0, LSN: 1}, {Lane: 1, LSN: 1}}

	if err := e.frame(recFrame(0, 1, 7, pts, put("a", "1"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := storeVal(t, store, "a"); ok {
		t.Fatal("half a cross-shard batch became visible")
	}
	if got := e.pendingRecords.Load(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	if e.applied[0].Load() != 0 {
		t.Fatal("cursor advanced past an unapplied batch record")
	}

	if err := e.frame(recFrame(1, 1, 7, pts, put("b", "2"))); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b"} {
		if _, ok := storeVal(t, store, k); !ok {
			t.Fatalf("key %q missing after batch completed", k)
		}
	}
	if e.applied[0].Load() != 1 || e.applied[1].Load() != 1 {
		t.Fatalf("cursors = %v, want [1 1]", e.cursors())
	}
	if e.appliedBatches.Load() != 1 || e.gsnHorizon.Load() != 7 {
		t.Fatalf("batches=%d gsn=%d", e.appliedBatches.Load(), e.gsnHorizon.Load())
	}
	if e.pendingRecords.Load() != 0 {
		t.Fatalf("pending = %d after drain", e.pendingRecords.Load())
	}
}

// TestEngineBatchDelayedPastReconnect: the feed dies after shipping one
// lane of a cross-shard batch. On reconnect the hello cursors predate
// the batch (it never applied), so the primary re-ships the same lane —
// the engine must treat the resend as the same pending record, then
// apply the batch exactly once when the delayed lane finally arrives.
func TestEngineBatchDelayedPastReconnect(t *testing.T) {
	e, store := newTestEngine(t, 2)
	pts := []kv.LanePoint{{Lane: 0, LSN: 1}, {Lane: 1, LSN: 1}}

	if err := e.frame(recFrame(0, 1, 3, pts, put("a", "1"))); err != nil {
		t.Fatal(err)
	}
	// Disconnect mid-batch: held-back records are dropped, cursors
	// still read [0 0], so the next hello replays from scratch.
	e.reset()
	if got := e.cursors(); got[0] != 0 || got[1] != 0 {
		t.Fatalf("cursors after reset = %v", got)
	}
	if err := e.frame(recFrame(0, 1, 3, pts, put("a", "1"))); err != nil {
		t.Fatal(err)
	}
	if err := e.frame(recFrame(1, 1, 3, pts, put("b", "2"))); err != nil {
		t.Fatal(err)
	}
	if v, ok := storeVal(t, store, "a"); !ok || v != "1" {
		t.Fatalf("a = (%q, %v)", v, ok)
	}
	if e.appliedBatches.Load() != 1 || e.appliedRecords.Load() != 2 {
		t.Fatalf("batch applied %d times (%d records)", e.appliedBatches.Load(), e.appliedRecords.Load())
	}
}

// TestEngineCheckpointSatisfiesSibling: a lane re-based by a checkpoint
// whose upTo covers its slice of a batch satisfies the sibling's
// vector via the cursor rule — the other lane's record applies alone.
func TestEngineCheckpointSatisfiesSibling(t *testing.T) {
	e, store := newTestEngine(t, 2)

	// Lane 1 bootstraps from a checkpoint at LSN 2: its half of batch
	// gsn=9 (lane 1, LSN 2) is folded into the blob.
	blob := map[string]string{"b": "2"}
	ck := server.ReplFrame{Kind: server.ReplCheckpoint, Lane: 1, LSN: 2, Payload: encodeBlob(t, blob)}
	if err := e.frame(ck); err != nil {
		t.Fatal(err)
	}
	if e.applied[1].Load() != 2 {
		t.Fatalf("lane 1 cursor = %d, want 2", e.applied[1].Load())
	}
	if v, ok := storeVal(t, store, "b"); !ok || v != "2" {
		t.Fatalf("checkpoint contents not installed: b = (%q, %v)", v, ok)
	}

	pts := []kv.LanePoint{{Lane: 0, LSN: 1}, {Lane: 1, LSN: 2}}
	if err := e.frame(recFrame(0, 1, 9, pts, put("a", "1"))); err != nil {
		t.Fatal(err)
	}
	if v, ok := storeVal(t, store, "a"); !ok || v != "1" {
		t.Fatalf("batch half did not apply via cursor rule: a = (%q, %v)", v, ok)
	}
	if e.applied[0].Load() != 1 {
		t.Fatalf("lane 0 cursor = %d, want 1", e.applied[0].Load())
	}
}

// TestEngineStaleFramesIgnored: records at or below the cursor and
// checkpoints older than the applied state are resend noise, not
// errors — and a genuine LSN gap IS an error.
func TestEngineStaleFramesIgnored(t *testing.T) {
	e, store := newTestEngine(t, 2)

	one := []kv.LanePoint{{Lane: 0, LSN: 1}}
	if err := e.frame(recFrame(0, 1, 0, one, put("a", "1"))); err != nil {
		t.Fatal(err)
	}
	// Resend of LSN 1 with different contents must be ignored.
	if err := e.frame(recFrame(0, 1, 0, one, put("a", "CLOBBER"))); err != nil {
		t.Fatal(err)
	}
	if v, _ := storeVal(t, store, "a"); v != "1" {
		t.Fatalf("stale resend applied: a = %q", v)
	}
	// Stale checkpoint (upTo ≤ cursor) must not reset the lane.
	ck := server.ReplFrame{Kind: server.ReplCheckpoint, Lane: 0, LSN: 1, Payload: encodeBlob(t, map[string]string{})}
	if err := e.frame(ck); err != nil {
		t.Fatal(err)
	}
	if v, _ := storeVal(t, store, "a"); v != "1" {
		t.Fatalf("stale checkpoint reset the lane: a = %q", v)
	}
	// LSN gap: next must be 2, feeding 3 is corruption.
	err := e.frame(recFrame(0, 3, 0, []kv.LanePoint{{Lane: 0, LSN: 3}}, put("c", "3")))
	if err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap not detected: %v", err)
	}
}

// encodeBlob builds a checkpoint blob by hand (count, then
// length-prefixed pairs — the kv snapshot codec) and proves it
// round-trips through the decoder the engine will use.
func encodeBlob(t *testing.T, kvs map[string]string) []byte {
	t.Helper()
	b := appendU32(nil, uint32(len(kvs)))
	for k, v := range kvs {
		b = appendU32(b, uint32(len(k)))
		b = append(b, k...)
		b = appendU32(b, uint32(len(v)))
		b = append(b, v...)
	}
	if got, err := kv.DecodeSnapshotBlob(b); err != nil || len(got) != len(kvs) {
		t.Fatalf("test blob does not round-trip: %v", err)
	}
	return b
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
