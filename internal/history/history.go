// Package history records stm runtime events into an in-memory log that
// internal/check can verify offline. A Log is an stm.Recorder: attach it
// via stm.Config.Recorder and every transactional action (begin, read,
// write, commit, abort, quiescence, lock and deferral transitions) is
// appended with a global sequence number.
//
// The log is append-only under a mutex. That serializes recording, which
// perturbs timing slightly — acceptable for a checking harness, and the
// perturbation only shrinks the windows the fault injector re-widens.
package history

import (
	"fmt"
	"io"
	"sync"

	"deferstm/internal/stm"
)

// Log is a thread-safe, append-only event log implementing stm.Recorder.
type Log struct {
	mu      sync.Mutex
	events  []stm.Event
	seq     uint64
	limit   int // 0 = unbounded
	dropped uint64
}

// New returns an unbounded Log.
func New() *Log { return &Log{} }

// NewBounded returns a Log that stops recording after limit events,
// counting the overflow in Dropped. A truncated history can produce
// checker false positives (e.g. a lock release falling past the limit),
// so Dropped should be checked before trusting a verdict.
func NewBounded(limit int) *Log { return &Log{limit: limit} }

// Record implements stm.Recorder.
func (l *Log) Record(ev stm.Event) {
	l.mu.Lock()
	if l.limit > 0 && len(l.events) >= l.limit {
		l.dropped++
		l.mu.Unlock()
		return
	}
	l.seq++
	ev.Seq = l.seq
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// Events returns a copy of the recorded events in sequence order.
func (l *Log) Events() []stm.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]stm.Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Dropped reports how many events were discarded due to the bound.
func (l *Log) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Reset discards all recorded events (the sequence counter keeps
// advancing so sequence numbers stay unique across resets).
func (l *Log) Reset() {
	l.mu.Lock()
	l.events = l.events[:0]
	l.dropped = 0
	l.mu.Unlock()
}

// Dump writes the history in a line-oriented human-readable form.
func (l *Log) Dump(w io.Writer) error {
	for _, ev := range l.Events() {
		if _, err := fmt.Fprintln(w, ev.String()); err != nil {
			return err
		}
	}
	return nil
}
