package history

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"deferstm/internal/core"
	"deferstm/internal/stm"
)

// runDeferWorkload drives concurrent transactions that defer operations
// on shared deferrable counters, recording into rec.
func runDeferWorkload(t *testing.T, rec stm.Recorder, workers, txPerWorker int) {
	t.Helper()
	rt := stm.New(stm.Config{Recorder: rec})
	type counter struct {
		core.Deferrable
		n stm.Var[int]
	}
	objs := [4]*counter{new(counter), new(counter), new(counter), new(counter)}
	v := stm.NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txPerWorker; i++ {
				o := objs[(w+i)%len(objs)]
				if err := rt.Atomic(func(tx *stm.Tx) error {
					o.Subscribe(tx)
					v.Set(tx, v.Get(tx)+1)
					core.AtomicDefer(tx, func(ctx *core.OpCtx) {
						core.Store(ctx, &o.n, core.Load(ctx, &o.n)+1)
					}, o)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := v.Load(); got != workers*txPerWorker {
		t.Fatalf("committed %d increments, want %d", got, workers*txPerWorker)
	}
}

// TestRecorderEventOrdering is the event-stream property the trace
// exporter (and the offline checkers) rely on: under concurrent commits
// with deferred λs, the events of one transaction attempt form a
// monotone Seq span — begin first, commit/abort last, everything the
// attempt emitted in between — and every deferred operation's
// enqueue → start → end are Seq-ordered.
func TestRecorderEventOrdering(t *testing.T) {
	log := New()
	runDeferWorkload(t, log, 8, 50)
	evs := log.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}

	type txSpan struct {
		begin, last uint64
		closed      bool
	}
	tx := map[uint64]*txSpan{}
	type opSpan struct{ enq, start, end uint64 }
	ops := map[uint64]*opSpan{}
	var prevSeq uint64
	for _, ev := range evs {
		if ev.Seq <= prevSeq {
			t.Fatalf("global Seq not strictly increasing: %d after %d", ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		if ev.TxID != 0 {
			s := tx[ev.TxID]
			switch {
			case ev.Kind == stm.EvBegin:
				if s != nil {
					t.Fatalf("tx %d began twice (Seq %d and %d)", ev.TxID, s.begin, ev.Seq)
				}
				tx[ev.TxID] = &txSpan{begin: ev.Seq, last: ev.Seq}
			case s == nil:
				t.Fatalf("tx %d emitted %v (Seq %d) before its begin", ev.TxID, ev.Kind, ev.Seq)
			case s.closed && ev.Kind != stm.EvQuiesceStart && ev.Kind != stm.EvQuiesceEnd:
				// Only the committer's privatization wait may trail the
				// commit event (publish first, then quiesce).
				t.Fatalf("tx %d emitted %v (Seq %d) after its commit/abort", ev.TxID, ev.Kind, ev.Seq)
			default:
				s.last = ev.Seq
				if ev.Kind == stm.EvCommit || ev.Kind == stm.EvAbort {
					s.closed = true
				}
			}
		}
		switch ev.Kind {
		case stm.EvDeferEnqueue:
			ops[ev.Aux] = &opSpan{enq: ev.Seq}
		case stm.EvDeferStart:
			o := ops[ev.Aux]
			if o == nil {
				t.Fatalf("op %d started (Seq %d) without an enqueue", ev.Aux, ev.Seq)
			}
			o.start = ev.Seq
		case stm.EvDeferEnd:
			o := ops[ev.Aux]
			if o == nil || o.start == 0 {
				t.Fatalf("op %d ended (Seq %d) without a start", ev.Aux, ev.Seq)
			}
			o.end = ev.Seq
		}
	}
	for id, s := range tx {
		if !s.closed {
			t.Errorf("tx %d never committed or aborted", id)
		}
		if s.last < s.begin {
			t.Errorf("tx %d span inverted: begin Seq %d, last Seq %d", id, s.begin, s.last)
		}
	}
	nDone := 0
	for id, o := range ops {
		if o.end == 0 {
			t.Errorf("op %d never ended", id)
			continue
		}
		nDone++
		if !(o.enq < o.start && o.start < o.end) {
			t.Errorf("op %d events out of order: enqueue=%d start=%d end=%d", id, o.enq, o.start, o.end)
		}
	}
	if nDone != 8*50 {
		t.Errorf("completed %d deferred ops, want %d", nDone, 8*50)
	}
}

// TestTraceWriterJSON drives the same workload through a TraceWriter
// (teed into a Log to prove the chain works) and checks the exported
// document is valid Chrome trace JSON with the expected span kinds.
func TestTraceWriterJSON(t *testing.T) {
	tw := NewTraceWriter()
	log := New()
	tw.Tee(log)
	runDeferWorkload(t, tw, 4, 25)
	if tw.Len() == 0 || log.Len() == 0 {
		t.Fatalf("trace=%d teed=%d events, want both nonzero", tw.Len(), log.Len())
	}
	if tw.Len() != log.Len() {
		t.Fatalf("tee dropped events: trace=%d log=%d", tw.Len(), log.Len())
	}

	var buf bytes.Buffer
	if err := tw.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	cats := map[string]int{}
	maxTid := 0
	for _, ev := range doc.TraceEvents {
		cats[ev.Cat]++
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Errorf("span %q has negative duration %g", ev.Name, ev.Dur)
		}
		if ev.Tid > maxTid {
			maxTid = ev.Tid
		}
	}
	// Each workload transaction contributes one tx span, and each
	// deferred op's lock release runs as its own transaction, so the
	// span count is at least the workload commit count.
	if cats["tx"] < 4*25 {
		t.Errorf("trace has %d tx spans, want >= %d", cats["tx"], 4*25)
	}
	if cats["defer"] != 4*25 {
		t.Errorf("trace has %d defer spans, want %d", cats["defer"], 4*25)
	}
	if cats["quiesce"] == 0 {
		t.Error("trace has no quiesce spans")
	}
	if maxTid < 2 {
		t.Errorf("concurrent chains packed onto %d track(s), want >= 2", maxTid)
	}
}
