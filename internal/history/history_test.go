package history

import (
	"strings"
	"testing"

	"deferstm/internal/stm"
)

func TestRecordAssignsSequence(t *testing.T) {
	l := New()
	l.Record(stm.Event{Kind: stm.EvBegin, TxID: 1})
	l.Record(stm.Event{Kind: stm.EvCommit, TxID: 1})
	evs := l.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("bad sequence assignment: %+v", evs)
	}
	if l.Len() != 2 || l.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", l.Len(), l.Dropped())
	}
}

func TestBoundedLogDrops(t *testing.T) {
	l := NewBounded(2)
	for i := 0; i < 5; i++ {
		l.Record(stm.Event{Kind: stm.EvBegin, TxID: uint64(i)})
	}
	if l.Len() != 2 || l.Dropped() != 3 {
		t.Fatalf("Len=%d Dropped=%d, want 2/3", l.Len(), l.Dropped())
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	l := New()
	l.Record(stm.Event{Kind: stm.EvBegin, TxID: 1})
	evs := l.Events()
	evs[0].TxID = 99
	if l.Events()[0].TxID != 1 {
		t.Fatal("Events did not return a copy")
	}
}

func TestResetKeepsSequenceMonotonic(t *testing.T) {
	l := New()
	l.Record(stm.Event{Kind: stm.EvBegin})
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	l.Record(stm.Event{Kind: stm.EvBegin})
	if got := l.Events()[0].Seq; got != 2 {
		t.Fatalf("seq after reset = %d, want 2", got)
	}
}

func TestDump(t *testing.T) {
	l := New()
	l.Record(stm.Event{Kind: stm.EvCommit, TxID: 3, Ver: 7})
	var b strings.Builder
	if err := l.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "commit") || !strings.Contains(b.String(), "ver=7") {
		t.Fatalf("dump missing fields: %q", b.String())
	}
}

// Attaching a Log to a runtime records begins, reads, writes, commits
// and aborts with version timestamps.
func TestRecordsRuntimeEvents(t *testing.T) {
	l := New()
	rt := stm.New(stm.Config{Recorder: l})
	v := stm.NewVar(0)
	if err := rt.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, v.Get(tx)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	kinds := map[stm.EventKind]int{}
	for _, ev := range l.Events() {
		kinds[ev.Kind]++
	}
	for _, k := range []stm.EventKind{stm.EvBegin, stm.EvRead, stm.EvWrite, stm.EvCommit} {
		if kinds[k] == 0 {
			t.Errorf("no %s event recorded; got %v", k, kinds)
		}
	}
	// The write and commit must carry the same nonzero version.
	var wv, cv uint64
	for _, ev := range l.Events() {
		switch ev.Kind {
		case stm.EvWrite:
			wv = ev.Ver
		case stm.EvCommit:
			cv = ev.Ver
		}
	}
	if wv == 0 || wv != cv {
		t.Fatalf("write ver %d, commit ver %d", wv, cv)
	}
}
