package history

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"deferstm/internal/stm"
)

// TraceWriter is an stm.Recorder that converts the runtime's event
// stream into Chrome trace-event JSON, loadable in chrome://tracing or
// Perfetto. Runtime events carry version-clock timestamps but no wall
// time, so the TraceWriter stamps each event as it arrives; attach it
// via stm.Config.Recorder (optionally teeing into a checking Log) and
// call WriteJSON when the run is over.
//
// The span model follows the paper's timeline: each transaction attempt
// is one "tx" span (begin → commit/abort), a committer's privatization
// wait is a nested "quiesce" span, and every deferred operation is a
// "defer" span linked to its deferring transaction through the
// defer-enqueue event's operation ID. A transaction and its deferred
// tail form one chain, and chains are packed onto tracks by greedy
// interval partitioning, so concurrent chains land on distinct tracks —
// the rendered picture is one lane per concurrently-executing goroutine,
// which is how a stuck deferred λ or an over-long quiesce shows up as an
// obvious long bar.
type TraceWriter struct {
	mu    sync.Mutex
	start time.Time
	evs   []tracedEvent
	tee   stm.Recorder
}

type tracedEvent struct {
	ev stm.Event
	at int64 // nanoseconds since t.start
}

// NewTraceWriter returns a TraceWriter whose clock starts now.
func NewTraceWriter() *TraceWriter {
	return &TraceWriter{start: time.Now()}
}

// Tee forwards every recorded event to r as well (typically a
// history.Log, so one run can be both traced and checked). Call before
// recording starts.
func (t *TraceWriter) Tee(r stm.Recorder) { t.tee = r }

// Record implements stm.Recorder.
func (t *TraceWriter) Record(ev stm.Event) {
	at := int64(time.Since(t.start))
	t.mu.Lock()
	t.evs = append(t.evs, tracedEvent{ev: ev, at: at})
	t.mu.Unlock()
	if t.tee != nil {
		t.tee.Record(ev)
	}
}

// Len reports the number of captured events.
func (t *TraceWriter) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.evs)
}

// traceEvent is one entry of the Chrome trace-event format. Ts and Dur
// are microseconds (the format's unit).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceSpan struct {
	name       string
	cat        string
	start, end int64 // ns since trace start
	args       map[string]any
}

// traceChain is one transaction attempt plus everything causally tied to
// it (its quiesce, its deferred operations). Chains are the unit of
// track assignment.
type traceChain struct {
	spans      []traceSpan
	start, end int64
}

func (c *traceChain) add(s traceSpan) {
	c.spans = append(c.spans, s)
	if s.end > c.end {
		c.end = s.end
	}
	if s.start < c.start {
		c.start = s.start
	}
}

func abortCauseName(aux uint64) string {
	switch aux {
	case stm.AbortCauseConflict:
		return "conflict"
	case stm.AbortCauseCapacity:
		return "capacity"
	case stm.AbortCauseSyscall:
		return "syscall"
	case stm.AbortCauseRetry:
		return "retry"
	case stm.AbortCauseEscalate:
		return "escalate"
	case stm.AbortCauseUser:
		return "user"
	default:
		return "unknown"
	}
}

// WriteJSON renders the captured events as a Chrome trace-event JSON
// document ({"traceEvents": [...]}). Safe to call while recording
// continues (it snapshots); unfinished spans are closed at their last
// observed event.
func (t *TraceWriter) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	evs := make([]tracedEvent, len(t.evs))
	copy(evs, t.evs)
	t.mu.Unlock()

	txChain := map[uint64]*traceChain{}  // TxID → chain
	opChain := map[uint64]*traceChain{}  // deferred-op ID → deferring tx's chain
	txBegin := map[uint64]int64{}        // TxID → attempt start
	quiesceBegin := map[uint64]int64{}   // TxID → quiesce start
	opStart := map[uint64]int64{}        // op ID → λ start
	opOwner := map[uint64]stm.OwnerID{}  // op ID → deferring owner
	var chains []*traceChain

	for _, te := range evs {
		ev, at := te.ev, te.at
		switch ev.Kind {
		case stm.EvBegin:
			txBegin[ev.TxID] = at
			c := &traceChain{start: at, end: at}
			txChain[ev.TxID] = c
			chains = append(chains, c)
		case stm.EvCommit, stm.EvAbort:
			c := txChain[ev.TxID]
			if c == nil {
				continue
			}
			b, ok := txBegin[ev.TxID]
			if !ok {
				b = at
			}
			name := "tx commit"
			cat := "tx"
			args := map[string]any{"txID": ev.TxID, "owner": uint64(ev.Owner), "ver": ev.Ver}
			if ev.Kind == stm.EvAbort {
				cause := abortCauseName(ev.Aux)
				name = "tx abort (" + cause + ")"
				args["cause"] = cause
			} else if ev.Aux == stm.AuxSerial {
				name = "tx commit (serial)"
			}
			c.add(traceSpan{name: name, cat: cat, start: b, end: at, args: args})
		case stm.EvQuiesceStart:
			quiesceBegin[ev.TxID] = at
		case stm.EvQuiesceEnd:
			c := txChain[ev.TxID]
			b, ok := quiesceBegin[ev.TxID]
			if c == nil || !ok {
				continue
			}
			c.add(traceSpan{name: "quiesce", cat: "quiesce", start: b, end: at,
				args: map[string]any{"txID": ev.TxID, "ver": ev.Ver}})
		case stm.EvDeferEnqueue:
			opOwner[ev.Aux] = ev.Owner
			if c := txChain[ev.TxID]; c != nil {
				opChain[ev.Aux] = c
			}
		case stm.EvDeferStart:
			opStart[ev.Aux] = at
		case stm.EvDeferEnd:
			b, ok := opStart[ev.Aux]
			if !ok {
				b = at
			}
			c := opChain[ev.Aux]
			if c == nil {
				// No recorded enqueue (e.g. a lock taken via
				// AcquireOutside): the operation gets its own chain.
				c = &traceChain{start: b, end: b}
				chains = append(chains, c)
			}
			c.add(traceSpan{name: fmt.Sprintf("deferred op %d", ev.Aux), cat: "defer",
				start: b, end: at,
				args: map[string]any{"opID": ev.Aux, "owner": uint64(opOwner[ev.Aux])}})
		case stm.EvWALDurable:
			// Durability watermark publishes render as instants on the
			// chain of whichever transaction's flush published them, or
			// on track 0 when untraceable.
			if c := txChain[ev.TxID]; c != nil {
				c.add(traceSpan{name: "wal durable", cat: "wal", start: at, end: at,
					args: map[string]any{"watermark": ev.Aux}})
			}
		}
	}

	// Close chains whose attempt never ended (still running at export):
	// synthesize the open span so the work is visible.
	for txID, b := range txBegin {
		c := txChain[txID]
		if c != nil && len(c.spans) == 0 {
			c.add(traceSpan{name: "tx (unfinished)", cat: "tx", start: b, end: c.end,
				args: map[string]any{"txID": txID}})
		}
	}

	// Greedy interval partitioning: pack chains onto the fewest tracks
	// with no two overlapping chains sharing one.
	sort.SliceStable(chains, func(i, j int) bool { return chains[i].start < chains[j].start })
	var laneEnd []int64
	events := make([]traceEvent, 0, len(evs)+8)
	for _, c := range chains {
		if len(c.spans) == 0 {
			continue
		}
		lane := -1
		for i, e := range laneEnd {
			if e <= c.start {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = c.end
		for _, s := range c.spans {
			te := traceEvent{
				Name: s.name, Cat: s.cat, Ph: "X",
				Ts:  float64(s.start) / 1e3,
				Dur: float64(s.end-s.start) / 1e3,
				Pid: 1, Tid: lane + 1, Args: s.args,
			}
			if s.end == s.start {
				te.Ph, te.Dur = "i", 0
			}
			events = append(events, te)
		}
	}

	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
