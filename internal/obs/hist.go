// Package obs is the observability layer of the deferral runtime:
// lock-free striped latency histograms, gauges, and a registry that
// exposes them as Prometheus text, expvar JSON, and pprof over HTTP.
//
// The paper's whole argument is about where time goes — the transaction's
// critical window versus the deferred tail — so the runtime needs latency
// *distributions*, not just monotonic counts (stm.Stats). A Histogram
// uses the same cache-line-padded stripe design as the stm counters: an
// Observe touches only the calling goroutine's stripe, and reads merge
// every stripe exactly, so recorded counts are never sampled or lossy.
// Buckets are log2-spaced nanoseconds: cheap to index (one bits.Len64),
// and the ~2x bucket resolution is far below the run-to-run variance of
// any latency this repo measures.
//
// Every type is nil-safe on its write path: a nil *Histogram or *Gauge
// ignores Observe/Add, so instrumented hot paths stay allocation-free
// (and effectively free) when metrics are disabled.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// nHistBuckets is the bucket count of every Histogram. Bucket i (i >= 1)
// holds observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i);
// bucket 0 holds zero. 48 buckets cover 1ns .. ~39h before clamping into
// the top bucket — wider than any latency the runtime can produce.
const nHistBuckets = 48

// histShard is one stripe of a Histogram. Shards are padded to a 64-byte
// multiple with at least one pad byte, so two shards never share a cache
// line even when the payload is an exact multiple of the line size (the
// padding expression deliberately yields 64, not 0, in that case — see
// the layout test).
type histShard struct {
	buckets [nHistBuckets]atomic.Uint64
	sum     atomic.Uint64 // total observed nanoseconds
	max     atomic.Uint64 // largest single observation, ns
	_       [64 - (nHistBuckets*8+16)%64]byte
}

// Histogram is a lock-free, striped, log2-bucketed latency histogram.
// Observe is safe for unbounded concurrency and touches only the calling
// goroutine's stripe; Snapshot merges every stripe exactly. The zero
// value is not usable — construct with NewHistogram or
// (*Registry).NewHistogram. A nil *Histogram ignores Observe.
type Histogram struct {
	name   string
	help   string
	shards []histShard
	mask   uint32
}

// NewHistogram returns an unregistered histogram (for tests and callers
// that aggregate without an HTTP endpoint). name/help follow Prometheus
// conventions; values are exposed in seconds, recorded in nanoseconds.
func NewHistogram(name, help string) *Histogram {
	h := &Histogram{name: name, help: help}
	p := stripeCount()
	h.shards = make([]histShard, p)
	h.mask = uint32(p - 1)
	return h
}

// Name returns the metric name the histogram was created with.
func (h *Histogram) Name() string { return h.name }

// Observe records one latency. Nil-safe and allocation-free: the nil
// check is the entire disabled cost.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	i := bits.Len64(ns)
	if i >= nHistBuckets {
		i = nHistBuckets - 1
	}
	sh := &h.shards[stripeIdx()&h.mask]
	sh.buckets[i].Add(1)
	sh.sum.Add(ns)
	for {
		cur := sh.max.Load()
		if ns <= cur || sh.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistSnapshot is an exact merged copy of a histogram: per-bucket counts
// summed over every stripe, plus total count, sum and max.
type HistSnapshot struct {
	Buckets [nHistBuckets]uint64
	Count   uint64
	Sum     uint64 // nanoseconds
	Max     uint64 // nanoseconds
}

// Snapshot merges all stripes. Individual buckets are exact; cross-bucket
// skew is bounded by observations in flight during the merge.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for j := 0; j < nHistBuckets; j++ {
			n := sh.buckets[j].Load()
			s.Buckets[j] += n
			s.Count += n
		}
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// Delta returns the per-bucket difference s - prev: the distribution of
// the interval between the two snapshots. Max carries over from s (a
// maximum cannot be differenced; it is the max seen up to s).
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum, Max: s.Max}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// BucketUpper returns the exclusive upper bound, in nanoseconds, of
// bucket i (every observation in bucket i is < BucketUpper(i)).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return 1 << 63
	}
	return 1 << uint(i)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) in
// nanoseconds: the upper bound of the log2 bucket the rank falls in,
// clipped to the observed maximum. Zero observations yield 0. The bound
// is tight to within one bucket (a factor of two), which is the
// histogram's resolution by design.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			ub := float64(BucketUpper(i))
			if m := float64(s.Max); m < ub {
				return m
			}
			return ub
		}
	}
	return float64(s.Max)
}

// Mean returns the exact mean observation in nanoseconds (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Gauge is a nil-safe atomic gauge (a level, not a monotone counter) —
// e.g. the number of deferred operations enqueued but not yet finished.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// NewGauge returns an unregistered gauge.
func NewGauge(name, help string) *Gauge { return &Gauge{name: name, help: help} }

// Name returns the metric name the gauge was created with.
func (g *Gauge) Name() string { return g.name }

// Add moves the gauge by n. Nil-safe.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Set stores the gauge. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Load returns the current value (0 for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// stripeCount sizes stripe arrays: 2x the machine's CPU count (hardware
// parallelism bounds concurrent writers, and GOMAXPROCS can be lowered
// at runtime below it), rounded up to a power of two for mask indexing,
// floored at 4 and capped at 64 — past 64 stripes the merge cost on
// every read outweighs contention that many CPUs could generate here.
func stripeCount() int {
	n := 2 * numCPU()
	if n < 4 {
		n = 4
	}
	if n > 64 {
		n = 64
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// stripeIdx derives a goroutine-affine stripe hint from the address of a
// stack variable, exactly as internal/stm's striped counters do: distinct
// goroutines run on distinct stacks, so the mixed address separates
// concurrent writers without procPin or goroutine IDs. Any distribution
// is correct; only contention varies.
func stripeIdx() uint32 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return uint32((uint64(p) * 0x9e3779b97f4a7c15) >> 33)
}
