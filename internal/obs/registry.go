package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
)

func numCPU() int { return runtime.NumCPU() }

// CounterFunc reads a monotone counter on demand (typically a field of
// an stm.StatsSnapshot). Called on every exposition request.
type CounterFunc func() uint64

// GaugeFunc reads a level on demand.
type GaugeFunc func() float64

type funcMetric struct {
	name string // may carry Prometheus labels: `x_total{reason="conflict"}`
	help string
	kind string // "counter" | "gauge"
	ctr  CounterFunc
	gf   GaugeFunc
}

// Registry is a set of named metrics exposed together: histograms and
// gauges created through it, plus counter/gauge callback series
// registered onto it. A nil *Registry is legal everywhere and simply
// constructs unregistered instruments, so packages can build their
// metrics unconditionally and let the caller decide whether anything is
// exported.
type Registry struct {
	mu        sync.Mutex
	hists     []*Histogram
	gauges    []*Gauge
	funcs     []funcMetric
	buildInfo []string // alternating label key, value
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewHistogram creates and registers a histogram. Safe on a nil
// registry (the histogram is created but exposed nowhere).
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := NewHistogram(name, help)
	if r != nil {
		r.mu.Lock()
		r.hists = append(r.hists, h)
		r.mu.Unlock()
	}
	return h
}

// NewGauge creates and registers a gauge. Safe on a nil registry.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := NewGauge(name, help)
	if r != nil {
		r.mu.Lock()
		r.gauges = append(r.gauges, g)
		r.mu.Unlock()
	}
	return g
}

// Counter registers a callback-backed monotone counter series. The name
// may carry Prometheus labels (`deferstm_aborts_total{reason="conflict"}`);
// series sharing the name before the brace form one metric family. Safe
// on a nil registry (no-op).
func (r *Registry) Counter(name, help string, fn CounterFunc) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.funcs = append(r.funcs, funcMetric{name: name, help: help, kind: "counter", ctr: fn})
	r.mu.Unlock()
}

// GaugeFunc registers a callback-backed gauge series. Safe on a nil
// registry (no-op).
func (r *Registry) GaugeFunc(name, help string, fn GaugeFunc) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.funcs = append(r.funcs, funcMetric{name: name, help: help, kind: "gauge", gf: fn})
	r.mu.Unlock()
}

// SetBuildInfo attaches alternating key/value label pairs exposed as the
// constant series deferstm_build_info{...} 1 (the Prometheus idiom for
// build metadata). Safe on a nil registry.
func (r *Registry) SetBuildInfo(kv ...string) {
	if r == nil || len(kv)%2 != 0 {
		return
	}
	r.mu.Lock()
	r.buildInfo = append([]string(nil), kv...)
	r.mu.Unlock()
}

// family splits a labeled series name into its metric-family name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format. Histograms use the classic cumulative _bucket/_sum/
// _count encoding with le in seconds; the exact observed maximum is
// exposed as an extra <name>_max_seconds gauge (log buckets alone cap
// tail knowledge at a power of two — the max restores it).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	hists := append([]*Histogram(nil), r.hists...)
	gauges := append([]*Gauge(nil), r.gauges...)
	funcs := append([]funcMetric(nil), r.funcs...)
	buildInfo := append([]string(nil), r.buildInfo...)
	r.mu.Unlock()

	if len(buildInfo) > 0 {
		var lb []string
		for i := 0; i+1 < len(buildInfo); i += 2 {
			lb = append(lb, fmt.Sprintf("%s=%q", buildInfo[i], buildInfo[i+1]))
		}
		fmt.Fprintf(w, "# HELP deferstm_build_info Build metadata (constant 1).\n")
		fmt.Fprintf(w, "# TYPE deferstm_build_info gauge\n")
		fmt.Fprintf(w, "deferstm_build_info{%s} 1\n", strings.Join(lb, ","))
	}

	for _, h := range hists {
		s := h.Snapshot()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
		top := topBucket(&s)
		var cum uint64
		for i := 0; i <= top; i++ {
			cum += s.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatLe(BucketUpper(i)), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, s.Count)
		fmt.Fprintf(w, "%s_sum %g\n", h.name, float64(s.Sum)/1e9)
		fmt.Fprintf(w, "%s_count %d\n", h.name, s.Count)
		fmt.Fprintf(w, "# TYPE %s_max_seconds gauge\n", h.name)
		fmt.Fprintf(w, "%s_max_seconds %g\n", h.name, float64(s.Max)/1e9)
	}

	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		fmt.Fprintf(w, "%s %d\n", g.name, g.Load())
	}

	// Callback series grouped by family so HELP/TYPE appear once per
	// family even when labeled variants registered separately.
	seen := map[string]bool{}
	for _, f := range funcs {
		fam := family(f.name)
		if !seen[fam] {
			seen[fam] = true
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam, f.help, fam, f.kind)
		}
		if f.ctr != nil {
			fmt.Fprintf(w, "%s %d\n", f.name, f.ctr())
		} else {
			fmt.Fprintf(w, "%s %g\n", f.name, f.gf())
		}
	}
}

// topBucket returns the highest non-empty bucket index (0 when empty),
// so the exposition skips the all-empty tail instead of emitting 48
// series per histogram.
func topBucket(s *HistSnapshot) int {
	for i := nHistBuckets - 1; i > 0; i-- {
		if s.Buckets[i] != 0 {
			return i
		}
	}
	return 0
}

// formatLe renders a nanosecond bound as Prometheus seconds.
func formatLe(ns uint64) string {
	return fmt.Sprintf("%g", float64(ns)/1e9)
}

// Snapshot returns a plain map rendering of the registry: histogram
// percentiles, gauge levels, and callback series, keyed by metric name.
// This is the expvar payload (and a convenient test surface).
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	hists := append([]*Histogram(nil), r.hists...)
	gauges := append([]*Gauge(nil), r.gauges...)
	funcs := append([]funcMetric(nil), r.funcs...)
	r.mu.Unlock()

	for _, h := range hists {
		s := h.Snapshot()
		out[h.name] = map[string]any{
			"count":   s.Count,
			"mean_ns": s.Mean(),
			"p50_ns":  s.Quantile(0.50),
			"p90_ns":  s.Quantile(0.90),
			"p99_ns":  s.Quantile(0.99),
			"max_ns":  s.Max,
		}
	}
	for _, g := range gauges {
		out[g.name] = g.Load()
	}
	for _, f := range funcs {
		if f.ctr != nil {
			out[f.name] = f.ctr()
		} else {
			out[f.name] = f.gf()
		}
	}
	return out
}

// Names returns the sorted metric names currently registered (tests).
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
