package obs

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
	"unsafe"
)

// TestHistShardLayout pins the stripe geometry: a shard's size must be a
// cache-line multiple with at least one pad byte, so adjacent shards
// never share a line even when the payload is itself a line multiple.
// The second type mirrors the exact-multiple case the old stm padding
// expression `(64 - x%64) % 64` got wrong (pad 0 → adjacent shards).
func TestHistShardLayout(t *testing.T) {
	sz := unsafe.Sizeof(histShard{})
	if sz%64 != 0 {
		t.Errorf("histShard size %d is not a cache-line multiple", sz)
	}
	payload := uintptr(nHistBuckets*8 + 16)
	if sz <= payload {
		t.Errorf("histShard size %d leaves no padding over payload %d", sz, payload)
	}

	// Exact-multiple payload (8 counters = 64 bytes): the corrected
	// expression must yield a full line of padding, not zero.
	type exactShard struct {
		c [8]uint64
		_ [64 - (8*8)%64]byte
	}
	if got := unsafe.Sizeof(exactShard{}); got != 128 {
		t.Errorf("exact-multiple shard = %d bytes, want 128 (64 payload + 64 pad)", got)
	}
}

// TestHistogramExactMerge hammers one histogram from many goroutines and
// verifies the merged snapshot is exact: every observation lands in
// exactly one bucket, and count/sum match what was recorded.
func TestHistogramExactMerge(t *testing.T) {
	h := NewHistogram("t_lat", "test")
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration((w*perWorker + i) % 4096))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketSum uint64
	for _, n := range s.Buckets {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	var wantSum uint64
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			wantSum += uint64((w*perWorker + i) % 4096)
		}
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Max != 4095 {
		t.Fatalf("max = %d, want 4095", s.Max)
	}
}

// TestHistogramBucketPlacement checks the log2 bucket rule directly.
func TestHistogramBucketPlacement(t *testing.T) {
	for _, ns := range []uint64{0, 1, 2, 3, 4, 255, 256, 1 << 20, 1 << 47, 1 << 60} {
		h := NewHistogram("b", "test")
		h.Observe(time.Duration(ns))
		want := bits.Len64(ns)
		if want >= nHistBuckets {
			want = nHistBuckets - 1
		}
		s := h.Snapshot()
		if s.Buckets[want] != 1 {
			t.Errorf("observe(%d): bucket %d = %d, want 1", ns, want, s.Buckets[want])
		}
	}
}

// TestQuantile checks the percentile extraction: the bound must cover
// the true quantile and stay within one log2 bucket of it, and the max
// must clip the top bucket's bound.
func TestQuantile(t *testing.T) {
	h := NewHistogram("q", "test")
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i)) // uniform 1..1000 ns
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, trueV float64 }{
		{0.50, 500}, {0.90, 900}, {0.99, 990}, {1.0, 1000},
	} {
		got := s.Quantile(tc.q)
		if got < tc.trueV {
			t.Errorf("q%.2f = %g below true value %g", tc.q, got, tc.trueV)
		}
		if got > 2*tc.trueV+1 {
			t.Errorf("q%.2f = %g beyond one log2 bucket of %g", tc.q, got, tc.trueV)
		}
	}
	if got := s.Quantile(1.0); got != 1000 {
		t.Errorf("p100 = %g, want exactly the max 1000", got)
	}
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

// TestSnapshotDelta verifies interval extraction.
func TestSnapshotDelta(t *testing.T) {
	h := NewHistogram("d", "test")
	h.Observe(10)
	before := h.Snapshot()
	h.Observe(100)
	h.Observe(200)
	d := h.Snapshot().Delta(before)
	if d.Count != 2 || d.Sum != 300 {
		t.Fatalf("delta count=%d sum=%d, want 2/300", d.Count, d.Sum)
	}
}

// TestNilInstrumentsAllocFree pins the disabled fast path: observing a
// nil histogram and moving a nil gauge must do nothing and allocate
// nothing; an attached histogram must also be allocation-free.
func TestNilInstrumentsAllocFree(t *testing.T) {
	var h *Histogram
	var g *Gauge
	if n := testing.AllocsPerRun(200, func() {
		h.Observe(123)
		g.Add(1)
	}); n != 0 {
		t.Fatalf("nil instruments allocate %.1f objects/op, want 0", n)
	}
	if h.Snapshot().Count != 0 || g.Load() != 0 {
		t.Fatal("nil instruments recorded state")
	}
	live := NewHistogram("alloc", "test")
	lg := NewGauge("alloc_g", "test")
	if n := testing.AllocsPerRun(200, func() {
		live.Observe(456)
		lg.Add(1)
		lg.Add(-1)
	}); n != 0 {
		t.Fatalf("live instruments allocate %.1f objects/op, want 0", n)
	}
}

// TestWritePrometheus checks the text exposition: family TYPE lines,
// cumulative le buckets, labeled counter families, and build info.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("deferstm_tx_latency_seconds", "Tx latency.")
	g := r.NewGauge("deferstm_defer_queue_depth", "Deferred ops in flight.")
	r.Counter(`deferstm_aborts_total{reason="conflict"}`, "Aborts by reason.", func() uint64 { return 7 })
	r.Counter(`deferstm_aborts_total{reason="capacity"}`, "Aborts by reason.", func() uint64 { return 3 })
	r.SetBuildInfo("commit", "abc123", "go", "go1.24")
	h.Observe(100)
	h.Observe(1000)
	g.Set(4)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE deferstm_tx_latency_seconds histogram",
		"deferstm_tx_latency_seconds_count 2",
		`deferstm_tx_latency_seconds_bucket{le="+Inf"} 2`,
		"deferstm_tx_latency_seconds_max_seconds 1e-06",
		"# TYPE deferstm_defer_queue_depth gauge",
		"deferstm_defer_queue_depth 4",
		`deferstm_aborts_total{reason="conflict"} 7`,
		`deferstm_aborts_total{reason="capacity"} 3`,
		`deferstm_build_info{commit="abc123",go="go1.24"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE deferstm_aborts_total"); n != 1 {
		t.Errorf("labeled family emitted %d TYPE lines, want 1", n)
	}

	// Cumulative bucket counts must be monotone.
	var prev uint64
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "deferstm_tx_latency_seconds_bucket") {
			continue
		}
		var cum uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if cum < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = cum
	}
}

// TestNilRegistry verifies the nil registry constructs working,
// unexported instruments and ignores callbacks.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	h := r.NewHistogram("x", "")
	g := r.NewGauge("y", "")
	r.Counter("z", "", func() uint64 { return 1 })
	r.SetBuildInfo("a", "b")
	h.Observe(5)
	g.Add(2)
	if h.Snapshot().Count != 1 || g.Load() != 2 {
		t.Fatal("nil-registry instruments do not record")
	}
	r.WritePrometheus(io.Discard)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry exposed metrics")
	}
}

// TestServe boots the debug endpoint on an ephemeral port and fetches
// /metrics, /debug/vars and the pprof index.
func TestServe(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("deferstm_test_seconds", "t")
	h.Observe(42)
	addr, stop, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "deferstm_test_seconds_count 1") {
		t.Errorf("/metrics missing histogram:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "deferstm_test_seconds") {
		t.Errorf("/debug/vars missing registry payload")
	}
	if out := get("/debug/pprof/goroutine?debug=1"); !strings.Contains(out, "goroutine") {
		t.Errorf("pprof goroutine handler not serving")
	}
}

// TestServeWildcardAddr: binding ":0" must yield a printed address a
// client can actually dial — the wildcard host rewritten to loopback,
// the ephemeral port resolved. This is what lets CI run a server and a
// scraper together without picking fixed ports.
func TestServeWildcardAddr(t *testing.T) {
	r := NewRegistry()
	addr, stop, err := r.Serve(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	tcp, ok := addr.(*net.TCPAddr)
	if !ok {
		t.Fatalf("Serve returned %T, want *net.TCPAddr", addr)
	}
	if tcp.Port == 0 {
		t.Fatal("Serve reported port 0 for an ephemeral bind")
	}
	if tcp.IP.IsUnspecified() {
		t.Fatalf("Serve reported undialable wildcard host %s", addr)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatalf("GET via reported address: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET via reported address: status %d", resp.StatusCode)
	}
}

// TestDialableAddr covers the rewrite table directly.
func TestDialableAddr(t *testing.T) {
	cases := []struct {
		in   net.Addr
		want string
	}{
		{&net.TCPAddr{IP: nil, Port: 80}, "127.0.0.1:80"},
		{&net.TCPAddr{IP: net.IPv4zero, Port: 81}, "127.0.0.1:81"},
		{&net.TCPAddr{IP: net.IPv6unspecified, Port: 82}, "127.0.0.1:82"},
		{&net.TCPAddr{IP: net.IPv4(10, 1, 2, 3), Port: 83}, "10.1.2.3:83"},
		{&net.TCPAddr{IP: net.IPv6loopback, Port: 84}, "[::1]:84"},
	}
	for _, c := range cases {
		if got := DialableAddr(c.in).String(); got != c.want {
			t.Errorf("DialableAddr(%s) = %s, want %s", c.in, got, c.want)
		}
	}
	unix := &net.UnixAddr{Name: "/tmp/x", Net: "unix"}
	if got := DialableAddr(unix); got != unix {
		t.Errorf("non-TCP address rewritten: %v", got)
	}
}
