package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The expvar package keeps one global variable namespace per process, so
// the registry published under "deferstm" is whichever registry served
// most recently — an atomic pointer lets tests (and a binary that builds
// several runtimes) re-point it without tripping expvar's
// panic-on-duplicate Publish.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Mux returns a debug mux for the registry:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar JSON (cmdline, memstats, and this registry
//	               under "deferstm" with histogram percentiles)
//	/debug/pprof/  the standard pprof handlers (profile, heap, trace, …)
//
// Background goroutines the runtime labels (map-migrator, wal-leader,
// deferred-op) are distinguishable in /debug/pprof/goroutine?debug=1.
func (r *Registry) Mux() *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("deferstm", expvar.Func(func() any {
			return expvarReg.Load().Snapshot() // nil-safe: empty map
		}))
	})
	expvarReg.Store(r)

	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug endpoint on addr (e.g. "127.0.0.1:9190", or
// ":0" for an ephemeral port) and returns the bound address and a stop
// function. The server runs until stop is called; Serve itself returns
// immediately after the listener is bound, so callers can print the
// address before the workload starts.
func (r *Registry) Serve(addr string) (net.Addr, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: r.Mux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), func() { _ = srv.Close() }, nil
}
