package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The expvar package keeps one global variable namespace per process, so
// the registry published under "deferstm" is whichever registry served
// most recently — an atomic pointer lets tests (and a binary that builds
// several runtimes) re-point it without tripping expvar's
// panic-on-duplicate Publish.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Mux returns a debug mux for the registry:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar JSON (cmdline, memstats, and this registry
//	               under "deferstm" with histogram percentiles)
//	/debug/pprof/  the standard pprof handlers (profile, heap, trace, …)
//
// Background goroutines the runtime labels (map-migrator, wal-leader,
// deferred-op) are distinguishable in /debug/pprof/goroutine?debug=1.
func (r *Registry) Mux() *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("deferstm", expvar.Func(func() any {
			return expvarReg.Load().Snapshot() // nil-safe: empty map
		}))
	})
	expvarReg.Store(r)

	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug endpoint on addr (e.g. "127.0.0.1:9190", or
// ":0" for an ephemeral port) and returns the bound address and a stop
// function. The server runs until stop is called; Serve itself returns
// immediately after the listener is bound, so callers can print the
// address before the workload starts. The returned address is always
// dialable (see DialableAddr), so a ":0" caller can paste it into curl
// — which is exactly what the CI smokes do.
func (r *Registry) Serve(addr string) (net.Addr, func(), error) {
	return ServeMux(addr, r.Mux())
}

// ServeMux is Serve for an arbitrary handler: bind addr, serve h until
// the stop function is called, report the dialable bound address.
// Callers that extend the registry's debug mux with their own routes
// (e.g. cmd/kvserver's /kv/* JSON fallback) serve the combined mux
// through this.
func ServeMux(addr string, h http.Handler) (net.Addr, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return DialableAddr(ln.Addr()), func() { _ = srv.Close() }, nil
}

// DialableAddr rewrites a listener's bound address into one a client can
// actually connect to: listening on ":0" or "0.0.0.0:x" binds the
// wildcard address, and printing that verbatim ("http://[::]:43210")
// gives scripts an undialable URL. The wildcard host is replaced with
// IPv4 loopback (a wildcard listener accepts loopback connections in
// both families, and 127.0.0.1 stays reachable in IPv6-less
// containers); concrete hosts and non-TCP addresses pass through
// unchanged.
func DialableAddr(a net.Addr) net.Addr {
	tcp, ok := a.(*net.TCPAddr)
	if !ok || (tcp.IP != nil && !tcp.IP.IsUnspecified()) {
		return a
	}
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: tcp.Port}
}
