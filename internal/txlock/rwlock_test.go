package txlock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deferstm/internal/stm"
)

func acquireReadOutside(rt *stm.Runtime, l *RWLock, me stm.OwnerID) {
	_ = rt.AtomicAs(me, func(tx *stm.Tx) error { l.AcquireReadAs(tx, me); return nil })
}

func releaseReadOutside(rt *stm.Runtime, l *RWLock, me stm.OwnerID) error {
	var rerr error
	_ = rt.AtomicAs(me, func(tx *stm.Tx) error { rerr = l.ReleaseReadAs(tx, me); return nil })
	return rerr
}

func acquireWriteOutside(rt *stm.Runtime, l *RWLock, me stm.OwnerID) {
	_ = rt.AtomicAs(me, func(tx *stm.Tx) error { l.AcquireWriteAs(tx, me); return nil })
}

func releaseWriteOutside(rt *stm.Runtime, l *RWLock, me stm.OwnerID) error {
	var rerr error
	_ = rt.AtomicAs(me, func(tx *stm.Tx) error { rerr = l.ReleaseWriteAs(tx, me); return nil })
	return rerr
}

func TestRWBasic(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRWLock()
	a, b := rt.NewOwner(), rt.NewOwner()
	acquireReadOutside(rt, l, a)
	acquireReadOutside(rt, l, b) // shared: both can hold
	if n := l.ReadersSnapshot(); n != 2 {
		t.Errorf("readers = %d, want 2", n)
	}
	if err := releaseReadOutside(rt, l, a); err != nil {
		t.Fatal(err)
	}
	if err := releaseReadOutside(rt, l, b); err != nil {
		t.Fatal(err)
	}
	if n := l.ReadersSnapshot(); n != 0 {
		t.Errorf("readers after release = %d", n)
	}
}

func TestRWWriterExcludesReaders(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRWLock()
	w, r := rt.NewOwner(), rt.NewOwner()
	acquireWriteOutside(rt, l, w)
	gotRead := make(chan struct{})
	go func() {
		acquireReadOutside(rt, l, r)
		close(gotRead)
	}()
	select {
	case <-gotRead:
		t.Fatal("reader acquired under writer")
	case <-time.After(20 * time.Millisecond):
	}
	if err := releaseWriteOutside(rt, l, w); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gotRead:
	case <-time.After(5 * time.Second):
		t.Fatal("reader never acquired after writer release")
	}
	_ = releaseReadOutside(rt, l, r)
}

func TestRWReadersExcludeWriter(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRWLock()
	r, w := rt.NewOwner(), rt.NewOwner()
	acquireReadOutside(rt, l, r)
	gotWrite := make(chan struct{})
	go func() {
		acquireWriteOutside(rt, l, w)
		close(gotWrite)
	}()
	select {
	case <-gotWrite:
		t.Fatal("writer acquired under reader")
	case <-time.After(20 * time.Millisecond):
	}
	if err := releaseReadOutside(rt, l, r); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gotWrite:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never acquired after reader release")
	}
	_ = releaseWriteOutside(rt, l, w)
}

func TestRWWriteReentrancyAndUpgrade(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRWLock()
	me := rt.NewOwner()
	if err := rt.AtomicAs(me, func(tx *stm.Tx) error {
		l.AcquireWrite(tx)
		l.AcquireWrite(tx) // reentrant
		if err := l.ReleaseWrite(tx); err != nil {
			return err
		}
		if l.Writer(tx) != me {
			t.Error("lost writer after partial release")
		}
		return l.ReleaseWrite(tx)
	}); err != nil {
		t.Fatal(err)
	}
	// Upgrade: sole reader may take the write lock.
	if err := rt.AtomicAs(me, func(tx *stm.Tx) error {
		l.AcquireRead(tx)
		l.AcquireWrite(tx) // upgrade succeeds: only reader is me
		if err := l.ReleaseWrite(tx); err != nil {
			return err
		}
		return l.ReleaseRead(tx)
	}); err != nil {
		t.Fatal(err)
	}
	if l.WriterSnapshot() != 0 || l.ReadersSnapshot() != 0 {
		t.Error("lock leaked")
	}
}

func TestRWReleaseErrors(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRWLock()
	a, b := rt.NewOwner(), rt.NewOwner()
	acquireReadOutside(rt, l, a)
	if err := releaseReadOutside(rt, l, b); !errors.Is(err, ErrNotOwner) {
		t.Errorf("foreign read release: %v", err)
	}
	if err := releaseWriteOutside(rt, l, b); !errors.Is(err, ErrNotOwner) {
		t.Errorf("write release without hold: %v", err)
	}
	_ = releaseReadOutside(rt, l, a)
}

func TestRWZeroOwnerPanics(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRWLock()
	for name, f := range map[string]func(tx *stm.Tx){
		"read":  func(tx *stm.Tx) { l.AcquireReadAs(tx, 0) },
		"write": func(tx *stm.Tx) { l.AcquireWriteAs(tx, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			_ = rt.Atomic(func(tx *stm.Tx) error { f(tx); return nil })
		})
	}
}

// TestRWSubscribeSemantics: SubscribeRead passes under shared holders but
// blocks under a writer; SubscribeWrite blocks under anyone.
func TestRWSubscribeSemantics(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRWLock()
	r := rt.NewOwner()
	acquireReadOutside(rt, l, r)

	// SubscribeRead passes with a shared holder.
	done := make(chan struct{})
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			l.SubscribeRead(tx)
			return nil
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SubscribeRead blocked under shared holder")
	}

	// SubscribeWrite blocks with a shared holder.
	blocked := make(chan struct{})
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			l.SubscribeWrite(tx)
			return nil
		})
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("SubscribeWrite passed under shared holder")
	case <-time.After(20 * time.Millisecond):
	}
	_ = releaseReadOutside(rt, l, r)
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("SubscribeWrite never woke")
	}
}

// TestRWSubscribersAbortOnWriteAcquire: a transaction that subscribed for
// reading conflicts with a subsequent exclusive acquisition.
func TestRWSubscribersAbortOnWriteAcquire(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRWLock()
	data := stm.NewVar(0)
	w := rt.NewOwner()

	subscribed := make(chan struct{})
	var once sync.Once
	result := make(chan int, 1)
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			l.SubscribeRead(tx)
			once.Do(func() { close(subscribed) })
			v := data.Get(tx)
			result <- v
			return nil
		})
	}()
	<-subscribed
	acquireWriteOutside(rt, l, w)
	data.StoreDirect(rt, 5)
	if err := releaseWriteOutside(rt, l, w); err != nil {
		t.Fatal(err)
	}
	// The subscriber either committed before the acquire (saw 0) or was
	// invalidated and re-ran after the release (saw 5); both are
	// serializable. Drain its result.
	select {
	case <-result:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber stuck")
	}
}

// TestRWConcurrentReadersParallel: shared acquisitions don't exclude each
// other (mutual exclusion only reader-vs-writer).
func TestRWConcurrentStress(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRWLock()
	shared := 0 // protected by write lock
	var readerSaw atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			me := rt.NewOwner()
			for j := 0; j < 50; j++ {
				acquireWriteOutside(rt, l, me)
				shared++
				if err := releaseWriteOutside(rt, l, me); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			me := rt.NewOwner()
			for j := 0; j < 50; j++ {
				acquireReadOutside(rt, l, me)
				readerSaw.Add(int64(shared)) // racy read is fine: readers hold shared
				if err := releaseReadOutside(rt, l, me); err != nil {
					t.Errorf("read release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if shared != 200 {
		t.Errorf("shared = %d, want 200 (writer exclusion violated)", shared)
	}
	if l.WriterSnapshot() != 0 || l.ReadersSnapshot() != 0 {
		t.Error("lock leaked")
	}
}
