package txlock

import (
	"sync"
	"testing"
	"time"

	"deferstm/internal/stm"
)

func TestCondWaitSignal(t *testing.T) {
	rt := stm.NewDefault()
	c := NewCond()
	ready := stm.NewVar(false)
	woke := make(chan struct{})
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			if !ready.Get(tx) {
				c.Wait(tx)
			}
			return nil
		})
		close(woke)
	}()
	time.Sleep(5 * time.Millisecond)
	// Signalling without making the predicate true: waiter re-checks and
	// sleeps again (no spurious completion).
	_ = rt.Atomic(func(tx *stm.Tx) error {
		c.Signal(tx)
		return nil
	})
	select {
	case <-woke:
		t.Fatal("waiter completed with false predicate")
	case <-time.After(20 * time.Millisecond):
	}
	// Make it true and signal.
	if err := rt.Atomic(func(tx *stm.Tx) error {
		ready.Set(tx, true)
		c.Signal(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-woke:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	rt := stm.NewDefault()
	c := NewCond()
	gate := stm.NewVar(false)
	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = rt.Atomic(func(tx *stm.Tx) error {
				if !gate.Get(tx) {
					c.Wait(tx)
				}
				return nil
			})
		}()
	}
	time.Sleep(5 * time.Millisecond)
	_ = rt.Atomic(func(tx *stm.Tx) error {
		gate.Set(tx, true)
		c.Broadcast(tx)
		return nil
	})
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("broadcast missed waiters")
	}
}

func TestCondSignalDirect(t *testing.T) {
	rt := stm.NewDefault()
	c := NewCond()
	flag := stm.NewVar(false)
	woke := make(chan struct{})
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			if !flag.Get(tx) {
				c.Wait(tx)
			}
			return nil
		})
		close(woke)
	}()
	time.Sleep(5 * time.Millisecond)
	flag.StoreDirect(rt, true)
	c.SignalDirect(rt)
	select {
	case <-woke:
	case <-time.After(5 * time.Second):
		t.Fatal("SignalDirect did not wake")
	}
}

func TestCondGeneration(t *testing.T) {
	rt := stm.NewDefault()
	c := NewCond()
	var g0, g1 uint64
	_ = rt.Atomic(func(tx *stm.Tx) error { g0 = c.Generation(tx); return nil })
	_ = rt.Atomic(func(tx *stm.Tx) error { c.Signal(tx); return nil })
	_ = rt.Atomic(func(tx *stm.Tx) error { g1 = c.Generation(tx); return nil })
	if g1 != g0+1 {
		t.Errorf("generation %d -> %d", g0, g1)
	}
}

// TestCondProducerConsumer: bounded-buffer handoff driven entirely by
// condition waits (the pattern the paper's Section 1 says "most TMs do
// not support").
func TestCondProducerConsumer(t *testing.T) {
	rt := stm.NewDefault()
	notEmpty := NewCond()
	notFull := NewCond()
	buf := stm.NewVar(0) // 0 = empty
	const n = 100
	var got []int
	done := make(chan struct{})
	go func() { // consumer
		defer close(done)
		for i := 0; i < n; i++ {
			var v int
			_ = rt.Atomic(func(tx *stm.Tx) error {
				v = buf.Get(tx)
				if v == 0 {
					notEmpty.Wait(tx)
				}
				buf.Set(tx, 0)
				notFull.Signal(tx)
				return nil
			})
			got = append(got, v)
		}
	}()
	for i := 1; i <= n; i++ {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			if buf.Get(tx) != 0 {
				notFull.Wait(tx)
			}
			buf.Set(tx, i)
			notEmpty.Signal(tx)
			return nil
		})
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("handoff stalled")
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}
