package txlock

import (
	"deferstm/internal/stm"
)

// Cond is a transaction-friendly condition variable in the style of Wang,
// Liu and Spear's SPAA 2014 "Transaction-Friendly Condition Variables"
// (the work whose dedup port the paper's evaluation builds on). A waiter
// reads the condition's generation inside its transaction and retries;
// because the generation lands in the read set, any Signal or Broadcast
// (a transactional write to the generation) wakes and re-executes it.
//
// Unlike a pthread condition variable there is no separate mutex: the
// transaction is the critical section, and the "recheck the predicate
// after waking" loop is the transaction re-execution itself — so the
// lost-wakeup and spurious-wakeup hazards of classic condition variables
// are structurally absent.
//
// The zero Cond is ready to use.
type Cond struct {
	gen stm.Var[uint64]
}

// NewCond returns a new condition variable.
func NewCond() *Cond { return &Cond{} }

// Wait aborts tx and blocks until the condition is signalled, then
// re-executes the transaction from the start. Call it when the guarded
// predicate (evaluated transactionally) is false:
//
//	if !ready.Get(tx) {
//	    cond.Wait(tx)
//	}
func (c *Cond) Wait(tx *stm.Tx) {
	_ = c.gen.Get(tx) // ensure the generation is in the read set
	tx.Retry()
}

// Signal wakes waiters as part of tx (takes effect only if tx commits).
// With retry-based waiting every waiter re-evaluates its predicate, so
// Signal and Broadcast coincide; both names are provided for familiarity.
func (c *Cond) Signal(tx *stm.Tx) {
	c.gen.Set(tx, c.gen.Get(tx)+1)
}

// Broadcast is Signal (all retry waiters re-execute).
func (c *Cond) Broadcast(tx *stm.Tx) { c.Signal(tx) }

// SignalDirect wakes waiters from non-transactional code (e.g. from a
// deferred operation), with a version-bumped direct store.
func (c *Cond) SignalDirect(rt *stm.Runtime) {
	c.gen.StoreDirect(rt, c.gen.Load()+1)
}

// Generation reports the current generation inside tx (diagnostics; also
// usable to build "wait for k signals" patterns).
func (c *Cond) Generation(tx *stm.Tx) uint64 { return c.gen.Get(tx) }
