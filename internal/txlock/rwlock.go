package txlock

import (
	"fmt"

	"deferstm/internal/stm"
)

// RWLock is a transaction-friendly reader-writer lock, extending the
// paper's TxLock design (§4.2) to shared/exclusive mode — the "greater
// range of workloads" its future-work section anticipates. Like Lock, all
// state is transactional, so acquisition composes with transactions
// (atomic multi-lock acquisition, no deadlock without a lock order), and
// transactions can subscribe:
//
//   - SubscribeRead blocks while a writer holds the lock: readers of a
//     deferrable object tolerate concurrent *shared* holders;
//   - SubscribeWrite blocks while anyone holds the lock.
//
// A deferred operation that only reads its objects can hold them in
// shared mode, letting other read-only deferred operations overlap.
//
// The zero value is an unlocked RWLock. An RWLock must not be copied
// after first use.
type RWLock struct {
	writer stm.Var[stm.OwnerID] // exclusive holder (0 = none)
	depth  stm.Var[int]         // writer reentrancy depth
	// readers is a count plus a small set of reader identities for
	// reentrancy and release checking. The set is persistent (copied on
	// write) so concurrent subscribers conflict only through the Vars.
	readers stm.Var[*readerSet]
}

type readerSet struct {
	ids []stm.OwnerID // holders (an ID may appear multiple times: reentrancy)
}

func (rs *readerSet) count() int {
	if rs == nil {
		return 0
	}
	return len(rs.ids)
}

func (rs *readerSet) holds(me stm.OwnerID) bool {
	if rs == nil {
		return false
	}
	for _, id := range rs.ids {
		if id == me {
			return true
		}
	}
	return false
}

func (rs *readerSet) with(me stm.OwnerID) *readerSet {
	ids := make([]stm.OwnerID, 0, rs.count()+1)
	if rs != nil {
		ids = append(ids, rs.ids...)
	}
	return &readerSet{ids: append(ids, me)}
}

func (rs *readerSet) without(me stm.OwnerID) (*readerSet, bool) {
	if rs == nil {
		return nil, false
	}
	for i, id := range rs.ids {
		if id == me {
			ids := make([]stm.OwnerID, 0, len(rs.ids)-1)
			ids = append(ids, rs.ids[:i]...)
			ids = append(ids, rs.ids[i+1:]...)
			if len(ids) == 0 {
				return nil, true
			}
			return &readerSet{ids: ids}, true
		}
	}
	return rs, false
}

// NewRWLock returns an unlocked RWLock.
func NewRWLock() *RWLock { return &RWLock{} }

// AcquireRead obtains the lock in shared mode for tx's owner (waiting out
// any writer). Reentrant; also permitted while holding the write lock
// (downgrade-free read under exclusivity).
func (l *RWLock) AcquireRead(tx *stm.Tx) { l.AcquireReadAs(tx, tx.Owner()) }

// AcquireReadAs is AcquireRead with an explicit owner identity.
func (l *RWLock) AcquireReadAs(tx *stm.Tx, me stm.OwnerID) {
	if me == 0 {
		panic("txlock: zero OwnerID")
	}
	w := l.writer.Get(tx)
	if w != 0 && w != me {
		tx.Retry()
	}
	l.readers.Set(tx, l.readers.Get(tx).with(me))
}

// AcquireWrite obtains the lock exclusively for tx's owner, waiting out
// writers and readers (a sole reader that is itself upgrades).
func (l *RWLock) AcquireWrite(tx *stm.Tx) { l.AcquireWriteAs(tx, tx.Owner()) }

// AcquireWriteAs is AcquireWrite with an explicit owner identity.
func (l *RWLock) AcquireWriteAs(tx *stm.Tx, me stm.OwnerID) {
	if me == 0 {
		panic("txlock: zero OwnerID")
	}
	w := l.writer.Get(tx)
	if w == me {
		l.depth.Set(tx, l.depth.Get(tx)+1)
		return
	}
	if w != 0 {
		tx.Retry()
	}
	rs := l.readers.Get(tx)
	// Wait until no *other* reader holds the lock (upgrade allowed when
	// every shared hold is ours).
	for _, id := range rsIDs(rs) {
		if id != me {
			tx.Retry()
		}
	}
	l.writer.Set(tx, me)
	l.depth.Set(tx, 1)
}

func rsIDs(rs *readerSet) []stm.OwnerID {
	if rs == nil {
		return nil
	}
	return rs.ids
}

// ReleaseRead releases one shared hold.
func (l *RWLock) ReleaseRead(tx *stm.Tx) error { return l.ReleaseReadAs(tx, tx.Owner()) }

// ReleaseReadAs is ReleaseRead with an explicit owner identity.
func (l *RWLock) ReleaseReadAs(tx *stm.Tx, me stm.OwnerID) error {
	rs, ok := l.readers.Get(tx).without(me)
	if !ok {
		return fmt.Errorf("%w (read release, caller=%d)", ErrNotOwner, me)
	}
	l.readers.Set(tx, rs)
	return nil
}

// ReleaseWrite releases one exclusive hold level.
func (l *RWLock) ReleaseWrite(tx *stm.Tx) error { return l.ReleaseWriteAs(tx, tx.Owner()) }

// ReleaseWriteAs is ReleaseWrite with an explicit owner identity.
func (l *RWLock) ReleaseWriteAs(tx *stm.Tx, me stm.OwnerID) error {
	if l.writer.Get(tx) != me {
		return fmt.Errorf("%w (write release, caller=%d)", ErrNotOwner, me)
	}
	d := l.depth.Get(tx)
	if d > 1 {
		l.depth.Set(tx, d-1)
		return nil
	}
	l.depth.Set(tx, 0)
	l.writer.Set(tx, 0)
	return nil
}

// SubscribeRead elides the lock for transactional readers: it retries
// while a writer (other than the subscriber) holds the lock, and leaves
// the writer field in the read set so a later exclusive acquisition
// aborts the subscriber. Shared holders do not block it.
func (l *RWLock) SubscribeRead(tx *stm.Tx) { l.SubscribeReadAs(tx, tx.Owner()) }

// SubscribeReadAs is SubscribeRead with an explicit owner identity.
func (l *RWLock) SubscribeReadAs(tx *stm.Tx, me stm.OwnerID) {
	w := l.writer.Get(tx)
	if w != 0 && w != me {
		tx.Retry()
	}
}

// SubscribeWrite elides the lock for transactional writers: it retries
// while anyone else holds the lock in any mode.
func (l *RWLock) SubscribeWrite(tx *stm.Tx) { l.SubscribeWriteAs(tx, tx.Owner()) }

// SubscribeWriteAs is SubscribeWrite with an explicit owner identity.
func (l *RWLock) SubscribeWriteAs(tx *stm.Tx, me stm.OwnerID) {
	w := l.writer.Get(tx)
	if w != 0 && w != me {
		tx.Retry()
	}
	for _, id := range rsIDs(l.readers.Get(tx)) {
		if id != me {
			tx.Retry()
		}
	}
}

// Writer reports the current exclusive holder inside tx (0 if none).
func (l *RWLock) Writer(tx *stm.Tx) stm.OwnerID { return l.writer.Get(tx) }

// Readers reports the number of shared holds inside tx.
func (l *RWLock) Readers(tx *stm.Tx) int { return l.readers.Get(tx).count() }

// WriterSnapshot returns the exclusive holder without a transaction.
func (l *RWLock) WriterSnapshot() stm.OwnerID { return l.writer.Load() }

// ReadersSnapshot returns the shared-hold count without a transaction.
func (l *RWLock) ReadersSnapshot() int { return l.readers.Load().count() }
