package txlock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"deferstm/internal/stm"
)

func TestAcquireRelease(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	me := rt.NewOwner()
	if err := rt.AtomicAs(me, func(tx *stm.Tx) error {
		l.Acquire(tx)
		if got := l.HeldBy(tx); got != me {
			t.Errorf("HeldBy = %d, want %d", got, me)
		}
		if got := l.Depth(tx); got != 1 {
			t.Errorf("Depth = %d, want 1", got)
		}
		return l.Release(tx)
	}); err != nil {
		t.Fatal(err)
	}
	if got := l.OwnerSnapshot(); got != 0 {
		t.Errorf("owner after release = %d", got)
	}
}

func TestReentrancy(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	me := rt.NewOwner()
	if err := rt.AtomicAs(me, func(tx *stm.Tx) error {
		l.Acquire(tx)
		l.Acquire(tx)
		l.Acquire(tx)
		if d := l.Depth(tx); d != 3 {
			t.Errorf("Depth = %d, want 3", d)
		}
		if err := l.Release(tx); err != nil {
			return err
		}
		if d := l.Depth(tx); d != 2 {
			t.Errorf("Depth after one release = %d, want 2", d)
		}
		if err := l.Release(tx); err != nil {
			return err
		}
		if err := l.Release(tx); err != nil {
			return err
		}
		if got := l.HeldBy(tx); got != 0 {
			t.Errorf("still held after full release: %d", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseByNonOwner(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	a, b := rt.NewOwner(), rt.NewOwner()
	l.AcquireOutside(rt, a)
	var rerr error
	if err := rt.AtomicAs(b, func(tx *stm.Tx) error {
		rerr = l.Release(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rerr, ErrNotOwner) {
		t.Errorf("err = %v, want ErrNotOwner", rerr)
	}
	// Still held by a.
	if got := l.OwnerSnapshot(); got != a {
		t.Errorf("owner = %d, want %d", got, a)
	}
	if err := l.ReleaseOutside(rt, a); err != nil {
		t.Fatal(err)
	}
}

func TestHandoffFatal(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	a, b := rt.NewOwner(), rt.NewOwner()
	l.AcquireOutside(rt, a)
	defer l.ReleaseOutside(rt, a) //nolint:errcheck
	HandoffFatal = true
	defer func() { HandoffFatal = false }()
	defer func() {
		if recover() == nil {
			t.Error("expected panic with HandoffFatal")
		}
	}()
	_ = rt.AtomicAs(b, func(tx *stm.Tx) error {
		return l.Release(tx)
	})
}

func TestZeroOwnerPanics(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero OwnerID")
		}
	}()
	_ = rt.AtomicAs(1, func(tx *stm.Tx) error {
		l.AcquireAs(tx, 0)
		return nil
	})
}

func TestMutualExclusionOutside(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	shared := 0 // protected by l, accessed outside transactions
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			me := rt.NewOwner()
			for i := 0; i < per; i++ {
				l.AcquireOutside(rt, me)
				shared++
				if err := l.ReleaseOutside(rt, me); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if shared != workers*per {
		t.Errorf("shared = %d, want %d (mutual exclusion violated)", shared, workers*per)
	}
}

func TestAcquireBlocksUntilReleased(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	a, b := rt.NewOwner(), rt.NewOwner()
	l.AcquireOutside(rt, a)
	acquired := make(chan struct{})
	go func() {
		l.AcquireOutside(rt, b)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second owner acquired a held lock")
	case <-time.After(20 * time.Millisecond):
	}
	if err := l.ReleaseOutside(rt, a); err != nil {
		t.Fatal(err)
	}
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked acquirer never woke")
	}
	_ = l.ReleaseOutside(rt, b)
}

func TestTryAcquire(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	a, b := rt.NewOwner(), rt.NewOwner()
	l.AcquireOutside(rt, a)
	var ok bool
	_ = rt.AtomicAs(b, func(tx *stm.Tx) error {
		ok = l.TryAcquire(tx)
		return nil
	})
	if ok {
		t.Error("TryAcquire succeeded on held lock")
	}
	_ = rt.AtomicAs(a, func(tx *stm.Tx) error {
		if !l.TryAcquire(tx) {
			t.Error("reentrant TryAcquire failed")
		}
		return nil
	})
}

// TestSubscribeConflictsWithAcquire is the heart of atomic deferral: a
// transaction that subscribed to a lock must abort (and re-execute) when
// another thread acquires the lock, and must not observe state the lock
// owner mutates while holding it.
func TestSubscribeConflictsWithAcquire(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	data := stm.NewVar(0)

	holder := rt.NewOwner()
	l.AcquireOutside(rt, holder)

	subscribed := make(chan struct{})
	result := make(chan int, 1)
	var once sync.Once
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			once.Do(func() { close(subscribed) })
			l.Subscribe(tx) // must retry until the lock is free
			result <- data.Get(tx)
			return nil
		})
	}()
	<-subscribed
	select {
	case <-result:
		t.Fatal("subscriber proceeded past a held lock")
	case <-time.After(20 * time.Millisecond):
	}
	// Mutate protected state while holding the lock (as a deferred
	// operation would), then release.
	data.StoreDirect(rt, 42)
	if err := l.ReleaseOutside(rt, holder); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-result:
		if v != 42 {
			t.Errorf("subscriber saw %d, want 42 (post-release state)", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never completed")
	}
}

// TestSubscribeSelfHeld: subscribing to a lock you hold does not block.
func TestSubscribeSelfHeld(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	me := rt.NewOwner()
	l.AcquireOutside(rt, me)
	done := make(chan struct{})
	go func() {
		_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
			l.Subscribe(tx)
			close(done)
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("self-subscription blocked")
	}
	_ = l.ReleaseOutside(rt, me)
}

// TestConcurrentSubscribers: many transactions may subscribe to an unheld
// lock simultaneously without conflicting with each other.
func TestConcurrentSubscribers(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	data := stm.NewVar(7)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = rt.Atomic(func(tx *stm.Tx) error {
					l.Subscribe(tx)
					_ = data.Get(tx)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	// Read-only subscriptions must not have aborted each other much, and
	// the lock must be free.
	if l.OwnerSnapshot() != 0 {
		t.Error("lock left held")
	}
}

// TestMultiLockNoDeadlock: two threads acquire the same two locks in
// opposite orders inside transactions. With transaction-friendly locks
// this cannot deadlock (acquisition is atomic at commit).
func TestMultiLockNoDeadlock(t *testing.T) {
	rt := stm.NewDefault()
	l1, l2 := NewLock(), NewLock()
	var wg sync.WaitGroup
	run := func(first, second *Lock) {
		defer wg.Done()
		me := rt.NewOwner()
		for i := 0; i < 200; i++ {
			// Acquire both in one transaction (possibly waiting), then
			// release both in another.
			_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
				first.Acquire(tx)
				second.Acquire(tx)
				return nil
			})
			_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
				if err := first.Release(tx); err != nil {
					return err
				}
				return second.Release(tx)
			})
		}
	}
	wg.Add(2)
	go run(l1, l2)
	go run(l2, l1)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock in opposite-order acquisition")
	}
	if l1.OwnerSnapshot() != 0 || l2.OwnerSnapshot() != 0 {
		t.Error("locks left held")
	}
}

// TestLockAcquisitionSurvivesCommit: a lock acquired in one transaction is
// still held in the next (this is what lets deferred operations run under
// the lock after the deferring transaction commits).
func TestLockAcquisitionSurvivesCommit(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	me := rt.NewOwner()
	if err := rt.AtomicAs(me, func(tx *stm.Tx) error {
		l.Acquire(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := l.OwnerSnapshot(); got != me {
		t.Fatalf("owner after commit = %d, want %d", got, me)
	}
	// Another transaction's Subscribe must block now.
	blocked := make(chan struct{})
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			l.Subscribe(tx)
			close(blocked)
			return nil
		})
	}()
	select {
	case <-blocked:
		t.Fatal("subscription passed a lock held across commit")
	case <-time.After(20 * time.Millisecond):
	}
	if err := l.ReleaseOutside(rt, me); err != nil {
		t.Fatal(err)
	}
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never woke")
	}
}

// TestAbortedAcquireLeavesLockFree: if the acquiring transaction aborts,
// the lock was never acquired.
func TestAbortedAcquireLeavesLockFree(t *testing.T) {
	rt := stm.NewDefault()
	l := NewLock()
	sentinel := errors.New("abort")
	err := rt.Atomic(func(tx *stm.Tx) error {
		l.Acquire(tx)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatal(err)
	}
	if got := l.OwnerSnapshot(); got != 0 {
		t.Errorf("aborted acquire leaked ownership: %d", got)
	}
}
