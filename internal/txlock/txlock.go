// Package txlock implements the paper's transaction-friendly mutual
// exclusion locks (Listing 2): reentrant mutexes whose owner and depth are
// ordinary transactional data, so that
//
//   - locks can be acquired and released inside transactions — acquisition
//     is just a transactional write, so acquiring several locks inside one
//     transaction is deadlock-free without a global lock order;
//   - transactions can *subscribe* to a lock: a transactional read of the
//     owner field that retries while the lock is held by someone else.
//     Once any thread acquires the lock, every subscribed transaction
//     conflicts with the new owner's commit and aborts.
//
// Because the fields are transactional variables they need not be packed
// into one machine word, and the TM provides the fence semantics the paper
// relies on.
package txlock

import (
	"errors"
	"fmt"

	"deferstm/internal/stm"
)

// ErrNotOwner is returned (wrapped) when Release is called by a
// non-owner. The paper's Listing 2 makes lock handoff a fatal error; we
// surface it as an error so tests can exercise it, and HandoffFatal can be
// enabled to restore the paper's behaviour.
var ErrNotOwner = errors.New("txlock: release by non-owner")

// HandoffFatal, when true, makes Release panic (as in Listing 2) instead
// of returning ErrNotOwner.
var HandoffFatal = false

// Lock is a transaction-friendly, reentrant mutual exclusion lock.
// The zero value is an unlocked Lock, so it can be embedded directly in
// deferrable objects (package core relies on this). A Lock must not be
// copied after first use.
type Lock struct {
	owner stm.Var[stm.OwnerID] // 0 = unheld
	depth stm.Var[int]
}

// NewLock returns an unlocked Lock.
func NewLock() *Lock { return &Lock{} }

// Acquire obtains the lock inside tx on behalf of tx's owner identity
// (Listing 2, TxLock.Acquire). If the lock is unheld it becomes owned at
// depth 1; if already held by this owner the depth increments; otherwise
// the transaction retries (blocking until the lock is released, then
// re-executing). The acquisition takes effect only when tx commits —
// which is exactly what makes multi-lock acquisition deadlock-free.
func (l *Lock) Acquire(tx *stm.Tx) {
	l.AcquireAs(tx, tx.Owner())
}

// AcquireAs is Acquire with an explicit owner identity (for locks held
// across transactions by one logical thread).
func (l *Lock) AcquireAs(tx *stm.Tx, me stm.OwnerID) {
	if me == 0 {
		panic("txlock: zero OwnerID")
	}
	cur := l.owner.Get(tx)
	switch cur {
	case 0:
		l.owner.Set(tx, me)
		l.depth.Set(tx, 1)
		l.recordOp(tx, stm.EvLockAcquire, me, 1)
	case me:
		d := l.depth.Get(tx) + 1
		l.depth.Set(tx, d)
		l.recordOp(tx, stm.EvLockAcquire, me, uint64(d))
	default:
		// Held by another thread: wait (the paper spins/yields and
		// retries; our runtime blocks until the owner field changes).
		tx.Retry()
	}
}

// TryAcquire is like Acquire but returns false instead of waiting when the
// lock is held by another owner.
func (l *Lock) TryAcquire(tx *stm.Tx) bool { return l.TryAcquireAs(tx, tx.Owner()) }

// TryAcquireAs is TryAcquire with an explicit owner identity.
func (l *Lock) TryAcquireAs(tx *stm.Tx, me stm.OwnerID) bool {
	if me == 0 {
		panic("txlock: zero OwnerID")
	}
	cur := l.owner.Get(tx)
	switch cur {
	case 0:
		l.owner.Set(tx, me)
		l.depth.Set(tx, 1)
		l.recordOp(tx, stm.EvLockAcquire, me, 1)
		return true
	case me:
		d := l.depth.Get(tx) + 1
		l.depth.Set(tx, d)
		l.recordOp(tx, stm.EvLockAcquire, me, uint64(d))
		return true
	default:
		return false
	}
}

// Release releases one level of the lock inside tx (Listing 2,
// TxLock.Release). Releasing a lock not held by tx's owner returns
// ErrNotOwner (or panics if HandoffFatal).
func (l *Lock) Release(tx *stm.Tx) error {
	return l.ReleaseAs(tx, tx.Owner())
}

// ReleaseAs is Release with an explicit owner identity.
func (l *Lock) ReleaseAs(tx *stm.Tx, me stm.OwnerID) error {
	cur := l.owner.Get(tx)
	if cur != me {
		if HandoffFatal {
			panic(fmt.Sprintf("txlock: release of lock owned by %d by %d", cur, me))
		}
		return fmt.Errorf("%w (owner=%d, caller=%d)", ErrNotOwner, cur, me)
	}
	d := l.depth.Get(tx)
	if d > 1 {
		l.depth.Set(tx, d-1)
		l.recordOp(tx, stm.EvLockRelease, me, uint64(d-1))
		return nil
	}
	l.depth.Set(tx, 0)
	l.owner.Set(tx, 0)
	l.recordOp(tx, stm.EvLockRelease, me, 0)
	return nil
}

// Subscribe elides the lock inside a transaction (Listing 2,
// TxLock.Subscribe): it blocks (via retry) until the lock is unheld or
// held by the subscribing owner, and — crucially — leaves the owner field
// in tx's read set, so that any subsequent acquisition of the lock
// invalidates and aborts tx. Multiple transactions may subscribe
// concurrently: subscription only reads.
func (l *Lock) Subscribe(tx *stm.Tx) {
	l.SubscribeAs(tx, tx.Owner())
}

// SubscribeAs is Subscribe with an explicit owner identity.
func (l *Lock) SubscribeAs(tx *stm.Tx, me stm.OwnerID) {
	cur := l.owner.Get(tx)
	if cur != 0 && cur != me {
		tx.Retry()
	}
	l.recordOp(tx, stm.EvLockSubscribe, me, uint64(cur))
}

// VarID returns the identifier of the lock's owner variable, as used in
// recorded history events (internal/history, internal/check).
func (l *Lock) VarID() uint64 { return l.owner.ID() }

// recordOp queues a lock-transition event on tx, emitted only if the
// attempt commits (an aborted acquire never took effect, so it leaves
// no trace in the history).
func (l *Lock) recordOp(tx *stm.Tx, kind stm.EventKind, me stm.OwnerID, aux uint64) {
	if !tx.Runtime().Recording() {
		return
	}
	tx.RecordOnCommit(stm.Event{Kind: kind, Owner: me, Var: l.owner.ID(), Aux: aux})
}

// HeldBy reports the current owner (0 if unheld) inside tx.
func (l *Lock) HeldBy(tx *stm.Tx) stm.OwnerID { return l.owner.Get(tx) }

// Depth reports the current reentrancy depth inside tx.
func (l *Lock) Depth(tx *stm.Tx) int { return l.depth.Get(tx) }

// OwnerSnapshot returns the owner without a transaction (diagnostics).
func (l *Lock) OwnerSnapshot() stm.OwnerID { return l.owner.Load() }

// AcquireOutside acquires the lock from non-transactional code by running
// a small transaction, blocking until acquired. It is the building block
// for using TxLocks as plain mutexes in lock-based code paths ("mix and
// match" in the paper's terms).
func (l *Lock) AcquireOutside(rt *stm.Runtime, me stm.OwnerID) {
	_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
		l.AcquireAs(tx, me)
		return nil
	})
}

// ReleaseOutside releases the lock from non-transactional code.
func (l *Lock) ReleaseOutside(rt *stm.Runtime, me stm.OwnerID) error {
	var rerr error
	err := rt.AtomicAs(me, func(tx *stm.Tx) error {
		rerr = l.ReleaseAs(tx, me)
		return nil
	})
	if err != nil {
		return err
	}
	return rerr
}
