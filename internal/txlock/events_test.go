// Negative-path tests for transaction-friendly locks, verified through
// the recorded event history rather than only through end-state: lock
// transitions must appear in the history exactly once per committed
// transition, and never for aborted attempts.
package txlock_test

import (
	"errors"
	"testing"
	"time"

	"deferstm/internal/history"
	"deferstm/internal/stm"
	"deferstm/internal/txlock"
)

// countKind tallies lock events of one kind, optionally per owner.
func countKind(evs []stm.Event, kind stm.EventKind, owner stm.OwnerID) int {
	n := 0
	for _, ev := range evs {
		if ev.Kind == kind && (owner == 0 || ev.Owner == owner) {
			n++
		}
	}
	return n
}

// A transaction that subscribes to a lock held by another owner must
// retry (block) until the release, and the only subscription that
// reaches the history is the committed one that observed the lock free.
func TestSubscribeOnHeldLockRetries(t *testing.T) {
	log := history.New()
	rt := stm.New(stm.Config{Recorder: log})
	l := txlock.NewLock()

	holder := rt.NewOwner()
	l.AcquireOutside(rt, holder)

	subscribed := make(chan struct{})
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			l.Subscribe(tx)
			return nil
		})
		close(subscribed)
	}()

	// The subscriber must be blocked while the lock is held.
	select {
	case <-subscribed:
		t.Fatal("subscriber committed while the lock was held")
	case <-time.After(30 * time.Millisecond):
	}

	if err := l.ReleaseOutside(rt, holder); err != nil {
		t.Fatal(err)
	}
	select {
	case <-subscribed:
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber still blocked after release")
	}

	evs := log.Events()
	subs := 0
	for _, ev := range evs {
		if ev.Kind == stm.EvLockSubscribe {
			subs++
			if ev.Aux != 0 {
				t.Fatalf("committed subscription observed owner %d, want 0 (free)", ev.Aux)
			}
		}
	}
	if subs != 1 {
		t.Fatalf("recorded %d committed subscriptions, want exactly 1", subs)
	}
	// The blocked period must show up as at least one retry abort.
	aborts := 0
	for _, ev := range evs {
		if ev.Kind == stm.EvAbort && ev.Aux == stm.AbortCauseRetry {
			aborts++
		}
	}
	if aborts == 0 {
		t.Fatal("no retry abort recorded; the subscriber never actually waited")
	}
}

// Reentrant depth accounting across injected aborts and retries: each
// committed acquire/release transition appears in the history exactly
// once, even though many attempts aborted and re-executed, and the
// depth annotations step 1,2 on acquire and 1,0 on release.
func TestReentrantDepthAcrossAbortRetry(t *testing.T) {
	log := history.New()
	rt := stm.New(stm.Config{
		Recorder: log,
		Inject:   &stm.Inject{Seed: 3, ConflictPct: 50},
	})
	l := txlock.NewLock()
	me := rt.NewOwner()

	const rounds = 25
	for i := 0; i < rounds; i++ {
		if err := rt.AtomicAs(me, func(tx *stm.Tx) error {
			l.Acquire(tx)
			l.Acquire(tx) // reentrant: depth 2
			if d := l.Depth(tx); d != 2 {
				t.Errorf("depth inside tx = %d, want 2", d)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := rt.AtomicAs(me, func(tx *stm.Tx) error {
			if err := l.Release(tx); err != nil {
				return err
			}
			return l.Release(tx)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if l.OwnerSnapshot() != 0 {
		t.Fatalf("lock leaked: owner %d", l.OwnerSnapshot())
	}
	if rt.Snapshot().InjectedFaults == 0 {
		t.Fatal("injector fired no faults")
	}

	evs := log.Events()
	acq := countKind(evs, stm.EvLockAcquire, me)
	rel := countKind(evs, stm.EvLockRelease, me)
	if acq != 2*rounds || rel != 2*rounds {
		t.Fatalf("acquires=%d releases=%d, want %d each: aborted attempts leaked lock events",
			acq, rel, 2*rounds)
	}
	// Depth annotations: acquires alternate 1,2; releases alternate 1,0.
	var acqDepths, relDepths []uint64
	for _, ev := range evs {
		switch ev.Kind {
		case stm.EvLockAcquire:
			acqDepths = append(acqDepths, ev.Aux)
		case stm.EvLockRelease:
			relDepths = append(relDepths, ev.Aux)
		}
	}
	for i, d := range acqDepths {
		if want := uint64(i%2 + 1); d != want {
			t.Fatalf("acquire %d recorded depth %d, want %d", i, d, want)
		}
	}
	for i, d := range relDepths {
		if want := uint64(1 - i%2); d != want {
			t.Fatalf("release %d recorded depth %d, want %d", i, d, want)
		}
	}
}

// Release by a non-owner fails with ErrNotOwner and must leave no
// release event in the history (the transition never happened).
func TestReleaseByNonOwnerEmitsNoEvent(t *testing.T) {
	log := history.New()
	rt := stm.New(stm.Config{Recorder: log})
	l := txlock.NewLock()
	holder, thief := rt.NewOwner(), rt.NewOwner()
	l.AcquireOutside(rt, holder)

	err := l.ReleaseOutside(rt, thief)
	if !errors.Is(err, txlock.ErrNotOwner) {
		t.Fatalf("err = %v, want ErrNotOwner", err)
	}
	if n := countKind(log.Events(), stm.EvLockRelease, 0); n != 0 {
		t.Fatalf("%d release events recorded for a failed release", n)
	}
	if err := l.ReleaseOutside(rt, holder); err != nil {
		t.Fatal(err)
	}
	if n := countKind(log.Events(), stm.EvLockRelease, holder); n != 1 {
		t.Fatalf("%d release events for the real release, want 1", n)
	}
}

// TryAcquire on a held lock fails without waiting and without emitting
// an acquire event; on a free lock it emits exactly one.
func TestTryAcquireEventDiscipline(t *testing.T) {
	log := history.New()
	rt := stm.New(stm.Config{Recorder: log})
	l := txlock.NewLock()
	holder, other := rt.NewOwner(), rt.NewOwner()
	l.AcquireOutside(rt, holder)

	got := true
	if err := rt.AtomicAs(other, func(tx *stm.Tx) error {
		got = l.TryAcquireAs(tx, other)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("TryAcquire succeeded on a held lock")
	}
	if n := countKind(log.Events(), stm.EvLockAcquire, other); n != 0 {
		t.Fatalf("%d acquire events recorded for a failed TryAcquire", n)
	}
}
