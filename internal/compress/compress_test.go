package compress

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	c := Compress(nil, src)
	got, err := Decompress(c)
	if err != nil {
		t.Fatalf("Decompress(%d bytes): %v", len(src), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
	}
	return c
}

func TestRoundTripBasic(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abc"),
		[]byte("abcd"),
		[]byte("hello hello hello hello"),
		bytes.Repeat([]byte("x"), 10_000),
		[]byte(strings.Repeat("the quick brown fox ", 500)),
	}
	for i, c := range cases {
		t.Run(string(rune('a'+i)), func(t *testing.T) {
			roundTrip(t, c)
		})
	}
}

func TestCompressibleDataShrinks(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 4096)
	c := roundTrip(t, src)
	if r := Ratio(len(src), len(c)); r > 0.2 {
		t.Errorf("ratio = %.2f for highly repetitive data", r)
	}
}

func TestIncompressibleDataBounded(t *testing.T) {
	src := make([]byte, 64*1024)
	x := uint64(99)
	for i := range src {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		src[i] = byte(x)
	}
	c := roundTrip(t, src)
	if len(c) > MaxCompressedLen(len(src)) {
		t.Errorf("compressed %d > bound %d", len(c), MaxCompressedLen(len(src)))
	}
	if r := Ratio(len(src), len(c)); r > 1.1 {
		t.Errorf("expansion ratio = %.3f too large", r)
	}
}

func TestLongMatchExtendedLengths(t *testing.T) {
	// A single run longer than 15+255*k exercises extension bytes on both
	// the literal and match sides.
	var src []byte
	src = append(src, bytes.Repeat([]byte{'L'}, 3000)...) // long match after first bytes
	lits := make([]byte, 300)                             // long literal run (incompressible)
	x := uint64(7)
	for i := range lits {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		lits[i] = byte(x)
	}
	src = append(src, lits...)
	roundTrip(t, src)
}

func TestTextRatio(t *testing.T) {
	text := strings.Repeat("Transactional memory simplifies concurrent programming. ", 2000)
	c := roundTrip(t, []byte(text))
	if r := Ratio(len(text), len(c)); r > 0.25 {
		t.Errorf("text ratio = %.3f, expected < 0.25 for repetitive text", r)
	}
}

func TestDecompressedLen(t *testing.T) {
	src := []byte("some content to compress")
	c := Compress(nil, src)
	n, err := DecompressedLen(c)
	if err != nil || n != len(src) {
		t.Errorf("DecompressedLen = %d,%v want %d", n, err, len(src))
	}
}

func TestDecompressErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"short":        {'D'},
		"bad magic":    []byte("XXXX\x00"),
		"no length":    {'D', 'L', 'Z', '1'},
		"trunc length": {'D', 'L', 'Z', '1', 0xFF},
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Decompress(in); err == nil {
				t.Error("expected error")
			}
		})
	}
	// Valid header, then garbage body.
	good := Compress(nil, bytes.Repeat([]byte("abcd1234"), 100))
	bad := append([]byte{}, good...)
	for i := 10; i < len(bad); i += 3 {
		bad[i] ^= 0x5A
	}
	if _, err := Decompress(bad); err == nil {
		// Corruption may coincidentally decode, but the size check makes
		// that extraordinarily unlikely for this pattern.
		t.Log("corrupted stream decoded — checking content")
		out, _ := Decompress(bad)
		if bytes.Equal(out, bytes.Repeat([]byte("abcd1234"), 100)) {
			t.Error("corruption had no effect")
		}
	}
	// Truncations must error, never panic.
	for cut := 1; cut < len(good); cut += 5 {
		if _, err := Decompress(good[:cut]); err == nil {
			out, _ := Decompress(good[:cut])
			if len(out) == 800 {
				t.Errorf("truncation at %d decoded fully", cut)
			}
		}
	}
}

func TestErrorsAreClassified(t *testing.T) {
	if _, err := Decompress(nil); !errors.Is(err, ErrTooShort) {
		t.Errorf("nil input: %v", err)
	}
	if _, err := Decompress([]byte("XXXXXXXX")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: %v", err)
	}
}

func TestRatioHelper(t *testing.T) {
	if Ratio(0, 10) != 1 {
		t.Error("empty original should report 1")
	}
	if Ratio(100, 50) != 0.5 {
		t.Error("ratio math wrong")
	}
}

// Property: round trip for arbitrary byte slices.
func TestRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		c := Compress(nil, src)
		got, err := Decompress(c)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Decompress never panics on arbitrary input.
func TestDecompressNeverPanics(t *testing.T) {
	f := func(junk []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Decompress(junk)
		// Also with a valid header prepended.
		withHdr := append([]byte{'D', 'L', 'Z', '1', 40}, junk...)
		_, _ = Decompress(withHdr)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: compression is deterministic.
func TestCompressDeterministic(t *testing.T) {
	f := func(src []byte) bool {
		return bytes.Equal(Compress(nil, src), Compress(nil, src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: appending to dst preserves the prefix.
func TestCompressAppendsToDst(t *testing.T) {
	prefix := []byte("PREFIX")
	src := []byte("payload payload payload")
	out := Compress(append([]byte{}, prefix...), src)
	if !bytes.HasPrefix(out, prefix) {
		t.Error("dst prefix clobbered")
	}
	got, err := Decompress(out[len(prefix):])
	if err != nil || !bytes.Equal(got, src) {
		t.Errorf("decode after prefix: %v", err)
	}
}

func BenchmarkCompress64K(b *testing.B) {
	src := []byte(strings.Repeat("benchmark data with some repetition and entropy 0123456789 ", 1200))[:64*1024]
	b.SetBytes(int64(len(src)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = Compress(dst[:0], src)
	}
}

func BenchmarkDecompress64K(b *testing.B) {
	src := []byte(strings.Repeat("benchmark data with some repetition and entropy 0123456789 ", 1200))[:64*1024]
	c := Compress(nil, src)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(c); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCompressLevelRoundTrip(t *testing.T) {
	data := []byte(strings.Repeat("level test data with patterns 0123456789 ", 800))
	for _, effort := range []int{1, 2, 8, 32, 128} {
		c := CompressLevel(nil, data, effort)
		got, err := Decompress(c)
		if err != nil {
			t.Fatalf("effort %d: %v", effort, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("effort %d: round trip mismatch", effort)
		}
	}
}

func TestCompressLevelEffortOneMatchesCompress(t *testing.T) {
	data := []byte(strings.Repeat("identical output check ", 500))
	if !bytes.Equal(CompressLevel(nil, data, 1), Compress(nil, data)) {
		t.Error("effort 1 differs from Compress")
	}
	if !bytes.Equal(CompressLevel(nil, data, 0), Compress(nil, data)) {
		t.Error("effort 0 differs from Compress")
	}
}

func TestCompressLevelHigherEffortNotWorse(t *testing.T) {
	// On repetitive-but-varied data, deeper search should not produce a
	// (meaningfully) larger stream.
	var data []byte
	x := uint64(17)
	for i := 0; i < 2000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		word := []byte{'w', byte('a' + x%13), byte('a' + x%7), ' '}
		data = append(data, word...)
	}
	low := len(CompressLevel(nil, data, 1))
	high := len(CompressLevel(nil, data, 64))
	if high > low+low/20 {
		t.Errorf("effort 64 output %d noticeably larger than effort 1 output %d", high, low)
	}
}

// Property: CompressLevel round-trips at arbitrary efforts.
func TestCompressLevelProperty(t *testing.T) {
	f := func(src []byte, effort uint8) bool {
		c := CompressLevel(nil, src, int(effort%40))
		got, err := Decompress(c)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChainBytes(t *testing.T) {
	if ChainBytes(1000) != 4000 {
		t.Error("ChainBytes wrong")
	}
}

func BenchmarkCompressLevel32_32K(b *testing.B) {
	src := []byte(strings.Repeat("benchmark data with some repetition and entropy 0123456789 ", 600))[:32*1024]
	b.SetBytes(int64(len(src)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = CompressLevel(dst[:0], src, 32)
	}
}
