// Package compress implements a from-scratch LZ77 byte compressor, the
// Compress stage of the dedup kernel.
//
// In the paper, dedup's Compress is the long-running *pure* function whose
// in-transaction execution overflows HTM capacity and stretches STM
// quiescence windows (Section 6.2); deferring it is what makes the
// +DeferAll configurations scale. The reproduction needs real CPU work
// with a real memory footprint, so this is a genuine compressor (an
// LZ4-style format: greedy hash-table matching, nibble-packed token
// lengths, two-byte offsets), not a stub.
//
// Format (after a 4-byte magic and a uvarint decompressed length):
//
//	sequence := token [litlen-ext*] literal* (offset16 [matchlen-ext*])?
//	token    := litLen<<4 | matchLen-4   (15 in a nibble = extended by
//	            255-continuation bytes)
//
// The final sequence of a stream carries only literals (no offset).
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var magic = [4]byte{'D', 'L', 'Z', '1'}

// Errors returned by Decompress.
var (
	ErrCorrupt  = errors.New("compress: corrupt input")
	ErrTooShort = errors.New("compress: input too short")
)

const (
	minMatch  = 4
	maxOffset = 65535
	hashBits  = 14
	hashShift = 32 - hashBits
)

// TableBytes is the size of the compressor's match-finding hash table.
// It is part of Compress's working set: when Compress runs inside a
// hardware transaction, these bytes count against the transaction's write
// capacity (the dedup pipeline models exactly that).
const TableBytes = (1 << hashBits) * 4

func hash4(u uint32) uint32 { return (u * 2654435761) >> hashShift }

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// MaxCompressedLen bounds the output size for an input of length n.
func MaxCompressedLen(n int) int {
	return len(magic) + binary.MaxVarintLen64 + n + n/255 + 16
}

// Compress appends the compressed form of src to dst and returns the
// result. dst may be nil.
func Compress(dst, src []byte) []byte {
	dst = append(dst, magic[:]...)
	var lenBuf [binary.MaxVarintLen64]byte
	dst = append(dst, lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(src)))]...)

	if len(src) < minMatch+4 {
		// Too small to match anything: one literal-only sequence.
		return appendSequence(dst, src, 0, 0)
	}

	var table [1 << hashBits]int32 // position+1 of the last occurrence
	litStart := 0
	i := 0
	// Leave room so load32 never reads past the end.
	limit := len(src) - minMatch
	for i <= limit {
		h := hash4(load32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand >= 0 && i-cand <= maxOffset && load32(src, cand) == load32(src, i) {
			// Extend the match.
			matchLen := minMatch
			for i+matchLen < len(src) && src[cand+matchLen] == src[i+matchLen] {
				matchLen++
			}
			dst = appendSequence(dst, src[litStart:i], i-cand, matchLen)
			// Index a couple of positions inside the match to help
			// later matches, then skip past it.
			end := i + matchLen
			for j := i + 1; j < end && j <= limit; j += 7 {
				table[hash4(load32(src, j))] = int32(j + 1)
			}
			i = end
			litStart = i
			continue
		}
		i++
	}
	// Trailing literals.
	return appendSequence(dst, src[litStart:], 0, 0)
}

// appendSequence emits one sequence. offset==0 means a final literal-only
// sequence (no match part is written).
func appendSequence(dst, lits []byte, offset, matchLen int) []byte {
	litLen := len(lits)
	if offset == 0 && litLen == 0 {
		return dst
	}
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	mlCode := 0
	if offset != 0 {
		mlCode = matchLen - minMatch
		if mlCode >= 15 {
			token |= 15
		} else {
			token |= byte(mlCode)
		}
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendExtLen(dst, litLen-15)
	}
	dst = append(dst, lits...)
	if offset != 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		if mlCode >= 15 {
			dst = appendExtLen(dst, mlCode-15)
		}
	}
	return dst
}

func appendExtLen(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// ChainBytes is the size of the hash-chain table CompressLevel allocates
// for an input of n bytes — also part of the compressor's working set
// when it runs inside a hardware transaction.
func ChainBytes(n int) int { return 4 * n }

// CompressLevel appends the compressed form of src to dst, searching up
// to `effort` match candidates per position through hash chains (gzip-
// style). effort <= 1 is identical to Compress (single candidate); higher
// effort finds longer matches at roughly proportional CPU cost. The
// output format is identical and decodes with Decompress.
//
// Dedup's Compress stage uses a high effort: it is the "long-running pure
// function" of the paper's Section 6.2, and its working set (input,
// output, the 64 KiB head table, and a 4n-byte chain table) is what
// overflows hardware-transaction capacity.
func CompressLevel(dst, src []byte, effort int) []byte {
	if effort <= 1 {
		return Compress(dst, src)
	}
	dst = append(dst, magic[:]...)
	var lenBuf [binary.MaxVarintLen64]byte
	dst = append(dst, lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(src)))]...)
	if len(src) < minMatch+4 {
		return appendSequence(dst, src, 0, 0)
	}

	var head [1 << hashBits]int32 // position+1 of most recent occurrence
	prev := make([]int32, len(src))
	insert := func(j int) {
		h := hash4(load32(src, j))
		prev[j] = head[h]
		head[h] = int32(j + 1)
	}

	litStart := 0
	i := 0
	limit := len(src) - minMatch
	for i <= limit {
		h := hash4(load32(src, i))
		bestLen, bestOff := 0, 0
		cand := int(head[h]) - 1
		for depth := effort; cand >= 0 && depth > 0; depth-- {
			if i-cand > maxOffset {
				break // chain is recency-ordered; the rest are farther
			}
			if load32(src, cand) == load32(src, i) {
				l := minMatch
				for i+l < len(src) && src[cand+l] == src[i+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestOff = l, i-cand
				}
			}
			cand = int(prev[cand]) - 1
		}
		if bestLen >= minMatch {
			dst = appendSequence(dst, src[litStart:i], bestOff, bestLen)
			end := i + bestLen
			for j := i; j < end && j <= limit; j++ {
				insert(j)
			}
			i = end
			litStart = i
			continue
		}
		insert(i)
		i++
	}
	return appendSequence(dst, src[litStart:], 0, 0)
}

// DecompressedLen reports the decompressed size recorded in a compressed
// stream without decompressing it.
func DecompressedLen(src []byte) (int, error) {
	if len(src) < len(magic)+1 {
		return 0, ErrTooShort
	}
	for i := range magic {
		if src[i] != magic[i] {
			return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	n, k := binary.Uvarint(src[len(magic):])
	if k <= 0 {
		return 0, fmt.Errorf("%w: bad length", ErrCorrupt)
	}
	if n > 1<<32 {
		return 0, fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	return int(n), nil
}

// Decompress decodes src (produced by Compress) and returns the original
// bytes. It never panics on corrupt input.
func Decompress(src []byte) ([]byte, error) {
	want, err := DecompressedLen(src)
	if err != nil {
		return nil, err
	}
	pos := len(magic)
	_, k := binary.Uvarint(src[pos:])
	pos += k

	out := make([]byte, 0, want)
	for pos < len(src) {
		token := src[pos]
		pos++
		litLen := int(token >> 4)
		if litLen == 15 {
			litLen, pos, err = readExtLen(src, pos, litLen)
			if err != nil {
				return nil, err
			}
		}
		if pos+litLen > len(src) {
			return nil, fmt.Errorf("%w: literal overrun", ErrCorrupt)
		}
		out = append(out, src[pos:pos+litLen]...)
		pos += litLen
		if pos == len(src) {
			break // final literal-only sequence
		}
		if pos+2 > len(src) {
			return nil, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(src[pos]) | int(src[pos+1])<<8
		pos += 2
		if offset == 0 || offset > len(out) {
			return nil, fmt.Errorf("%w: bad offset %d at %d", ErrCorrupt, offset, len(out))
		}
		matchLen := int(token & 15)
		if matchLen == 15 {
			matchLen, pos, err = readExtLen(src, pos, matchLen)
			if err != nil {
				return nil, err
			}
		}
		matchLen += minMatch
		if len(out)+matchLen > want {
			return nil, fmt.Errorf("%w: output overrun", ErrCorrupt)
		}
		// Byte-by-byte copy: offsets shorter than the match length
		// replicate (RLE-style), as in LZ4.
		start := len(out) - offset
		for i := 0; i < matchLen; i++ {
			out = append(out, out[start+i])
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("%w: size mismatch got %d want %d", ErrCorrupt, len(out), want)
	}
	return out, nil
}

func readExtLen(src []byte, pos, base int) (int, int, error) {
	n := base
	for {
		if pos >= len(src) {
			return 0, 0, fmt.Errorf("%w: truncated length", ErrCorrupt)
		}
		b := src[pos]
		pos++
		n += int(b)
		if b != 255 {
			return n, pos, nil
		}
	}
}

// Ratio returns compressedLen/originalLen for reporting (1.0 when the
// original is empty).
func Ratio(original, compressed int) float64 {
	if original == 0 {
		return 1
	}
	return float64(compressed) / float64(original)
}
