// Tests for the reactive kit: rate-limiter token accounting under
// contention, pub/sub delivery-to-all ordering, and close/drain
// semantics — all riding on watcher-based retry, so blocked acquirers
// and subscribers park instead of spinning.
package reactive

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deferstm/internal/stm"
)

func TestRateLimiterBasics(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRateLimiter(rt, 10, 3)
	if l.Capacity() != 10 || l.Tokens() != 3 {
		t.Fatalf("cap=%d tokens=%d, want 10/3", l.Capacity(), l.Tokens())
	}
	ok := false
	_ = rt.Atomic(func(tx *stm.Tx) error { ok = l.TryAcquire(tx, 3); return nil })
	if !ok || l.Tokens() != 0 {
		t.Fatalf("TryAcquire(3) = %v, tokens=%d; want true/0", ok, l.Tokens())
	}
	_ = rt.Atomic(func(tx *stm.Tx) error { ok = l.TryAcquire(tx, 1); return nil })
	if ok {
		t.Fatal("TryAcquire succeeded on an empty bucket")
	}
	if added := l.Refill(99); added != 10 {
		t.Fatalf("Refill(99) added %d, want 10 (capped at capacity)", added)
	}
	if added := l.Refill(1); added != 0 {
		t.Fatalf("Refill on a full bucket added %d, want 0", added)
	}
}

// TestRateLimiterAbortedTakeRollsBack pins that a TryAcquire inside a
// transaction that later aborts takes nothing.
func TestRateLimiterAbortedTakeRollsBack(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRateLimiter(rt, 5, 5)
	boom := errors.New("boom")
	err := rt.Atomic(func(tx *stm.Tx) error {
		if !l.TryAcquire(tx, 4) {
			t.Error("TryAcquire failed with tokens available")
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if l.Tokens() != 5 {
		t.Fatalf("aborted acquire leaked tokens: %d, want 5", l.Tokens())
	}
}

// TestRateLimiterContention is the satellite's accounting property: 8
// goroutines acquire concurrently while a refiller drips tokens in. At
// every point tokens ∈ [0, capacity], and at the end
// initial + refilled - acquired == remaining exactly.
func TestRateLimiterContention(t *testing.T) {
	const workers = 8
	const perWorker = 200
	const capacity = 16
	rt := stm.NewDefault()
	l := NewRateLimiter(rt, capacity, capacity)

	var acquired atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := 1 + (w+i)%3 // mix of 1-, 2- and 3-token acquires
				if err := l.Acquire(context.Background(), n); err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				acquired.Add(int64(n))
			}
		}(w)
	}

	var refilled atomic.Int64
	stopRefill := make(chan struct{})
	var refillWG sync.WaitGroup
	refillWG.Add(1)
	go func() {
		defer refillWG.Done()
		for {
			select {
			case <-stopRefill:
				return
			default:
			}
			refilled.Add(int64(l.Refill(4)))
			if tok := l.Tokens(); tok < 0 || tok > capacity {
				t.Errorf("tokens = %d, outside [0, %d]", tok, capacity)
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("acquirers deadlocked: acquired=%d refilled=%d tokens=%d parked=%d",
			acquired.Load(), refilled.Load(), l.Tokens(), rt.RetryParked())
	}
	close(stopRefill)
	refillWG.Wait()

	want := int64(capacity) + refilled.Load() - acquired.Load()
	if got := int64(l.Tokens()); got != want {
		t.Fatalf("token conservation violated: tokens=%d, want initial+refilled-acquired=%d", got, want)
	}
	if n := rt.RetryParked(); n != 0 {
		t.Fatalf("%d acquirers still parked", n)
	}
}

// TestRateLimiterAcquireCancel parks an acquirer on an empty bucket and
// cancels it; no tokens may be taken and nothing stays parked.
func TestRateLimiterAcquireCancel(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRateLimiter(rt, 4, 0)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- l.Acquire(ctx, 2) }()
	deadline := time.Now().Add(5 * time.Second)
	for rt.RetryParked() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("acquirer never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Acquire = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire ignored cancellation")
	}
	if l.Tokens() != 0 || rt.RetryParked() != 0 {
		t.Fatalf("tokens=%d parked=%d after cancel, want 0/0", l.Tokens(), rt.RetryParked())
	}
}

// TestRateLimiterStartRefill exercises the ticker driver end to end: a
// bucket starting empty admits work only as refills arrive.
func TestRateLimiterStartRefill(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRateLimiter(rt, 8, 0)
	stop := l.StartRefill(context.Background(), time.Millisecond, 2)
	defer stop()
	for i := 0; i < 5; i++ {
		if err := l.Acquire(context.Background(), 1); err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
	}
}

// TestRateLimiterStopConcurrent: StartRefill's stop function is safe to
// call from multiple goroutines (a racy bool guard used to allow a
// double close of the quit channel, panicking).
func TestRateLimiterStopConcurrent(t *testing.T) {
	rt := stm.NewDefault()
	l := NewRateLimiter(rt, 4, 0)
	stop := l.StartRefill(context.Background(), time.Millisecond, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stop()
		}()
	}
	wg.Wait()
	stop() // still idempotent afterwards
}

// TestPubSubDeliveryToAll is the satellite's fanout property: every
// subscriber receives every message, in the same order. Subscribers
// consume concurrently at different paces while two publishers
// interleave; publishes serialize on the subscriber list, so the
// per-subscriber streams must be identical.
func TestPubSubDeliveryToAll(t *testing.T) {
	const subscribers = 5
	const publishers = 2
	const perPublisher = 150
	rt := stm.NewDefault()
	topic := NewTopic[string](rt)

	subs := make([]*Subscription[string], subscribers)
	for i := range subs {
		subs[i] = topic.Subscribe()
	}
	if n := topic.Subscribers(); n != subscribers {
		t.Fatalf("Subscribers = %d, want %d", n, subscribers)
	}

	streams := make([][]string, subscribers)
	var wg sync.WaitGroup
	for i, s := range subs {
		wg.Add(1)
		go func(i int, s *Subscription[string]) {
			defer wg.Done()
			if i%2 == 0 {
				time.Sleep(time.Duration(i) * time.Millisecond) // lag some consumers
			}
			for {
				v, err := s.Next(context.Background())
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("Next: %v", err)
					return
				}
				streams[i] = append(streams[i], v)
			}
		}(i, s)
	}

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for m := 0; m < perPublisher; m++ {
				if err := topic.Broadcast(fmt.Sprintf("p%d-m%d", p, m)); err != nil {
					t.Errorf("Broadcast: %v", err)
					return
				}
			}
		}(p)
	}
	pubWG.Wait()
	topic.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("subscribers never drained (parked=%d)", rt.RetryParked())
	}

	total := publishers * perPublisher
	for i, s := range streams {
		if len(s) != total {
			t.Fatalf("subscriber %d received %d messages, want %d", i, len(s), total)
		}
	}
	for i := 1; i < subscribers; i++ {
		for j := range streams[0] {
			if streams[i][j] != streams[0][j] {
				t.Fatalf("subscriber %d diverges at message %d: %q vs %q",
					i, j, streams[i][j], streams[0][j])
			}
		}
	}
}

// TestPubSubSubscribeCopyOnWrite is a deterministic regression test for
// a lost-registration race: Subscribe used to append to the committed
// subscriber slice in place, so whenever that slice had spare capacity
// the new element was written into the shared backing array immediately
// — a side effect outside the STM write buffer that survived aborts and
// let two racing subscribers overwrite each other's slot. Here we grab
// the committed slice, subscribe again, and assert the old backing
// array was not mutated. This catches the bug on any GOMAXPROCS,
// unlike the timing-dependent concurrent variant below.
func TestPubSubSubscribeCopyOnWrite(t *testing.T) {
	rt := stm.NewDefault()
	topic := NewTopic[int](rt)
	for i := 0; i < 3; i++ {
		topic.Subscribe()
	}
	var before []*Subscription[int]
	_ = rt.Atomic(func(tx *stm.Tx) error {
		before = topic.subs.Get(tx)
		return nil
	})
	if cap(before) <= len(before) {
		t.Skipf("committed slice has no spare capacity (len=%d cap=%d); cannot probe", len(before), cap(before))
	}
	full := before[:cap(before)]
	topic.Subscribe()
	for i := len(before); i < len(full); i++ {
		if full[i] != nil {
			t.Fatalf("Subscribe wrote into the committed backing array at index %d (append-in-place instead of copy-on-write)", i)
		}
	}
}

// TestPubSubConcurrentSubscribe: concurrent Subscribe transactions must
// not lose registrations. The original implementation appended to the
// committed subscriber slice in place, so two racing subscribers could
// write the same backing-array index — one registration silently
// overwritten (its Next parks forever) and the other duplicated. With
// copy-on-write every subscriber is registered exactly once and
// receives each broadcast exactly once.
func TestPubSubConcurrentSubscribe(t *testing.T) {
	const (
		waves   = 60
		perWave = 8
	)
	rt := stm.NewDefault()
	topic := NewTopic[int](rt)

	// The in-place-append bug only bites when the committed backing
	// array has spare capacity (cap > len), which recurs after every
	// doubling reallocation as the slice grows. Subscribe in gated
	// concurrent waves so racing appends keep landing on those windows,
	// and verify the count after each wave: a lost registration shows up
	// as a shortfall.
	var subs []*Subscription[int]
	for w := 0; w < waves; w++ {
		wave := make([]*Subscription[int], perWave)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := range wave {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				wave[i] = topic.Subscribe()
			}(i)
		}
		close(start)
		wg.Wait()
		subs = append(subs, wave...)
		if n := topic.Subscribers(); n != len(subs) {
			t.Fatalf("wave %d: Subscribers = %d, want %d (lost registration)", w, n, len(subs))
		}
	}

	if err := topic.Broadcast(42); err != nil {
		t.Fatal(err)
	}
	topic.Close()
	for i, s := range subs {
		v, err := s.Next(context.Background())
		if err != nil || v != 42 {
			t.Fatalf("subscriber %d Next = %d, %v; want 42, nil (lost registration?)", i, v, err)
		}
		if _, err := s.Next(context.Background()); !errors.Is(err, ErrClosed) {
			t.Fatalf("subscriber %d received a duplicate delivery: %v", i, err)
		}
	}
}

// TestPubSubCloseSemantics: backlog survives Close; Next reports
// ErrClosed only after the drain; publishing to a closed topic fails;
// subscribing to a closed topic yields an immediately-closed stream.
func TestPubSubCloseSemantics(t *testing.T) {
	rt := stm.NewDefault()
	topic := NewTopic[int](rt)
	s := topic.Subscribe()
	for i := 0; i < 3; i++ {
		if err := topic.Broadcast(i); err != nil {
			t.Fatalf("Broadcast: %v", err)
		}
	}
	topic.Close()
	for i := 0; i < 3; i++ {
		v, err := s.Next(context.Background())
		if err != nil || v != i {
			t.Fatalf("backlog Next = %d, %v; want %d, nil", v, err, i)
		}
	}
	if _, err := s.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained Next = %v, want ErrClosed", err)
	}
	if err := topic.Broadcast(9); !errors.Is(err, ErrClosed) {
		t.Fatalf("Broadcast on closed topic = %v, want ErrClosed", err)
	}
	late := topic.Subscribe()
	if _, err := late.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("late subscription Next = %v, want ErrClosed", err)
	}
}

// TestPubSubCancelSubscription: a cancelled subscription stops
// receiving; the others are unaffected.
func TestPubSubCancelSubscription(t *testing.T) {
	rt := stm.NewDefault()
	topic := NewTopic[int](rt)
	a, b := topic.Subscribe(), topic.Subscribe()
	if err := topic.Broadcast(1); err != nil {
		t.Fatal(err)
	}
	a.Cancel()
	if err := topic.Broadcast(2); err != nil {
		t.Fatal(err)
	}
	if n := topic.Subscribers(); n != 1 {
		t.Fatalf("Subscribers = %d after cancel, want 1", n)
	}
	for _, want := range []int{1, 2} {
		v, err := b.Next(context.Background())
		if err != nil || v != want {
			t.Fatalf("b.Next = %d, %v; want %d", v, err, want)
		}
	}
	// a got message 1 before cancelling but never message 2.
	got := 0
	_ = rt.Atomic(func(tx *stm.Tx) error {
		for {
			if _, ok := a.TryNext(tx); !ok {
				return nil
			}
			got++
		}
	})
	if got != 1 {
		t.Fatalf("cancelled subscription holds %d messages, want 1", got)
	}
}

// TestPubSubParkedSubscriberWakes: a subscriber parked on an empty
// topic wakes on publish (not by polling — RetryParked observes it).
func TestPubSubParkedSubscriberWakes(t *testing.T) {
	rt := stm.NewDefault()
	topic := NewTopic[int](rt)
	s := topic.Subscribe()
	got := make(chan int, 1)
	go func() {
		v, err := s.Next(context.Background())
		if err != nil {
			t.Errorf("Next: %v", err)
		}
		got <- v
	}()
	deadline := time.Now().Add(5 * time.Second)
	for rt.RetryParked() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := topic.Broadcast(77); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 77 {
			t.Fatalf("woken subscriber got %d, want 77", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked subscriber never woke on publish")
	}
}
