package reactive

import (
	"context"
	"errors"

	"deferstm/internal/ds"
	"deferstm/internal/stm"
)

// ErrClosed is returned by Subscription.Next once the topic is closed
// and the subscription's backlog is drained.
var ErrClosed = errors.New("reactive: topic closed")

// Topic is a transactional pub/sub fanout: Publish appends a message to
// every live subscription's queue in one transaction, so either all
// subscribers observe the message or none do, and every subscriber sees
// the same message order (publishes serialize on the subscriber list).
// Subscribers consume at their own pace through per-subscription
// unbounded queues; a parked Next wakes only when its own queue (or the
// closed flag) is written.
type Topic[T any] struct {
	rt     *stm.Runtime
	subs   stm.Var[[]*Subscription[T]]
	closed stm.Var[bool]
}

// Subscription is one subscriber's ordered message stream.
type Subscription[T any] struct {
	t *Topic[T]
	q *ds.Queue[T]
}

// NewTopic returns an open topic with no subscribers.
func NewTopic[T any](rt *stm.Runtime) *Topic[T] {
	return &Topic[T]{rt: rt}
}

// Subscribe registers a new subscription. It receives every message
// published after the registering transaction commits. Subscribing to a
// closed topic yields a subscription whose Next immediately reports
// ErrClosed.
func (t *Topic[T]) Subscribe() *Subscription[T] {
	s := &Subscription[T]{t: t, q: ds.NewQueue[T]()}
	_ = t.rt.Atomic(func(tx *stm.Tx) error {
		if t.closed.Get(tx) {
			return nil
		}
		// Copy-on-write: appending to the committed slice in place would
		// mutate its shared backing array outside the STM write buffer.
		subs := t.subs.Get(tx)
		next := make([]*Subscription[T], len(subs)+1)
		copy(next, subs)
		next[len(subs)] = s
		t.subs.Set(tx, next)
		return nil
	})
	return s
}

// Publish delivers v to every live subscription inside tx. It returns
// ErrClosed (aborting nothing else in tx) if the topic is closed.
func (t *Topic[T]) Publish(tx *stm.Tx, v T) error {
	if t.closed.Get(tx) {
		return ErrClosed
	}
	for _, s := range t.subs.Get(tx) {
		s.q.Put(tx, v)
	}
	return nil
}

// Broadcast publishes v in its own transaction.
func (t *Topic[T]) Broadcast(v T) error {
	return t.rt.Atomic(func(tx *stm.Tx) error {
		return t.Publish(tx, v)
	})
}

// Close marks the topic closed and wakes every parked subscriber.
// Messages already queued remain consumable; Next reports ErrClosed
// only once a subscription's backlog is drained.
func (t *Topic[T]) Close() {
	_ = t.rt.Atomic(func(tx *stm.Tx) error {
		t.closed.Set(tx, true)
		return nil
	})
}

// Subscribers reports the number of live subscriptions.
func (t *Topic[T]) Subscribers() int {
	n := 0
	_ = t.rt.Atomic(func(tx *stm.Tx) error {
		n = len(t.subs.Get(tx))
		return nil
	})
	return n
}

// TryNext returns the subscription's oldest undelivered message inside
// tx, or ok=false when the backlog is empty.
func (s *Subscription[T]) TryNext(tx *stm.Tx) (T, bool) {
	return s.q.TryTake(tx)
}

// Next blocks (parked, consuming no CPU) until a message is available,
// the topic is closed and drained (ErrClosed), or ctx ends (ctx.Err()).
func (s *Subscription[T]) Next(ctx context.Context) (T, error) {
	var v T
	var closed bool
	err := s.t.rt.AtomicCtx(ctx, func(tx *stm.Tx) error {
		closed = false
		var ok bool
		if v, ok = s.q.TryTake(tx); ok {
			return nil
		}
		if s.t.closed.Get(tx) {
			closed = true
			return nil
		}
		tx.Retry()
		return nil
	})
	if err == nil && closed {
		var zero T
		return zero, ErrClosed
	}
	return v, err
}

// Cancel removes the subscription from the topic; pending messages are
// dropped and future publishes are not delivered to it. Safe to call
// more than once.
func (s *Subscription[T]) Cancel() {
	_ = s.t.rt.Atomic(func(tx *stm.Tx) error {
		subs := s.t.subs.Get(tx)
		for i, x := range subs {
			if x == s {
				next := make([]*Subscription[T], 0, len(subs)-1)
				next = append(next, subs[:i]...)
				next = append(next, subs[i+1:]...)
				s.t.subs.Set(tx, next)
				break
			}
		}
		return nil
	})
}
