// Package reactive builds blocking coordination primitives on top of
// the STM runtime's watcher-based retry: a transactional token-bucket
// rate limiter and a pub/sub fanout (bounded and unbounded blocking
// queues live in package ds). Each primitive exposes both a
// transactional form, which composes with arbitrary other work inside a
// caller's transaction, and a context-aware top-level form that parks —
// consuming no CPU — until the condition holds or the context ends.
//
// These are the building blocks a networked KV front end needs:
// thousands of connections can block on queues, topics and token
// buckets simultaneously, each waking only when a commit actually
// changes the state it is waiting on.
package reactive

import (
	"context"
	"sync"
	"time"

	"deferstm/internal/stm"
)

// RateLimiter is a transactional token bucket: Acquire blocks (parked
// on the token var's watchers) until enough tokens are available, and
// Refill adds tokens, waking exactly the waiters parked on the bucket.
// Because TryAcquire runs inside the caller's transaction, taking a
// token composes atomically with the work it admits — e.g. "take one
// token AND dequeue one request" commits as a unit or not at all.
type RateLimiter struct {
	rt       *stm.Runtime
	capacity int
	tokens   stm.Var[int]
}

// NewRateLimiter returns a bucket holding initial tokens (clamped to
// [0, capacity]); capacity has a floor of 1.
func NewRateLimiter(rt *stm.Runtime, capacity, initial int) *RateLimiter {
	if capacity < 1 {
		capacity = 1
	}
	if initial < 0 {
		initial = 0
	}
	if initial > capacity {
		initial = capacity
	}
	l := &RateLimiter{rt: rt, capacity: capacity}
	l.tokens.Init(initial)
	return l
}

// Capacity returns the bucket's maximum token count.
func (l *RateLimiter) Capacity() int { return l.capacity }

// Tokens returns the committed token count without a transaction.
func (l *RateLimiter) Tokens() int { return l.tokens.Load() }

// TryAcquire takes n tokens inside tx, reporting false (and taking
// nothing) when fewer than n are available. n is clamped to a minimum
// of 1; the take commits only if tx commits.
func (l *RateLimiter) TryAcquire(tx *stm.Tx, n int) bool {
	if n < 1 {
		n = 1
	}
	have := l.tokens.Get(tx)
	if have < n {
		return false
	}
	l.tokens.Set(tx, have-n)
	return true
}

// AcquireTx takes n tokens inside tx, retrying (parking the whole
// transaction) until they are available.
func (l *RateLimiter) AcquireTx(tx *stm.Tx, n int) {
	if !l.TryAcquire(tx, n) {
		tx.Retry()
	}
}

// Acquire runs its own transaction that blocks until n tokens are
// available or ctx ends, in which case it returns ctx.Err() and takes
// nothing.
func (l *RateLimiter) Acquire(ctx context.Context, n int) error {
	return l.rt.AtomicCtx(ctx, func(tx *stm.Tx) error {
		l.AcquireTx(tx, n)
		return nil
	})
}

// Refill adds n tokens (capped at capacity), waking parked acquirers.
// It returns the number of tokens actually added.
func (l *RateLimiter) Refill(n int) int {
	if n <= 0 {
		return 0
	}
	added := 0
	_ = l.rt.Atomic(func(tx *stm.Tx) error {
		have := l.tokens.Get(tx)
		added = n
		if have+added > l.capacity {
			added = l.capacity - have
		}
		if added > 0 {
			l.tokens.Set(tx, have+added)
		}
		return nil
	})
	return added
}

// StartRefill adds quantum tokens every interval until the returned
// stop function is called (or ctx ends, if non-nil). It is the
// steady-rate driver for a bucket whose capacity is the burst bound.
func (l *RateLimiter) StartRefill(ctx context.Context, interval time.Duration, quantum int) (stop func()) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	quit := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				l.Refill(quantum)
			case <-quit:
				return
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(quit) })
	}
}
