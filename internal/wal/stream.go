package wal

import (
	"errors"
	"fmt"

	"deferstm/internal/stm"
)

// This file is the log's replication surface: everything a follower
// process needs to bootstrap from the latest checkpoint and then tail
// the segment files as an LSN-ordered record stream, without any new
// on-disk format — the stream reads the same segments and checkpoint
// records recovery does.

// ErrPruned reports that a requested LSN range is no longer on storage:
// a checkpoint has pruned the covering segments since the caller's
// cursor was valid. The caller should re-bootstrap from LatestCheckpoint
// and resume tailing from its upTo.
var ErrPruned = errors.New("wal: range pruned by checkpoint")

// CheckpointLSN returns the upTo of the newest fsynced checkpoint, 0
// when none exists. Monotone over the log's lifetime.
func (l *Log) CheckpointLSN() uint64 { return l.lastCkpt.Load() }

// PeekDurable reads the durability watermark inside tx WITHOUT
// subscribing to the log lock. This is the watermark read for stream
// tails parked in retry: like WaitDurable (see its comment), a tail
// must wake when a flush publishes — not when the lock frees — or every
// publish would stampede the parked tails through the lock's release
// window. Unlike LastDurable it gives no flush-exclusion guarantee,
// which a tail does not need: it only ever reads bytes ≤ the watermark.
func (l *Log) PeekDurable(tx *stm.Tx) uint64 { return l.durable.Get(tx) }

// ReadRange returns intact records with LSN in (after, upTo], ascending,
// reading at most maxBytes of payload past the first record (at least
// one record is always returned when any is available). The caller
// must keep upTo at or below the published durable watermark: bytes
// beyond it may not have been fsynced and must never be shipped.
//
// The whole scan holds fmu — segment files are append-shared with the
// flusher (sim backends share the byte slice), so reading a live
// segment concurrently with a write is a data race. Callers bound
// maxBytes to keep the flush stall short.
//
// Returns ErrPruned when the range starts below the oldest record still
// on storage (a concurrent checkpoint pruned it); the caller
// re-bootstraps from LatestCheckpoint.
func (l *Log) ReadRange(after, upTo uint64, maxBytes int) ([]Record, error) {
	if upTo <= after {
		return nil, nil
	}
	l.fmu.Lock()
	defer l.fmu.Unlock()
	if l.closed {
		return nil, errors.New("wal: log closed")
	}
	// The segment holding after+1 is the last one starting at or below
	// it; if even the oldest segment starts past after+1 the range has
	// been pruned (its records live only inside a checkpoint now).
	idx := -1
	for i, s := range l.segs {
		if s.start <= after+1 {
			idx = i
		} else {
			break
		}
	}
	if idx < 0 {
		return nil, ErrPruned
	}
	var out []Record
	bytes := 0
	for i := idx; i < len(l.segs); i++ {
		data, err := readWhole(l.b, l.segs[i].name)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", l.segs[i].name, err)
		}
		off := 0
		for off < len(data) {
			lsn, payload, _, ok := decodeNext(data[off:])
			if !ok {
				// Live logs have no torn tails (recovery truncated them
				// and fmu excludes in-flight writes); anything here is
				// past upTo or damage the next Open will classify.
				break
			}
			if lsn > upTo {
				return out, nil
			}
			if lsn > after {
				out = append(out, Record{
					LSN: lsn, Payload: append([]byte(nil), payload...),
					Seg: l.segs[i].name, Off: int64(off),
				})
				bytes += len(payload)
				if bytes >= maxBytes {
					return out, nil
				}
			}
			off += recordSize(len(payload))
		}
	}
	if len(out) == 0 {
		// upTo > after promised records, the segments had none at or
		// after the cursor: the gap sits below a checkpoint cut.
		return nil, ErrPruned
	}
	return out, nil
}

// LatestCheckpoint returns the newest intact checkpoint's upTo and blob
// (0, nil when the log has never checkpointed). It validates with the
// same decode recovery uses and falls back to older checkpoints on a
// torn read, tolerating a concurrent Checkpoint pruning under it.
func (l *Log) LatestCheckpoint() (uint64, []byte, error) {
	names, err := l.b.Names()
	if err != nil {
		return 0, nil, fmt.Errorf("wal: list backend: %w", err)
	}
	var ckpts []uint64
	for _, n := range names {
		if lsn, ok := parseName(n, ckptPrefix); ok {
			ckpts = append(ckpts, lsn)
		}
	}
	best := uint64(0)
	var blob []byte
	for _, lsn := range ckpts {
		if lsn <= best {
			continue
		}
		data, err := readWhole(l.b, ckptName(lsn))
		if err != nil {
			continue // pruned from under us; an older (or newer) one will do
		}
		gotLSN, b, rest, ok := decodeNext(data)
		if !ok || gotLSN != lsn || len(rest) != 0 {
			continue
		}
		best, blob = lsn, append([]byte(nil), b...)
	}
	return best, blob, nil
}
