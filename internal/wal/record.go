package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// On-disk record format, little-endian:
//
//	u32 payload length
//	u32 CRC-32C over (lsn ‖ payload)
//	u64 LSN
//	payload bytes
//
// The CRC covers the LSN so a record can never be attributed to the wrong
// position in the log, and the length field is validated against the
// remaining bytes so a torn header is detected as reliably as a torn
// payload. Checkpoint files reuse the same format with the checkpoint
// blob as payload and the covered LSN as lsn.

const recordHeader = 16

// maxPayload bounds a single record (and therefore a decoded length
// field); anything larger in a header is treated as a torn write.
const maxPayload = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func recordCRC(lsn uint64, payload []byte) uint32 {
	var l [8]byte
	binary.LittleEndian.PutUint64(l[:], lsn)
	c := crc32.Update(0, castagnoli, l[:])
	return crc32.Update(c, castagnoli, payload)
}

// appendRecord appends the encoding of (lsn, payload) to dst.
func appendRecord(dst []byte, lsn uint64, payload []byte) []byte {
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], recordCRC(lsn, payload))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// recordSize returns the encoded size of a record with the given payload
// length.
func recordSize(payloadLen int) int { return recordHeader + payloadLen }

// decodeNext parses the record at the head of b. ok=false means the bytes
// at this position are not a whole, intact record — a torn tail if this is
// the end of the final segment, corruption otherwise. The returned payload
// aliases b.
func decodeNext(b []byte) (lsn uint64, payload []byte, rest []byte, ok bool) {
	if len(b) < recordHeader {
		return 0, nil, b, false
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	if plen > maxPayload || int(plen) > len(b)-recordHeader {
		return 0, nil, b, false
	}
	crc := binary.LittleEndian.Uint32(b[4:8])
	lsn = binary.LittleEndian.Uint64(b[8:16])
	payload = b[recordHeader : recordHeader+int(plen)]
	if recordCRC(lsn, payload) != crc {
		return 0, nil, b, false
	}
	return lsn, payload, b[recordHeader+int(plen):], true
}
