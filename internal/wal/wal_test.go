package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"deferstm/internal/simio"
	"deferstm/internal/stm"
)

func openSim(t *testing.T, fs *simio.FS, opts Options) (*stm.Runtime, *Log, *Recovery) {
	t.Helper()
	rt := stm.NewDefault()
	l, rec, err := Open(rt, NewSimBackend(fs), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt, l, rec
}

func appendOne(t *testing.T, rt *stm.Runtime, l *Log, payload string) uint64 {
	t.Helper()
	var lsn uint64
	if err := rt.Atomic(func(tx *stm.Tx) error {
		lsn = l.Append(tx, []byte(payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return lsn
}

// TestAppendRecover: records appended through transactions come back from
// recovery in LSN order with intact payloads.
func TestAppendRecover(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, rec := openSim(t, fs, Options{})
	if rec.LastLSN != 0 || len(rec.Records) != 0 {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	for i := 1; i <= 10; i++ {
		lsn := appendOne(t, rt, l, fmt.Sprintf("payload-%d", i))
		if lsn != uint64(i) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
	}
	l.WaitDurable(10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, rec2 := openSim(t, fs, Options{})
	if rec2.LastLSN != 10 || len(rec2.Records) != 10 {
		t.Fatalf("recovered LastLSN=%d, %d records", rec2.LastLSN, len(rec2.Records))
	}
	for i, r := range rec2.Records {
		want := fmt.Sprintf("payload-%d", i+1)
		if r.LSN != uint64(i+1) || string(r.Payload) != want {
			t.Fatalf("record %d: lsn=%d payload=%q", i, r.LSN, r.Payload)
		}
	}
	if rec2.TornBytes != 0 {
		t.Fatalf("clean shutdown reported %d torn bytes", rec2.TornBytes)
	}
}

// TestGroupCommit: under fsync latency, concurrent appenders share flushes —
// strictly fewer fsync cycles than commits, records all durable.
func TestGroupCommit(t *testing.T) {
	fs := simio.NewFS(simio.Latency{Fsync: 2 * time.Millisecond})
	rt, l, _ := openSim(t, fs, Options{})

	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var lsn uint64
				_ = rt.Atomic(func(tx *stm.Tx) error {
					lsn = l.Append(tx, []byte(fmt.Sprintf("g%d-%d", g, i)))
					return nil
				})
				l.WaitDurable(lsn)
			}
		}(g)
	}
	wg.Wait()

	total := uint64(goroutines * perG)
	st := l.BatchStats()
	if st.Records != total {
		t.Fatalf("flushed %d records, want %d", st.Records, total)
	}
	if st.Flushes >= total {
		t.Fatalf("group commit ineffective: %d flushes for %d commits", st.Flushes, total)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("no batch ever exceeded 1 record (max=%d)", st.MaxBatch)
	}
	if got := rt.Snapshot().WALRecords; got != total {
		t.Fatalf("runtime stats WALRecords=%d, want %d", got, total)
	}
	t.Logf("%d commits, %d flushes (mean batch %.1f, max %d)",
		total, st.Flushes, st.Mean(), st.MaxBatch)

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, rec := openSim(t, fs, Options{})
	if rec.LastLSN != total || len(rec.Records) != int(total) {
		t.Fatalf("recovered LastLSN=%d, %d records", rec.LastLSN, len(rec.Records))
	}
}

// TestRotationRecover: segments rotate at the configured size and recovery
// stitches them back together.
func TestRotationRecover(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, _ := openSim(t, fs, Options{SegmentBytes: 128})
	const n = 50
	payload := bytes.Repeat([]byte{'x'}, 24) // recordSize 40 → ~3 per segment
	for i := 0; i < n; i++ {
		appendOne(t, rt, l, string(payload))
	}
	l.WaitDurable(n)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, name := range fs.Names() {
		if _, ok := parseName(name, segPrefix); ok {
			segs++
		}
	}
	if segs < 5 {
		t.Fatalf("only %d segments after %d records at SegmentBytes=128", segs, n)
	}
	_, _, rec := openSim(t, fs, Options{SegmentBytes: 128})
	if rec.LastLSN != n || len(rec.Records) != n {
		t.Fatalf("recovered LastLSN=%d, %d records", rec.LastLSN, len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

// TestTornTailTruncated: garbage after the last intact record in the final
// segment is truncated, not fatal.
func TestTornTailTruncated(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, _ := openSim(t, fs, Options{})
	appendOne(t, rt, l, "alpha")
	appendOne(t, rt, l, "beta")
	l.WaitDurable(2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn append: a record header prefix with no body.
	torn := appendRecord(nil, 3, []byte("gamma-never-finished"))[:recordHeader+4]
	f, err := fs.OpenAppend(segName(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, l2, rec := openSim(t, fs, Options{})
	if rec.TornBytes != len(torn) {
		t.Fatalf("TornBytes=%d, want %d", rec.TornBytes, len(torn))
	}
	if rec.LastLSN != 2 || len(rec.Records) != 2 {
		t.Fatalf("recovered LastLSN=%d, %d records", rec.LastLSN, len(rec.Records))
	}
	// The log must be appendable after truncation: LSN 3 is reissued.
	rt2 := l2.Runtime()
	if lsn := appendOne(t, rt2, l2, "gamma-again"); lsn != 3 {
		t.Fatalf("post-truncate append got LSN %d, want 3", lsn)
	}
	l2.WaitDurable(3)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMidStreamCorruptionFatal: an invalid record in a non-final segment is
// corruption, not a torn tail.
func TestMidStreamCorruptionFatal(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, _ := openSim(t, fs, Options{SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		appendOne(t, rt, l, "0123456789abcdef0123456789abcdef")
	}
	l.WaitDurable(10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the FIRST segment (later segments exist).
	name := segName(1)
	data, err := fs.ReadAll(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(name); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create(name)
	data[len(data)-3] ^= 0xFF
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	f.Fsync()
	f.Close()

	rt2 := stm.NewDefault()
	_, _, err = Open(rt2, NewSimBackend(fs), Options{SegmentBytes: 64})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestCheckpointPrune: a checkpoint becomes the recovery base, covered
// segments and older checkpoints are pruned, and recovery returns only the
// blob plus the records after it.
func TestCheckpointPrune(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, _ := openSim(t, fs, Options{SegmentBytes: 96})
	for i := 1; i <= 20; i++ {
		appendOne(t, rt, l, fmt.Sprintf("rec-%02d", i))
	}
	blobAt := func(upTo uint64) []byte { return []byte(fmt.Sprintf("state-through-%d", upTo)) }
	upTo, err := l.Checkpoint(func(tx *stm.Tx) ([]byte, uint64, error) {
		n := l.LastAssigned(tx)
		return blobAt(n), n, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if upTo != 20 {
		t.Fatalf("checkpoint covered %d, want 20", upTo)
	}
	// Second checkpoint should prune the first.
	for i := 21; i <= 25; i++ {
		appendOne(t, rt, l, fmt.Sprintf("rec-%02d", i))
	}
	if _, err := l.Checkpoint(func(tx *stm.Tx) ([]byte, uint64, error) {
		n := l.LastAssigned(tx)
		return blobAt(n), n, nil
	}); err != nil {
		t.Fatal(err)
	}
	ckpts, oldSegs := 0, 0
	for _, name := range fs.Names() {
		if lsn, ok := parseName(name, ckptPrefix); ok {
			ckpts++
			if lsn != 25 {
				t.Fatalf("stale checkpoint %s survived", name)
			}
		}
		if start, ok := parseName(name, segPrefix); ok && start <= 20 {
			oldSegs++
		}
	}
	if ckpts != 1 {
		t.Fatalf("%d checkpoints on storage, want 1", ckpts)
	}
	if oldSegs != 0 {
		t.Fatalf("%d fully covered segments survived pruning", oldSegs)
	}

	for i := 26; i <= 28; i++ {
		appendOne(t, rt, l, fmt.Sprintf("rec-%02d", i))
	}
	l.WaitDurable(28)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, rec := openSim(t, fs, Options{SegmentBytes: 96})
	if rec.CheckpointLSN != 25 || !bytes.Equal(rec.Checkpoint, blobAt(25)) {
		t.Fatalf("checkpoint lsn=%d blob=%q", rec.CheckpointLSN, rec.Checkpoint)
	}
	if rec.LastLSN != 28 || len(rec.Records) != 3 {
		t.Fatalf("LastLSN=%d with %d records after checkpoint", rec.LastLSN, len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(26+i) {
			t.Fatalf("post-checkpoint record %d has LSN %d", i, r.LSN)
		}
	}
	if got := rt.Snapshot().WALCheckpoints; got != 2 {
		t.Fatalf("WALCheckpoints=%d, want 2", got)
	}
}

// TestAppendSyncSerial: AppendSync works inside serial transactions (one
// fsync per commit) and panics outside them.
func TestAppendSyncSerial(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, _ := openSim(t, fs, Options{})
	for i := 1; i <= 5; i++ {
		if err := rt.AtomicSerial(func(tx *stm.Tx) error {
			lsn, err := l.AppendSync(tx, []byte(fmt.Sprintf("sync-%d", i)))
			if err == nil && lsn != uint64(i) {
				t.Errorf("AppendSync got LSN %d, want %d", lsn, i)
			}
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.BatchStats(); st.Flushes != 5 || st.Records != 5 || st.MaxBatch != 1 {
		t.Fatalf("sync mode stats %+v, want 5 flushes of 1", st)
	}
	if l.DurableWatermark() != 5 {
		t.Fatalf("watermark %d after 5 sync appends", l.DurableWatermark())
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AppendSync outside serial tx did not panic")
			}
		}()
		_ = rt.Atomic(func(tx *stm.Tx) error {
			_, _ = l.AppendSync(tx, []byte("x"))
			return nil
		})
	}()

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, rec := openSim(t, fs, Options{})
	if rec.LastLSN != 5 || len(rec.Records) != 5 {
		t.Fatalf("recovered LastLSN=%d, %d records", rec.LastLSN, len(rec.Records))
	}
}

// TestLastDurableSubscribes: a transaction reading LastDurable while a
// flush is in flight waits for it rather than seeing a stale watermark.
func TestLastDurableSubscribes(t *testing.T) {
	fs := simio.NewFS(simio.Latency{Fsync: 5 * time.Millisecond})
	rt, l, _ := openSim(t, fs, Options{})
	lsn := appendOne(t, rt, l, "one") // leader flush runs post-commit
	var seen uint64
	if err := rt.Atomic(func(tx *stm.Tx) error {
		seen = l.LastDurable(tx)
		if seen < lsn {
			tx.Retry()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != lsn {
		t.Fatalf("LastDurable=%d, want %d", seen, lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentStress exercises appenders, waiters and checkpoints
// together (run with -race).
func TestConcurrentStress(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, _ := openSim(t, fs, Options{SegmentBytes: 512})
	const goroutines = 4
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var lsn uint64
				_ = rt.Atomic(func(tx *stm.Tx) error {
					lsn = l.Append(tx, []byte(fmt.Sprintf("g%d", g)))
					return nil
				})
				if i%8 == 0 {
					l.WaitDurable(lsn)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			_, err := l.Checkpoint(func(tx *stm.Tx) ([]byte, uint64, error) {
				n := l.LastAssigned(tx)
				return []byte(fmt.Sprintf("ckpt@%d", n)), n, nil
			})
			if err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, rec := openSim(t, fs, Options{SegmentBytes: 512})
	total := uint64(goroutines * perG)
	if rec.LastLSN != total {
		t.Fatalf("recovered LastLSN=%d, want %d", rec.LastLSN, total)
	}
	prev := rec.CheckpointLSN
	for _, r := range rec.Records {
		if r.LSN != prev+1 {
			t.Fatalf("gap: %d after %d", r.LSN, prev)
		}
		prev = r.LSN
	}
	if prev != total {
		t.Fatalf("records end at %d, want %d", prev, total)
	}
}
