// Package wal implements a durable write-ahead log whose group commit is
// built from the paper's atomic deferral (package core) rather than a
// dedicated flusher thread.
//
// The construction: a Log is a Deferrable object whose transaction-
// friendly lock (Listing 2) guards the segment files and the published
// durability watermark. A transaction appends by reserving the next LSN
// and pushing its encoded record onto a transactional batch queue — pure
// Var writes, so appenders never block on I/O inside the transaction —
// and then defers the flush:
//
//   - if the log lock is free in the transaction's snapshot, the
//     transaction becomes the batch leader: it defers the flush with
//     AtomicDefer(tx, flush, log), acquiring the log lock atomically at
//     commit. Between the leader's commit and its flush completing, no
//     other owner can observe the log's durability state — the paper's
//     deferral-atomicity guarantee, applied to fsync.
//   - if the lock is held (a flush is in flight), the transaction is a
//     follower: it commits immediately — no waiting — and defers a
//     "pass nil" operation that waits for the in-flight flush, then
//     flushes itself only if its record was not already covered.
//
// Group commit falls out: every record committed while a flush is in
// flight lands in the queue, and the next flush drains the whole queue
// with a single fsync. Transactions that read durability state
// (LastDurable, WaitDurable) subscribe to the log lock first, so they
// serialize correctly behind in-flight flushes and can never observe a
// half-published watermark.
//
// Records carry CRC-32C and their LSN (record.go); recovery (Open)
// replays segments in order, verifies every record, truncates a torn
// tail, and restores the checkpoint/segment structure. Checkpoints write
// an application snapshot through the same record format and prune fully
// covered segments.
package wal

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deferstm/internal/core"
	"deferstm/internal/stm"
)

// Options parameterizes a Log. The zero value is usable.
type Options struct {
	// SegmentBytes is the rotation threshold: a flush that would grow the
	// current segment past this many bytes rotates to a new segment
	// first. 0 means 1 MiB.
	SegmentBytes int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	return o
}

// Record is one replayed log record. Seg and Off locate the record on
// storage (the segment file and the byte offset of the record's first
// byte within it) so recovery layers that must surgically drop a suffix
// — e.g. the KV store's cross-shard atomicity pass — can call
// TruncateTail without re-scanning.
type Record struct {
	LSN     uint64
	Payload []byte
	Seg     string
	Off     int64
}

// Recovery describes what Open found on storage.
type Recovery struct {
	// CheckpointLSN and Checkpoint are the newest valid checkpoint (LSN 0
	// and nil when none exists).
	CheckpointLSN uint64
	Checkpoint    []byte
	// Records are the intact records with LSN > CheckpointLSN, ascending.
	Records []Record
	// LastLSN is the highest LSN the recovered state covers:
	// max(CheckpointLSN, last record LSN).
	LastLSN uint64
	// TornBytes counts bytes truncated from the final segment's torn
	// tail (0 for a clean shutdown).
	TornBytes int
}

// pnode is one entry of the transactional batch queue (a cons list,
// newest first; drains reverse it).
type pnode struct {
	lsn     uint64
	payload []byte
	born    time.Time // enqueue time; zero unless metrics are attached
	next    *pnode
}

type segMeta struct {
	name  string
	start uint64 // first LSN the segment may contain
}

// BatchStats summarizes group-commit behaviour since the Log was opened.
type BatchStats struct {
	Flushes  uint64     // drain+fsync cycles
	Records  uint64     // records written through those flushes
	Fsyncs   uint64     // every fsync the log issued (flush + rotate + checkpoint)
	MaxBatch uint64     // largest single batch
	Hist     [17]uint64 // Hist[i] counts batches with bits.Len64(size) == i
}

// Mean returns the mean batch size (0 when no flush happened).
func (s BatchStats) Mean() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Flushes)
}

// Log is a durable, group-committing write-ahead log. Create one with
// Open; all methods are safe for concurrent use by transactions on the
// Log's runtime.
type Log struct {
	core.Deferrable // the log's TxLock: guards files + watermark publishes

	rt   *stm.Runtime
	b    Backend
	opts Options

	nextLSN stm.Var[uint64] // next LSN to reserve
	pending stm.Var[*pnode] // committed-but-unflushed records
	durable stm.Var[uint64] // published watermark; writes hold the log lock

	// File state. Mutators hold the log's TxLock; fmu makes the
	// happens-before explicit for the race detector and for Close.
	fmu      sync.Mutex
	cur      File
	curName  string
	curBytes int
	segs     []segMeta // ascending by start; last is cur
	closed   bool

	flushes  atomic.Uint64
	records  atomic.Uint64
	fsyncs   atomic.Uint64
	maxBatch atomic.Uint64
	hist     [17]atomic.Uint64

	lastCkpt atomic.Uint64 // upTo of the newest fsynced checkpoint (0 when none)
}

const (
	segPrefix  = "seg-"
	ckptPrefix = "ckpt-"
)

func segName(start uint64) string { return fmt.Sprintf("%s%016x", segPrefix, start) }
func ckptName(lsn uint64) string  { return fmt.Sprintf("%s%016x", ckptPrefix, lsn) }
func parseName(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):], 16, 64)
	return v, err == nil
}

// ErrCorrupt reports unrecoverable log damage: an invalid record that is
// not a torn tail (i.e. not at the end of the final segment).
var ErrCorrupt = errors.New("wal: corrupt log")

// Open replays the log stored in b and returns a Log positioned to append
// after the last intact record. The caller replays Recovery (checkpoint
// blob, then records) into its own state before starting transactions.
func Open(rt *stm.Runtime, b Backend, opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	names, err := b.Names()
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list backend: %w", err)
	}

	var segs []segMeta
	var ckpts []uint64
	for _, n := range names {
		if start, ok := parseName(n, segPrefix); ok {
			segs = append(segs, segMeta{name: n, start: start})
		} else if lsn, ok := parseName(n, ckptPrefix); ok {
			ckpts = append(ckpts, lsn)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	rec := &Recovery{}
	// Newest checkpoint whose single record is intact and self-consistent
	// wins; older ones are fallbacks for a checkpoint torn by a crash.
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	for _, lsn := range ckpts {
		data, err := readWhole(b, ckptName(lsn))
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read checkpoint: %w", err)
		}
		gotLSN, blob, rest, ok := decodeNext(data)
		if !ok || gotLSN != lsn || len(rest) != 0 {
			continue // torn checkpoint; fall back to an older one
		}
		rec.CheckpointLSN = lsn
		rec.Checkpoint = append([]byte(nil), blob...)
		break
	}

	prev := uint64(0)
	for i, s := range segs {
		data, err := readWhole(b, s.name)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read segment %s: %w", s.name, err)
		}
		off := 0
		for off < len(data) {
			lsn, payload, _, ok := decodeNext(data[off:])
			if !ok {
				if i != len(segs)-1 {
					return nil, nil, fmt.Errorf("%w: invalid record at %s+%d with later segments present", ErrCorrupt, s.name, off)
				}
				rec.TornBytes = len(data) - off
				if err := b.Truncate(s.name, int64(off)); err != nil {
					return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
				}
				break
			}
			// LSNs must be contiguous, except that a gap entirely at or
			// below the checkpoint is legal: those records were captured
			// by the checkpoint before ever reaching a segment.
			if prev != 0 && lsn != prev+1 && lsn-1 > rec.CheckpointLSN {
				return nil, nil, fmt.Errorf("%w: LSN gap %d→%d above checkpoint %d", ErrCorrupt, prev, lsn, rec.CheckpointLSN)
			}
			if lsn <= prev {
				return nil, nil, fmt.Errorf("%w: LSN %d not increasing after %d", ErrCorrupt, lsn, prev)
			}
			if lsn > rec.CheckpointLSN {
				rec.Records = append(rec.Records, Record{
					LSN: lsn, Payload: append([]byte(nil), payload...),
					Seg: s.name, Off: int64(off),
				})
			}
			prev = lsn
			off += recordSize(len(payload))
		}
	}
	rec.LastLSN = max(prev, rec.CheckpointLSN)

	l := &Log{rt: rt, b: b, opts: opts, segs: segs}
	l.nextLSN.Init(rec.LastLSN + 1)
	l.durable.Init(rec.LastLSN)
	l.lastCkpt.Store(rec.CheckpointLSN)
	if len(segs) == 0 {
		l.segs = []segMeta{{name: segName(rec.LastLSN + 1), start: rec.LastLSN + 1}}
		if l.cur, err = b.Create(l.segs[0].name); err != nil {
			return nil, nil, fmt.Errorf("wal: create segment: %w", err)
		}
		l.curName = l.segs[0].name
	} else {
		last := segs[len(segs)-1]
		if l.cur, err = b.OpenAppend(last.name); err != nil {
			return nil, nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		l.curName = last.name
		sz, err := l.cur.Size()
		if err != nil {
			return nil, nil, fmt.Errorf("wal: segment size: %w", err)
		}
		l.curBytes = int(sz)
	}
	return l, rec, nil
}

// Runtime returns the runtime the log's transactions run on.
func (l *Log) Runtime() *stm.Runtime { return l.rt }

// Append reserves the next LSN for payload and schedules it for durable
// append, all within tx: if tx aborts, nothing happened. The record
// becomes readable in the log's serialization order the moment tx
// commits, and durable when a group-commit flush covers it (WaitDurable
// blocks for exactly that; the returned LSN is the handle).
//
// The committing transaction's own deferred operation drives the flush:
// the first appender to find the log lock free leads the next batch and
// acquires the lock atomically at its commit; appenders that find a
// flush in flight commit without blocking and their deferred operation
// joins (or performs) the next batch.
func (l *Log) Append(tx *stm.Tx, payload []byte) uint64 {
	lsn := l.Reserve(tx)
	l.EnqueueReserved(tx, lsn, 0, payload)
	l.DeferFlush(tx, lsn)
	return lsn
}

// Reserve reserves the next LSN within tx without enqueueing a record.
// Multi-lane commits use it to learn every touched lane's LSN before
// building the payloads (whose headers carry the full lane/LSN vector);
// single-lane callers want Append. A Reserve must be followed by
// EnqueueReserved in the same tx — a reserved-but-unenqueued LSN would
// leave a permanent hole in the log.
//
// Reserving reads and writes the lane's nextLSN Var, so two commits
// appending to the same lane conflict and serialize: per lane, LSN
// order IS serialization order, which is what lets a GSN drawn after
// all of a commit's reservations stay monotone within every lane.
func (l *Log) Reserve(tx *stm.Tx) uint64 {
	lsn := l.nextLSN.Get(tx)
	l.nextLSN.Set(tx, lsn+1)
	return lsn
}

// EnqueueReserved enqueues payload under a previously Reserved lsn and
// records the append event (gsn, the global commit sequence number of a
// multi-lane store, rides Event.Aux2; pass 0 on a single-lane log). It
// does not schedule a flush — follow with DeferFlush or DeferFlushGroup
// in the same tx.
func (l *Log) EnqueueReserved(tx *stm.Tx, lsn, gsn uint64, payload []byte) {
	cp := append([]byte(nil), payload...)
	node := &pnode{lsn: lsn, payload: cp, next: l.pending.Get(tx)}
	if l.rt.Metrics() != nil {
		// Stamp the enqueue so the covering flush can observe the
		// append→durable lag. Re-executions of an aborted tx restamp.
		node.born = time.Now()
	}
	l.pending.Set(tx, node)
	if l.rt.Recording() {
		tx.RecordOnCommit(stm.Event{Kind: stm.EvWALAppend, Owner: tx.Owner(), Var: l.Lock().VarID(), Aux: lsn, Aux2: gsn})
	}
}

// DeferFlush schedules the group-commit deferral for a record this tx
// enqueued at lsn: lead the next batch if the log lock is free in tx's
// snapshot, ride an enclosing holder's flush, or join as a follower.
func (l *Log) DeferFlush(tx *stm.Tx, lsn uint64) {
	switch l.Lock().HeldBy(tx) {
	case 0:
		// Leader: the flush runs between our commit and any observation
		// of the durability state — classic atomic deferral.
		core.AtomicDefer(tx, func(ctx *core.OpCtx) {
			l.drainAndFlush(ctx)
		}, l)
	case tx.Owner():
		// This transaction (or this owner's enclosing context) already
		// holds the lock; the flush it scheduled covers this record too.
	default:
		// Follower: a flush is in flight. Commit now, join later.
		core.AtomicDefer(tx, func(ctx *core.OpCtx) {
			l.ensureDurable(ctx, lsn)
		})
	}
}

// DeferFlushGroup schedules ONE atomic deferral that acquires every
// log's TxLock at tx's commit — logs must be in canonical (ascending
// lane) order, so concurrent cross-shard commits cannot deadlock even
// in the waiting-outside-transactions sense — and flushes them together
// via FlushGroup. This is the cross-shard commit of a sharded store:
// the paper's 2PL argument is indifferent to how many locks the
// deferral protects, because all acquisitions happen atomically at one
// commit and the deferred operation releases them only when it ends.
//
// Unlike DeferFlush there is no follower fast path: a lane whose lock
// is held by an in-flight flush makes the committing transaction wait
// (via retry) until that flush releases it. Holding ALL touched locks
// from commit to the last fsync is what makes the cross-shard batch
// atomic with respect to both observers and checkpoints.
func DeferFlushGroup(tx *stm.Tx, logs []*Log) {
	objs := make([]core.Object, len(logs))
	for i, l := range logs {
		objs[i] = l
	}
	core.AtomicDefer(tx, func(ctx *core.OpCtx) {
		FlushGroup(ctx, logs)
	}, objs...)
}

// AppendSync appends and fsyncs payload immediately, inside a serial
// (irrevocable) transaction — the fsync-per-commit baseline the paper's
// irrevocability sections describe. tx must be serial (call
// tx.Irrevocable() first); the write is safe exactly because the
// transaction can no longer abort. A log driven through AppendSync must
// not also be driven through Append.
func (l *Log) AppendSync(tx *stm.Tx, payload []byte) (uint64, error) {
	return l.AppendSyncWith(tx, 0, payload)
}

// AppendSyncWith is AppendSync carrying a global commit sequence number
// for the append event (multi-lane stores in sync mode; pass 0 on a
// single-lane log).
func (l *Log) AppendSyncWith(tx *stm.Tx, gsn uint64, payload []byte) (uint64, error) {
	if !tx.Serial() {
		panic("wal: AppendSync outside a serial transaction")
	}
	lsn := l.nextLSN.Get(tx)
	l.nextLSN.Set(tx, lsn+1)
	if l.rt.Recording() {
		tx.RecordOnCommit(stm.Event{Kind: stm.EvWALAppend, Owner: tx.Owner(), Var: l.Lock().VarID(), Aux: lsn, Aux2: gsn})
	}
	l.fmu.Lock()
	err := l.writeLocked([]Record{{LSN: lsn, Payload: payload}})
	l.fmu.Unlock()
	if err != nil {
		return 0, err
	}
	l.durable.Set(tx, lsn)
	l.noteBatch(1)
	if l.rt.Recording() {
		tx.RecordOnCommit(stm.Event{Kind: stm.EvWALDurable, Owner: tx.Owner(), Var: l.Lock().VarID(), Aux: lsn})
	}
	return lsn, nil
}

// LastDurable returns the durability watermark inside tx, subscribing to
// the log lock first: while a flush is in flight the transaction waits
// (via retry), and once it reads the watermark, any later flush conflicts
// with it — the subscription semantics of the paper's Listing 2 applied
// to durability state.
func (l *Log) LastDurable(tx *stm.Tx) uint64 {
	l.Subscribe(tx)
	return l.durable.Get(tx)
}

// DurableWatermark returns the published watermark without a transaction
// (diagnostics; it may be stale by the time the caller acts on it).
func (l *Log) DurableWatermark() uint64 { return l.durable.Load() }

// LastAssigned returns the newest reserved LSN in tx's snapshot.
func (l *Log) LastAssigned(tx *stm.Tx) uint64 { return l.nextLSN.Get(tx) - 1 }

// AssignedWatermark returns the newest reserved LSN without a
// transaction (diagnostics — e.g. the server's durable-lag gauge; it
// may be stale by the time the caller acts on it).
func (l *Log) AssignedWatermark() uint64 { return l.nextLSN.Load() - 1 }

// WaitDurable blocks until the watermark covers lsn, using retry-based
// condition synchronization: the waiter sleeps until a flush publishes a
// new watermark.
//
// Unlike LastDurable it deliberately does NOT subscribe to the log lock:
// the watermark is published (and retriers woken) while the flushing
// operation still holds the lock, so a waiter whose record is already
// covered resumes immediately — and its next append observes the lock
// held and joins the next batch as a follower. Subscribing here would
// park every waiter until the lock is released, waking them all into the
// brief window where the lock is free; they would then all elect
// themselves leader and serialize, defeating group commit entirely.
func (l *Log) WaitDurable(lsn uint64) {
	_ = l.WaitDurableCtx(nil, lsn)
}

// WaitDurableCtx is WaitDurable with cancellation and deadline support:
// it returns ctx.Err() if ctx ends before the watermark covers lsn (the
// record may still become durable later — cancellation abandons the
// wait, not the flush). A nil ctx never cancels.
func (l *Log) WaitDurableCtx(ctx context.Context, lsn uint64) error {
	return l.rt.AtomicCtx(ctx, func(tx *stm.Tx) error {
		if l.durable.Get(tx) < lsn {
			tx.Retry()
		}
		return nil
	})
}

// Flush forces a drain+fsync of everything appended so far (used by
// Close, checkpoints and tests; normal operation never needs it).
func (l *Log) Flush() {
	me := l.rt.NewOwner()
	l.Lock().AcquireOutside(l.rt, me)
	defer func() { _ = l.Lock().ReleaseOutside(l.rt, me) }()
	l.drainAndFlush(core.NewOpCtx(l.rt, me))
}

// ensureDurable is the follower path: wait until the watermark covers
// lsn, flushing the next batch ourselves if we find the log lock free
// before that happens.
//
// Crucially the wait is on the WATERMARK, not the lock: a follower whose
// record is covered by someone else's flush returns without ever touching
// the lock. Waiting by acquiring the lock (the obvious implementation)
// starves: a parked acquirer must be rescheduled and re-run its
// transaction when the lock is released, and it loses that race to the
// releasing goroutine's own next append — which re-acquires the lock
// in-transaction within microseconds — every single time. The observable
// result is one goroutine flushing batches of one in a loop while every
// other goroutine sleeps for the rest of the run.
func (l *Log) ensureDurable(ctx *core.OpCtx, lsn uint64) {
	if l.durable.Load() >= lsn {
		return // an earlier batch covered us
	}
	// Run under a fresh owner identity, not the deferring transaction's.
	// The deferring transaction may have other deferral units that already
	// released their locks (e.g. a map-resize trigger in the same commit);
	// acquiring the log lock under that owner afterwards would reopen its
	// acquire phase and break the two-phase structure the checker (and the
	// paper's correctness argument) relies on. Nothing here needs the old
	// identity: the reentrant case is already handled at Append time.
	rt := ctx.Runtime()
	me := rt.NewOwner()
	ctx = core.NewOpCtx(rt, me)
	acquired := false
	_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
		acquired = false
		if l.durable.Get(tx) < lsn {
			// Both the watermark and the lock owner are now in the read
			// set: whichever changes first wakes us. Every flush drains
			// the whole pending queue, so the next flush after our
			// append's commit necessarily covers us — no starvation.
			if !l.Lock().TryAcquireAs(tx, me) {
				tx.Retry()
			}
			acquired = true
		}
		return nil
	})
	if !acquired {
		return
	}
	if l.durable.Load() < lsn {
		l.drainAndFlush(ctx)
	}
	if err := l.Lock().ReleaseOutside(rt, me); err != nil {
		panic("wal: follower flush release failed: " + err.Error())
	}
}

// drainAndFlush drains the batch queue, appends the records in LSN order,
// fsyncs once, and publishes the new watermark. The caller must hold the
// log's TxLock (via AtomicDefer or AcquireOutside) under ctx.Owner().
// An unwritable backend is fatal: the log cannot lose a record it
// promised to flush, so a persistent write error panics.
func (l *Log) drainAndFlush(ctx *core.OpCtx) {
	head, batch := l.drain(ctx)
	if head == nil {
		return
	}
	var flushStart time.Time
	if l.rt.Metrics() != nil {
		flushStart = time.Now()
	}
	if err := l.flushBatch(batch); err != nil {
		panic(fmt.Sprintf("wal: flush failed, log would lose committed records: %v", err))
	}
	l.publish(ctx, head, batch, flushStart)
}

// FlushGroup flushes several logs whose TxLocks the caller's deferral
// already holds (see DeferFlushGroup): it drains every queue, runs the
// write+fsync of each lane CONCURRENTLY — parallel lane fsyncs are the
// point of sharding the log — and publishes the watermarks only after
// every lane's fsync returned. The publish barrier is what recovery's
// atomicity argument leans on: no observer can be acked (acks wait on a
// watermark) for any record of this round until the whole cross-lane
// round is on stable storage, so a crash between lane fsyncs can only
// lose records that were never promised.
func FlushGroup(ctx *core.OpCtx, logs []*Log) {
	heads := make([]*pnode, len(logs))
	batches := make([][]Record, len(logs))
	work := 0
	for i, l := range logs {
		heads[i], batches[i] = l.drain(ctx)
		if heads[i] != nil {
			work++
		}
	}
	if work == 0 {
		return
	}
	var flushStart time.Time
	for _, l := range logs {
		if l.rt.Metrics() != nil {
			flushStart = time.Now()
			break
		}
	}
	errs := make([]error, len(logs))
	if work == 1 {
		for i, l := range logs {
			if heads[i] != nil {
				errs[i] = l.flushBatch(batches[i])
			}
		}
	} else {
		var wg sync.WaitGroup
		for i, l := range logs {
			if heads[i] == nil {
				continue
			}
			wg.Add(1)
			go func(i int, l *Log) {
				defer wg.Done()
				errs[i] = l.flushBatch(batches[i])
			}(i, l)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("wal: cross-lane flush failed, log would lose committed records: %v", err))
		}
	}
	for i, l := range logs {
		if heads[i] != nil {
			l.publish(ctx, heads[i], batches[i], flushStart)
		}
	}
}

// drain empties the batch queue within a small transaction and returns
// the cons-list head plus the records in ascending LSN order (nil, nil
// when the queue was empty). Caller holds the log's TxLock.
func (l *Log) drain(ctx *core.OpCtx) (*pnode, []Record) {
	var head *pnode
	_ = ctx.Atomic(func(tx *stm.Tx) error {
		head = l.pending.Get(tx)
		if head != nil {
			l.pending.Set(tx, nil)
		}
		return nil
	})
	if head == nil {
		return nil, nil
	}
	n := 0
	for p := head; p != nil; p = p.next {
		n++
	}
	batch := make([]Record, n)
	for p := head; p != nil; p = p.next {
		n--
		batch[n] = Record{LSN: p.lsn, Payload: p.payload}
	}
	return head, batch
}

// flushBatch writes batch to the segment files and fsyncs, under fmu.
func (l *Log) flushBatch(batch []Record) error {
	met := l.rt.Metrics()
	l.fmu.Lock()
	var err error
	if met != nil {
		// Label the I/O so profiles taken through the debug endpoint
		// attribute fsync time to the group-commit leader.
		pprof.Do(context.Background(), pprof.Labels("deferstm", "wal-flush"),
			func(context.Context) { err = l.writeLocked(batch) })
	} else {
		err = l.writeLocked(batch)
	}
	l.fmu.Unlock()
	return err
}

// publish makes a flushed batch visible: watermark, batch statistics,
// latency metrics, and the EvWALDurable history event. Caller holds the
// log's TxLock under ctx.Owner() and must have fsynced batch already.
func (l *Log) publish(ctx *core.OpCtx, head *pnode, batch []Record, flushStart time.Time) {
	if met := l.rt.Metrics(); met != nil {
		// Per-record append→durable lag, and how long the oldest record
		// of this batch waited for the flush to even start (the pure
		// group-commit batching delay, fsync excluded).
		end := time.Now()
		var oldest time.Time
		for p := head; p != nil; p = p.next {
			if p.born.IsZero() {
				continue // enqueued before metrics were attached
			}
			if oldest.IsZero() || p.born.Before(oldest) {
				oldest = p.born
			}
			met.WALAppendDurable.Observe(end.Sub(p.born))
		}
		if !oldest.IsZero() {
			met.WALBatchWait.Observe(flushStart.Sub(oldest))
		}
	}

	watermark := batch[len(batch)-1].LSN
	core.Store(ctx, &l.durable, watermark)
	l.noteBatch(uint64(len(batch)))
	l.rt.RecordEvent(stm.Event{Kind: stm.EvWALDurable, Owner: ctx.Owner(), Var: l.Lock().VarID(), Aux: watermark})
}

// writeLocked appends batch to the current segment (rotating as needed)
// and fsyncs. Caller holds fmu.
func (l *Log) writeLocked(batch []Record) error {
	if l.closed {
		return errors.New("wal: log closed")
	}
	for _, r := range batch {
		sz := recordSize(len(r.Payload))
		if l.curBytes > 0 && l.curBytes+sz > l.opts.SegmentBytes {
			if err := l.rotateLocked(r.LSN); err != nil {
				return err
			}
		}
		if err := writeFull(l.cur, appendRecord(nil, r.LSN, r.Payload)); err != nil {
			return err
		}
		l.curBytes += sz
	}
	l.noteFsync()
	return l.cur.Fsync()
}

// rotateLocked fsyncs and closes the current segment, then starts a new
// one whose name records the first LSN it will hold. The fsync-before-
// create ordering is what recovery relies on: a later segment exists only
// if every earlier segment is fully durable.
func (l *Log) rotateLocked(nextLSN uint64) error {
	l.noteFsync()
	if err := l.cur.Fsync(); err != nil {
		return err
	}
	if err := l.cur.Close(); err != nil {
		return err
	}
	name := segName(nextLSN)
	f, err := l.b.Create(name)
	if err != nil {
		return err
	}
	l.cur, l.curName, l.curBytes = f, name, 0
	l.segs = append(l.segs, segMeta{name: name, start: nextLSN})
	return nil
}

// writeFull writes buf completely, resuming after short writes (the
// paper's pipeline_out retry loop). An error with no forward progress is
// returned.
func writeFull(f File, buf []byte) error {
	sent := 0
	for sent < len(buf) {
		n, err := f.Write(buf[sent:])
		sent += n
		if err != nil && n == 0 {
			return err
		}
	}
	return nil
}

// noteFsync counts one fsync issued by this log, on whichever path —
// batch flush, segment rotation, or checkpoint. Group-commit flush
// metrics used to count only drain cycles (WALFlushes), so a rotation-
// or checkpoint-heavy run issued more fsyncs than the counters admitted
// and kvbench's fsyncs/commit arithmetic could not be reconciled
// against the filesystem's ground truth; Fsyncs closes that gap
// per lane (BatchStats.Fsyncs) and runtime-wide (Stats.WALFsyncs).
func (l *Log) noteFsync() {
	l.fsyncs.Add(1)
	l.rt.Stats().WALFsyncs.Add(1)
}

func (l *Log) noteBatch(n uint64) {
	l.flushes.Add(1)
	l.records.Add(n)
	for {
		cur := l.maxBatch.Load()
		if n <= cur || l.maxBatch.CompareAndSwap(cur, n) {
			break
		}
	}
	b := bits.Len64(n)
	if b >= len(l.hist) {
		b = len(l.hist) - 1
	}
	l.hist[b].Add(1)
	l.rt.Stats().WALFlushes.Add(1)
	l.rt.Stats().WALRecords.Add(n)
}

// BatchStats returns group-commit statistics since Open.
func (l *Log) BatchStats() BatchStats {
	s := BatchStats{
		Flushes:  l.flushes.Load(),
		Records:  l.records.Load(),
		Fsyncs:   l.fsyncs.Load(),
		MaxBatch: l.maxBatch.Load(),
	}
	for i := range l.hist {
		s.Hist[i] = l.hist[i].Load()
	}
	return s
}

// Checkpoint captures an application snapshot and installs it as the
// log's new recovery base, pruning fully covered segments and older
// checkpoints. snap runs inside a transaction and must return the
// snapshot blob plus the highest LSN whose effects it includes (for a
// store layered on the log, LastAssigned in the same transaction).
//
// The checkpoint holds the log lock throughout, so it excludes flushes —
// and, like a flush, transactions reading durability state wait behind
// it. Pruning happens only after the checkpoint record is fsynced, so a
// crash at any point leaves either the old or the new recovery base
// intact, never neither.
func (l *Log) Checkpoint(snap func(tx *stm.Tx) (blob []byte, upTo uint64, err error)) (uint64, error) {
	me := l.rt.NewOwner()
	l.Lock().AcquireOutside(l.rt, me)
	defer func() { _ = l.Lock().ReleaseOutside(l.rt, me) }()
	ctx := core.NewOpCtx(l.rt, me)
	l.drainAndFlush(ctx) // bound the queue before snapshotting

	var blob []byte
	var upTo uint64
	err := ctx.Atomic(func(tx *stm.Tx) error {
		var err error
		blob, upTo, err = snap(tx)
		return err
	})
	if err != nil {
		return 0, err
	}

	// Re-checkpointing an already-covered upTo would Create() the same
	// file name and truncate the only durable recovery base in place: a
	// crash between that truncation and the new fsync leaves NO valid
	// checkpoint while the segments it covered were already pruned by the
	// previous call — unrecoverable loss of every record ≤ upTo (and a
	// bootstrapping replica could ship the half-written blob). With no
	// new LSNs there is nothing to capture; keep the existing base.
	if upTo <= l.lastCkpt.Load() {
		return upTo, nil
	}

	name := ckptName(upTo)
	f, err := l.b.Create(name)
	if err != nil {
		return 0, fmt.Errorf("wal: create checkpoint: %w", err)
	}
	if err := writeFull(f, appendRecord(nil, upTo, blob)); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: write checkpoint: %w", err)
	}
	l.noteFsync()
	if err := f.Fsync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: fsync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("wal: close checkpoint: %w", err)
	}
	l.lastCkpt.Store(upTo)

	// Prune: only now that the new base is durable. Older checkpoints
	// first, then segments every record of which is ≤ upTo.
	names, err := l.b.Names()
	if err == nil {
		for _, n := range names {
			if lsn, ok := parseName(n, ckptPrefix); ok && lsn < upTo {
				_ = l.b.Remove(n)
			}
		}
	}
	l.fmu.Lock()
	kept := l.segs[:0]
	for i, s := range l.segs {
		if i+1 < len(l.segs) && l.segs[i+1].start <= upTo+1 {
			_ = l.b.Remove(s.name)
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	l.fmu.Unlock()

	l.rt.Stats().WALCheckpoints.Add(1)
	return upTo, nil
}

// Close flushes pending records and closes the current segment. Appends
// after Close panic the flusher; stop all writers first.
func (l *Log) Close() error {
	l.Flush()
	l.fmu.Lock()
	defer l.fmu.Unlock()
	if l.closed {
		return errors.New("wal: already closed")
	}
	l.closed = true
	return l.cur.Close()
}
