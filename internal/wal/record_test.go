package wal

import (
	"bytes"
	"testing"
)

func TestRecordRoundtrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAB}, 1000)}
	for i, p := range payloads {
		buf = appendRecord(buf, uint64(i+1), p)
	}
	rest := buf
	for i, p := range payloads {
		lsn, payload, r, ok := decodeNext(rest)
		if !ok {
			t.Fatalf("record %d: decode failed", i)
		}
		if lsn != uint64(i+1) || !bytes.Equal(payload, p) {
			t.Fatalf("record %d: got lsn=%d payload=%q", i, lsn, payload)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestRecordTornDetection(t *testing.T) {
	whole := appendRecord(nil, 7, []byte("payload"))
	// Every proper prefix must decode as not-ok (torn).
	for cut := 0; cut < len(whole); cut++ {
		if _, _, _, ok := decodeNext(whole[:cut]); ok {
			t.Fatalf("prefix of %d bytes decoded as a whole record", cut)
		}
	}
	// A flipped bit anywhere must fail the CRC (or the length check).
	for i := 0; i < len(whole); i++ {
		mut := append([]byte(nil), whole...)
		mut[i] ^= 0x01
		if lsn, payload, _, ok := decodeNext(mut); ok {
			t.Fatalf("bit flip at %d still decoded (lsn=%d payload=%q)", i, lsn, payload)
		}
	}
}

func TestRecordImplausibleLength(t *testing.T) {
	b := make([]byte, recordHeader+4)
	b[0] = 0xFF
	b[1] = 0xFF
	b[2] = 0xFF
	b[3] = 0x7F // length ≫ maxPayload
	if _, _, _, ok := decodeNext(b); ok {
		t.Fatal("implausible length accepted")
	}
}
