// Lane plumbing for sharded stores: several Logs share one Backend
// (and therefore one crash domain — a simio crash plan's fsync counter
// spans every lane) by namespacing their files with a per-lane prefix.
// The KV store's recovery additionally needs to drop a suffix of a lane
// when a cross-shard batch turns out to be incomplete on a sibling
// lane; TruncateTail performs that surgical cut on storage.
package wal

import (
	"fmt"
	"strings"
)

// LanePrefix returns the file-name prefix lane files live under.
// Lane 0 of a multi-lane store uses "lane00-", lane 1 "lane01-", and
// so on; a single-lane store uses no prefix at all, which keeps its
// directory layout byte-identical to the unsharded format (and lets it
// adopt pre-lane directories).
func LanePrefix(lane int) string { return fmt.Sprintf("lane%02d-", lane) }

// SubBackend namespaces b under prefix: every file the returned
// backend creates, opens or removes is stored in b as prefix+name, and
// Names lists only (and strips the prefix from) files under prefix.
// Logs for different lanes of one store each get a SubBackend of the
// same underlying Backend, so they share one filesystem — and, in
// tests, one simio crash plan.
func SubBackend(b Backend, prefix string) Backend {
	return prefixBackend{b: b, prefix: prefix}
}

type prefixBackend struct {
	b      Backend
	prefix string
}

func (p prefixBackend) Create(name string) (File, error)     { return p.b.Create(p.prefix + name) }
func (p prefixBackend) OpenAppend(name string) (File, error) { return p.b.OpenAppend(p.prefix + name) }
func (p prefixBackend) Open(name string) (File, error)       { return p.b.Open(p.prefix + name) }
func (p prefixBackend) Remove(name string) error             { return p.b.Remove(p.prefix + name) }
func (p prefixBackend) Truncate(name string, size int64) error {
	return p.b.Truncate(p.prefix+name, size)
}

func (p prefixBackend) Names() ([]string, error) {
	all, err := p.b.Names()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range all {
		if strings.HasPrefix(n, p.prefix) {
			out = append(out, n[len(p.prefix):])
		}
	}
	return out, nil
}

// TruncateTail removes every record with LSN >= cut from the storage
// rec was recovered from: the segment holding cut is truncated at the
// record's first byte and all later segments are deleted. b must be
// the same backend the Recovery came from (for a lane, its SubBackend),
// and the Log must not have been reopened for appending yet — callers
// truncate between recovery passes, then Open the lane again so LSN
// assignment resumes below the cut.
//
// The KV store uses this for presumed-abort of cross-shard batches: a
// batch whose record is missing from a sibling lane was never fully
// durable — and, because the flushing deferral holds every touched
// lane's lock and publishes no watermark until all lanes are fsynced,
// it was never acked either — so dropping its records (and the lane's
// tail after them, which likewise cannot have been acked) restores a
// consistent per-lane prefix.
func TruncateTail(b Backend, rec *Recovery, cut uint64) error {
	if cut == 0 || cut <= rec.CheckpointLSN {
		return fmt.Errorf("wal: truncate tail at %d would cut into checkpoint %d", cut, rec.CheckpointLSN)
	}
	var at *Record
	for i := range rec.Records {
		if rec.Records[i].LSN == cut {
			at = &rec.Records[i]
			break
		}
	}
	if at == nil {
		return fmt.Errorf("wal: truncate tail: no recovered record with LSN %d", cut)
	}
	if err := b.Truncate(at.Seg, at.Off); err != nil {
		return fmt.Errorf("wal: truncate tail of %s: %w", at.Seg, err)
	}
	// Any segment that starts at or after the cut holds only dropped
	// records; remove it so recovery's contiguity checks see a clean
	// prefix and new appends reuse the LSN space.
	names, err := b.Names()
	if err != nil {
		return err
	}
	for _, n := range names {
		if start, ok := parseName(n, segPrefix); ok && start >= cut && n != at.Seg {
			if err := b.Remove(n); err != nil {
				return fmt.Errorf("wal: truncate tail: remove %s: %w", n, err)
			}
		}
	}
	return nil
}
