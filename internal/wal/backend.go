package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"deferstm/internal/simio"
)

// Backend abstracts the storage the log writes to: a directory of real
// files (OSBackend) or the simulated filesystem (SimBackend), whose
// latency model and crash injection drive the deterministic tests and
// benchmarks.
type Backend interface {
	// Create creates (truncating) name and opens it for writing.
	Create(name string) (File, error)
	// OpenAppend opens name positioned at its end, creating it if absent.
	OpenAppend(name string) (File, error)
	// Open opens name for reading from offset 0.
	Open(name string) (File, error)
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes (recovery drops torn tails).
	Truncate(name string, size int64) error
	// Names lists existing file names in lexical order.
	Names() ([]string, error)
}

// File is one open log file.
type File interface {
	io.Reader
	io.Writer
	Fsync() error
	Close() error
	// Size reports the file's current length.
	Size() (int64, error)
}

// SimBackend adapts a *simio.FS. The zero value is unusable; wrap an FS
// with NewSimBackend.
type SimBackend struct{ FS *simio.FS }

// NewSimBackend wraps fs.
func NewSimBackend(fs *simio.FS) SimBackend { return SimBackend{FS: fs} }

type simFile struct{ *simio.File }

func (f simFile) Size() (int64, error) { return int64(f.Len()), nil }

func (b SimBackend) Create(name string) (File, error) {
	f, err := b.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return simFile{f}, nil
}

func (b SimBackend) OpenAppend(name string) (File, error) {
	f, err := b.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return simFile{f}, nil
}

func (b SimBackend) Open(name string) (File, error) {
	f, err := b.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return simFile{f}, nil
}

func (b SimBackend) Remove(name string) error { return b.FS.Remove(name) }

func (b SimBackend) Truncate(name string, size int64) error {
	return b.FS.Truncate(name, int(size))
}

func (b SimBackend) Names() ([]string, error) { return b.FS.Names(), nil }

// OSBackend stores log files in a real directory. Note that it does not
// fsync the directory after create/remove, so the existence of a
// just-created segment is not itself crash-durable on a real disk; the
// recovery protocol tolerates this (a missing empty segment loses no
// records), but belt-and-braces deployments would add directory syncs.
type OSBackend struct{ Dir string }

// NewOSBackend creates dir if needed and returns a backend rooted there.
func NewOSBackend(dir string) (OSBackend, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return OSBackend{}, fmt.Errorf("wal: backend dir: %w", err)
	}
	return OSBackend{Dir: dir}, nil
}

type osFile struct{ *os.File }

func (f osFile) Fsync() error { return f.Sync() }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (b OSBackend) Create(name string) (File, error) {
	f, err := os.Create(filepath.Join(b.Dir, name))
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (b OSBackend) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(b.Dir, name), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o666)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (b OSBackend) Open(name string) (File, error) {
	f, err := os.Open(filepath.Join(b.Dir, name))
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (b OSBackend) Remove(name string) error {
	return os.Remove(filepath.Join(b.Dir, name))
}

func (b OSBackend) Truncate(name string, size int64) error {
	return os.Truncate(filepath.Join(b.Dir, name), size)
}

func (b OSBackend) Names() ([]string, error) {
	ents, err := os.ReadDir(b.Dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// readWhole reads all of name through the backend.
func readWhole(b Backend, name string) ([]byte, error) {
	f, err := b.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 32*1024)
	for {
		n, err := f.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
