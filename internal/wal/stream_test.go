package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"deferstm/internal/simio"
	"deferstm/internal/stm"
)

func ckptSnap(l *Log, blob string) func(tx *stm.Tx) ([]byte, uint64, error) {
	return func(tx *stm.Tx) ([]byte, uint64, error) {
		return []byte(blob), l.LastAssigned(tx), nil
	}
}

// TestReadRangeTail: the stream reader returns exactly (after, upTo] in
// order across segment rotations, honors maxBytes with at-least-one
// progress, and never ships past upTo.
func TestReadRangeTail(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, _ := openSim(t, fs, Options{SegmentBytes: 64})

	var want [][]byte
	for i := 1; i <= 12; i++ {
		p := []byte(fmt.Sprintf("rec-%02d", i))
		want = append(want, p)
		appendOne(t, rt, l, string(p))
	}
	d := l.DurableWatermark()
	if d != 12 {
		t.Fatalf("durable = %d, want 12", d)
	}

	recs, err := l.ReadRange(0, d, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 {
		t.Fatalf("got %d records, want 12", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d = (%d, %q), want (%d, %q)", i, r.LSN, r.Payload, i+1, want[i])
		}
	}

	// Mid-range cursor: (5, 9] exactly, inclusive upper bound.
	recs, err = l.ReadRange(5, 9, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].LSN != 6 || recs[3].LSN != 9 {
		t.Fatalf("range (5,9] = %d records [%d..%d]", len(recs), recs[0].LSN, recs[len(recs)-1].LSN)
	}

	// maxBytes=1 still makes progress, one record at a time.
	cursor := uint64(0)
	var n int
	for cursor < d {
		recs, err := l.ReadRange(cursor, d, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 {
			t.Fatalf("maxBytes=1 returned %d records", len(recs))
		}
		cursor = recs[0].LSN
		n++
	}
	if n != 12 {
		t.Fatalf("chunked tail delivered %d records, want 12", n)
	}

	// Empty range is not an error.
	if recs, err := l.ReadRange(d, d, 1<<20); err != nil || len(recs) != 0 {
		t.Fatalf("empty range = (%v, %v)", recs, err)
	}
}

// TestReadRangeCheckpointBootstrap: after a checkpoint prunes segments,
// a cursor below the cut gets ErrPruned, LatestCheckpoint hands back the
// base, and the tail resumes at exactly upTo+1 — the record at upTo is
// inside the blob and must not be shipped again.
func TestReadRangeCheckpointBootstrap(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, _ := openSim(t, fs, Options{SegmentBytes: 64})

	for i := 1; i <= 8; i++ {
		appendOne(t, rt, l, fmt.Sprintf("old-%d", i))
	}
	upTo, err := l.Checkpoint(ckptSnap(l, "blob-at-8"))
	if err != nil {
		t.Fatal(err)
	}
	if upTo != 8 || l.CheckpointLSN() != 8 {
		t.Fatalf("checkpoint upTo = %d (CheckpointLSN %d), want 8", upTo, l.CheckpointLSN())
	}
	for i := 9; i <= 11; i++ {
		appendOne(t, rt, l, fmt.Sprintf("new-%d", i))
	}

	if _, err := l.ReadRange(0, l.DurableWatermark(), 1<<20); !errors.Is(err, ErrPruned) {
		t.Fatalf("cursor below cut: err = %v, want ErrPruned", err)
	}

	ckLSN, blob, err := l.LatestCheckpoint()
	if err != nil || ckLSN != 8 || string(blob) != "blob-at-8" {
		t.Fatalf("LatestCheckpoint = (%d, %q, %v)", ckLSN, blob, err)
	}

	recs, err := l.ReadRange(ckLSN, l.DurableWatermark(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].LSN != 9 || recs[2].LSN != 11 {
		t.Fatalf("tail after bootstrap = %d records starting %d", len(recs), recs[0].LSN)
	}
}

// TestCheckpointSameUpToNoRewrite pins the re-checkpoint data-loss bug:
// checkpointing an upTo already covered by the newest checkpoint used to
// Create() the same file name, truncating the only durable recovery
// base in place — a crash before the replacement's fsync left no valid
// checkpoint while the covered segments were already pruned. The fix
// performs no backend mutation at all, which the armed crash plan
// verifies: any write or fsync on this path would capture an image.
func TestCheckpointSameUpToNoRewrite(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, _ := openSim(t, fs, Options{SegmentBytes: 64})

	for i := 1; i <= 8; i++ {
		appendOne(t, rt, l, fmt.Sprintf("rec-%d", i))
	}
	first, err := l.Checkpoint(ckptSnap(l, "base"))
	if err != nil || first != 8 {
		t.Fatalf("first checkpoint = (%d, %v)", first, err)
	}

	fs.SetCrashPlan(simio.CrashPlan{Point: simio.CrashMidWrite, N: 1})
	again, err := l.Checkpoint(ckptSnap(l, "base"))
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("re-checkpoint upTo = %d, want %d", again, first)
	}
	if fs.Crashed() {
		img := fs.CrashImage()
		rt2 := stm.NewDefault()
		_, rec, err := Open(rt2, NewSimBackend(simio.FSFromImage(img, simio.Latency{}, 1)), Options{SegmentBytes: 64})
		t.Fatalf("re-checkpoint rewrote the durable base in place; crash image recovers to (ckpt=%d, last=%d, err=%v) — records lost",
			recCkpt(rec), recLast(rec), err)
	}
	fs.SetCrashPlan(simio.CrashPlan{})

	// New appends move upTo forward and checkpointing works normally again.
	appendOne(t, rt, l, "rec-9")
	next, err := l.Checkpoint(ckptSnap(l, "base2"))
	if err != nil || next != 9 {
		t.Fatalf("next checkpoint = (%d, %v)", next, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rt2 := stm.NewDefault()
	l2, rec, err := Open(rt2, NewSimBackend(fs), Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.CheckpointLSN != 9 || string(rec.Checkpoint) != "base2" || rec.LastLSN != 9 {
		t.Fatalf("recovery = ckpt %d %q last %d", rec.CheckpointLSN, rec.Checkpoint, rec.LastLSN)
	}
}

func recCkpt(r *Recovery) uint64 {
	if r == nil {
		return 0
	}
	return r.CheckpointLSN
}

func recLast(r *Recovery) uint64 {
	if r == nil {
		return 0
	}
	return r.LastLSN
}

// TestCheckpointCrashKeepsOldBase: a crash mid-write of a NEW checkpoint
// (fresh upTo) must leave the previous base and its tail segments intact
// — prune strictly follows the new base's fsync.
func TestCheckpointCrashKeepsOldBase(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, _ := openSim(t, fs, Options{SegmentBytes: 64})

	for i := 1; i <= 6; i++ {
		appendOne(t, rt, l, fmt.Sprintf("rec-%d", i))
	}
	if _, err := l.Checkpoint(ckptSnap(l, "old-base")); err != nil {
		t.Fatal(err)
	}
	for i := 7; i <= 10; i++ {
		appendOne(t, rt, l, fmt.Sprintf("rec-%d", i))
	}

	fs.SetCrashPlan(simio.CrashPlan{Point: simio.CrashMidWrite, N: 1})
	if _, err := l.Checkpoint(ckptSnap(l, "new-base")); err != nil {
		t.Fatal(err)
	}
	if !fs.Crashed() {
		t.Fatal("crash plan did not fire during the new checkpoint's write")
	}
	rt2 := stm.NewDefault()
	l2, rec, err := Open(rt2, NewSimBackend(simio.FSFromImage(fs.CrashImage(), simio.Latency{}, 1)), Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.CheckpointLSN != 6 || string(rec.Checkpoint) != "old-base" {
		t.Fatalf("fallback base = (%d, %q), want (6, old-base)", rec.CheckpointLSN, rec.Checkpoint)
	}
	if rec.LastLSN != 10 {
		t.Fatalf("recovered LastLSN = %d, want 10 (tail records lost with the old base?)", rec.LastLSN)
	}
}

// TestWaitDurableCtxCancelNoLeak mirrors the PR 6 retry-cancel path for
// the durability watermark: cancelling a parked WaitDurableCtx must
// unregister the waiter from the watermark's watcher set. The gate is
// RetryParked draining to zero under churn; a leaked registration keeps
// the count pinned.
func TestWaitDurableCtxCancelNoLeak(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	rt, l, _ := openSim(t, fs, Options{})
	defer l.Close()

	const waiters = 32
	for round := 0; round < 8; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		future := l.DurableWatermark() + 1000
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := l.WaitDurableCtx(ctx, future); !errors.Is(err, context.Canceled) {
					t.Errorf("WaitDurableCtx = %v, want context.Canceled", err)
				}
			}()
		}
		// Let at least some waiters actually park before cancelling.
		deadline := time.Now().Add(time.Second)
		for rt.RetryParked() < waiters/2 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
		wg.Wait()
		if parked := rt.RetryParked(); parked != 0 {
			t.Fatalf("round %d: %d waiters still parked after cancel", round, parked)
		}
	}

	// The watcher set must still wake real waiters: a fresh wait
	// released by an append proves no poisoned registrations remain.
	done := make(chan error, 1)
	target := l.DurableWatermark() + 1
	go func() { done <- l.WaitDurableCtx(context.Background(), target) }()
	time.Sleep(time.Millisecond)
	appendOne(t, rt, l, "wake")
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after append")
	}
}
