// Package iobench implements the paper's transactional I/O
// microbenchmark (Section 6.1, Figure 2), patterned after Demsky and
// Tehrany: threads cooperate to complete a fixed number of operations,
// each of which produces content, identifies a file, and performs I/O on
// it — open the file, read its length, and append formatted data
// (Listing 6). The I/O can be executed under a coarse global lock (CGL),
// one fine-grained lock per file (FGL), an irrevocable transaction
// (irrevoc), or atomically deferred from a transaction (defer).
//
// Four configurations reproduce the figure's panels:
//
//	(a) 1 file            — no concurrency available
//	(b) 2 files, +FGL
//	(c) 4 files
//	(d) 4 files kept open — short critical sections (append only)
package iobench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"deferstm/internal/core"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
)

// Mode is the synchronization scheme for the I/O operation.
type Mode int

const (
	// CGL executes the operation under one global mutex.
	CGL Mode = iota
	// FGL executes the operation under a per-file mutex.
	FGL
	// Irrevoc executes the operation inside an irrevocable (serial)
	// transaction, as GCC runs a `synchronized` block that performs I/O
	// ("serializes early, avoids instrumentation").
	Irrevoc
	// Defer executes the bookkeeping in a transaction and atomically
	// defers the I/O on the file's deferrable object.
	Defer
)

var modeNames = map[Mode]string{CGL: "CGL", FGL: "FGL", Irrevoc: "irrevoc", Defer: "defer"}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode resolves a mode name.
func ParseMode(s string) (Mode, error) {
	for m, name := range modeNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("iobench: unknown mode %q", s)
}

// Config parameterizes a run.
type Config struct {
	Mode    Mode
	Files   int // number of files (1, 2 or 4 in the paper)
	Threads int
	Ops     int // total operations across all threads
	// KeepOpen selects Figure 2(d): files stay open and operations are
	// bare appends (short critical sections).
	KeepOpen bool
	// Payload is the formatted-content size per append. 0 means 64.
	Payload int
	// Latency overrides the filesystem latency model (zero value =
	// simio.PageCacheLatency()). Set NoLatency to force a free
	// filesystem instead (unit tests).
	Latency   simio.Latency
	NoLatency bool
	// TM optionally overrides the STM runtime tuning for Irrevoc/Defer.
	TM stm.Config
}

func (c Config) withDefaults() Config {
	if c.Files < 1 {
		c.Files = 1
	}
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.Ops < 1 {
		c.Ops = 1000
	}
	if c.Payload <= 0 {
		c.Payload = 64
	}
	if !c.NoLatency && c.Latency == (simio.Latency{}) {
		c.Latency = simio.PageCacheLatency()
	}
	return c
}

// Result summarizes a run.
type Result struct {
	Mode    Mode
	Threads int
	Elapsed time.Duration
	Ops     int
	FS      simio.FSStats
	TM      stm.StatsSnapshot // zero for lock modes
}

// OpsPerSec is throughput.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// fileState is the per-file shared state: the deferrable identity, a
// transactional sequence number (the shared data the transaction reads
// and writes — "content" in Listing 6), and lock-mode equivalents.
type fileState struct {
	name string
	df   *simio.DeferFile
	seq  stm.Var[int] // TM modes
	mu   sync.Mutex   // FGL
	nSeq int          // lock modes
	open *simio.File  // KeepOpen handle
}

// Run executes the microbenchmark and returns statistics. The produced
// files contain one formatted line per operation; Verify checks them.
func Run(cfg Config) (Result, *simio.FS, error) {
	cfg = cfg.withDefaults()
	fs := simio.NewFS(cfg.Latency)

	files := make([]*fileState, cfg.Files)
	for i := range files {
		name := fmt.Sprintf("data-%d", i)
		df, err := simio.NewDeferFile(fs, name)
		if err != nil {
			return Result{}, nil, err
		}
		files[i] = &fileState{name: name, df: df}
		if cfg.KeepOpen {
			f, err := fs.OpenAppend(name)
			if err != nil {
				return Result{}, nil, err
			}
			files[i].open = f
		}
	}

	var rt *stm.Runtime
	if cfg.Mode == Irrevoc || cfg.Mode == Defer {
		rt = stm.New(cfg.TM)
	}
	var glock sync.Mutex

	payload := make([]byte, cfg.Payload)
	for i := range payload {
		payload[i] = 'a' + byte(i%26)
	}

	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := uint64(tid)*0x9E3779B97F4A7C15 + 1
			for {
				op := next.Add(1)
				if op > int64(cfg.Ops) {
					return
				}
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				f := files[rng%uint64(len(files))]
				if err := doOp(cfg, rt, &glock, f, payload); err != nil {
					errs <- err
					return
				}
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return Result{}, nil, err
	default:
	}

	if cfg.KeepOpen {
		for _, f := range files {
			_ = f.open.Close()
		}
	}
	res := Result{Mode: cfg.Mode, Threads: cfg.Threads, Elapsed: elapsed, Ops: cfg.Ops, FS: fs.Stats()}
	if rt != nil {
		res.TM = rt.Snapshot()
	}
	return res, fs, nil
}

func doOp(cfg Config, rt *stm.Runtime, glock *sync.Mutex, f *fileState, payload []byte) error {
	switch cfg.Mode {
	case CGL:
		glock.Lock()
		defer glock.Unlock()
		f.nSeq++
		return ioOp(cfg, f, f.nSeq, payload)
	case FGL:
		f.mu.Lock()
		defer f.mu.Unlock()
		f.nSeq++
		return ioOp(cfg, f, f.nSeq, payload)
	case Irrevoc:
		// A synchronized block containing I/O: the runtime serializes
		// early and runs the whole operation irrevocably.
		return rt.AtomicSerial(func(tx *stm.Tx) error {
			seq := f.seq.Get(tx) + 1
			f.seq.Set(tx, seq)
			return ioOp(cfg, f, seq, payload)
		})
	case Defer:
		// The transactional part updates the shared sequence number;
		// the I/O is atomically deferred on the file's deferrable.
		return rt.Atomic(func(tx *stm.Tx) error {
			f.df.Subscribe(tx)
			seq := f.seq.Get(tx) + 1
			f.seq.Set(tx, seq)
			core.AtomicDefer(tx, func(ctx *core.OpCtx) {
				// Errors inside a deferred op cannot abort the
				// committed transaction (the paper's Section 7
				// discusses this limit); the benchmark treats them as
				// fatal output errors.
				if err := ioOp(cfg, f, seq, payload); err != nil {
					panic(fmt.Sprintf("iobench: deferred I/O failed: %v", err))
				}
			}, f.df)
			return nil
		})
	default:
		return fmt.Errorf("iobench: bad mode %v", cfg.Mode)
	}
}

// ioOp is Listing 6's operation: open, read length, close, append
// formatted content, close. In KeepOpen mode it is a bare append.
func ioOp(cfg Config, f *fileState, seq int, payload []byte) error {
	fs := f.df.FS
	var length int
	if cfg.KeepOpen {
		length = f.open.Len()
		rec := fmt.Sprintf("%s seq=%d len=%d %s\n", f.name, seq, length, payload)
		_, err := f.open.Write([]byte(rec))
		return err
	}
	in, err := fs.Open(f.name)
	if err != nil {
		return err
	}
	length = in.Len() // seekg(0,end); tellg
	if err := in.Close(); err != nil {
		return err
	}
	out, err := fs.OpenAppend(f.name)
	if err != nil {
		return err
	}
	rec := fmt.Sprintf("%s seq=%d len=%d %s\n", f.name, seq, length, payload)
	if _, err := out.Write([]byte(rec)); err != nil {
		return err
	}
	return out.Close()
}

// Verify checks a finished run's files: the total number of appended
// records must equal Ops, and within each file the sequence numbers must
// be exactly 1..n in order (each mode holds the file's lock — or runs
// serially — across the read-modify-write, so per-file order is total).
func Verify(fs *simio.FS, cfg Config) error {
	cfg = cfg.withDefaults()
	total := 0
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("data-%d", i)
		data, err := fs.ReadAll(name)
		if err != nil {
			return err
		}
		count := 0
		wantSeq := 1
		for _, line := range splitLines(data) {
			var gotName string
			var seq, length int
			var tail string
			if _, err := fmt.Sscanf(string(line), "%s seq=%d len=%d %s", &gotName, &seq, &length, &tail); err != nil {
				return fmt.Errorf("iobench: bad record in %s: %q: %w", name, line, err)
			}
			if gotName != name {
				return fmt.Errorf("iobench: record for %s found in %s", gotName, name)
			}
			if seq != wantSeq {
				return fmt.Errorf("iobench: %s seq %d out of order (want %d)", name, seq, wantSeq)
			}
			wantSeq++
			count++
		}
		total += count
	}
	if total != cfg.Ops {
		return fmt.Errorf("iobench: %d records, want %d", total, cfg.Ops)
	}
	return nil
}

func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				out = append(out, data[start:i])
			}
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}
