package iobench

import (
	"testing"

	"deferstm/internal/stm"
)

func fastCfg(mode Mode, files, threads, ops int, keepOpen bool) Config {
	return Config{
		Mode:      mode,
		Files:     files,
		Threads:   threads,
		Ops:       ops,
		KeepOpen:  keepOpen,
		NoLatency: true,
	}
}

// TestAllModesVerify: every mode, open/close and keep-open variants,
// multiple thread counts — the produced files must contain exactly Ops
// records with per-file sequence numbers in order.
func TestAllModesVerify(t *testing.T) {
	for _, mode := range []Mode{CGL, FGL, Irrevoc, Defer} {
		for _, keepOpen := range []bool{false, true} {
			for _, threads := range []int{1, 4} {
				mode, keepOpen, threads := mode, keepOpen, threads
				name := mode.String()
				if keepOpen {
					name += "-keepopen"
				}
				name += map[int]string{1: "-t1", 4: "-t4"}[threads]
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cfg := fastCfg(mode, 2, threads, 400, keepOpen)
					res, fs, err := Run(cfg)
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					if err := Verify(fs, cfg); err != nil {
						t.Fatal(err)
					}
					if res.Ops != 400 {
						t.Errorf("ops = %d", res.Ops)
					}
					if res.OpsPerSec() <= 0 {
						t.Error("throughput not positive")
					}
				})
			}
		}
	}
}

// TestIrrevocSerializesEveryOp: each operation runs as a serial
// transaction.
func TestIrrevocSerializesEveryOp(t *testing.T) {
	cfg := fastCfg(Irrevoc, 2, 2, 100, false)
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TM.SerialRuns < 100 {
		t.Errorf("serial runs = %d, want >= 100", res.TM.SerialRuns)
	}
}

// TestDeferUsesDeferredOps: every operation defers exactly one I/O op and
// never serializes for output.
func TestDeferUsesDeferredOps(t *testing.T) {
	cfg := fastCfg(Defer, 2, 2, 100, false)
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TM.DeferredOps != 100 {
		t.Errorf("deferred ops = %d, want 100", res.TM.DeferredOps)
	}
	if res.TM.SerialRuns > 10 {
		t.Errorf("serial runs = %d; defer mode should rarely serialize", res.TM.SerialRuns)
	}
}

// TestOpenCloseCounts: in open/close mode each op opens twice (read +
// append); in keep-open mode no per-op opens occur.
func TestOpenCloseCounts(t *testing.T) {
	cfg := fastCfg(CGL, 1, 1, 50, false)
	res, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 initial create + 2 per op.
	if res.FS.Opens < 100 {
		t.Errorf("opens = %d, want >= 100", res.FS.Opens)
	}
	cfgK := fastCfg(CGL, 1, 1, 50, true)
	resK, _, err := Run(cfgK)
	if err != nil {
		t.Fatal(err)
	}
	if resK.FS.Opens > 5 {
		t.Errorf("keep-open opens = %d, want few", resK.FS.Opens)
	}
	if resK.FS.Writes != 50 {
		t.Errorf("keep-open writes = %d", resK.FS.Writes)
	}
}

func TestModeParsing(t *testing.T) {
	for _, m := range []Mode{CGL, FGL, Irrevoc, Defer} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v,%v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("expected error")
	}
	if Mode(42).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Files != 1 || c.Threads != 1 || c.Ops != 1000 || c.Payload != 64 {
		t.Errorf("defaults = %+v", c)
	}
	if c.Latency.Open == 0 {
		t.Error("latency model not defaulted")
	}
	cn := Config{NoLatency: true}.withDefaults()
	if cn.Latency.Open != 0 {
		t.Error("NoLatency ignored")
	}
}

// TestVerifyDetectsTampering: Verify must fail on corrupted output.
func TestVerifyDetectsTampering(t *testing.T) {
	cfg := fastCfg(FGL, 1, 1, 10, false)
	_, fs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Append a bogus duplicate-seq record.
	f, _ := fs.OpenAppend("data-0")
	_, _ = f.Write([]byte("data-0 seq=3 len=0 x\n"))
	_ = f.Close()
	if err := Verify(fs, cfg); err == nil {
		t.Error("Verify accepted out-of-order seq")
	}
}

// TestDeferUnderHTM: the microbenchmark's defer mode runs on the
// simulated HTM too — deferral needs no syscalls inside transactions, so
// the hardware path commits (the paper notes HTM trends match STM).
func TestDeferUnderHTM(t *testing.T) {
	cfg := fastCfg(Defer, 2, 2, 200, false)
	cfg.TM = stm.Config{Mode: stm.ModeHTM}
	res, fs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(fs, cfg); err != nil {
		t.Fatal(err)
	}
	if res.TM.DeferredOps != 200 {
		t.Errorf("deferred ops = %d", res.TM.DeferredOps)
	}
	// HTM capacity is never exceeded by the tiny transactional part.
	if res.TM.AbortsCapacity != 0 {
		t.Errorf("capacity aborts = %d", res.TM.AbortsCapacity)
	}
}

// TestIrrevocUnderHTM: irrevocable ops under HTM use the serial path.
func TestIrrevocUnderHTM(t *testing.T) {
	cfg := fastCfg(Irrevoc, 2, 2, 100, false)
	cfg.TM = stm.Config{Mode: stm.ModeHTM}
	res, fs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(fs, cfg); err != nil {
		t.Fatal(err)
	}
	if res.TM.SerialRuns < 100 {
		t.Errorf("serial runs = %d", res.TM.SerialRuns)
	}
}
