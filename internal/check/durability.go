package check

import (
	"fmt"
	"sort"

	"deferstm/internal/stm"
)

// Durability checking over the WAL events (EvWALAppend / EvWALDurable)
// that package wal records. Two layers:
//
//   - History (via checkDurability) verifies the live-execution axioms:
//     LSNs are unique and their order agrees with the serialization
//     order (commit-version order) of the appending transactions; the
//     durable watermark only ever covers appended records, never
//     retreats, and is never published before the record it covers was
//     committed.
//
//   - RecoveredPrefix relates a recovered state to the history it was
//     recovered from: everything acknowledged durable before the crash
//     must be present after replay, and the recovered state must be a
//     prefix of the serialization order — no gap, and nothing beyond
//     what was ever appended.

// RuleDurability names durability violations in reports.
const RuleDurability = "durability"

type walAppend struct {
	lsn   uint64
	ver   uint64 // commit version of the appending transaction
	seq   uint64
	txID  uint64
	owner stm.OwnerID
}

type walDurable struct {
	watermark uint64
	seq       uint64
}

// checkDurability verifies the live-history WAL axioms, per log (events
// are grouped by the log's lock variable, so histories with several logs
// check independently).
func checkDurability(p *parsed) []Violation {
	var out []Violation
	for logVar, apps := range p.walAppends {
		byLSN := make(map[uint64]*walAppend, len(apps))
		for i := range apps {
			a := &apps[i]
			if prev, dup := byLSN[a.lsn]; dup {
				out = append(out, Violation{
					Rule: RuleDurability, TxID: a.txID, Seq: a.seq,
					Msg: fmt.Sprintf("LSN %d of log %d appended by two committed transactions (tx %d and tx %d)",
						a.lsn, logVar, prev.txID, a.txID),
				})
				continue
			}
			byLSN[a.lsn] = a
		}
		// LSN order must be serialization order: ascending LSN ⇒ strictly
		// ascending commit version.
		sorted := make([]*walAppend, 0, len(byLSN))
		for _, a := range byLSN {
			sorted = append(sorted, a)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].lsn < sorted[j].lsn })
		for i := 1; i < len(sorted); i++ {
			lo, hi := sorted[i-1], sorted[i]
			if hi.ver <= lo.ver {
				out = append(out, Violation{
					Rule: RuleDurability, TxID: hi.txID, Seq: hi.seq,
					Msg: fmt.Sprintf("LSN order disagrees with serialization order on log %d: LSN %d committed at version %d but LSN %d at version %d",
						logVar, lo.lsn, lo.ver, hi.lsn, hi.ver),
				})
			}
		}
		var maxLSN uint64
		for lsn := range byLSN {
			if lsn > maxLSN {
				maxLSN = lsn
			}
		}
		prevWM := uint64(0)
		for _, d := range p.walDurables[logVar] {
			if d.watermark < prevWM {
				out = append(out, Violation{
					Rule: RuleDurability, Seq: d.seq,
					Msg: fmt.Sprintf("durable watermark of log %d retreated from %d to %d", logVar, prevWM, d.watermark),
				})
			}
			prevWM = d.watermark
			if d.watermark > maxLSN {
				out = append(out, Violation{
					Rule: RuleDurability, Seq: d.seq,
					Msg: fmt.Sprintf("log %d acknowledged LSN %d durable but only %d records were ever appended by committed transactions",
						logVar, d.watermark, maxLSN),
				})
				continue
			}
			if a, ok := byLSN[d.watermark]; !ok {
				out = append(out, Violation{
					Rule: RuleDurability, Seq: d.seq,
					Msg: fmt.Sprintf("log %d acknowledged watermark %d, which no committed transaction appended", logVar, d.watermark),
				})
			} else if d.seq < a.seq {
				out = append(out, Violation{
					Rule: RuleDurability, TxID: a.txID, Seq: d.seq,
					Msg: fmt.Sprintf("log %d acknowledged LSN %d durable before the appending transaction's commit flushed it", logVar, d.watermark),
				})
			}
		}
	}
	return out
}

// RecoveredPrefix checks a recovered state against the pre-crash history
// it was recovered from: recoveredLastLSN is what recovery reports as the
// highest LSN its state covers (wal.Recovery.LastLSN / kv's
// RecoveryInfo.LastLSN). The axiom has two halves:
//
//   - completeness: every record acknowledged durable in the history
//     (any EvWALDurable watermark) is present after replay;
//   - prefix-ness: the recovered state is a prefix of the serialization
//     order — it does not extend past the appended history, and every
//     LSN up to recoveredLastLSN was appended (no holes).
//
// The history must contain a single log's WAL events (the usual case:
// one store per runtime); baseLSN is the LSN the log started at in this
// history (0 for a log created fresh).
func RecoveredPrefix(events []stm.Event, baseLSN, recoveredLastLSN uint64) []Violation {
	var out []Violation
	acked := uint64(0)
	appended := make(map[uint64]bool)
	maxLSN := baseLSN
	for _, ev := range events {
		switch ev.Kind {
		case stm.EvWALAppend:
			appended[ev.Aux] = true
			if ev.Aux > maxLSN {
				maxLSN = ev.Aux
			}
		case stm.EvWALDurable:
			if ev.Aux > acked {
				acked = ev.Aux
			}
		}
	}
	if recoveredLastLSN < acked {
		out = append(out, Violation{
			Rule: RuleDurability,
			Msg: fmt.Sprintf("recovery lost acknowledged records: recovered through LSN %d but LSN %d was acked durable",
				recoveredLastLSN, acked),
		})
	}
	if recoveredLastLSN > maxLSN {
		out = append(out, Violation{
			Rule: RuleDurability,
			Msg: fmt.Sprintf("recovered state (through LSN %d) extends past the appended history (through LSN %d) — not a prefix",
				recoveredLastLSN, maxLSN),
		})
	}
	for lsn := baseLSN + 1; lsn <= recoveredLastLSN; lsn++ {
		if !appended[lsn] {
			out = append(out, Violation{
				Rule: RuleDurability,
				Msg:  fmt.Sprintf("recovered state covers LSN %d, which no committed transaction appended — not a prefix of the serialization order", lsn),
			})
		}
	}
	return out
}
