package check

import (
	"fmt"
	"strconv"
	"strings"
	"sort"

	"deferstm/internal/stm"
)

// Durability checking over the WAL events (EvWALAppend / EvWALDurable)
// that package wal records. Two layers:
//
//   - History (via checkDurability) verifies the live-execution axioms:
//     LSNs are unique and their order agrees with the serialization
//     order (commit-version order) of the appending transactions; the
//     durable watermark only ever covers appended records, never
//     retreats, and is never published before the record it covers was
//     committed.
//
//   - RecoveredPrefix relates a recovered state to the history it was
//     recovered from: everything acknowledged durable before the crash
//     must be present after replay, and the recovered state must be a
//     prefix of the serialization order — no gap, and nothing beyond
//     what was ever appended.

// RuleDurability names durability violations in reports.
const RuleDurability = "durability"

type walAppend struct {
	lsn   uint64
	gsn   uint64 // global commit sequence number (0 on single-lane logs)
	ver   uint64 // commit version of the appending transaction
	seq   uint64
	txID  uint64
	owner stm.OwnerID
}

type walDurable struct {
	watermark uint64
	seq       uint64
}

// checkDurability verifies the live-history WAL axioms, per log (events
// are grouped by the log's lock variable, so histories with several logs
// check independently).
func checkDurability(p *parsed) []Violation {
	var out []Violation
	for logVar, apps := range p.walAppends {
		byLSN := make(map[uint64]*walAppend, len(apps))
		for i := range apps {
			a := &apps[i]
			if prev, dup := byLSN[a.lsn]; dup {
				out = append(out, Violation{
					Rule: RuleDurability, TxID: a.txID, Seq: a.seq,
					Msg: fmt.Sprintf("LSN %d of log %d appended by two committed transactions (tx %d and tx %d)",
						a.lsn, logVar, prev.txID, a.txID),
				})
				continue
			}
			byLSN[a.lsn] = a
		}
		// LSN order must be serialization order: ascending LSN ⇒ strictly
		// ascending commit version.
		sorted := make([]*walAppend, 0, len(byLSN))
		for _, a := range byLSN {
			sorted = append(sorted, a)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].lsn < sorted[j].lsn })
		for i := 1; i < len(sorted); i++ {
			lo, hi := sorted[i-1], sorted[i]
			if hi.ver <= lo.ver {
				out = append(out, Violation{
					Rule: RuleDurability, TxID: hi.txID, Seq: hi.seq,
					Msg: fmt.Sprintf("LSN order disagrees with serialization order on log %d: LSN %d committed at version %d but LSN %d at version %d",
						logVar, lo.lsn, lo.ver, hi.lsn, hi.ver),
				})
			}
		}
		// GSN order must agree with lane LSN order: a multi-lane store
		// draws each commit's GSN after reserving every touched lane's
		// LSN, so within one lane ascending LSN ⇒ strictly ascending GSN
		// (records without a GSN — single-lane logs — are exempt).
		var prevG *walAppend
		for _, a := range sorted {
			if a.gsn == 0 {
				continue
			}
			if prevG != nil && a.gsn <= prevG.gsn {
				out = append(out, Violation{
					Rule: RuleDurability, TxID: a.txID, Seq: a.seq,
					Msg: fmt.Sprintf("GSN order disagrees with lane LSN order on log %d: LSN %d carries GSN %d but LSN %d carries GSN %d",
						logVar, prevG.lsn, prevG.gsn, a.lsn, a.gsn),
				})
			}
			prevG = a
		}
		var maxLSN uint64
		for lsn := range byLSN {
			if lsn > maxLSN {
				maxLSN = lsn
			}
		}
		prevWM := uint64(0)
		for _, d := range p.walDurables[logVar] {
			if d.watermark < prevWM {
				out = append(out, Violation{
					Rule: RuleDurability, Seq: d.seq,
					Msg: fmt.Sprintf("durable watermark of log %d retreated from %d to %d", logVar, prevWM, d.watermark),
				})
			}
			prevWM = d.watermark
			if d.watermark > maxLSN {
				out = append(out, Violation{
					Rule: RuleDurability, Seq: d.seq,
					Msg: fmt.Sprintf("log %d acknowledged LSN %d durable but only %d records were ever appended by committed transactions",
						logVar, d.watermark, maxLSN),
				})
				continue
			}
			if a, ok := byLSN[d.watermark]; !ok {
				out = append(out, Violation{
					Rule: RuleDurability, Seq: d.seq,
					Msg: fmt.Sprintf("log %d acknowledged watermark %d, which no committed transaction appended", logVar, d.watermark),
				})
			} else if d.seq < a.seq {
				out = append(out, Violation{
					Rule: RuleDurability, TxID: a.txID, Seq: d.seq,
					Msg: fmt.Sprintf("log %d acknowledged LSN %d durable before the appending transaction's commit flushed it", logVar, d.watermark),
				})
			}
		}
	}
	// GSNs are per-commit, across lanes: every append of one transaction
	// carries the same GSN, and no two transactions share one.
	gsnOf := make(map[uint64]uint64)   // txID -> gsn
	txOfGSN := make(map[uint64]uint64) // gsn -> txID
	for logVar, apps := range p.walAppends {
		for _, a := range apps {
			if a.gsn == 0 {
				continue
			}
			if g, ok := gsnOf[a.txID]; ok && g != a.gsn {
				out = append(out, Violation{
					Rule: RuleDurability, TxID: a.txID, Seq: a.seq,
					Msg: fmt.Sprintf("transaction %d appended records with two GSNs (%d and %d on log %d) — one commit, one GSN",
						a.txID, g, a.gsn, logVar),
				})
				continue
			}
			gsnOf[a.txID] = a.gsn
			if other, ok := txOfGSN[a.gsn]; ok && other != a.txID {
				out = append(out, Violation{
					Rule: RuleDurability, TxID: a.txID, Seq: a.seq,
					Msg: fmt.Sprintf("GSN %d issued to two committed transactions (tx %d and tx %d)",
						a.gsn, other, a.txID),
				})
				continue
			}
			txOfGSN[a.gsn] = a.txID
		}
	}
	return out
}

// RecoveredPrefix checks a recovered state against the pre-crash history
// it was recovered from: recoveredLastLSN is what recovery reports as the
// highest LSN its state covers (wal.Recovery.LastLSN / kv's
// RecoveryInfo.LastLSN). The axiom has two halves:
//
//   - completeness: every record acknowledged durable in the history
//     (any EvWALDurable watermark) is present after replay;
//   - prefix-ness: the recovered state is a prefix of the serialization
//     order — it does not extend past the appended history, and every
//     LSN up to recoveredLastLSN was appended (no holes).
//
// The history must contain a single log's WAL events (the usual case:
// one store per runtime); baseLSN is the LSN the log started at in this
// history (0 for a log created fresh).
func RecoveredPrefix(events []stm.Event, baseLSN, recoveredLastLSN uint64) []Violation {
	var out []Violation
	acked := uint64(0)
	appended := make(map[uint64]bool)
	maxLSN := baseLSN
	for _, ev := range events {
		switch ev.Kind {
		case stm.EvWALAppend:
			appended[ev.Aux] = true
			if ev.Aux > maxLSN {
				maxLSN = ev.Aux
			}
		case stm.EvWALDurable:
			if ev.Aux > acked {
				acked = ev.Aux
			}
		}
	}
	if recoveredLastLSN < acked {
		out = append(out, Violation{
			Rule: RuleDurability,
			Msg: fmt.Sprintf("recovery lost acknowledged records: recovered through LSN %d but LSN %d was acked durable",
				recoveredLastLSN, acked),
		})
	}
	if recoveredLastLSN > maxLSN {
		out = append(out, Violation{
			Rule: RuleDurability,
			Msg: fmt.Sprintf("recovered state (through LSN %d) extends past the appended history (through LSN %d) — not a prefix",
				recoveredLastLSN, maxLSN),
		})
	}
	for lsn := baseLSN + 1; lsn <= recoveredLastLSN; lsn++ {
		if !appended[lsn] {
			out = append(out, Violation{
				Rule: RuleDurability,
				Msg:  fmt.Sprintf("recovered state covers LSN %d, which no committed transaction appended — not a prefix of the serialization order", lsn),
			})
		}
	}
	return out
}

// RecoveredLane names one WAL lane's recovery cut for
// RecoveredPrefixLanes: LogVar is the lane's log lock variable in the
// events, BaseLSN the LSN the lane started at in this history (0 for a
// lane created fresh) and LastLSN the highest LSN the recovered state
// covers on that lane.
type RecoveredLane struct {
	LogVar  uint64
	BaseLSN uint64
	LastLSN uint64
}

// RecoveredPrefixLanes is RecoveredPrefix for a sharded store: the
// history holds several lanes' WAL events, distinguished by log lock
// variable, and the recovered state names a cut per lane. Three axioms:
//
//   - per lane, the single-log prefix axioms hold (nothing acked lost,
//     no extension past the appended history, no holes — lanes recover
//     by tail truncation, never by hole-punching);
//   - cross-shard commits (several EvWALAppend sharing a TxID and a
//     GSN) are atomic across the cuts: all of a commit's records are
//     inside their lanes' cuts, or all are outside. A half-recovered
//     batch is exactly the state the multi-lock atomic deferral plus
//     presumed-abort truncation exist to rule out.
func RecoveredPrefixLanes(events []stm.Event, lanes []RecoveredLane) []Violation {
	var out []Violation
	byVar := make(map[uint64]*RecoveredLane, len(lanes))
	for i := range lanes {
		byVar[lanes[i].LogVar] = &lanes[i]
	}
	type appendRec struct {
		lane *RecoveredLane
		lsn  uint64
	}
	acked := make(map[uint64]uint64)             // logVar -> max watermark
	appended := make(map[uint64]map[uint64]bool) // logVar -> LSN set
	maxLSN := make(map[uint64]uint64)
	commits := make(map[uint64][]appendRec) // txID -> its lane records
	for _, ev := range events {
		switch ev.Kind {
		case stm.EvWALAppend:
			lane, ok := byVar[ev.Var]
			if !ok {
				out = append(out, Violation{
					Rule: RuleDurability, TxID: ev.TxID,
					Msg: fmt.Sprintf("append to log %d, which no recovered lane claims", ev.Var),
				})
				continue
			}
			if appended[ev.Var] == nil {
				appended[ev.Var] = make(map[uint64]bool)
				maxLSN[ev.Var] = lane.BaseLSN
			}
			appended[ev.Var][ev.Aux] = true
			if ev.Aux > maxLSN[ev.Var] {
				maxLSN[ev.Var] = ev.Aux
			}
			commits[ev.TxID] = append(commits[ev.TxID], appendRec{lane: lane, lsn: ev.Aux})
		case stm.EvWALDurable:
			if ev.Aux > acked[ev.Var] {
				acked[ev.Var] = ev.Aux
			}
		}
	}
	for i := range lanes {
		lane := &lanes[i]
		if lane.LastLSN < acked[lane.LogVar] {
			out = append(out, Violation{
				Rule: RuleDurability,
				Msg: fmt.Sprintf("lane %d lost acknowledged records: recovered through LSN %d but LSN %d was acked durable",
					lane.LogVar, lane.LastLSN, acked[lane.LogVar]),
			})
		}
		hi := maxLSN[lane.LogVar]
		if hi == 0 {
			hi = lane.BaseLSN
		}
		if lane.LastLSN > hi {
			out = append(out, Violation{
				Rule: RuleDurability,
				Msg: fmt.Sprintf("lane %d recovered through LSN %d, past its appended history (through LSN %d) — not a prefix",
					lane.LogVar, lane.LastLSN, hi),
			})
		}
		for lsn := lane.BaseLSN + 1; lsn <= lane.LastLSN; lsn++ {
			if !appended[lane.LogVar][lsn] {
				out = append(out, Violation{
					Rule: RuleDurability,
					Msg: fmt.Sprintf("lane %d recovered LSN %d, which no committed transaction appended — not a prefix of the lane's serialization order",
						lane.LogVar, lsn),
				})
			}
		}
	}
	for txID, recs := range commits {
		if len(recs) < 2 {
			continue
		}
		in := 0
		for _, r := range recs {
			if r.lsn <= r.lane.LastLSN {
				in++
			}
		}
		if in != 0 && in != len(recs) {
			out = append(out, Violation{
				Rule: RuleDurability, TxID: txID,
				Msg: fmt.Sprintf("cross-shard commit %d recovered on %d of its %d lanes — batch atomicity broken",
					txID, in, len(recs)),
			})
		}
	}
	return out
}

// AckedPrefixLanes is the offline-verify entry point shared by the
// kvserver and kvreplica -verify modes: given, per lane, the highest
// LSN some client was durably acked and the highest LSN the process
// under test actually holds (recovery's LastLSN, or a replica's applied
// cursor), it synthesizes the minimal per-lane history both sides can
// attest to and runs RecoveredPrefixLanes over it.
//
// The synthesized history records one append per LSN up to
// max(acked, held) — contiguity holds by construction, each lane
// assigns LSNs sequentially — and publishes the durable watermark
// through the acked LSN. TxIDs are unique per append: this history
// cannot attest which records formed cross-shard batches, so batch
// atomicity is covered by in-process crash tests, not here.
func AckedPrefixLanes(acked, held []uint64) []Violation {
	if len(acked) != len(held) {
		return []Violation{{
			Rule: RuleDurability,
			Msg: fmt.Sprintf("ack vector names %d lanes, state under test has %d",
				len(acked), len(held)),
		}}
	}
	var events []stm.Event
	lanes := make([]RecoveredLane, len(held))
	txID := uint64(0)
	for lane := range held {
		lanes[lane] = RecoveredLane{LogVar: uint64(lane), LastLSN: held[lane]}
		maxAppended := held[lane]
		if acked[lane] > maxAppended {
			maxAppended = acked[lane]
		}
		for lsn := uint64(1); lsn <= maxAppended; lsn++ {
			txID++
			events = append(events, stm.Event{Kind: stm.EvWALAppend, TxID: txID, Var: uint64(lane), Aux: lsn})
		}
		events = append(events, stm.Event{Kind: stm.EvWALDurable, Var: uint64(lane), Aux: acked[lane]})
	}
	return RecoveredPrefixLanes(events, lanes)
}

// ParseAckfile reads a loadgen ack record: either one bare decimal (the
// unsharded legacy format, meaning lane 0) or one "lane lsn" pair per
// line, returning the max durably-acked LSN per lane. Both kvserver
// -verify (against recovery) and kvreplica -verify (against the applied
// cursors) feed the result to AckedPrefixLanes.
func ParseAckfile(content string, lanes int) ([]uint64, error) {
	acked := make([]uint64, lanes)
	for _, line := range strings.Split(strings.TrimSpace(content), "\n") {
		fields := strings.Fields(line)
		switch len(fields) {
		case 0:
			continue
		case 1:
			lsn, err := strconv.ParseUint(fields[0], 10, 64)
			if err != nil {
				return nil, err
			}
			if lsn > acked[0] {
				acked[0] = lsn
			}
		case 2:
			lane, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, err
			}
			if lane < 0 || lane >= lanes {
				return nil, fmt.Errorf("ack for lane %d of a %d-lane store", lane, lanes)
			}
			lsn, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, err
			}
			if lsn > acked[lane] {
				acked[lane] = lsn
			}
		default:
			return nil, fmt.Errorf("bad ackfile line %q", line)
		}
	}
	return acked, nil
}
