package check

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"deferstm/internal/history"
	"deferstm/internal/kv"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

const logVar = 99

func app(tx, lsn, ver uint64) stm.Event {
	return stm.Event{Kind: stm.EvWALAppend, TxID: tx, Owner: stm.OwnerID(tx), Var: logVar, Aux: lsn, Ver: ver}
}

func ack(watermark uint64) stm.Event {
	return stm.Event{Kind: stm.EvWALDurable, Var: logVar, Aux: watermark}
}

func wantViolation(t *testing.T, vs []Violation, substr string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == RuleDurability && strings.Contains(v.Msg, substr) {
			return
		}
	}
	t.Fatalf("no durability violation containing %q in %v", substr, vs)
}

func TestDurabilityCleanHistory(t *testing.T) {
	r := History([]stm.Event{
		app(1, 1, 10),
		app(2, 2, 20),
		ack(1),
		app(3, 3, 30),
		ack(3),
	})
	if !r.OK() {
		t.Fatalf("clean history flagged: %v", r.Violations)
	}
	if r.WALAppends != 3 || r.WALAcks != 2 {
		t.Fatalf("counted %d appends, %d acks", r.WALAppends, r.WALAcks)
	}
}

func TestDurabilityDuplicateLSN(t *testing.T) {
	r := History([]stm.Event{app(1, 1, 10), app(2, 1, 20)})
	wantViolation(t, r.Violations, "appended by two committed transactions")
}

func TestDurabilityLSNOrderVsSerialization(t *testing.T) {
	// LSN 2 committed at an OLDER version than LSN 1: the log order
	// contradicts the serialization order.
	r := History([]stm.Event{app(1, 1, 20), app(2, 2, 10)})
	wantViolation(t, r.Violations, "disagrees with serialization order")
}

func TestDurabilityWatermarkRetreat(t *testing.T) {
	r := History([]stm.Event{app(1, 1, 10), app(2, 2, 20), ack(2), ack(1)})
	wantViolation(t, r.Violations, "retreated")
}

func TestDurabilityAckBeyondAppended(t *testing.T) {
	r := History([]stm.Event{app(1, 1, 10), ack(2)})
	wantViolation(t, r.Violations, "ever appended")
}

func TestDurabilityAckBeforeAppendFlushed(t *testing.T) {
	r := History([]stm.Event{app(1, 1, 10), ack(2), app(2, 2, 20)})
	wantViolation(t, r.Violations, "before the appending transaction")
}

func TestRecoveredPrefix(t *testing.T) {
	hist := []stm.Event{app(1, 1, 10), app(2, 2, 20), app(3, 3, 30), ack(2)}
	if vs := RecoveredPrefix(hist, 0, 2); len(vs) != 0 {
		t.Fatalf("recovering exactly the acked prefix flagged: %v", vs)
	}
	if vs := RecoveredPrefix(hist, 0, 3); len(vs) != 0 {
		t.Fatalf("recovering beyond the ack but within appends flagged: %v", vs)
	}
	vs := RecoveredPrefix(hist, 0, 1)
	wantViolation(t, vs, "lost acknowledged records")
	vs = RecoveredPrefix(hist, 0, 4)
	wantViolation(t, vs, "not a prefix")
	// A hole: LSN 2 missing from the appended history.
	vs = RecoveredPrefix([]stm.Event{app(1, 1, 10), app(3, 3, 30)}, 0, 3)
	wantViolation(t, vs, "no committed transaction appended")
}

// appg is app on an explicit lane var, carrying a GSN in Aux2.
func appg(lane uint64, tx, lsn, ver, gsn uint64) stm.Event {
	return stm.Event{Kind: stm.EvWALAppend, TxID: tx, Owner: stm.OwnerID(tx), Var: lane, Aux: lsn, Ver: ver, Aux2: gsn}
}

func ackOn(lane uint64, watermark uint64) stm.Event {
	return stm.Event{Kind: stm.EvWALDurable, Var: lane, Aux: watermark}
}

func TestDurabilityGSNOrder(t *testing.T) {
	// Clean: GSN ascends with LSN on each lane; cross-lane interleaving
	// is free.
	r := History([]stm.Event{
		appg(1, 1, 1, 10, 5),
		appg(2, 2, 1, 20, 6),
		appg(1, 3, 2, 30, 9),
		appg(2, 4, 2, 40, 11),
	})
	if !r.OK() {
		t.Fatalf("clean GSN history flagged: %v", r.Violations)
	}
	// GSN regresses within lane 1.
	r = History([]stm.Event{appg(1, 1, 1, 10, 9), appg(1, 2, 2, 20, 5)})
	wantViolation(t, r.Violations, "GSN order disagrees")
	// One commit, two GSNs.
	r = History([]stm.Event{appg(1, 1, 1, 10, 5), appg(2, 1, 1, 10, 6)})
	wantViolation(t, r.Violations, "one commit, one GSN")
	// One GSN, two commits.
	r = History([]stm.Event{appg(1, 1, 1, 10, 5), appg(2, 2, 1, 20, 5)})
	wantViolation(t, r.Violations, "issued to two committed transactions")
}

func TestRecoveredPrefixLanes(t *testing.T) {
	// Two lanes; tx 3 commits across both with GSN 7. Lane 1 holds LSNs
	// 1-2, lane 2 holds LSN 1 (= tx 3's sibling).
	hist := []stm.Event{
		appg(1, 1, 1, 10, 1),
		appg(1, 3, 2, 30, 7), appg(2, 3, 1, 30, 7),
		ackOn(1, 1),
	}
	lanes := func(l1, l2 uint64) []RecoveredLane {
		return []RecoveredLane{{LogVar: 1, LastLSN: l1}, {LogVar: 2, LastLSN: l2}}
	}
	if vs := RecoveredPrefixLanes(hist, lanes(2, 1)); len(vs) != 0 {
		t.Fatalf("full recovery flagged: %v", vs)
	}
	if vs := RecoveredPrefixLanes(hist, lanes(1, 0)); len(vs) != 0 {
		t.Fatalf("presumed-abort of the whole batch flagged: %v", vs)
	}
	// Half the batch: lane 1 kept tx 3's record, lane 2 lost it.
	wantViolation(t, RecoveredPrefixLanes(hist, lanes(2, 0)), "batch atomicity broken")
	wantViolation(t, RecoveredPrefixLanes(hist, lanes(1, 1)), "batch atomicity broken")
	// Losing an acked record on lane 1.
	wantViolation(t, RecoveredPrefixLanes(hist, lanes(0, 0)), "lost acknowledged records")
	// Extending past a lane's appended history.
	wantViolation(t, RecoveredPrefixLanes(hist, lanes(2, 2)), "past its appended history")
	// A hole in a lane (LSN 2 of lane 1 never appended).
	holey := []stm.Event{appg(1, 1, 1, 10, 1), appg(1, 2, 3, 30, 3)}
	wantViolation(t, RecoveredPrefixLanes(holey, lanes(3, 0)), "no committed transaction appended")
	// An append to a lane the recovery does not claim.
	wantViolation(t, RecoveredPrefixLanes([]stm.Event{appg(9, 1, 1, 10, 1)}, lanes(0, 0)), "no recovered lane claims")
}

// TestShardedKVHistoryDurability drives a concurrent cross-shard kv
// workload on a 4-lane store with the recorder attached: the full
// checker must accept the history (GSN order and uniqueness included),
// and a clean-shutdown recovery must satisfy the per-lane prefix and
// batch-atomicity axioms.
func TestShardedKVHistoryDurability(t *testing.T) {
	rec := history.New()
	rt := stm.New(stm.Config{Recorder: rec})
	fs := simio.NewFS(simio.Latency{})
	s, _, err := kv.Open(rt, wal.NewSimBackend(fs), kv.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	laneVars := make([]uint64, 0, 4)
	for _, log := range s.Logs() {
		laneVars = append(laneVars, log.Lock().VarID())
	}
	const goroutines = 4
	const perG = 15
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Two keys per update: frequently a cross-shard batch.
				tok, err := s.Update(func(tx *stm.Tx, b *kv.Batch) error {
					b.Put(fmt.Sprintf("g%d-%d", g, i%3), fmt.Sprintf("v%d", i))
					b.Put(fmt.Sprintf("x%d-%d", i%5, g), fmt.Sprintf("w%d", i))
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				s.WaitDurable(tok)
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	events := rec.Events()
	r := History(events)
	if !r.OK() {
		t.Fatalf("sharded live history violates properties:\n%s", r)
	}
	crossLane := make(map[uint64]map[uint64]bool) // txID -> lanes touched
	for _, ev := range events {
		if ev.Kind == stm.EvWALAppend {
			if ev.Aux2 == 0 {
				t.Fatal("multi-lane store appended a record with no GSN")
			}
			if crossLane[ev.TxID] == nil {
				crossLane[ev.TxID] = make(map[uint64]bool)
			}
			crossLane[ev.TxID][ev.Var] = true
		}
	}
	multi := 0
	for _, ls := range crossLane {
		if len(ls) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no cross-shard commit in the history — the test is vacuous")
	}

	_, info, err := kv.Open(stm.NewDefault(), wal.NewSimBackend(fs), kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 4 {
		t.Fatalf("recovered %d shards, want 4", info.Shards)
	}
	lanes := make([]RecoveredLane, 4)
	for i, lr := range info.Lanes {
		lanes[i] = RecoveredLane{LogVar: laneVars[i], LastLSN: lr.LastLSN}
	}
	if vs := RecoveredPrefixLanes(events, lanes); len(vs) != 0 {
		t.Fatalf("sharded recovery violates the durability axioms: %v", vs)
	}
}

// TestKVHistoryDurability drives a real concurrent kv workload with the
// recorder attached and feeds the history through the full checker,
// including the durability axioms; then recovers the store and checks
// the recovered state is an acked-covering prefix.
func TestKVHistoryDurability(t *testing.T) {
	rec := history.New()
	rt := stm.New(stm.Config{Recorder: rec})
	fs := simio.NewFS(simio.Latency{})
	s, _, err := kv.Open(rt, wal.NewSimBackend(fs), kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	const perG = 15
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn, err := s.Update(func(tx *stm.Tx, b *kv.Batch) error {
					b.Put(fmt.Sprintf("g%d-%d", g, i%3), fmt.Sprintf("v%d", i))
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				s.WaitDurable(lsn)
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	events := rec.Events()
	r := History(events)
	if !r.OK() {
		t.Fatalf("live history violates properties:\n%s", r)
	}
	if r.WALAppends != goroutines*perG {
		t.Fatalf("history has %d WAL appends, want %d", r.WALAppends, goroutines*perG)
	}
	if r.WALAcks == 0 {
		t.Fatal("history has no durability acks")
	}

	_, info, err := kv.Open(stm.NewDefault(), wal.NewSimBackend(fs), kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := RecoveredPrefix(events, 0, info.LastLSN); len(vs) != 0 {
		t.Fatalf("recovered state violates the durability axiom: %v", vs)
	}
}
