package check

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"deferstm/internal/history"
	"deferstm/internal/kv"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

const logVar = 99

func app(tx, lsn, ver uint64) stm.Event {
	return stm.Event{Kind: stm.EvWALAppend, TxID: tx, Owner: stm.OwnerID(tx), Var: logVar, Aux: lsn, Ver: ver}
}

func ack(watermark uint64) stm.Event {
	return stm.Event{Kind: stm.EvWALDurable, Var: logVar, Aux: watermark}
}

func wantViolation(t *testing.T, vs []Violation, substr string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == RuleDurability && strings.Contains(v.Msg, substr) {
			return
		}
	}
	t.Fatalf("no durability violation containing %q in %v", substr, vs)
}

func TestDurabilityCleanHistory(t *testing.T) {
	r := History([]stm.Event{
		app(1, 1, 10),
		app(2, 2, 20),
		ack(1),
		app(3, 3, 30),
		ack(3),
	})
	if !r.OK() {
		t.Fatalf("clean history flagged: %v", r.Violations)
	}
	if r.WALAppends != 3 || r.WALAcks != 2 {
		t.Fatalf("counted %d appends, %d acks", r.WALAppends, r.WALAcks)
	}
}

func TestDurabilityDuplicateLSN(t *testing.T) {
	r := History([]stm.Event{app(1, 1, 10), app(2, 1, 20)})
	wantViolation(t, r.Violations, "appended by two committed transactions")
}

func TestDurabilityLSNOrderVsSerialization(t *testing.T) {
	// LSN 2 committed at an OLDER version than LSN 1: the log order
	// contradicts the serialization order.
	r := History([]stm.Event{app(1, 1, 20), app(2, 2, 10)})
	wantViolation(t, r.Violations, "disagrees with serialization order")
}

func TestDurabilityWatermarkRetreat(t *testing.T) {
	r := History([]stm.Event{app(1, 1, 10), app(2, 2, 20), ack(2), ack(1)})
	wantViolation(t, r.Violations, "retreated")
}

func TestDurabilityAckBeyondAppended(t *testing.T) {
	r := History([]stm.Event{app(1, 1, 10), ack(2)})
	wantViolation(t, r.Violations, "ever appended")
}

func TestDurabilityAckBeforeAppendFlushed(t *testing.T) {
	r := History([]stm.Event{app(1, 1, 10), ack(2), app(2, 2, 20)})
	wantViolation(t, r.Violations, "before the appending transaction")
}

func TestRecoveredPrefix(t *testing.T) {
	hist := []stm.Event{app(1, 1, 10), app(2, 2, 20), app(3, 3, 30), ack(2)}
	if vs := RecoveredPrefix(hist, 0, 2); len(vs) != 0 {
		t.Fatalf("recovering exactly the acked prefix flagged: %v", vs)
	}
	if vs := RecoveredPrefix(hist, 0, 3); len(vs) != 0 {
		t.Fatalf("recovering beyond the ack but within appends flagged: %v", vs)
	}
	vs := RecoveredPrefix(hist, 0, 1)
	wantViolation(t, vs, "lost acknowledged records")
	vs = RecoveredPrefix(hist, 0, 4)
	wantViolation(t, vs, "not a prefix")
	// A hole: LSN 2 missing from the appended history.
	vs = RecoveredPrefix([]stm.Event{app(1, 1, 10), app(3, 3, 30)}, 0, 3)
	wantViolation(t, vs, "no committed transaction appended")
}

// TestKVHistoryDurability drives a real concurrent kv workload with the
// recorder attached and feeds the history through the full checker,
// including the durability axioms; then recovers the store and checks
// the recovered state is an acked-covering prefix.
func TestKVHistoryDurability(t *testing.T) {
	rec := history.New()
	rt := stm.New(stm.Config{Recorder: rec})
	fs := simio.NewFS(simio.Latency{})
	s, _, err := kv.Open(rt, wal.NewSimBackend(fs), kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	const perG = 15
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn, err := s.Update(func(tx *stm.Tx, b *kv.Batch) error {
					b.Put(fmt.Sprintf("g%d-%d", g, i%3), fmt.Sprintf("v%d", i))
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				s.WaitDurable(lsn)
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	events := rec.Events()
	r := History(events)
	if !r.OK() {
		t.Fatalf("live history violates properties:\n%s", r)
	}
	if r.WALAppends != goroutines*perG {
		t.Fatalf("history has %d WAL appends, want %d", r.WALAppends, goroutines*perG)
	}
	if r.WALAcks == 0 {
		t.Fatal("history has no durability acks")
	}

	_, info, err := kv.Open(stm.NewDefault(), wal.NewSimBackend(fs), kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := RecoveredPrefix(events, 0, info.LastLSN); len(vs) != 0 {
		t.Fatalf("recovered state violates the durability axiom: %v", vs)
	}
}
