package check

import "fmt"

// RuleRetryWake is the watcher-based-retry property (see
// internal/stm/watch.go): a blocked Retry registers on every var of its
// read set (EvWatchRegister, one per var, carrying the version it
// observed there) and resumes exactly once (EvWake, carrying the global
// clock at resume time and an AuxWake* cause). The checker verifies:
//
//   - ordering: every wake follows at least one registration of the
//     same park session, and each session wakes at most once;
//   - attributable wakeups: a session woken from park by a commit
//     (AuxWakeCommit) must have a recorded write to some watched var
//     with a version no newer than the wake clock — wakes only
//     originate from commits that wrote a watched var. The write may
//     be *older* than the registered version: a committer wakes its
//     watchers after publishing, and a waiter that registered inside
//     that window receives a stale (harmless — it revalidates and
//     re-parks) broadcast. Immediate and cancelled wakes need no
//     writer;
//   - no lost wakeups: a session that registered and never woke, even
//     though some watched var was overwritten strictly after the
//     version it registered at, is a waiter sleeping through its
//     wakeup. (A session with no qualifying write may legitimately
//     still be parked when the history ends; tests must drain waiters
//     before collecting the log.)
const RuleRetryWake = "retry-wakeup"

type watchReg struct {
	varID uint64
	ver   uint64 // version the aborted attempt observed (unlocked word)
	seq   uint64
}

type wakeRec struct {
	ver   uint64 // global clock at resume
	cause uint64 // stm.AuxWake*
	seq   uint64
}

// Mirrors of the stm.AuxWake* constants (kept literal so hand-written
// histories in tests read naturally).
const (
	auxWakeCommit    = 0
	auxWakeImmediate = 1
	auxWakeCancel    = 2
)

func checkRetryWake(p *parsed) []Violation {
	var out []Violation
	for txID, wakes := range p.wakes {
		regs := p.watchRegs[txID]
		if len(regs) == 0 {
			out = append(out, Violation{
				Rule: RuleRetryWake, TxID: txID, Seq: wakes[0].seq,
				Msg: "wake recorded for a session with no watcher registration",
			})
			continue
		}
		if len(wakes) > 1 {
			out = append(out, Violation{
				Rule: RuleRetryWake, TxID: txID, Seq: wakes[1].seq,
				Msg: fmt.Sprintf("session woke %d times; a park session resumes exactly once", len(wakes)),
			})
		}
		w := wakes[0]
		for _, r := range regs {
			if r.seq > w.seq {
				out = append(out, Violation{
					Rule: RuleRetryWake, TxID: txID, Seq: r.seq,
					Msg: fmt.Sprintf("watcher registration on var %d after the session's wake", r.varID),
				})
			}
		}
		if w.cause != auxWakeCommit {
			continue // immediate re-check and cancellation need no writer
		}
		justified := false
		for _, r := range regs {
			if _, ok := p.writeIn(r.varID, 0, w.ver, true); ok {
				justified = true
				break
			}
		}
		if !justified {
			out = append(out, Violation{
				Rule: RuleRetryWake, TxID: txID, Seq: w.seq,
				Msg: fmt.Sprintf("woken from park at clock %d but no watched var was ever written — wake attributable to no commit", w.ver),
			})
		}
	}
	// Lost wakeups: registered, never woke, yet a watched var was
	// overwritten past the registered version.
	for txID, regs := range p.watchRegs {
		if len(p.wakes[txID]) != 0 {
			continue
		}
		for _, r := range regs {
			if w, ok := p.writeIn(r.varID, r.ver, ^uint64(0), true); ok {
				out = append(out, Violation{
					Rule: RuleRetryWake, TxID: txID, Seq: r.seq,
					Msg: fmt.Sprintf("lost wakeup: session registered on var %d at version %d, var was overwritten at version %d, but the session never woke", r.varID, r.ver, w),
				})
				break
			}
		}
	}
	return out
}
