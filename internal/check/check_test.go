package check

import (
	"strings"
	"testing"

	"deferstm/internal/stm"
)

// ev builds events tersely for hand-written histories.
func ev(kind stm.EventKind, txID uint64, owner stm.OwnerID, varID, ver, aux uint64) stm.Event {
	return stm.Event{Kind: kind, TxID: txID, Owner: owner, Var: varID, Ver: ver, Aux: aux}
}

func wantRule(t *testing.T, r *Report, rule string) {
	t.Helper()
	if r.OK() {
		t.Fatalf("checker accepted a known-bad history; want %s violation", rule)
	}
	for _, v := range r.Violations {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("no %s violation; got: %s", rule, r)
}

// A straightforwardly correct history: two sequential writers and a
// consistent read-only transaction. The checker must accept it.
func TestGoodHistoryAccepted(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvRead, 1, 1, 10, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvBegin, 2, 2, 0, 1, 0),
		ev(stm.EvRead, 2, 2, 10, 1, 0),
		ev(stm.EvWrite, 2, 2, 10, 2, 0),
		ev(stm.EvCommit, 2, 2, 0, 2, 0),
		ev(stm.EvBegin, 3, 3, 0, 2, 0),
		ev(stm.EvRead, 3, 3, 10, 2, 0),
		ev(stm.EvCommit, 3, 3, 0, 0, 0), // read-only
	}
	r := History(h)
	if !r.OK() {
		t.Fatalf("good history rejected: %s", r)
	}
	if r.Commits != 3 || r.Writes != 2 || r.Reads != 3 {
		t.Fatalf("bad counts: %+v", r)
	}
}

// Known-bad history 1: a lost update. T1 and T2 both read x at version
// 0 and both commit writes to x (versions 1 and 2) — the commit order
// is not serializable (T2's read should have seen version 1).
func TestRejectsNonSerializableCommitOrder(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvRead, 1, 1, 10, 0, 0),
		ev(stm.EvBegin, 2, 2, 0, 0, 0),
		ev(stm.EvRead, 2, 2, 10, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvWrite, 2, 2, 10, 2, 0),
		ev(stm.EvCommit, 2, 2, 0, 2, 0),
	}
	wantRule(t, History(h), RuleSerializability)
}

// A shared commit version is only legal when the co-timestamped writers
// have disjoint write sets: two writers publishing the SAME var at the
// same version is a lost update no serial order can explain.
func TestRejectsSharedVersionOverlappingWrites(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvBegin, 2, 2, 0, 0, 0),
		ev(stm.EvWrite, 2, 2, 10, 1, 0),
		ev(stm.EvCommit, 2, 2, 0, 1, 0),
	}
	wantRule(t, History(h), RuleSerializability)
}

// Disjoint write sets at a shared commit version are exactly what the
// GV4 "pass on failure" clock produces (the CAS loser adopts the
// winner's timestamp while both hold their commit locks) and must be
// accepted.
func TestAcceptsSharedVersionDisjointWrites(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvBegin, 2, 2, 0, 0, 0),
		ev(stm.EvWrite, 2, 2, 11, 1, 0),
		ev(stm.EvCommit, 2, 2, 0, 1, 0),
	}
	if r := History(h); !r.OK() {
		t.Fatalf("disjoint shared-version commit rejected: %s", r)
	}
}

// Disjoint co-timestamped writers whose reads order them against each
// other both ways: T2 read T3's var old (T2 before T3) and T3 read
// T2's var old (T3 before T2) — a write skew inside one timestamp that
// no serial order explains. The per-writer reads-latest rule cannot see
// it (the conflicting writes are not older than either commit version),
// so the version-group cycle check must.
func TestRejectsSharedVersionReadCycle(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvWrite, 1, 1, 11, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvBegin, 2, 2, 0, 1, 0),
		ev(stm.EvRead, 2, 2, 11, 1, 0), // reads T3's var pre-T3
		ev(stm.EvWrite, 2, 2, 10, 2, 0),
		ev(stm.EvCommit, 2, 2, 0, 2, 0),
		ev(stm.EvBegin, 3, 3, 0, 1, 0),
		ev(stm.EvRead, 3, 3, 10, 1, 0), // reads T2's var pre-T2
		ev(stm.EvWrite, 3, 3, 11, 2, 0),
		ev(stm.EvCommit, 3, 3, 0, 2, 0),
	}
	wantRule(t, History(h), RuleSerializability)
}

// A read-only transaction straddling a shared version: it observed one
// co-timestamped writer's value and the OTHER writer's var at the older
// version. Legal — serialize the unobserved writer after the reader
// (order: T2, T4, T3).
func TestAcceptsReaderStraddlingSharedVersion(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvWrite, 1, 1, 11, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvBegin, 2, 2, 0, 1, 0),
		ev(stm.EvWrite, 2, 2, 10, 2, 0),
		ev(stm.EvCommit, 2, 2, 0, 2, 0),
		ev(stm.EvBegin, 3, 3, 0, 1, 0),
		ev(stm.EvWrite, 3, 3, 11, 2, 0),
		ev(stm.EvCommit, 3, 3, 0, 2, 0),
		ev(stm.EvBegin, 4, 4, 0, 2, 0),
		ev(stm.EvRead, 4, 4, 10, 2, 0), // T2's write: observed
		ev(stm.EvRead, 4, 4, 11, 1, 0), // T3's var, still old: fine
		ev(stm.EvCommit, 4, 4, 0, 0, 0),
	}
	if r := History(h); !r.OK() {
		t.Fatalf("reader straddling a shared version rejected: %s", r)
	}
}

// The same reader is torn if the old-version var belongs to the SAME
// writer it observed at the shared version: it saw part of that
// writer's commit and missed the rest.
func TestRejectsReaderTornAcrossOneWriter(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvWrite, 1, 1, 11, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvBegin, 2, 2, 0, 1, 0),
		ev(stm.EvWrite, 2, 2, 10, 2, 0),
		ev(stm.EvWrite, 2, 2, 11, 2, 0),
		ev(stm.EvCommit, 2, 2, 0, 2, 0),
		ev(stm.EvBegin, 4, 4, 0, 2, 0),
		ev(stm.EvRead, 4, 4, 10, 2, 0), // T2's write: observed
		ev(stm.EvRead, 4, 4, 11, 1, 0), // T2 overwrote this too: torn
		ev(stm.EvCommit, 4, 4, 0, 0, 0),
	}
	wantRule(t, History(h), RuleSerializability)
}

// Known-bad history 2: an opacity violation by an aborted reader. The
// attempt read x before W1's commit and y after W2's commit — a
// snapshot that never existed — and then aborted. TL2 must never let a
// transaction observe such state, even transiently.
func TestRejectsOpacityViolationByAbortedReader(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0), // W1: x@1
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvBegin, 2, 2, 0, 1, 0),
		ev(stm.EvWrite, 2, 2, 11, 2, 0), // W2: y@2
		ev(stm.EvCommit, 2, 2, 0, 2, 0),
		ev(stm.EvBegin, 3, 3, 0, 0, 0),
		ev(stm.EvRead, 3, 3, 10, 0, 0), // read x before W1
		ev(stm.EvRead, 3, 3, 11, 2, 0), // read y after W2: inconsistent
		ev(stm.EvAbort, 3, 3, 0, 0, stm.AbortCauseConflict),
	}
	wantRule(t, History(h), RuleOpacity)
}

// The same aborted reader with a consistent snapshot must be accepted:
// aborting is fine, observing an impossible state is not.
func TestAcceptsConsistentAbortedReader(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvBegin, 3, 3, 0, 1, 0),
		ev(stm.EvRead, 3, 3, 10, 1, 0),
		ev(stm.EvRead, 3, 3, 11, 0, 0),
		ev(stm.EvAbort, 3, 3, 0, 0, stm.AbortCauseConflict),
	}
	if r := History(h); !r.OK() {
		t.Fatalf("consistent aborted reader rejected: %s", r)
	}
}

// Known-bad history 3: a deferral-atomicity violation. Owner 7 commits
// a transaction that acquired deferral lock var 5 (at commit version 1)
// for deferred op 1. Before the λ completes and releases the lock,
// owner 9 commits a transaction that read the lock variable at version
// 1 — it observed the deferrable object mid-deferral and committed
// anyway instead of retrying.
func TestRejectsDeferralAtomicityViolation(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 7, 0, 0, 0),
		ev(stm.EvWrite, 1, 7, 5, 1, 0), // lock owner-var := 7
		ev(stm.EvLockAcquire, 1, 7, 5, 1, 1),
		ev(stm.EvDeferEnqueue, 1, 7, 0, 1, 1),
		ev(stm.EvDeferLock, 1, 7, 5, 1, 1),
		ev(stm.EvCommit, 1, 7, 0, 1, 0),
		ev(stm.EvDeferStart, 0, 7, 0, 0, 1),
		// the illegal observer:
		ev(stm.EvBegin, 2, 9, 0, 1, 0),
		ev(stm.EvRead, 2, 9, 5, 1, 0), // sees the lock held by 7
		ev(stm.EvCommit, 2, 9, 0, 0, 0),
		// release and completion:
		ev(stm.EvBegin, 3, 7, 0, 1, 0),
		ev(stm.EvRead, 3, 7, 5, 1, 0),
		ev(stm.EvWrite, 3, 7, 5, 2, 0), // lock owner-var := 0
		ev(stm.EvLockRelease, 3, 7, 5, 2, 0),
		ev(stm.EvCommit, 3, 7, 0, 2, 0),
		ev(stm.EvDeferEnd, 0, 7, 0, 0, 1),
	}
	wantRule(t, History(h), RuleDeferral)
}

// The group-commit join: the observer of the held lock is itself a WAL
// appender on that log (EvWALAppend with the log's lock var). Reading
// the lock owner mid-flush is the leader-election handshake of group
// commit, not an observation of λ-protected state, so the history must
// be accepted — the durability axioms police these transactions instead.
func TestAcceptsGroupCommitJoin(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 7, 0, 0, 0),
		ev(stm.EvWrite, 1, 7, 5, 1, 0), // lock owner-var := 7
		ev(stm.EvLockAcquire, 1, 7, 5, 1, 1),
		ev(stm.EvDeferEnqueue, 1, 7, 0, 1, 1),
		ev(stm.EvDeferLock, 1, 7, 5, 1, 1),
		ev(stm.EvWALAppend, 1, 7, 5, 1, 1), // leader appends LSN 1
		ev(stm.EvCommit, 1, 7, 0, 1, 0),
		ev(stm.EvDeferStart, 0, 7, 0, 0, 1),
		// the follower: observes the lock held, but appended to the log
		ev(stm.EvBegin, 2, 9, 0, 1, 0),
		ev(stm.EvRead, 2, 9, 5, 1, 0),      // sees the lock held by 7
		ev(stm.EvWALAppend, 2, 9, 5, 2, 2), // joins as LSN 2
		ev(stm.EvCommit, 2, 9, 0, 2, 0),
		// release and completion:
		ev(stm.EvBegin, 3, 7, 0, 2, 0),
		ev(stm.EvRead, 3, 7, 5, 1, 0),
		ev(stm.EvWrite, 3, 7, 5, 3, 0), // lock owner-var := 0
		ev(stm.EvLockRelease, 3, 7, 5, 3, 0),
		ev(stm.EvCommit, 3, 7, 0, 3, 0),
		ev(stm.EvDeferEnd, 0, 7, 0, 0, 1),
	}
	if r := History(h); !r.OK() {
		t.Fatalf("group-commit join rejected: %s", r)
	}
}

// The same schedule without the illegal observer is exactly how the
// runtime behaves and must be accepted, including the owner's own
// release transaction reading the held lock.
func TestAcceptsCorrectDeferralSchedule(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 7, 0, 0, 0),
		ev(stm.EvWrite, 1, 7, 5, 1, 0),
		ev(stm.EvLockAcquire, 1, 7, 5, 1, 1),
		ev(stm.EvDeferEnqueue, 1, 7, 0, 1, 1),
		ev(stm.EvDeferLock, 1, 7, 5, 1, 1),
		ev(stm.EvCommit, 1, 7, 0, 1, 0),
		ev(stm.EvDeferStart, 0, 7, 0, 0, 1),
		ev(stm.EvBegin, 3, 7, 0, 1, 0),
		ev(stm.EvRead, 3, 7, 5, 1, 0),
		ev(stm.EvWrite, 3, 7, 5, 2, 0),
		ev(stm.EvLockRelease, 3, 7, 5, 2, 0),
		ev(stm.EvCommit, 3, 7, 0, 2, 0),
		ev(stm.EvDeferEnd, 0, 7, 0, 0, 1),
		// a reader that correctly waited for the release:
		ev(stm.EvBegin, 4, 9, 0, 2, 0),
		ev(stm.EvRead, 4, 9, 5, 2, 0),
		ev(stm.EvCommit, 4, 9, 0, 0, 0),
	}
	if r := History(h); !r.OK() {
		t.Fatalf("correct deferral schedule rejected: %s", r)
	}
}

// A λ that starts before its transaction's commit breaks the deferral
// ordering contract.
func TestRejectsDeferRunBeforeCommit(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 7, 0, 0, 0),
		ev(stm.EvDeferStart, 0, 7, 0, 0, 1), // before the commit!
		ev(stm.EvWrite, 1, 7, 5, 1, 0),
		ev(stm.EvLockAcquire, 1, 7, 5, 1, 1),
		ev(stm.EvDeferEnqueue, 1, 7, 0, 1, 1),
		ev(stm.EvDeferLock, 1, 7, 5, 1, 1),
		ev(stm.EvCommit, 1, 7, 0, 1, 0),
		ev(stm.EvBegin, 3, 7, 0, 1, 0),
		ev(stm.EvWrite, 3, 7, 5, 2, 0),
		ev(stm.EvLockRelease, 3, 7, 5, 2, 0),
		ev(stm.EvCommit, 3, 7, 0, 2, 0),
		ev(stm.EvDeferEnd, 0, 7, 0, 0, 1),
	}
	wantRule(t, History(h), RuleDeferral)
}

// Known-bad history 4: a two-phase-locking violation. After the unit
// begins releasing its deferral locks, the same owner acquires a fresh
// lock before the unit completes — the acquire phase reopened.
func TestRejectsTwoPhaseLockingViolation(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 7, 0, 0, 0),
		ev(stm.EvWrite, 1, 7, 5, 1, 0),
		ev(stm.EvLockAcquire, 1, 7, 5, 1, 1),
		ev(stm.EvDeferEnqueue, 1, 7, 0, 1, 1),
		ev(stm.EvDeferLock, 1, 7, 5, 1, 1),
		ev(stm.EvCommit, 1, 7, 0, 1, 0),
		ev(stm.EvDeferStart, 0, 7, 0, 0, 1),
		// release the deferral lock...
		ev(stm.EvBegin, 2, 7, 0, 1, 0),
		ev(stm.EvWrite, 2, 7, 5, 2, 0),
		ev(stm.EvLockRelease, 2, 7, 5, 2, 0),
		ev(stm.EvCommit, 2, 7, 0, 2, 0),
		// ...then acquire a different lock inside the same unit:
		ev(stm.EvBegin, 3, 7, 0, 2, 0),
		ev(stm.EvWrite, 3, 7, 6, 3, 0),
		ev(stm.EvLockAcquire, 3, 7, 6, 3, 1),
		ev(stm.EvCommit, 3, 7, 0, 3, 0),
		ev(stm.EvDeferEnd, 0, 7, 0, 0, 1),
	}
	wantRule(t, History(h), RuleTwoPhase)
}

// A deferred op recorded as enqueued but never run is a harness bug or
// a runtime bug; either way the history is incomplete and rejected.
func TestRejectsDeferNeverRan(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 7, 0, 0, 0),
		ev(stm.EvWrite, 1, 7, 5, 1, 0),
		ev(stm.EvLockAcquire, 1, 7, 5, 1, 1),
		ev(stm.EvDeferEnqueue, 1, 7, 0, 1, 1),
		ev(stm.EvDeferLock, 1, 7, 5, 1, 1),
		ev(stm.EvCommit, 1, 7, 0, 1, 0),
	}
	wantRule(t, History(h), RuleDeferral)
}

func TestReportFormatting(t *testing.T) {
	r := History([]stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
	})
	if !strings.Contains(r.String(), "all properties hold") {
		t.Fatalf("unexpected report: %s", r)
	}
	bad := History([]stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvRead, 1, 1, 10, 0, 0),
		ev(stm.EvBegin, 2, 2, 0, 0, 0),
		ev(stm.EvRead, 2, 2, 10, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvWrite, 2, 2, 10, 2, 0),
		ev(stm.EvCommit, 2, 2, 0, 2, 0),
	})
	if !strings.Contains(bad.String(), RuleSerializability) {
		t.Fatalf("violation missing from report: %s", bad)
	}
}
