// Package check verifies recorded STM execution histories offline. It
// consumes the event stream produced by stm.Config.Recorder (see
// internal/history) and mechanically checks the four properties the
// runtime — and the atomic-deferral paper built on it — promises:
//
//  1. Final-state serializability: committed transactions, ordered by
//     the version clock, form a serial history. Every read of a
//     committed writer must be of the latest version older than its
//     commit version; read-only transactions must have read one
//     consistent snapshot. Each (var, version) pair has at most one
//     writer; a commit version may be shared by several writers (TL2's
//     GV4 "pass on failure" clock hands the CAS loser the winner's
//     timestamp) only if their write sets are pairwise disjoint and
//     the read-before constraints among them admit a serial order.
//  2. Opacity for aborted transactions: even an attempt that aborts
//     must never have observed an inconsistent snapshot (TL2's
//     incremental validation guarantees this; the checker verifies it).
//  3. Deferral atomicity (the paper's core theorem): no transaction of
//     another owner observes a deferrable object's lock between the
//     owning transaction's commit and the deferred λ's completion, and
//     each λ runs after its commit and before its locks are released.
//  4. Two-phase locking of TxLocks for deferral units: once a unit
//     (deferring transaction plus its λs) has begun releasing its
//     deferral locks, its owner acquires no further lock before the
//     unit completes.
//
// Cross-transaction facts are ordered by version-clock timestamps
// (Event.Ver), never by recorder arrival order, because concurrent
// transactions interleave in the log nondeterministically. Sequence
// numbers are only used within a single owner's emission order, which
// is goroutine-monotonic.
package check

import (
	"fmt"
	"sort"
	"strings"

	"deferstm/internal/stm"
)

// Rule names used in Violations.
const (
	RuleSerializability = "serializability"
	RuleOpacity         = "opacity"
	RuleDeferral        = "deferral-atomicity"
	RuleTwoPhase        = "two-phase-locking"
	// RuleDurability is declared in durability.go; RuleRetryWake in
	// retry.go.
)

// Violation is one property failure found in a history.
type Violation struct {
	Rule string
	TxID uint64
	Seq  uint64 // sequence of the offending event when known
	Msg  string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] tx=%d seq=%d: %s", v.Rule, v.TxID, v.Seq, v.Msg)
}

// Report is the checker's result over one history.
type Report struct {
	Violations []Violation
	Commits    int
	Aborts     int
	Reads      int
	Writes     int
	DeferOps   int
	WALAppends int
	WALAcks    int
	WatchRegs  int
	Wakes      int
}

// OK reports whether no property was violated.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "checked %d commits, %d aborts, %d reads, %d writes, %d deferred ops",
		r.Commits, r.Aborts, r.Reads, r.Writes, r.DeferOps)
	if r.WALAppends > 0 || r.WALAcks > 0 {
		fmt.Fprintf(&b, ", %d WAL appends, %d durability acks", r.WALAppends, r.WALAcks)
	}
	if r.WatchRegs > 0 || r.Wakes > 0 {
		fmt.Fprintf(&b, ", %d watch registrations, %d wakes", r.WatchRegs, r.Wakes)
	}
	b.WriteString(": ")
	if r.OK() {
		b.WriteString("all properties hold")
		return b.String()
	}
	fmt.Fprintf(&b, "%d violations", len(r.Violations))
	for i, v := range r.Violations {
		if i == 20 {
			fmt.Fprintf(&b, "\n  ... %d more", len(r.Violations)-i)
			break
		}
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// History checks all five properties (the four above plus the WAL
// durability axioms of durability.go) over the given events. Events are
// interpreted in slice order; Seq fields are renumbered from 1 so
// hand-written histories need not fill them in.
func History(events []stm.Event) *Report {
	p := parse(events)
	r := &Report{
		Commits:  p.commits,
		Aborts:   p.aborts,
		Reads:    p.reads,
		Writes:   p.writeCount,
		DeferOps: len(p.unitOrder),
	}
	for _, apps := range p.walAppends {
		r.WALAppends += len(apps)
	}
	for _, acks := range p.walDurables {
		r.WALAcks += len(acks)
	}
	for _, regs := range p.watchRegs {
		r.WatchRegs += len(regs)
	}
	for _, wakes := range p.wakes {
		r.Wakes += len(wakes)
	}
	r.Violations = append(r.Violations, checkSerializability(p)...)
	r.Violations = append(r.Violations, checkOpacity(p)...)
	r.Violations = append(r.Violations, checkDeferral(p)...)
	r.Violations = append(r.Violations, checkTwoPhase(p)...)
	r.Violations = append(r.Violations, checkDurability(p)...)
	r.Violations = append(r.Violations, checkRetryWake(p)...)
	r.Violations = append(r.Violations, checkSnapshot(p)...)
	return r
}

type readRec struct {
	varID uint64
	ver   uint64
	seq   uint64
}

type txInfo struct {
	id         uint64
	owner      stm.OwnerID
	reads      []readRec
	nWrites    int
	committed  bool
	commitVer  uint64
	commitSeq  uint64
	serial     bool
	aborted    bool
	abortCause uint64
	abortSeq   uint64
	snapshot   bool   // snapshot-mode attempt (EvBegin/EvCommit Aux)
	beginVer   uint64 // EvBegin.Ver: the pin for snapshot attempts
	beginSeq   uint64
}

type deferUnit struct {
	op       uint64
	txID     uint64
	owner    stm.OwnerID
	lockVars []uint64
	startSeq uint64
	endSeq   uint64
}

type varVer struct{ varID, ver uint64 }

// verWriter is one writer inside a commit-version group: the writing
// transaction (or directWriter) and the vars it wrote at that version.
type verWriter struct {
	id   uint64 // txID, or directWriter
	vars []uint64
}

type parsed struct {
	txs        map[uint64]*txInfo
	order      []*txInfo               // first-seen order
	writes     map[uint64][]uint64     // varID -> ascending commit versions
	writerOf   map[varVer]uint64       // (var, ver) -> writer (^0 = direct write)
	verWriters map[uint64][]*verWriter // commit version -> its writer group
	units      map[uint64]*deferUnit
	unitOrder  []*deferUnit
	lockEvs    []stm.Event // acquire/release events, in sequence order

	walAppends  map[uint64][]walAppend // log lock var -> committed appends
	walDurables map[uint64][]walDurable

	watchRegs map[uint64][]watchReg // retrying txID -> its registrations
	wakes     map[uint64][]wakeRec  // retrying txID -> its wake events

	truncs []truncRec // depth-bound version-chain truncations (snapshot.go)

	commits, aborts, reads, writeCount int
}

const directWriter = ^uint64(0)

func parse(events []stm.Event) *parsed {
	p := &parsed{
		txs:         make(map[uint64]*txInfo),
		writes:      make(map[uint64][]uint64),
		writerOf:    make(map[varVer]uint64),
		verWriters:  make(map[uint64][]*verWriter),
		units:       make(map[uint64]*deferUnit),
		walAppends:  make(map[uint64][]walAppend),
		walDurables: make(map[uint64][]walDurable),
		watchRegs:   make(map[uint64][]watchReg),
		wakes:       make(map[uint64][]wakeRec),
	}
	tx := func(id uint64, owner stm.OwnerID) *txInfo {
		t, ok := p.txs[id]
		if !ok {
			t = &txInfo{id: id, owner: owner}
			p.txs[id] = t
			p.order = append(p.order, t)
		}
		if t.owner == 0 {
			t.owner = owner
		}
		return t
	}
	unit := func(op uint64) *deferUnit {
		u, ok := p.units[op]
		if !ok {
			u = &deferUnit{op: op}
			p.units[op] = u
			p.unitOrder = append(p.unitOrder, u)
		}
		return u
	}
	noteWrite := func(writer uint64, varID, ver, _ uint64) {
		p.writes[varID] = append(p.writes[varID], ver)
		p.writeCount++
		if _, ok := p.writerOf[varVer{varID, ver}]; !ok {
			p.writerOf[varVer{varID, ver}] = writer
		}
		g := p.verWriters[ver]
		for _, w := range g {
			if w.id == writer {
				w.vars = append(w.vars, varID)
				return
			}
		}
		p.verWriters[ver] = append(g, &verWriter{id: writer, vars: []uint64{varID}})
	}

	for i, ev := range events {
		seq := uint64(i + 1)
		switch ev.Kind {
		case stm.EvBegin:
			t := tx(ev.TxID, ev.Owner)
			t.beginVer = ev.Ver
			t.beginSeq = seq
			if ev.Aux == stm.AuxSnapshot {
				t.snapshot = true
			}
		case stm.EvRead:
			t := tx(ev.TxID, ev.Owner)
			t.reads = append(t.reads, readRec{varID: ev.Var, ver: ev.Ver, seq: seq})
			p.reads++
		case stm.EvWrite:
			t := tx(ev.TxID, ev.Owner)
			t.nWrites++
			noteWrite(ev.TxID, ev.Var, ev.Ver, seq)
		case stm.EvDirectWrite:
			noteWrite(directWriter, ev.Var, ev.Ver, seq)
		case stm.EvCommit:
			t := tx(ev.TxID, ev.Owner)
			t.committed = true
			t.commitVer = ev.Ver
			t.commitSeq = seq
			t.serial = ev.Aux == stm.AuxSerial
			if ev.Aux == stm.AuxSnapshot {
				t.snapshot = true
			}
			p.commits++
		case stm.EvAbort:
			t := tx(ev.TxID, ev.Owner)
			t.aborted = true
			t.abortCause = ev.Aux
			t.abortSeq = seq
			p.aborts++
		case stm.EvLockAcquire, stm.EvLockRelease:
			ev.Seq = seq
			p.lockEvs = append(p.lockEvs, ev)
		case stm.EvDeferEnqueue:
			u := unit(ev.Aux)
			u.txID = ev.TxID
			u.owner = ev.Owner
		case stm.EvDeferLock:
			u := unit(ev.Aux)
			u.lockVars = append(u.lockVars, ev.Var)
		case stm.EvDeferStart:
			unit(ev.Aux).startSeq = seq
		case stm.EvDeferEnd:
			unit(ev.Aux).endSeq = seq
		case stm.EvWALAppend:
			// Flushed only on commit, so every append seen here took
			// effect; Ver is the appending transaction's commit version.
			p.walAppends[ev.Var] = append(p.walAppends[ev.Var],
				walAppend{lsn: ev.Aux, gsn: ev.Aux2, ver: ev.Ver, seq: seq, txID: ev.TxID, owner: ev.Owner})
		case stm.EvWALDurable:
			p.walDurables[ev.Var] = append(p.walDurables[ev.Var],
				walDurable{watermark: ev.Aux, seq: seq})
		case stm.EvWatchRegister:
			p.watchRegs[ev.TxID] = append(p.watchRegs[ev.TxID],
				watchReg{varID: ev.Var, ver: ev.Ver, seq: seq})
		case stm.EvWake:
			p.wakes[ev.TxID] = append(p.wakes[ev.TxID],
				wakeRec{ver: ev.Ver, cause: ev.Aux, seq: seq})
		case stm.EvSnapTruncate:
			p.truncs = append(p.truncs,
				truncRec{varID: ev.Var, horizon: ev.Ver, dropped: ev.Aux, seq: seq})
		}
	}
	for _, vs := range p.writes {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
	return p
}

// writeIn reports whether some recorded write to varID has a version in
// (lo, hi) — exclusive — or (lo, hi] when inclusive is set.
func (p *parsed) writeIn(varID, lo, hi uint64, inclusive bool) (uint64, bool) {
	vs := p.writes[varID]
	i := sort.Search(len(vs), func(i int) bool { return vs[i] > lo })
	if i == len(vs) {
		return 0, false
	}
	if vs[i] < hi || (inclusive && vs[i] == hi) {
		return vs[i], true
	}
	return 0, false
}

// maxReadVer returns the newest version in a read set.
func maxReadVer(reads []readRec) uint64 {
	var t uint64
	for _, r := range reads {
		if r.ver > t {
			t = r.ver
		}
	}
	return t
}

// snapshotViolations verifies that a read set could have been taken as
// one atomic snapshot: there must exist a clock instant t at which every
// read value was still current. Such a t exists iff no read has an
// intervening write between its version and the newest read version.
//
// A write at exactly the newest read version needs writer identity:
// with GV4 timestamp sharing several disjoint writers may commit at
// `top`, and a co-timestamped writer whose commit this transaction
// never observed can simply be serialized after it. Only a write at
// `top` by a writer the transaction DID observe at `top` (it read one
// of that writer's values) proves the snapshot torn.
func (p *parsed) snapshotViolations(t *txInfo, rule, what string) []Violation {
	var out []Violation
	top := maxReadVer(t.reads)
	var obs map[uint64]bool // writers observed at version top
	for _, r := range t.reads {
		if r.ver != top || top == 0 {
			continue
		}
		if w, ok := p.writerOf[varVer{r.varID, top}]; ok {
			if obs == nil {
				obs = make(map[uint64]bool, 4)
			}
			obs[w] = true
		}
	}
	for _, r := range t.reads {
		w, ok := p.writeIn(r.varID, r.ver, top, true)
		if !ok {
			continue
		}
		if w == top {
			u, known := p.writerOf[varVer{r.varID, top}]
			if !known || !obs[u] {
				continue
			}
		}
		out = append(out, Violation{
			Rule: rule, TxID: t.id, Seq: r.seq,
			Msg: fmt.Sprintf("%s: read var %d at version %d alongside a read at version %d, but var %d was overwritten at version %d — no consistent snapshot exists",
				what, r.varID, r.ver, top, r.varID, w),
		})
	}
	return out
}

// checkVersionGroups validates commit-timestamp sharing (the TL2 GV4
// "pass on failure" clock): a version may carry several writers only if
// (a) no var was written twice at that version — write sets pairwise
// disjoint — and (b) the read-before constraints among the writers
// admit a serial order. If T read one of U's written vars at an older
// version, T must serialize before U; if T read it at exactly the
// shared version, U must serialize before T; a cycle means no serial
// order of the co-timestamped writers exists.
func checkVersionGroups(p *parsed) []Violation {
	var out []Violation
	for ver, group := range p.verWriters {
		if len(group) < 2 {
			continue
		}
		seen := make(map[uint64]uint64, 8) // varID -> writer
		for _, w := range group {
			for _, v := range w.vars {
				if prev, ok := seen[v]; ok {
					out = append(out, Violation{
						Rule: RuleSerializability, TxID: w.id,
						Msg: fmt.Sprintf("commit version %d: var %d written by tx %d and tx %d — writers sharing a timestamp must have disjoint write sets", ver, v, prev, w.id),
					})
					continue
				}
				seen[v] = w.id
			}
		}
		member := make(map[uint64]bool, len(group))
		for _, w := range group {
			member[w.id] = true
		}
		edges := make(map[uint64][]uint64) // id -> writers it must precede
		for _, w := range group {
			if w.id == directWriter {
				continue // direct writes have no reads
			}
			t := p.txs[w.id]
			if t == nil {
				continue
			}
			for _, r := range t.reads {
				u, ok := p.writerOf[varVer{r.varID, ver}]
				if !ok || u == w.id || !member[u] {
					continue
				}
				if r.ver < ver {
					edges[w.id] = append(edges[w.id], u) // w read u's var old: w before u
				} else if r.ver == ver {
					edges[u] = append(edges[u], w.id) // w observed u's write: u before w
				}
			}
		}
		if cyc := findCycle(edges); cyc != 0 {
			out = append(out, Violation{
				Rule: RuleSerializability, TxID: cyc,
				Msg: fmt.Sprintf("commit version %d: read-before constraints among its %d co-timestamped writers form a cycle (through tx %d) — no serial order exists", ver, len(group), cyc),
			})
		}
	}
	return out
}

// findCycle returns a node on some cycle of the directed graph, or 0.
func findCycle(edges map[uint64][]uint64) uint64 {
	const (
		white = iota
		grey
		black
	)
	color := make(map[uint64]int, len(edges))
	var visit func(n uint64) uint64
	visit = func(n uint64) uint64 {
		color[n] = grey
		for _, m := range edges[n] {
			switch color[m] {
			case grey:
				return m
			case white:
				if c := visit(m); c != 0 {
					return c
				}
			}
		}
		color[n] = black
		return 0
	}
	for n := range edges {
		if color[n] == white {
			if c := visit(n); c != 0 {
				return c
			}
		}
	}
	return 0
}

func checkSerializability(p *parsed) []Violation {
	out := checkVersionGroups(p)
	for _, t := range p.order {
		if !t.committed || t.serial {
			// Serial transactions run alone with direct reads (none
			// recorded); their writes participate via writerOf/writes.
			continue
		}
		if t.nWrites > 0 {
			// Writer serialized at its commit version: every read must
			// still be the latest committed version at that point.
			for _, r := range t.reads {
				if w, ok := p.writeIn(r.varID, r.ver, t.commitVer, false); ok {
					out = append(out, Violation{
						Rule: RuleSerializability, TxID: t.id, Seq: r.seq,
						Msg: fmt.Sprintf("committed at version %d but read var %d at version %d, which version %d had already overwritten — commit order is not serializable",
							t.commitVer, r.varID, r.ver, w),
					})
				}
			}
		} else {
			out = append(out, p.snapshotViolations(t, RuleSerializability, "read-only commit")...)
		}
	}
	return out
}

func checkOpacity(p *parsed) []Violation {
	var out []Violation
	for _, t := range p.order {
		if !t.aborted || len(t.reads) == 0 {
			continue
		}
		out = append(out, p.snapshotViolations(t, RuleOpacity, "aborted attempt")...)
	}
	return out
}

func checkDeferral(p *parsed) []Violation {
	var out []Violation
	// Index deferral-lock acquisitions by (lock var, acquire version):
	// a read of that exact pair observed the lock mid-deferral (held,
	// value = the deferring owner).
	acq := make(map[varVer]*deferUnit)
	for _, u := range p.unitOrder {
		t := p.txs[u.txID]
		if t == nil || !t.committed {
			out = append(out, Violation{
				Rule: RuleDeferral, TxID: u.txID,
				Msg: fmt.Sprintf("deferred op %d enqueued by a transaction with no recorded commit", u.op),
			})
			continue
		}
		if u.startSeq == 0 {
			out = append(out, Violation{
				Rule: RuleDeferral, TxID: u.txID,
				Msg: fmt.Sprintf("deferred op %d never ran after its transaction committed", u.op),
			})
		} else {
			if u.startSeq < t.commitSeq {
				out = append(out, Violation{
					Rule: RuleDeferral, TxID: u.txID, Seq: u.startSeq,
					Msg: fmt.Sprintf("deferred op %d started before its transaction committed", u.op),
				})
			}
			if u.endSeq != 0 && u.endSeq < u.startSeq {
				out = append(out, Violation{
					Rule: RuleDeferral, TxID: u.txID, Seq: u.endSeq,
					Msg: fmt.Sprintf("deferred op %d ended before it started", u.op),
				})
			}
		}
		for _, v := range u.lockVars {
			acq[varVer{v, t.commitVer}] = u
		}
	}
	if len(acq) == 0 {
		return out
	}
	// Group-commit join exemption: a transaction that appended to a WAL
	// may read that log's lock owner while it is held — that is the
	// leader-election handshake, not an observation of λ-protected state.
	// Its coordination with the in-flight flush is checked by the
	// durability axioms instead (LSN order, watermark monotonicity).
	appenders := make(map[varVer]bool)
	for logVar, apps := range p.walAppends {
		for _, a := range apps {
			appenders[varVer{logVar, a.txID}] = true
		}
	}
	for _, t := range p.order {
		if !t.committed {
			continue // aborted observers retried correctly
		}
		for _, r := range t.reads {
			u, ok := acq[varVer{r.varID, r.ver}]
			if !ok || t.id == u.txID || t.owner == u.owner {
				continue
			}
			if appenders[varVer{r.varID, t.id}] {
				continue
			}
			out = append(out, Violation{
				Rule: RuleDeferral, TxID: t.id, Seq: r.seq,
				Msg: fmt.Sprintf("owner %d committed after observing deferral lock (var %d) held by owner %d between its commit (version %d) and λ %d's completion — deferral atomicity violated",
					t.owner, r.varID, u.owner, r.ver, u.op),
			})
		}
	}
	return out
}

func checkTwoPhase(p *parsed) []Violation {
	var out []Violation
	// Group units by deferring transaction: the 2PL entity is the
	// transaction plus all of its deferred operations.
	type span struct {
		txID     uint64
		owner    stm.OwnerID
		startSeq uint64 // commit of the deferring transaction
		endSeq   uint64 // last λ completion
		lockVars map[uint64]bool
	}
	spans := make(map[uint64]*span)
	for _, u := range p.unitOrder {
		t := p.txs[u.txID]
		if t == nil || !t.committed || u.endSeq == 0 {
			continue
		}
		s, ok := spans[u.txID]
		if !ok {
			s = &span{txID: u.txID, owner: u.owner, startSeq: t.commitSeq, lockVars: make(map[uint64]bool)}
			spans[u.txID] = s
		}
		if u.endSeq > s.endSeq {
			s.endSeq = u.endSeq
		}
		for _, v := range u.lockVars {
			s.lockVars[v] = true
		}
	}
	for _, s := range spans {
		// First release of one of the unit's own deferral locks marks
		// the start of the shrink phase; any acquisition by the same
		// owner after that point breaks two-phase locking.
		firstRel := uint64(0)
		for _, ev := range p.lockEvs {
			if ev.Owner != s.owner || ev.Seq < s.startSeq || ev.Seq > s.endSeq {
				continue
			}
			if ev.Kind == stm.EvLockRelease && s.lockVars[ev.Var] {
				if firstRel == 0 || ev.Seq < firstRel {
					firstRel = ev.Seq
				}
			}
		}
		if firstRel == 0 {
			continue
		}
		for _, ev := range p.lockEvs {
			if ev.Kind == stm.EvLockAcquire && ev.Owner == s.owner &&
				ev.Seq > firstRel && ev.Seq <= s.endSeq {
				out = append(out, Violation{
					Rule: RuleTwoPhase, TxID: s.txID, Seq: ev.Seq,
					Msg: fmt.Sprintf("owner %d acquired lock var %d after beginning to release deferral locks (first release at seq %d) — acquire phase reopened before the unit completed",
						s.owner, ev.Var, firstRel),
				})
			}
		}
	}
	return out
}
