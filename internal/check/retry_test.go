package check

import (
	"testing"

	"deferstm/internal/stm"
)

// parkSession emits the event shape the runtime records for a park: an
// attempt that reads, aborts with Retry, registers on its read set.
func parkSession(txID uint64, owner stm.OwnerID, varID, ver uint64) []stm.Event {
	return []stm.Event{
		ev(stm.EvBegin, txID, owner, 0, 0, 0),
		ev(stm.EvRead, txID, owner, varID, ver, 0),
		ev(stm.EvAbort, txID, owner, 0, 0, stm.AbortCauseRetry),
		ev(stm.EvWatchRegister, txID, owner, varID, ver, 0),
	}
}

// commitWrite emits a committed transaction writing varID at ver.
func commitWrite(txID uint64, owner stm.OwnerID, varID, ver uint64) []stm.Event {
	return []stm.Event{
		ev(stm.EvBegin, txID, owner, 0, 0, 0),
		ev(stm.EvWrite, txID, owner, varID, ver, 0),
		ev(stm.EvCommit, txID, owner, 0, ver, 0),
	}
}

func cat(groups ...[]stm.Event) []stm.Event {
	var h []stm.Event
	for _, g := range groups {
		h = append(h, g...)
	}
	return h
}

// The canonical good history: park on x@0, a commit writes x@1, the
// session wakes with the commit cause.
func TestRetryWakeAccepted(t *testing.T) {
	h := cat(
		parkSession(1, 1, 10, 0),
		commitWrite(2, 2, 10, 1),
		[]stm.Event{ev(stm.EvWake, 1, 1, 0, 1, stm.AuxWakeCommit)},
	)
	r := History(h)
	if !r.OK() {
		t.Fatalf("good park/wake history rejected: %s", r)
	}
	if r.WatchRegs != 1 || r.Wakes != 1 {
		t.Fatalf("regs=%d wakes=%d, want 1/1", r.WatchRegs, r.Wakes)
	}
}

// An immediate wake (validation failed, never parked) needs no writer.
func TestRetryWakeImmediateAccepted(t *testing.T) {
	h := cat(
		parkSession(1, 1, 10, 0),
		[]stm.Event{ev(stm.EvWake, 1, 1, 0, 0, stm.AuxWakeImmediate)},
	)
	if r := History(h); !r.OK() {
		t.Fatalf("immediate wake rejected: %s", r)
	}
}

// A cancellation wake needs no writer either.
func TestRetryWakeCancelAccepted(t *testing.T) {
	h := cat(
		parkSession(1, 1, 10, 0),
		[]stm.Event{ev(stm.EvWake, 1, 1, 0, 0, stm.AuxWakeCancel)},
	)
	if r := History(h); !r.OK() {
		t.Fatalf("cancel wake rejected: %s", r)
	}
}

// A session still parked when the history ends is fine as long as no
// watched var moved past its registered version.
func TestRetryStillParkedAccepted(t *testing.T) {
	h := cat(
		commitWrite(1, 1, 10, 1),
		parkSession(2, 2, 10, 1), // parked on the current version; no wake yet
	)
	if r := History(h); !r.OK() {
		t.Fatalf("legitimately-parked session rejected: %s", r)
	}
}

// A stale wake is legal: the committer that produced the registered
// version broadcast after the waiter registered. The write (x@1)
// precedes the registration version-wise, yet the wake is attributable.
func TestRetryStaleWakeAccepted(t *testing.T) {
	h := cat(
		commitWrite(1, 1, 10, 1),
		parkSession(2, 2, 10, 1),
		[]stm.Event{ev(stm.EvWake, 2, 2, 0, 1, stm.AuxWakeCommit)},
	)
	if r := History(h); !r.OK() {
		t.Fatalf("benign stale wake rejected: %s", r)
	}
}

// Reject: a lost wakeup. The session registered on x@0, x was
// overwritten at 1, and the session never woke.
func TestRetryRejectsLostWakeup(t *testing.T) {
	h := cat(
		parkSession(1, 1, 10, 0),
		commitWrite(2, 2, 10, 1),
		// no EvWake for tx 1
	)
	wantRule(t, History(h), RuleRetryWake)
}

// Reject: a wake for a session that never registered anywhere.
func TestRetryRejectsWakeWithoutRegistration(t *testing.T) {
	h := cat(
		commitWrite(1, 1, 10, 1),
		[]stm.Event{
			ev(stm.EvBegin, 2, 2, 0, 0, 0),
			ev(stm.EvRead, 2, 2, 10, 1, 0),
			ev(stm.EvAbort, 2, 2, 0, 0, stm.AbortCauseRetry),
			ev(stm.EvWake, 2, 2, 0, 1, stm.AuxWakeCommit),
		},
	)
	wantRule(t, History(h), RuleRetryWake)
}

// Reject: one park session waking twice.
func TestRetryRejectsDoubleWake(t *testing.T) {
	h := cat(
		parkSession(1, 1, 10, 0),
		commitWrite(2, 2, 10, 1),
		[]stm.Event{
			ev(stm.EvWake, 1, 1, 0, 1, stm.AuxWakeCommit),
			ev(stm.EvWake, 1, 1, 0, 1, stm.AuxWakeCommit),
		},
	)
	wantRule(t, History(h), RuleRetryWake)
}

// Reject: a registration recorded after the session's wake.
func TestRetryRejectsRegistrationAfterWake(t *testing.T) {
	h := cat(
		parkSession(1, 1, 10, 0),
		commitWrite(2, 2, 10, 1),
		[]stm.Event{
			ev(stm.EvWake, 1, 1, 0, 1, stm.AuxWakeCommit),
			ev(stm.EvWatchRegister, 1, 1, 11, 0, 0),
		},
	)
	wantRule(t, History(h), RuleRetryWake)
}

// Reject: a commit-cause wake with no watched var ever written — the
// wake is attributable to no commit at all.
func TestRetryRejectsUnattributableWake(t *testing.T) {
	h := cat(
		parkSession(1, 1, 10, 0),
		commitWrite(2, 2, 99, 1), // writes an unrelated var only
		[]stm.Event{ev(stm.EvWake, 1, 1, 0, 1, stm.AuxWakeCommit)},
	)
	wantRule(t, History(h), RuleRetryWake)
}
