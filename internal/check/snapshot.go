package check

import "fmt"

// RuleSnapshot names the snapshot-consistency axioms (snapshot-mode
// transactions; see stm/snapshot.go).
const RuleSnapshot = "snapshot-consistency"

// truncRec is one EvSnapTruncate: a publisher's depth bound discarded
// chain nodes some registered snapshot could still have needed.
type truncRec struct {
	varID   uint64
	horizon uint64 // the truncation horizon the publisher used
	dropped uint64
	seq     uint64
}

// checkSnapshot verifies the two snapshot-mode axioms:
//
//  1. Pinned cut. A committed snapshot transaction resolves every read
//     at its pin sv (its EvBegin.Ver): each read's version must be ≤ sv,
//     and no write to that var may exist in (ver, sv] — otherwise the
//     read missed a value that was committed at the pin. The interval is
//     closed on the right even under GV4 timestamp sharing: a writer
//     whose commit version is ≤ sv finished drawing its timestamp, while
//     holding its commit locks, before the pin was read, and the
//     snapshot read spins through lock bits — so the write was
//     necessarily visible.
//
//  2. Truncation never ahead of a reader. An EvSnapTruncate with horizon
//     h asserts that when it was emitted, no registered snapshot was
//     pinned below h. A committed snapshot transaction whose recorded
//     window [begin, commit] spans the truncation was registered
//     throughout (registration precedes EvBegin, deregistration follows
//     EvCommit), so its pin must satisfy pin ≥ h. Aborted snapshot
//     attempts are exempt: deregistration precedes their EvAbort, so a
//     truncation interleaving between the two is exactly the intended
//     overflow-fallback path, not a violation.
//
// Both use recorder sequence order only within a single transaction's
// emission (begin/commit brackets), never to order cross-transaction
// facts — versions do that, per the package rules.
func checkSnapshot(p *parsed) []Violation {
	var out []Violation
	for _, t := range p.order {
		if !t.snapshot || !t.committed {
			continue
		}
		sv := t.beginVer
		for _, r := range t.reads {
			if r.ver > sv {
				out = append(out, Violation{
					Rule: RuleSnapshot, TxID: t.id, Seq: r.seq,
					Msg: fmt.Sprintf("snapshot pinned at version %d read var %d at version %d — newer than its pin",
						sv, r.varID, r.ver),
				})
				continue
			}
			if w, ok := p.writeIn(r.varID, r.ver, sv, true); ok {
				out = append(out, Violation{
					Rule: RuleSnapshot, TxID: t.id, Seq: r.seq,
					Msg: fmt.Sprintf("snapshot pinned at version %d read var %d at version %d, but var %d was overwritten at version %d ≤ pin — read is not the value committed at the pin",
						sv, r.varID, r.ver, r.varID, w),
				})
			}
		}
	}
	for _, tr := range p.truncs {
		for _, t := range p.order {
			if !t.snapshot || !t.committed {
				continue
			}
			if t.beginSeq < tr.seq && tr.seq < t.commitSeq && t.beginVer < tr.horizon {
				out = append(out, Violation{
					Rule: RuleSnapshot, TxID: t.id, Seq: tr.seq,
					Msg: fmt.Sprintf("chain truncation of var %d used horizon %d while snapshot tx %d (pinned at %d) was registered — truncation ran ahead of the oldest reader",
						tr.varID, tr.horizon, t.id, t.beginVer),
				})
			}
		}
	}
	return out
}
