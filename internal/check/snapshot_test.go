package check

import (
	"testing"

	"deferstm/internal/stm"
)

// A well-formed snapshot history: a snapshot transaction pinned at
// version 2 reads one var at its pre-pin version and one at exactly the
// pin, overlapping a later writer it correctly does not observe. The
// checker must accept it — including the serializability rule, which
// sees the snapshot as a read-only commit.
func TestSnapshotGoodHistoryAccepted(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvWrite, 1, 1, 11, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvBegin, 2, 2, 0, 1, 0),
		ev(stm.EvWrite, 2, 2, 11, 2, 0),
		ev(stm.EvCommit, 2, 2, 0, 2, 0),
		// Snapshot pinned at 2; a concurrent writer commits var 10 at 3.
		ev(stm.EvBegin, 3, 3, 0, 2, stm.AuxSnapshot),
		ev(stm.EvBegin, 4, 4, 0, 2, 0),
		ev(stm.EvWrite, 4, 4, 10, 3, 0),
		ev(stm.EvCommit, 4, 4, 0, 3, 0),
		ev(stm.EvRead, 3, 3, 10, 1, 0), // chain-resolved: pre-overwrite value
		ev(stm.EvRead, 3, 3, 11, 2, 0), // current value, committed at the pin
		ev(stm.EvCommit, 3, 3, 0, 0, stm.AuxSnapshot),
	}
	r := History(h)
	if !r.OK() {
		t.Fatalf("good snapshot history rejected: %s", r)
	}
}

// Torn snapshot: the transaction pinned at version 3 reads var 10 at
// version 1, but var 10 was overwritten at version 2 ≤ pin — the read
// is not the value committed at the pin.
func TestSnapshotRejectsTornRead(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvBegin, 2, 2, 0, 1, 0),
		ev(stm.EvWrite, 2, 2, 10, 2, 0),
		ev(stm.EvCommit, 2, 2, 0, 2, 0),
		ev(stm.EvBegin, 3, 3, 0, 3, stm.AuxSnapshot),
		ev(stm.EvRead, 3, 3, 10, 1, 0), // stale: version 2 exists ≤ pin
		ev(stm.EvCommit, 3, 3, 0, 0, stm.AuxSnapshot),
	}
	wantRule(t, History(h), RuleSnapshot)
}

// A write at exactly the pin is inside the cut (GV4 writers finish
// drawing their timestamp before the pin is read), so missing it is a
// violation too.
func TestSnapshotRejectsMissedWriteAtPin(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 1, 0),
		ev(stm.EvCommit, 1, 1, 0, 1, 0),
		ev(stm.EvBegin, 2, 2, 0, 1, 0),
		ev(stm.EvWrite, 2, 2, 10, 2, 0),
		ev(stm.EvCommit, 2, 2, 0, 2, 0),
		ev(stm.EvBegin, 3, 3, 0, 2, stm.AuxSnapshot),
		ev(stm.EvRead, 3, 3, 10, 1, 0), // missed the write at the pin itself
		ev(stm.EvCommit, 3, 3, 0, 0, stm.AuxSnapshot),
	}
	wantRule(t, History(h), RuleSnapshot)
}

// A snapshot read newer than its own pin is impossible in a correct
// execution (the resolver only returns versions ≤ sv).
func TestSnapshotRejectsReadNewerThanPin(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 5, 0),
		ev(stm.EvCommit, 1, 1, 0, 5, 0),
		ev(stm.EvBegin, 2, 2, 0, 3, stm.AuxSnapshot),
		ev(stm.EvRead, 2, 2, 10, 5, 0),
		ev(stm.EvCommit, 2, 2, 0, 0, stm.AuxSnapshot),
	}
	wantRule(t, History(h), RuleSnapshot)
}

// Truncation ahead of a registered reader: a chain truncation uses
// horizon 5 while a committed snapshot pinned at 3 is registered
// (its begin/commit bracket the truncation event).
func TestSnapshotRejectsTruncationAheadOfReader(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 3, 0),
		ev(stm.EvCommit, 1, 1, 0, 3, 0),
		ev(stm.EvBegin, 2, 2, 0, 3, stm.AuxSnapshot),
		ev(stm.EvSnapTruncate, 0, 0, 10, 5, 2), // horizon 5 > pin 3
		ev(stm.EvRead, 2, 2, 10, 3, 0),
		ev(stm.EvCommit, 2, 2, 0, 0, stm.AuxSnapshot),
	}
	wantRule(t, History(h), RuleSnapshot)
}

// The same truncation is legal when its horizon does not pass any
// registered pin, or when the spanning snapshot attempt aborted (the
// intended overflow-fallback path deregisters before EvAbort).
func TestSnapshotAcceptsLegalTruncation(t *testing.T) {
	h := []stm.Event{
		ev(stm.EvBegin, 1, 1, 0, 0, 0),
		ev(stm.EvWrite, 1, 1, 10, 3, 0),
		ev(stm.EvCommit, 1, 1, 0, 3, 0),
		// Horizon 3 ≤ the active pin 3: legal.
		ev(stm.EvBegin, 2, 2, 0, 3, stm.AuxSnapshot),
		ev(stm.EvSnapTruncate, 0, 0, 10, 3, 1),
		ev(stm.EvRead, 2, 2, 10, 3, 0),
		ev(stm.EvCommit, 2, 2, 0, 0, stm.AuxSnapshot),
		// Horizon ahead of an ABORTED snapshot attempt: the overflow
		// fallback, not a violation.
		ev(stm.EvBegin, 3, 3, 0, 3, stm.AuxSnapshot),
		ev(stm.EvSnapTruncate, 0, 0, 10, 9, 4),
		ev(stm.EvAbort, 3, 3, 0, 0, stm.AbortCauseSnapshot),
	}
	r := History(h)
	if !r.OK() {
		t.Fatalf("legal truncation history rejected: %s", r)
	}
}
