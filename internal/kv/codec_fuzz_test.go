package kv

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// The codecs now carry bytes that crossed a network, not just bytes the
// WAL's CRC already vouched for: DecodeOps is the BATCH body parser of
// the wire protocol (internal/server), so every decoder must reject
// arbitrary garbage with an error — never a panic, never a huge
// allocation, never a silent misparse that round-trips differently.

// FuzzDecodeOps: any input either fails to decode or round-trips to the
// exact same bytes (the encoding is canonical — no padding, no
// order freedom — so decode∘encode must be the identity on valid input).
func FuzzDecodeOps(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeOps([]Op{{Put: true, Key: "k", Value: "v"}}))
	f.Add(EncodeOps([]Op{{Key: "gone"}, {Put: true, Key: "", Value: ""}}))
	f.Add(EncodeOps([]Op{
		{Put: true, Key: strings.Repeat("k", 300), Value: strings.Repeat("v", 1000)},
		{Key: "x"},
	}))
	f.Add([]byte{opPut, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		ops, err := DecodeOps(b)
		if err != nil {
			return
		}
		re := EncodeOps(ops)
		if !bytes.Equal(re, b) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", b, re)
		}
	})
}

// FuzzDecodeSnapshot: valid input must re-encode to an equal map (byte
// order differs — map iteration — so compare decoded contents).
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(encodeSnapshot(nil))
	f.Add(encodeSnapshot(map[string]string{"a": "1", "b": "2"}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		kvs, err := decodeSnapshot(b)
		if err != nil {
			return
		}
		again, err := decodeSnapshot(encodeSnapshot(kvs))
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if len(again) != len(kvs) {
			t.Fatalf("round trip changed size: %d != %d", len(again), len(kvs))
		}
		for k, v := range kvs {
			if again[k] != v {
				t.Fatalf("round trip changed %q: %q != %q", k, again[k], v)
			}
		}
	})
}

// TestDecodeOpsCorrupt pins the error behaviour on hand-built damage.
func TestDecodeOpsCorrupt(t *testing.T) {
	valid := EncodeOps([]Op{{Put: true, Key: "key", Value: "value"}})
	cases := map[string][]byte{
		"unknown opcode":       {42},
		"opcode only":          {opPut},
		"truncated key length": {opPut, 3, 0},
		"truncated key bytes":  {opPut, 5, 0, 0, 0, 'k', 'e'},
		"put missing value":    {opPut, 1, 0, 0, 0, 'k'},
		"delete truncated":     {opDelete, 9, 0, 0, 0, 'k'},
		"huge declared length": {opPut, 0xff, 0xff, 0xff, 0xff, 'k'},
		"trailing opcode":      append(append([]byte(nil), valid...), opDelete),
		"valid then truncated": valid[:len(valid)-1],
		"zero opcode":          {0},
	}
	for name, b := range cases {
		if _, err := DecodeOps(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if ops, err := DecodeOps(nil); err != nil || len(ops) != 0 {
		t.Errorf("empty payload: ops=%v err=%v, want none/nil", ops, err)
	}
}

// TestDecodeSnapshotCorrupt: structural damage errors out, and a lying
// count header must not pre-allocate gigabytes before failing.
func TestDecodeSnapshotCorrupt(t *testing.T) {
	valid := encodeSnapshot(map[string]string{"k": "v"})
	cases := map[string][]byte{
		"empty":             nil,
		"short header":      {1, 0},
		"count too large":   {2, 0, 0, 0, 1, 0, 0, 0, 'k', 1, 0, 0, 0, 'v'},
		"trailing bytes":    append(append([]byte(nil), valid...), 'x'),
		"truncated value":   valid[:len(valid)-1],
		"huge count header": {0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 'k'},
	}
	for name, b := range cases {
		if _, err := decodeSnapshot(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// The clamp itself: a 4 GiB-entry claim over an 8-byte body must be
	// rejected quickly. Guard with an allocation measurement so a
	// regression (removing the hint clamp) fails deterministically
	// rather than by OOM on small CI machines.
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr, 0xffffffff)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := decodeSnapshot(hdr); err == nil {
			t.Fatal("huge count decoded")
		}
	})
	if allocs > 64 {
		t.Errorf("huge count header cost %.0f allocs per decode; hint clamp missing?", allocs)
	}
}
