package kv

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

// keyFor probes for a key that routes to the wanted shard (FNV routing
// is deterministic, so a found key stays on that shard forever).
func keyFor(s *Store, shard int, tag string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s-%d", tag, i)
		if s.shardOf(k) == shard {
			return k
		}
	}
}

func TestTokenRoundTrip(t *testing.T) {
	for _, c := range []struct {
		lane int
		lsn  uint64
	}{{0, 0}, {0, 1}, {0, 1 << 40}, {3, 7}, {63, 1<<56 - 1}} {
		tok := PackToken(c.lane, c.lsn)
		if TokenLane(tok) != c.lane || TokenLSN(tok) != c.lsn {
			t.Fatalf("token(%d,%d) → lane %d lsn %d", c.lane, c.lsn, TokenLane(tok), TokenLSN(tok))
		}
		if c.lane == 0 && tok != c.lsn {
			t.Fatalf("lane-0 token %d != plain LSN %d", tok, c.lsn)
		}
	}
}

func TestLaneRecordCodec(t *testing.T) {
	ops := []Op{{Put: true, Key: "a", Value: "1"}, {Key: "b"}}
	pts := []LanePoint{{Lane: 1, LSN: 42}, {Lane: 5, LSN: 7}}
	b := encodeLaneRecord(99, pts, ops)
	gsn, gotPts, gotOps, err := decodeLaneRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if gsn != 99 || len(gotPts) != 2 || gotPts[0] != pts[0] || gotPts[1] != pts[1] {
		t.Fatalf("decoded gsn=%d pts=%v", gsn, gotPts)
	}
	if len(gotOps) != 2 || gotOps[0] != ops[0] || gotOps[1] != ops[1] {
		t.Fatalf("decoded ops %v", gotOps)
	}
	for cut := 1; cut < 10; cut++ {
		if _, _, _, err := decodeLaneRecord(b[:cut]); err == nil {
			t.Fatalf("truncated header at %d bytes decoded", cut)
		}
	}
}

// TestShardedRoundTrip: a 4-lane store routes keys, commits cross-shard
// batches through the multi-lock deferral, acks tokens, and recovers to
// identical contents with the lane count adopted from the manifest.
func TestShardedRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeGroup, ModeSync} {
		t.Run(mode.String(), func(t *testing.T) {
			fs := simio.NewFS(simio.Latency{})
			opts := Options{Mode: mode, Shards: 4}
			s, info := openStore(t, fs, opts)
			if info.Shards != 4 {
				t.Fatalf("opened with %d shards, want 4", info.Shards)
			}
			// Single-shard commits on every lane.
			keys := make([]string, 4)
			for lane := 0; lane < 4; lane++ {
				keys[lane] = keyFor(s, lane, fmt.Sprintf("solo%d", lane))
				tok := put(t, s, keys[lane], fmt.Sprintf("v%d", lane))
				if TokenLane(tok) != lane {
					t.Fatalf("token lane %d, want %d", TokenLane(tok), lane)
				}
				s.WaitDurable(tok)
			}
			// A cross-shard batch touching all four lanes at once.
			tok, err := s.Update(func(tx *stm.Tx, b *Batch) error {
				for lane := 0; lane < 4; lane++ {
					b.Put(keyFor(s, lane, "cross"), "x")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if TokenLane(tok) != 0 {
				t.Fatalf("cross-shard home lane %d, want 0 (lowest touched)", TokenLane(tok))
			}
			s.WaitDurable(tok)
			// Cross-shard read-modify-write sees its own writes.
			if _, err := s.Update(func(tx *stm.Tx, b *Batch) error {
				b.Put(keys[1], "updated")
				if v, ok := b.Get(keys[1]); !ok || v != "updated" {
					t.Errorf("read-own-write: %q %v", v, ok)
				}
				b.Delete(keys[2])
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			before := dump(t, s)
			if _, ok := before[keys[2]]; ok {
				t.Fatal("deleted key still present")
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen with Shards 0: the manifest supplies the count.
			s2, info2 := openStore(t, fs, Options{Mode: mode})
			defer s2.Close()
			if info2.Shards != 4 || s2.Shards() != 4 {
				t.Fatalf("reopen adopted %d shards, want 4", info2.Shards)
			}
			if mode == ModeGroup && info2.MaxGSN == 0 {
				t.Fatal("no GSN recovered from a multi-lane store")
			}
			after := dump(t, s2)
			if len(after) != len(before) {
				t.Fatalf("recovered %d keys, want %d", len(after), len(before))
			}
			for k, v := range before {
				if after[k] != v {
					t.Fatalf("recovered %q=%q, want %q", k, after[k], v)
				}
			}
		})
	}
}

// TestManifestPinsLaneCount: the satellite-1 contract. Reopening with a
// disagreeing -shards fails with an actionable error; 0 adopts.
func TestManifestPinsLaneCount(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	s, _ := openStore(t, fs, Options{Shards: 4})
	put(t, s, "k", "v")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(stm.NewDefault(), wal.NewSimBackend(fs), Options{Shards: 2})
	if err == nil {
		t.Fatal("reopen with -shards 2 of a 4-lane store succeeded")
	}
	for _, want := range []string{"4", "2", "lane"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mismatch error %q does not mention %q", err, want)
		}
	}
	// Matching and adopting both work.
	for _, shards := range []int{4, 0} {
		s2, info := openStore(t, fs, Options{Shards: shards})
		if info.Shards != 4 {
			t.Fatalf("Shards=%d reopened as %d lanes", shards, info.Shards)
		}
		if v, ok := mustGet(t, s2, "k"); !ok || v != "v" {
			t.Fatalf("lost k after reopen: %q %v", v, ok)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestShardCountValidation(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	for _, n := range []int{3, -1, 5, 128} {
		if _, _, err := Open(stm.NewDefault(), wal.NewSimBackend(fs), Options{Shards: n}); err == nil {
			t.Fatalf("Shards=%d accepted", n)
		}
	}
}

// TestLegacyDirAdoption: a pre-manifest directory (root segment files,
// no manifest) opens as a single-lane store and gains a manifest.
func TestLegacyDirAdoption(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	s, _ := openStore(t, fs, Options{})
	put(t, s, "old", "data")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	b := wal.NewSimBackend(fs)
	if err := b.Remove("manifest"); err != nil {
		t.Fatal(err)
	}
	s2, info := openStore(t, fs, Options{})
	if info.Shards != 1 {
		t.Fatalf("legacy dir adopted as %d lanes", info.Shards)
	}
	if v, ok := mustGet(t, s2, "old"); !ok || v != "data" {
		t.Fatalf("legacy data lost: %q %v", v, ok)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifest(b); err != nil {
		t.Fatalf("adoption did not write a manifest: %v", err)
	}
	// But a multi-lane layout without its manifest is corruption.
	fs4 := simio.NewFS(simio.Latency{})
	s4, _ := openStore(t, fs4, Options{Shards: 4})
	put(t, s4, "k", "v")
	if err := s4.Close(); err != nil {
		t.Fatal(err)
	}
	b4 := wal.NewSimBackend(fs4)
	if err := b4.Remove("manifest"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(stm.NewDefault(), wal.NewSimBackend(fs4), Options{}); err == nil {
		t.Fatal("lane files without a manifest opened")
	}
}

// TestCrossShardCrashAtomicity is satellite 3: crash plans kill the
// store between lane flushes of cross-shard batches — after one lane's
// fsync returned and before a sibling's — and recovery must present
// every batch all-or-nothing, never a half.
//
// The workload is all cross-shard (every update touches both of two
// specific lanes plus sometimes a third), so batch atomicity plus
// per-lane prefixes collapse to a single global prefix of the commit
// history; the check is exact. Each update writes unique keys, so "half
// a batch" is directly visible.
func TestCrossShardCrashAtomicity(t *testing.T) {
	const updates = 30
	fired, truncated := 0, 0
	for _, point := range []simio.CrashPoint{simio.CrashPreFsync, simio.CrashPostFsync, simio.CrashMidWrite} {
		for n := uint64(1); n <= 41; n += 4 {
			for seed := uint64(1); seed <= 2; seed++ {
				ok, cut := crossShardCrashScenario(t, point, n, seed, updates)
				if ok {
					fired++
				}
				if cut {
					truncated++
				}
			}
		}
	}
	if fired < 30 {
		t.Fatalf("only %d crash scenarios fired", fired)
	}
	if truncated == 0 {
		t.Fatal("no scenario exercised cross-lane presumed abort — the test is vacuous")
	}
	t.Logf("%d scenarios fired, %d with presumed-abort truncation", fired, truncated)
}

func crossShardCrashScenario(t *testing.T, point simio.CrashPoint, n, seed uint64, updates int) (fired, truncated bool) {
	t.Helper()
	opts := Options{Shards: 4, WAL: wal.Options{SegmentBytes: 512}}
	fs := simio.NewFS(simio.Latency{})
	s, _, err := Open(stm.NewDefault(), wal.NewSimBackend(fs), opts)
	if err != nil {
		t.Fatal(err)
	}

	// Acked batches at the crash instant: every lane watermark is read
	// inside the crash hook, so a batch counts as acked only if its home
	// token was coverable — matching what a client could have observed.
	var ackedTokens atomic.Value // []uint64 watermark per lane
	fs.SetCrashPlan(simio.CrashPlan{Point: point, N: n, OnCrash: func() {
		wm := make([]uint64, 4)
		for i, log := range s.Logs() {
			wm[i] = log.DurableWatermark()
		}
		ackedTokens.Store(wm)
	}})

	type batch struct {
		keys []string
		tok  uint64
	}
	var history []batch
	for i := 0; i < updates; i++ {
		lanes := []int{i % 4, (i + 1) % 4}
		if i%5 == 0 {
			lanes = append(lanes, (i+2)%4)
		}
		var keys []string
		tok, err := s.Update(func(tx *stm.Tx, b *Batch) error {
			keys = keys[:0]
			for _, lane := range lanes {
				k := keyFor(s, lane, fmt.Sprintf("u%d-l%d", i, lane))
				b.Put(k, fmt.Sprintf("v%d", i))
				keys = append(keys, k)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, batch{keys: keys, tok: tok})
		s.WaitDurable(tok)
		if i == updates/2 {
			if _, err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	img := fs.CrashImage()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if img == nil {
		return false, false
	}

	fs2 := simio.FSFromImage(img, simio.Latency{}, seed)
	s2, info, err := Open(stm.NewDefault(), wal.NewSimBackend(fs2), Options{WAL: opts.WAL})
	if err != nil {
		t.Fatalf("%v N=%d seed=%d: recovery failed: %v", point, n, seed, err)
	}
	defer s2.Close()
	if info.Shards != 4 {
		t.Fatalf("%v N=%d seed=%d: recovered %d shards", point, n, seed, info.Shards)
	}
	got := dump(t, s2)

	// All-or-nothing per batch, and the survivor set is a prefix of the
	// commit history (the workload is entirely cross-shard, so per-lane
	// prefixes + batch atomicity = one global prefix).
	recovered := 0
	for i, bt := range history {
		present := 0
		for _, k := range bt.keys {
			if _, ok := got[k]; ok {
				present++
			}
		}
		switch present {
		case len(bt.keys):
			recovered = i + 1
		case 0:
			// fine — but nothing later may be present
			for j := i + 1; j < len(history); j++ {
				for _, k := range history[j].keys {
					if _, ok := got[k]; ok {
						t.Fatalf("%v N=%d seed=%d: batch %d missing but batch %d present (not a prefix)",
							point, n, seed, i, j)
					}
				}
			}
		default:
			t.Fatalf("%v N=%d seed=%d: batch %d recovered %d of %d keys — cross-shard atomicity broken",
				point, n, seed, i, present, len(bt.keys))
		}
		if present == 0 {
			break
		}
	}

	// Nothing a client saw acked may be lost.
	if wm, _ := ackedTokens.Load().([]uint64); wm != nil {
		for i, bt := range history {
			if TokenLSN(bt.tok) <= wm[TokenLane(bt.tok)] && i >= recovered {
				t.Fatalf("%v N=%d seed=%d: batch %d was acked (token lane %d lsn %d ≤ wm %d) but lost",
					point, n, seed, i, TokenLane(bt.tok), TokenLSN(bt.tok), wm[TokenLane(bt.tok)])
			}
		}
	}

	// The store must be writable after presumed-abort truncation.
	tok, err := s2.Update(func(tx *stm.Tx, b *Batch) error {
		for lane := 0; lane < 4; lane++ {
			b.Put(keyFor(s2, lane, "post"), "ok")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%v N=%d seed=%d: post-recovery update: %v", point, n, seed, err)
	}
	s2.WaitDurable(tok)
	return true, info.SkippedRecords > 0
}

// TestCrossLaneCutsCascade exercises the fixed-point directly: cutting
// lane 1's incomplete batch orphans a later batch lane 0 holds complete
// records of, which must then be cut too.
func TestCrossLaneCutsCascade(t *testing.T) {
	rec := func(lsn uint64, pts ...LanePoint) wal.Record {
		return wal.Record{LSN: lsn, Payload: encodeLaneRecord(lsn, pts, []Op{{Put: true, Key: "k", Value: "v"}})}
	}
	// Lane 0: solo(1), batchA(2 ↔ lane1:2-missing), batchB(3 ↔ lane1:1).
	// Lane 1: batchB(1). Batch A is incomplete → cut lane0 at 2, which
	// also drops batchB's lane-0 record (tail) → lane 1 must cut at 1.
	recs := []*wal.Recovery{
		{Records: []wal.Record{
			rec(1, LanePoint{0, 1}),
			rec(2, LanePoint{0, 2}, LanePoint{1, 2}),
			rec(3, LanePoint{0, 3}, LanePoint{1, 1}),
		}},
		{Records: []wal.Record{
			rec(1, LanePoint{0, 3}, LanePoint{1, 1}),
		}},
	}
	cuts, err := crossLaneCuts(recs)
	if err != nil {
		t.Fatal(err)
	}
	if cuts[0] != 2 || cuts[1] != 1 {
		t.Fatalf("cuts = %v, want [2 1]", cuts)
	}
	// A checkpointed sibling counts as present: same layout, but lane 1
	// checkpointed past LSN 2 — no cuts anywhere.
	recs[1].CheckpointLSN = 2
	recs[1].Records = []wal.Record{}
	cuts, err = crossLaneCuts(recs)
	if err != nil {
		t.Fatal(err)
	}
	if cuts[0] != 0 || cuts[1] != 0 {
		t.Fatalf("cuts with checkpoint cover = %v, want [0 0]", cuts)
	}
}
