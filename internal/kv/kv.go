// Package kv is a durable transactional key/value store layered on the
// STM runtime and the group-committing WAL (package wal) — the paper's
// atomic-deferral story applied end to end: a store transaction mutates
// transactional state and appends one WAL record describing its
// mutations, all inside the same transaction; durability (the fsync) is
// the deferred operation, so commits never block on I/O and concurrent
// commits share flushes.
//
// Three durability modes bracket the design space:
//
//   - ModeGroup (default): the WAL append is transactional and the flush
//     is deferred via the log's atomic deferral — group commit.
//   - ModeSync: every update runs as a serial (irrevocable) transaction
//     and fsyncs before returning — the classic irrevocability baseline,
//     exactly one fsync per commit.
//   - ModeNone: no WAL at all; an in-memory upper bound.
//
// Recovery (Open) replays the newest checkpoint plus all intact WAL
// records after it, in LSN order. Because LSNs are assigned inside the
// mutating transactions, LSN order IS the serialization order, and a
// recovered store is always a prefix-consistent image of the committed
// history.
package kv

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

// Mode selects the durability discipline.
type Mode int

const (
	// ModeGroup appends transactionally and defers the fsync through the
	// log's atomic deferral (group commit). The default.
	ModeGroup Mode = iota
	// ModeSync makes each update a serial transaction with its own fsync.
	ModeSync
	// ModeNone disables the WAL entirely.
	ModeNone
)

func (m Mode) String() string {
	switch m {
	case ModeGroup:
		return "group"
	case ModeSync:
		return "sync"
	case ModeNone:
		return "none"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a Store.
type Options struct {
	Mode    Mode
	Buckets int // hash buckets (0 → 1024)
	WAL     wal.Options
}

// RecoveryInfo summarizes what Open replayed.
type RecoveryInfo struct {
	CheckpointLSN uint64 // 0 when no checkpoint existed
	Replayed      int    // WAL records applied after the checkpoint
	LastLSN       uint64 // highest LSN the recovered state covers
	TornBytes     int    // bytes truncated from a torn tail
	Keys          int    // keys present after recovery
}

// Store is a durable transactional key/value store. All methods are safe
// for concurrent use.
type Store struct {
	rt   *stm.Runtime
	mode Mode
	log  *wal.Log // nil in ModeNone
	m    *smap

	closeOnce sync.Once
	closeErr  error
}

// Open recovers (or creates) a store on backend b. b may be nil only in
// ModeNone.
func Open(rt *stm.Runtime, b wal.Backend, opts Options) (*Store, *RecoveryInfo, error) {
	if opts.Buckets <= 0 {
		opts.Buckets = 1024
	}
	s := &Store{rt: rt, mode: opts.Mode, m: newSmap(opts.Buckets)}
	info := &RecoveryInfo{}
	if opts.Mode == ModeNone {
		return s, info, nil
	}
	if b == nil {
		return nil, nil, errors.New("kv: durable mode needs a backend")
	}
	log, rec, err := wal.Open(rt, b, opts.WAL)
	if err != nil {
		return nil, nil, err
	}
	s.log = log
	info.CheckpointLSN = rec.CheckpointLSN
	info.LastLSN = rec.LastLSN
	info.TornBytes = rec.TornBytes

	// Replay: checkpoint image first, then each record's ops, one
	// transaction per record so replay transactions stay small. The store
	// is not shared yet, so these commit without contention.
	if rec.Checkpoint != nil {
		kvs, err := decodeSnapshot(rec.Checkpoint)
		if err != nil {
			return nil, nil, fmt.Errorf("kv: checkpoint: %w", err)
		}
		if err := rt.Atomic(func(tx *stm.Tx) error {
			for k, v := range kvs {
				s.m.put(tx, k, v)
			}
			return nil
		}); err != nil {
			return nil, nil, err
		}
	}
	for _, r := range rec.Records {
		ops, err := DecodeOps(r.Payload)
		if err != nil {
			return nil, nil, fmt.Errorf("kv: record %d: %w", r.LSN, err)
		}
		if err := rt.Atomic(func(tx *stm.Tx) error {
			applyOps(tx, s.m, ops)
			return nil
		}); err != nil {
			return nil, nil, err
		}
		info.Replayed++
	}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		info.Keys = s.m.length(tx)
		return nil
	})
	return s, info, nil
}

func applyOps(tx *stm.Tx, m *smap, ops []Op) {
	for _, op := range ops {
		if op.Put {
			m.put(tx, op.Key, op.Value)
		} else {
			m.delete(tx, op.Key)
		}
	}
}

// Batch accumulates one transaction's mutations: each Put/Delete applies
// to the store immediately (inside the transaction, so the transaction
// reads its own writes) and is recorded for the commit's WAL record.
type Batch struct {
	s   *Store
	tx  *stm.Tx
	ops []Op
}

// Get reads key inside the batch's transaction.
func (b *Batch) Get(key string) (string, bool) { return b.s.m.get(b.tx, key) }

// Put sets key to value.
func (b *Batch) Put(key, value string) {
	b.s.m.put(b.tx, key, value)
	b.ops = append(b.ops, Op{Put: true, Key: key, Value: value})
}

// Delete removes key (a no-op delete is still logged; replay is
// idempotent about it).
func (b *Batch) Delete(key string) {
	b.s.m.delete(b.tx, key)
	b.ops = append(b.ops, Op{Key: key})
}

// Len reports the number of mutations so far.
func (b *Batch) Len() int { return len(b.ops) }

// Update runs fn as one atomic, durable mutation of the store and returns
// the LSN of its WAL record (0 for a read-only fn or in ModeNone). In
// ModeGroup the returned LSN is not yet durable — it becomes durable when
// the deferred group-commit flush covers it; call WaitDurable(lsn) for a
// synchronous guarantee. In ModeSync the record is durable on return.
//
// fn may re-execute (optimistic retry); it must be idempotent apart from
// its Batch mutations, which reset on retry.
func (s *Store) Update(fn func(tx *stm.Tx, b *Batch) error) (uint64, error) {
	var lsn uint64
	run := func(tx *stm.Tx) error {
		lsn = 0
		b := &Batch{s: s, tx: tx}
		if err := fn(tx, b); err != nil {
			return err
		}
		if s.log == nil || len(b.ops) == 0 {
			return nil
		}
		payload := EncodeOps(b.ops)
		if s.mode == ModeSync {
			var err error
			lsn, err = s.log.AppendSync(tx, payload)
			return err
		}
		lsn = s.log.Append(tx, payload)
		return nil
	}
	var err error
	if s.mode == ModeSync {
		err = s.rt.AtomicSerial(func(tx *stm.Tx) error { return run(tx) })
	} else {
		err = s.rt.Atomic(run)
	}
	if err != nil {
		return 0, err
	}
	return lsn, nil
}

// View runs fn as a read-only transaction over the store.
func (s *Store) View(fn func(tx *stm.Tx) error) error {
	return s.rt.Atomic(fn)
}

// Get reads key inside tx (for composing with other transactional state).
func (s *Store) Get(tx *stm.Tx, key string) (string, bool) { return s.m.get(tx, key) }

// Len reports the number of keys inside tx.
func (s *Store) Len(tx *stm.Tx) int { return s.m.length(tx) }

// Range iterates all entries inside tx until fn returns false.
func (s *Store) Range(tx *stm.Tx, fn func(k, v string) bool) { s.m.rangeAll(tx, fn) }

// WaitDurable blocks until the WAL flush covering lsn has completed
// (returns immediately for lsn 0 or in ModeNone).
func (s *Store) WaitDurable(lsn uint64) {
	if s.log == nil || lsn == 0 {
		return
	}
	s.log.WaitDurable(lsn)
}

// WaitDurableCtx is WaitDurable with cancellation and deadline support:
// it returns ctx.Err() if ctx ends before lsn is durable (the record may
// still become durable later — cancellation abandons the wait, not the
// flush). Returns nil immediately for lsn 0 or in ModeNone.
func (s *Store) WaitDurableCtx(ctx context.Context, lsn uint64) error {
	if s.log == nil || lsn == 0 {
		return nil
	}
	return s.log.WaitDurableCtx(ctx, lsn)
}

// LastDurable returns the durability watermark inside tx, serializing
// behind any in-flight flush (0 in ModeNone).
func (s *Store) LastDurable(tx *stm.Tx) uint64 {
	if s.log == nil {
		return 0
	}
	return s.log.LastDurable(tx)
}

// Checkpoint snapshots the store into the log's new recovery base and
// prunes covered segments. Returns the covered LSN.
func (s *Store) Checkpoint() (uint64, error) {
	if s.log == nil {
		return 0, errors.New("kv: checkpoint without a WAL")
	}
	return s.log.Checkpoint(func(tx *stm.Tx) ([]byte, uint64, error) {
		kvs := make(map[string]string)
		s.m.rangeAll(tx, func(k, v string) bool {
			kvs[k] = v
			return true
		})
		return encodeSnapshot(kvs), s.log.LastAssigned(tx), nil
	})
}

// Log exposes the underlying WAL (nil in ModeNone) for stats and waits.
func (s *Store) Log() *wal.Log { return s.log }

// Mode reports the store's durability mode.
func (s *Store) Mode() Mode { return s.mode }

// Runtime returns the STM runtime the store's transactions run on.
func (s *Store) Runtime() *stm.Runtime { return s.rt }

// Close flushes and closes the WAL (no-op in ModeNone). Concurrent
// updates must have stopped. Close is idempotent and safe for
// concurrent use: every caller observes the first call's result, so
// overlapping shutdown paths (a server's signal handler racing its
// deferred cleanup) cannot double-close the WAL.
func (s *Store) Close() error {
	if s.log == nil {
		return nil
	}
	s.closeOnce.Do(func() { s.closeErr = s.log.Close() })
	return s.closeErr
}
