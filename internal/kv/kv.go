// Package kv is a durable transactional key/value store layered on the
// STM runtime and the group-committing WAL (package wal) — the paper's
// atomic-deferral story applied end to end: a store transaction mutates
// transactional state and appends one WAL record describing its
// mutations, all inside the same transaction; durability (the fsync) is
// the deferred operation, so commits never block on I/O and concurrent
// commits share flushes.
//
// Three durability modes bracket the design space:
//
//   - ModeGroup (default): the WAL append is transactional and the flush
//     is deferred via the log's atomic deferral — group commit.
//   - ModeSync: every update runs as a serial (irrevocable) transaction
//     and fsyncs before returning — the classic irrevocability baseline,
//     exactly one fsync per commit.
//   - ModeNone: no WAL at all; an in-memory upper bound.
//
// # Shards and WAL lanes
//
// The key space can be partitioned into N shards (Options.Shards, a
// power of two), each with its own map partition AND its own WAL lane —
// a private log with lane-scoped LSNs, its own group-commit leader
// election, and its own durable watermark — so the fsyncs of commits
// touching different shards run in parallel. Keys route to shards by a
// fixed FNV-1a hash (deterministic across restarts, so a key's records
// always live in one lane and per-lane LSN order is per-key order).
//
// A commit touching one shard takes exactly the unsharded fast path on
// its lane. A commit touching several shards splits its ops per lane
// and commits via ONE atomic deferral that acquires every touched
// lane's TxLock (in ascending lane order) at the commit and flushes the
// lanes together, publishing no watermark until every lane's fsync has
// returned. Each of its records is stamped with a global commit
// sequence number (GSN) and the full lane/LSN vector of the batch, so
// recovery can tell a complete cross-shard batch from one a crash cut
// in half — incomplete batches are presumed aborted and their lanes'
// tails truncated (such records were never acked: acks wait on
// watermarks the interrupted flush never published).
//
// Recovery (Open) replays, per lane, the newest checkpoint plus all
// intact WAL records after it, in LSN order. Because LSNs are assigned
// inside the mutating transactions, lane LSN order IS the lane's
// serialization order, and a recovered store is always a
// prefix-consistent image of the committed history — per lane, and
// all-or-nothing across lanes for cross-shard batches.
package kv

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

// Mode selects the durability discipline.
type Mode int

const (
	// ModeGroup appends transactionally and defers the fsync through the
	// log's atomic deferral (group commit). The default.
	ModeGroup Mode = iota
	// ModeSync makes each update a serial transaction with its own fsync.
	ModeSync
	// ModeNone disables the WAL entirely.
	ModeNone
)

func (m Mode) String() string {
	switch m {
	case ModeGroup:
		return "group"
	case ModeSync:
		return "sync"
	case ModeNone:
		return "none"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a Store.
type Options struct {
	Mode    Mode
	Buckets int // hash buckets across the whole store (0 → 1024)
	// Shards is the number of key-space shards = WAL lanes (power of
	// two, at most MaxShards). 0 adopts whatever the directory's
	// manifest records (1 for a fresh or pre-manifest directory); a
	// nonzero value that disagrees with an existing manifest is an
	// error — lane routing is baked into the on-disk layout.
	Shards int
	WAL    wal.Options
}

// LaneRecovery is one lane's slice of RecoveryInfo.
type LaneRecovery struct {
	Lane          int
	CheckpointLSN uint64 // 0 when the lane had no checkpoint
	Replayed      int    // records applied after the checkpoint
	LastLSN       uint64 // highest LSN the lane's recovered state covers
	TornBytes     int    // bytes truncated from the lane's torn tail
	// TruncatedAt is the first LSN dropped by cross-shard presumed
	// abort (0 = none): a batch this lane recorded was missing a
	// sibling record on another lane, so this record and the lane's
	// tail after it — none of which were ever acked — were cut.
	TruncatedAt uint64
}

// RecoveryInfo summarizes what Open replayed. For a multi-lane store
// the scalar fields aggregate across lanes (CheckpointLSN and LastLSN
// are sums of the per-lane values — totals of log positions, not
// single-log watermarks); Lanes carries the per-lane breakdown.
type RecoveryInfo struct {
	CheckpointLSN uint64 // 0 when no checkpoint existed
	Replayed      int    // WAL records applied after the checkpoint(s)
	LastLSN       uint64 // highest LSN (sum over lanes) recovery covers
	TornBytes     int    // bytes truncated from torn tails
	Keys          int    // keys present after recovery
	Shards        int    // lane count the store opened with
	MaxGSN        uint64 // highest global commit sequence number replayed
	// SkippedRecords counts records dropped by cross-shard presumed
	// abort (tail truncation of lanes with incomplete batches).
	SkippedRecords int
	Lanes          []LaneRecovery // per-lane breakdown, ascending
}

// shard pairs one key-space partition with its WAL lane.
type shard struct {
	m   *smap
	log *wal.Log // nil in ModeNone
}

// Store is a durable transactional key/value store. All methods are safe
// for concurrent use.
type Store struct {
	rt     *stm.Runtime
	mode   Mode
	shards []shard
	mask   uint64
	gsn    atomic.Uint64 // last GSN issued; multi-lane stores only

	closeOnce sync.Once
	closeErr  error
}

// shardOf routes key to its shard by FNV-1a. The hash is deliberately
// seedless: routing must be identical across restarts, or a key's
// records would migrate between lanes and per-lane replay order would
// stop being per-key order.
func (s *Store) shardOf(key string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h & s.mask)
}

func validShards(n int) error {
	if n < 1 || n > MaxShards || bits.OnesCount(uint(n)) != 1 {
		return fmt.Errorf("kv: shard count %d: must be a power of two in [1,%d]", n, MaxShards)
	}
	return nil
}

// Open recovers (or creates) a store on backend b. b may be nil only in
// ModeNone.
func Open(rt *stm.Runtime, b wal.Backend, opts Options) (*Store, *RecoveryInfo, error) {
	if opts.Buckets <= 0 {
		opts.Buckets = 1024
	}
	info := &RecoveryInfo{}

	if opts.Mode == ModeNone {
		lanes := opts.Shards
		if lanes == 0 {
			lanes = 1
		}
		if err := validShards(lanes); err != nil {
			return nil, nil, err
		}
		s := newStore(rt, opts, lanes)
		info.Shards = lanes
		return s, info, nil
	}
	if b == nil {
		return nil, nil, errors.New("kv: durable mode needs a backend")
	}

	// Pin the lane count: the manifest wins, a fresh directory takes
	// opts.Shards, and a disagreement is fatal — reopening a 4-lane
	// directory with -shards 2 would replay half its lanes and route
	// keys to the wrong logs.
	onDisk, needManifest, err := detectLanes(b)
	if err != nil {
		return nil, nil, err
	}
	lanes := opts.Shards
	switch {
	case lanes == 0 && onDisk == 0:
		lanes = 1
	case lanes == 0:
		lanes = onDisk
	case onDisk != 0 && onDisk != lanes:
		return nil, nil, fmt.Errorf(
			"kv: store was created with %d WAL lanes but reopened with -shards %d; the lane count is fixed at creation (pass %d, or 0 to adopt)",
			onDisk, lanes, onDisk)
	}
	if err := validShards(lanes); err != nil {
		return nil, nil, err
	}
	if needManifest {
		if err := writeManifest(b, lanes); err != nil {
			return nil, nil, err
		}
	}

	s := newStore(rt, opts, lanes)
	info.Shards = lanes
	if err := s.recover(b, opts.WAL, info); err != nil {
		return nil, nil, err
	}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		info.Keys = s.Len(tx)
		return nil
	})
	return s, info, nil
}

func newStore(rt *stm.Runtime, opts Options, lanes int) *Store {
	perShard := opts.Buckets / lanes
	if perShard < 64 {
		perShard = 64
	}
	s := &Store{rt: rt, mode: opts.Mode, mask: uint64(lanes - 1)}
	s.shards = make([]shard, lanes)
	for i := range s.shards {
		s.shards[i].m = newSmap(perShard)
	}
	return s
}

// recover opens every lane, presumes incomplete cross-shard batches
// aborted (truncating lane tails), and replays checkpoint images and
// surviving records into the shard maps.
func (s *Store) recover(b wal.Backend, wopts wal.Options, info *RecoveryInfo) error {
	lanes := len(s.shards)
	recs := make([]*wal.Recovery, lanes)
	for i := range s.shards {
		log, rec, err := wal.Open(s.rt, laneBackend(b, i, lanes), wopts)
		if err != nil {
			return fmt.Errorf("kv: lane %d: %w", i, err)
		}
		s.shards[i].log = log
		recs[i] = rec
	}

	var cuts []uint64
	if lanes > 1 {
		var err error
		cuts, err = crossLaneCuts(recs)
		if err != nil {
			return err
		}
		for i, cut := range cuts {
			if cut == 0 {
				continue
			}
			// Drop the incomplete batch and the lane's tail after it,
			// then reopen the lane so LSN assignment resumes below the
			// cut. The dropped records were never acked (the flush that
			// would have published their watermark never finished), so
			// presuming them aborted loses nothing that was promised.
			for _, r := range recs[i].Records {
				if r.LSN >= cut {
					info.SkippedRecords++
				}
			}
			if err := s.shards[i].log.Close(); err != nil {
				return fmt.Errorf("kv: lane %d: close for truncation: %w", i, err)
			}
			lb := laneBackend(b, i, lanes)
			if err := wal.TruncateTail(lb, recs[i], cut); err != nil {
				return fmt.Errorf("kv: lane %d: %w", i, err)
			}
			log, rec, err := wal.Open(s.rt, lb, wopts)
			if err != nil {
				return fmt.Errorf("kv: lane %d: reopen after truncation: %w", i, err)
			}
			s.shards[i].log = log
			recs[i] = rec
		}
	}

	for i, rec := range recs {
		lr := LaneRecovery{
			Lane:          i,
			CheckpointLSN: rec.CheckpointLSN,
			LastLSN:       rec.LastLSN,
			TornBytes:     rec.TornBytes,
		}
		if cuts != nil {
			lr.TruncatedAt = cuts[i]
		}
		if rec.Checkpoint != nil {
			kvs, err := decodeSnapshot(rec.Checkpoint)
			if err != nil {
				return fmt.Errorf("kv: lane %d checkpoint: %w", i, err)
			}
			m := s.shards[i].m
			if err := s.rt.Atomic(func(tx *stm.Tx) error {
				for k, v := range kvs {
					m.put(tx, k, v)
				}
				return nil
			}); err != nil {
				return err
			}
		}
		// Replay: one transaction per record so replay transactions stay
		// small. The store is not shared yet, so these commit without
		// contention.
		for _, r := range rec.Records {
			ops, gsn, err := s.decodePayload(r.Payload)
			if err != nil {
				return fmt.Errorf("kv: lane %d record %d: %w", i, r.LSN, err)
			}
			if gsn > info.MaxGSN {
				info.MaxGSN = gsn
			}
			m := s.shards[i].m
			if err := s.rt.Atomic(func(tx *stm.Tx) error {
				applyOps(tx, m, ops)
				return nil
			}); err != nil {
				return err
			}
			lr.Replayed++
		}
		info.CheckpointLSN += rec.CheckpointLSN
		info.LastLSN += rec.LastLSN
		info.TornBytes += rec.TornBytes
		info.Replayed += lr.Replayed
		info.Lanes = append(info.Lanes, lr)
	}
	s.gsn.Store(info.MaxGSN)
	return nil
}

// decodePayload parses one lane record: multi-lane stores carry the
// GSN+vector header, single-lane stores the bare op list (byte-identical
// to the pre-lane format).
func (s *Store) decodePayload(payload []byte) ([]Op, uint64, error) {
	if len(s.shards) == 1 {
		ops, err := DecodeOps(payload)
		return ops, 0, err
	}
	gsn, _, ops, err := decodeLaneRecord(payload)
	return ops, gsn, err
}

// crossLaneCuts decides, per lane, the first LSN to drop: the lane's
// earliest record of a cross-shard batch missing a sibling. A sibling
// point is satisfied if its lane recovered that LSN below its own cut,
// or already folded it into a checkpoint (checkpoints never contain
// incomplete batches: the cross-lane flush holds every touched lane's
// TxLock from commit to last fsync, and Checkpoint serializes on that
// same lock). Cutting one lane can orphan a batch another lane thought
// complete, so the cuts iterate to a fixed point; each pass only
// lowers cuts, so it terminates.
func crossLaneCuts(recs []*wal.Recovery) ([]uint64, error) {
	type rec struct {
		lsn uint64
		pts []LanePoint
	}
	decoded := make([][]rec, len(recs))
	present := make([]map[uint64]bool, len(recs))
	for i, r := range recs {
		present[i] = make(map[uint64]bool, len(r.Records))
		for _, rr := range r.Records {
			gsn, pts, _, err := decodeLaneRecord(rr.Payload)
			if err != nil {
				return nil, fmt.Errorf("kv: lane %d record %d: %w", i, rr.LSN, err)
			}
			_ = gsn
			for _, p := range pts {
				if p.Lane < 0 || p.Lane >= len(recs) {
					return nil, fmt.Errorf("kv: lane %d record %d: vector names lane %d of %d", i, rr.LSN, p.Lane, len(recs))
				}
			}
			decoded[i] = append(decoded[i], rec{lsn: rr.LSN, pts: pts})
			present[i][rr.LSN] = true
		}
	}
	cut := make([]uint64, len(recs))
	kept := func(lane int, lsn uint64) bool {
		if lsn <= recs[lane].CheckpointLSN {
			return true
		}
		return present[lane][lsn] && (cut[lane] == 0 || lsn < cut[lane])
	}
	for changed := true; changed; {
		changed = false
		for i, lane := range decoded {
			for _, r := range lane {
				if cut[i] != 0 && r.lsn >= cut[i] {
					break // already dropped; records are ascending
				}
				if len(r.pts) <= 1 {
					continue
				}
				for _, p := range r.pts {
					if p.Lane == i {
						continue
					}
					if !kept(p.Lane, p.LSN) {
						cut[i] = r.lsn
						changed = true
						break
					}
				}
				if cut[i] != 0 && r.lsn >= cut[i] {
					break
				}
			}
		}
	}
	return cut, nil
}

func applyOps(tx *stm.Tx, m *smap, ops []Op) {
	for _, op := range ops {
		if op.Put {
			m.put(tx, op.Key, op.Value)
		} else {
			m.delete(tx, op.Key)
		}
	}
}

// Batch accumulates one transaction's mutations: each Put/Delete applies
// to the store immediately (inside the transaction, so the transaction
// reads its own writes) and is recorded — per touched shard — for the
// commit's WAL record(s).
type Batch struct {
	s  *Store
	tx *stm.Tx
	n  int
	// single holds the ops of a 1-shard store (the unsharded layout);
	// perShard, indexed by shard, those of a sharded one.
	single   []Op
	perShard [][]Op
}

func (b *Batch) add(sh int, op Op) {
	b.n++
	if len(b.s.shards) == 1 {
		b.single = append(b.single, op)
		return
	}
	if b.perShard == nil {
		b.perShard = make([][]Op, len(b.s.shards))
	}
	b.perShard[sh] = append(b.perShard[sh], op)
}

// Get reads key inside the batch's transaction.
func (b *Batch) Get(key string) (string, bool) {
	return b.s.shards[b.s.shardOf(key)].m.get(b.tx, key)
}

// Put sets key to value.
func (b *Batch) Put(key, value string) {
	sh := b.s.shardOf(key)
	b.s.shards[sh].m.put(b.tx, key, value)
	b.add(sh, Op{Put: true, Key: key, Value: value})
}

// Delete removes key (a no-op delete is still logged; replay is
// idempotent about it).
func (b *Batch) Delete(key string) {
	sh := b.s.shardOf(key)
	b.s.shards[sh].m.delete(b.tx, key)
	b.add(sh, Op{Key: key})
}

// Len reports the number of mutations so far.
func (b *Batch) Len() int { return b.n }

// touched returns the ascending shard indices the batch mutated.
func (b *Batch) touched() []int {
	var t []int
	for sh, ops := range b.perShard {
		if len(ops) > 0 {
			t = append(t, sh)
		}
	}
	sort.Ints(t)
	return t
}

// Update runs fn as one atomic, durable mutation of the store and
// returns a durability token for its WAL record(s) — 0 for a read-only
// fn or in ModeNone. On a single-shard store the token is the plain
// LSN; on a sharded store it packs the home lane (the lowest touched
// lane) and that lane's LSN (see PackToken). In ModeGroup the token is
// not yet durable on return — call WaitDurable(token) for a synchronous
// guarantee; waiting on a cross-shard commit's token covers the whole
// batch, because the cross-lane flush publishes no watermark until
// every touched lane is fsynced. In ModeSync the record(s) are durable
// on return.
//
// fn may re-execute (optimistic retry); it must be idempotent apart from
// its Batch mutations, which reset on retry.
func (s *Store) Update(fn func(tx *stm.Tx, b *Batch) error) (uint64, error) {
	var token uint64
	run := func(tx *stm.Tx) error {
		token = 0
		b := &Batch{s: s, tx: tx}
		if err := fn(tx, b); err != nil {
			return err
		}
		if s.shards[0].log == nil || b.n == 0 {
			return nil
		}
		if len(s.shards) == 1 {
			// The unsharded fast path, untouched: one log, bare payload,
			// no GSN.
			payload := EncodeOps(b.single)
			if s.mode == ModeSync {
				var err error
				token, err = s.shards[0].log.AppendSync(tx, payload)
				return err
			}
			token = s.shards[0].log.Append(tx, payload)
			return nil
		}
		var err error
		token, err = s.commitLanes(tx, b)
		return err
	}
	var err error
	if s.mode == ModeSync {
		err = s.rt.AtomicSerial(run)
	} else {
		err = s.rt.Atomic(run)
	}
	if err != nil {
		return 0, err
	}
	return token, nil
}

// commitLanes appends a sharded commit's per-lane records. Every record
// carries the commit's GSN and full lane/LSN vector; a commit touching
// several lanes flushes them through one multi-lock atomic deferral.
func (s *Store) commitLanes(tx *stm.Tx, b *Batch) (uint64, error) {
	touched := b.touched()

	if s.mode == ModeSync {
		// Serial transactions run exclusively, so each lane's next LSN
		// is exactly LastAssigned+1 — predict the vector, then append.
		pts := make([]LanePoint, len(touched))
		for i, sh := range touched {
			pts[i] = LanePoint{Lane: sh, LSN: s.shards[sh].log.LastAssigned(tx) + 1}
		}
		gsn := s.gsn.Add(1)
		for i, sh := range touched {
			lsn, err := s.shards[sh].log.AppendSyncWith(tx, gsn, encodeLaneRecord(gsn, pts, b.perShard[sh]))
			if err != nil {
				return 0, err
			}
			if lsn != pts[i].LSN {
				panic(fmt.Sprintf("kv: serial lane %d assigned LSN %d, predicted %d", sh, lsn, pts[i].LSN))
			}
		}
		return PackToken(touched[0], pts[0].LSN), nil
	}

	// Reserve every touched lane's LSN first (the payload header needs
	// the complete vector), then draw the GSN. The order matters:
	// reserving conflicts with every other commit on the same lane, so
	// by the time this attempt can commit, every earlier commit on each
	// touched lane has already drawn its (smaller) GSN — GSNs are
	// monotone in LSN within every lane. Aborted attempts leave GSN
	// gaps; nothing cares.
	pts := make([]LanePoint, len(touched))
	for i, sh := range touched {
		pts[i] = LanePoint{Lane: sh, LSN: s.shards[sh].log.Reserve(tx)}
	}
	gsn := s.gsn.Add(1)
	for i, sh := range touched {
		s.shards[sh].log.EnqueueReserved(tx, pts[i].LSN, gsn, encodeLaneRecord(gsn, pts, b.perShard[sh]))
	}
	if len(touched) == 1 {
		// Single-shard commit: the lane's ordinary group-commit path,
		// leader election, follower fast path and all.
		s.shards[touched[0]].log.DeferFlush(tx, pts[0].LSN)
	} else {
		logs := make([]*wal.Log, len(touched))
		for i, sh := range touched {
			logs[i] = s.shards[sh].log
		}
		wal.DeferFlushGroup(tx, logs)
	}
	return PackToken(touched[0], pts[0].LSN), nil
}

// View runs fn as a read-only transaction over the store.
func (s *Store) View(fn func(tx *stm.Tx) error) error {
	return s.rt.Atomic(fn)
}

// SnapshotView runs fn as a snapshot-mode read-only transaction
// (stm.AtomicSnapshot): every read resolves at one pinned version-clock
// instant, so fn observes a consistent cut across all shards without
// validation and without aborting — or stalling — concurrent writers,
// no matter how long it runs. Writes inside fn panic. If the snapshot
// cannot be served (version-chain depth overflow on a hot var), the
// runtime re-runs fn on the ordinary validating path.
func (s *Store) SnapshotView(fn func(tx *stm.Tx) error) error {
	return s.rt.AtomicSnapshot(fn)
}

// Scan iterates every key/value pair as one consistent snapshot of the
// whole store (all shards at a single pinned version) until fn returns
// false. It is the abort-free way to run long full-store scans under
// write traffic; see SnapshotView for the mechanism. fn observes each
// key exactly once per call: the snapshot transaction may internally
// re-execute (validating fallback), so the cut is collected inside the
// transaction — resetting on re-execution — and delivered to fn only
// after it succeeded. Callers composing their own transactional scans
// via SnapshotView must do that reset themselves.
func (s *Store) Scan(fn func(k, v string) bool) error {
	type entry struct{ k, v string }
	var cut []entry
	err := s.SnapshotView(func(tx *stm.Tx) error {
		cut = cut[:0]
		s.Range(tx, func(k, v string) bool {
			cut = append(cut, entry{k: k, v: v})
			return true
		})
		return nil
	})
	if err != nil {
		return err
	}
	for _, e := range cut {
		if !fn(e.k, e.v) {
			return nil
		}
	}
	return nil
}

// Get reads key inside tx (for composing with other transactional state).
func (s *Store) Get(tx *stm.Tx, key string) (string, bool) {
	return s.shards[s.shardOf(key)].m.get(tx, key)
}

// Len reports the number of keys inside tx.
func (s *Store) Len(tx *stm.Tx) int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].m.length(tx)
	}
	return n
}

// Range iterates all entries inside tx until fn returns false, shard by
// shard (iteration order is unspecified, as it always was).
func (s *Store) Range(tx *stm.Tx, fn func(k, v string) bool) {
	for i := range s.shards {
		done := false
		s.shards[i].m.rangeAll(tx, func(k, v string) bool {
			if !fn(k, v) {
				done = true
				return false
			}
			return true
		})
		if done {
			return
		}
	}
}

// WaitDurable blocks until the WAL flush covering token has completed
// (returns immediately for token 0 or in ModeNone). For a cross-shard
// commit's token this covers the whole batch — see Update.
func (s *Store) WaitDurable(token uint64) {
	if s.shards[0].log == nil || token == 0 {
		return
	}
	s.laneOf(token).WaitDurable(TokenLSN(token))
}

// WaitDurableCtx is WaitDurable with cancellation and deadline support:
// it returns ctx.Err() if ctx ends before token is durable (the record
// may still become durable later — cancellation abandons the wait, not
// the flush). Returns nil immediately for token 0 or in ModeNone.
func (s *Store) WaitDurableCtx(ctx context.Context, token uint64) error {
	if s.shards[0].log == nil || token == 0 {
		return nil
	}
	return s.laneOf(token).WaitDurableCtx(ctx, TokenLSN(token))
}

func (s *Store) laneOf(token uint64) *wal.Log {
	lane := TokenLane(token)
	if lane < 0 || lane >= len(s.shards) {
		panic(fmt.Sprintf("kv: token names lane %d of a %d-lane store", lane, len(s.shards)))
	}
	return s.shards[lane].log
}

// LastDurable returns lane 0's durability watermark inside tx,
// serializing behind any in-flight flush on that lane (0 in ModeNone).
// Sharded callers that want the full picture iterate Logs().
func (s *Store) LastDurable(tx *stm.Tx) uint64 {
	if s.shards[0].log == nil {
		return 0
	}
	return s.shards[0].log.LastDurable(tx)
}

// Checkpoint snapshots every shard into its lane's new recovery base
// and prunes covered segments, one lane at a time. Returns the sum of
// the covered LSNs. A lane checkpoint can never capture half of a
// cross-shard batch: the batch's flush holds the lane's TxLock from
// commit to its last fsync, and Checkpoint serializes on that lock.
func (s *Store) Checkpoint() (uint64, error) {
	if s.shards[0].log == nil {
		return 0, errors.New("kv: checkpoint without a WAL")
	}
	var total uint64
	for i := range s.shards {
		m, log := s.shards[i].m, s.shards[i].log
		covered, err := log.Checkpoint(func(tx *stm.Tx) ([]byte, uint64, error) {
			kvs := make(map[string]string)
			m.rangeAll(tx, func(k, v string) bool {
				kvs[k] = v
				return true
			})
			return encodeSnapshot(kvs), log.LastAssigned(tx), nil
		})
		if err != nil {
			return total, fmt.Errorf("kv: checkpoint lane %d: %w", i, err)
		}
		total += covered
	}
	return total, nil
}

// Log exposes lane 0's WAL (nil in ModeNone) for stats and waits;
// sharded callers usually want Logs.
func (s *Store) Log() *wal.Log { return s.shards[0].log }

// Logs returns every lane's WAL in lane order (nils in ModeNone).
func (s *Store) Logs() []*wal.Log {
	logs := make([]*wal.Log, len(s.shards))
	for i := range s.shards {
		logs[i] = s.shards[i].log
	}
	return logs
}

// Shards reports the store's shard (= WAL lane) count.
func (s *Store) Shards() int { return len(s.shards) }

// Mode reports the store's durability mode.
func (s *Store) Mode() Mode { return s.mode }

// Runtime returns the STM runtime the store's transactions run on.
func (s *Store) Runtime() *stm.Runtime { return s.rt }

// Close flushes and closes every WAL lane (no-op in ModeNone).
// Concurrent updates must have stopped. Close is idempotent and safe
// for concurrent use: every caller observes the first call's result, so
// overlapping shutdown paths (a server's signal handler racing its
// deferred cleanup) cannot double-close the WAL.
func (s *Store) Close() error {
	if s.shards[0].log == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		for i := range s.shards {
			if err := s.shards[i].log.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}
