package kv

import (
	"encoding/binary"
	"fmt"
)

// WAL payload codecs. A commit record is the ordered mutation list of one
// transaction; a checkpoint blob is a full key/value dump. Both use
// length-prefixed strings, little-endian:
//
//	commit record:  repeat{ u8 op (1=put 2=delete), u32 klen, key,
//	                        [u32 vlen, value  — put only] }
//	checkpoint:     u32 count, repeat{ u32 klen, key, u32 vlen, value }
//
// Integrity (CRC, LSN binding, torn-tail handling) lives a layer down in
// package wal's record format; these payloads assume intact bytes but
// still validate structure so a logic bug cannot silently misapply.

const (
	opPut    = 1
	opDelete = 2
)

// Op is one mutation of a committed transaction.
type Op struct {
	Put   bool // false = delete
	Key   string
	Value string // empty for deletes
}

func appendStr(dst []byte, s string) []byte {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(s)))
	dst = append(dst, l[:]...)
	return append(dst, s...)
}

func takeStr(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("kv: truncated length")
	}
	n := binary.LittleEndian.Uint32(b)
	if uint32(len(b)-4) < n {
		return "", nil, fmt.Errorf("kv: truncated string (%d of %d bytes)", len(b)-4, n)
	}
	return string(b[4 : 4+n]), b[4+n:], nil
}

// EncodeOps serializes a mutation list. It is the WAL commit-record
// payload format, and — exported — the BATCH body of the wire protocol
// (internal/server): one framing discipline end to end, so a batch that
// arrived over a socket is byte-identical to the record that replays it.
func EncodeOps(ops []Op) []byte {
	var out []byte
	for _, op := range ops {
		if op.Put {
			out = append(out, opPut)
			out = appendStr(out, op.Key)
			out = appendStr(out, op.Value)
		} else {
			out = append(out, opDelete)
			out = appendStr(out, op.Key)
		}
	}
	return out
}

// DecodeOps parses a commit-record (or wire BATCH) payload. It
// validates structure only; intact-bytes integrity is the caller's
// layer (WAL CRCs, or the frame length of the wire protocol).
func DecodeOps(b []byte) ([]Op, error) {
	var ops []Op
	for len(b) > 0 {
		code := b[0]
		b = b[1:]
		var op Op
		var err error
		switch code {
		case opPut:
			op.Put = true
			if op.Key, b, err = takeStr(b); err != nil {
				return nil, err
			}
			if op.Value, b, err = takeStr(b); err != nil {
				return nil, err
			}
		case opDelete:
			if op.Key, b, err = takeStr(b); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("kv: unknown op code %d", code)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// encodeSnapshot serializes a full store image.
func encodeSnapshot(kvs map[string]string) []byte {
	var out []byte
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(kvs)))
	out = append(out, l[:]...)
	for k, v := range kvs {
		out = appendStr(out, k)
		out = appendStr(out, v)
	}
	return out
}

// decodeSnapshot parses a checkpoint blob.
func decodeSnapshot(b []byte) (map[string]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("kv: truncated snapshot header")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// Clamp the map's size hint to what the remaining bytes could
	// possibly hold (each entry needs two length prefixes, ≥ 8 bytes):
	// a corrupt count must produce a decode error, not a giant
	// allocation before the first takeStr ever runs.
	hint := n
	if maxEntries := uint32(len(b) / 8); hint > maxEntries {
		hint = maxEntries
	}
	kvs := make(map[string]string, hint)
	for i := uint32(0); i < n; i++ {
		var k, v string
		var err error
		if k, b, err = takeStr(b); err != nil {
			return nil, err
		}
		if v, b, err = takeStr(b); err != nil {
			return nil, err
		}
		kvs[k] = v
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("kv: %d trailing snapshot bytes", len(b))
	}
	return kvs, nil
}
