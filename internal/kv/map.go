package kv

import (
	"context"
	"hash/maphash"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"deferstm/internal/core"
	"deferstm/internal/stm"
)

// smap is a string-keyed transactional hash map, same construction as
// ds.HashMap but keyed for the store's API: per-bucket chain Vars with
// immutable nodes, striped size counters (so disjoint-key writers do not
// serialize on one size Var), and a load-factor-triggered resize whose
// rehash runs as a deferred operation under the map's implicit lock.
// Every operation subscribes to that lock first, which orders it against
// the deferred rehash's direct stores.
type smap struct {
	core.Deferrable
	seed     maphash.Seed
	table    stm.Var[*stable]
	resizing stm.Var[bool]
	stripes  []countStripe
	resizes  atomic.Uint64
}

// stable is one immutable view of the bucket layout; see ds.hmTable.
// Outside a migration old is nil; during one, old[frontier:] holds the
// chains not yet moved into buckets.
type stable struct {
	buckets  []stm.Var[*snode]
	old      []stm.Var[*snode]
	frontier int
}

// countStripe pads each size counter to its own pair of cache lines.
type countStripe struct {
	n stm.Var[int]
	_ [96]byte // sizeof(stm.Var[int]) == 32; pad to 128
}

type snode struct {
	key  string
	val  string
	next *snode
}

const (
	smapMinBuckets   = 16
	smapMaxChain     = 8
	smapGrowFactor   = 4
	smapMigrateChunk = 64
)

func newSmap(nBuckets int) *smap {
	if nBuckets < smapMinBuckets {
		nBuckets = smapMinBuckets
	}
	m := &smap{seed: maphash.MakeSeed(), stripes: make([]countStripe, smapStripes())}
	m.table.Init(&stable{buckets: make([]stm.Var[*snode], nBuckets)})
	return m
}

func smapStripes() int {
	n := 8
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n *= 2
	}
	return n
}

func (m *smap) hash(k string) uint64 { return maphash.String(m.seed, k) }

// stripeFor picks a size stripe from high hash bits, decorrelated from
// the bucket index (low bits).
func (m *smap) stripeFor(h uint64) *stm.Var[int] {
	return &m.stripes[(h>>32)%uint64(len(m.stripes))].n
}

// view subscribes to the map's lock and returns the current table.
func (m *smap) view(tx *stm.Tx) *stable {
	m.Subscribe(tx)
	return m.table.Get(tx)
}

func (t *stable) bucketFor(h uint64) *stm.Var[*snode] {
	if t.old != nil {
		if oi := int(h % uint64(len(t.old))); oi >= t.frontier {
			return &t.old[oi]
		}
	}
	return &t.buckets[h%uint64(len(t.buckets))]
}

func (m *smap) get(tx *stm.Tx, k string) (string, bool) {
	h := m.hash(k)
	for n := m.view(tx).bucketFor(h).Get(tx); n != nil; n = n.next {
		if n.key == k {
			return n.val, true
		}
	}
	return "", false
}

// put inserts or replaces k's value in a single chain pass. Overwriting a
// key with a byte-equal value is a no-op: the bucket is left untouched, so
// the transaction stays read-only on that bucket, its version does not
// move, and concurrent readers of the chain are not invalidated.
func (m *smap) put(tx *stm.Tx, k, v string) {
	t := m.view(tx)
	h := m.hash(k)
	b := t.bucketFor(h)
	head := b.Get(tx)
	chain := 0
	for n := head; n != nil; n = n.next {
		chain++
		if n.key == k {
			if n.val == v {
				return
			}
			b.Set(tx, replaceSnode(head, k, v))
			return
		}
	}
	b.Set(tx, &snode{key: k, val: v, next: head})
	s := m.stripeFor(h)
	s.Set(tx, s.Get(tx)+1)
	m.maybeGrow(tx, t, chain+1)
	return
}

func replaceSnode(head *snode, k, v string) *snode {
	if head.key == k {
		return &snode{key: k, val: v, next: head.next}
	}
	return &snode{key: head.key, val: head.val, next: replaceSnode(head.next, k, v)}
}

// delete removes k in a single chain pass (removeSnode both searches and
// rebuilds, copying the prefix only when the key exists).
func (m *smap) delete(tx *stm.Tx, k string) bool {
	t := m.view(tx)
	h := m.hash(k)
	b := t.bucketFor(h)
	nh, ok := removeSnode(b.Get(tx), k)
	if !ok {
		return false
	}
	b.Set(tx, nh)
	s := m.stripeFor(h)
	s.Set(tx, s.Get(tx)-1)
	return true
}

func removeSnode(head *snode, k string) (*snode, bool) {
	if head == nil {
		return nil, false
	}
	if head.key == k {
		return head.next, true
	}
	rest, ok := removeSnode(head.next, k)
	if !ok {
		return head, false
	}
	return &snode{key: head.key, val: head.val, next: rest}, true
}

// length is the transactional sum of the size stripes (exact).
func (m *smap) length(tx *stm.Tx) int {
	m.Subscribe(tx)
	total := 0
	for i := range m.stripes {
		total += m.stripes[i].n.Get(tx)
	}
	return total
}

func (m *smap) rangeAll(tx *stm.Tx, fn func(k, v string) bool) {
	t := m.view(tx)
	for i := range t.buckets {
		for n := t.buckets[i].Get(tx); n != nil; n = n.next {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
	if t.old == nil {
		return
	}
	for i := t.frontier; i < len(t.old); i++ {
		for n := t.old[i].Get(tx); n != nil; n = n.next {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
}

// approxLen sums the stripes non-transactionally: a trigger heuristic.
// Reading the stripes with Get here would put every stripe in the read
// set and recreate the single-counter hotspot.
func (m *smap) approxLen() int {
	total := 0
	for i := range m.stripes {
		total += m.stripes[i].n.Load()
	}
	return total
}

// maybeGrow triggers a resize after an insert left a chain of chainLen:
// the inserting transaction flips the resizing flag and defers the rehash
// under the map lock (see ds.HashMap.maybeGrow).
func (m *smap) maybeGrow(tx *stm.Tx, t *stable, chainLen int) {
	if chainLen <= smapMaxChain || t.old != nil {
		return
	}
	if m.approxLen() <= smapGrowFactor*len(t.buckets) {
		return
	}
	if m.resizing.Get(tx) {
		return
	}
	m.resizing.Set(tx, true)
	core.AtomicDefer(tx, func(ctx *core.OpCtx) { m.beginResize(ctx) }, m)
}

// beginResize runs as a deferred operation holding the map lock; it
// installs the migrating table, moves the first chunk, and hands the rest
// to a background migrator goroutine.
func (m *smap) beginResize(ctx *core.OpCtx) {
	t := core.Load(ctx, &m.table)
	if t.old != nil {
		return
	}
	newLen := 2 * len(t.buckets)
	for m.approxLen() > smapGrowFactor*newLen {
		newLen *= 2
	}
	nt := &stable{buckets: make([]stm.Var[*snode], newLen), old: t.buckets}
	if m.migrateChunk(ctx, nt) {
		go m.migrateLoop(ctx.Runtime())
	}
}

// migrateChunk moves up to smapMigrateChunk old chains and installs the
// advanced-frontier (or final) table. Must run holding the map lock.
// Reports whether chains remain.
func (m *smap) migrateChunk(ctx *core.OpCtx, t *stable) bool {
	if met := ctx.Runtime().Metrics(); met != nil {
		defer func(t0 time.Time) { met.ResizeChunk.Observe(time.Since(t0)) }(time.Now())
	}
	end := t.frontier + smapMigrateChunk
	if end > len(t.old) {
		end = len(t.old)
	}
	for i := t.frontier; i < end; i++ {
		for n := core.Load(ctx, &t.old[i]); n != nil; n = n.next {
			j := m.hash(n.key) % uint64(len(t.buckets))
			core.Store(ctx, &t.buckets[j],
				&snode{key: n.key, val: n.val, next: core.Load(ctx, &t.buckets[j])})
		}
	}
	if end == len(t.old) {
		core.Store(ctx, &m.table, &stable{buckets: t.buckets})
		core.Store(ctx, &m.resizing, false)
		m.resizes.Add(1)
		return false
	}
	core.Store(ctx, &m.table, &stable{buckets: t.buckets, old: t.old, frontier: end})
	return true
}

// migrateLoop drives the remaining chunks under a fresh owner identity;
// each chunk is its own transaction + deferral unit, so the map lock is
// free between chunks. See ds.HashMap.migrateLoop.
func (m *smap) migrateLoop(rt *stm.Runtime) {
	if rt.Metrics() != nil {
		pprof.Do(context.Background(), pprof.Labels("deferstm", "map-migrator"),
			func(context.Context) { m.migrateChunks(rt) })
		return
	}
	m.migrateChunks(rt)
}

func (m *smap) migrateChunks(rt *stm.Runtime) {
	me := rt.NewOwner()
	for {
		migrating := false
		_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
			migrating = false
			m.Subscribe(tx)
			t := m.table.Get(tx)
			if t.old == nil {
				return nil
			}
			migrating = true
			core.AtomicDeferTry(tx, func(ctx *core.OpCtx) {
				if nt := core.Load(ctx, &m.table); nt.old != nil {
					m.migrateChunk(ctx, nt)
				}
			}, m)
			return nil
		})
		if !migrating {
			return
		}
		runtime.Gosched()
	}
}
