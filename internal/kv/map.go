package kv

import (
	"hash/maphash"

	"deferstm/internal/stm"
)

// smap is a string-keyed transactional hash map, same construction as
// ds.HashMap (fixed bucket array, immutable chain nodes) but keyed for the
// store's API. Operations on different buckets never conflict.
type smap struct {
	seed    maphash.Seed
	buckets []stm.Var[*snode]
	size    stm.Var[int]
}

type snode struct {
	key  string
	val  string
	next *snode
}

func newSmap(nBuckets int) *smap {
	if nBuckets < 16 {
		nBuckets = 16
	}
	return &smap{seed: maphash.MakeSeed(), buckets: make([]stm.Var[*snode], nBuckets)}
}

func (m *smap) bucket(k string) *stm.Var[*snode] {
	return &m.buckets[maphash.String(m.seed, k)%uint64(len(m.buckets))]
}

func (m *smap) get(tx *stm.Tx, k string) (string, bool) {
	for n := m.bucket(k).Get(tx); n != nil; n = n.next {
		if n.key == k {
			return n.val, true
		}
	}
	return "", false
}

func (m *smap) put(tx *stm.Tx, k, v string) {
	b := m.bucket(k)
	head := b.Get(tx)
	for n := head; n != nil; n = n.next {
		if n.key == k {
			b.Set(tx, replaceSnode(head, k, v))
			return
		}
	}
	b.Set(tx, &snode{key: k, val: v, next: head})
	m.size.Set(tx, m.size.Get(tx)+1)
}

func replaceSnode(head *snode, k, v string) *snode {
	if head.key == k {
		return &snode{key: k, val: v, next: head.next}
	}
	return &snode{key: head.key, val: head.val, next: replaceSnode(head.next, k, v)}
}

func (m *smap) delete(tx *stm.Tx, k string) bool {
	b := m.bucket(k)
	head := b.Get(tx)
	found := false
	for n := head; n != nil; n = n.next {
		if n.key == k {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	b.Set(tx, removeSnode(head, k))
	m.size.Set(tx, m.size.Get(tx)-1)
	return true
}

func removeSnode(head *snode, k string) *snode {
	if head.key == k {
		return head.next
	}
	return &snode{key: head.key, val: head.val, next: removeSnode(head.next, k)}
}

func (m *smap) length(tx *stm.Tx) int { return m.size.Get(tx) }

func (m *smap) rangeAll(tx *stm.Tx, fn func(k, v string) bool) {
	for i := range m.buckets {
		for n := m.buckets[i].Get(tx); n != nil; n = n.next {
			if !fn(n.key, n.val) {
				return
			}
		}
	}
}
