package kv

import (
	"fmt"

	"deferstm/internal/stm"
)

// The replica apply surface: a follower process replaying a primary's
// WAL stream needs to decode shipped record payloads and apply them to
// the matching lane of its own (WAL-less) store, atomically across
// lanes for cross-shard batches — the replica-side mirror of the
// multi-lane atomic deferral. The primary routes keys to lanes by hash
// at commit time and the stream frames carry the lane, so replay never
// re-routes: it applies each op list to exactly the lane it was logged
// under.

// DecodeLaneRecord parses a shipped WAL record payload the way this
// store's recovery would: multi-lane stores carry the GSN + lane-vector
// header, single-lane stores the bare op list (gsn 0, nil vector).
func (s *Store) DecodeLaneRecord(payload []byte) (gsn uint64, pts []LanePoint, ops []Op, err error) {
	if len(s.shards) == 1 {
		ops, err = DecodeOps(payload)
		return 0, nil, ops, err
	}
	return decodeLaneRecord(payload)
}

// ApplyReplicated applies one shipped record's ops to lane inside the
// caller's transaction. The caller supplies the transaction so a
// cross-shard batch can apply all its lanes in ONE commit: partial
// batches are never observable, matching what the primary's multi-lock
// deferral guaranteed writers there.
func (s *Store) ApplyReplicated(tx *stm.Tx, lane int, ops []Op) error {
	if lane < 0 || lane >= len(s.shards) {
		return fmt.Errorf("kv: apply to lane %d of a %d-lane store", lane, len(s.shards))
	}
	applyOps(tx, s.shards[lane].m, ops)
	return nil
}

// ResetShardContents replaces lane's entire contents with kvs inside
// the caller's transaction — the checkpoint-bootstrap path: the blob is
// the lane's full state at its upTo, so everything currently in the
// lane (stale catch-up state from a pruned cursor) goes.
func (s *Store) ResetShardContents(tx *stm.Tx, lane int, kvs map[string]string) error {
	if lane < 0 || lane >= len(s.shards) {
		return fmt.Errorf("kv: reset lane %d of a %d-lane store", lane, len(s.shards))
	}
	m := s.shards[lane].m
	var stale []string
	m.rangeAll(tx, func(k, _ string) bool {
		if _, ok := kvs[k]; !ok {
			stale = append(stale, k)
		}
		return true
	})
	for _, k := range stale {
		m.delete(tx, k)
	}
	for k, v := range kvs {
		m.put(tx, k, v)
	}
	return nil
}

// DecodeSnapshotBlob parses a checkpoint blob (the payload of a
// checkpoint stream frame) into the lane contents it captured.
func DecodeSnapshotBlob(b []byte) (map[string]string, error) {
	return decodeSnapshot(b)
}

// EncodeLaneRecord renders a multi-lane WAL record payload — the
// inverse of DecodeLaneRecord on a sharded store, for tests and tools
// that synthesize stream traffic.
func EncodeLaneRecord(gsn uint64, pts []LanePoint, ops []Op) []byte {
	return encodeLaneRecord(gsn, pts, ops)
}
