package kv

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"deferstm/internal/check"
	"deferstm/internal/history"
	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

func smapSettled(t *testing.T, m *smap) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for m.table.Load().old != nil || m.Lock().OwnerSnapshot() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("smap migration did not settle")
		}
		time.Sleep(time.Millisecond)
	}
}

// Overwriting a key with a byte-equal value must leave the bucket
// untouched: no chain rebuild, no version bump, so concurrent readers of
// the chain are not invalidated.
func TestSmapNoopPutSkipsBucketWrite(t *testing.T) {
	rt := stm.NewDefault()
	m := newSmap(64)
	write := func(k, v string) {
		if err := rt.Atomic(func(tx *stm.Tx) error {
			m.put(tx, k, v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	write("a", "1")
	write("b", "2") // same map, exercises chains too
	b := m.table.Load().bucketFor(m.hash("a"))
	ver := b.Version()

	write("a", "1") // byte-equal: must be a pure read
	if got := b.Version(); got != ver {
		t.Fatalf("no-op put bumped bucket version: %d -> %d", ver, got)
	}
	write("a", "9") // real overwrite: must bump
	if got := b.Version(); got == ver {
		t.Fatal("real overwrite did not bump bucket version")
	}
	var v string
	var ok bool
	_ = rt.Atomic(func(tx *stm.Tx) error { v, ok = m.get(tx, "a"); return nil })
	if !ok || v != "9" {
		t.Fatalf("get a = (%q,%v)", v, ok)
	}
}

func TestSmapDeleteSemantics(t *testing.T) {
	rt := stm.NewDefault()
	m := newSmap(16)
	_ = rt.Atomic(func(tx *stm.Tx) error {
		for i := 0; i < 20; i++ {
			m.put(tx, fmt.Sprintf("k%02d", i), "v")
		}
		if m.delete(tx, "absent") {
			t.Error("delete of absent key reported true")
		}
		if !m.delete(tx, "k07") {
			t.Error("delete of present key reported false")
		}
		if m.delete(tx, "k07") {
			t.Error("double delete reported true")
		}
		if n := m.length(tx); n != 19 {
			t.Errorf("length = %d, want 19", n)
		}
		if _, ok := m.get(tx, "k07"); ok {
			t.Error("deleted key still present")
		}
		if _, ok := m.get(tx, "k08"); !ok {
			t.Error("neighbor key lost by delete")
		}
		return nil
	})
}

// Concurrent store updates across at least one full deferred resize: no
// entry may be lost and the striped length must stay exact.
func TestStoreConcurrentUpdatesAcrossResize(t *testing.T) {
	s, _ := openStore(t, nil, Options{Mode: ModeNone, Buckets: 16})
	defer s.Close()
	const workers, per = 6, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := fmt.Sprintf("w%d-%04d", w, i)
				if _, err := s.Update(func(tx *stm.Tx, b *Batch) error {
					b.Put(k, "x")
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	smapSettled(t, s.shards[0].m)
	if s.shards[0].m.resizes.Load() == 0 {
		t.Fatal("no resize completed; test is vacuous")
	}
	got := dump(t, s)
	if len(got) != workers*per {
		t.Fatalf("dumped %d keys, want %d", len(got), workers*per)
	}
	var n int
	_ = s.View(func(tx *stm.Tx) error { n = s.Len(tx); return nil })
	if n != workers*per {
		t.Fatalf("Len = %d, want %d", n, workers*per)
	}
}

// Group-commit mode with a deliberately tiny bucket count: the same
// transaction can trigger a map resize (a deferral unit holding the map
// lock) and join a WAL flush as a follower (a unit with no locks whose
// operation takes the log lock). The recorded history must satisfy every
// checker axiom — in particular two-phase locking, which is why the
// follower path runs under a fresh owner identity — and the store must
// recover to identical contents.
func TestStoreGroupCommitResizeCheckedHistory(t *testing.T) {
	log := history.New()
	rt := stm.New(stm.Config{Recorder: log})
	fs := simio.NewFS(simio.Latency{})
	s, _, err := Open(rt, wal.NewSimBackend(fs), Options{Mode: ModeGroup, Buckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := fmt.Sprintf("w%d-%04d", w, i)
				lsn, err := s.Update(func(tx *stm.Tx, b *Batch) error {
					b.Put(k, "v")
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if i%8 == 0 {
					s.WaitDurable(lsn)
				}
			}
		}(w)
	}
	wg.Wait()
	smapSettled(t, s.shards[0].m)
	if s.shards[0].m.resizes.Load() == 0 {
		t.Fatal("no resize completed; composition not exercised")
	}
	live := dump(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep := check.History(log.Events())
	if !rep.OK() {
		t.Fatalf("checker rejected group-commit + resize history:\n%s", rep)
	}
	s2, _ := openStore(t, fs, Options{Mode: ModeGroup, Buckets: 16})
	defer s2.Close()
	got := dump(t, s2)
	if len(got) != len(live) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(live))
	}
	for k, v := range live {
		if got[k] != v {
			t.Fatalf("key %q diverged after recovery", k)
		}
	}
}
