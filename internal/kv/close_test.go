package kv

import (
	"sync"
	"testing"

	"deferstm/internal/simio"
)

// TestCloseIdempotent: server shutdown paths overlap (signal handler vs
// deferred cleanup), so Close must tolerate being called from several
// goroutines and repeatedly, with every caller seeing the first result.
func TestCloseIdempotent(t *testing.T) {
	for _, mode := range []Mode{ModeGroup, ModeSync, ModeNone} {
		t.Run(mode.String(), func(t *testing.T) {
			var fs *simio.FS
			if mode != ModeNone {
				fs = simio.NewFS(simio.Latency{})
			}
			s, _ := openStore(t, fs, Options{Mode: mode})
			if mode != ModeNone {
				put(t, s, "k", "v")
			}

			const closers = 8
			errs := make([]error, closers)
			var wg sync.WaitGroup
			for i := 0; i < closers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					errs[i] = s.Close()
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("concurrent Close %d: %v", i, err)
				}
			}
			// And again, sequentially, well after the store is down.
			if err := s.Close(); err != nil {
				t.Errorf("repeat Close: %v", err)
			}
		})
	}
}
