package kv

import (
	"fmt"
	"sync/atomic"
	"testing"

	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

// The crash-recovery property: crash the store at an injected point
// (mid-write torn record, just before an fsync, just after one),
// reconstruct the disk from the crash image with a seeded torn-tail
// model, recover — and the recovered store must be exactly the store
// produced by replaying a PREFIX of the committed updates (LSN order =
// serialization order), a prefix that includes every update whose
// durability was acknowledged before the crash instant.
//
// The workload is sequential and deterministic: the only nondeterminism
// is the seeded reconstruction, so every failure reproduces exactly.

type committed struct {
	lsn uint64
	ops []Op
}

func applyPrefix(log []committed, upTo uint64) map[string]string {
	state := map[string]string{}
	for _, c := range log {
		if c.lsn > upTo {
			break
		}
		for _, op := range c.ops {
			if op.Put {
				state[op.Key] = op.Value
			} else {
				delete(state, op.Key)
			}
		}
	}
	return state
}

func crashScenario(t *testing.T, mode Mode, point simio.CrashPoint, n uint64, seed uint64) (fired bool, torn int) {
	t.Helper()
	opts := Options{Mode: mode, WAL: wal.Options{SegmentBytes: 256}}
	fs := simio.NewFS(simio.Latency{})
	s, _, err := Open(stm.NewDefault(), wal.NewSimBackend(fs), opts)
	if err != nil {
		t.Fatal(err)
	}

	// Watermark at the crash instant: everything at or below it was
	// acknowledged durable before the crash, so it must survive recovery.
	var acked atomic.Uint64
	fs.SetCrashPlan(simio.CrashPlan{Point: point, N: n, OnCrash: func() {
		acked.Store(s.Log().DurableWatermark())
	}})

	const updates = 40
	var history []committed
	for i := 0; i < updates; i++ {
		var ops []Op
		lsn, err := s.Update(func(tx *stm.Tx, b *Batch) error {
			ops = nil
			k := fmt.Sprintf("k%d", i%7)
			if i%5 == 4 {
				b.Delete(k)
				ops = append(ops, Op{Key: k})
			} else {
				v := fmt.Sprintf("v%d", i)
				b.Put(k, v)
				ops = append(ops, Op{Put: true, Key: k, Value: v})
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, committed{lsn: lsn, ops: ops})
		s.WaitDurable(lsn)
		if i == 24 {
			if _, err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	img := fs.CrashImage()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if img == nil {
		return false, 0 // plan never fired (N beyond the run's I/O count)
	}

	// Reconstruct the disk as a crash at that instant would have left it
	// and recover.
	fs2 := simio.FSFromImage(img, simio.Latency{}, seed)
	s2, info, err := Open(stm.NewDefault(), wal.NewSimBackend(fs2), opts)
	if err != nil {
		t.Fatalf("%v N=%d seed=%d: recovery failed: %v", point, n, seed, err)
	}
	if info.LastLSN > updates {
		t.Fatalf("%v N=%d seed=%d: recovered LSN %d beyond %d commits", point, n, seed, info.LastLSN, updates)
	}
	if info.LastLSN < acked.Load() {
		t.Fatalf("%v N=%d seed=%d: lost acked-durable updates: recovered to %d, acked %d",
			point, n, seed, info.LastLSN, acked.Load())
	}
	want := applyPrefix(history, info.LastLSN)
	got := map[string]string{}
	if err := s2.View(func(tx *stm.Tx) error {
		clear(got)
		s2.Range(tx, func(k, v string) bool {
			got[k] = v
			return true
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%v N=%d seed=%d: recovered %v, want prefix-%d state %v", point, n, seed, got, info.LastLSN, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%v N=%d seed=%d: key %q = %q, want %q (prefix %d)", point, n, seed, k, got[k], v, info.LastLSN)
		}
	}

	// The recovered store must be writable: the next LSN continues the
	// prefix.
	lsn, err := s2.Update(func(tx *stm.Tx, b *Batch) error {
		b.Put("post-crash", "ok")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != info.LastLSN+1 {
		t.Fatalf("%v N=%d seed=%d: post-recovery LSN %d, want %d", point, n, seed, lsn, info.LastLSN+1)
	}
	s2.WaitDurable(lsn)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	return true, info.TornBytes
}

func TestCrashRecoveryPrefixConsistent(t *testing.T) {
	points := []simio.CrashPoint{simio.CrashMidWrite, simio.CrashPreFsync, simio.CrashPostFsync}
	fired, tornRuns := 0, 0
	for _, point := range points {
		for _, n := range []uint64{1, 3, 7, 12, 26} {
			for seed := uint64(1); seed <= 3; seed++ {
				ok, torn := crashScenario(t, ModeGroup, point, n, seed)
				if ok {
					fired++
					if torn > 0 {
						tornRuns++
					}
				}
			}
		}
	}
	if fired < 20 {
		t.Fatalf("only %d crash scenarios actually fired", fired)
	}
	if tornRuns == 0 {
		t.Fatal("no scenario recovered from a torn tail — the test is vacuous")
	}
	t.Logf("%d crash scenarios fired, %d with torn tails", fired, tornRuns)
}

// TestCrashRecoverySyncMode: the irrevocable fsync-per-commit baseline
// obeys the same prefix property — and, stronger, every completed Update
// survives (it was acked before returning).
func TestCrashRecoverySyncMode(t *testing.T) {
	for _, point := range []simio.CrashPoint{simio.CrashMidWrite, simio.CrashPreFsync, simio.CrashPostFsync} {
		for _, n := range []uint64{1, 5, 17} {
			for seed := uint64(1); seed <= 2; seed++ {
				crashScenario(t, ModeSync, point, n, seed)
			}
		}
	}
}
