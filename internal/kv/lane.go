// Lane support for the sharded store: the record-header codec that
// stamps every multi-lane WAL record with its global commit sequence
// number (GSN) and the full lane/LSN vector of its commit, the
// durability token that routes waits to the right lane, and the
// manifest file that pins a directory to its lane count.
package kv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"deferstm/internal/wal"
)

// MaxShards bounds the shard count: lane indices must fit the token's
// 8-bit lane field with room to spare, and a commit's lane vector must
// stay small enough to ride in every record header.
const MaxShards = 64

// LanePoint names one lane's record of a commit: the lane index and
// the LSN the commit reserved there. A multi-lane commit's records all
// carry the commit's complete vector, so recovery can decide — from any
// single lane — exactly where the batch's siblings must be.
type LanePoint struct {
	Lane int
	LSN  uint64
}

// Durability tokens. Update returns one token per durable commit; it
// packs the home lane (the lowest touched lane) in the top 8 bits and
// that lane's LSN in the low 56. Lane 0 tokens equal the plain LSN, so
// a single-lane store's tokens are byte-identical to the unsharded
// format — on the wire and in ackfiles.
//
// Waiting on the token of a cross-shard commit suffices for the whole
// batch: the cross-lane flush publishes no watermark (and therefore
// satisfies no wait) until every touched lane's fsync has returned.

const tokenLSNBits = 56

// PackToken builds a durability token from a lane index and its LSN.
func PackToken(lane int, lsn uint64) uint64 {
	return uint64(lane)<<tokenLSNBits | lsn
}

// TokenLane extracts the lane index of a token.
func TokenLane(t uint64) int { return int(t >> tokenLSNBits) }

// TokenLSN extracts the lane-local LSN of a token.
func TokenLSN(t uint64) uint64 { return t & (1<<tokenLSNBits - 1) }

// Multi-lane WAL record payload: a fixed header in front of the
// EncodeOps bytes.
//
//	u64 gsn, u8 nLanes, repeat nLanes { u8 lane, u64 lsn }, ops...
//
// Single-lane stores write bare EncodeOps payloads (no header), which
// keeps their on-disk format identical to the pre-lane store.

// encodeLaneRecord serializes one lane's record of a commit.
func encodeLaneRecord(gsn uint64, pts []LanePoint, ops []Op) []byte {
	out := make([]byte, 0, 9+9*len(pts))
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], gsn)
	out = append(out, u[:]...)
	out = append(out, byte(len(pts)))
	for _, p := range pts {
		out = append(out, byte(p.Lane))
		binary.LittleEndian.PutUint64(u[:], p.LSN)
		out = append(out, u[:]...)
	}
	return append(out, EncodeOps(ops)...)
}

// decodeLaneRecord parses a multi-lane record payload.
func decodeLaneRecord(b []byte) (gsn uint64, pts []LanePoint, ops []Op, err error) {
	if len(b) < 9 {
		return 0, nil, nil, fmt.Errorf("kv: truncated lane header (%d bytes)", len(b))
	}
	gsn = binary.LittleEndian.Uint64(b)
	n := int(b[8])
	b = b[9:]
	if n == 0 || len(b) < 9*n {
		return 0, nil, nil, fmt.Errorf("kv: truncated lane vector (%d lanes, %d bytes)", n, len(b))
	}
	pts = make([]LanePoint, n)
	for i := 0; i < n; i++ {
		pts[i] = LanePoint{Lane: int(b[0]), LSN: binary.LittleEndian.Uint64(b[1:])}
		b = b[9:]
	}
	ops, err = DecodeOps(b)
	return gsn, pts, ops, err
}

// The manifest pins a store directory to its lane count. It is written
// once, fsynced, when the directory is first initialized; reopening
// with a -shards value that disagrees fails loudly instead of silently
// replaying whatever subset of lanes the new routing would look at.
const manifestName = "manifest"

// writeManifest creates and fsyncs the manifest file.
func writeManifest(b wal.Backend, lanes int) error {
	f, err := b.Create(manifestName)
	if err != nil {
		return fmt.Errorf("kv: create manifest: %w", err)
	}
	data := []byte(fmt.Sprintf("deferstm-kv v1\nlanes %d\n", lanes))
	for sent := 0; sent < len(data); {
		n, err := f.Write(data[sent:])
		sent += n
		if err != nil && n == 0 {
			f.Close()
			return fmt.Errorf("kv: write manifest: %w", err)
		}
	}
	if err := f.Fsync(); err != nil {
		f.Close()
		return fmt.Errorf("kv: fsync manifest: %w", err)
	}
	return f.Close()
}

// readManifest parses the manifest, returning its lane count.
func readManifest(b wal.Backend) (int, error) {
	f, err := b.Open(manifestName)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != "deferstm-kv v1" {
		return 0, fmt.Errorf("kv: manifest: bad header")
	}
	if !sc.Scan() {
		return 0, fmt.Errorf("kv: manifest: missing lanes line")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 2 || fields[0] != "lanes" {
		return 0, fmt.Errorf("kv: manifest: bad lanes line %q", sc.Text())
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 1 || n > MaxShards {
		return 0, fmt.Errorf("kv: manifest: bad lane count %q", fields[1])
	}
	return n, nil
}

// detectLanes determines the on-disk lane count of backend b: lanes is
// 0 for a fresh directory (the caller picks), and needManifest reports
// that a manifest must be written once the count is decided. A
// directory with WAL files but no readable manifest is an error — with
// one exception: pre-manifest directories (unprefixed segment files
// only) are adopted as single-lane stores, since their layout is
// exactly what a 1-lane store writes.
func detectLanes(b wal.Backend) (lanes int, needManifest bool, err error) {
	names, err := b.Names()
	if err != nil {
		return 0, false, fmt.Errorf("kv: list backend: %w", err)
	}
	hasManifest, hasRoot, hasLane := false, false, false
	for _, n := range names {
		switch {
		case n == manifestName:
			hasManifest = true
		case strings.HasPrefix(n, "lane"):
			hasLane = true
		case strings.HasPrefix(n, "seg-") || strings.HasPrefix(n, "ckpt-"):
			hasRoot = true
		}
	}
	if hasManifest {
		n, err := readManifest(b)
		if err != nil {
			if !hasRoot && !hasLane {
				// A crash can tear the manifest of a store that never
				// wrote a record; nothing is lost by re-initializing.
				return 0, true, nil
			}
			return 0, false, err
		}
		return n, false, nil
	}
	if hasLane {
		return 0, false, fmt.Errorf("kv: lane files present but manifest missing (corrupt or mixed-layout directory)")
	}
	if hasRoot {
		return 1, true, nil // pre-manifest single-lane directory: adopt it
	}
	return 0, true, nil
}

// laneBackend returns the backend namespace of one lane: the shared
// backend itself for a single-lane store (pre-lane layout), a
// "laneNN-"-prefixed namespace otherwise.
func laneBackend(b wal.Backend, lane, lanes int) wal.Backend {
	if lanes == 1 {
		return b
	}
	return wal.SubBackend(b, wal.LanePrefix(lane))
}
