package kv

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"deferstm/internal/simio"
	"deferstm/internal/stm"
	"deferstm/internal/wal"
)

func openStore(t *testing.T, fs *simio.FS, opts Options) (*Store, *RecoveryInfo) {
	t.Helper()
	var b wal.Backend
	if fs != nil {
		b = wal.NewSimBackend(fs)
	}
	s, info, err := Open(stm.NewDefault(), b, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, info
}

func put(t *testing.T, s *Store, k, v string) uint64 {
	t.Helper()
	lsn, err := s.Update(func(tx *stm.Tx, b *Batch) error {
		b.Put(k, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

func mustGet(t *testing.T, s *Store, k string) (string, bool) {
	t.Helper()
	var v string
	var ok bool
	if err := s.View(func(tx *stm.Tx) error {
		v, ok = s.Get(tx, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return v, ok
}

func dump(t *testing.T, s *Store) map[string]string {
	t.Helper()
	out := map[string]string{}
	if err := s.View(func(tx *stm.Tx) error {
		clear(out)
		s.Range(tx, func(k, v string) bool {
			out[k] = v
			return true
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBasicRecovery: puts and deletes across a close/reopen cycle.
func TestBasicRecovery(t *testing.T) {
	for _, mode := range []Mode{ModeGroup, ModeSync} {
		t.Run(mode.String(), func(t *testing.T) {
			fs := simio.NewFS(simio.Latency{})
			s, _ := openStore(t, fs, Options{Mode: mode})
			put(t, s, "a", "1")
			put(t, s, "b", "2")
			lsn, err := s.Update(func(tx *stm.Tx, b *Batch) error {
				if v, ok := b.Get("a"); !ok || v != "1" {
					t.Errorf("read-own-store: a=%q ok=%v", v, ok)
				}
				b.Put("a", "1.1")
				b.Delete("b")
				b.Put("c", "3")
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			s.WaitDurable(lsn)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, info := openStore(t, fs, Options{Mode: mode})
			if info.Replayed != 3 || info.LastLSN != 3 || info.Keys != 2 {
				t.Fatalf("recovery info %+v", info)
			}
			want := map[string]string{"a": "1.1", "c": "3"}
			got := dump(t, s2)
			if len(got) != len(want) {
				t.Fatalf("recovered %v, want %v", got, want)
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("recovered %v, want %v", got, want)
				}
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestModeNone: no WAL files, no durability, but a working store.
func TestModeNone(t *testing.T) {
	s, _ := openStore(t, nil, Options{Mode: ModeNone})
	if lsn := put(t, s, "k", "v"); lsn != 0 {
		t.Fatalf("ModeNone returned LSN %d", lsn)
	}
	if v, ok := mustGet(t, s, "k"); !ok || v != "v" {
		t.Fatalf("k=%q ok=%v", v, ok)
	}
	s.WaitDurable(0) // must not block
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint without WAL succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadOnlyUpdateNoRecord: an Update with no mutations writes nothing.
func TestReadOnlyUpdateNoRecord(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	s, _ := openStore(t, fs, Options{})
	lsn, err := s.Update(func(tx *stm.Tx, b *Batch) error {
		_, _ = b.Get("missing")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 0 {
		t.Fatalf("read-only update got LSN %d", lsn)
	}
	if st := s.Log().BatchStats(); st.Records != 0 {
		t.Fatalf("%d records logged by read-only update", st.Records)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRecovery: recovery from checkpoint + tail records.
func TestCheckpointRecovery(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	s, _ := openStore(t, fs, Options{WAL: wal.Options{SegmentBytes: 256}})
	for i := 0; i < 30; i++ {
		put(t, s, fmt.Sprintf("k%02d", i%10), fmt.Sprintf("v%d", i))
	}
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck != 30 {
		t.Fatalf("checkpoint covered %d, want 30", ck)
	}
	put(t, s, "k00", "after-ckpt")
	lsn := put(t, s, "extra", "tail")
	s.WaitDurable(lsn)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, info := openStore(t, fs, Options{WAL: wal.Options{SegmentBytes: 256}})
	if info.CheckpointLSN != 30 || info.Replayed != 2 || info.LastLSN != 32 {
		t.Fatalf("recovery info %+v", info)
	}
	if v, _ := mustGet(t, s2, "k00"); v != "after-ckpt" {
		t.Fatalf("k00=%q", v)
	}
	if v, _ := mustGet(t, s2, "extra"); v != "tail" {
		t.Fatalf("extra=%q", v)
	}
	if got := dump(t, s2); len(got) != 11 {
		t.Fatalf("recovered %d keys, want 11", len(got))
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupModeSharesFlushes: the kv layer inherits WAL group commit —
// concurrent durable updates need fewer fsyncs than commits.
func TestGroupModeSharesFlushes(t *testing.T) {
	fs := simio.NewFS(simio.Latency{Fsync: 2 * time.Millisecond})
	s, _ := openStore(t, fs, Options{})
	const goroutines = 8
	const perG = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn, err := s.Update(func(tx *stm.Tx, b *Batch) error {
					b.Put(fmt.Sprintf("g%d", g), fmt.Sprintf("%d", i))
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				s.WaitDurable(lsn)
			}
		}(g)
	}
	wg.Wait()
	st := s.Log().BatchStats()
	total := uint64(goroutines * perG)
	if st.Records != total || st.Flushes >= total {
		t.Fatalf("%d flushes for %d commits (records=%d)", st.Flushes, total, st.Records)
	}
	t.Logf("%d commits, %d flushes (mean batch %.1f)", total, st.Flushes, st.Mean())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, info := openStore(t, fs, Options{})
	if info.LastLSN != total {
		t.Fatalf("recovered LastLSN=%d, want %d", info.LastLSN, total)
	}
	got := dump(t, s2)
	for g := 0; g < goroutines; g++ {
		if got[fmt.Sprintf("g%d", g)] != fmt.Sprintf("%d", perG-1) {
			t.Fatalf("g%d=%q, want %d", g, got[fmt.Sprintf("g%d", g)], perG-1)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateAbortLogsNothing: a failed Update leaves no trace in the
// store or the log.
func TestUpdateAbortLogsNothing(t *testing.T) {
	fs := simio.NewFS(simio.Latency{})
	s, _ := openStore(t, fs, Options{})
	put(t, s, "keep", "1")
	sentinel := fmt.Errorf("boom")
	if _, err := s.Update(func(tx *stm.Tx, b *Batch) error {
		b.Put("ghost", "x")
		return sentinel
	}); err != sentinel {
		t.Fatalf("err=%v", err)
	}
	if _, ok := mustGet(t, s, "ghost"); ok {
		t.Fatal("aborted put visible")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, info := openStore(t, fs, Options{})
	if info.LastLSN != 1 || info.Keys != 1 {
		t.Fatalf("recovery info %+v", info)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
