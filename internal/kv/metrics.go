package kv

import (
	"fmt"

	"deferstm/internal/obs"
	"deferstm/internal/wal"
)

// RegisterLaneMetrics exposes per-lane WAL series on reg — one labeled
// series per lane index up to maxLanes — reading from whatever store
// cur returns at scrape time. Taking a func instead of a *Store lets
// callers that rebuild stores per phase (cmd/kvbench) keep one stable
// set of series across runs; the registry has no deduplication, so
// registering per store would stack duplicate series. Lanes a current
// store does not have report zero.
//
// Series (lane label = lane index):
//
//	deferstm_wal_lane_records_total  committed records appended to the lane
//	deferstm_wal_lane_flushes_total  group-commit drain+fsync cycles
//	deferstm_wal_lane_fsyncs_total   every fsync (flushes, rotations, checkpoints)
//	deferstm_wal_lane_durable_lsn    the lane's published durable watermark
//	deferstm_wal_lane_lag_records    assigned-but-not-durable records on the lane
func RegisterLaneMetrics(reg *obs.Registry, maxLanes int, cur func() *Store) {
	if reg == nil {
		return
	}
	for lane := 0; lane < maxLanes; lane++ {
		lane := lane
		log := func() *wal.Log {
			s := cur()
			if s == nil || lane >= len(s.shards) {
				return nil
			}
			return s.shards[lane].log
		}
		reg.Counter(fmt.Sprintf(`deferstm_wal_lane_records_total{lane="%d"}`, lane),
			"Committed records appended to this WAL lane.", func() uint64 {
				if l := log(); l != nil {
					return l.BatchStats().Records
				}
				return 0
			})
		reg.Counter(fmt.Sprintf(`deferstm_wal_lane_flushes_total{lane="%d"}`, lane),
			"Group-commit flush cycles on this WAL lane.", func() uint64 {
				if l := log(); l != nil {
					return l.BatchStats().Flushes
				}
				return 0
			})
		reg.Counter(fmt.Sprintf(`deferstm_wal_lane_fsyncs_total{lane="%d"}`, lane),
			"Fsyncs issued by this WAL lane (flushes, rotations, checkpoints).", func() uint64 {
				if l := log(); l != nil {
					return l.BatchStats().Fsyncs
				}
				return 0
			})
		reg.GaugeFunc(fmt.Sprintf(`deferstm_wal_lane_durable_lsn{lane="%d"}`, lane),
			"Published durable watermark of this WAL lane.", func() float64 {
				if l := log(); l != nil {
					return float64(l.DurableWatermark())
				}
				return 0
			})
		reg.GaugeFunc(fmt.Sprintf(`deferstm_wal_lane_lag_records{lane="%d"}`, lane),
			"Assigned-but-not-yet-durable records on this WAL lane.", func() float64 {
				if l := log(); l != nil {
					if a, d := l.AssignedWatermark(), l.DurableWatermark(); a > d {
						return float64(a - d)
					}
				}
				return 0
			})
	}
}

// RegisterMetrics is RegisterLaneMetrics for one long-lived store
// (cmd/kvserver): every lane the store has, bound for its lifetime.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	RegisterLaneMetrics(reg, len(s.shards), func() *Store { return s })
}
