package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deferstm/internal/stm"
)

// counter is a minimal deferrable object with one shared field.
type counter struct {
	Deferrable
	n stm.Var[int]
}

// GetN is a transaction-safe method: subscribe first, then read.
func (c *counter) GetN(tx *stm.Tx) int {
	c.Subscribe(tx)
	return c.n.Get(tx)
}

// SetN is a transaction-safe method: subscribe first, then write.
func (c *counter) SetN(tx *stm.Tx, v int) {
	c.Subscribe(tx)
	c.n.Set(tx, v)
}

func TestDeferredOpRunsAfterCommit(t *testing.T) {
	rt := stm.NewDefault()
	c := &counter{}
	v := stm.NewVar(0)
	var ran atomic.Bool
	if err := rt.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, 10)
		AtomicDefer(tx, func(ctx *OpCtx) {
			// The deferred operation sees the transaction's committed
			// writes.
			if got := v.Load(); got != 10 {
				t.Errorf("deferred op saw v=%d, want 10", got)
			}
			Store(ctx, &c.n, 1)
			ran.Store(true)
		}, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("deferred op did not run")
	}
	if got := c.n.Load(); got != 1 {
		t.Errorf("c.n = %d, want 1", got)
	}
	if c.Locked() {
		t.Error("lock not released after deferred op")
	}
	if rt.Snapshot().DeferredOps != 1 {
		t.Error("DeferredOps stat not incremented")
	}
}

func TestDeferredOpsOrderAndVisibility(t *testing.T) {
	rt := stm.NewDefault()
	c := &counter{}
	var order []int
	if err := rt.Atomic(func(tx *stm.Tx) error {
		AtomicDefer(tx, func(ctx *OpCtx) {
			order = append(order, 1)
			Store(ctx, &c.n, 100)
		}, c)
		AtomicDefer(tx, func(ctx *OpCtx) {
			// Effects of earlier deferred operations are visible to
			// later ones.
			if got := Load(ctx, &c.n); got != 100 {
				t.Errorf("second op saw n=%d, want 100", got)
			}
			order = append(order, 2)
		}, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v, want [1 2]", order)
	}
	if c.Locked() {
		t.Error("reentrant lock not fully released")
	}
}

func TestAbortedTransactionDefersNothing(t *testing.T) {
	rt := stm.NewDefault()
	c := &counter{}
	sentinel := errors.New("abort")
	err := rt.Atomic(func(tx *stm.Tx) error {
		AtomicDefer(tx, func(ctx *OpCtx) {
			t.Error("deferred op ran for aborted transaction")
		}, c)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatal(err)
	}
	if c.Locked() {
		t.Error("aborted transaction left the lock held")
	}
}

// TestSerializability is the paper's core claim: no concurrent transaction
// can observe a state reflecting the transaction's effects but not its
// deferred operation's. The transaction sets a=1 transactionally and b=1
// in a deferred operation; observers that follow the subscribe-first
// discipline must never see (a=1, b=0).
func TestSerializability(t *testing.T) {
	type obj struct {
		Deferrable
		a, b stm.Var[int]
	}
	rt := stm.NewDefault()
	o := &obj{}
	const rounds = 200

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violations atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var a, b int
				_ = rt.Atomic(func(tx *stm.Tx) error {
					o.Subscribe(tx)
					a = o.a.Get(tx)
					b = o.b.Get(tx)
					return nil
				})
				if a != b {
					violations.Add(1)
					return
				}
			}
		}()
	}

	for i := 1; i <= rounds; i++ {
		if err := rt.Atomic(func(tx *stm.Tx) error {
			o.Subscribe(tx)
			o.a.Set(tx, i)
			i := i
			AtomicDefer(tx, func(ctx *OpCtx) {
				// A slow deferred operation widens the window in which
				// a=i but b<i — observable only if locking is broken.
				time.Sleep(50 * time.Microsecond)
				Store(ctx, &o.b, i)
			}, o)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d serializability violations (observed a != b)", n)
	}
	if o.a.Load() != rounds || o.b.Load() != rounds {
		t.Errorf("final state a=%d b=%d, want %d/%d", o.a.Load(), o.b.Load(), rounds, rounds)
	}
}

// TestSubscriberBlocksDuringDeferredOp: a transaction calling a method of
// a deferrable object while its deferred operation is in flight must wait
// for the operation to finish.
func TestSubscriberBlocksDuringDeferredOp(t *testing.T) {
	rt := stm.NewDefault()
	c := &counter{}
	opStarted := make(chan struct{})
	opRelease := make(chan struct{})
	committed := make(chan struct{})
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			c.SetN(tx, 5)
			AtomicDefer(tx, func(ctx *OpCtx) {
				close(opStarted)
				<-opRelease
				Store(ctx, &c.n, 6)
			}, c)
			return nil
		})
		close(committed)
	}()
	<-opStarted

	got := make(chan int, 1)
	go func() {
		var n int
		_ = rt.Atomic(func(tx *stm.Tx) error {
			n = c.GetN(tx)
			return nil
		})
		got <- n
	}()
	select {
	case n := <-got:
		t.Fatalf("reader returned %d during deferred op", n)
	case <-time.After(20 * time.Millisecond):
	}
	close(opRelease)
	<-committed
	select {
	case n := <-got:
		if n != 6 {
			t.Errorf("reader got %d, want 6 (post-deferred state)", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never resumed")
	}
}

// TestNonSubscribedAccessProceeds: transactions touching other objects are
// not blocked by an in-flight deferred operation (the whole point of
// deferral vs. irrevocability — the right side of the paper's Figure 1).
func TestNonSubscribedAccessProceeds(t *testing.T) {
	rt := stm.NewDefault()
	c := &counter{}
	other := stm.NewVar(0)
	opStarted := make(chan struct{})
	opRelease := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rt.Atomic(func(tx *stm.Tx) error {
			c.SetN(tx, 1)
			AtomicDefer(tx, func(ctx *OpCtx) {
				close(opStarted)
				<-opRelease
			}, c)
			return nil
		})
	}()
	<-opStarted
	// A transaction on unrelated state must commit while the deferred
	// operation is still running.
	finished := make(chan struct{})
	go func() {
		_ = rt.Atomic(func(tx *stm.Tx) error {
			other.Set(tx, other.Get(tx)+1)
			return nil
		})
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("unrelated transaction blocked by deferred operation")
	}
	close(opRelease)
	<-done
}

func TestPanicInOpReleasesLocks(t *testing.T) {
	rt := stm.NewDefault()
	c := &counter{}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		_ = rt.Atomic(func(tx *stm.Tx) error {
			AtomicDefer(tx, func(ctx *OpCtx) {
				panic("op failed")
			}, c)
			return nil
		})
	}()
	if c.Locked() {
		t.Error("lock leaked after op panic")
	}
}

func TestDeferWithNoObjects(t *testing.T) {
	rt := stm.NewDefault()
	ran := false
	if err := rt.Atomic(func(tx *stm.Tx) error {
		AtomicDefer(tx, func(ctx *OpCtx) { ran = true })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("lock-free deferred op did not run")
	}
}

func TestDeferNilObjectSkipped(t *testing.T) {
	rt := stm.NewDefault()
	ran := false
	if err := rt.Atomic(func(tx *stm.Tx) error {
		AtomicDefer(tx, func(ctx *OpCtx) { ran = true }, nil)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("op with nil deferrable did not run")
	}
}

// TestOpCtxAtomicReentersOwnLock: a deferred operation can run follow-up
// transactions that subscribe to (or acquire) the locks it already holds.
func TestOpCtxAtomicReentersOwnLock(t *testing.T) {
	rt := stm.NewDefault()
	c := &counter{}
	var got int
	if err := rt.Atomic(func(tx *stm.Tx) error {
		c.SetN(tx, 3)
		AtomicDefer(tx, func(ctx *OpCtx) {
			if err := ctx.Atomic(func(tx2 *stm.Tx) error {
				// Subscribe sees "held by me" and passes.
				got = c.GetN(tx2)
				c.SetN(tx2, got*2)
				return nil
			}); err != nil {
				t.Errorf("ctx.Atomic: %v", err)
			}
		}, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("op read %d, want 3", got)
	}
	if n := c.n.Load(); n != 6 {
		t.Errorf("n = %d, want 6", n)
	}
	if ctxOwner := c.Locked(); ctxOwner {
		t.Error("lock leaked")
	}
}

// TestSharedObjectAcrossTwoDefers: the same object passed to two deferred
// operations in one transaction stays locked until the second completes.
func TestSharedObjectAcrossTwoDefers(t *testing.T) {
	rt := stm.NewDefault()
	c := &counter{}
	var lockedDuringSecond bool
	if err := rt.Atomic(func(tx *stm.Tx) error {
		AtomicDefer(tx, func(ctx *OpCtx) {}, c)
		AtomicDefer(tx, func(ctx *OpCtx) {
			lockedDuringSecond = c.Locked()
		}, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !lockedDuringSecond {
		t.Error("object unlocked before its second deferred op ran")
	}
	if c.Locked() {
		t.Error("lock not released at the end")
	}
}

// TestQueueFreeRunsAfterDeferredOps reproduces Listing 1's free-list
// handling: memory "freed" by the transaction must remain usable by its
// deferred operations.
func TestQueueFreeRunsAfterDeferredOps(t *testing.T) {
	rt := stm.NewDefault()
	c := &counter{}
	buf := []byte("payload")
	freed := false
	var sawFreed bool
	if err := rt.Atomic(func(tx *stm.Tx) error {
		tx.QueueFree(func() { freed = true })
		AtomicDefer(tx, func(ctx *OpCtx) {
			sawFreed = freed
			_ = buf[0] // deferred op touches the "freed" memory
		}, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sawFreed {
		t.Error("memory reclaimed before deferred op ran")
	}
	if !freed {
		t.Error("free never executed")
	}
}

// TestConcurrentDeferStress: many threads defer updates to a small set of
// objects; per-object monotonic sequence numbers written only by deferred
// ops must never go backwards and must total correctly.
func TestConcurrentDeferStress(t *testing.T) {
	rt := stm.NewDefault()
	const nObjs = 4
	objs := make([]*counter, nObjs)
	for i := range objs {
		objs[i] = &counter{}
	}
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				obj := objs[(seed+i)%nObjs]
				err := rt.Atomic(func(tx *stm.Tx) error {
					obj.Subscribe(tx)
					AtomicDefer(tx, func(ctx *OpCtx) {
						// increment under the object's lock, non-transactionally
						Store(ctx, &obj.n, Load(ctx, &obj.n)+1)
					}, obj)
					return nil
				})
				if err != nil {
					t.Errorf("atomic: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, o := range objs {
		total += o.n.Load()
		if o.Locked() {
			t.Error("object left locked")
		}
	}
	if total != workers*per {
		t.Errorf("total = %d, want %d (lost deferred updates)", total, workers*per)
	}
}

// TestDeferUnderHTM: atomic deferral works identically under the simulated
// HTM mode (the paper's +DeferIO/+DeferAll HTM curves rely on this).
func TestDeferUnderHTM(t *testing.T) {
	rt := stm.New(stm.Config{Mode: stm.ModeHTM})
	c := &counter{}
	if err := rt.Atomic(func(tx *stm.Tx) error {
		c.SetN(tx, 1)
		AtomicDefer(tx, func(ctx *OpCtx) {
			Store(ctx, &c.n, 2)
		}, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.n.Load(); got != 2 {
		t.Errorf("n = %d, want 2", got)
	}
	if c.Locked() {
		t.Error("lock leaked under HTM")
	}
}

// TestDeferFromSerialTransaction: atomic_defer composes with irrevocable
// (serial) transactions — the deferred op still runs post-commit with the
// locks held, after the serial gate is released.
func TestDeferFromSerialTransaction(t *testing.T) {
	rt := stm.NewDefault()
	c := &counter{}
	ran := false
	if err := rt.AtomicSerial(func(tx *stm.Tx) error {
		c.SetN(tx, 7)
		AtomicDefer(tx, func(ctx *OpCtx) {
			ran = true
			if got := Load(ctx, &c.n); got != 7 {
				t.Errorf("deferred op saw n=%d", got)
			}
			// The op can run transactions (the gate must be free).
			if err := ctx.Atomic(func(tx2 *stm.Tx) error {
				c.SetN(tx2, 8)
				return nil
			}); err != nil {
				t.Errorf("ctx.Atomic: %v", err)
			}
		}, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("deferred op did not run")
	}
	if c.Locked() {
		t.Error("lock leaked")
	}
	if got := c.n.Load(); got != 8 {
		t.Errorf("n = %d, want 8", got)
	}
}

// TestDeferEscalatedTransaction: a transaction that becomes irrevocable
// *after* registering a deferred op re-executes serially; the deferral
// registered by the aborted optimistic attempt is discarded and the
// serial attempt's deferral runs exactly once.
func TestDeferEscalatedTransaction(t *testing.T) {
	rt := stm.NewDefault()
	c := &counter{}
	runs := 0
	if err := rt.Atomic(func(tx *stm.Tx) error {
		AtomicDefer(tx, func(ctx *OpCtx) {
			runs++
		}, c)
		tx.Irrevocable() // escalates (restarts serially) on the first attempt
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("deferred op ran %d times, want 1", runs)
	}
	if c.Locked() {
		t.Error("lock leaked")
	}
}
