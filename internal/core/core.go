// Package core implements atomic deferral, the primary contribution of
// Zhou, Luchangco and Spear's "Extending Transactional Memory with Atomic
// Deferral" (SPAA/OPODIS 2017).
//
// A transaction may defer a long-running or irrevocable operation (file
// I/O, system calls, an expensive pure function) until after it commits,
// while remaining serializable: no concurrent transaction can observe the
// state between "the transaction committed" and "its deferred operation
// finished". The mechanism (the paper's Listing 1):
//
//   - every Deferrable object carries an implicit transaction-friendly
//     lock, and every transaction-safe method of the object subscribes to
//     that lock as its first action;
//   - AtomicDefer acquires the locks of all objects the deferred
//     operation may access, inside the deferring transaction (hence
//     deadlock-free: the acquisitions take effect atomically at commit);
//   - at commit the runtime validates, writes back, quiesces, and then
//     runs the deferred operations in order, releasing each operation's
//     locks as it completes; memory reclamation queued by the transaction
//     is delayed until all deferred operations are done.
//
// Correctness follows the paper's two-phase-locking argument: every lock
// needed by a deferred operation is acquired before the transaction's
// conceptual global lock is released at commit, so there is a pure
// acquire phase followed by a pure release phase.
package core

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"deferstm/internal/stm"
	"deferstm/internal/txlock"
)

// pprofLabels tags deferred-operation execution so CPU/goroutine
// profiles taken through the -metrics debug endpoint attribute the
// post-commit tail to the deferral machinery rather than to whatever
// committer happened to run it.
var pprofLabels = pprof.Labels("deferstm", "deferred-op")

// opIDCtr numbers deferred operations for history recording; IDs are
// global so histories from several runtimes never collide.
var opIDCtr atomic.Uint64

// Object is the type-erased view of a deferrable object: anything that
// embeds Deferrable satisfies it. AtomicDefer accepts Objects so user
// structs can be passed directly.
type Object interface {
	deferrableLock() *txlock.Lock
}

// Deferrable is the base for objects that deferred operations may access
// (the paper's `deferrable class` annotation). Embed it in a struct whose
// shared fields are stm.Vars, and call Subscribe at the top of every
// transaction-safe method. The zero value is ready to use.
type Deferrable struct {
	lock txlock.Lock
}

func (d *Deferrable) deferrableLock() *txlock.Lock { return &d.lock }

// Subscribe elides the object's implicit lock inside tx: it blocks (via
// retry) until the lock is free or held by tx's owner, and leaves the
// lock's owner field in tx's read set so any later acquisition aborts tx.
// The compiler extension described in the paper injects this call at the
// start of every transaction-safe method of a deferrable class; in Go,
// call it explicitly at the top of each method that touches shared fields.
func (d *Deferrable) Subscribe(tx *stm.Tx) {
	d.lock.Subscribe(tx)
}

// Lock exposes the implicit per-instance lock (diagnostics and tests).
func (d *Deferrable) Lock() *txlock.Lock { return &d.lock }

// Locked reports whether the implicit lock is currently held (snapshot).
func (d *Deferrable) Locked() bool { return d.lock.OwnerSnapshot() != 0 }

// Op is a deferred operation. It runs after the deferring transaction has
// committed and the runtime has quiesced, while the locks of its
// associated Deferrable objects are held. It receives an OpCtx carrying
// the runtime and the deferring transaction's lock-owner identity, so it
// can run follow-up transactions that reenter those locks.
type Op func(ctx *OpCtx)

// OpCtx is the execution context of a deferred operation.
type OpCtx struct {
	rt    *stm.Runtime
	owner stm.OwnerID
}

// NewOpCtx builds an operation context for code that holds deferrable
// locks without having been deferred — the "mix and match" pattern of the
// paper's Section 4.2: a plain goroutine that acquired an object's lock
// via (*txlock.Lock).AcquireOutside gets the same Load/Store/Atomic
// helpers a deferred operation has. owner must be the identity the locks
// are held under. Package wal uses this for group-commit flushes that
// take the log lock post-commit rather than at commit.
func NewOpCtx(rt *stm.Runtime, owner stm.OwnerID) *OpCtx {
	return &OpCtx{rt: rt, owner: owner}
}

// Runtime returns the runtime the deferring transaction ran on.
func (c *OpCtx) Runtime() *stm.Runtime { return c.rt }

// Owner returns the deferring transaction's lock-owner identity. Locks of
// the operation's Deferrable objects are held under this identity while
// the operation runs.
func (c *OpCtx) Owner() stm.OwnerID { return c.owner }

// Atomic runs fn as a transaction that inherits the deferring
// transaction's owner identity, so subscriptions and acquisitions of the
// operation's own locks reenter rather than self-deadlock.
func (c *OpCtx) Atomic(fn func(tx *stm.Tx) error) error {
	return c.rt.AtomicAs(c.owner, fn)
}

// AtomicSerial runs fn as a serial (irrevocable) transaction inheriting
// the owner identity.
func (c *OpCtx) AtomicSerial(fn func(tx *stm.Tx) error) error {
	return c.rt.AtomicSerialAs(c.owner, fn)
}

// Load reads a Var non-transactionally from a deferred operation. It is
// safe for fields of Deferrable objects whose locks the operation holds.
func Load[T any](c *OpCtx, v *stm.Var[T]) T { return v.Load() }

// Store publishes x to v non-transactionally from a deferred operation,
// bumping v's version so concurrent transactions validate correctly. It is
// safe for fields of Deferrable objects whose locks the operation holds:
// subscription guarantees any transaction that could observe the store
// conflicts with the lock acquisition and aborts.
func Store[T any](c *OpCtx, v *stm.Var[T], x T) { v.StoreDirect(c.rt, x) }

// AtomicDefer defers op until after the enclosing transaction commits (the
// paper's atomic_defer). objs lists every Deferrable the operation may
// access; their implicit locks are acquired inside tx (atomically at
// commit, hence without deadlock) and released as the operation completes.
// Deferred operations of one transaction run in registration order, after
// the runtime has quiesced, and each sees the effects of earlier ones.
//
// Passing no objects is allowed (the paper's "pass nil" variant for
// unordered logging): the operation then runs post-commit with no lock
// protection, and is atomic only in the sense that it happens after the
// transaction's writes are visible.
//
// If the operation accesses a shared object not listed in objs, a data
// race may occur — exactly the proviso of the paper's Section 4.1.
func AtomicDefer(tx *stm.Tx, op Op, objs ...Object) {
	// Acquire phase (two-phase locking): all locks the operation needs,
	// acquired within the transaction.
	locks := make([]*txlock.Lock, 0, len(objs))
	for _, o := range objs {
		if o == nil {
			continue
		}
		l := o.deferrableLock()
		l.AcquireAs(tx, tx.Owner())
		locks = append(locks, l)
	}
	deferWithLocks(tx, op, locks)
}

// AtomicDeferTry is AtomicDefer with non-blocking lock acquisition: if
// any object's lock is held by another owner it backs the acquisitions
// out (inside tx, so nothing escapes) and returns false without
// deferring op. Use it for optional post-commit work that some other
// owner may already be performing — e.g. one chunk of an incremental
// map migration, where a busy lock means another helper holds the
// critical section and this transaction need not wait for it.
func AtomicDeferTry(tx *stm.Tx, op Op, objs ...Object) bool {
	me := tx.Owner()
	locks := make([]*txlock.Lock, 0, len(objs))
	for _, o := range objs {
		if o == nil {
			continue
		}
		l := o.deferrableLock()
		if !l.TryAcquireAs(tx, me) {
			for _, held := range locks {
				// Acquired earlier in this same transaction, so the
				// release cannot fail.
				if err := held.ReleaseAs(tx, me); err != nil {
					panic("core: try-defer backout failed: " + err.Error())
				}
			}
			return false
		}
		locks = append(locks, l)
	}
	deferWithLocks(tx, op, locks)
	return true
}

// deferWithLocks queues op to run after tx commits, holding locks (all
// already acquired inside tx) and releasing them as it completes.
func deferWithLocks(tx *stm.Tx, op Op, locks []*txlock.Lock) {
	me := tx.Owner()
	rt := tx.Runtime()
	var opID uint64
	if rt.Recording() {
		opID = opIDCtr.Add(1)
		tx.RecordOnCommit(stm.Event{Kind: stm.EvDeferEnqueue, Owner: me, Aux: opID})
		for _, l := range locks {
			tx.RecordOnCommit(stm.Event{Kind: stm.EvDeferLock, Owner: me, Aux: opID, Var: l.VarID()})
		}
	}
	tx.AfterCommit(func() {
		if opID != 0 {
			rt.RecordEvent(stm.Event{Kind: stm.EvDeferStart, Owner: me, Aux: opID})
		}
		ctx := &OpCtx{rt: rt, owner: me}
		met := rt.Metrics()
		var h0 time.Time
		if met != nil {
			h0 = time.Now()
		}
		defer func() {
			// Release phase: even if the operation panics, the locks
			// must not leak (concurrent subscribers would block
			// forever); release, then let the panic propagate.
			releaseAll(rt, me, locks)
			if met != nil {
				// Lock hold time spans the operation *and* its release
				// transaction: that whole window is what concurrent
				// subscribers of these objects wait out.
				met.DeferLockHold.Observe(time.Since(h0))
			}
			rt.Stats().DeferredOps.Add(1)
			if opID != 0 {
				rt.RecordEvent(stm.Event{Kind: stm.EvDeferEnd, Owner: me, Aux: opID})
			}
		}()
		if met != nil {
			pprof.Do(context.Background(), pprofLabels, func(context.Context) { op(ctx) })
		} else {
			op(ctx)
		}
	})
}

func releaseAll(rt *stm.Runtime, me stm.OwnerID, locks []*txlock.Lock) {
	if len(locks) == 0 {
		return
	}
	_ = rt.AtomicAs(me, func(tx *stm.Tx) error {
		for _, l := range locks {
			// The release cannot fail: the locks were acquired under
			// `me` by the committed transaction. A reentrant depth >1
			// (the same object deferred by a later operation of the
			// same transaction) just decrements.
			if err := l.ReleaseAs(tx, me); err != nil {
				panic("core: deferred release failed: " + err.Error())
			}
		}
		return nil
	})
}
