package mempool

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"deferstm/internal/stm"
)

func TestAllocBasic(t *testing.T) {
	p := New()
	buf := p.Alloc(100)
	if len(buf) != 100 {
		t.Errorf("len = %d, want 100", len(buf))
	}
	if cap(buf) != 128 {
		t.Errorf("cap = %d, want 128 (size class)", cap(buf))
	}
	s := p.Stats()
	if s.Allocs != 1 || s.Outstanding != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestReleaseAndReuse(t *testing.T) {
	p := New()
	buf := p.Alloc(64)
	buf[0] = 0xAA
	p.Release(buf)
	if p.Cached() != 1 {
		t.Errorf("cached = %d, want 1", p.Cached())
	}
	buf2 := p.Alloc(64)
	if p.Stats().Reuses != 1 {
		t.Error("buffer not reused")
	}
	if &buf[0] != &buf2[0] {
		t.Error("reuse returned a different buffer")
	}
	if p.Stats().Outstanding != 1 {
		t.Errorf("outstanding = %d", p.Stats().Outstanding)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		n         int
		wantClass int
		wantSize  int
	}{
		{0, 0, 64},
		{1, 0, 64},
		{64, 0, 64},
		{65, 1, 128},
		{4096, 6, 4096},
		{4097, 7, 8192},
		{1 << 22, numClasses - 1, 1 << 22},
		{1<<22 + 1, -1, 1<<22 + 1},
	}
	for _, c := range cases {
		gc, gs := classFor(c.n)
		if gc != c.wantClass || gs != c.wantSize {
			t.Errorf("classFor(%d) = (%d,%d), want (%d,%d)", c.n, gc, gs, c.wantClass, c.wantSize)
		}
	}
}

func TestOversizedNotCached(t *testing.T) {
	p := New()
	buf := p.Alloc(1<<22 + 1)
	if len(buf) != 1<<22+1 {
		t.Fatalf("len = %d", len(buf))
	}
	p.Release(buf)
	if p.Cached() != 0 {
		t.Errorf("oversized buffer was cached")
	}
	if p.Stats().Outstanding != 0 {
		t.Errorf("outstanding = %d", p.Stats().Outstanding)
	}
}

func TestReleaseNilNoop(t *testing.T) {
	p := New()
	p.Release(nil)
	if s := p.Stats(); s.Frees != 0 {
		t.Errorf("nil release counted: %+v", s)
	}
}

func TestFreeTxCommitReclaims(t *testing.T) {
	p := New()
	rt := stm.NewDefault()
	buf := p.Alloc(256)
	if err := rt.Atomic(func(tx *stm.Tx) error {
		p.FreeTx(tx, buf)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.Cached() != 1 {
		t.Error("committed FreeTx did not reclaim")
	}
	if rt.Snapshot().DeferredFrees != 1 {
		t.Error("DeferredFrees stat not bumped")
	}
}

func TestFreeTxAbortDiscards(t *testing.T) {
	p := New()
	rt := stm.NewDefault()
	buf := p.Alloc(256)
	sentinel := errors.New("abort")
	_ = rt.Atomic(func(tx *stm.Tx) error {
		p.FreeTx(tx, buf)
		return sentinel
	})
	if p.Cached() != 0 {
		t.Error("aborted FreeTx reclaimed the buffer")
	}
	if p.Stats().Outstanding != 1 {
		t.Errorf("outstanding = %d, want 1", p.Stats().Outstanding)
	}
}

// TestFreeTxAfterDeferredOps: the buffer must still be usable inside the
// transaction's deferred hooks (Listing 1 orders frees last).
func TestFreeTxAfterDeferredOps(t *testing.T) {
	p := New()
	rt := stm.NewDefault()
	buf := p.Alloc(128)
	copy(buf, "hello")
	var reclaimedDuringHook bool
	if err := rt.Atomic(func(tx *stm.Tx) error {
		p.FreeTx(tx, buf)
		tx.AfterCommit(func() {
			reclaimedDuringHook = p.Cached() != 0
			_ = buf[:5] // still valid here
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if reclaimedDuringHook {
		t.Error("buffer reclaimed before deferred ops completed")
	}
	if p.Cached() != 1 {
		t.Error("buffer not reclaimed after hooks")
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bufs := make([][]byte, 0, 16)
			for i := 0; i < 500; i++ {
				bufs = append(bufs, p.Alloc(64+i%2048))
				if len(bufs) == 16 {
					for _, b := range bufs {
						p.Release(b)
					}
					bufs = bufs[:0]
				}
			}
			for _, b := range bufs {
				p.Release(b)
			}
		}()
	}
	wg.Wait()
	if s := p.Stats(); s.Outstanding != 0 {
		t.Errorf("outstanding = %d after all released", s.Outstanding)
	}
}

// Property: Alloc(n) always yields len == n and cap >= n, and cap is a
// power-of-two size class for in-range n.
func TestAllocLenCapProperty(t *testing.T) {
	p := New()
	f := func(raw uint16) bool {
		n := int(raw)%(1<<20) + 1
		buf := p.Alloc(n)
		ok := len(buf) == n && cap(buf) >= n
		p.Release(buf)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: release-then-alloc of the same class returns a buffer of the
// right length regardless of request sizes within the class.
func TestReuseSizeProperty(t *testing.T) {
	p := New()
	f := func(a, b uint8) bool {
		n1 := int(a)%64 + 1 // class 0
		n2 := int(b)%64 + 1 // class 0
		buf := p.Alloc(n1)
		p.Release(buf)
		buf2 := p.Alloc(n2)
		ok := len(buf2) == n2 && cap(buf2) == 64
		p.Release(buf2)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
