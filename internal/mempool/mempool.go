// Package mempool provides a size-classed buffer pool with transactional
// deferred reclamation.
//
// The paper's Listing 1 keeps a per-transaction tm_free_list: memory freed
// inside a transaction is not reclaimed at the free call (an aborted
// transaction must be able to roll back, and concurrent transactions may
// still be reading it until quiescence), and — the paper's extension —
// reclamation is delayed "a bit more, until all the deferred operations
// have completed", because deferred operations may refer to memory the
// transaction freed.
//
// FreeTx implements exactly that pipeline by queuing the reclamation on
// the transaction: commit → quiesce → deferred operations → reclaim. On
// abort the queued reclamation is discarded, so the free never happened.
package mempool

import (
	"sync"
	"sync/atomic"

	"deferstm/internal/stm"
)

const (
	minClassShift = 6  // 64 B
	maxClassShift = 22 // 4 MiB
	numClasses    = maxClassShift - minClassShift + 1
)

// Pool is a size-classed []byte allocator. Buffers are recycled through
// per-class free lists. The zero value is ready to use.
type Pool struct {
	mu      sync.Mutex
	classes [numClasses][][]byte

	allocs      atomic.Uint64
	reuses      atomic.Uint64
	frees       atomic.Uint64
	outstanding atomic.Int64
}

// New returns an empty Pool.
func New() *Pool { return &Pool{} }

// classFor returns the smallest size class index whose capacity >= n, and
// that capacity. Requests larger than the largest class are allocated
// exactly and never recycled (class -1).
func classFor(n int) (int, int) {
	if n <= 0 {
		n = 1
	}
	size := 1 << minClassShift
	for c := 0; c < numClasses; c++ {
		if n <= size {
			return c, size
		}
		size <<= 1
	}
	return -1, n
}

// Alloc returns a buffer of length n (capacity possibly larger), reusing a
// previously freed buffer when one is available. The contents are not
// zeroed for recycled buffers — callers own initialization, as with
// malloc.
func (p *Pool) Alloc(n int) []byte {
	p.allocs.Add(1)
	p.outstanding.Add(1)
	c, size := classFor(n)
	if c >= 0 {
		p.mu.Lock()
		if l := len(p.classes[c]); l > 0 {
			buf := p.classes[c][l-1]
			p.classes[c] = p.classes[c][:l-1]
			p.mu.Unlock()
			p.reuses.Add(1)
			return buf[:n]
		}
		p.mu.Unlock()
	}
	return make([]byte, n, size)
}

// Release returns a buffer to the pool immediately. Use only from
// non-transactional code that owns the buffer exclusively; transactional
// code must use FreeTx.
func (p *Pool) Release(buf []byte) {
	if buf == nil {
		return
	}
	p.frees.Add(1)
	p.outstanding.Add(-1)
	c, size := classFor(cap(buf))
	if c < 0 || cap(buf) != size {
		// Oversized or odd-capacity buffer: let the GC have it.
		// (cap mismatch happens only for buffers not from this pool.)
		if c >= 0 && cap(buf) >= 1<<minClassShift {
			// Round down to the class that fits entirely within cap.
			for c >= 0 && (1<<(minClassShift+c)) > cap(buf) {
				c--
			}
			if c >= 0 {
				p.mu.Lock()
				p.classes[c] = append(p.classes[c], buf[:1<<(minClassShift+c)])
				p.mu.Unlock()
			}
		}
		return
	}
	p.mu.Lock()
	p.classes[c] = append(p.classes[c], buf[:size])
	p.mu.Unlock()
}

// FreeTx frees buf as part of transaction tx: the reclamation runs only if
// tx commits, and only after the runtime has quiesced and all of tx's
// deferred operations have completed. Until then the buffer remains valid,
// so deferred operations may safely use memory the transaction logically
// freed (Listing 1).
func (p *Pool) FreeTx(tx *stm.Tx, buf []byte) {
	if buf == nil {
		return
	}
	tx.QueueFree(func() {
		p.Release(buf)
		tx.Runtime().Stats().DeferredFrees.Add(1)
	})
}

// PoolStats is a snapshot of pool counters.
type PoolStats struct {
	Allocs      uint64
	Reuses      uint64
	Frees       uint64
	Outstanding int64 // allocs - frees; >0 means buffers in flight
}

// Stats returns current counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Allocs:      p.allocs.Load(),
		Reuses:      p.reuses.Load(),
		Frees:       p.frees.Load(),
		Outstanding: p.outstanding.Load(),
	}
}

// Cached reports how many buffers are currently parked on free lists.
func (p *Pool) Cached() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for c := range p.classes {
		n += len(p.classes[c])
	}
	return n
}
