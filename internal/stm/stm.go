// Package stm implements a software transactional memory runtime in the
// style of TL2 (Dice, Shalev, Shavit), extended with the machinery the
// atomic-deferral paper (Zhou, Luchangco, Spear; SPAA/OPODIS 2017) requires:
//
//   - transactional variables (Var[T]) protected by versioned locks,
//   - a global version clock with timestamp extension,
//   - retry-based condition synchronization (Harris et al.) with
//     wake-on-write watchers: blocked retries park on their read set
//     and are woken by the first commit writing any of it (watch.go),
//   - irrevocability via a serial mode that drains all concurrent
//     transactions (GCC libitm's "serial" method group),
//   - a contention manager that escalates to serial mode after repeated
//     aborts (default 100 attempts for STM, 2 for HTM, the GCC defaults
//     quoted in the paper's Section 2),
//   - privatization-safe quiescence: after every writing commit the
//     committer waits until all transactions that began before its commit
//     have completed (committed or aborted),
//   - an ordered post-commit hook pipeline (used by package core to run
//     atomically deferred operations after quiescence), followed by
//     deferred memory reclamation (the tm_free_list of the paper's
//     Listing 1),
//   - a simulated best-effort hardware TM mode (ModeHTM) with capacity
//     aborts and no in-transaction irrevocability, modelling Intel TSX as
//     driven by GCC's HTM fast path.
//
// The runtime is explicit rather than compiler-driven: transactional data
// lives in Var[T] cells and transactions run as closures passed to
// (*Runtime).Atomic. This preserves every algorithmic effect the paper
// measures (conflict aborts, serialization stalls, quiescence stalls, lock
// subscription) without compiler instrumentation.
package stm

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Mode selects the execution engine for transactions started on a Runtime.
type Mode int

const (
	// ModeSTM is the software path: TL2 validation, quiescence after
	// writer commits, serialization after Config.SerializeAfter failed
	// attempts (default 100).
	ModeSTM Mode = iota
	// ModeHTM simulates a best-effort hardware TM: transactions abort
	// when their simulated cache footprint exceeds the configured
	// capacity or when they request irrevocability, and fall back to the
	// serial path after Config.SerializeAfter failed attempts (default
	// 2). Committed HTM transactions do not quiesce: hardware TM is
	// privatization-safe.
	ModeHTM
)

func (m Mode) String() string {
	switch m {
	case ModeSTM:
		return "STM"
	case ModeHTM:
		return "HTM"
	default:
		return "Mode(?)"
	}
}

// Default capacity limits for the simulated HTM, expressed in 64-byte
// cache lines. They approximate a TSX-era core: writes are bounded by the
// L1 data cache (32 KiB, 512 lines) and reads by a larger tracking
// structure.
const (
	DefaultHTMWriteLines = 512
	DefaultHTMReadLines  = 4096
)

// Config parameterizes a Runtime. The zero value is a usable STM
// configuration.
type Config struct {
	// Mode selects STM or simulated HTM execution.
	Mode Mode

	// MaxThreads bounds the number of concurrently executing
	// transactions (the size of the active-transaction registry used for
	// quiescence and serial-mode draining). 0 means 4 * GOMAXPROCS,
	// with a floor of 64.
	MaxThreads int

	// SerializeAfter is the number of failed attempts after which the
	// contention manager escalates a transaction to serial (irrevocable)
	// mode. 0 selects the GCC default for the mode: 100 for STM, 2 for
	// HTM.
	SerializeAfter int

	// SpinRetry is an explicit opt-out of watcher-based retry: instead
	// of registering on its read set and parking until a commit writes
	// one of the vars (the default; see watch.go), a retrying
	// transaction aborts and immediately re-executes, burning CPU
	// re-evaluating its condition. This is the paper's polling
	// implementation — Section 6.1 attributes part of the defer
	// overhead to exactly this — kept as a config so ablation A3 and
	// the reactive bench suite can measure the difference.
	SpinRetry bool

	// HTMReadLines and HTMWriteLines bound the simulated HTM footprint,
	// in cache lines. 0 selects the defaults above. Ignored in ModeSTM.
	HTMReadLines  int
	HTMWriteLines int

	// BackoffMaxSpins caps the contention manager's randomized
	// exponential backoff, in busy-wait iterations. 0 means 1 << 14.
	BackoffMaxSpins int

	// SnapshotChainDepth bounds each Var's version chain: how many
	// superseded values writers retain for active snapshot readers
	// (AtomicSnapshot; see snapshot.go). Deeper chains let slower
	// snapshots survive more overwrites of a hot var before falling
	// back to the validating path; each retained version costs one
	// small node plus the value box it pins. 0 means 8; negative
	// disables chains entirely (snapshots fall back on the first read
	// of a var overwritten since their pin).
	SnapshotChainDepth int

	// DisableQuiescence turns off post-commit quiescence. Real STMs
	// cannot do this safely (it is what makes privatization sound); it
	// exists for the Figure 1 ablation that measures how much of the
	// baseline's stall is quiescence.
	DisableQuiescence bool

	// Recorder, when non-nil, receives an Event for every transactional
	// action (begin, read, write, commit, abort, quiesce, lock and
	// deferral transitions), timestamped with version-clock values so
	// the history can be checked offline by internal/check. Nil (the
	// default) disables recording; every emission site is guarded by a
	// single nil test, so the disabled cost is one predictable branch.
	Recorder Recorder

	// Inject, when non-nil, enables seeded fault injection (forced
	// aborts and stalls at adversarial points). See Inject.
	Inject *Inject
}

func (c Config) withDefaults() Config {
	if c.MaxThreads <= 0 {
		c.MaxThreads = 4 * runtime.GOMAXPROCS(0)
		if c.MaxThreads < 64 {
			c.MaxThreads = 64
		}
	}
	if c.SerializeAfter <= 0 {
		if c.Mode == ModeHTM {
			c.SerializeAfter = 2
		} else {
			c.SerializeAfter = 100
		}
	}
	if c.HTMReadLines <= 0 {
		c.HTMReadLines = DefaultHTMReadLines
	}
	if c.HTMWriteLines <= 0 {
		c.HTMWriteLines = DefaultHTMWriteLines
	}
	if c.BackoffMaxSpins <= 0 {
		c.BackoffMaxSpins = 1 << 14
	}
	if c.SnapshotChainDepth == 0 {
		c.SnapshotChainDepth = 8
	}
	return c
}

// OwnerID identifies a lock-owning agent to transaction-friendly locks
// (package txlock). Each top-level Atomic execution is assigned a fresh
// OwnerID unless it inherits one via AtomicAs; deferred operations inherit
// the OwnerID of their deferring transaction so that reentrant lock
// acquisition works across the commit boundary, exactly as thread identity
// does in the paper's C++ runtime.
//
// The zero OwnerID means "nobody" and is never assigned.
type OwnerID uint64

// Runtime is a transactional memory domain: a global version clock, an
// active-transaction registry, a serial-mode gate, and statistics. Vars are
// not bound to a Runtime, but all transactions that access a given Var must
// run on the same Runtime for conflict detection and quiescence to be
// meaningful.
type Runtime struct {
	cfg Config

	clock atomic.Uint64 // global version clock (TL2)

	slots    []slot // active-transaction registry (quiescence, draining)
	slotHint atomic.Uint64

	serialMu   sync.Mutex   // serializes serial-mode transactions
	serialWant atomic.Int32 // >0: a serial transaction is pending/running
	// serialClear is closed when serialWant drops to zero, so blocked
	// transaction begins wake immediately instead of polling.
	serialClear atomic.Pointer[chan struct{}]

	// parked counts transactions currently blocked in watcher-based
	// retry (diagnostics; the waiters themselves live in per-var
	// watch sets, see watch.go).
	parked atomic.Int64

	// Snapshot registry (snapshot.go): active snapshot pins and the
	// truncation horizon writers consult when publishing. The map is
	// mutated only at snapshot begin/end — never on the read path — so
	// a mutex is cheap; snapHorizon is the lock-free digest writers
	// load once per commit.
	snapMu      sync.Mutex
	snapActive  map[uint64]uint64 // token → floor (registered pre-pin clock)
	snapCtr     uint64            // token source, under snapMu
	snapHorizon atomic.Uint64     // min active floor, or noSnapshotHorizon

	ownerCtr atomic.Uint64
	txIDCtr  atomic.Uint64 // history transaction IDs (recording only)

	rec Recorder  // nil = recording disabled
	inj *injector // nil = fault injection disabled

	// met is the attached latency instrumentation (nil = disabled).
	// Atomic because benchmarks attach metrics to warm runtimes whose
	// background goroutines (map migrators, WAL leader) already read it.
	met metricsPtr

	// quiesceTestHook, when non-nil, runs between quiesce's snapshot
	// pass and its re-poll loop, so tests can deterministically finish
	// (or prolong) pending transactions in that window.
	quiesceTestHook func()

	txPool sync.Pool

	stats Stats
}

// New creates a Runtime with the given configuration.
func New(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	rt := &Runtime{
		cfg:        cfg,
		slots:      make([]slot, cfg.MaxThreads),
		rec:        cfg.Recorder,
		snapActive: make(map[uint64]uint64),
	}
	rt.snapHorizon.Store(noSnapshotHorizon)
	rt.stats.init()
	if cfg.Inject != nil {
		rt.inj = newInjector(*cfg.Inject)
	}
	sc := make(chan struct{})
	close(sc) // initially clear: no serial transaction pending
	rt.serialClear.Store(&sc)
	rt.txPool.New = func() any { return newTx(rt) }
	return rt
}

// NewDefault creates an STM Runtime with default configuration.
func NewDefault() *Runtime { return New(Config{}) }

// Config returns the (defaulted) configuration the Runtime was built with.
func (rt *Runtime) Config() Config { return rt.cfg }

// Mode reports the runtime's execution mode.
func (rt *Runtime) Mode() Mode { return rt.cfg.Mode }

// NewOwner allocates a fresh lock-owner identity. Use this when a
// transaction-friendly lock must be held across multiple transactions by
// the same logical thread (e.g. acquire in one transaction, release in a
// later one).
func (rt *Runtime) NewOwner() OwnerID {
	return OwnerID(rt.ownerCtr.Add(1))
}

// GlobalClock returns the current value of the global version clock.
// It is exported for tests and diagnostics.
func (rt *Runtime) GlobalClock() uint64 { return rt.clock.Load() }

// nextWriteVersion draws a commit timestamp for a writing transaction
// that holds its commit locks — TL2's GV4 ("pass on failure") clock:
// one CAS attempt, and on failure the committer adopts the value the
// winning committer just installed instead of re-fighting for the
// line. Under K concurrent committers the clock line takes one
// successful RMW instead of K serialized ones, and the clock advances
// more slowly, so concurrent readers extend/validate less often.
//
// Sharing a timestamp is safe because both committers held their
// commit locks across the same instant (the winner's increment falls
// between the adopter's load and its reload), so their write sets are
// necessarily disjoint, and any transaction that could observe the
// difference aborts on validation. The second return value reports
// whether the caller won the increment itself: only then may it use
// the TL2 "nothing committed since begin" validation fast path —
// an adopted timestamp *means* another writer committed concurrently.
func (rt *Runtime) nextWriteVersion() (uint64, bool) {
	cur := rt.clock.Load()
	if rt.clock.CompareAndSwap(cur, cur+1) {
		return cur + 1, true
	}
	// The CAS failed, so the clock moved past cur after our load; the
	// reload is the (monotonic) value some concurrent winner installed
	// while we held our locks. Adopt it.
	return rt.clock.Load(), false
}
