package stm

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// Retry must discard AfterCommit hooks registered by the abandoned
// attempt: the hook of the final (committing) execution runs exactly
// once, hooks of retried executions never run.
func TestRetryDiscardsAfterCommitHooks(t *testing.T) {
	for _, spin := range []bool{false, true} {
		name := "blocking"
		if spin {
			name = "spin"
		}
		t.Run(name, func(t *testing.T) {
			rt := New(Config{SpinRetry: spin})
			gate := NewVar(0)
			var hookRuns, attempts atomic.Int64
			done := make(chan error, 1)
			go func() {
				done <- rt.Atomic(func(tx *Tx) error {
					attempts.Add(1)
					// Register first, then decide to wait: the hook of a
					// retried attempt must be thrown away.
					tx.AfterCommit(func() { hookRuns.Add(1) })
					if gate.Get(tx) == 0 {
						tx.Retry()
					}
					return nil
				})
			}()
			// Let the transaction block in retry at least once.
			time.Sleep(20 * time.Millisecond)
			if err := rt.Atomic(func(tx *Tx) error { gate.Set(tx, 1); return nil }); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if n := hookRuns.Load(); n != 1 {
				t.Fatalf("hook ran %d times across %d attempts, want exactly 1", n, attempts.Load())
			}
			if attempts.Load() < 2 {
				t.Fatalf("transaction never actually retried (attempts=%d)", attempts.Load())
			}
		})
	}
}

// A serial transaction that calls Retry falls back to the optimistic
// path and still discards the hooks of the abandoned serial attempt.
func TestSerialRetryDiscardsHooks(t *testing.T) {
	rt := NewDefault()
	gate := NewVar(0)
	var hookRuns atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- rt.AtomicSerial(func(tx *Tx) error {
			tx.AfterCommit(func() { hookRuns.Add(1) })
			if gate.Get(tx) == 0 {
				tx.Retry()
			}
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond)
	if err := rt.Atomic(func(tx *Tx) error { gate.Set(tx, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := hookRuns.Load(); n != 1 {
		t.Fatalf("hook ran %d times, want exactly 1", n)
	}
}

// Nested transactions flatten into the parent; under injected conflict
// aborts the whole flattened transaction re-executes and the nested
// writes must never be partially applied.
func TestNestedUnderInjectedConflicts(t *testing.T) {
	for _, mode := range []Mode{ModeSTM, ModeHTM} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := New(Config{
				Mode:   mode,
				Inject: &Inject{Seed: 42, ConflictPct: 40},
			})
			a, b := NewVar(0), NewVar(0)
			var hookRuns atomic.Int64
			const n = 200
			for i := 0; i < n; i++ {
				err := rt.Atomic(func(tx *Tx) error {
					a.Set(tx, a.Get(tx)+1)
					return tx.Nested(func(tx *Tx) error {
						b.Set(tx, b.Get(tx)+1)
						tx.AfterCommit(func() { hookRuns.Add(1) })
						return nil
					})
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			if a.Load() != n || b.Load() != n {
				t.Fatalf("a=%d b=%d, want both %d", a.Load(), b.Load(), n)
			}
			if hookRuns.Load() != n {
				t.Fatalf("nested hooks ran %d times, want %d", hookRuns.Load(), n)
			}
			snap := rt.Snapshot()
			if snap.InjectedFaults == 0 {
				t.Fatal("injector fired no faults; the test exercised nothing")
			}
			if snap.Commits != n {
				t.Fatalf("commits=%d, want %d", snap.Commits, n)
			}
		})
	}
}

// An error from a nested transaction aborts the whole flattened
// transaction: no writes (parent or nested) survive, no hooks run.
func TestNestedErrorAbortsWholeTransaction(t *testing.T) {
	rt := NewDefault()
	a, b := NewVar(0), NewVar(0)
	var hookRuns atomic.Int64
	sentinel := errors.New("nested failure")
	err := rt.Atomic(func(tx *Tx) error {
		a.Set(tx, 1)
		tx.AfterCommit(func() { hookRuns.Add(1) })
		return tx.Nested(func(tx *Tx) error {
			b.Set(tx, 1)
			return sentinel
		})
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if a.Load() != 0 || b.Load() != 0 {
		t.Fatalf("aborted writes leaked: a=%d b=%d", a.Load(), b.Load())
	}
	if hookRuns.Load() != 0 {
		t.Fatal("AfterCommit hook ran despite abort")
	}
}

// A nested Retry inside a contended parent still waits and re-executes
// the whole flattened transaction.
func TestNestedRetryUnderInjectedConflicts(t *testing.T) {
	rt := New(Config{Inject: &Inject{Seed: 7, ConflictPct: 30}})
	gate := NewVar(0)
	out := NewVar(0)
	done := make(chan error, 1)
	go func() {
		done <- rt.Atomic(func(tx *Tx) error {
			return tx.Nested(func(tx *Tx) error {
				if gate.Get(tx) == 0 {
					tx.Retry()
				}
				out.Set(tx, gate.Get(tx))
				return nil
			})
		})
	}()
	time.Sleep(20 * time.Millisecond)
	if err := rt.Atomic(func(tx *Tx) error { gate.Set(tx, 5); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if out.Load() != 5 {
		t.Fatalf("out=%d, want 5", out.Load())
	}
}
