package stm

import (
	"runtime"
	"sync/atomic"
)

// Inject configures seeded fault injection, used by the torture harness
// and the history-checker tests to drive the runtime onto adversarial
// schedules that a lucky run would never take: forced conflict aborts,
// forced HTM capacity aborts, artificially long commit write-back,
// stalls inside quiescence, and stalls in the window between a commit
// and its deferred operations (the window the atomic-deferral theorem
// is about).
//
// Decisions are drawn from a splitmix64 stream over Seed and a global
// decision counter, so a given seed reproduces the same decision
// sequence; under concurrency the assignment of decisions to
// transactions still depends on scheduling, so reproduction is
// statistical, not exact (see internal/check/README.md).
type Inject struct {
	// Seed selects the decision stream. The zero seed is valid.
	Seed uint64

	// ConflictPct forces this percentage of non-serial commit attempts
	// that reached write-back to abort as if validation had failed.
	ConflictPct int

	// CapacityPct forces this percentage of tracked HTM accesses to
	// overflow the simulated footprint (ModeHTM only).
	CapacityPct int

	// WriteBackDelayPct stalls this percentage of commits between
	// acquiring the commit locks and publishing, widening the locked
	// window concurrent readers can collide with.
	WriteBackDelayPct int

	// QuiesceStallPct stalls this percentage of quiescence waits,
	// lengthening the privatization wait.
	QuiesceStallPct int

	// PreHookStallPct stalls this percentage of commits between commit
	// completion and running post-commit hooks, widening the window in
	// which deferral locks are held but the λ has not yet run.
	PreHookStallPct int

	// RetryRegisterStallPct stalls this percentage of watcher-based
	// retry waits between watcher registration and the read-set
	// validation that decides whether to park — the window a lost
	// wakeup would have to slip through (see watch.go).
	RetryRegisterStallPct int

	// WakeDelayPct stalls this percentage of writing commits between
	// publishing their writes and waking watchers, widening the window
	// in which a parked reader's data is already new but its wakeup is
	// still pending.
	WakeDelayPct int

	// StallSpins is the busy-wait length of one stall, in iterations
	// (with periodic yields). 0 means 4096.
	StallSpins int
}

// injector is the runtime-internal state behind Config.Inject. All
// methods are safe on a nil receiver (injection disabled).
type injector struct {
	cfg Inject
	ctr atomic.Uint64
}

func newInjector(cfg Inject) *injector {
	if cfg.StallSpins <= 0 {
		cfg.StallSpins = 4096
	}
	return &injector{cfg: cfg}
}

// splitmix64 is the standard splitmix64 mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hit draws the next decision against pct.
func (in *injector) hit(pct int) bool {
	if in == nil || pct <= 0 {
		return false
	}
	n := in.ctr.Add(1)
	return splitmix64(in.cfg.Seed^n)%100 < uint64(pct)
}

// stall busy-waits for the configured stall length if the draw hits.
// It reports whether it stalled.
func (in *injector) stall(pct int) bool {
	if !in.hit(pct) {
		return false
	}
	for i := 0; i < in.cfg.StallSpins; i++ {
		if i%64 == 0 {
			runtime.Gosched()
		}
	}
	return true
}

func (in *injector) hitConflict() bool {
	return in != nil && in.hit(in.cfg.ConflictPct)
}

func (in *injector) hitCapacity() bool {
	return in != nil && in.hit(in.cfg.CapacityPct)
}

func (in *injector) stallWriteBack() bool {
	return in != nil && in.stall(in.cfg.WriteBackDelayPct)
}

func (in *injector) stallQuiesce() bool {
	return in != nil && in.stall(in.cfg.QuiesceStallPct)
}

func (in *injector) stallPreHook() bool {
	return in != nil && in.stall(in.cfg.PreHookStallPct)
}

func (in *injector) stallRetryRegister() bool {
	return in != nil && in.stall(in.cfg.RetryRegisterStallPct)
}

func (in *injector) stallWake() bool {
	return in != nil && in.stall(in.cfg.WakeDelayPct)
}
