// Property tests that close the loop between the runtime, the history
// recorder, the fault injector and the offline checker: every history
// the runtime produces — under forced aborts, delayed write-back and
// widened deferral windows, in both STM and simulated-HTM mode — must
// satisfy serializability, opacity, deferral atomicity and two-phase
// locking. This file is an external-test-package sibling of
// property_test.go because it imports internal/check and internal/core,
// which themselves depend on this package.
package stm_test

import (
	"sync"
	"testing"
	"testing/quick"

	"deferstm/internal/check"
	"deferstm/internal/core"
	"deferstm/internal/history"
	"deferstm/internal/stm"
)

type checkedPair struct {
	core.Deferrable
	a, b stm.Var[int]
}

// runCheckedMix drives a random mix of transfers, read-only audits,
// user aborts and atomic deferrals against a recording runtime with
// fault injection, then runs the checker over the recorded history.
func runCheckedMix(t *testing.T, mode stm.Mode, seed uint64, workers, opsPerWorker int) {
	t.Helper()
	log := history.New()
	rt := stm.New(stm.Config{
		Mode:     mode,
		Recorder: log,
		Inject: &stm.Inject{
			Seed:              seed,
			ConflictPct:       20,
			CapacityPct:       3,
			WriteBackDelayPct: 10,
			QuiesceStallPct:   10,
			PreHookStallPct:   25,
			StallSpins:        512,
		},
	})

	const nVars = 6
	vars := make([]*stm.Var[int], nVars)
	for i := range vars {
		vars[i] = stm.NewVar(100)
	}
	pair := &checkedPair{}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := seed + uint64(w)*0x9e3779b97f4a7c15 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < opsPerWorker; i++ {
				switch next(10) {
				case 0, 1, 2, 3: // transfer
					from, to := next(nVars), next(nVars)
					if from == to {
						continue
					}
					_ = rt.Atomic(func(tx *stm.Tx) error {
						f := vars[from].Get(tx)
						vars[from].Set(tx, f-1)
						vars[to].Set(tx, vars[to].Get(tx)+1)
						return nil
					})
				case 4, 5: // read-only audit
					_ = rt.Atomic(func(tx *stm.Tx) error {
						s := 0
						for _, v := range vars {
							s += v.Get(tx)
						}
						return nil
					})
				case 6: // user abort (discards everything)
					_ = rt.Atomic(func(tx *stm.Tx) error {
						vars[next(nVars)].Set(tx, -1)
						return errAbandon
					})
				case 7, 8: // atomic deferral on the pair
					_ = rt.Atomic(func(tx *stm.Tx) error {
						pair.Subscribe(tx)
						v := pair.a.Get(tx) + 1
						pair.a.Set(tx, v)
						core.AtomicDefer(tx, func(ctx *core.OpCtx) {
							core.Store(ctx, &pair.b, v)
						}, pair)
						return nil
					})
				default: // subscribing reader of the pair
					var a, b int
					_ = rt.Atomic(func(tx *stm.Tx) error {
						pair.Subscribe(tx)
						a = pair.a.Get(tx)
						b = pair.b.Get(tx)
						return nil
					})
					if a != b {
						t.Errorf("deferral invariant broken: a=%d b=%d", a, b)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	snap := rt.Snapshot()
	if snap.InjectedFaults == 0 {
		t.Error("fault injector fired no faults; schedule was not adversarial")
	}
	rep := check.History(log.Events())
	if !rep.OK() {
		t.Fatalf("checker rejected a recorded %s history (seed %d):\n%s", mode, seed, rep)
	}
	total := 0
	for _, v := range vars {
		total += v.Load()
	}
	if total != nVars*100 {
		t.Fatalf("transfers lost money: total %d", total)
	}
}

var errAbandon = errNamed("abandon")

type errNamed string

func (e errNamed) Error() string { return string(e) }

// Property: histories recorded under injected faults pass the checker,
// for both execution modes and arbitrary seeds.
func TestCheckerAcceptsInjectedHistoriesProperty(t *testing.T) {
	for _, mode := range []stm.Mode{stm.ModeSTM, stm.ModeHTM} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			f := func(seed uint32) bool {
				runCheckedMix(t, mode, uint64(seed), 4, 120)
				return !t.Failed()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
				t.Error(err)
			}
		})
	}
}

// A fixed-seed smoke variant that always runs, so `go test -run
// TestCheckerSmoke` exercises the full pipeline deterministically.
func TestCheckerSmoke(t *testing.T) {
	runCheckedMix(t, stm.ModeSTM, 1, 4, 200)
	runCheckedMix(t, stm.ModeHTM, 1, 4, 200)
}

// Recording disabled must leave no trace: a runtime without a recorder
// assigns no transaction IDs and emits nothing.
func TestNilRecorderFastPath(t *testing.T) {
	rt := stm.NewDefault()
	v := stm.NewVar(0)
	var id uint64 = 999
	if err := rt.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, 1)
		id = tx.ID()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("tx ID assigned without a recorder: %d", id)
	}
}
