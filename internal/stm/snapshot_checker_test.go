// Closes the loop for snapshot mode: every history the runtime records
// under concurrent snapshot scans, transactional writers, StoreDirect
// publishers and forced chain truncation must satisfy the offline
// snapshot-consistency axioms (and all the existing ones). An
// external-test-package sibling of checker_property_test.go for the
// same import-cycle reason.
package stm_test

import (
	"sync"
	"testing"

	"deferstm/internal/check"
	"deferstm/internal/history"
	"deferstm/internal/stm"
)

func runSnapshotMix(t *testing.T, depth int, seed uint64) {
	t.Helper()
	log := history.New()
	rt := stm.New(stm.Config{
		Recorder:           log,
		SnapshotChainDepth: depth,
	})
	const nVars = 5
	vars := make([]*stm.Var[int], nVars)
	for i := range vars {
		vars[i] = stm.NewVar(100)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(rng uint64) {
			defer wg.Done()
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for op := 0; op < 60; op++ {
				i, j := next(nVars), next(nVars)
				if i == j {
					j = (j + 1) % nVars
				}
				if err := rt.Atomic(func(tx *stm.Tx) error {
					amt := 1 + next(3)
					vars[i].Set(tx, vars[i].Get(tx)-amt)
					vars[j].Set(tx, vars[j].Get(tx)+amt)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if next(8) == 0 {
					vars[i].StoreDirect(rt, vars[i].Load())
				}
			}
		}(seed + uint64(w)*0x9e3779b97f4a7c15 + 1)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := 0; op < 40; op++ {
				sum := 0
				if err := rt.AtomicSnapshot(func(tx *stm.Tx) error {
					sum = 0
					for _, v := range vars {
						sum += v.Get(tx)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if sum != nVars*100 {
					t.Errorf("inconsistent cut: sum %d, want %d", sum, nVars*100)
					return
				}
			}
		}()
	}
	wg.Wait()
	r := check.History(log.Events())
	if !r.OK() {
		t.Fatalf("depth %d: recorded snapshot history rejected:\n%s", depth, r)
	}
	s := rt.Snapshot()
	if s.Snapshots+s.SnapshotFallbacks != 80 {
		t.Fatalf("depth %d: %d snapshot commits + %d fallbacks, want 80 scans total",
			depth, s.Snapshots, s.SnapshotFallbacks)
	}
	if depth == 1 && s.SnapshotTruncations == 0 {
		t.Logf("depth 1 run recorded no truncations (timing-dependent); fallbacks=%d", s.SnapshotFallbacks)
	}
}

// TestCheckerAcceptsRecordedSnapshotHistories runs the mix at a depth
// that serves every snapshot and at depth 1, where truncation forces
// overflow fallbacks — the checker must accept both (the fallback
// attempts abort with AbortCauseSnapshot and re-run validating, which
// is exactly the exemption the truncation axiom encodes).
func TestCheckerAcceptsRecordedSnapshotHistories(t *testing.T) {
	for _, depth := range []int{0 /* default 8 */, 1, 64} {
		runSnapshotMix(t, depth, 0xdecafbad+uint64(depth))
	}
}
