package stm

import (
	"strings"
	"sync/atomic"

	"deferstm/internal/obs"
)

// Metrics is the runtime's latency-distribution instrumentation: one
// histogram or gauge per phase the paper's argument cares about — the
// transaction's critical window, the deferred tail that was moved out of
// it, and the quiesce/backoff stalls in between. The struct also carries
// the instruments for the cooperating layers (core's deferral lock hold,
// wal's group commit, ds/kv's resize migration): they live here for the
// same reason the WAL counters live in Stats — every layer already
// reaches the Runtime, so one attach point instruments the whole stack.
//
// All fields are nil-safe instruments: a Metrics built with a nil
// registry records but exposes nothing, and a Runtime with no Metrics
// attached pays exactly one atomic pointer load per transaction.
type Metrics struct {
	// TxLatency is the end-to-end latency of successful top-level
	// Atomic calls: first attempt start → commit published (quiesce
	// included, deferred hooks excluded — the paper's point is that
	// the hooks are *not* part of the caller-visible critical window).
	TxLatency *obs.Histogram
	// Backoff is the time spent in contention-manager backoff between
	// an abort and its re-execution.
	Backoff *obs.Histogram
	// QuiesceWait is the distribution of actual privatization waits
	// (quiesce calls that found no pre-commit transaction running
	// observe nothing, matching the Stats.QuiesceWaits counter).
	QuiesceWait *obs.Histogram

	// DeferDepth is the number of deferred operations enqueued by
	// committed transactions and not yet finished executing.
	DeferDepth *obs.Gauge
	// DeferExec is the post-commit execution latency of one deferred
	// operation (AfterCommit hook), measured at the hook pipeline.
	DeferExec *obs.Histogram
	// DeferLockHold is how long a deferral holds its transaction-
	// friendly locks after commit: λ start → all locks released
	// (measured by package core).
	DeferLockHold *obs.Histogram

	// WALAppendDurable is the append→durable lag of one WAL record:
	// Append enqueued → covering fsync returned (measured by package
	// wal; this is the latency PR 2's group commit trades for batching).
	WALAppendDurable *obs.Histogram
	// WALBatchWait is how long a group-commit batch waited for its
	// flush: oldest enqueued record → flush start.
	WALBatchWait *obs.Histogram

	// ResizeChunk is the latency of one resize-migration chunk
	// transaction in the transactional hashmaps (ds, kv).
	ResizeChunk *obs.Histogram

	// RetryWaiters is the number of transactions currently parked in
	// watcher-based retry (watch.go).
	RetryWaiters *obs.Gauge
	// WatcherCount is the number of live watcher registrations across
	// all vars (one parked transaction registers on every var of its
	// read set, so WatcherCount >= RetryWaiters).
	WatcherCount *obs.Gauge
	// RetryBlocked is how long one blocked Retry stayed parked: park →
	// resumed (woken or cancelled).
	RetryBlocked *obs.Histogram
	// WakeLatency is the wakeup propagation delay: the waking commit's
	// broadcast → the parked transaction running again. This is the
	// latency the reactive bench ladder reports at p99.
	WakeLatency *obs.Histogram
}

// NewMetrics builds the full instrument set, registered on reg. A nil
// registry is legal: the instruments still record (for StmResult
// percentiles in internal/bench) but are exposed nowhere.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		TxLatency: reg.NewHistogram("deferstm_tx_latency_seconds",
			"End-to-end latency of successful top-level transactions (quiesce included, deferred ops excluded)."),
		Backoff: reg.NewHistogram("deferstm_tx_backoff_seconds",
			"Contention-manager backoff between an abort and re-execution."),
		QuiesceWait: reg.NewHistogram("deferstm_quiesce_wait_seconds",
			"Privatization-safety waits that actually blocked (matches the QuiesceWaits counter)."),
		DeferDepth: reg.NewGauge("deferstm_defer_queue_depth",
			"Deferred operations enqueued by committed transactions and not yet finished."),
		DeferExec: reg.NewHistogram("deferstm_defer_exec_seconds",
			"Post-commit execution latency of one deferred operation."),
		DeferLockHold: reg.NewHistogram("deferstm_defer_lock_hold_seconds",
			"Time a deferred operation holds its transaction-friendly locks after commit."),
		WALAppendDurable: reg.NewHistogram("deferstm_wal_append_durable_seconds",
			"WAL append->durable lag per record (group commit batching delay plus fsync)."),
		WALBatchWait: reg.NewHistogram("deferstm_wal_batch_wait_seconds",
			"Group-commit batch wait: oldest enqueued record to flush start."),
		ResizeChunk: reg.NewHistogram("deferstm_resize_chunk_seconds",
			"Latency of one hashmap resize-migration chunk transaction."),
		RetryWaiters: reg.NewGauge("deferstm_retry_waiters",
			"Transactions currently parked in watcher-based retry."),
		WatcherCount: reg.NewGauge("deferstm_retry_watchers",
			"Live watcher registrations across all transactional variables."),
		RetryBlocked: reg.NewHistogram("deferstm_retry_blocked_seconds",
			"Time one blocked Retry stayed parked before resuming."),
		WakeLatency: reg.NewHistogram("deferstm_retry_wake_latency_seconds",
			"Wakeup propagation delay: waking commit broadcast to parked transaction resuming."),
	}
}

// SetMetrics attaches (or detaches, with nil) the metrics set. Safe to
// call while transactions and background goroutines are running: the
// pointer is read atomically at each instrumentation site, so a
// benchmark can attach metrics to an already-warm runtime.
func (rt *Runtime) SetMetrics(m *Metrics) { rt.met.Store(m) }

// Metrics returns the attached metrics set, or nil. Cooperating
// packages (core, wal, ds, kv) use this to reach their instruments.
func (rt *Runtime) Metrics() *Metrics { return rt.met.Load() }

// metricsPtr is the Runtime field type (kept out of stm.go's struct
// literal noise).
type metricsPtr = atomic.Pointer[Metrics]

// RegisterStats exposes the runtime's monotonic counters as Prometheus
// series on reg, reading each value on demand from snap. Taking a
// snapshot function rather than a *Runtime lets callers that rebuild
// runtimes per phase (cmd/kvbench) swap the underlying runtime behind a
// stable set of series.
func RegisterStats(reg *obs.Registry, snap func() StatsSnapshot) {
	if reg == nil {
		return
	}
	type series struct {
		name string
		get  func(StatsSnapshot) uint64
	}
	for _, sr := range []series{
		{"deferstm_tx_starts_total", func(s StatsSnapshot) uint64 { return s.Starts }},
		{"deferstm_tx_commits_total", func(s StatsSnapshot) uint64 { return s.Commits }},
		{`deferstm_aborts_total{reason="conflict"}`, func(s StatsSnapshot) uint64 { return s.AbortsConflict }},
		{`deferstm_aborts_total{reason="capacity"}`, func(s StatsSnapshot) uint64 { return s.AbortsCapacity }},
		{`deferstm_aborts_total{reason="syscall"}`, func(s StatsSnapshot) uint64 { return s.AbortsSyscall }},
		{`deferstm_aborts_total{reason="user"}`, func(s StatsSnapshot) uint64 { return s.UserAborts }},
		{"deferstm_tx_retries_total", func(s StatsSnapshot) uint64 { return s.Retries }},
		{"deferstm_retry_parks_total", func(s StatsSnapshot) uint64 { return s.RetryParks }},
		{"deferstm_retry_wakes_total", func(s StatsSnapshot) uint64 { return s.RetryWakes }},
		{"deferstm_tx_extensions_total", func(s StatsSnapshot) uint64 { return s.Extensions }},
		{"deferstm_serializations_total", func(s StatsSnapshot) uint64 { return s.Serializations }},
		{"deferstm_serial_runs_total", func(s StatsSnapshot) uint64 { return s.SerialRuns }},
		{"deferstm_quiesce_waits_total", func(s StatsSnapshot) uint64 { return s.QuiesceWaits }},
		{"deferstm_quiesce_wait_nanos_total", func(s StatsSnapshot) uint64 { return s.QuiesceNanos }},
		{"deferstm_deferred_ops_total", func(s StatsSnapshot) uint64 { return s.DeferredOps }},
		{"deferstm_deferred_frees_total", func(s StatsSnapshot) uint64 { return s.DeferredFrees }},
		{"deferstm_injected_faults_total", func(s StatsSnapshot) uint64 { return s.InjectedFaults }},
		{"deferstm_wal_records_total", func(s StatsSnapshot) uint64 { return s.WALRecords }},
		{"deferstm_wal_flushes_total", func(s StatsSnapshot) uint64 { return s.WALFlushes }},
		{"deferstm_wal_fsyncs_total", func(s StatsSnapshot) uint64 { return s.WALFsyncs }},
		{"deferstm_wal_checkpoints_total", func(s StatsSnapshot) uint64 { return s.WALCheckpoints }},
		{"deferstm_snapshot_txs_total", func(s StatsSnapshot) uint64 { return s.Snapshots }},
		{"deferstm_snapshot_reads_total", func(s StatsSnapshot) uint64 { return s.SnapshotReads }},
		{"deferstm_snapshot_fallbacks_total", func(s StatsSnapshot) uint64 { return s.SnapshotFallbacks }},
		{"deferstm_snapshot_truncations_total", func(s StatsSnapshot) uint64 { return s.SnapshotTruncations }},
	} {
		get := sr.get
		help := "Runtime counter (see stm.StatsSnapshot)."
		if strings.HasPrefix(sr.name, "deferstm_aborts_total") {
			help = "Aborted transaction attempts by reason."
		}
		reg.Counter(sr.name, help, func() uint64 { return get(snap()) })
	}
}
