package stm

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Watcher-based retry: instead of re-polling (or waking every waiter on
// every commit through one global channel), a transaction blocked in
// Retry registers itself on each Var of its read set and parks until the
// first commit that writes any of them broadcasts. Blocked readers
// therefore consume no CPU and are woken exactly by the commits that can
// change their condition — the cooperation that lets a server park
// thousands of idle connections on transactional state.
//
// The no-lost-wakeup protocol (see DESIGN.md §10):
//
//  1. the aborted attempt's read set is frozen in tx.reads;
//  2. the waiter registers on every read-set var. Registration ends with
//     a seq-cst counter increment (watchSet.n), making the waiter
//     visible to committers;
//  3. the waiter re-validates the read set against the recorded lock
//     words; if anything changed it unregisters and re-executes
//     immediately;
//  4. otherwise it parks until woken.
//
// A committer publishes its writes (seq-cst version stores into the var
// lock words) and only then checks each written var for watchers.
// Interleave the two arbitrarily and at least one side sees the other:
// if the committer's watcher check missed the registration, then in the
// seq-cst total order the registration — and hence the waiter's
// subsequent validation — follows the committer's version store, so
// validation observes the new version and the waiter never parks. If
// instead validation saw the old version, the registration preceded the
// committer's check, which therefore finds and wakes the waiter.

// retryWaiter is one park session. Sessions are allocated per park (the
// park path is already the slow path), so a straggling waker holding a
// stale reference can at worst re-close an already-woken session's
// channel guard — never wake the wrong sleep.
type retryWaiter struct {
	ch chan struct{}

	mu     sync.Mutex
	done   bool
	stamp  bool      // metrics attached: record wakeAt in wake()
	wakeAt time.Time // when the waking commit broadcast (wake latency)
}

// wake broadcasts the session exactly once. Called by committers (and
// StoreDirect) while holding the watchSet mutex of the written var.
func (w *retryWaiter) wake() {
	w.mu.Lock()
	if !w.done {
		w.done = true
		if w.stamp {
			w.wakeAt = time.Now()
		}
		close(w.ch)
	}
	w.mu.Unlock()
}

// watchSet is the lazily installed per-var watcher registry. It is
// created the first time a retry parks on the var and then lives for the
// var's lifetime, so the committer fast path for a never-watched var is
// one nil pointer load, and for a previously-watched one an additional
// counter load.
type watchSet struct {
	n  atomic.Int32 // registered waiters; the committer's fast-path check
	mu sync.Mutex
	m  map[*retryWaiter]struct{}
}

// watchers returns the var's watchSet, installing one on first use.
func (m *varMeta) watchers() *watchSet {
	if ws := m.watch.Load(); ws != nil {
		return ws
	}
	ws := &watchSet{m: make(map[*retryWaiter]struct{}, 2)}
	if m.watch.CompareAndSwap(nil, ws) {
		return ws
	}
	return m.watch.Load()
}

// add registers w, reporting whether it was newly added (a read set may
// contain the same var several times; only the first entry registers).
// The counter increment is the waiter's Dekker store: it must complete
// before the read-set validation that decides whether to park.
func (ws *watchSet) add(w *retryWaiter) bool {
	ws.mu.Lock()
	_, dup := ws.m[w]
	if !dup {
		ws.m[w] = struct{}{}
	}
	ws.mu.Unlock()
	if !dup {
		ws.n.Add(1)
	}
	return !dup
}

// remove unregisters w if present. Only the owning waiter removes its
// sessions, so the map never accumulates dead entries.
func (ws *watchSet) remove(w *retryWaiter) {
	ws.mu.Lock()
	if _, ok := ws.m[w]; ok {
		delete(ws.m, w)
		ws.n.Add(-1)
	}
	ws.mu.Unlock()
}

// wakeAll broadcasts every registered session.
func (ws *watchSet) wakeAll() {
	ws.mu.Lock()
	for w := range ws.m {
		w.wake()
	}
	ws.mu.Unlock()
}

// wakeWatchers is the committer-side hook, called for each written var
// after the commit has published. The common case (no watcher ever, or
// none registered now) is one or two atomic loads.
func (m *varMeta) wakeWatchers() {
	if ws := m.watch.Load(); ws != nil && ws.n.Load() > 0 {
		ws.wakeAll()
	}
}

// waitForRetry blocks the calling goroutine after an explicit Retry
// abort until some location in tx's (pre-abort) read set may have been
// committed to. It returns a non-nil error only when ctx is cancelled,
// which aborts the whole Atomic call.
func (rt *Runtime) waitForRetry(ctx context.Context, tx *Tx) error {
	if len(tx.reads) == 0 {
		// A retry that read nothing identifies no commit to wait for;
		// as in the paper's runtime it can only spin.
		runtime.Gosched()
		return ctxErr(ctx)
	}
	if rt.cfg.SpinRetry {
		// Explicit opt-out: the paper's polling retry. The attempt
		// re-executes immediately, burning CPU re-evaluating its
		// condition (Section 6.1 measures this; ablation A3 and the
		// reactive bench suite compare it against parking).
		runtime.Gosched()
		return ctxErr(ctx)
	}
	return rt.parkOnReadSet(ctx, tx)
}

// parkOnReadSet implements steps 2–4 of the protocol above.
func (rt *Runtime) parkOnReadSet(ctx context.Context, tx *Tx) error {
	met := rt.met.Load()
	w := &retryWaiter{ch: make(chan struct{}), stamp: met != nil}

	// Register before validating: a commit that lands after our
	// validation must find us registered.
	added := 0
	for i := range tx.reads {
		e := &tx.reads[i]
		if e.m.watchers().add(w) {
			added++
			if rt.rec != nil {
				// A read of a never-written zero-value Var has no ID yet;
				// assign one now so the registration names the same var a
				// later write will name (the checker matches them).
				e.m.ensureID()
				rt.recEvent(Event{Kind: EvWatchRegister, TxID: tx.id,
					Owner: tx.owner, Var: e.m.idLoad(), Ver: wordVersion(e.ver)})
			}
		}
	}
	if met != nil {
		met.WatcherCount.Add(int64(added))
	}
	// Injected stall inside the would-be lost-wakeup window: between
	// registration and the validation/park decision.
	if rt.inj.stallRetryRegister() {
		rt.stats.InjectedFaults.Add(1)
	}

	cause := uint64(AuxWakeImmediate)
	var err error
	if !tx.readSetChanged() {
		rt.stats.RetryParks.Add(1)
		rt.parked.Add(1)
		var t0 time.Time
		if met != nil {
			met.RetryWaiters.Add(1)
			t0 = time.Now()
		}
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-w.ch:
			cause = AuxWakeCommit
			rt.stats.RetryWakes.Add(1)
			if met != nil {
				met.RetryBlocked.Observe(time.Since(t0))
				if !w.wakeAt.IsZero() {
					met.WakeLatency.Observe(time.Since(w.wakeAt))
				}
			}
		case <-done:
			cause = AuxWakeCancel
			err = ctx.Err()
			if met != nil {
				met.RetryBlocked.Observe(time.Since(t0))
			}
		}
		rt.parked.Add(-1)
		if met != nil {
			met.RetryWaiters.Add(-1)
		}
	}

	// Unregister from every watched var (cancellation must not leak
	// watcher entries; normal wakes must not accumulate dead sessions).
	for i := range tx.reads {
		if ws := tx.reads[i].m.watch.Load(); ws != nil {
			ws.remove(w)
		}
	}
	if met != nil {
		met.WatcherCount.Add(int64(-added))
	}
	if rt.rec != nil {
		rt.recEvent(Event{Kind: EvWake, TxID: tx.id, Owner: tx.owner,
			Ver: rt.clock.Load(), Aux: cause})
	}
	return err
}

// ctxErr returns ctx's error, treating a nil context as never cancelled.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// RetryParked reports how many transactions are currently parked in
// watcher-based retry (diagnostics and watcher-leak tests).
func (rt *Runtime) RetryParked() int64 { return rt.parked.Load() }
