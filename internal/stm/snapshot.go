package stm

import "sync/atomic"

// Snapshot reads: multi-version concurrency for long read-only
// transactions.
//
// A TL2 read-only transaction of any real length is doomed under write
// traffic: every commit that overwrites something it read forces an
// extend-or-abort, and in the worst case the transaction escalates to
// serial mode and stalls every writer. Snapshot mode removes both
// failure modes by letting writers keep a short per-Var version chain
// (the superseded value and its commit window) and letting a read-only
// transaction pin the global clock once at begin and resolve every read
// against that pinned timestamp:
//
//   - the transaction never validates and never extends — each read is
//     independently consistent at the pinned version, so the whole
//     transaction is trivially serializable there;
//   - writers never see it — it occupies no registry slot, so commits
//     neither quiesce on it nor drain it for serial mode, and it takes
//     no locks a writer could collide with.
//
// Memory stays bounded two ways. The *truncation horizon* — the oldest
// pinned version over all active snapshots, maintained below — lets
// writers drop chain entries no active snapshot can need (and drop the
// chain entirely while no snapshot is active). The configured depth
// bound (Config.SnapshotChainDepth) caps each chain regardless; a
// snapshot that reads past a depth-truncated chain never sees a wrong
// value — it misses, aborts with abortSnapshot, and the Atomic loop
// falls back to the ordinary validating read-only path.
//
// Visibility (why a pinned reader never misses a committed-in-time
// value): beginSnapshot registers the snapshot's floor (a clock load)
// and publishes it into snapHorizon *before* loading the clock a second
// time to obtain the pin sv. With Go's sequentially consistent
// atomics, any writer whose commit timestamp wv exceeds sv performed
// its clock increment after our second load, hence loads snapHorizon
// after our store, hence sees horizon ≤ floor ≤ sv and links the value
// it supersedes onto the chain. Writers with wv ≤ sv drew their
// timestamps before the pin, and their publishes hold the var's lock
// bit — a snapshot read spins while the lock bit is set, so in-flight
// publishes at or below sv are waited out, never torn.

// noSnapshotHorizon is snapHorizon's value while no snapshot is active:
// greater than every possible pin, so writers drop chains entirely.
const noSnapshotHorizon = ^uint64(0)

// histNode is one superseded version of a Var: val (a boxed *T) was the
// committed value for clock times in [ver, until). Nodes are immutable
// once linked except for next, which the (per-var, lock-serialized)
// writer may cut to nil during truncation; readers therefore load next
// atomically and tolerate walking a just-cut suffix — its values are
// still correct for their windows, only retention changed.
type histNode struct {
	val   any    // boxed *T, exactly as Var.val stores it
	ver   uint64 // commit version this value was published at
	until uint64 // commit version of the write that superseded it
	next  atomic.Pointer[histNode]
}

// beginSnapshot registers a new snapshot and returns its registry token
// and pinned read version. See the two-load protocol note above: the
// floor is registered and published into snapHorizon strictly before
// the pin is drawn.
func (rt *Runtime) beginSnapshot() (token, sv uint64) {
	rt.snapMu.Lock()
	floor := rt.clock.Load()
	rt.snapCtr++
	token = rt.snapCtr
	rt.snapActive[token] = floor
	if floor < rt.snapHorizon.Load() {
		rt.snapHorizon.Store(floor)
	}
	rt.snapMu.Unlock()
	return token, rt.clock.Load()
}

// endSnapshot deregisters a snapshot and recomputes the truncation
// horizon (the minimum floor over the snapshots still active, or
// noSnapshotHorizon when none remain).
func (rt *Runtime) endSnapshot(token uint64) {
	rt.snapMu.Lock()
	delete(rt.snapActive, token)
	min := uint64(noSnapshotHorizon)
	for _, f := range rt.snapActive {
		if f < min {
			min = f
		}
	}
	rt.snapHorizon.Store(min)
	rt.snapMu.Unlock()
}

// SnapshotHorizon reports the current truncation horizon: the oldest
// pinned version any active snapshot may read at, or ^uint64(0) when no
// snapshot is active (diagnostics and tests).
func (rt *Runtime) SnapshotHorizon() uint64 { return rt.snapHorizon.Load() }

// ActiveSnapshots reports how many snapshot transactions are currently
// registered (diagnostics and tests).
func (rt *Runtime) ActiveSnapshots() int {
	rt.snapMu.Lock()
	n := len(rt.snapActive)
	rt.snapMu.Unlock()
	return n
}

// runSnapshot executes one attempt in snapshot mode: pin, run, done.
// There is no commit protocol — the transaction wrote nothing and each
// read was individually consistent at the pin, so the whole execution
// is serializable at sv. It holds no registry slot, so writers neither
// quiesce on it nor drain it; its only footprint is the registered
// floor that holds the truncation horizon down while it runs.
func (rt *Runtime) runSnapshot(tx *Tx, fn func(tx *Tx) error) (out txOutcome) {
	token, sv := rt.beginSnapshot()
	defer rt.endSnapshot(token)
	tx.rv = sv
	tx.slotIdx = -1
	tx.snap = true
	tx.ro = true
	tx.htm = false
	tx.slow = rt.rec != nil
	tx.active = true
	if rt.rec != nil {
		tx.beginRecord(sv, AuxSnapshot)
	}

	defer func() {
		tx.active = false
		if r := recover(); r != nil {
			if sig, ok := r.(txSignal); ok {
				out = txOutcome{sig: sig}
				return
			}
			tx.reset()
			panic(r)
		}
	}()

	err := fn(tx)
	if err != nil {
		return txOutcome{userErr: err}
	}
	rt.stats.Snapshots.Add(1)
	if tx.snapReads > 0 {
		rt.stats.SnapshotReads.Add(tx.snapReads)
		tx.snapReads = 0
	}
	// EvCommit carries Ver 0 (nothing was written) and AuxSnapshot; the
	// pin is on the attempt's EvBegin, which the snapshot-consistency
	// checker reads it from.
	tx.flushCommitEvents(0, AuxSnapshot)
	return txOutcome{committed: true}
}

// AtomicSnapshot executes fn as a snapshot (multi-version) read-only
// transaction: every Get resolves to the value committed at the global
// clock as of the transaction's start, however long fn runs and however
// heavily writers commit meanwhile. fn must not write (Set panics), and
// must be safe to re-execute: if a read outruns the bounded version
// chains (or fn calls Retry), the closure transparently re-runs on the
// ordinary validating read-only path.
func (rt *Runtime) AtomicSnapshot(fn func(tx *Tx) error) error {
	return rt.run(nil, rt.NewOwner(), fn, false, true)
}

// AtomicSnapshotAs is AtomicSnapshot with an explicit lock-owner
// identity.
func (rt *Runtime) AtomicSnapshotAs(owner OwnerID, fn func(tx *Tx) error) error {
	return rt.run(nil, owner, fn, false, true)
}
