// Tests for the context-aware entry points (context.go): cancellation
// is honored at the three documented points — before the first attempt,
// while parked in Retry, and after a conflict backoff — and never
// interrupts fn or un-commits a committed transaction.
package stm_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"deferstm/internal/stm"
)

func TestAtomicCtxCommits(t *testing.T) {
	rt := stm.NewDefault()
	v := stm.NewVar(0)
	if err := rt.AtomicCtx(context.Background(), func(tx *stm.Tx) error {
		v.Set(tx, 1)
		return nil
	}); err != nil {
		t.Fatalf("AtomicCtx: %v", err)
	}
	if v.Load() != 1 {
		t.Fatalf("v = %d, want 1", v.Load())
	}
}

// TestAtomicCtxPreCancelled pins that an already-expired context stops
// the transaction before fn runs even once.
func TestAtomicCtxPreCancelled(t *testing.T) {
	rt := stm.NewDefault()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := rt.AtomicCtx(ctx, func(tx *stm.Tx) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("fn executed under a pre-cancelled context")
	}
}

// TestAtomicCtxCancelWhileParked is the satellite's core case: a
// transaction parked in watcher-based Retry must return ctx.Err() on
// cancellation and unregister from every watched var — the watcher sets
// and the parked gauge both drop back to zero.
func TestAtomicCtxCancelWhileParked(t *testing.T) {
	rt := stm.NewDefault()
	a, b := stm.NewVar(0), stm.NewVar(0)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- rt.AtomicCtx(ctx, func(tx *stm.Tx) error {
			if a.Get(tx) == 0 && b.Get(tx) == 0 {
				tx.Retry()
			}
			return nil
		})
	}()
	waitParked(t, rt, 1)
	if a.Watchers() != 1 || b.Watchers() != 1 {
		t.Fatalf("watchers a=%d b=%d, want 1/1", a.Watchers(), b.Watchers())
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked transaction did not return after cancellation")
	}
	if a.Watchers() != 0 || b.Watchers() != 0 {
		t.Fatalf("watcher entries leaked on cancel: a=%d b=%d", a.Watchers(), b.Watchers())
	}
	if n := rt.RetryParked(); n != 0 {
		t.Fatalf("RetryParked = %d after cancel, want 0", n)
	}
	s := rt.Snapshot()
	if s.RetryParks != 1 || s.RetryWakes != 0 {
		t.Fatalf("parks=%d wakes=%d; a cancelled park is not a wake", s.RetryParks, s.RetryWakes)
	}
}

// TestAtomicSerialCtxDeadlineDuringRetry drives a serial (irrevocable)
// transaction into Retry — which re-runs optimistically and parks — and
// checks that the deadline unblocks it and that the runtime is not left
// wedged in serial mode afterwards.
func TestAtomicSerialCtxDeadlineDuringRetry(t *testing.T) {
	rt := stm.NewDefault()
	v := stm.NewVar(0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := rt.AtomicSerialCtx(ctx, func(tx *stm.Tx) error {
		if v.Get(tx) == 0 {
			tx.Retry()
		}
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if n := rt.RetryParked(); n != 0 {
		t.Fatalf("RetryParked = %d after deadline, want 0", n)
	}
	// The runtime must still run transactions (serial mode fully exited).
	done := make(chan error, 1)
	go func() {
		done <- rt.Atomic(func(tx *stm.Tx) error {
			v.Set(tx, 1)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follow-up transaction: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runtime wedged after a serial transaction's deadline")
	}
}

// TestAtomicCtxCancelDuringConflictBackoff forces every optimistic
// attempt to abort with a conflict (injection, serialization disabled)
// so the transaction lives in the backoff path, then cancels.
func TestAtomicCtxCancelDuringConflictBackoff(t *testing.T) {
	rt := stm.New(stm.Config{
		SerializeAfter: 1 << 30, // keep it in the backoff loop forever
		Inject:         &stm.Inject{Seed: 1, ConflictPct: 100},
	})
	v := stm.NewVar(0)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- rt.AtomicCtx(ctx, func(tx *stm.Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // let it spin through a few backoffs
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("conflicting transaction ignored cancellation in backoff")
	}
	if v.Load() != 0 {
		t.Fatalf("cancelled transaction published a write: v=%d", v.Load())
	}
}

// TestAtomicCtxCommitWinsOverCancel pins the committed-is-committed
// rule: fn cancels the context itself, then commits; the call must
// report success — cancellation is only honored at attempt boundaries.
func TestAtomicCtxCommitWinsOverCancel(t *testing.T) {
	rt := stm.NewDefault()
	v := stm.NewVar(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var attempts atomic.Int64
	err := rt.AtomicCtx(ctx, func(tx *stm.Tx) error {
		attempts.Add(1)
		cancel() // expires mid-execution; must not abort the commit
		v.Set(tx, 5)
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v; a committed transaction must report nil", err)
	}
	if v.Load() != 5 || attempts.Load() != 1 {
		t.Fatalf("v=%d attempts=%d, want 5/1", v.Load(), attempts.Load())
	}
}
