package stm

import (
	"sync"
	"testing"
)

func newHTM(cfg Config) *Runtime {
	cfg.Mode = ModeHTM
	return New(cfg)
}

func TestHTMBasicCommit(t *testing.T) {
	rt := newHTM(Config{})
	v := NewVar(1)
	if err := rt.Atomic(func(tx *Tx) error {
		v.Set(tx, v.Get(tx)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != 2 {
		t.Errorf("v = %d, want 2", got)
	}
}

// TestHTMCapacityAbortFallsBackToSerial: a transaction whose footprint
// exceeds the simulated capacity must abort twice and then complete in the
// serial fallback (GCC's HTM default of 2 attempts).
func TestHTMCapacityAbortFallsBackToSerial(t *testing.T) {
	rt := newHTM(Config{HTMWriteLines: 4})
	vars := make([]*Var[int], 16)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	wasSerial := false
	if err := rt.Atomic(func(tx *Tx) error {
		for _, v := range vars {
			v.Set(tx, 1)
		}
		wasSerial = tx.Serial()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !wasSerial {
		t.Error("oversized HTM transaction did not fall back to serial")
	}
	s := rt.Snapshot()
	if s.AbortsCapacity != 2 {
		t.Errorf("capacity aborts = %d, want 2 (SerializeAfter default)", s.AbortsCapacity)
	}
	if s.Serializations == 0 {
		t.Error("no serialization recorded")
	}
	for i, v := range vars {
		if v.Load() != 1 {
			t.Errorf("vars[%d] = %d, want 1", i, v.Load())
		}
	}
}

// TestHTMTouchOverflow: touching a large private buffer (the dedup
// Compress scenario) overflows capacity even without transactional writes.
func TestHTMTouchOverflow(t *testing.T) {
	rt := newHTM(Config{HTMWriteLines: 8, HTMReadLines: 8})
	v := NewVar(0)
	serial := false
	if err := rt.Atomic(func(tx *Tx) error {
		_ = v.Get(tx)
		tx.HTMTouch(64*1024, 64*1024) // 1024 lines each way
		serial = tx.Serial()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !serial {
		t.Error("HTMTouch overflow did not force serial fallback")
	}
	if rt.Snapshot().AbortsCapacity == 0 {
		t.Error("no capacity abort recorded")
	}
}

// TestHTMTouchNoOpInSTM: in STM mode HTMTouch must not abort anything.
func TestHTMTouchNoOpInSTM(t *testing.T) {
	rt := NewDefault()
	before := rt.Snapshot()
	if err := rt.Atomic(func(tx *Tx) error {
		tx.HTMTouch(1<<30, 1<<30)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	d := rt.Snapshot().Sub(before)
	if d.AbortsCapacity != 0 {
		t.Error("HTMTouch aborted an STM transaction")
	}
	if d.Commits != 1 {
		t.Errorf("commits = %d", d.Commits)
	}
}

// TestHTMIrrevocableAbortsToFallback: requesting irrevocability inside a
// hardware transaction aborts it (syscalls abort TSX); the operation
// completes via the serial path.
func TestHTMIrrevocableAbortsToFallback(t *testing.T) {
	rt := newHTM(Config{})
	v := NewVar(0)
	ran := 0
	if err := rt.Atomic(func(tx *Tx) error {
		tx.Irrevocable()
		// Only reachable in serial fallback.
		ran++
		v.Set(tx, ran)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("irrevocable body ran %d times", ran)
	}
	s := rt.Snapshot()
	if s.AbortsSyscall != 2 {
		t.Errorf("syscall aborts = %d, want 2", s.AbortsSyscall)
	}
	if v.Load() != 1 {
		t.Errorf("v = %d", v.Load())
	}
}

// TestHTMNoQuiesce: hardware commits are privatization-safe, so an HTM
// writer's hook runs without waiting for concurrent transactions.
func TestHTMNoQuiesce(t *testing.T) {
	rt := newHTM(Config{})
	v := NewVar(0)
	other := NewVar(0)
	readerIn := make(chan struct{})
	readerRelease := make(chan struct{})
	var once sync.Once
	go func() {
		_ = rt.Atomic(func(tx *Tx) error {
			_ = other.Get(tx)
			once.Do(func() { close(readerIn) })
			<-readerRelease
			return nil
		})
	}()
	<-readerIn
	hookRan := make(chan struct{})
	if err := rt.Atomic(func(tx *Tx) error {
		v.Set(tx, 1)
		tx.AfterCommit(func() { close(hookRan) })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-hookRan:
	case <-make(chan struct{}): // unreachable
	}
	close(readerRelease)
	if rt.Snapshot().QuiesceWaits != 0 {
		t.Error("HTM transaction quiesced")
	}
}

// TestHTMConcurrentCounter: correctness under contention with fallbacks.
func TestHTMConcurrentCounter(t *testing.T) {
	rt := newHTM(Config{})
	v := NewVar(0)
	var wg sync.WaitGroup
	const workers, per = 8, 300
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = rt.Atomic(func(tx *Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := v.Load(); got != workers*per {
		t.Errorf("v = %d, want %d", got, workers*per)
	}
}
